package sublineardp_test

import (
	"context"
	"strings"
	"testing"

	"sublineardp"
	"sublineardp/internal/problems"
)

// The reconstruction matrix: the sequential engine's recorded splits,
// the blocked engine's recorded splits (WithSplits), and the lazy
// table-fallback walk must all produce the same tree — same smallest-k
// tie-break — under every registered algebra, at sizes on both sides of
// the auto engine's 64/256 cutoffs (so the recorded path is exercised
// through every dispatch regime the serving layer uses).
func TestTreeReconstructionAcrossEnginesAndAlgebras(t *testing.T) {
	sizes := []int{40, 128, 300}
	if testing.Short() {
		sizes = sizes[:2]
	}
	ctx := context.Background()
	for _, n := range sizes {
		for _, ring := range sublineardp.Semirings() {
			sr, ok := sublineardp.LookupSemiring(ring)
			if !ok {
				t.Fatalf("registered semiring %q not found", ring)
			}
			// Matrix chains are Zero-rooted under bool-plan (Init = 0 is
			// that algebra's "infeasible"); give it a feasible forbidden-
			// splits instance with non-trivial smallest feasible splits.
			in := problems.RandomMatrixChain(n, 60, int64(n))
			if ring == "bool-plan" {
				in = problems.ForbiddenSplits(n, [][2]int{
					{0, 2}, {1, 3}, {2, 5}, {4, 7}, {3, n - 1}, {n / 2, n - 2},
				})
			}
			solve := func(opts ...sublineardp.Option) *sublineardp.Solution {
				t.Helper()
				opts = append(opts, sublineardp.WithSemiring(sr))
				sol, err := sublineardp.MustNewSolver(sublineardp.EngineBlocked, opts...).Solve(ctx, in)
				if err != nil {
					t.Fatalf("n=%d %s: %v", n, ring, err)
				}
				return sol
			}
			seqSol, err := sublineardp.MustNewSolver(sublineardp.EngineSequential,
				sublineardp.WithSemiring(sr)).Solve(ctx, in)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, ring, err)
			}
			blkRec := solve(sublineardp.WithSplits(true))
			blkLazy := solve()

			want, err := seqSol.Tree()
			if err != nil {
				t.Fatalf("n=%d %s: sequential tree: %v", n, ring, err)
			}
			for label, sol := range map[string]*sublineardp.Solution{
				"blocked recorded": blkRec, "blocked lazy": blkLazy,
			} {
				tr, err := sol.Tree()
				if err != nil {
					t.Fatalf("n=%d %s %s: %v", n, ring, label, err)
				}
				if !tr.Equal(want) {
					t.Errorf("n=%d %s: %s tree differs from sequential", n, ring, label)
				}
			}
			// The Split surface answers identically too: recorded fast path
			// (seq, blocked+WithSplits) and lazy table scan (plain blocked).
			// Full matrix at the small size, spot spans above it.
			spans := [][2]int{{0, n}, {0, n / 2}, {n / 3, n}, {1, 4}}
			if n == sizes[0] {
				spans = spans[:0]
				for i := 0; i <= n; i++ {
					for j := i + 2; j <= n; j++ {
						spans = append(spans, [2]int{i, j})
					}
				}
			}
			for _, sp := range spans {
				exp := seqSol.Split(sp[0], sp[1])
				for label, sol := range map[string]*sublineardp.Solution{
					"blocked recorded": blkRec, "blocked lazy": blkLazy,
				} {
					if got := sol.Split(sp[0], sp[1]); got != exp {
						t.Errorf("n=%d %s: %s Split(%d,%d) = %d, sequential recorded %d",
							n, ring, label, sp[0], sp[1], got, exp)
					}
				}
			}
		}
	}
}

// Nil and zero-value receivers must answer with errors, not panics —
// Tree and Path used to read the reconstruction closure before the nil
// check, so `var s *Solution; s.Tree()` crashed.
func TestReconstructionNilReceivers(t *testing.T) {
	var nilSol *sublineardp.Solution
	if _, err := nilSol.Tree(); err == nil {
		t.Error("nil Solution.Tree() returned no error")
	}
	var zeroSol sublineardp.Solution
	if _, err := zeroSol.Tree(); err == nil {
		t.Error("zero-value Solution.Tree() returned no error")
	}
	var nilChain *sublineardp.ChainSolution
	if _, err := nilChain.Path(); err == nil {
		t.Error("nil ChainSolution.Path() returned no error")
	}
	var zeroChain sublineardp.ChainSolution
	if _, err := zeroChain.Path(); err == nil {
		t.Error("zero-value ChainSolution.Path() returned no error")
	}
}

// An unreachable root — the value is the algebra's Zero — must never be
// "reconstructed": the recorded-splits walk finds no split, the lazy
// walk refuses up front, and Split answers -1, instead of the old
// behaviour of fabricating a subtree through saturated sums.
func TestTreeUnreachableSpans(t *testing.T) {
	ctx := context.Background()

	// Bool-plan: wall off every span-2 window, so no parenthesization
	// exists at all and c(0,n) = 0.
	n := 8
	var walls [][2]int
	for i := 0; i+2 <= n; i++ {
		walls = append(walls, [2]int{i, i + 2})
	}
	in := sublineardp.NewForbiddenSplits(n, walls)
	for _, mk := range [][]sublineardp.Option{
		{sublineardp.WithSplits(true)}, // blocked, recorded splits
		nil,                            // blocked, lazy fallback
	} {
		sol, err := sublineardp.MustNewSolver(sublineardp.EngineBlocked, mk...).Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Cost() != 0 {
			t.Fatalf("fully-walled instance reported feasible (c = %d)", sol.Cost())
		}
		if _, err := sol.Tree(); err == nil {
			t.Errorf("infeasible bool-plan instance (splits=%v) produced a tree", mk != nil)
		}
		if got := sol.Split(0, n); got != -1 {
			t.Errorf("infeasible bool-plan Split(0,%d) = %d, want -1", n, got)
		}
	}

	// Min-plus: one Inf leaf makes every containing span Inf. The lazy
	// extractor must report the span unreachable — Add3 saturates, so a
	// scan that compared raw sums would find a bogus "realising" split.
	infLeaf := &sublineardp.Instance{
		N:    6,
		Name: "inf-leaf",
		Init: func(i int) sublineardp.Cost {
			if i == 3 {
				return sublineardp.Inf
			}
			return 0
		},
		F: func(i, k, j int) sublineardp.Cost { return 1 },
	}
	sol, err := sublineardp.MustNewSolver(sublineardp.EngineSequential).Solve(ctx, infLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost() != sublineardp.Inf {
		t.Fatalf("Inf-leaf instance reported feasible (c = %d)", sol.Cost())
	}
	if got := sol.Split(0, 6); got != -1 {
		t.Errorf("Inf-leaf Split(0,6) = %d, want -1", got)
	}
	// Drive the lazy walk directly on the converged table.
	if _, err := sublineardp.ExtractTree(infLeaf, sol.Table); err == nil ||
		!strings.Contains(err.Error(), "unreachable") {
		t.Errorf("lazy extraction on Inf root: err = %v, want unreachable-span error", err)
	}
}
