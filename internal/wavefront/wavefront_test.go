package wavefront

import (
	"testing"
	"testing/quick"

	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
)

func TestMatchesSequentialCLRS(t *testing.T) {
	in := problems.CLRSMatrixChain()
	got := Solve(in, Options{})
	if got.Cost() != problems.CLRSOptimalCost {
		t.Fatalf("cost = %d, want %d", got.Cost(), problems.CLRSOptimalCost)
	}
	if !got.Table.Equal(seq.Solve(in).Table) {
		t.Fatal("full table differs from sequential")
	}
}

func TestMatchesSequentialAcrossFamilies(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		instances := []*recurrence.Instance{
			problems.RandomMatrixChain(15, 40, seed),
			problems.RandomOBST(12, 30, seed),
			problems.Triangulation(problems.RandomConvexPolygon(12, 500, seed)),
			problems.RandomInstance(14, 60, seed),
		}
		for _, in := range instances {
			want := seq.Solve(in).Table
			got := Solve(in, Options{Workers: 2})
			if !got.Table.Equal(want) {
				t.Fatalf("seed %d %s: wavefront differs from sequential: %v",
					seed, in.Name, got.Table.Diff(want, 3))
			}
		}
	}
}

func TestWorkerCountIrrelevant(t *testing.T) {
	in := problems.RandomInstance(20, 50, 9)
	a := Solve(in, Options{Workers: 1})
	b := Solve(in, Options{Workers: 4})
	if !a.Table.Equal(b.Table) {
		t.Fatal("worker count changed the result")
	}
	if a.Acct.Time != b.Acct.Time || a.Acct.Work != b.Acct.Work || a.Acct.MaxProcs != b.Acct.MaxProcs {
		t.Fatalf("accounting depends on workers: %+v vs %+v", a.Acct, b.Acct)
	}
}

func TestAccountingShape(t *testing.T) {
	in := problems.RandomInstance(32, 10, 1)
	res := Solve(in, Options{})
	// Work must equal the sequential candidate count exactly.
	want := seq.Solve(in).Work
	if res.Acct.Work != want+32 { // +n for the init step
		t.Fatalf("work = %d, want %d", res.Acct.Work, want+32)
	}
	// Time is sum over spans of ceil(log2(span-1)) + 1 for init.
	if res.Acct.Time <= 32 || res.Acct.Time > 32*6+1 {
		t.Fatalf("time = %d out of expected band", res.Acct.Time)
	}
}

// Property: wavefront equals sequential on random instances.
func TestWavefrontPropertyEquality(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%12 + 2
		in := problems.RandomInstance(n, 30, seed)
		return Solve(in, Options{Workers: 3}).Table.Equal(seq.Solve(in).Table)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
