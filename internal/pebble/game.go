// Package pebble implements the parallel pebbling game of Section 3 of the
// paper, the combinatorial device behind the 2*sqrt(n) iteration bound.
//
// The game is played on a full binary tree whose leaves start pebbled and
// where every node x carries a pointer cond(x), initially x itself. One
// *move* applies three synchronous operations to all nodes in parallel:
//
//	Activate: if cond(x) == x and at least one child of x is pebbled,
//	          point cond(x) at the other child (pebbled or not).
//	Square:   if cond(cond(x)) != cond(x), advance cond(x) one level to
//	          the child of cond(x) that is an ancestor of cond(cond(x)).
//	Pebble:   if x is unpebbled but cond(x) is pebbled, pebble x.
//
// That Square rule is the paper's; Lemma 3.3 shows the root is pebbled
// within 2*ceil(sqrt(n)) moves. Rytter's original game (TCS 59, 1988)
// instead jumps cond(x) := cond(cond(x)) — pointer doubling — pebbling
// the root in O(log n) moves but requiring the O(n^6)-work composition
// when translated back to partial weights. Both rules are implemented so
// the experiments can reproduce the moves-versus-work trade the two papers
// occupy.
//
// All three operations read the pre-move state only (the game is
// synchronous); the implementation double-buffers cond and pebbled to
// honour that, and tests verify a deliberately desynchronised variant
// diverges, guarding against accidental sequential-update bugs.
package pebble

import (
	"fmt"

	"sublineardp/internal/btree"
)

// Rule selects the square operation.
type Rule int

const (
	// HLVRule is the paper's square: descend cond(x) one level toward
	// cond(cond(x)).
	HLVRule Rule = iota
	// RytterRule is pointer doubling: cond(x) := cond(cond(x)).
	RytterRule
)

// String names the rule for tables and test output.
func (r Rule) String() string {
	switch r {
	case HLVRule:
		return "hlv"
	case RytterRule:
		return "rytter"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// Game is one pebbling-game position. Construct with NewGame.
type Game struct {
	T    *btree.Tree
	Rule Rule

	pebbled []bool
	cond    []int32
	moves   int

	// scratch buffers for synchronous updates
	nextPebbled []bool
	nextCond    []int32

	// Trace, when non-nil, receives a snapshot after every move.
	Trace func(move int, g *Game)
}

// NewGame sets up the initial position on t: leaves pebbled, cond(x) = x.
func NewGame(t *btree.Tree, rule Rule) *Game {
	m := t.Len()
	g := &Game{
		T:           t,
		Rule:        rule,
		pebbled:     make([]bool, m),
		cond:        make([]int32, m),
		nextPebbled: make([]bool, m),
		nextCond:    make([]int32, m),
	}
	for v := int32(0); v < int32(m); v++ {
		g.cond[v] = v
		if t.IsLeaf(v) {
			g.pebbled[v] = true
		}
	}
	return g
}

// Pebbled reports whether node v is pebbled.
func (g *Game) Pebbled(v int32) bool { return g.pebbled[v] }

// Cond returns the current cond pointer of v.
func (g *Game) Cond(v int32) int32 { return g.cond[v] }

// Moves returns how many moves have been played.
func (g *Game) Moves() int { return g.moves }

// RootPebbled reports whether the root is pebbled (the game's goal).
func (g *Game) RootPebbled() bool { return g.pebbled[g.T.Root] }

// PebbledCount returns the number of pebbled nodes.
func (g *Game) PebbledCount() int {
	c := 0
	for _, p := range g.pebbled {
		if p {
			c++
		}
	}
	return c
}

// Move plays one move: activate, square, pebble, each synchronous.
func (g *Game) Move() {
	t := g.T
	m := int32(t.Len())

	// Activate: reads cond+pebbled, writes cond.
	copy(g.nextCond, g.cond)
	for x := int32(0); x < m; x++ {
		if g.cond[x] != x || t.IsLeaf(x) {
			continue
		}
		l, r := t.Left[x], t.Right[x]
		switch {
		case g.pebbled[l]:
			g.nextCond[x] = r
		case g.pebbled[r]:
			g.nextCond[x] = l
		}
	}
	g.cond, g.nextCond = g.nextCond, g.cond

	// Square: reads cond, writes cond.
	copy(g.nextCond, g.cond)
	for x := int32(0); x < m; x++ {
		c := g.cond[x]
		cc := g.cond[c]
		if cc == c {
			continue
		}
		switch g.Rule {
		case HLVRule:
			g.nextCond[x] = t.ChildToward(c, cc)
		case RytterRule:
			g.nextCond[x] = cc
		}
	}
	g.cond, g.nextCond = g.nextCond, g.cond

	// Pebble: reads cond+pebbled, writes pebbled.
	copy(g.nextPebbled, g.pebbled)
	for x := int32(0); x < m; x++ {
		if !g.pebbled[x] && g.pebbled[g.cond[x]] {
			g.nextPebbled[x] = true
		}
	}
	g.pebbled, g.nextPebbled = g.nextPebbled, g.pebbled

	g.moves++
	if g.Trace != nil {
		g.Trace(g.moves, g)
	}
}

// Run plays moves until the root is pebbled or maxMoves is reached, and
// returns the number of moves played. maxMoves <= 0 means the Lemma 3.3
// budget 2*ceil(sqrt(n)) plus a safety margin; exceeding the budget with
// an unpebbled root indicates a bug, which callers detect by checking
// RootPebbled.
func (g *Game) Run(maxMoves int) int {
	if maxMoves <= 0 {
		maxMoves = 2*isqrtCeil(g.T.N) + 4
	}
	for !g.RootPebbled() && g.moves < maxMoves {
		g.Move()
	}
	return g.moves
}

// isqrtCeil returns ceil(sqrt(n)) for n >= 0 using integer arithmetic.
func isqrtCeil(n int) int {
	if n <= 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) < n {
		r++
	}
	if r*r < n {
		r++
	}
	return r
}

// IsqrtCeil exposes ceil(sqrt(n)) for callers computing the Lemma 3.3
// bound 2*ceil(sqrt(n)).
func IsqrtCeil(n int) int { return isqrtCeil(n) }

// LemmaBound returns the paper's bound on moves for a tree with n leaves:
// 2*ceil(sqrt(n)).
func LemmaBound(n int) int { return 2 * isqrtCeil(n) }
