// Package fixture pins the framework's own directive hygiene: a
// directive that suppresses nothing is an allowdead finding, and a
// directive without a reason is an allowform finding.
package fixture

//lint:allow ctxpoll the loop this covered was deleted, making this annotation stale
func nothing() {}

//lint:allow hotalloc
func reasonless() {}

var (
	_ = nothing
	_ = reasonless
)
