// Matrix-chain ordering at scale: generate a random chain of 60 matrices,
// solve it with every algorithm in the repository, and compare their
// instrumentation — a miniature of experiment E2.
//
// Run with:
//
//	go run ./examples/matrixchain
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sublineardp"
)

func main() {
	const n = 60
	rng := rand.New(rand.NewSource(2024))
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = 5 + rng.Intn(95)
	}
	in := sublineardp.NewMatrixChain(dims)

	seq := sublineardp.SolveSequential(in)
	fmt.Printf("n=%d matrices, sequential optimum %d (work %d)\n", n, seq.Cost(), seq.Work)

	// The paper's banded algorithm at the fixed worst-case budget.
	fixed := sublineardp.Solve(in, sublineardp.Options{Variant: sublineardp.Banded})
	fmt.Printf("banded fixed-budget:  cost %d, %d iterations, %s\n",
		fixed.Cost(), fixed.Iterations, fixed.Acct.String())

	// The Section 7 early-termination heuristic: random instances converge
	// in O(log n)-ish iterations (Section 6), so this stops much sooner.
	adaptive := sublineardp.Solve(in, sublineardp.Options{
		Variant:     sublineardp.Banded,
		Termination: sublineardp.WStable,
	})
	fmt.Printf("banded + w-stable:    cost %d, stopped after %d iterations (early=%v)\n",
		adaptive.Cost(), adaptive.Iterations, adaptive.StoppedEarly)

	// Baselines.
	wave := sublineardp.SolveWavefront(in, 0)
	fmt.Printf("wavefront:            cost %d\n", wave.Root())

	for _, r := range []*sublineardp.Result{fixed, adaptive} {
		if r.Cost() != seq.Cost() {
			log.Fatalf("disagreement: %d vs %d", r.Cost(), seq.Cost())
		}
	}
	if wave.Root() != seq.Cost() {
		log.Fatal("wavefront disagrees")
	}
	fmt.Println("all solvers agree with the sequential optimum")

	// Show the first levels of the optimal parenthesization.
	tr := seq.Tree()
	i, j := tr.Span(tr.Root)
	k := tr.Split(tr.Root)
	fmt.Printf("top-level split: (A%d..A%d)(A%d..A%d)\n", i+1, k, k+1, j)
}
