package seq

import (
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// SolveTopDown computes the table by memoised recursion from the root —
// the other classic sequential strategy. It explores the same O(n^3)
// candidate space as Solve but in demand order, which makes it a useful
// independently-structured cross-check and the natural baseline for
// workloads where only part of the table is needed.
func SolveTopDown(in *recurrence.Instance) *Result {
	if in.Algebra != "" && in.Algebra != "min-plus" {
		panic("seq: SolveTopDown is a min-plus cross-check; instance declares " + in.Algebra)
	}
	n := in.N
	size := n + 1
	res := &Result{
		Table:  recurrence.NewTable(n),
		splits: make([]int32, size*size),
		N:      n,
		zero:   cost.Inf,
	}
	for i := range res.splits {
		res.splits[i] = -1
	}
	done := make([]bool, size*size)
	// Explicit stack instead of recursion: spans can nest n deep and this
	// keeps the solver safe for large n.
	type frame struct {
		i, j     int
		expanded bool
	}
	stack := []frame{{0, n, false}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := fr.i*size + fr.j
		if done[c] {
			continue
		}
		if fr.j == fr.i+1 {
			res.Table.Set(fr.i, fr.j, in.Init(fr.i))
			done[c] = true
			continue
		}
		if !fr.expanded {
			// Post-visit marker first, then children.
			stack = append(stack, frame{fr.i, fr.j, true})
			for k := fr.i + 1; k < fr.j; k++ {
				if !done[fr.i*size+k] {
					stack = append(stack, frame{fr.i, k, false})
				}
				if !done[k*size+fr.j] {
					stack = append(stack, frame{k, fr.j, false})
				}
			}
			continue
		}
		best := cost.Inf
		bestK := int32(-1)
		for k := fr.i + 1; k < fr.j; k++ {
			v := cost.Add3(in.F(fr.i, k, fr.j), res.Table.At(fr.i, k), res.Table.At(k, fr.j)) //lint:allow bulkonly memoized reference solver for tests and tiny instances; never on the bulk serving path
			if v < best {
				best = v
				bestK = int32(k)
			}
		}
		res.Work += int64(fr.j - fr.i - 1)
		res.Table.Set(fr.i, fr.j, best)
		res.splits[c] = bestK
		done[c] = true
	}
	return res
}
