package sublineardp

import (
	"sublineardp/internal/algebra"
	"sublineardp/internal/core"
	"sublineardp/internal/parutil"
)

// Re-exported enum types, so functional options can be used without
// importing internal packages.
type (
	// Variant selects the HLV partial-weight storage scheme (Dense | Banded).
	Variant = core.Variant
	// Mode selects the update discipline (Synchronous | Chaotic).
	Mode = core.Mode
	// Termination selects the stopping rule (FixedIterations | WStable |
	// WPWStable).
	Termination = core.Termination
	// Semiring is an idempotent semiring over Cost values — the algebra
	// every engine evaluates recurrence (*) over (WithSemiring; min-plus
	// by default). Third-party algebras implement it and are admitted
	// with RegisterSemiring, which validates the semiring axioms.
	Semiring = algebra.Semiring
	// IterStat is one iteration's summary, recorded under WithHistory.
	IterStat = core.IterStat
	// Pool is a persistent worker pool solves dispatch their parallel
	// kernels onto (WithPool); one Pool can be shared by many concurrent
	// solves. Build one with NewPool.
	Pool = parutil.Pool
	// PoolStats is a per-solve scheduler observability snapshot (barrier
	// count, barrier-tail idle nanoseconds, executed work units, steals),
	// exposed as Solution.Stats by the tile engines.
	PoolStats = parutil.StatsView
)

// NewPool returns a persistent worker pool of the given width
// (0 = GOMAXPROCS) for WithPool. Solves that are not given a pool share
// a process-wide default, so NewPool is only needed to isolate or size a
// runtime explicitly; call Close to release its goroutines.
func NewPool(width int) *Pool { return parutil.NewPool(width) }

// The three semirings shipped with the repository, usable with
// WithSemiring. MinPlus is the paper's algebra and the default; MaxPlus
// maximises total weight (worst-case parenthesization); BoolPlan decides
// feasibility over 0/1 values (forbidden-split planning).
var (
	MinPlus  Semiring = algebra.MinPlus{}
	MaxPlus  Semiring = algebra.MaxPlus{}
	BoolPlan Semiring = algebra.BoolPlan{}
)

// RegisterSemiring admits a third-party algebra to the registry after
// mechanically validating the idempotent-semiring axioms (idempotence,
// commutativity, associativity, identities, absorption, distributivity,
// monotonicity) by randomised property testing — a lawless algebra is
// rejected here rather than silently mis-solved. Registered algebras are
// resolvable by name from Instance.Algebra and the wire `semiring`
// option, and are exercised by the engine conformance matrix.
func RegisterSemiring(sr Semiring) error { return algebra.Register(sr) }

// Semirings returns the sorted names of every registered algebra.
func Semirings() []string { return algebra.Names() }

// LookupSemiring resolves a registered algebra by name ("" = min-plus).
func LookupSemiring(name string) (Semiring, bool) {
	k, ok := algebra.Lookup(name)
	if !ok {
		return nil, false
	}
	return k, true
}

// Config carries every knob a Solve or SolveBatch run can set. Engines
// receive it read-only; third-party engines registered with
// RegisterEngine may interpret (or ignore) any field. The zero value is
// a valid default configuration.
type Config struct {
	// Engine is the registry name to solve with ("" = "auto"). NewSolver's
	// positional engine argument takes precedence when both are given.
	//lint:allow keycoverage keyed as solveKey's engineName argument after NewSolver-precedence and auto-routing resolution; hashing the raw field would split identical solves
	Engine string

	// Workers is the goroutine count per solve (0 = GOMAXPROCS).
	// SolveBatch defaults it to 1 so batch-level parallelism is not
	// oversubscribed by intra-solve parallelism.
	Workers int

	// Pool is the persistent worker pool the HLV engines dispatch their
	// a-activate/a-square/a-pebble kernels onto (nil = the process-wide
	// shared pool). SolveBatch threads one pool through every solve of a
	// batch.
	//lint:allow keycoverage execution plumbing: which goroutines run the kernels cannot change the table (TestSolveKeyIgnoresExecutionPlumbing)
	Pool *Pool

	// TileSize is the kernels' scheduling tile: how many (i,j) cells of
	// the iteration space one worker claims at a time (0 = a
	// load-balancing heuristic). Smaller tiles approximate more,
	// finer-grained PRAM processors; larger tiles trade balance for
	// lower scheduling overhead.
	TileSize int

	// Mode is the HLV update discipline (Synchronous | Chaotic).
	Mode Mode

	// Termination is the HLV stopping rule.
	Termination Termination

	// MaxIterations caps the iteration count of the iterative engines
	// (0 = engine's worst-case budget).
	MaxIterations int

	// BandRadius overrides the banded HLV deficit bound D
	// (0 = 2*ceil(sqrt n)).
	BandRadius int

	// Window enables the Section 5 windowed pebble schedule (banded HLV).
	Window bool

	// History records per-iteration statistics in Solution.History
	// (HLV engines).
	History bool

	// Target, when non-nil, is a known-correct table; iterative engines
	// record in Solution.ConvergedAt the first iteration after which
	// their table matches it. Never affects control flow.
	//lint:allow keycoverage observability-only and Solver.Solve bypasses the cache entirely when Target is set (TestSolveKeyIgnoresExecutionPlumbing pins the bypass)
	Target *Table

	// Semiring overrides the algebra every engine evaluates the
	// recurrence over (nil = the instance's declared algebra, min-plus
	// by default).
	Semiring Semiring

	// Concurrency bounds how many instances SolveBatch solves at once
	// (0 = GOMAXPROCS). Ignored by single solves.
	//lint:allow keycoverage batch-level scheduling width: changes when solves run, never what any of them returns (TestSolveKeyIgnoresExecutionPlumbing)
	Concurrency int

	// Cache, when non-nil, is a content-addressed solution cache with
	// single-flight dedup consulted by every Solve of canonicalisable
	// instances (WithCache). Cached solutions are shared: treat them as
	// read-only.
	//lint:allow keycoverage the cache is the key's consumer, not an input: keying it would make every Cache instance its own key namespace (TestSolveKeyIgnoresExecutionPlumbing)
	Cache *Cache

	// AutoCutoff is the instance size at or below which the "auto"
	// engine picks "sequential" instead of "hlv-banded" (0 = the
	// DefaultAutoCutoff). Small instances are solved faster by the
	// cache-friendly O(n^3) scan than by any parallel iteration.
	AutoCutoff int

	// AutoLargeCutoff is the instance size above which the "auto" engine
	// picks the work-efficient "blocked-pipe" engine instead of
	// "hlv-banded" (0 = the DefaultAutoLargeCutoff; values below
	// AutoCutoff clamp to it). Past this size the HLV iteration's
	// O(n^2.5) deficit store and per-iteration sweeps lose to the
	// O(n^2)-memory blocked tile schedule.
	AutoLargeCutoff int

	// Convexity demands the Knuth-Yao pruned path: Solve fails with
	// ErrConvexityRequired unless the instance declares the convexity
	// conditions (Instance.Convex) under min-plus, and the "auto" engine
	// routes eligible instances to "blocked-ky" at every size. Off, auto
	// still *prefers* the pruned engine for eligible instances above the
	// sequential cutoff — this knob turns that preference into a
	// contract. Participates in cache keys.
	Convexity bool

	// RecordSplits asks the engine to record optimal split points during
	// the solve, making Solution.Tree and Solution.Split O(n)
	// reconstructions instead of table re-scans. Honoured by the blocked
	// engine (one int32 matrix, 4·(n+1)^2 bytes, plus one compare+store
	// per candidate — the value table stays bitwise identical); the
	// sequential engine always records; other engines ignore it and fall
	// back to lazy table reconstruction. Participates in cache keys.
	RecordSplits bool
}

// DefaultAutoCutoff is the default small-instance threshold of the
// "auto" engine: at n <= 64 the sequential O(n^3) scan beats the
// parallel engines' per-iteration overhead on real hardware.
const DefaultAutoCutoff = 64

// DefaultAutoLargeCutoff is the default large-instance threshold of the
// "auto" engine: above n = 256 the work-efficient blocked engine
// dominates the banded HLV iteration on both memory and wall clock.
const DefaultAutoLargeCutoff = 256

// Option configures a Solver, a single Solve call, or a SolveBatch run.
type Option func(*Config)

// WithEngine selects the engine by registry name ("" = "auto"). Mostly
// useful with SolveBatch, which has no positional engine argument.
func WithEngine(name string) Option { return func(c *Config) { c.Engine = name } }

// WithWorkers sets the goroutine count used inside one solve
// (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithPool dispatches the solve's parallel kernels onto the given
// persistent pool (nil = the process-wide shared pool). Sharing one pool
// across many solves — what SolveBatch does — reuses its goroutines
// instead of spawning per solve.
func WithPool(p *Pool) Option { return func(c *Config) { c.Pool = p } }

// WithTileSize sets the kernels' scheduling tile — the number of (i,j)
// cells one worker claims at a time (0 = heuristic). It is the practical
// analogue of the paper's processor-count knob: smaller tiles emulate
// more, finer-grained PRAM processors.
func WithTileSize(t int) Option { return func(c *Config) { c.TileSize = t } }

// WithMode selects the HLV update discipline (Synchronous | Chaotic).
func WithMode(m Mode) Option { return func(c *Config) { c.Mode = m } }

// WithTermination selects the HLV stopping rule (FixedIterations |
// WStable | WPWStable).
func WithTermination(t Termination) Option { return func(c *Config) { c.Termination = t } }

// WithMaxIterations caps the iterative engines' iteration count
// (0 = worst-case budget).
func WithMaxIterations(n int) Option { return func(c *Config) { c.MaxIterations = n } }

// WithBandRadius overrides the banded HLV deficit bound D
// (0 = 2*ceil(sqrt n)).
func WithBandRadius(d int) Option { return func(c *Config) { c.BandRadius = d } }

// WithWindow toggles the Section 5 windowed pebble schedule (banded HLV).
func WithWindow(on bool) Option { return func(c *Config) { c.Window = on } }

// WithHistory toggles per-iteration statistics in Solution.History.
func WithHistory(on bool) Option { return func(c *Config) { c.History = on } }

// WithTarget supplies a known-correct table for convergence tracking
// (Solution.ConvergedAt).
func WithTarget(t *Table) Option { return func(c *Config) { c.Target = t } }

// WithSemiring selects the algebra the recurrence is evaluated over —
// honoured by every engine, from the sequential scan to the banded tiled
// kernels (nil = the instance's declared algebra, min-plus by default).
// The algebra participates in cache keys, so min-plus and max-plus
// solves of the same instance never share an entry.
func WithSemiring(sr Semiring) Option { return func(c *Config) { c.Semiring = sr } }

// WithConcurrency bounds how many instances SolveBatch works on at once
// (0 = GOMAXPROCS).
func WithConcurrency(n int) Option { return func(c *Config) { c.Concurrency = n } }

// WithCache attaches a content-addressed solution cache (NewCache) to
// the solve: repeated solves of canonically-equal instances under the
// same configuration are served from memory, and identical in-flight
// solves fold into one computation. Solution.Cached reports a solve that
// did not run an engine. Instances without a canonical encoding
// (Instance.Canonical) bypass the cache.
func WithCache(c *Cache) Option { return func(cfg *Config) { cfg.Cache = c } }

// WithAutoCutoff sets the instance size at or below which the "auto"
// engine (and SolveBatch's default scheduling) picks the sequential
// engine (0 = DefaultAutoCutoff).
func WithAutoCutoff(n int) Option { return func(c *Config) { c.AutoCutoff = n } }

// WithAutoLargeCutoff sets the instance size above which the "auto"
// engine routes to the work-efficient "blocked" engine instead of the
// banded HLV iteration (0 = DefaultAutoLargeCutoff).
func WithAutoLargeCutoff(n int) Option { return func(c *Config) { c.AutoLargeCutoff = n } }

// WithConvexity demands the Knuth-Yao pruned path: the solve fails with
// ErrConvexityRequired unless the instance declares Instance.Convex and
// resolves to min-plus, and the "auto" engine routes eligible instances
// to the O(n^2)-work "blocked-ky" engine at every size. Use it when an
// O(n^3) fallback would be a performance bug rather than a slow
// success.
func WithConvexity(on bool) Option { return func(c *Config) { c.Convexity = on } }

// WithSplits asks the engine to record optimal split points during the
// solve, so Solution.Tree/Split reconstruct in O(n) instead of
// re-scanning the table — the option that makes solution paths practical
// at the sizes only the blocked engine can load. See
// Config.RecordSplits for cost and engine coverage.
func WithSplits(on bool) Option { return func(c *Config) { c.RecordSplits = on } }

func buildConfig(opts []Option) Config {
	var cfg Config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}
