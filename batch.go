package sublineardp

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"sublineardp/internal/parutil"
)

// SolveBatch fans a slice of instances across a worker pool — the
// building block for serving many requests at once. Scheduling is by
// engine name (WithEngine; the default "auto" routes each instance by
// size: small ones to the cache-friendly sequential scan, large ones to
// the banded HLV iteration), and WithConcurrency bounds how many
// instances are in flight at once (default GOMAXPROCS).
//
// The whole batch runs on one persistent worker pool — WithPool's if
// given, else the process-wide shared pool: the batch fan-out claims
// instances from it and every solve dispatches its kernels onto it, so a
// batch spawns no per-instance goroutines and per-solve buffers recycle
// through the shared arena.
//
// The result slice is order-stable and complete: result[i] is the
// solution of instances[i] for every i, independent of scheduling order.
// Unless WithWorkers overrides it, each solve runs single-threaded so
// batch-level parallelism is not oversubscribed by intra-solve
// parallelism.
//
// Cancellation: when ctx is cancelled or its deadline passes, in-flight
// solves abort at their next cooperative check and unstarted instances
// are skipped. Failed or skipped slots are nil in the result slice and
// their errors (each wrapped with the instance index) are joined into
// the returned error; errors.Is(err, context.Canceled) reports a
// cancelled batch.
func SolveBatch(ctx context.Context, instances []*Instance, opts ...Option) ([]*Solution, error) {
	cfg := buildConfig(opts)
	if cfg.Engine == "" {
		cfg.Engine = EngineAuto
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(instances) {
		workers = len(instances)
	}
	if cfg.Workers == 0 && workers > 1 {
		cfg.Workers = 1
	}
	pool := cfg.Pool
	if pool == nil {
		pool = parutil.Default()
		cfg.Pool = pool // every solve of the batch shares it
	}
	// One shared Solver does each solve, so batch slots get exactly the
	// validation, timing and engine dispatch a direct Solve call gets.
	solver, err := NewSolver(cfg.Engine, func(c *Config) { *c = cfg })
	if err != nil {
		return nil, err
	}

	out := make([]*Solution, len(instances))
	if len(instances) == 0 {
		return out, nil
	}

	// The fan-out runs on the same pool as the solves; grain 1 claims one
	// instance at a time so slow solves balance.
	errs := make([]error, len(instances))
	pool.ForChunked(workers, len(instances), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			in := instances[i]
			label := "<nil>"
			if in != nil {
				label = in.Name
			}
			sol, err := solver.Solve(ctx, in)
			if err != nil {
				errs[i] = fmt.Errorf("instance %d (%s): %w", i, label, err)
				continue
			}
			out[i] = sol
		}
	})
	return out, errors.Join(errs...)
}
