// Package blocked implements the work-efficient blocked parallel engine
// for recurrence (*): the c(i,j) triangle is partitioned into B×B tiles
// processed in anti-diagonal block-wavefront order, so the whole solve
// costs the sequential O(n^3) work and O(n^2) memory — one flat cost
// table, no partial-weight arrays — while exposing (n/B)^2-way
// parallelism per wavefront.
//
// This is the engine the paper's HLV scheme is missing at scale: HLV
// buys O(sqrt n · log n) parallel *time* by paying O(n^4) work and
// memory (the dense partial-weight array caps it at n=64 on commodity
// memory), whereas the blocked schedule follows the work-efficient
// divide-and-conquer line (Galil–Park blocking; arXiv:2404.16314's
// near-work-optimal parallel DP; arXiv:2008.01938's block-wavefront
// pipeline): depth O((n/B)·(B + log n)) with work exactly O(n^3).
// n = 1024–4096 solves comfortably where hlv-dense cannot even allocate
// n = 256.
//
// # Schedule
//
// Indices 0..n are split into nb = ceil((n+1)/B) blocks. Tile (I,J)
// holds the cells (i,j) with i in block I, j in block J. A cell's
// candidates k lie in blocks I..J, so tile (I,J) depends only on tiles
// (I,K) and (K,J) with strictly smaller block distance — every tile of
// block-diagonal d = J-I is independent once diagonals < d are final.
// Per diagonal the engine runs two pooled phases:
//
//   - phase A (d >= 2): off-tile accumulation. For every tile row i and
//     every strictly interior block K, one RelaxSplitPanel call folds the
//     whole k-run of block K into the row — a GEMM-shaped sweep whose
//     three streams (destination row, left factors, right row) are
//     contiguous or scalar, which is what makes the engine faster per
//     candidate than the column-striding sequential scan.
//   - phase B: in-tile closure. Each tile serialises its own cells in
//     dependency order (rows bottom-up, splits left to right) and applies
//     every in-tile split as a forward j-run relaxation, so even the
//     closure sweeps contiguous panels; all tiles of the diagonal close
//     in parallel.
//
// The bulk primitives evaluate the instance's F inside the kernel body
// (RelaxSplitPanel), or consume a pre-evaluated f run when the instance
// provides a bulk form (Instance.FPanel → RelaxSplitRow), so every
// registered algebra runs at one indirect call per panel and the
// min-plus loops stay scalar-fast. Results are bitwise identical to
// the sequential DP under every lawful algebra: candidates form the same
// multiset and Combine is associative, commutative and idempotent.
//
// TileSize is the engine's processor knob: B ~ n/(4p) (the auto
// default) spreads p workers across a wavefront, larger B trades
// parallelism for lower barrier count (2(nb-1) barriers total) and
// better in-tile and f-run locality.
package blocked

import (
	"context"
	"fmt"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/pram"
	"sublineardp/internal/recurrence"
)

// DefaultTileSize is the floor of the auto-sized block edge: large
// enough that panel dispatch overhead vanishes and a tile pair (two
// ~32 KB squares) stays cache-resident.
const DefaultTileSize = 64

// maxAutoTileSize caps the auto-sized block edge: past ~512 the f-run
// locality gains flatten while the barrier count is already tiny.
const maxAutoTileSize = 512

// fbufArena recycles the per-worker f-run scratch (length B) across
// work units and solves: phase dispatch claims single-unit chunks for
// cancellation latency, so without recycling each claimed tile row
// would allocate a fresh buffer.
var fbufArena parutil.Arena[cost.Cost]

// Options configures a blocked solve. The zero value is a valid default
// configuration.
type Options struct {
	// Workers is the goroutine count per pooled phase (0 = pool width).
	Workers int
	// Pool is the persistent worker pool the wavefront phases dispatch
	// onto (nil = the process-wide shared pool).
	Pool *parutil.Pool
	// TileSize is the block edge B. Non-positive values select the auto
	// size (~(n+1)/(4·procs) clamped to [DefaultTileSize,
	// maxAutoTileSize] — see EffectiveTileSize); explicit values are
	// capped at n+1 (one tile).
	TileSize int
	// Semiring overrides the algebra the recurrence is evaluated over
	// (nil = the instance's declared algebra, min-plus by default).
	Semiring algebra.Semiring
	// RecordSplits also fills Result.Splits with the optimal split point
	// of every computed span — the O(n) root-to-leaf reconstruction
	// input, and the prerequisite for Knuth–Yao candidate pruning. Costs
	// one int32 matrix (4·(n+1)^2 bytes, half the cost table) and one
	// compare+store per candidate; the value table stays bitwise
	// identical to a non-recording run.
	RecordSplits bool
}

// Result is a blocked solve: the converged cost table, PRAM accounting,
// and the effective block edge.
type Result struct {
	Table *recurrence.Table
	Acct  pram.Accounting
	// TileSize echoes the effective block edge B of the run.
	TileSize int
	// Splits, filled when Options.RecordSplits is set, is the int32 split
	// matrix parallel to the table (same flat layout and stride):
	// Splits[i*stride+j] is the smallest k whose candidate achieves
	// c(i,j), or -1 for leaves and spans no candidate reaches — exactly
	// the sequential reference's smallest-k choice, under every algebra.
	Splits []int32
	// Stats is the solve's scheduler observability snapshot: barrier
	// count (2(nb−1) for the wavefront driver, 0 for the pipelined one),
	// barrier-tail idle nanoseconds, and executed work units. For an
	// overlapped batch every Result carries the shared scheduler's view.
	Stats parutil.StatsView
}

// Cost returns c(0,n).
func (r *Result) Cost() cost.Cost { return r.Table.Root() }

// Split returns the recorded optimal split of span (i,j), or -1 when the
// span is a leaf, unreachable, or splits were not recorded.
func (r *Result) Split(i, j int) int {
	if r.Splits == nil {
		return -1
	}
	return int(r.Splits[i*r.Table.Stride()+j])
}

// EffectiveTileSize resolves the block edge a solve of size n runs
// with on a machine with procs usable processors. An explicit tile
// wins; otherwise B targets about four wavefront tiles per processor
// ((n+1)/(4·procs) — enough tiles to balance, few enough barriers and
// long enough contiguous f runs), clamped to
// [DefaultTileSize, maxAutoTileSize]. On few cores this grows B with n
// (locality is all that matters); on wide machines it shrinks toward
// the floor to keep every worker fed.
func EffectiveTileSize(n, tile, procs int) int {
	b := tile
	if b <= 0 {
		if procs < 1 {
			procs = 1
		}
		b = (n + 1) / (4 * procs)
		if b < DefaultTileSize {
			b = DefaultTileSize
		}
		if b > maxAutoTileSize {
			b = maxAutoTileSize
		}
	}
	if b > n+1 {
		b = n + 1
	}
	return b
}

// Solve runs the blocked engine; the result table equals the sequential
// DP table bitwise (the conformance matrix and fuzz rails pin this).
func Solve(in *recurrence.Instance, opt Options) *Result {
	res, err := SolveCtx(context.Background(), in, opt)
	if err != nil {
		// Only reachable for an unregistered instance algebra; the
		// background context never cancels.
		panic(err)
	}
	return res
}

// SolveCtx is Solve with cooperative cancellation: the worker pool
// re-checks the context before each claimed work unit (one tile row in
// phase A, one tile in phase B), so cancellation latency is bounded by
// one in-flight tile row rather than one wavefront. That per-unit poll
// is the only one — the driver does not double-poll per diagonal or per
// cell.
func SolveCtx(ctx context.Context, in *recurrence.Instance, opt Options) (*Result, error) {
	if in == nil || in.N < 1 {
		panic(fmt.Sprintf("blocked: invalid instance %+v", in))
	}
	k, err := algebra.Resolve(opt.Semiring, in.Algebra)
	if err != nil {
		return nil, err
	}
	// Instantiate the generic driver at the concrete type of each shipped
	// semiring so the bulk primitives dispatch to their specialised
	// bodies; promoted third-party algebras run through the interface.
	switch sr := k.(type) {
	case algebra.MinPlus:
		return run(ctx, sr, in, opt)
	case algebra.MaxPlus:
		return run(ctx, sr, in, opt)
	case algebra.BoolPlan:
		return run(ctx, sr, in, opt)
	default:
		return run[algebra.Kernel](ctx, k, in, opt)
	}
}

// run is the block-wavefront driver at one concrete algebra type. The
// tile machinery (seeding, panel folds, in-tile closure) lives in
// tileSolver and is shared verbatim with the pipelined driver; this
// function owns only the barrier-stepped schedule — per diagonal, one
// fenced phase-A dispatch then one fenced phase-B dispatch, 2(nb−1)
// barriers total, each recorded on the solve's Stats.
func run[S algebra.Kernel](ctx context.Context, sr S, in *recurrence.Instance, opt Options) (*Result, error) {
	n := in.N
	pool, workers, procs := poolAndProcs(opt)
	b := EffectiveTileSize(n, opt.TileSize, procs)

	ts := newTileSolver(sr, in, b, opt.RecordSplits)
	nb, size := ts.nb, ts.size
	res := ts.res
	st := &parutil.Stats{}
	defer func() { res.Stats = st.View() }()

	for d := 0; d < nb; d++ {
		tiles := nb - d

		// Phase A: fold the strictly interior split blocks into every
		// tile row of the diagonal, all rows in parallel. Row blocks of
		// d >= 1 tiles are always full (only block nb-1 can be short),
		// so unit u maps to tile u/b, row u%b. The pool polls ctx before
		// each claimed row; no extra per-diagonal poll is needed.
		if d >= 2 {
			units := tiles * b
			aWork, err := pool.SumInt64StatsCtx(ctx, st, workers, units, 1, func(ulo, uhi int) int64 {
				fbuf := fbufArena.Get(b)
				defer fbufArena.Put(fbuf)
				var cnt int64
				for u := ulo; u < uhi; u++ {
					I := u / b
					cnt += ts.foldRowInterior(fbuf, ts.lo(I)+u%b, I, I+d)
				}
				return cnt
			})
			if err != nil {
				return nil, err
			}
			aCells := int64(b) * (int64(tiles-1)*int64(b) + int64(ts.hi(nb-1)-ts.lo(nb-1)))
			res.Acct.ChargeReduce(aCells, int64(d-1)*int64(b), aWork)
		}

		// Phase B: close every tile of the diagonal in parallel.
		bWork, err := pool.SumInt64StatsCtx(ctx, st, workers, tiles, 1, func(tlo, thi int) int64 {
			fbuf := fbufArena.Get(b)
			defer fbufArena.Put(fbuf)
			var cnt int64
			for t := tlo; t < thi; t++ {
				cnt += ts.closeTile(fbuf, t, t+d)
			}
			return cnt
		})
		if err != nil {
			return nil, err
		}
		if bWork > 0 {
			// Charged as one synchronous fold per diagonal; the true
			// in-tile closure depth is the O(B) dependency chain the
			// package comment (and DESIGN.md's knob map) documents.
			res.Acct.ChargeReduce(closedCells(d, b, nb, size), 2*int64(b), bWork)
		}
	}
	return res, nil
}

// closedCells counts the cells phase B relaxes on block-diagonal d —
// tile areas minus the leaf and empty spans the closure skips.
func closedCells(d, b, nb, size int) int64 {
	lastLen := int64(size - (nb-1)*b)
	var cells int64
	switch {
	case d == 0:
		full := int64(b)*(int64(b)-1)/2 - (int64(b) - 1)
		cells = int64(nb-1)*full + lastLen*(lastLen-1)/2 - (lastLen - 1)
	case d == 1:
		// One corner cell per tile is the leaf (i1-1, i1).
		cells = int64(nb-d-1)*(int64(b)*int64(b)-1) + int64(b)*lastLen - 1
	default:
		cells = int64(nb-d-1)*int64(b)*int64(b) + int64(b)*lastLen
	}
	return cells
}
