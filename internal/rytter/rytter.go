// Package rytter implements the baseline the paper improves upon:
// W. Rytter's parallel algorithm for recurrence (*) (Note on efficient
// parallel computations for some dynamic programming problems, TCS 59,
// 1988), reconstructed from the recurrences as restated by Huang, Liu and
// Viswanathan.
//
// Rytter's algorithm keeps the same w'/pw' state as the HLV algorithm but
// its square operation is the full min-plus composition
//
//	pw'(i,j,p,q) <- min over i<=r<=p, q<=s<=j of pw'(i,j,r,s)+pw'(r,s,p,q)
//
// i.e. the gap may move toward (p,q) on both sides at once. In the
// pebbling game this is pointer doubling (cond(x) := cond(cond(x))), so
// only O(log n) moves are needed — but each square inspects O(n^2)
// intermediates for each of the O(n^4) cells: O(n^6) work per move and
// O(n^6/log n) processors, against which the paper's O(n^2 log n)
// improvement in the processor-time product is measured (experiment E2).
package rytter

import (
	"context"
	"math/bits"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/pram"
	"sublineardp/internal/recurrence"
)

// Options configures a Rytter run.
type Options struct {
	// Workers is the goroutine count (0 = GOMAXPROCS).
	Workers int
	// MaxIterations caps the move count; 0 means the default
	// 2*ceil(log2(n)) + 4 budget (tests confirm the doubling game
	// finishes well inside it).
	MaxIterations int
	// Target, when non-nil, records ConvergedAt as in core.Options.
	Target *recurrence.Table
	// Pool is the persistent worker pool the moves dispatch onto
	// (nil = the process-wide shared pool).
	Pool *parutil.Pool
	// Semiring overrides the algebra the recurrence is evaluated over
	// (nil = the instance's declared algebra, min-plus by default). The
	// pointer-doubling argument only needs idempotence, like HLV's.
	Semiring algebra.Semiring
}

// Result carries the outcome.
type Result struct {
	Table       *recurrence.Table
	Iterations  int
	ConvergedAt int
	Acct        pram.Accounting
}

// Cost returns c(0,n).
func (r *Result) Cost() cost.Cost { return r.Table.Root() }

// DefaultIterations is Rytter's move budget for size n.
func DefaultIterations(n int) int {
	if n < 2 {
		return 2
	}
	return 2*bits.Len(uint(n-1)) + 4
}

type state struct {
	sr      algebra.Kernel
	n, sz   int
	in      *recurrence.Instance
	w       []cost.Cost
	wNext   []cost.Cost
	pw      []cost.Cost
	pwNext  []cost.Cost
	pairs   [][2]int32
	workers int
	pool    *parutil.Pool
}

func (s *state) idx(i, j, p, q int) int {
	return ((i*s.sz+j)*s.sz+p)*s.sz + q
}

// forPairs dispatches body over every pair index on the state's pool.
func (s *state) forPairs(body func(t int)) {
	s.pool.ForChunked(s.workers, len(s.pairs), 0, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			body(t)
		}
	})
}

// Solve runs Rytter's algorithm to its fixed budget (or early stability)
// and returns the table, which tests verify equals the sequential DP.
func Solve(in *recurrence.Instance, opts Options) *Result {
	res, err := SolveCtx(context.Background(), in, opts)
	if err != nil {
		// Only reachable for an unregistered instance algebra; the
		// background context never cancels.
		panic(err)
	}
	return res
}

// SolveCtx is Solve with cooperative cancellation, checked before each
// doubling move (each move is O(n^6) work, but only O(log n) of them
// exist). A cancelled or expired context aborts with a nil Result and
// ctx.Err().
func SolveCtx(ctx context.Context, in *recurrence.Instance, opts Options) (*Result, error) {
	sr, err := algebra.Resolve(opts.Semiring, in.Algebra)
	if err != nil {
		return nil, err
	}
	n := in.N
	sz := n + 1
	s := &state{
		sr: sr,
		n:  n, sz: sz, in: in,
		w:       make([]cost.Cost, sz*sz),
		wNext:   make([]cost.Cost, sz*sz),
		pw:      make([]cost.Cost, sz*sz*sz*sz),
		pwNext:  make([]cost.Cost, sz*sz*sz*sz),
		workers: opts.Workers,
		pool:    opts.Pool,
	}
	if s.pool == nil {
		s.pool = parutil.Default()
	}
	zero := sr.Zero()
	for i := range s.w { //lint:allow ctxpoll O(n^2) Zero fill before the polled iteration; rytter is size-capped by the heavy-engine policy
		s.w[i] = zero
	}
	for i := range s.pw { //lint:allow ctxpoll O(n^4) pw fill is this engine's unavoidable state init, size-capped by the heavy-engine policy
		s.pw[i] = zero
	}
	for i := 0; i < n; i++ { //lint:allow ctxpoll O(n) Init fill before the polled iteration
		s.w[i*sz+i+1] = in.Init(i)
	}
	one := sr.One()
	for i := 0; i <= n; i++ { //lint:allow ctxpoll O(n^2) pair-list build before the polled iteration
		for j := i + 1; j <= n; j++ {
			s.pw[s.idx(i, j, i, j)] = one
			s.pairs = append(s.pairs, [2]int32{int32(i), int32(j)})
		}
	}

	budget := opts.MaxIterations
	if budget <= 0 {
		budget = DefaultIterations(n)
	}
	res := &Result{ConvergedAt: -1}

	// Exact per-iteration charges.
	var squareCells, squareWork, squareMaxM int64
	var pebbleCells, pebbleWork, pebbleMaxM int64
	for L := int64(1); L <= int64(n); L++ { //lint:allow ctxpoll closed-form charge accounting over spans, no table work
		pairsL := int64(n) + 1 - L
		var cells, work int64
		for a := int64(0); a <= L; a++ { // a = p-i
			for b := int64(0); a+b <= L-1; b++ { // b = j-q
				cells++
				m := (a + 1) * (b + 1) // (r,s) choices
				work += m
				if m > squareMaxM {
					squareMaxM = m
				}
			}
		}
		squareCells += pairsL * cells
		squareWork += pairsL * work
		if L >= 2 {
			m := L * (L + 1) / 2
			pebbleCells += pairsL
			pebbleWork += pairsL * m
			if m > pebbleMaxM {
				pebbleMaxM = m
			}
		}
	}
	triples := int64(sz) * int64(n) * int64(n-1) / 6
	activateWork := 2 * triples

	stable := 0
	for iter := 1; iter <= budget; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.activate()
		s.square()
		wChanged := s.pebble()
		res.Acct.ChargeUnit(activateWork)
		res.Acct.ChargeReduce(squareCells, squareMaxM, squareWork)
		res.Acct.ChargeReduce(pebbleCells, pebbleMaxM, pebbleWork)
		res.Iterations = iter
		if opts.Target != nil && res.ConvergedAt < 0 && s.wEquals(opts.Target) {
			res.ConvergedAt = iter
		}
		if wChanged == 0 {
			stable++
			if stable >= 2 {
				break
			}
		} else {
			stable = 0
		}
	}

	res.Table = recurrence.NewTable(n)
	for i := 0; i <= n; i++ { //lint:allow ctxpoll O(n^2) result copy after the polled iteration loop has ended
		for j := i + 1; j <= n; j++ {
			res.Table.Set(i, j, s.w[i*sz+j])
		}
	}
	return res, nil
}

func (s *state) activate() {
	in := s.in
	s.forPairs(func(t int) {
		pr := s.pairs[t]
		i, j := int(pr[0]), int(pr[1])
		if j-i < 2 {
			return
		}
		for k := i + 1; k < j; k++ {
			fv := in.F(i, k, j) //lint:allow bulkonly heavy O(n^4)-state reference engine, size-capped and never on the bulk serving path
			s.sr.RelaxAt(s.pw, s.idx(i, j, i, k), fv, s.w[k*s.sz+j])
			s.sr.RelaxAt(s.pw, s.idx(i, j, k, j), fv, s.w[i*s.sz+k])
		}
	})
}

// square is the full composition over both-sided intermediates — the
// O(n^6)-work step that HLV's restricted square avoids.
func (s *state) square() {
	src, dst := s.pw, s.pwNext
	s.forPairs(func(t int) {
		pr := s.pairs[t]
		i, j := int(pr[0]), int(pr[1])
		for p := i; p <= j; p++ {
			for q := p + 1; q <= j; q++ {
				c := s.idx(i, j, p, q)
				best := src[c]
				for r := i; r <= p; r++ {
					for x := q; x <= j; x++ {
						best = s.sr.Relax2(best, src[s.idx(i, j, r, x)], src[s.idx(r, x, p, q)])
					}
				}
				dst[c] = best
			}
		}
	})
	s.pw, s.pwNext = s.pwNext, s.pw
}

func (s *state) pebble() int64 {
	copy(s.wNext, s.w)
	changed := s.pool.SumInt64(s.workers, len(s.pairs), 0, func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr[0]), int(pr[1])
			if j-i < 2 {
				continue
			}
			c := i*s.sz + j
			best := s.w[c]
			for p := i; p <= j; p++ {
				for q := p + 1; q <= j; q++ {
					if p == i && q == j {
						continue
					}
					best = s.sr.Relax2(best, s.pw[s.idx(i, j, p, q)], s.w[p*s.sz+q])
				}
			}
			if best != s.w[c] {
				local++
			}
			s.wNext[c] = best
		}
		return local
	})
	s.w, s.wNext = s.wNext, s.w
	return changed
}

func (s *state) wEquals(t *recurrence.Table) bool {
	for i := 0; i <= s.n; i++ {
		for j := i + 1; j <= s.n; j++ {
			if s.sr.Norm(s.w[i*s.sz+j]) != s.sr.Norm(t.At(i, j)) {
				return false
			}
		}
	}
	return true
}
