package verify

import (
	"strings"
	"testing"
	"testing/quick"

	"sublineardp/internal/btree"
	"sublineardp/internal/core"
	"sublineardp/internal/problems"
	"sublineardp/internal/seq"
)

func TestTableAcceptsCorrectSolve(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := problems.RandomInstance(12, 40, seed)
		rep := Table(in, seq.Solve(in).Table)
		if !rep.OK() {
			t.Fatalf("seed %d: correct table rejected: %v", seed, rep.Err())
		}
		if rep.Checked != in.NumNodes() {
			t.Fatalf("checked %d cells, want %d", rep.Checked, in.NumNodes())
		}
	}
}

func TestTableAcceptsParallelSolve(t *testing.T) {
	in := problems.CLRSMatrixChain()
	res := core.Solve(in, core.Options{Variant: core.Banded})
	if rep := Table(in, res.Table); !rep.OK() {
		t.Fatalf("parallel table rejected: %v", rep.Err())
	}
}

func TestTableRejectsTooHigh(t *testing.T) {
	in := problems.CLRSMatrixChain()
	tbl := seq.Solve(in).Table
	tbl.Set(1, 4, tbl.At(1, 4)+1)
	rep := Table(in, tbl)
	if rep.OK() {
		t.Fatal("perturbed-up table accepted")
	}
	// The direct perturbation is too-high at (1,4); ancestors become
	// inconsistent in either direction — just require (1,4) reported.
	found := false
	for _, v := range rep.Violations {
		if v.I == 1 && v.J == 4 && v.Kind == "too-high" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations did not include (1,4) too-high: %v", rep.Violations)
	}
}

func TestTableRejectsTooLow(t *testing.T) {
	in := problems.CLRSMatrixChain()
	tbl := seq.Solve(in).Table
	tbl.Set(0, 6, tbl.At(0, 6)-1)
	rep := Table(in, tbl)
	if rep.OK() {
		t.Fatal("perturbed-down table accepted")
	}
	if rep.Violations[0].Kind != "too-low" {
		t.Fatalf("kind = %s, want too-low", rep.Violations[0].Kind)
	}
	if !strings.Contains(rep.Err().Error(), "too-low") {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

func TestTableRejectsBadLeaf(t *testing.T) {
	in := problems.CLRSMatrixChain()
	tbl := seq.Solve(in).Table
	tbl.Set(2, 3, 99)
	rep := Table(in, tbl)
	ok := false
	for _, v := range rep.Violations {
		if v.Kind == "leaf" && v.I == 2 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("leaf violation missed: %v", rep.Violations)
	}
}

func TestTreeVerification(t *testing.T) {
	in := problems.CLRSMatrixChain()
	res := seq.Solve(in)
	if err := Tree(in, res.Table, res.Tree()); err != nil {
		t.Fatalf("optimal tree rejected: %v", err)
	}
	// A suboptimal tree (complete shape is not optimal for CLRS) must be
	// rejected, as must a tree of the wrong size.
	if err := Tree(in, res.Table, btree.Complete(6)); err == nil {
		t.Fatal("suboptimal tree accepted")
	}
	if err := Tree(in, res.Table, btree.Complete(7)); err == nil {
		t.Fatal("wrong-size tree accepted")
	}
}

func TestUpperBoundedBy(t *testing.T) {
	in := problems.Zigzag(16)
	opt := seq.Solve(in).Table
	partial := core.Solve(in, core.Options{Variant: core.Dense, MaxIterations: 2}).Table
	if err := UpperBoundedBy(partial, opt); err != nil {
		t.Fatalf("intermediate state undershoots: %v", err)
	}
	if err := UpperBoundedBy(opt, partial); err == nil {
		t.Fatal("reverse bound accepted (partial state is strictly above somewhere)")
	}
}

// Property: every intermediate iteration of the parallel solver is a
// pointwise upper bound on the optimum (the invariant verify exists to
// check).
func TestMonotoneInvariantProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%8 + 3
		in := problems.RandomInstance(n, 30, seed)
		opt := seq.Solve(in).Table
		for it := 1; it <= core.DefaultIterations(n); it++ {
			partial := core.Solve(in, core.Options{Variant: core.Banded, MaxIterations: it}).Table
			if UpperBoundedBy(partial, opt) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
