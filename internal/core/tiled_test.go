package core

import (
	"fmt"
	"testing"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
)

// The cache-tiled a-square kernels must be bitwise equivalent to the
// reference kernels at every iteration — same tables, same per-iteration
// change statistics. Partial runs (MaxIterations) pin the intermediate
// states, not just the fixpoint.
func TestTiledKernelMatchesReference(t *testing.T) {
	instances := []struct {
		name string
		in   func() *recurrence.Instance
	}{
		{"random-n13", func() *recurrence.Instance { return problems.RandomInstance(13, 40, 7) }},
		{"zigzag-n16", func() *recurrence.Instance { return problems.Zigzag(16) }},
		{"matrixchain-n20", func() *recurrence.Instance { return problems.RandomMatrixChain(20, 60, 3) }},
		{"obst-n12", func() *recurrence.Instance { return problems.RandomOBST(12, 30, 9) }},
	}
	for _, tc := range instances {
		in := tc.in().Materialize()
		for _, variant := range []Variant{Dense, Banded} {
			for _, radius := range bandRadii(variant, in.N) {
				for it := 1; it <= DefaultIterations(in.N); it++ {
					opts := Options{
						Variant:       variant,
						BandRadius:    radius,
						MaxIterations: it,
						History:       true,
					}
					fast := Solve(in, opts)
					opts.forceLegacyKernel = true
					ref := Solve(in, opts)
					label := fmt.Sprintf("%s/%s/D=%d/iter=%d", tc.name, variant, radius, it)
					if !fast.Table.Equal(ref.Table) {
						t.Fatalf("%s: tiled kernel diverged: %v", label, fast.Table.Diff(ref.Table, 3))
					}
					if len(fast.History) != len(ref.History) {
						t.Fatalf("%s: history length %d vs %d", label, len(fast.History), len(ref.History))
					}
					for k := range fast.History {
						if fast.History[k] != ref.History[k] {
							t.Fatalf("%s: iteration stats diverged at %d: %+v vs %+v",
								label, k+1, fast.History[k], ref.History[k])
						}
					}
				}
			}
		}
	}
}

func bandRadii(v Variant, n int) []int {
	if v == Dense {
		return []int{0}
	}
	// Default D, a narrow band, and a band past n (stores everything).
	return []int{0, 2, n + 1}
}

// The same bitwise tiled-vs-reference pin, across every registered
// algebra: the panel kernels must agree with the generic reference sweep
// not just for min-plus but under max-plus and bool-plan, at every
// intermediate iteration.
func TestTiledKernelMatchesReferenceAcrossSemirings(t *testing.T) {
	for _, algName := range algebra.Names() {
		sr, ok := algebra.Lookup(algName)
		if !ok {
			t.Fatalf("algebra %q not resolvable", algName)
		}
		base := problems.RandomMatrixChain(14, 40, 11).Materialize()
		in := &recurrence.Instance{N: base.N, Name: base.Name, Init: base.Init, F: base.F}
		if algName == "bool-plan" {
			// 0/1 values with a mix of forbidden splits and leaves.
			in.Init = func(i int) cost.Cost { return cost.Cost(1) }
			in.F = func(i, k, j int) cost.Cost { return cost.Cost((i + 2*k + j) % 2) }
		}
		for _, variant := range []Variant{Dense, Banded} {
			for _, radius := range bandRadii(variant, in.N) {
				for it := 1; it <= DefaultIterations(in.N); it++ {
					opts := Options{
						Variant:       variant,
						BandRadius:    radius,
						MaxIterations: it,
						History:       true,
						Semiring:      sr,
					}
					fast := Solve(in, opts)
					opts.forceLegacyKernel = true
					ref := Solve(in, opts)
					label := fmt.Sprintf("%s/%s/D=%d/iter=%d", algName, variant, radius, it)
					if !fast.Table.Equal(ref.Table) {
						t.Fatalf("%s: tiled kernel diverged: %v", label, fast.Table.Diff(ref.Table, 3))
					}
					for k := range fast.History {
						if fast.History[k] != ref.History[k] {
							t.Fatalf("%s: iteration stats diverged at %d: %+v vs %+v",
								label, k+1, fast.History[k], ref.History[k])
						}
					}
				}
			}
		}
	}
}
