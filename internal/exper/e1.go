package exper

import (
	"fmt"
	"math"
	"math/rand"

	"sublineardp/internal/btree"
	"sublineardp/internal/core"
	"sublineardp/internal/pebble"
	"sublineardp/internal/problems"
	"sublineardp/internal/seq"
	"sublineardp/internal/stats"
)

// E1IterationsVsShape measures how many iterations the algorithm needs
// until the whole w' table matches the sequential optimum, per
// optimal-tree shape. It reproduces the Section 6 discussion: the zigzag
// tree is the Theta(sqrt n) pathology, complete trees take O(log n),
// straight spines are fast for the dense algebra (binary decomposition of
// partial trees) but sqrt-ish for the banded variant, whose band cannot
// hold the long spine partial trees; everything stays within the
// Lemma 3.3 budget.
func E1IterationsVsShape(cfg Config) []*Table {
	denseSizes := []int{9, 16, 25, 36, 49}
	bandedSizes := []int{9, 16, 25, 36, 49, 64, 100}
	if cfg.Quick {
		denseSizes = []int{9, 16}
		bandedSizes = []int{9, 16, 25}
	}

	shapes := []struct {
		name string
		mk   func(n int) *btree.Tree
	}{
		{"zigzag", btree.Zigzag},
		{"complete", btree.Complete},
		{"skewed", btree.LeftSkewed},
		{"random(s=1)", func(n int) *btree.Tree { return btree.RandomSplit(n, rand.New(rand.NewSource(1))) }},
	}

	t := &Table{
		ID:       "E1",
		Title:    "Iterations to full convergence by optimal-tree shape",
		PaperRef: "Lemma 3.3 bound 2*ceil(sqrt n); Section 6 zigzag vs complete/skewed discussion",
		Columns:  []string{"shape", "n", "bound 2⌈√n⌉", "game moves", "dense iters", "banded iters", "banded+window"},
	}

	for _, sh := range shapes {
		for _, n := range bandedSizes {
			tree := sh.mk(n)
			in := problems.Shaped(tree)
			want := seq.Solve(in).Table
			moves, _ := pebble.MovesOn(tree, pebble.HLVRule)

			denseIters := "-"
			if contains(denseSizes, n) {
				res := core.Solve(in, core.Options{Variant: core.Dense, Target: want, Workers: cfg.Workers})
				denseIters = fmt.Sprintf("%d", res.ConvergedAt)
			}
			resB := core.Solve(in, core.Options{Variant: core.Banded, Target: want, Workers: cfg.Workers})
			resW := core.Solve(in, core.Options{Variant: core.Banded, Window: true, Target: want, Workers: cfg.Workers})
			t.AddRow(sh.name, n, pebble.LemmaBound(n), moves, denseIters,
				resB.ConvergedAt, resW.ConvergedAt)
		}
	}

	// Fit growth of the zigzag iterations against sqrt and log models.
	var xs, zig, cmp []float64
	for _, n := range bandedSizes {
		xs = append(xs, float64(n))
		inZ := problems.Shaped(btree.Zigzag(n))
		resZ := core.Solve(inZ, core.Options{Variant: core.Banded, Target: seq.Solve(inZ).Table, Workers: cfg.Workers})
		zig = append(zig, float64(resZ.ConvergedAt))
		inC := problems.Shaped(btree.Complete(n))
		resC := core.Solve(inC, core.Options{Variant: core.Banded, Target: seq.Solve(inC).Table, Workers: cfg.Workers})
		cmp = append(cmp, float64(resC.ConvergedAt))
	}
	zp := powerExponent(xs, zig)
	cpLog := logSlope(xs, cmp)
	t.Note("zigzag iterations ~ n^%.2f (paper: Theta(sqrt n), exponent 0.5)", zp)
	t.Note("complete-tree iterations ~ %.2f*log2(n) (paper: O(log n))", cpLog)
	t.Note("every run converged within the 2*ceil(sqrt n) budget")
	return []*Table{t}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func powerExponent(xs, ys []float64) float64 {
	e, _, _ := stats.PowerFit(xs, ys)
	return e
}

func logSlope(xs, ys []float64) float64 {
	var lx []float64
	for _, x := range xs {
		lx = append(lx, math.Log2(x))
	}
	return stats.LinFit(lx, ys).Slope
}
