package problems

import (
	"fmt"
	"sort"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// The families in this file are only expressible now that every engine
// is generic over the algebra: they declare a non-min-plus semiring on
// the instance itself, and their Canon hooks make them servable and
// cacheable — the algebra tag folded into Instance.Canonical keeps them
// from ever colliding with their min-plus twins.

// WorstCaseMatrixChain returns the max-plus twin of MatrixChain: the
// same decomposition costs, but the optimum sought is the *costliest*
// parenthesization — the adversarial bound planners and schedulers
// compare an evaluation order against ("how bad can an uninformed
// association get"). c(0,n) is the maximal multiplication count.
func WorstCaseMatrixChain(dims []int) *recurrence.Instance {
	if len(dims) < 2 {
		panic(fmt.Sprintf("problems: worst-case matrix chain needs >= 2 dimensions, got %d", len(dims)))
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("problems: nonpositive matrix dimension %d", d))
		}
	}
	d := make([]int64, len(dims))
	for i, v := range dims {
		d[i] = int64(v)
	}
	return &recurrence.Instance{
		N:       len(dims) - 1,
		Name:    fmt.Sprintf("worstchain-n%d", len(dims)-1),
		Algebra: algebra.NameMaxPlus,
		Canon:   func() []byte { return canon("worstchain", d) },
		Init:    func(i int) cost.Cost { return 0 },
		F: func(i, k, j int) cost.Cost {
			return cost.Cost(d[i] * d[k] * d[j])
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			dik := d[i] * d[k]
			row := d[j0 : j0+len(dst)]
			for t := range dst {
				dst[t] = cost.Cost(dik * row[t])
			}
		},
	}
}

// ForbiddenSplits returns the bool-plan feasibility family over n
// objects: a parenthesization is sought that never creates any of the
// forbidden subexpressions (i,j) — every split of a node (i,j) in the
// list is banned (F = 0), and a forbidden leaf (i,i+1) is infeasible
// outright (Init = 0). c(0,n) is 1 exactly when such a parenthesization
// exists. Pairs must satisfy 0 <= i < j <= n; duplicates are tolerated.
// The forbidden list is snapshotted, sorted and deduplicated, so the
// canonical encoding is order-independent.
func ForbiddenSplits(n int, forbidden [][2]int) *recurrence.Instance {
	if n < 1 {
		panic(fmt.Sprintf("problems: ForbiddenSplits needs n >= 1, got %d", n))
	}
	pairs := make([][2]int, len(forbidden))
	copy(pairs, forbidden)
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= p[1] || p[1] > n {
			panic(fmt.Sprintf("problems: forbidden pair (%d,%d) outside 0 <= i < j <= %d", p[0], p[1], n))
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	dedup := pairs[:0]
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			dedup = append(dedup, p)
		}
	}
	pairs = dedup
	sz := n + 1
	banned := make(map[int]struct{}, len(pairs))
	flat := make([]int64, 0, 2*len(pairs))
	for _, p := range pairs {
		banned[p[0]*sz+p[1]] = struct{}{}
		flat = append(flat, int64(p[0]), int64(p[1]))
	}
	return &recurrence.Instance{
		N:       n,
		Name:    fmt.Sprintf("forbiddensplit-n%d-m%d", n, len(pairs)),
		Algebra: algebra.NameBoolPlan,
		Canon:   func() []byte { return canon("boolsplit", []int64{int64(n)}, flat) },
		Init: func(i int) cost.Cost {
			if _, bad := banned[i*sz+i+1]; bad {
				return 0
			}
			return 1
		},
		F: func(i, k, j int) cost.Cost {
			if _, bad := banned[i*sz+j]; bad {
				return 0
			}
			return 1
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			for t := range dst {
				if _, bad := banned[i*sz+j0+t]; bad {
					dst[t] = 0
				} else {
					dst[t] = 1
				}
			}
		},
	}
}
