package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sublineardp"
	"sublineardp/internal/problems"
)

// -update refreshes the golden fixtures. The fixtures freeze the wire
// format: a diff here is an API break and must be deliberate.
var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// goldenCases are the frozen request/response exemplars, one per kind
// plus the serving-specific response variants.
func goldenCases() map[string]any {
	return map[string]any{
		"request_matrixchain.json": &Request{
			ID:   "req-1",
			Kind: KindMatrixChain,
			Dims: []int{30, 35, 15, 5, 10, 20, 25},
			Options: Options{
				Engine: "hlv-banded", Termination: "w-stable", BandRadius: 6,
			},
			WantTree: true,
		},
		"request_obst.json": &Request{
			ID:    "req-2",
			Kind:  KindOBST,
			Alpha: []int64{1, 2, 1, 0, 1},
			Beta:  []int64{4, 2, 6, 3},
		},
		"request_triangulation.json": &Request{
			Kind: KindTriangulation,
			Points: []Point{
				{X: 1000, Y: 0}, {X: 309, Y: 951}, {X: -809, Y: 588},
				{X: -809, Y: -588}, {X: 309, Y: -951},
			},
			Options: Options{Engine: "sequential"},
		},
		"request_wtriangulation.json": &Request{
			Kind:    KindWTriangulation,
			Weights: []int64{30, 35, 15, 5, 10, 20, 25},
			Options: Options{Mode: "chaotic", MaxIterations: 12},
		},
		"response_solved.json": &Response{
			ID: "req-1", Kind: KindMatrixChain, N: 6, Engine: "hlv-banded",
			Cost: 15125, TableDigest: "6a0e2e343d2a1c47a2b95245b1c0ab05e5b35058ee3b93dcbeb18f9d7154f4bc",
			Iterations: 5, StoppedEarly: true, BandRadius: 6,
			Tree: "((1 . (2 . 3)) . ((4 . 5) . 6))", ElapsedMicros: 1234,
		},
		"response_cached.json": &Response{
			ID: "req-9", Kind: KindOBST, N: 5, Engine: "sequential",
			Cost: 42, TableDigest: "1f2a7c3fcdd9d0b57c2b578b0ba4eddc66c2a31ba4fa40ad0cd1d14c9b4eeb95",
			Cached: true, ElapsedMicros: 11,
		},
		"response_coalesced.json": &Response{
			Kind: KindMatrixChain, N: 64, Engine: "hlv-banded",
			Cost: 99481, TableDigest: "0ab4d19933b09c9fe36a9287ba1cbd02e85c1c0b06158be64b2b0207ec2356f8",
			Iterations: 9, Coalesced: true, ElapsedMicros: 52017,
		},
		"request_worstchain.json": &Request{
			ID:   "req-w1",
			Kind: KindWorstChain,
			Dims: []int{30, 35, 15, 5, 10, 20, 25},
		},
		"request_boolsplit.json": &Request{
			ID:        "req-b1",
			Kind:      KindBoolSplit,
			Count:     6,
			Forbidden: []Span{{0, 3}, {2, 5}},
			Options:   Options{Engine: "hlv-banded"},
		},
		"request_semiring_override.json": &Request{
			Kind:    KindMatrixChain,
			Dims:    []int{2, 3, 4, 5},
			Options: Options{Semiring: "max-plus"},
		},
		"response_maxplus.json": &Response{
			ID: "req-w1", Kind: KindWorstChain, N: 6, Engine: "hlv-banded",
			Cost: 58000, TableDigest: "9c11361ff2a3fb415ad88d8f4329331ea0f1c4ab5a8b1a4ca41d1f84b9e01a02",
			Iterations: 5, Algebra: "max-plus", ElapsedMicros: 321,
		},
		"response_boolplan.json": &Response{
			ID: "req-b1", Kind: KindBoolSplit, N: 6, Engine: "sequential",
			Cost: 1, TableDigest: "5511361ff2a3fb415ad88d8f4329331ea0f1c4ab5a8b1a4ca41d1f84b9e01a02",
			Algebra: "bool-plan", Cached: true, ElapsedMicros: 17,
		},
		"error_bad_request.json": &ErrorBody{
			Error: `wire: obst needs len(alpha) == len(beta)+1, got 2 and 4`, Code: 400,
		},
		"request_segls.json": &Request{
			ID:   "req-c1",
			Kind: KindSegLS,
			Points: []Point{
				{X: 0, Y: 0}, {X: 1, Y: 10}, {X: 2, Y: 20}, {X: 3, Y: 18}, {X: 4, Y: 16},
			},
			Penalty:  2500,
			Options:  Options{Engine: "llp", Workers: 4},
			WantTree: true,
		},
		"request_wis.json": &Request{
			ID:      "req-c2",
			Kind:    KindWIS,
			Starts:  []int64{1, 3, 0, 5, 3, 5, 6, 8},
			Ends:    []int64{4, 5, 6, 7, 9, 9, 10, 11},
			Weights: []int64{3, 2, 5, 2, 4, 6, 2, 4},
		},
		"request_subsetsum.json": &Request{
			ID:      "req-c3",
			Kind:    KindSubsetSum,
			Target:  30,
			Items:   []int64{4, 9, 13},
			Options: Options{Engine: "sequential"},
		},
		"response_chain.json": &Response{
			ID: "req-c1", Kind: KindSegLS, N: 5, Engine: "llp",
			Cost: 7500, TableDigest: "3c0e2e343d2a1c47a2b95245b1c0ab05e5b35058ee3b93dcbeb18f9d7154f4bc",
			Iterations: 2, Tree: "0 2 5", ElapsedMicros: 87,
		},
	}
}

func TestGoldenWireFormat(t *testing.T) {
	for name, v := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", name)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/wire -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
			// Decode must round-trip back to the identical value: the
			// format carries everything the type does.
			back := reflect.New(reflect.TypeOf(v).Elem()).Interface()
			if err := json.Unmarshal(want, back); err != nil {
				t.Fatalf("golden file does not decode: %v", err)
			}
			if !reflect.DeepEqual(v, back) {
				t.Errorf("decode(%s) != original:\n got %+v\nwant %+v", name, back, v)
			}
		})
	}
}

func TestRequestValidate(t *testing.T) {
	bad := []Request{
		{},
		{Kind: "povray"},
		{Kind: KindMatrixChain, Dims: []int{5}},
		{Kind: KindMatrixChain, Dims: []int{5, 0, 3}},
		{Kind: KindOBST, Alpha: []int64{1, 1}, Beta: []int64{1, 1, 1, 1}},
		{Kind: KindOBST, Alpha: []int64{1, -2}, Beta: []int64{1}},
		{Kind: KindTriangulation, Points: []Point{{X: 1}, {Y: 1}}},
		{Kind: KindWTriangulation, Weights: []int64{3, 0, 3}},
		{Kind: KindMatrixChain, Dims: []int{2, 3, 4}, Options: Options{Mode: "frantic"}},
		{Kind: KindMatrixChain, Dims: []int{2, 3, 4}, Options: Options{Termination: "never"}},
		{Kind: KindMatrixChain, Dims: []int{2, 3, 4}, Options: Options{Semiring: "tropical?"}},
		{Kind: KindWorstChain, Dims: []int{5}},
		{Kind: KindWorstChain, Dims: []int{5, 0, 3}},
		{Kind: KindBoolSplit},
		{Kind: KindBoolSplit, Count: 4, Forbidden: []Span{{2, 2}}},
		{Kind: KindBoolSplit, Count: 4, Forbidden: []Span{{-1, 2}}},
		{Kind: KindBoolSplit, Count: 4, Forbidden: []Span{{1, 9}}},
		{Kind: KindSegLS},
		{Kind: KindSegLS, Points: []Point{{X: 0}, {X: 0}}},
		{Kind: KindSegLS, Points: []Point{{X: 0}, {X: 1}}, Penalty: -5},
		{Kind: KindWIS},
		{Kind: KindWIS, Starts: []int64{1, 2}, Ends: []int64{3}, Weights: []int64{1, 1}},
		{Kind: KindWIS, Starts: []int64{5}, Ends: []int64{5}, Weights: []int64{1}},
		{Kind: KindWIS, Starts: []int64{1}, Ends: []int64{2}, Weights: []int64{-1}},
		{Kind: KindSubsetSum, Items: []int64{3}},
		{Kind: KindSubsetSum, Target: 9},
		{Kind: KindSubsetSum, Target: 9, Items: []int64{3, 0}},
	}
	for i, r := range bad {
		if err := r.Validate(0); err == nil {
			t.Errorf("case %d (%+v): Validate accepted a malformed request", i, r)
		}
	}
	ok := Request{Kind: KindMatrixChain, Dims: []int{30, 35, 15, 5, 10, 20, 25}}
	if err := ok.Validate(0); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	if err := ok.Validate(5); err == nil {
		t.Error("Validate(maxN=5) accepted an n=6 instance")
	}
}

func TestRequestInstanceMatchesDirectConstruction(t *testing.T) {
	cases := []struct {
		req    Request
		direct func() *sublineardp.Instance
	}{
		{
			Request{Kind: KindMatrixChain, Dims: []int{30, 35, 15, 5, 10, 20, 25}},
			func() *sublineardp.Instance { return problems.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}) },
		},
		{
			Request{Kind: KindOBST, Alpha: []int64{1, 2, 1, 0, 1}, Beta: []int64{4, 2, 6, 3}},
			func() *sublineardp.Instance {
				return problems.OBST([]int64{1, 2, 1, 0, 1}, []int64{4, 2, 6, 3})
			},
		},
		{
			Request{Kind: KindWTriangulation, Weights: []int64{3, 7, 2, 9}},
			func() *sublineardp.Instance { return problems.WeightedTriangulation([]int64{3, 7, 2, 9}) },
		},
		{
			Request{Kind: KindTriangulation, Points: []Point{{1000, 0}, {0, 1000}, {-1000, 0}, {0, -1000}}},
			func() *sublineardp.Instance {
				return problems.Triangulation([]problems.Point{
					{X: 1000, Y: 0}, {X: 0, Y: 1000}, {X: -1000, Y: 0}, {X: 0, Y: -1000}})
			},
		},
		{
			Request{Kind: KindWorstChain, Dims: []int{30, 35, 15, 5, 10, 20, 25}},
			func() *sublineardp.Instance {
				return problems.WorstCaseMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
			},
		},
		{
			Request{Kind: KindBoolSplit, Count: 6, Forbidden: []Span{{0, 3}, {2, 5}}},
			func() *sublineardp.Instance {
				return problems.ForbiddenSplits(6, [][2]int{{0, 3}, {2, 5}})
			},
		},
	}
	solver := sublineardp.MustNewSolver(sublineardp.EngineSequential)
	for _, tc := range cases {
		t.Run(tc.req.Kind, func(t *testing.T) {
			if err := tc.req.Validate(0); err != nil {
				t.Fatal(err)
			}
			decoded, err := tc.req.Instance()
			if err != nil {
				t.Fatal(err)
			}
			direct := tc.direct()
			dc, ok1 := decoded.Canonical()
			cc, ok2 := direct.Canonical()
			if !ok1 || !ok2 {
				t.Fatal("wire-built instance not canonicalisable")
			}
			if !bytes.Equal(dc, cc) {
				t.Fatal("wire-built instance canonicalises differently from the direct constructor")
			}
			a, err := solver.Solve(context.Background(), decoded)
			if err != nil {
				t.Fatal(err)
			}
			b, err := solver.Solve(context.Background(), direct)
			if err != nil {
				t.Fatal(err)
			}
			if TableDigest(a.Table) != TableDigest(b.Table) {
				t.Fatal("wire-built instance solves to a different table")
			}
		})
	}
}

func TestChainRequestInstanceMatchesDirectConstruction(t *testing.T) {
	cases := []struct {
		req    Request
		direct func() *sublineardp.Chain
	}{
		{
			Request{Kind: KindSegLS, Penalty: 2500,
				Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 10}, {X: 2, Y: 20}, {X: 3, Y: 18}, {X: 4, Y: 16}}},
			func() *sublineardp.Chain {
				return problems.SegmentedLeastSquares(
					[]int64{0, 1, 2, 3, 4}, []int64{0, 10, 20, 18, 16}, 2500)
			},
		},
		{
			Request{Kind: KindWIS,
				Starts:  []int64{1, 3, 0, 5, 3, 5, 6, 8},
				Ends:    []int64{4, 5, 6, 7, 9, 9, 10, 11},
				Weights: []int64{3, 2, 5, 2, 4, 6, 2, 4}},
			func() *sublineardp.Chain {
				return problems.IntervalScheduling(
					[]int64{1, 3, 0, 5, 3, 5, 6, 8},
					[]int64{4, 5, 6, 7, 9, 9, 10, 11},
					[]int64{3, 2, 5, 2, 4, 6, 2, 4})
			},
		},
		{
			Request{Kind: KindSubsetSum, Target: 30, Items: []int64{4, 9, 13}},
			func() *sublineardp.Chain { return problems.SubsetSum(30, []int64{4, 9, 13}) },
		},
	}
	solver := sublineardp.MustNewChainSolver(sublineardp.ChainEngineSequential)
	for _, tc := range cases {
		t.Run(tc.req.Kind, func(t *testing.T) {
			if !IsChainKind(tc.req.Kind) {
				t.Fatalf("IsChainKind(%q) = false", tc.req.Kind)
			}
			if err := tc.req.Validate(0); err != nil {
				t.Fatal(err)
			}
			if _, err := tc.req.Instance(); err == nil {
				t.Fatal("Instance() accepted a chain kind")
			}
			decoded, err := tc.req.ChainInstance()
			if err != nil {
				t.Fatal(err)
			}
			direct := tc.direct()
			dc, ok1 := decoded.Canonical()
			cc, ok2 := direct.Canonical()
			if !ok1 || !ok2 {
				t.Fatal("wire-built chain not canonicalisable")
			}
			if !bytes.Equal(dc, cc) {
				t.Fatal("wire-built chain canonicalises differently from the direct constructor")
			}
			a, err := solver.Solve(context.Background(), decoded)
			if err != nil {
				t.Fatal(err)
			}
			b, err := solver.Solve(context.Background(), direct)
			if err != nil {
				t.Fatal(err)
			}
			if VectorDigest(a.Values) != VectorDigest(b.Values) {
				t.Fatal("wire-built chain solves to a different value vector")
			}
			resp := NewChainResponse(&tc.req, a)
			if resp.Kind != tc.req.Kind || resp.N != decoded.N || resp.TableDigest != VectorDigest(a.Values) {
				t.Fatalf("NewChainResponse mismatch: %+v", resp)
			}
		})
	}
}

func TestChainResponsePath(t *testing.T) {
	req := Request{Kind: KindSegLS, Penalty: 2500, WantTree: true,
		Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 5}, {X: 2, Y: 10}, {X: 3, Y: 15}}}
	if err := req.Validate(0); err != nil {
		t.Fatal(err)
	}
	c, err := req.ChainInstance()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sublineardp.MustNewChainSolver("").Solve(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewChainResponse(&req, sol)
	if resp.Tree != "0 4" {
		t.Fatalf("collinear points produced breakpoints %q, want \"0 4\"", resp.Tree)
	}
}

func TestVectorDigestDomainSeparated(t *testing.T) {
	s := sublineardp.MustNewChainSolver(sublineardp.ChainEngineSequential)
	a, err := s.Solve(context.Background(), problems.SubsetSum(20, []int64{3, 7}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Solve(context.Background(), problems.SubsetSum(20, []int64{3, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if VectorDigest(a.Values) == VectorDigest(b.Values) {
		t.Fatal("different vectors share a digest")
	}
	if VectorDigest(a.Values) != VectorDigest(a.Values.Clone()) {
		t.Fatal("cloned vector digests differently")
	}
}

func TestTableDigestDistinguishesTables(t *testing.T) {
	s := sublineardp.MustNewSolver(sublineardp.EngineSequential)
	a, err := s.Solve(context.Background(), problems.MatrixChain([]int{2, 3, 4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Solve(context.Background(), problems.MatrixChain([]int{2, 3, 4, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if TableDigest(a.Table) == TableDigest(b.Table) {
		t.Fatal("different tables share a digest")
	}
	if TableDigest(a.Table) != TableDigest(a.Table.Clone()) {
		t.Fatal("cloned table digests differently")
	}
}
