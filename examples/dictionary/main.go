// A realistic end-to-end workload: build the optimal static search tree
// for a dictionary whose access frequencies follow a Zipf law (the
// classic OBST application the paper's introduction motivates), at a size
// where the parallel algorithm's early termination visibly beats the
// worst-case budget.
//
// Run with:
//
//	go run ./examples/dictionary
package main

import (
	"context"
	"fmt"
	"log"

	"sublineardp"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/workload"
)

func main() {
	const keys = 120
	in := workload.DictionaryOBST(keys, 2026)
	fmt.Printf("workload: %s (n=%d objects)\n", in.Name, in.N)
	ctx := context.Background()

	// Worst-case budget vs adaptive stop (Section 7 heuristic), both
	// through the banded engine of the unified API.
	fixed, err := sublineardp.MustNewSolver(sublineardp.EngineHLVBanded).Solve(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := sublineardp.MustNewSolver(sublineardp.EngineHLVBanded,
		sublineardp.WithTermination(sublineardp.WStable)).Solve(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal weighted path length: %d\n", adaptive.Cost())
	fmt.Printf("fixed budget:   %3d iterations, %s\n", fixed.Iterations, fixed.Acct.String())
	fmt.Printf("adaptive stop:  %3d iterations, %s\n", adaptive.Iterations, adaptive.Acct.String())
	if fixed.Cost() != adaptive.Cost() {
		log.Fatal("termination rule changed the optimum")
	}

	// Recover and certify the tree from the parallel value table — the
	// paper's algorithm computes values only; Solution.Tree extracts the
	// actual solution.
	tree, err := adaptive.Tree()
	if err != nil {
		log.Fatal(err)
	}
	if got := sublineardp.TreeCost(in, tree); got != adaptive.Cost() {
		log.Fatalf("certificate mismatch: tree %d vs table %d", got, adaptive.Cost())
	}
	fmt.Printf("reconstructed optimal BST: height %d over %d keys (log2(n)=%.1f)\n",
		tree.Height(), keys, float64(log2(keys)))

	// How unbalanced is the optimum? Zipf weights pull hot keys to the
	// root: compare against a perfectly balanced tree's cost.
	balanced := sublineardp.CompleteTree(in.N)
	balCost := recurrence.TreeCost(in, balanced)
	fmt.Printf("balanced-tree cost: %d (optimal saves %.1f%%)\n",
		balCost, 100*(1-float64(adaptive.Cost())/float64(balCost)))
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
