package sublineardp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"sublineardp/internal/blocked"
	"sublineardp/internal/parutil"
)

// SolveBatch fans a slice of instances across a worker pool — the
// building block for serving many requests at once. Scheduling is by
// engine name (WithEngine; the default "auto" routes each instance by
// size: small ones to the cache-friendly sequential scan, large ones to
// the banded HLV iteration), and WithConcurrency bounds how many
// instances are in flight at once (default GOMAXPROCS).
//
// The whole batch runs on one persistent worker pool — WithPool's if
// given, else the process-wide shared pool: the batch fan-out claims
// instances from it and every solve dispatches its kernels onto it, so a
// batch spawns no per-instance goroutines and per-solve buffers recycle
// through the shared arena.
//
// The result slice is order-stable and complete: result[i] is the
// solution of instances[i] for every i, independent of scheduling order.
// Unless WithWorkers overrides it, each solve runs single-threaded so
// batch-level parallelism is not oversubscribed by intra-solve
// parallelism.
//
// Cancellation: when ctx is cancelled or its deadline passes, in-flight
// solves abort at their next cooperative check and unstarted instances
// are skipped. Failed or skipped slots are nil in the result slice and
// their errors (each wrapped with the instance index) are joined into
// the returned error; errors.Is(err, context.Canceled) reports a
// cancelled batch.
func SolveBatch(ctx context.Context, instances []*Instance, opts ...Option) ([]*Solution, error) {
	cfg := buildConfig(opts)
	if cfg.Engine == "" {
		cfg.Engine = EngineAuto
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(instances) {
		workers = len(instances)
	}
	// Captured before the per-solve width is forced to 1: an overlapped
	// pipe group IS the batch's parallelism (one shared scheduler), so it
	// keeps the caller's intra-solve width (0 = pool width).
	pipeWorkers := cfg.Workers
	if cfg.Workers == 0 && workers > 1 {
		cfg.Workers = 1
	}
	pool := cfg.Pool
	if pool == nil {
		pool = parutil.Default()
		cfg.Pool = pool // every solve of the batch shares it
	}
	// One shared Solver does each solve, so batch slots get exactly the
	// validation, timing and engine dispatch a direct Solve call gets.
	solver, err := NewSolver(cfg.Engine, func(c *Config) { *c = cfg })
	if err != nil {
		return nil, err
	}

	out := make([]*Solution, len(instances))
	if len(instances) == 0 {
		return out, nil
	}
	errs := make([]error, len(instances))

	// Cross-solve overlap: two or more instances destined for the
	// pipelined blocked engine seed their tile graphs into one shared
	// scheduler (blocked.SolvePipeBatchCtx) instead of running as fenced
	// per-instance solves — one solve's tail tiles fill another's head.
	// Only the plain path overlaps: a cache, a convergence target, or a
	// convexity contract each need the per-instance Solve protocol.
	var pipeIdx []int
	inPipe := make([]bool, len(instances))
	if cfg.Cache == nil && cfg.Target == nil && !cfg.Convexity {
		for i, in := range instances {
			if in == nil || in.N < 1 {
				continue // the per-instance path reports the invalid instance
			}
			name := cfg.Engine
			if name == EngineAuto {
				name = pickAutoName(in, &cfg)
			}
			if name == EngineBlockedPipe {
				pipeIdx = append(pipeIdx, i)
			}
		}
		if len(pipeIdx) >= 2 {
			for _, i := range pipeIdx {
				inPipe[i] = true
			}
		} else {
			pipeIdx = nil
		}
	}

	var pipeDone chan struct{}
	if pipeIdx != nil {
		items := make([]blocked.BatchItem, len(pipeIdx))
		for k, i := range pipeIdx {
			items[k] = blocked.BatchItem{In: instances[i]}
		}
		pipeDone = make(chan struct{})
		go func() {
			defer close(pipeDone)
			start := time.Now()
			results, perrs := blocked.SolvePipeBatchCtx(ctx, items, blocked.Options{
				Workers:      pipeWorkers,
				Pool:         pool,
				TileSize:     cfg.TileSize,
				Semiring:     cfg.Semiring,
				RecordSplits: cfg.RecordSplits,
			})
			elapsed := time.Since(start)
			for k, i := range pipeIdx {
				if perrs[k] != nil {
					errs[i] = fmt.Errorf("instance %d (%s): %w", i, instances[i].Name, perrs[k])
					continue
				}
				sol := blockedSolution(EngineBlockedPipe, instances[i], &cfg, results[k])
				// The group ran as one graph; each solution reports the
				// group's wall clock (and its joint Stats view).
				sol.Elapsed = elapsed
				out[i] = sol
			}
		}()
	}

	// The fan-out for the remaining instances runs on the same pool as
	// the solves (and as the pipe group's graph); grain 1 claims one
	// instance at a time so slow solves balance.
	rest := make([]int, 0, len(instances))
	for i := range instances {
		if !inPipe[i] {
			rest = append(rest, i)
		}
	}
	if len(rest) > 0 {
		pool.ForChunked(workers, len(rest), 1, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				i := rest[r]
				in := instances[i]
				label := "<nil>"
				if in != nil {
					label = in.Name
				}
				sol, err := solver.Solve(ctx, in)
				if err != nil {
					errs[i] = fmt.Errorf("instance %d (%s): %w", i, label, err)
					continue
				}
				out[i] = sol
			}
		})
	}
	if pipeDone != nil {
		<-pipeDone
	}
	return out, errors.Join(errs...)
}
