package recurrence

import (
	"bytes"
	"strings"
	"testing"

	"sublineardp/internal/cost"
)

func toy(n int) *Instance {
	return &Instance{
		N:    n,
		Name: "toy",
		Init: func(i int) cost.Cost { return cost.Cost(i + 1) },
		F:    func(i, k, j int) cost.Cost { return cost.Cost(i + k + j) },
	}
}

func TestValidateOK(t *testing.T) {
	if err := toy(6).Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestValidateRejectsSmallN(t *testing.T) {
	in := toy(0)
	if err := in.Validate(); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestValidateRejectsNilCallbacks(t *testing.T) {
	in := &Instance{N: 3}
	if err := in.Validate(); err == nil {
		t.Fatal("nil callbacks accepted")
	}
}

func TestValidateRejectsNegativeInit(t *testing.T) {
	in := toy(4)
	in.Init = func(i int) cost.Cost { return -1 }
	err := in.Validate()
	if err == nil || !strings.Contains(err.Error(), "init") {
		t.Fatalf("negative init not caught: %v", err)
	}
}

func TestValidateRejectsNegativeF(t *testing.T) {
	in := toy(4)
	in.F = func(i, k, j int) cost.Cost {
		if i == 0 && k == 2 && j == 3 {
			return -5
		}
		return 0
	}
	err := in.Validate()
	if err == nil || !strings.Contains(err.Error(), "f(0,2,3)") {
		t.Fatalf("negative f not caught: %v", err)
	}
}

func TestNumNodes(t *testing.T) {
	cases := map[int]int{1: 1, 2: 3, 3: 6, 10: 55}
	for n, want := range cases {
		if got := toy(n).NumNodes(); got != want {
			t.Errorf("NumNodes(N=%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMaterializeAgrees(t *testing.T) {
	in := toy(8)
	m := in.Materialize()
	if m.N != in.N || m.Name != in.Name {
		t.Fatalf("metadata lost: %+v", m)
	}
	for i := 0; i < in.N; i++ {
		if m.Init(i) != in.Init(i) {
			t.Fatalf("init(%d) mismatch", i)
		}
	}
	for i := 0; i <= in.N; i++ {
		for k := i + 1; k <= in.N; k++ {
			for j := k + 1; j <= in.N; j++ {
				if m.F(i, k, j) != in.F(i, k, j) {
					t.Fatalf("f(%d,%d,%d) mismatch", i, k, j)
				}
			}
		}
	}
}

func TestMaterializeIsStable(t *testing.T) {
	// Materialized instance must not re-invoke the original callbacks.
	calls := 0
	in := &Instance{
		N:    5,
		Init: func(i int) cost.Cost { calls++; return 1 },
		F:    func(i, k, j int) cost.Cost { calls++; return 1 },
	}
	m := in.Materialize()
	calls = 0
	_ = m.Init(2)
	_ = m.F(0, 2, 4)
	if calls != 0 {
		t.Fatalf("materialized instance re-invoked callbacks %d times", calls)
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable(5)
	if !cost.IsInf(tb.At(0, 5)) {
		t.Fatal("fresh table not Inf")
	}
	tb.Set(1, 4, 42)
	if tb.At(1, 4) != 42 {
		t.Fatal("Set/At roundtrip failed")
	}
	tb.Set(0, 5, 7)
	if tb.Root() != 7 {
		t.Fatalf("Root = %d, want 7", tb.Root())
	}
}

func TestTableEqualAndClone(t *testing.T) {
	a := NewTable(4)
	a.Set(0, 4, 10)
	a.Set(1, 3, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(1, 3, 4)
	if a.Equal(b) {
		t.Fatal("differing tables compared equal")
	}
	if a.Equal(NewTable(5)) {
		t.Fatal("different sizes compared equal")
	}
}

func TestTableEqualNormalisesInf(t *testing.T) {
	a := NewTable(3)
	b := NewTable(3)
	a.Set(0, 3, cost.Inf+99) // non-canonical infinity
	if !a.Equal(b) {
		t.Fatal("infinities not normalised in Equal")
	}
}

func TestTableDiff(t *testing.T) {
	a := NewTable(3)
	b := NewTable(3)
	a.Set(0, 2, 1)
	a.Set(1, 3, 2)
	d := a.Diff(b, 0)
	if len(d) != 2 {
		t.Fatalf("Diff found %d entries, want 2: %v", len(d), d)
	}
	d = a.Diff(b, 1)
	if len(d) != 1 {
		t.Fatalf("Diff with max=1 returned %d entries", len(d))
	}
	if len(a.Diff(NewTable(7), 0)) != 1 {
		t.Fatal("size mismatch not reported")
	}
}

// The algebra participates in the canonical encoding — except for
// min-plus, whose bytes must stay exactly the raw Canon output so
// content hashes from before algebras existed remain stable.
func TestCanonicalFoldsAlgebra(t *testing.T) {
	canon := func() []byte { return []byte{1, 2, 3} }
	minplus := &Instance{N: 2, Canon: canon}
	explicit := &Instance{N: 2, Canon: canon, Algebra: "min-plus"}
	maxplus := &Instance{N: 2, Canon: canon, Algebra: "max-plus"}
	boolplan := &Instance{N: 2, Canon: canon, Algebra: "bool-plan"}

	cm, ok := minplus.Canonical()
	if !ok || !bytes.Equal(cm, []byte{1, 2, 3}) {
		t.Fatalf("min-plus canonical %v altered", cm)
	}
	ce, _ := explicit.Canonical()
	if !bytes.Equal(cm, ce) {
		t.Fatal("explicit min-plus differs from default")
	}
	cx, _ := maxplus.Canonical()
	cb, _ := boolplan.Canonical()
	if bytes.Equal(cx, cm) || bytes.Equal(cb, cm) || bytes.Equal(cx, cb) {
		t.Fatal("algebra tag does not separate canonical encodings")
	}
	if !bytes.HasSuffix(cx, []byte{1, 2, 3}) {
		t.Fatal("tagged encoding does not preserve the Canon bytes")
	}
}

func TestMaterializePreservesAlgebra(t *testing.T) {
	in := &Instance{
		N:       3,
		Algebra: "max-plus",
		Init:    func(i int) cost.Cost { return 1 },
		F:       func(i, k, j int) cost.Cost { return 2 },
	}
	if got := in.Materialize().Algebra; got != "max-plus" {
		t.Fatalf("Materialize dropped the algebra: %q", got)
	}
}
