// The Section 3 pebbling game, played live on the paper's Figure 2
// shapes: watch the zigzag tree crawl toward the 2*sqrt(n) bound while
// the complete tree finishes in log n moves and Rytter's doubling rule
// finishes everything logarithmically.
//
// Run with:
//
//	go run ./examples/pebblegame
package main

import (
	"fmt"

	"sublineardp"
)

func main() {
	const n = 256
	fmt.Printf("pebbling full binary trees with %d leaves (Lemma 3.3 bound: %d moves)\n\n",
		n, sublineardp.PebbleBound(n))

	shapes := []struct {
		name string
		tree *sublineardp.Tree
	}{
		{"zigzag (Fig 2a, worst case)", sublineardp.ZigzagTree(n)},
		{"complete (Fig 2b)", sublineardp.CompleteTree(n)},
		{"skewed (Fig 2b)", sublineardp.SkewedTree(n)},
	}
	for _, sh := range shapes {
		h := sublineardp.NewPebbleGame(sh.tree, sublineardp.PebbleHLV)
		hm := h.Run(0)
		r := sublineardp.NewPebbleGame(sh.tree, sublineardp.PebbleRytter)
		rm := r.Run(0)
		fmt.Printf("%-28s hlv square: %3d moves   rytter square: %2d moves\n", sh.name, hm, rm)
	}

	// Trace the zigzag game move by move: the pebbled frontier (largest
	// pebbled subtree) grows quadratically — the proof mechanism of
	// Lemma 3.3 made visible.
	fmt.Println("\nzigzag frontier trace (hlv rule):")
	g := sublineardp.NewPebbleGame(sublineardp.ZigzagTree(n), sublineardp.PebbleHLV)
	g.Trace = func(move int, gg *sublineardp.PebbleGame) {
		largest := 0
		for v := int32(0); v < int32(gg.T.Len()); v++ {
			if gg.Pebbled(v) && gg.T.Size(v) > largest {
				largest = gg.T.Size(v)
			}
		}
		k := move / 2
		fmt.Printf("  move %2d: frontier %3d leaves (invariant floor k^2 = %3d)\n",
			move, largest, k*k)
	}
	g.Run(0)
	fmt.Printf("root pebbled after %d moves\n", g.Moves())
}
