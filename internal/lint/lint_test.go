package lint

import "testing"

// The tier-1 self-check: the full analyzer suite over this repository
// must be clean. Every finding below is either a genuine regression of
// a mechanized invariant (an unkeyed option, an unpollable loop, a
// per-candidate F call, a hot-loop allocation, a mixed atomic access)
// or a stale/malformed //lint:allow annotation — all of them merge
// blockers by the contract in DESIGN.md.
func TestRepoIsLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) < 20 {
		// A loader regression that silently drops packages would make
		// "clean" vacuous; the module has well over 20.
		t.Fatalf("suspiciously few packages loaded: %d", len(prog.Packages))
	}
	findings := Run(prog, DefaultSuite())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Log("fix the invariant breach, or discharge it with //lint:allow <check> <reason> at the finding site (see DESIGN.md, static-analysis layer)")
	}
}
