package core

import (
	"context"
	"fmt"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/pebble"
	"sublineardp/internal/pram"
	"sublineardp/internal/recurrence"
)

// engine abstracts the two storage variants for the iteration driver.
// The three PRAM operations take the solve's context so the pool can
// abandon remaining tiles mid-operation on cancellation; the driver
// re-checks ctx between operations and discards the partial state.
type engine interface {
	activate(ctx context.Context)
	square(ctx context.Context)
	pebble(ctx context.Context, loSpan, hiSpan int) int64
	charge(acct *pram.Accounting, loSpan, hiSpan int)
	wTable() *recurrence.Table
	wEquals(t *recurrence.Table) bool
	finiteW() int
	setTrackPW(on bool)
	pwChanged() int64
	resetPWChanged()
	bandRadius() int
	release()
}

// Shared buffer arenas: the w'/pw' working state of a solve is returned
// here when the solve finishes, so a serving process stops paying the
// dominant allocation (hundreds of MB at n >= 256) on every request.
// Slices come back dirty; the constructors fully reinitialise every cell
// they later read.
var (
	costArena parutil.Arena[cost.Cost]
	pairArena parutil.Arena[pair]
	intArena  parutil.Arena[int]
)

// runtime is the execution substrate of one solve: the worker pool the
// kernels dispatch onto, the dispatch width, and the scheduling tile.
type runtime struct {
	pool    *parutil.Pool
	workers int
	tile    int // pair cells per claimed tile (0 = pool heuristic)
}

// forChanged dispatches a kernel body over [0,n) tiles and returns the
// summed per-tile change counts.
func (rt *runtime) forChanged(ctx context.Context, n int, body func(lo, hi int) int64) int64 {
	sum, _ := rt.pool.SumInt64Ctx(ctx, rt.workers, n, rt.tile, body)
	return sum
}

// newEngine builds the storage variant's state at one concrete algebra
// type — the single instantiation point of the generic kernels.
func newEngine[S algebra.Kernel](sr S, in *recurrence.Instance, rt *runtime, opts Options) engine {
	switch opts.Variant {
	case Dense:
		return newDenseState(sr, in, rt, opts.Mode == Synchronous, opts.Audit, opts.forceLegacyKernel)
	case Banded:
		return newBandedState(sr, in, rt, opts.Mode == Synchronous, opts.Audit, opts.BandRadius, opts.forceLegacyKernel)
	default:
		panic(fmt.Sprintf("core: unknown variant %v", opts.Variant))
	}
}

// DefaultIterations returns the paper's worst-case iteration budget for
// size n: 2*ceil(sqrt(n)).
func DefaultIterations(n int) int {
	b := pebble.LemmaBound(n)
	if b < 1 {
		b = 1
	}
	return b
}

// Solve runs the HLV algorithm on the instance with the given options and
// returns the final table plus instrumentation. With default options the
// result table equals the sequential DP table (tests verify this across
// problem families, sizes, variants and modes).
func Solve(in *recurrence.Instance, opts Options) *Result {
	res, err := SolveCtx(context.Background(), in, opts)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(err)
	}
	return res
}

// SolveCtx is Solve with cooperative cancellation: the context is checked
// before every iteration, between the PRAM operations, and by the worker
// pool before each claimed tile, so cancellation latency is bounded by
// one in-flight tile rather than one operation. A cancelled or expired
// context aborts the run with ctx.Err(); the partial state is discarded —
// a nil Result accompanies every non-nil error.
func SolveCtx(ctx context.Context, in *recurrence.Instance, opts Options) (*Result, error) {
	if in == nil || in.N < 1 {
		panic(fmt.Sprintf("core: invalid instance %+v", in))
	}
	n := in.N
	workers := opts.Workers
	if opts.Mode == Chaotic {
		workers = 1 // in-place updates must stay deterministic and race-free
	}
	pool := opts.Pool
	if pool == nil {
		pool = parutil.Default()
	}
	rt := &runtime{pool: pool, workers: workers, tile: opts.TileSize}

	// Resolve the algebra and instantiate the generic engine at the
	// concrete type of each shipped semiring, so the bulk kernel
	// primitives dispatch to their specialised bodies; anything else
	// (promoted third-party algebras) runs through the Kernel interface.
	k, err := algebra.Resolve(opts.Semiring, in.Algebra)
	if err != nil {
		return nil, err
	}
	var eng engine
	switch sr := k.(type) {
	case algebra.MinPlus:
		eng = newEngine(sr, in, rt, opts)
	case algebra.MaxPlus:
		eng = newEngine(sr, in, rt, opts)
	case algebra.BoolPlan:
		eng = newEngine(sr, in, rt, opts)
	default:
		eng = newEngine[algebra.Kernel](k, in, rt, opts)
	}
	defer eng.release()

	budget := opts.MaxIterations
	if budget <= 0 {
		budget = DefaultIterations(n)
		if opts.Termination != FixedIterations {
			// Stability rules need room to observe two quiet iterations
			// after convergence.
			budget += 3
		}
	}

	trackPW := opts.Termination == WPWStable || opts.History
	eng.setTrackPW(trackPW)

	res := &Result{
		ConvergedAt: -1,
		Variant:     opts.Variant,
		BandRadius:  eng.bandRadius(),
	}

	sqrtN := pebble.IsqrtCeil(n)
	stableRuns := 0
	for iter := 1; iter <= budget; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng.resetPWChanged()
		eng.activate(ctx)
		// The square is the heaviest of the three operations; re-checking
		// around it keeps cancellation latency low even when a tile runs
		// long.
		eng.square(ctx)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		loSpan, hiSpan := 2, n
		if opts.Window && opts.Variant == Banded {
			l := (iter + 1) / 2 // l = ceil(iter/2)
			if l > sqrtN {
				l = sqrtN // keep covering the top band during extra iterations
			}
			loSpan = (l-1)*(l-1) + 1
			hiSpan = l * l
			if l == sqrtN {
				hiSpan = n
			}
		}
		wChanged := eng.pebble(ctx, loSpan, hiSpan)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng.charge(&res.Acct, loSpan, hiSpan)
		res.Iterations = iter

		pwChangedIter := eng.pwChanged()
		if opts.History {
			res.History = append(res.History, IterStat{
				Iter:      iter,
				WChanged:  int(wChanged),
				PWChanged: pwChangedIter,
				FiniteW:   eng.finiteW(),
			})
		}
		if opts.Target != nil && res.ConvergedAt < 0 && eng.wEquals(opts.Target) {
			res.ConvergedAt = iter
		}

		windowDone := !opts.Window || iter >= 2*sqrtN-1
		switch opts.Termination {
		case WStable:
			if wChanged == 0 && windowDone {
				stableRuns++
			} else {
				stableRuns = 0
			}
		case WPWStable:
			if wChanged == 0 && pwChangedIter == 0 && windowDone {
				stableRuns++
			} else {
				stableRuns = 0
			}
		}
		if stableRuns >= 2 {
			res.StoppedEarly = iter < budget
			break
		}
	}

	res.Table = eng.wTable()
	return res, nil
}
