package blocked

import (
	"context"
	"errors"
	"testing"

	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
	"sublineardp/internal/verify"
)

// kyInstances are the declared-convex families the pruned engine is
// gated against: OBST (quadrangle inequality with equality-heavy ties)
// and the density-built RandomConvex (strict-slack windows).
func kyInstances(n int, seed int64) []*recurrence.Instance {
	return []*recurrence.Instance{
		problems.RandomOBST(n, 40, seed),
		problems.RandomConvex(n, 25, seed),
	}
}

// The pruned engine must be bitwise identical — value table AND split
// matrix — to the unpruned recording engine and to the sequential
// references, across the tile-boundary sweep, and its charged work must
// equal seq.SolveKnuth's pruned candidate count exactly.
func TestKnuthYaoBitwiseAcrossTileBoundaries(t *testing.T) {
	cases := []struct{ n, tile int }{
		{1, 0}, {2, 0}, {3, 2}, {7, 3},
		{16, 4}, {15, 4}, {14, 4},
		{24, 1}, {24, 64},
		{40, 7}, {40, 0}, {65, 16},
	}
	for _, tc := range cases {
		for _, in := range kyInstances(tc.n, int64(tc.n*31+tc.tile)) {
			want := Solve(in, Options{TileSize: tc.tile, RecordSplits: true})
			knuth := seq.SolveKnuth(in)
			got := SolveKY(in, Options{TileSize: tc.tile})
			if !bitwiseEqual(got.Table, want.Table) {
				t.Errorf("%s tile=%d: pruned table differs from unpruned: %v",
					in.Name, tc.tile, got.Table.Diff(want.Table, 3))
			}
			if !bitwiseEqual(got.Table, seq.Solve(in).Table) {
				t.Errorf("%s tile=%d: pruned table differs from sequential", in.Name, tc.tile)
			}
			for i := 0; i <= in.N; i++ {
				for j := i + 1; j <= in.N; j++ {
					if g, e := got.Split(i, j), want.Split(i, j); g != e {
						t.Errorf("%s tile=%d: split(%d,%d) = %d, unpruned recorded %d",
							in.Name, tc.tile, i, j, g, e)
					}
				}
			}
			if gotWork := got.Acct.Work - int64(in.N); gotWork != knuth.Work {
				t.Errorf("%s tile=%d: charged work %d, seq.SolveKnuth %d",
					in.Name, tc.tile, gotWork, knuth.Work)
			}
			if rep := verify.Table(in, got.Table); !rep.OK() {
				t.Errorf("%s tile=%d: not a fixed point: %v", in.Name, tc.tile, rep.Err())
			}
		}
	}
}

// The generic (non-stenciled) kernel path must prune identically.
func TestKnuthYaoGenericKernelPath(t *testing.T) {
	in := problems.RandomConvex(23, 30, 13)
	want := Solve(in, Options{TileSize: 4, RecordSplits: true})
	got, err := SolveKYCtx(context.Background(), in, Options{TileSize: 4, Semiring: wrappedMinPlus{}})
	if err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqual(got.Table, want.Table) {
		t.Errorf("wrapped pruned kernel diverges: %v", got.Table.Diff(want.Table, 3))
	}
	for i := 0; i <= in.N; i++ {
		for j := i + 2; j <= in.N; j++ {
			if g, e := got.Split(i, j), want.Split(i, j); g != e {
				t.Errorf("generic split(%d,%d) = %d, want %d", i, j, g, e)
			}
		}
	}
}

// Ineligible instances must error with ErrNotConvex, never silently
// fall back or mis-prune: undeclared instances, and declared ones
// resolving to a non-min-plus algebra via override.
func TestKnuthYaoRejectsIneligible(t *testing.T) {
	ctx := context.Background()
	undeclared := problems.RandomMatrixChain(12, 40, 3)
	if _, err := SolveKYCtx(ctx, undeclared, Options{}); !errors.Is(err, ErrNotConvex) {
		t.Errorf("undeclared instance: err = %v, want ErrNotConvex", err)
	}
	maxPlus := problems.WorstCaseMatrixChain([]int{4, 3, 5, 2, 6})
	if _, err := SolveKYCtx(ctx, maxPlus, Options{}); !errors.Is(err, ErrNotConvex) {
		t.Errorf("max-plus instance: err = %v, want ErrNotConvex", err)
	}
	boolPlan := problems.ForbiddenSplits(10, [][2]int{{2, 5}})
	if _, err := SolveKYCtx(ctx, boolPlan, Options{}); !errors.Is(err, ErrNotConvex) {
		t.Errorf("bool-plan instance: err = %v, want ErrNotConvex", err)
	}
}

// The pruned engine must honour pools, explicit workers, and
// cancellation like the unpruned one.
func TestKnuthYaoCancellation(t *testing.T) {
	in := problems.RandomOBST(219, 80, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveKYCtx(ctx, in, Options{TileSize: 16})
	if err == nil || res != nil {
		t.Fatalf("cancelled pruned solve returned (%v, %v), want nil result and ctx error", res, err)
	}
}

// Work must stay inside the Knuth envelope: the telescoping windows
// cost at most ~2 candidates per cell, so total work is well under
// 4·n^2 (asserted here at test scale; BenchmarkE17KnuthYao asserts it
// at n up to 4096).
func TestKnuthYaoWorkEnvelope(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		in := problems.RandomOBST(n-1, 50, int64(n))
		res := SolveKY(in, Options{})
		work := res.Acct.Work - int64(in.N)
		if limit := int64(4 * in.N * in.N); work > limit {
			t.Errorf("n=%d: pruned work %d exceeds 4n^2 = %d", in.N, work, limit)
		}
	}
}
