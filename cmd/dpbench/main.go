// Command dpbench regenerates the paper's tables and figures as text (and
// optionally CSV). Each experiment is indexed in DESIGN.md and recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	dpbench                  # run everything at full scale
//	dpbench -exp E2,E4       # run selected experiments
//	dpbench -quick           # reduced sizes (seconds, used by CI)
//	dpbench -csv out/        # also write one CSV per table
//	dpbench -list            # list the experiment registry
//	dpbench -crosscheck      # batch-solve fixtures on every engine
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sublineardp"
	"sublineardp/internal/exper"
	"sublineardp/internal/problems"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "run at reduced test-suite scale")
		csvDir  = flag.String("csv", "", "directory to also write per-table CSV files")
		workers = flag.Int("workers", 0, "goroutine count for parallel solvers (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiments and exit")
		cross   = flag.Bool("crosscheck", false, "batch-solve a fixture set on every registered engine and report agreement")
	)
	flag.Parse()

	if *cross {
		if err := crosscheck(*workers); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exper.Experiment
	if strings.EqualFold(*expFlag, "all") {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := exper.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := exper.Config{Quick: *quick, Workers: *workers}
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(cfg)
		for ti, tb := range tables {
			tb.Render(os.Stdout)
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(tb.ID), ti)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
					os.Exit(1)
				}
				tb.CSV(f)
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s finished in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// crosscheck runs every registered engine over a shared fixture set via
// the unified Solver API's batch scheduler and reports per-engine timing
// and agreement with the sequential optimum — a quick end-to-end health
// check of the engine registry.
func crosscheck(workers int) error {
	fixtures := []*sublineardp.Instance{
		problems.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}),
		problems.RandomMatrixChain(14, 100, 7),
		problems.RandomOBST(12, 50, 3),
		problems.Triangulation(problems.RandomConvexPolygon(12, 1000, 5)),
		problems.Zigzag(16),
	}
	want := make([]sublineardp.Cost, len(fixtures))
	for i, in := range fixtures {
		want[i] = sublineardp.SolveSequential(in).Cost()
	}

	ctx := context.Background()
	disagreements := 0
	fmt.Printf("%-12s %10s %8s  %s\n", "engine", "elapsed", "agree", "costs")
	for _, name := range sublineardp.Engines() {
		start := time.Now()
		sols, err := sublineardp.SolveBatch(ctx, fixtures,
			sublineardp.WithEngine(name), sublineardp.WithWorkers(workers))
		if err != nil {
			return fmt.Errorf("engine %s: %w", name, err)
		}
		agree := 0
		var costs []string
		for i, sol := range sols {
			if sol.Cost() == want[i] {
				agree++
			} else {
				disagreements++
			}
			costs = append(costs, fmt.Sprintf("%d", sol.Cost()))
		}
		fmt.Printf("%-12s %10s %5d/%d  %s\n", name,
			time.Since(start).Round(time.Microsecond), agree, len(fixtures),
			strings.Join(costs, " "))
	}
	if disagreements > 0 {
		return fmt.Errorf("%d engine/fixture disagreements", disagreements)
	}
	fmt.Println("all engines agree with the sequential optimum on every fixture")
	return nil
}
