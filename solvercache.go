package sublineardp

import (
	"context"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cache"
)

// Cache is a content-addressed solution cache with single-flight dedup:
// a sharded LRU keyed by the instance's canonical encoding plus every
// configuration field that can change the result. Attach one to a Solver
// with WithCache and repeated solves of identical instances are served
// from memory, while identical *in-flight* solves fold into one
// computation — the same machinery cmd/dpserved runs behind its HTTP
// front end, available to in-process users.
//
// Only canonicalisable instances participate (Instance.Canonical — the
// matrixchain / obst / triangulation / wtriangulation constructors);
// solves of opaque closure-backed instances bypass the cache entirely.
// A Cache is safe for concurrent use and may back any number of Solvers.
//
// Chain solves (ChainSolver, SolveChainBatch) share the same Cache
// value but live in their own LRU and single-flight group: the two
// recurrence classes can never collide on an entry, and each class gets
// the full configured capacity.
type Cache struct {
	lru *cache.Sharded[*Solution]
	sf  cache.Group[*Solution]

	clru *cache.Sharded[*ChainSolution]
	csf  cache.Group[*ChainSolution]
}

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	// Hits / Misses count lookups against the resident LRU.
	Hits, Misses int64
	// Insertions / Updates / Evictions count LRU mutations.
	Insertions, Updates, Evictions int64
	// Solves counts computations actually executed; Coalesced counts
	// callers that folded into an in-flight identical solve.
	Solves, Coalesced int64
}

// NewCache returns a Cache holding at most capacity solutions
// (capacity <= 0 picks 1024).
func NewCache(capacity int) *Cache {
	return &Cache{
		lru:  cache.New[*Solution](capacity, 16),
		clru: cache.New[*ChainSolution](capacity, 16),
	}
}

// Stats returns the cumulative counters, summed over the interval and
// chain stores.
func (c *Cache) Stats() CacheStats {
	ls, cs := c.lru.Stats(), c.clru.Stats()
	fs, cf := c.sf.Stats(), c.csf.Stats()
	return CacheStats{
		Hits: ls.Hits + cs.Hits, Misses: ls.Misses + cs.Misses,
		Insertions: ls.Insertions + cs.Insertions,
		Updates:    ls.Updates + cs.Updates,
		Evictions:  ls.Evictions + cs.Evictions,
		Solves:     fs.Executions + cf.Executions,
		Coalesced:  fs.Dedups + cf.Dedups,
	}
}

// Len returns the number of resident solutions (interval plus chain).
func (c *Cache) Len() int { return c.lru.Len() + c.clru.Len() }

// solveKey derives the content key for one solve: the instance's
// canonical bytes (which already fold in the instance's declared
// algebra) plus every Config field that can alter the returned Solution
// (engine routing, scheduling, iteration discipline, band, and the
// *effective* algebra — WithSemiring's override wins over the declared
// one, exactly as the engines resolve it, so an override can never be
// served a declared-algebra entry or vice versa). Target is deliberately
// not keyed — Solver.Solve bypasses the cache entirely when a target is
// set. It reports false for instances that cannot be canonicalised.
//
// Keying discipline (guarded by TestSolveKeySeparatesResultAffectingOptions):
// every field below changes either the solved values, the engine
// routing, or an observable Solution field, and every Config field with
// that property must be below. Pool, Cache and Concurrency are execution
// plumbing with no result effect and are deliberately unkeyed; Workers
// and TileSize cannot change values either but stay keyed as scheduling
// provenance (conservative, documented in DESIGN.md).
func solveKey(in *Instance, engineName string, cfg *Config) (cache.Key, bool) {
	canon, ok := in.Canonical()
	if !ok {
		return cache.Key{}, false
	}
	srName := algebra.ResolveName(cfg.Semiring, in.Algebra)
	h := cache.NewHasher().
		Bytes("instance", canon).
		String("engine", engineName).
		Int64("workers", int64(cfg.Workers)).
		Int64("tile", int64(cfg.TileSize)).
		Int64("mode", int64(cfg.Mode)).
		Int64("term", int64(cfg.Termination)).
		Int64("maxiter", int64(cfg.MaxIterations)).
		Int64("band", int64(cfg.BandRadius)).
		Bool("window", cfg.Window).
		Int64("autocutoff", int64(cfg.AutoCutoff)).
		Int64("autolargecutoff", int64(cfg.AutoLargeCutoff)).
		String("semiring", srName).
		Bool("history", cfg.History).
		Bool("splits", cfg.RecordSplits).
		Bool("convexity", cfg.Convexity)
	return h.Sum(), true
}

// solve runs the cache protocol around compute: LRU lookup, then
// single-flight execution on miss. Every path returns a caller-private
// shallow copy (Cached tells hits and joins apart from led solves), so
// no caller ever holds the pointer resident in the LRU.
func (c *Cache) solve(ctx context.Context, key cache.Key, compute func(context.Context) (*Solution, error)) (*Solution, error) {
	if sol, ok := c.lru.Get(key); ok {
		cp := *sol
		cp.Cached = true
		return &cp, nil
	}
	sol, joined, err := c.sf.Do(ctx, key, func(fctx context.Context) (*Solution, error) {
		s, err := compute(fctx)
		if err != nil {
			return nil, err
		}
		c.lru.Add(key, s)
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	// Every caller — leader included — gets its own shallow copy: the
	// pointer resident in the LRU must never be handed out, or a caller
	// mutating "its" result would corrupt the cache.
	cp := *sol
	cp.Cached = joined
	return &cp, nil
}

// solveChain is solve for the chain store: the identical protocol over
// the chain LRU and single-flight group, with the same private
// shallow-copy discipline.
func (c *Cache) solveChain(ctx context.Context, key cache.Key, compute func(context.Context) (*ChainSolution, error)) (*ChainSolution, error) {
	if sol, ok := c.clru.Get(key); ok {
		cp := *sol
		cp.Cached = true
		return &cp, nil
	}
	sol, joined, err := c.csf.Do(ctx, key, func(fctx context.Context) (*ChainSolution, error) {
		s, err := compute(fctx)
		if err != nil {
			return nil, err
		}
		c.clru.Add(key, s)
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	cp := *sol
	cp.Cached = joined
	return &cp, nil
}
