package btree

// Shape metrics used by the experiment harness to characterise optimal
// trees: how spine-like a tree is, and how often its heavy chain changes
// direction (the property that makes the Figure 2a zigzag tree the worst
// case for the algorithm).

// HeavyChain returns the node indices of the chain that starts at the root
// and repeatedly descends into the larger child (ties go left), ending at
// a leaf. For a spine or zigzag tree this is the spine itself.
func (t *Tree) HeavyChain() []int32 {
	var chain []int32
	v := t.Root
	for {
		chain = append(chain, v)
		if t.IsLeaf(v) {
			return chain
		}
		l, r := t.Left[v], t.Right[v]
		if t.Size(l) >= t.Size(r) {
			v = l
		} else {
			v = r
		}
	}
}

// Turns counts the direction alternations along the heavy chain: the
// number of consecutive chain steps that switch between descending left
// and descending right. Steps whose children tie in size carry no
// direction and end the count (the bottom of a spine is directionless).
// A straight spine has 0 turns; the Figure 2a zigzag tree has a turn at
// every level.
func (t *Tree) Turns() int {
	turns := 0
	v := t.Root
	prev := 0 // 0 unset, 1 left, 2 right
	for !t.IsLeaf(v) {
		l, r := t.Left[v], t.Right[v]
		if t.Size(l) == t.Size(r) {
			break
		}
		dir := 1
		next := l
		if t.Size(r) > t.Size(l) {
			dir = 2
			next = r
		}
		if prev != 0 && dir != prev {
			turns++
		}
		prev = dir
		v = next
	}
	return turns
}

// WeightedPathLength returns sum over leaves of depth(leaf)*weight[leaf
// index], the cost functional optimal-BST style problems minimise. The
// weight slice is indexed by the left endpoint of the leaf span, so it
// must have length N.
func (t *Tree) WeightedPathLength(weight []int64) int64 {
	depth := t.Depth()
	var sum int64
	for v := 0; v < t.Len(); v++ {
		if t.IsLeaf(int32(v)) {
			sum += int64(depth[v]) * weight[t.Lo[v]]
		}
	}
	return sum
}

// InternalCount returns the number of internal nodes (N-1 for a full tree).
func (t *Tree) InternalCount() int {
	c := 0
	for v := int32(0); v < int32(t.Len()); v++ {
		if !t.IsLeaf(v) {
			c++
		}
	}
	return c
}

// SizeHistogram returns, for each node, the paper's size(x) (leaf count of
// the subtree), aggregated as a map from size to how many nodes have it.
func (t *Tree) SizeHistogram() map[int]int {
	h := make(map[int]int)
	for v := int32(0); v < int32(t.Len()); v++ {
		h[t.Size(v)]++
	}
	return h
}

// ChainDecomposition mirrors the proof of Lemma 3.3 (Figure 1): starting
// at node x, it follows the unique chain of nodes with size greater than
// the threshold, stopping at the first node both of whose children are at
// or below the threshold (or at a leaf). It returns the chain and the
// sizes of the off-chain children, the n_j of the proof.
func (t *Tree) ChainDecomposition(x int32, threshold int) (chain []int32, offSizes []int) {
	v := x
	for {
		chain = append(chain, v)
		if t.IsLeaf(v) {
			return chain, offSizes
		}
		l, r := t.Left[v], t.Right[v]
		ls, rs := t.Size(l), t.Size(r)
		switch {
		case ls > threshold && rs > threshold:
			// Cannot happen on the chain the lemma constructs (at most
			// one child may exceed the threshold when size(v) <= (i+1)^2),
			// but be defensive: follow the larger child.
			if ls >= rs {
				offSizes = append(offSizes, rs)
				v = l
			} else {
				offSizes = append(offSizes, ls)
				v = r
			}
		case ls > threshold:
			offSizes = append(offSizes, rs)
			v = l
		case rs > threshold:
			offSizes = append(offSizes, ls)
			v = r
		default:
			// Both children at or below the threshold: chain ends here.
			return chain, offSizes
		}
	}
}
