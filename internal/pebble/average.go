package pebble

import (
	"math/rand"

	"sublineardp/internal/btree"
)

// RecurrenceT numerically solves the Section 6 average-case recurrence
//
//	T(1) = 0
//	T(n) = 1 + (1/(n-1)) * sum_{i=1..n-1} max(T(i), T(n-i))
//
// which models pebbling a random-split tree purely bottom-up (each node
// pebbles one move after the slower of its children). It returns T(1..n)
// as a slice indexed by leaf count. O(n^2) time.
func RecurrenceT(n int) []float64 {
	t := make([]float64, n+1)
	if n < 1 {
		return t
	}
	t[1] = 0
	for m := 2; m <= n; m++ {
		var sum float64
		for i := 1; i < m; i++ {
			a, b := t[i], t[m-i]
			if b > a {
				a = b
			}
			sum += a
		}
		t[m] = 1 + sum/float64(m-1)
	}
	return t
}

// SimStats summarises a batch of simulated games.
type SimStats struct {
	N        int
	Trials   int
	Mean     float64
	Max      int
	Min      int
	Bound    int // the Lemma 3.3 bound 2*ceil(sqrt(n))
	Exceeded int // trials that exceeded the bound (must be 0)
}

// SimulateRandom plays `trials` games with the given rule on independent
// uniformly random split trees with n leaves (the Section 6 model) and
// returns move statistics. All randomness derives from seed.
func SimulateRandom(n, trials int, rule Rule, seed int64) SimStats {
	rng := rand.New(rand.NewSource(seed))
	st := SimStats{N: n, Trials: trials, Min: int(^uint(0) >> 1), Bound: LemmaBound(n)}
	var total int64
	for t := 0; t < trials; t++ {
		tree := btree.RandomSplit(n, rng)
		g := NewGame(tree, rule)
		moves := g.Run(st.Bound + 4)
		if !g.RootPebbled() {
			st.Exceeded++
		}
		if moves > st.Max {
			st.Max = moves
		}
		if moves < st.Min {
			st.Min = moves
		}
		total += int64(moves)
	}
	if trials > 0 {
		st.Mean = float64(total) / float64(trials)
	} else {
		st.Min = 0
	}
	return st
}

// MovesOn plays a fresh game with the given rule on the tree and returns
// the move count; the boolean reports whether the root was pebbled within
// the Lemma 3.3 budget (plus margin).
func MovesOn(t *btree.Tree, rule Rule) (int, bool) {
	g := NewGame(t, rule)
	moves := g.Run(0)
	return moves, g.RootPebbled()
}
