// Package btree implements the full binary trees over index spans that the
// paper uses everywhere: a node is a pair (i,j) with 0 <= i < j <= n, an
// internal node (i,j) has sons (i,k) and (k,j) for some i < k < j, and the
// leaves are the unit spans (i,i+1). Such a tree is exactly one
// parenthesization of n objects.
//
// The package provides construction from split choices, the classic shapes
// from Figure 2 of the paper (zigzag, complete, skewed), uniformly random
// split trees (the Section 6 average-case model), shape metrics, ancestor
// queries (needed by the pebbling game's square move) and ASCII rendering
// (Figures 1 and 2).
package btree

import (
	"fmt"
	"math/rand"
)

// None marks an absent child or parent link.
const None int32 = -1

// Tree is a full binary tree over the spans of 0..N. A tree with N leaves
// has exactly 2N-1 nodes, stored in flat parallel slices.
type Tree struct {
	// N is the number of leaves; the root spans (0,N).
	N int
	// Lo and Hi give the span (Lo[v], Hi[v]) of node v.
	Lo, Hi []int32
	// Left, Right and Parent are node indices, or None.
	Left, Right, Parent []int32
	// Root is the index of the root node.
	Root int32

	in, out []int32 // Euler tour numbering, built lazily by ensureOrder
}

// SplitFunc chooses the split point k (i < k < j) for an internal span
// (i,j). It fully determines the tree shape.
type SplitFunc func(i, j int) int

// New builds the tree over (0,n) defined by the split function.
// It panics if split returns an out-of-range value; shape generators are
// trusted code, and a bad split is a programming error.
func New(n int, split SplitFunc) *Tree {
	if n < 1 {
		panic(fmt.Sprintf("btree: need n >= 1, got %d", n))
	}
	m := 2*n - 1
	t := &Tree{
		N:      n,
		Lo:     make([]int32, 0, m),
		Hi:     make([]int32, 0, m),
		Left:   make([]int32, 0, m),
		Right:  make([]int32, 0, m),
		Parent: make([]int32, 0, m),
	}
	// Iterative construction: spines can be n deep, so recursion is out.
	type frame struct {
		lo, hi int32
		parent int32
	}
	stack := []frame{{0, int32(n), None}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := int32(len(t.Lo))
		t.Lo = append(t.Lo, fr.lo)
		t.Hi = append(t.Hi, fr.hi)
		t.Left = append(t.Left, None)
		t.Right = append(t.Right, None)
		t.Parent = append(t.Parent, fr.parent)
		if fr.parent != None {
			// Children are pushed right-first, so the left child is
			// created (and linked) before the right one.
			if t.Left[fr.parent] == None {
				t.Left[fr.parent] = v
			} else {
				t.Right[fr.parent] = v
			}
		}
		if fr.hi-fr.lo > 1 {
			k := int32(split(int(fr.lo), int(fr.hi)))
			if k <= fr.lo || k >= fr.hi {
				panic(fmt.Sprintf("btree: split(%d,%d) = %d out of range", fr.lo, fr.hi, k))
			}
			stack = append(stack, frame{k, fr.hi, v}) // right child, created second
			stack = append(stack, frame{fr.lo, k, v}) // left child, created first
		}
	}
	t.Root = 0
	return t
}

// Len returns the number of nodes (2N-1).
func (t *Tree) Len() int { return len(t.Lo) }

// IsLeaf reports whether v is a leaf (unit span).
func (t *Tree) IsLeaf(v int32) bool { return t.Hi[v]-t.Lo[v] == 1 }

// Size returns the number of leaves under v — the paper's size(x).
func (t *Tree) Size(v int32) int { return int(t.Hi[v] - t.Lo[v]) }

// Span returns the (i,j) pair of node v.
func (t *Tree) Span(v int32) (i, j int) { return int(t.Lo[v]), int(t.Hi[v]) }

// Split returns the split point k of internal node v (its left child is
// (i,k) and right child (k,j)). It panics on leaves.
func (t *Tree) Split(v int32) int {
	if t.IsLeaf(v) {
		panic("btree: Split on a leaf")
	}
	return int(t.Hi[t.Left[v]])
}

// Height returns the edge-height of the tree (0 for a single leaf).
func (t *Tree) Height() int {
	depth := make([]int32, t.Len())
	h := int32(0)
	// Nodes are created parent-before-child, so a forward scan works.
	for v := 1; v < t.Len(); v++ {
		depth[v] = depth[t.Parent[v]] + 1
		if depth[v] > h {
			h = depth[v]
		}
	}
	return int(h)
}

// Depth returns the depth of every node (root = 0).
func (t *Tree) Depth() []int {
	depth := make([]int, t.Len())
	for v := 1; v < t.Len(); v++ {
		depth[v] = depth[t.Parent[v]] + 1
	}
	return depth
}

// ensureOrder computes Euler tour in/out numbers for ancestor queries.
func (t *Tree) ensureOrder() {
	if t.in != nil {
		return
	}
	m := t.Len()
	t.in = make([]int32, m)
	t.out = make([]int32, m)
	clock := int32(0)
	// Iterative DFS with explicit post-visit marker.
	type frame struct {
		v    int32
		post bool
	}
	stack := []frame{{t.Root, false}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.post {
			t.out[fr.v] = clock
			continue
		}
		t.in[fr.v] = clock
		clock++
		stack = append(stack, frame{fr.v, true})
		if !t.IsLeaf(fr.v) {
			stack = append(stack, frame{t.Right[fr.v], false})
			stack = append(stack, frame{t.Left[fr.v], false})
		}
	}
}

// IsAncestor reports whether u is an ancestor of v. Following the paper,
// every node is an ancestor of itself.
func (t *Tree) IsAncestor(u, v int32) bool {
	t.ensureOrder()
	return t.in[u] <= t.in[v] && t.in[v] < t.out[u]
}

// ChildToward returns the child of u that is an ancestor of v, where v is
// a proper descendant of u. This is exactly the step the paper's square
// move performs: "set cond(x) to the child of cond(x) which is an ancestor
// of cond(cond(x))".
func (t *Tree) ChildToward(u, v int32) int32 {
	l := t.Left[u]
	if l != None && t.IsAncestor(l, v) {
		return l
	}
	r := t.Right[u]
	if r == None || !t.IsAncestor(r, v) {
		panic(fmt.Sprintf("btree: node %d is not a proper descendant of %d", v, u))
	}
	return r
}

// NodeBySpan returns the node with span (i,j), or None if the tree has no
// such node. O(number of nodes); intended for tests.
func (t *Tree) NodeBySpan(i, j int) int32 {
	for v := 0; v < t.Len(); v++ {
		if int(t.Lo[v]) == i && int(t.Hi[v]) == j {
			return int32(v)
		}
	}
	return None
}

// Validate checks all structural invariants: full binary shape, span
// consistency between parents and children, leaf spans of size one, and
// the node count 2N-1. It returns the first violation found.
func (t *Tree) Validate() error {
	if t.Len() != 2*t.N-1 {
		return fmt.Errorf("btree: %d nodes for %d leaves, want %d", t.Len(), t.N, 2*t.N-1)
	}
	if t.Lo[t.Root] != 0 || t.Hi[t.Root] != int32(t.N) {
		return fmt.Errorf("btree: root spans (%d,%d), want (0,%d)", t.Lo[t.Root], t.Hi[t.Root], t.N)
	}
	leaves := 0
	for v := int32(0); v < int32(t.Len()); v++ {
		l, r := t.Left[v], t.Right[v]
		switch {
		case l == None && r == None:
			if t.Hi[v]-t.Lo[v] != 1 {
				return fmt.Errorf("btree: leaf %d spans (%d,%d)", v, t.Lo[v], t.Hi[v])
			}
			leaves++
		case l != None && r != None:
			if t.Lo[l] != t.Lo[v] || t.Hi[r] != t.Hi[v] || t.Hi[l] != t.Lo[r] {
				return fmt.Errorf("btree: node %d span (%d,%d) has children (%d,%d) and (%d,%d)",
					v, t.Lo[v], t.Hi[v], t.Lo[l], t.Hi[l], t.Lo[r], t.Hi[r])
			}
			if t.Hi[l] <= t.Lo[v] || t.Hi[l] >= t.Hi[v] {
				return fmt.Errorf("btree: node %d split %d outside span (%d,%d)", v, t.Hi[l], t.Lo[v], t.Hi[v])
			}
			if t.Parent[l] != v || t.Parent[r] != v {
				return fmt.Errorf("btree: node %d has children with wrong parent links", v)
			}
		default:
			return fmt.Errorf("btree: node %d has exactly one child; tree is not full", v)
		}
	}
	if leaves != t.N {
		return fmt.Errorf("btree: %d leaves, want %d", leaves, t.N)
	}
	return nil
}

// Splits returns the split choice for every internal span as a map from
// (i,j) to k. It is the inverse of New: New(t.N, FromSplits(t.Splits()))
// rebuilds an identical tree.
func (t *Tree) Splits() map[[2]int]int {
	m := make(map[[2]int]int)
	for v := int32(0); v < int32(t.Len()); v++ {
		if !t.IsLeaf(v) {
			i, j := t.Span(v)
			m[[2]int{i, j}] = t.Split(v)
		}
	}
	return m
}

// FromSplits adapts a split map to a SplitFunc. Missing spans panic, which
// New surfaces immediately during construction.
func FromSplits(m map[[2]int]int) SplitFunc {
	return func(i, j int) int {
		k, ok := m[[2]int{i, j}]
		if !ok {
			panic(fmt.Sprintf("btree: no split recorded for span (%d,%d)", i, j))
		}
		return k
	}
}

// Equal reports whether two trees have identical shape (same spans split
// the same way).
func (t *Tree) Equal(o *Tree) bool {
	if t.N != o.N {
		return false
	}
	ts, os := t.Splits(), o.Splits()
	if len(ts) != len(os) {
		return false
	}
	for span, k := range ts {
		if os[span] != k {
			return false
		}
	}
	return true
}

// Complete returns the balanced tree: every span splits at its midpoint.
func Complete(n int) *Tree {
	return New(n, func(i, j int) int { return (i + j) / 2 })
}

// LeftSkewed returns the left spine of Figure 2b: every internal node's
// right child is a leaf.
func LeftSkewed(n int) *Tree {
	return New(n, func(i, j int) int { return j - 1 })
}

// RightSkewed returns the mirror image of LeftSkewed.
func RightSkewed(n int) *Tree {
	return New(n, func(i, j int) int { return i + 1 })
}

// Zigzag returns the pathological tree of Figure 2a: a spine that turns at
// every level, so the big child alternates sides along the chain. The
// paper identifies this shape as the Theta(sqrt n) worst case for the
// algorithm, because the alternation defeats the binary-decomposition
// speedup available on straight spines.
func Zigzag(n int) *Tree {
	// Depth parity decides the side. We cannot know the depth from (i,j)
	// alone, so thread it through a map built on demand: the root is at
	// depth 0; the big child of a depth-d node is at depth d+1. Because
	// construction visits parents before children, recording the side
	// works with a simple map keyed by span.
	depth := map[[2]int]int{{0, n}: 0}
	return New(n, func(i, j int) int {
		d := depth[[2]int{i, j}]
		var k int
		if d%2 == 0 {
			k = j - 1 // big child on the left
		} else {
			k = i + 1 // big child on the right
		}
		depth[[2]int{i, k}] = d + 1
		depth[[2]int{k, j}] = d + 1
		return k
	})
}

// RandomSplit returns a tree drawn from the Section 6 average-case model:
// every internal span (i,j) picks its split k uniformly from i+1..j-1,
// independently.
func RandomSplit(n int, rng *rand.Rand) *Tree {
	return New(n, func(i, j int) int {
		return i + 1 + rng.Intn(j-i-1)
	})
}
