package seq

import (
	"testing"
	"testing/quick"

	"sublineardp/internal/problems"
)

func TestTopDownMatchesBottomUp(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := problems.RandomInstance(14, 50, seed)
		a := Solve(in)
		b := SolveTopDown(in)
		if !a.Table.Equal(b.Table) {
			t.Fatalf("seed %d: tables differ: %v", seed, a.Table.Diff(b.Table, 3))
		}
		if a.Work != b.Work {
			t.Fatalf("seed %d: work differs: %d vs %d (same candidate space expected)", seed, a.Work, b.Work)
		}
		if !a.Tree().Equal(b.Tree()) {
			t.Fatalf("seed %d: reconstructed trees differ", seed)
		}
	}
}

func TestTopDownCLRS(t *testing.T) {
	res := SolveTopDown(problems.CLRSMatrixChain())
	if res.Cost() != problems.CLRSOptimalCost {
		t.Fatalf("cost = %d", res.Cost())
	}
	if res.Split(0, 6) != 3 {
		t.Fatalf("root split = %d", res.Split(0, 6))
	}
}

func TestTopDownDeepSpine(t *testing.T) {
	// A forced spine makes the recursion n deep; the explicit stack must
	// handle it without growing the goroutine stack.
	in := problems.Skewed(300)
	res := SolveTopDown(in)
	if res.Cost() != 0 {
		t.Fatalf("spine cost = %d, want 0", res.Cost())
	}
}

func TestTopDownProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%12 + 1
		in := problems.RandomInstance(n, 30, seed)
		return SolveTopDown(in).Table.Equal(Solve(in).Table)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
