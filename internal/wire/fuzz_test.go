package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sublineardp/internal/cache"
	"sublineardp/internal/seq"
)

// FuzzCanonicalHash is the cache-correctness argument in executable
// form: for arbitrary instance parameters of every wire kind,
//
//  1. the canonicalization round-trips — an instance rebuilt from its
//     wire request canonicalises to the same bytes as the directly
//     constructed one, so the serving cache and an in-process WithCache
//     user address the same entry;
//  2. hash equality implies solver-result equality — two instances with
//     equal canonical hashes produce bitwise-equal sequential tables,
//     so a cache hit can never serve a wrong solution;
//  3. any parameter perturbation changes the hash — neighbouring
//     requests cannot collide into each other's entries.
//
// Seeds cover the band-edge sizes the existing fuzz corpus pins
// (n = 16 is the exact D = 2*ceil(sqrt n) edge of FuzzBandedMatchesDense)
// and the degenerate sizes n = 1, 2.
func FuzzCanonicalHash(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0))   // matrixchain n=1 (degenerate)
	f.Add(int64(2), uint8(1), uint8(1), uint8(3))   // obst, minimal keys
	f.Add(int64(3), uint8(2), uint8(14), uint8(7))  // triangulation at the n=16 band edge
	f.Add(int64(4), uint8(3), uint8(15), uint8(80)) // wtriangulation just past the edge
	f.Add(int64(5), uint8(0), uint8(14), uint8(60)) // matrixchain n=16 band edge
	f.Add(int64(-9), uint8(1), uint8(13), uint8(2)) // obst with tiny weights (ties everywhere)
	f.Fuzz(func(t *testing.T, seed int64, kindSel, nn, maxW uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn)%16 + 1
		w := int64(maxW) + 1
		req, mutated := buildRequests(rng, int(kindSel)%4, n, w)
		if err := req.Validate(0); err != nil {
			t.Fatalf("generated request invalid: %v", err)
		}

		in1, err := req.Instance()
		if err != nil {
			t.Fatal(err)
		}
		// Independent rebuild from an encoded copy of the request: the
		// two construction paths a cache key must unify.
		clone := *req
		in2, err := clone.Instance()
		if err != nil {
			t.Fatal(err)
		}
		c1, ok1 := in1.Canonical()
		c2, ok2 := in2.Canonical()
		if !ok1 || !ok2 {
			t.Fatalf("kind %s not canonicalisable", req.Kind)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("kind %s: canonicalization did not round-trip", req.Kind)
		}
		k1 := cache.NewHasher().Bytes("instance", c1).Sum()
		k2 := cache.NewHasher().Bytes("instance", c2).Sum()
		if k1 != k2 {
			t.Fatal("equal canonical bytes hashed to different keys")
		}

		// Hash equality must imply result equality.
		t1 := seq.Solve(in1).Table
		t2 := seq.Solve(in2).Table
		if TableDigest(t1) != TableDigest(t2) {
			t.Fatalf("kind %s: equal hashes, different solver results", req.Kind)
		}

		// Materialisation changes representation, never identity.
		cm, ok := in1.Materialize().Canonical()
		if !ok || !bytes.Equal(cm, c1) {
			t.Fatalf("kind %s: Materialize changed the canonical encoding", req.Kind)
		}

		// A perturbed parameter must move the hash.
		if err := mutated.Validate(0); err != nil {
			t.Fatalf("mutated request invalid: %v", err)
		}
		inM, err := mutated.Instance()
		if err != nil {
			t.Fatal(err)
		}
		cM, _ := inM.Canonical()
		if bytes.Equal(cM, c1) {
			t.Fatalf("kind %s: parameter perturbation left the canonical encoding unchanged", req.Kind)
		}
	})
}

// buildRequests derives a valid request of the selected kind from the
// rng, plus a minimally perturbed sibling (one parameter bumped).
func buildRequests(rng *rand.Rand, kind, n int, maxW int64) (*Request, *Request) {
	pos := func() int64 { return 1 + rng.Int63n(maxW) }
	nonneg := func() int64 { return rng.Int63n(maxW + 1) }
	switch kind {
	case 0:
		dims := make([]int, n+1)
		for i := range dims {
			dims[i] = int(pos())
		}
		req := &Request{Kind: KindMatrixChain, Dims: dims}
		md := append([]int(nil), dims...)
		md[rng.Intn(len(md))]++
		return req, &Request{Kind: KindMatrixChain, Dims: md}
	case 1:
		m := n
		alpha := make([]int64, m+1)
		beta := make([]int64, m)
		for i := range alpha {
			alpha[i] = nonneg()
		}
		for i := range beta {
			beta[i] = nonneg()
		}
		req := &Request{Kind: KindOBST, Alpha: alpha, Beta: beta}
		mb := append([]int64(nil), beta...)
		mb[rng.Intn(len(mb))]++
		return req, &Request{Kind: KindOBST, Alpha: alpha, Beta: mb}
	case 2:
		// Points on a circle at sorted angles keep the polygon convex;
		// triangulation needs >= 3 vertices, i.e. n >= 2.
		if n < 2 {
			n = 2
		}
		pts := circlePoints(rng, n+1)
		req := &Request{Kind: KindTriangulation, Points: pts}
		mp := append([]Point(nil), pts...)
		mp[rng.Intn(len(mp))].X++
		return req, &Request{Kind: KindTriangulation, Points: mp}
	default:
		if n < 2 {
			n = 2
		}
		ws := make([]int64, n+1)
		for i := range ws {
			ws[i] = pos()
		}
		req := &Request{Kind: KindWTriangulation, Weights: ws}
		mw := append([]int64(nil), ws...)
		mw[rng.Intn(len(mw))]++
		return req, &Request{Kind: KindWTriangulation, Weights: mw}
	}
}

func circlePoints(rng *rand.Rand, count int) []Point {
	angles := make([]float64, count)
	for i := range angles {
		angles[i] = rng.Float64() * 6.283185307179586
	}
	for i := 1; i < len(angles); i++ {
		for k := i; k > 0 && angles[k] < angles[k-1]; k-- {
			angles[k], angles[k-1] = angles[k-1], angles[k]
		}
	}
	pts := make([]Point, count)
	for i, a := range angles {
		pts[i] = Point{X: int64(1000 * math.Cos(a)), Y: int64(1000 * math.Sin(a))}
	}
	return pts
}
