package sublineardp_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sublineardp"
	"sublineardp/internal/problems"
)

// countingEngine wraps a registered engine and counts Solve executions,
// optionally holding each solve until released — the instrument behind
// the single-flight assertions.
type countingEngine struct {
	name    string
	inner   sublineardp.Engine
	calls   atomic.Int64
	entered chan struct{} // receives one value per solve that starts
	release chan struct{} // solves block here when non-nil
}

func (e *countingEngine) Name() string { return e.name }

func (e *countingEngine) Solve(ctx context.Context, in *sublineardp.Instance, cfg *sublineardp.Config) (*sublineardp.Solution, error) {
	e.calls.Add(1)
	if e.entered != nil {
		e.entered <- struct{}{}
	}
	if e.release != nil {
		select {
		case <-e.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return e.inner.Solve(ctx, in, cfg)
}

func newCountingEngine(t *testing.T, name string, blocking bool) *countingEngine {
	t.Helper()
	inner, ok := sublineardp.LookupEngine(sublineardp.EngineSequential)
	if !ok {
		t.Fatal("sequential engine missing")
	}
	e := &countingEngine{name: name, inner: inner}
	if blocking {
		e.entered = make(chan struct{}, 64)
		e.release = make(chan struct{})
	}
	if err := sublineardp.RegisterEngine(e); err != nil {
		t.Fatalf("register: %v", err)
	}
	return e
}

func TestCacheHitReturnsIdenticalSolution(t *testing.T) {
	c := sublineardp.NewCache(16)
	s, err := sublineardp.NewSolver(sublineardp.EngineSequential, sublineardp.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	in := problems.CLRSMatrixChain()
	first, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first solve reported cached")
	}
	// A canonically equal but distinct instance value must hit.
	again := problems.CLRSMatrixChain()
	second, err := s.Solve(context.Background(), again)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second solve missed the cache")
	}
	if second.Cost() != first.Cost() || !second.Table.Equal(first.Table) {
		t.Fatal("cached solution differs from the original")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Solves != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 solve", st)
	}
}

func TestCacheKeySeparatesConfigurations(t *testing.T) {
	c := sublineardp.NewCache(16)
	in := problems.RandomOBST(10, 50, 7)
	ctx := context.Background()

	base, err := sublineardp.NewSolver(sublineardp.EngineHLVBanded, sublineardp.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Solve(ctx, in); err != nil {
		t.Fatal(err)
	}

	// Same engine, different band radius: must not hit.
	banded, err := sublineardp.NewSolver(sublineardp.EngineHLVBanded,
		sublineardp.WithCache(c), sublineardp.WithBandRadius(3))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := banded.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cached {
		t.Fatal("different band radius hit the same cache entry")
	}

	// Different engine: must not hit either.
	seq, err := sublineardp.NewSolver(sublineardp.EngineSequential, sublineardp.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	sol, err = seq.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cached {
		t.Fatal("different engine hit the same cache entry")
	}
	if st := c.Stats(); st.Solves != 3 {
		t.Fatalf("stats %+v, want 3 distinct solves", st)
	}
}

func TestCacheBypassesNonCanonicalInstances(t *testing.T) {
	c := sublineardp.NewCache(16)
	s, err := sublineardp.NewSolver(sublineardp.EngineSequential, sublineardp.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	in := problems.RandomInstance(8, 40, 3) // closure-backed, no Canon
	if _, ok := in.Canonical(); ok {
		t.Fatal("RandomInstance unexpectedly canonicalisable; test needs a new subject")
	}
	for i := 0; i < 2; i++ {
		sol, err := s.Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Cached {
			t.Fatal("non-canonical instance served from cache")
		}
	}
	if st := c.Stats(); st.Hits+st.Misses+st.Solves != 0 {
		t.Fatalf("cache touched by non-canonical solves: %+v", st)
	}
}

// TestCacheSingleFlight proves the acceptance property in-process: k
// concurrent identical solves execute the engine exactly once, and a
// subsequent solve is a pure LRU hit with no engine involvement.
func TestCacheSingleFlight(t *testing.T) {
	eng := newCountingEngine(t, "counting-singleflight", true)
	c := sublineardp.NewCache(16)
	s, err := sublineardp.NewSolver(eng.Name(), sublineardp.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	in := problems.CLRSMatrixChain()
	want := problems.CLRSOptimalCost

	const callers = 6
	var wg sync.WaitGroup
	var cachedCount atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := s.Solve(context.Background(), in)
			if err != nil {
				t.Errorf("solve: %v", err)
				return
			}
			if sol.Cost() != want {
				t.Errorf("cost %d, want %d", sol.Cost(), want)
			}
			if sol.Cached {
				cachedCount.Add(1)
			}
		}()
	}
	<-eng.entered // the one leader is inside the engine
	// Wait until the other callers have folded into the flight.
	for c.Stats().Coalesced < callers-1 {
		time.Sleep(100 * time.Microsecond)
	}
	close(eng.release)
	wg.Wait()

	if got := eng.calls.Load(); got != 1 {
		t.Fatalf("engine executed %d times for %d concurrent identical solves", got, callers)
	}
	if got := cachedCount.Load(); got != callers-1 {
		t.Fatalf("%d callers saw Cached, want %d", got, callers-1)
	}

	// Now resident: the next solve must not touch the engine at all.
	sol, err := s.Solve(context.Background(), problems.CLRSMatrixChain())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Cached || eng.calls.Load() != 1 {
		t.Fatalf("LRU hit ran the engine (cached=%v calls=%d)", sol.Cached, eng.calls.Load())
	}
	st := c.Stats()
	if st.Solves != 1 || st.Coalesced != callers-1 || st.Hits != 1 {
		t.Fatalf("stats %+v inconsistent with 1 solve / %d coalesced / 1 hit", st, callers-1)
	}
}

// TestCacheStressChurn churns a deliberately tiny cache with concurrent
// hit/miss/evict traffic over real solves and asserts the single-flight
// invariant end to end: the engine execution count equals the cache's
// own Solves counter (no duplicate in-flight solves for identical keys),
// and every returned solution is correct for its instance.
func TestCacheStressChurn(t *testing.T) {
	eng := newCountingEngine(t, "counting-stress", false)
	c := sublineardp.NewCache(8) // far smaller than the keyspace: constant eviction
	s, err := sublineardp.NewSolver(eng.Name(), sublineardp.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	const keyspace = 32
	instances := make([]*sublineardp.Instance, keyspace)
	want := make([]sublineardp.Cost, keyspace)
	for i := range instances {
		instances[i] = problems.RandomMatrixChain(6, 20, int64(i))
		sol, err := sublineardp.MustNewSolver(sublineardp.EngineSequential).
			Solve(context.Background(), instances[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sol.Cost()
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w + 1)
			for op := 0; op < 300; op++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				i := int(rng % keyspace)
				sol, err := s.Solve(context.Background(), instances[i])
				if err != nil {
					t.Errorf("solve %d: %v", i, err)
					return
				}
				if sol.Cost() != want[i] {
					t.Errorf("instance %d: cost %d, want %d", i, sol.Cost(), want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if eng.calls.Load() != st.Solves {
		t.Fatalf("engine ran %d times but cache recorded %d solves — duplicate in-flight solves",
			eng.calls.Load(), st.Solves)
	}
	if st.Evictions == 0 || st.Hits == 0 {
		t.Fatalf("stress run did not exercise evict/hit paths: %+v", st)
	}
}

// TestCacheCancellationReachesEngine proves a caller cancellation
// propagates through the cache's single-flight layer into the engine's
// context once no caller remains.
func TestCacheCancellationReachesEngine(t *testing.T) {
	eng := newCountingEngine(t, "counting-stress-cancel", true)
	c := sublineardp.NewCache(4)
	s, err := sublineardp.NewSolver(eng.Name(), sublineardp.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Solve(ctx, problems.CLRSMatrixChain())
		errc <- err
	}()
	<-eng.entered // engine is mid-solve, parked on its context
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error = %v, want context.Canceled", err)
	}
	// The engine itself unblocks via its own ctx (not eng.release, which
	// stays open) — calls has settled at 1 and no goroutine leaks.
	if eng.calls.Load() != 1 {
		t.Fatalf("engine calls = %d, want 1", eng.calls.Load())
	}
}

// TestCacheThroughSolveBatch threads one cache through a batch with
// duplicated instances: the batch completes with every slot filled and
// at most one underlying solve per distinct key.
func TestCacheThroughSolveBatch(t *testing.T) {
	eng := newCountingEngine(t, "counting-batch", false)
	c := sublineardp.NewCache(64)
	dimsA := []int{8, 7, 6, 5, 4}
	dimsB := []int{3, 9, 2, 8}
	var ins []*sublineardp.Instance
	for i := 0; i < 6; i++ {
		ins = append(ins, problems.MatrixChain(dimsA), problems.MatrixChain(dimsB))
	}
	sols, err := sublineardp.SolveBatch(context.Background(), ins,
		sublineardp.WithEngine(eng.Name()), sublineardp.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	for i, sol := range sols {
		if sol == nil {
			t.Fatalf("slot %d empty", i)
		}
	}
	if got := eng.calls.Load(); got != 2 {
		t.Fatalf("engine executed %d times for 2 distinct keys", got)
	}
	for i := 0; i < len(sols); i += 2 {
		if sols[i].Cost() != sols[0].Cost() || sols[i+1].Cost() != sols[1].Cost() {
			t.Fatalf("slot %d cost drifted", i)
		}
	}
}
