// Package calibrate defines the machine-local performance profile that
// replaces the library's compiled-in scheduling constants.
//
// The auto engine's routing thresholds (sequential below AutoCutoff,
// banded HLV up to AutoLargeCutoff, pipelined blocked tiles above) and
// the blocked engines' tile-edge floor were measured once on one
// development machine and baked in as DefaultAutoCutoff = 64,
// DefaultAutoLargeCutoff = 256 and DefaultTileSize = 64. Those numbers
// are wrong on any box with a different core count, cache hierarchy or
// memory bandwidth — the crossover where a parallel tier starts beating
// the cache-friendly sequential scan is a property of the machine, not
// of the algorithm.
//
// `dpbench -calibrate` re-measures the crossovers with the same
// best-of-k solve timing the BENCH_core.json baseline uses and writes
// the result here as a small JSON profile. Loading it (root package
// LoadCalibration + WithCalibration, or dpserved's -calibration flag)
// makes every auto-routed solve on that machine use the measured
// thresholds instead of the defaults. The probes that justified each
// threshold are recorded alongside it, so a profile is auditable: the
// numbers can be traced back to the ns/op measurements that chose them.
package calibrate

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema identifies the profile format; Load rejects other schemas so a
// stale or foreign JSON file cannot silently misconfigure the router.
const Schema = "sublineardp/calibration/v1"

// DefaultPath is the conventional profile location, next to
// BENCH_core.json in the repository (or working directory) root.
const DefaultPath = "CALIBRATION.json"

// Probe is one timing measurement behind a calibrated threshold: engine
// × instance size → best-of-k wall time. Probes are evidence, not
// configuration — Load never interprets them.
type Probe struct {
	Kind    string `json:"kind"`   // "cutoff", "large-cutoff" or "tile"
	Engine  string `json:"engine"` // registry engine name probed
	N       int    `json:"n"`      // instance size
	Tile    int    `json:"tile,omitempty"`
	NsPerOp int64  `json:"ns_per_op"`
}

// Profile is a machine-local calibration of the scheduling constants.
// Zero-valued threshold fields mean "not calibrated, keep the default",
// so a partial profile is valid.
type Profile struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Workers    int    `json:"workers,omitempty"`

	// AutoCutoff is the measured instance size at or below which the
	// sequential scan beats the first parallel tier.
	AutoCutoff int `json:"auto_cutoff,omitempty"`

	// AutoLargeCutoff is the measured instance size above which the
	// pipelined blocked engine beats the banded HLV iteration.
	AutoLargeCutoff int `json:"auto_large_cutoff,omitempty"`

	// TileSize is the measured best block edge for the blocked engines
	// on this machine.
	TileSize int `json:"tile_size,omitempty"`

	// Probes records the measurements the thresholds were derived from.
	Probes []Probe `json:"probes,omitempty"`
}

// Validate checks that the profile is structurally usable: the schema
// matches and every calibrated threshold is coherent (non-negative, and
// the large cutoff not below the small one when both are set).
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("calibrate: nil profile")
	}
	if p.Schema != Schema {
		return fmt.Errorf("calibrate: schema %q, want %q", p.Schema, Schema)
	}
	if p.AutoCutoff < 0 || p.AutoLargeCutoff < 0 || p.TileSize < 0 {
		return fmt.Errorf("calibrate: negative threshold (cutoff=%d large=%d tile=%d)",
			p.AutoCutoff, p.AutoLargeCutoff, p.TileSize)
	}
	if p.AutoCutoff > 0 && p.AutoLargeCutoff > 0 && p.AutoLargeCutoff < p.AutoCutoff {
		return fmt.Errorf("calibrate: large cutoff %d below small cutoff %d",
			p.AutoLargeCutoff, p.AutoCutoff)
	}
	return nil
}

// Load reads and validates a profile from path.
func Load(path string) (*Profile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(blob, &p); err != nil {
		return nil, fmt.Errorf("calibrate: %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return &p, nil
}

// Save validates the profile and writes it to path as indented JSON.
func (p *Profile) Save(path string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
