package llp

import (
	"context"
	"math/rand"
	"testing"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
	"sublineardp/internal/verify"
)

// randomChain builds a neutral chain with finite random weights in
// [0, maxW], optionally windowed, meaningful under every registered
// algebra.
func randomChain(n, maxW, window int, seed int64) *recurrence.Chain {
	rng := rand.New(rand.NewSource(seed))
	f := make([]cost.Cost, (n+1)*(n+1))
	for i := range f {
		f[i] = cost.Cost(rng.Intn(maxW + 1))
	}
	return &recurrence.Chain{
		N: n,
		F: func(k, j int) cost.Cost { return f[k*(n+1)+j] },
		FRow: func(j, k0 int, dst []cost.Cost) {
			copy(dst, f[k0*(n+1)+j:])
			for t := 1; t < len(dst); t++ {
				dst[t] = f[(k0+t)*(n+1)+j]
			}
		},
		Window: window,
		Name:   "random",
	}
}

func TestLLPMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 33, 64, 257} {
		for _, window := range []int{0, 1, 5} {
			c := randomChain(n, 40, window, int64(n*100+window))
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, name := range algebra.Names() {
				sr, _ := algebra.Lookup(name)
				want, err := seq.SolveChainSemiringCtx(context.Background(), c, sr)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4, 9} {
					got, err := SolveCtx(context.Background(), c, Options{Workers: workers, Semiring: sr})
					if err != nil {
						t.Fatalf("n=%d window=%d alg=%s workers=%d: %v", n, window, name, workers, err)
					}
					for j := 0; j <= n; j++ {
						if got.Values.At(j) != want.Values.At(j) {
							t.Fatalf("n=%d window=%d alg=%s workers=%d: c(%d) = %d, sequential %d",
								n, window, name, workers, j, got.Values.At(j), want.Values.At(j))
						}
					}
					if got.Work != want.Work {
						t.Fatalf("n=%d window=%d alg=%s workers=%d: work %d, sequential %d",
							n, window, name, workers, got.Work, want.Work)
					}
					if rep := verify.Chain(sr, c, got.Values); !rep.OK() {
						t.Fatalf("n=%d window=%d alg=%s workers=%d: %v", n, window, name, workers, rep.Err())
					}
				}
			}
		}
	}
}

func TestWorkEfficiency(t *testing.T) {
	for _, window := range []int{0, 7} {
		c := randomChain(129, 20, window, 42)
		res := Solve(c, Options{Workers: 4})
		if res.Work != c.NumCandidates() {
			t.Fatalf("window=%d: work %d, candidate count %d", window, res.Work, c.NumCandidates())
		}
		if res.Sweeps < 1 {
			t.Fatalf("window=%d: sweeps %d", window, res.Sweeps)
		}
	}
}

func TestSolveCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := randomChain(64, 10, 0, 7)
	if res, err := SolveCtx(ctx, c, Options{Workers: 2}); err == nil || res != nil {
		t.Fatalf("cancelled solve returned res=%v err=%v", res, err)
	}
}

func TestUnresolvableAlgebra(t *testing.T) {
	c := randomChain(4, 5, 0, 1)
	c.Algebra = "no-such-algebra"
	if _, err := SolveCtx(context.Background(), c, Options{}); err == nil {
		t.Fatal("expected an error for an unregistered algebra")
	}
}

func TestExplicitPool(t *testing.T) {
	pool := parutil.NewPool(3)
	defer pool.Close()
	c := randomChain(100, 15, 0, 9)
	want := seq.SolveChain(c)
	got := Solve(c, Options{Pool: pool})
	if !got.Values.Equal(want.Values) {
		t.Fatalf("pool solve diverged: %v", got.Values.Diff(want.Values, 3))
	}
}
