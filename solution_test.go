package sublineardp_test

import (
	"context"
	"errors"
	"testing"

	"sublineardp"
	"sublineardp/internal/problems"
)

// A zero-value or error-path Solution has no table; Cost and N must
// answer with the documented sentinels instead of panicking
// (solution.go used to dereference Table unconditionally).
func TestSolutionNilTableGuards(t *testing.T) {
	var zero sublineardp.Solution
	if got := zero.Cost(); got != sublineardp.Inf {
		t.Errorf("zero Solution.Cost() = %d, want Inf", got)
	}
	if got := zero.N(); got != 0 {
		t.Errorf("zero Solution.N() = %d, want 0", got)
	}
	if got := zero.Split(0, 2); got != -1 {
		t.Errorf("zero Solution.Split = %d, want -1", got)
	}

	// The sentinel is algebra-aware: "no solution" is the algebra's Zero.
	maxPlus := sublineardp.Solution{Algebra: "max-plus"}
	if got := maxPlus.Cost(); got != sublineardp.MaxPlus.Zero() {
		t.Errorf("max-plus tableless Cost() = %d, want %d", got, sublineardp.MaxPlus.Zero())
	}
	boolPlan := sublineardp.Solution{Algebra: "bool-plan"}
	if got := boolPlan.Cost(); got != 0 {
		t.Errorf("bool-plan tableless Cost() = %d, want 0", got)
	}
	unknown := sublineardp.Solution{Algebra: "no-such-algebra"}
	if got := unknown.Cost(); got != sublineardp.Inf {
		t.Errorf("unknown-algebra tableless Cost() = %d, want the Inf fallback", got)
	}
}

// Split must answer from the converged table on every engine — the
// parallel engines compute values only, but the min-plus table pins the
// smallest realising split exactly like the sequential recording, so
// the answers coincide across the whole registry.
func TestSolutionSplitAcrossEngines(t *testing.T) {
	in := problems.RandomMatrixChain(20, 60, 4)
	want := sublineardp.SolveSequential(in)
	ctx := context.Background()
	for _, name := range sublineardp.Engines() {
		if _, skip := nonconformingFixtures[name]; skip {
			continue
		}
		sol, err := sublineardp.MustNewSolver(name).Solve(ctx, in)
		if err != nil {
			if errors.Is(err, sublineardp.ErrConvexityRequired) && !in.Convex {
				continue // the pruned engine refuses non-convex instances
			}
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i <= in.N; i++ {
			for j := i + 2; j <= in.N; j++ {
				if got, exp := sol.Split(i, j), want.Split(i, j); got != exp {
					t.Errorf("%s: Split(%d,%d) = %d, sequential recorded %d", name, i, j, got, exp)
				}
			}
			if i < in.N {
				if got := sol.Split(i, i+1); got != -1 {
					t.Errorf("%s: leaf Split(%d,%d) = %d, want -1", name, i, i+1, got)
				}
			}
		}
	}
}

// The table fallback must degrade to -1 — never a wrong split, never a
// panic — whenever the span is genuinely unavailable, and now answers
// under every registered algebra (it was min-plus only).
func TestSolutionSplitUnavailable(t *testing.T) {
	in := problems.RandomMatrixChain(12, 40, 8)
	sol, err := sublineardp.MustNewSolver(sublineardp.EngineBlocked,
		sublineardp.WithSemiring(sublineardp.MaxPlus)).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	seqMax, err := sublineardp.MustNewSolver(sublineardp.EngineSequential,
		sublineardp.WithSemiring(sublineardp.MaxPlus)).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sol.Split(0, in.N), seqMax.Split(0, in.N); got != want {
		t.Errorf("max-plus table-based Split = %d, sequential recorded %d", got, want)
	}
	// Out-of-range spans return -1 on both the table path and the
	// recorded-splits path (the latter used to index out of range).
	minSol, err := sublineardp.MustNewSolver(sublineardp.EngineBlocked).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	seqMin, err := sublineardp.MustNewSolver(sublineardp.EngineSequential).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*sublineardp.Solution{minSol, seqMin} {
		for _, span := range [][2]int{{-1, 3}, {0, in.N + 1}, {3, 3}, {5, 4}, {-2, in.N + 9}} {
			if got := s.Split(span[0], span[1]); got != -1 {
				t.Errorf("%s: Split(%d,%d) = %d, want -1", s.Engine, span[0], span[1], got)
			}
		}
	}
	// The sequential engine keeps answering from its recorded splits on
	// any algebra.
	if got := seqMax.Split(0, in.N); got < 1 || got >= in.N {
		t.Errorf("sequential max-plus Split = %d, want a real split", got)
	}
}
