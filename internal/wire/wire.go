// Package wire defines the JSON request/response format of the dpserved
// HTTP API — the network representation of an Instance and a Solution.
//
// Instances cross the wire as their defining parameters (matrix
// dimensions, OBST weights, polygon vertices), never as closures, so a
// decoded request rebuilds its instance through the same constructors
// in-process callers use and inherits their canonical encoding — the
// property the serving cache's correctness rests on (FuzzCanonicalHash).
//
// The format is frozen by golden-file tests (testdata/*.json, refreshed
// with `go test ./internal/wire -update`): changing a field name or the
// rendering of a value is a wire-format break and fails the suite.
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"sublineardp"
	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
)

// Instance kinds accepted on the wire.
const (
	KindMatrixChain    = "matrixchain"
	KindOBST           = "obst"
	KindTriangulation  = "triangulation"
	KindWTriangulation = "wtriangulation"
	// KindWorstChain is the max-plus twin of matrixchain: the costliest
	// parenthesization of the same dimension list (adversarial bound).
	KindWorstChain = "worstchain"
	// KindBoolSplit is the bool-plan forbidden-split feasibility family:
	// does a parenthesization of `count` objects exist that avoids every
	// forbidden subexpression (i,j)?
	KindBoolSplit = "boolsplit"
)

// Chain kinds: 1D prefix recurrences (recurrence.Chain) solved by the
// chain engine registry (sequential / llp) rather than the interval one.
const (
	// KindSegLS is segmented least squares over the points in
	// Request.Points (x strictly increasing) with per-segment penalty
	// Request.Penalty. Min-plus.
	KindSegLS = "segls"
	// KindWIS is weighted interval scheduling over Starts/Ends/Weights.
	// Max-plus.
	KindWIS = "wis"
	// KindSubsetSum asks whether Target is a nonnegative-integer
	// combination of Items (coin-style, unbounded repetition). Bool-plan.
	KindSubsetSum = "subsetsum"
)

// IsChainKind reports whether kind names a chain (1D prefix) recurrence
// rather than an interval one — the routing predicate the serving layer
// branches on.
func IsChainKind(kind string) bool {
	switch kind {
	case KindSegLS, KindWIS, KindSubsetSum:
		return true
	}
	return false
}

// Span is a forbidden subexpression (i,j) of a boolsplit request,
// encoded on the wire as the two-element array [i, j].
type Span = [2]int

// Point is a polygon vertex on the wire.
type Point struct {
	X int64 `json:"x"`
	Y int64 `json:"y"`
}

// Options carries the solver configuration of one request. Every field
// is optional; the zero value means "server default". Enum fields use
// the dpsolve CLI spellings.
type Options struct {
	// Engine is a registry name ("auto", "sequential", "hlv-banded", ...).
	Engine string `json:"engine,omitempty"`
	// Mode is "sync" or "chaotic".
	Mode string `json:"mode,omitempty"`
	// Termination is "fixed", "w-stable" or "wpw-stable".
	Termination string `json:"termination,omitempty"`
	// Semiring overrides the algebra the recurrence is evaluated over —
	// any name registered with RegisterSemiring ("min-plus", "max-plus",
	// "bool-plan" shipped). Kinds with an intrinsic algebra (worstchain,
	// boolsplit) need no override; setting one anyway wins, exactly as
	// WithSemiring does in-process.
	Semiring      string `json:"semiring,omitempty"`
	MaxIterations int    `json:"max_iterations,omitempty"`
	BandRadius    int    `json:"band_radius,omitempty"`
	// Window toggles the HLV banded engine's Section 5 windowed pebble
	// schedule (WithWindow) — a solver scheduling knob, not to be
	// confused with Request.ChainWindow, which restricts a chain
	// recurrence's candidate set and changes the answer.
	Window     bool `json:"window,omitempty"`
	TileSize   int  `json:"tile_size,omitempty"`
	Workers    int  `json:"workers,omitempty"`
	AutoCutoff int  `json:"auto_cutoff,omitempty"`
	// AutoLargeCutoff is the auto engine's blocked-engine threshold
	// (WithAutoLargeCutoff).
	AutoLargeCutoff int `json:"auto_large_cutoff,omitempty"`
}

// Request is one solve request. Exactly the parameter fields of its Kind
// may be set: Dims for matrixchain, Alpha/Beta for obst, Points for
// triangulation, Weights for wtriangulation.
type Request struct {
	// ID is an opaque client correlation tag echoed on the response.
	ID      string  `json:"id,omitempty"`
	Kind    string  `json:"kind"`
	Dims    []int   `json:"dims,omitempty"`
	Alpha   []int64 `json:"alpha,omitempty"`
	Beta    []int64 `json:"beta,omitempty"`
	Points  []Point `json:"points,omitempty"`
	Weights []int64 `json:"weights,omitempty"`
	// Count and Forbidden parameterise boolsplit: n objects and the
	// forbidden subexpressions.
	Count     int    `json:"count,omitempty"`
	Forbidden []Span `json:"forbidden,omitempty"`
	// Penalty parameterises segls (per-segment cost; the points ride in
	// Points). Starts/Ends carry the wis jobs, with Weights reused for
	// the job weights. Target and Items parameterise subsetsum.
	Penalty int64   `json:"penalty,omitempty"`
	Starts  []int64 `json:"starts,omitempty"`
	Ends    []int64 `json:"ends,omitempty"`
	Target  int64   `json:"target,omitempty"`
	Items   []int64 `json:"items,omitempty"`
	// ChainWindow restricts the candidate set of a chain-kind request to
	// k >= j-ChainWindow (recurrence.Chain.Window; 0 = full prefix). It
	// is part of the problem statement — a windowed chain never shares a
	// cache entry with its full-prefix twin — unlike Options.Window,
	// which is an HLV scheduling knob that cannot change the answer.
	ChainWindow int     `json:"chain_window,omitempty"`
	Options     Options `json:"options,omitzero"`
	// WantTree requests the optimal parenthesization in Response.Tree
	// (adds an O(n^2) reconstruction on the serving path). Deprecated in
	// favour of ReturnSplits, which serves every algebra and records
	// splits during large solves; kept for wire compatibility.
	WantTree bool `json:"want_tree,omitempty"`
	// ReturnSplits requests the solve record split points
	// (sublineardp.WithSplits on interval kinds) and return the
	// reconstruction — the optimal tree of an interval kind, the witness
	// breakpoint path of a chain kind — in Response.Reconstruction, with
	// its own digest. Works under every registered algebra, and on the
	// blocked engine costs O(n) reconstruction instead of a table
	// re-scan.
	ReturnSplits bool `json:"return_splits,omitempty"`
}

// Response is the outcome of one solve request.
type Response struct {
	ID     string `json:"id,omitempty"`
	Kind   string `json:"kind"`
	N      int    `json:"n"`
	Engine string `json:"engine"`
	Cost   int64  `json:"cost"`
	// TableDigest is the hex SHA-256 of the full converged cost table
	// (TableDigest function), so clients — and the e2e suite — can check
	// bitwise agreement with a local solve without shipping O(n^2) values.
	TableDigest  string `json:"table_digest"`
	Iterations   int    `json:"iterations,omitempty"`
	StoppedEarly bool   `json:"stopped_early,omitempty"`
	BandRadius   int    `json:"band_radius,omitempty"`
	Tree         string `json:"tree,omitempty"`
	// Algebra names the semiring the solve ran under, omitted for the
	// default min-plus — the key to reading Cost (minimal cost, maximal
	// cost, or 0/1 feasibility).
	Algebra string `json:"algebra,omitempty"`
	// Cached reports the solution came from the server's canonical
	// instance cache; Coalesced that this request folded into an
	// identical in-flight solve. At most one is set.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Reconstruction carries the solution path when the request set
	// ReturnSplits: the optimal tree (interval kinds) or witness
	// breakpoint path (chain kinds) with its own digest, or the reason
	// no path exists. Omitted entirely unless requested, so responses to
	// old clients are byte-identical.
	Reconstruction *Reconstruction `json:"reconstruction,omitempty"`
	// ElapsedMicros is the server-side solve (or wait) duration.
	ElapsedMicros int64 `json:"elapsed_us"`
}

// Reconstruction is the solution-path section of a response
// (Request.ReturnSplits). Exactly one of Tree/Path is set on success;
// Error reports a genuinely unavailable path (an infeasible instance, a
// non-converged table) — the request itself still succeeds, values are
// served either way.
type Reconstruction struct {
	// Tree is the optimal parenthesization of an interval kind in the
	// btree S-expression encoding ("(k L R)" nodes, "." leaves).
	Tree string `json:"tree,omitempty"`
	// Path is the witness breakpoint sequence 0 = k_0 < ... < k_m = N of
	// a chain kind.
	Path []int `json:"path,omitempty"`
	// Digest is the hex SHA-256 of the tree or path (TreeDigest /
	// PathDigest — domain-separated from each other and from value
	// digests), so clients can check reconstruction agreement without
	// re-deriving it.
	Digest string `json:"digest,omitempty"`
	// Error is why no path could be reconstructed.
	Error string `json:"error,omitempty"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// N returns the instance size the request describes, without building
// the instance (0 for malformed parameter sets).
func (r *Request) N() int {
	switch r.Kind {
	case KindMatrixChain, KindWorstChain:
		return len(r.Dims) - 1
	case KindOBST:
		return len(r.Beta) + 1
	case KindTriangulation:
		return len(r.Points) - 1
	case KindWTriangulation:
		return len(r.Weights) - 1
	case KindBoolSplit:
		return r.Count
	case KindSegLS:
		return len(r.Points)
	case KindWIS:
		return len(r.Starts)
	case KindSubsetSum:
		return int(r.Target)
	}
	return 0
}

// Validate checks the request is well formed and its instance size is
// within maxN (<= 0 means unbounded). It mirrors the constructor
// preconditions as errors so a malformed request is a 400, not a panic.
func (r *Request) Validate(maxN int) error {
	switch r.Kind {
	case KindMatrixChain, KindWorstChain:
		if len(r.Dims) < 2 {
			return fmt.Errorf("wire: %s needs >= 2 dims, got %d", r.Kind, len(r.Dims))
		}
		for _, d := range r.Dims {
			if d <= 0 {
				return fmt.Errorf("wire: nonpositive matrix dimension %d", d)
			}
		}
	case KindBoolSplit:
		if r.Count < 1 {
			return fmt.Errorf("wire: boolsplit needs count >= 1, got %d", r.Count)
		}
		for _, p := range r.Forbidden {
			if p[0] < 0 || p[0] >= p[1] || p[1] > r.Count {
				return fmt.Errorf("wire: forbidden pair (%d,%d) outside 0 <= i < j <= %d", p[0], p[1], r.Count)
			}
		}
	case KindOBST:
		if len(r.Beta) < 1 {
			return fmt.Errorf("wire: obst needs >= 1 beta weight")
		}
		if len(r.Alpha) != len(r.Beta)+1 {
			return fmt.Errorf("wire: obst needs len(alpha) == len(beta)+1, got %d and %d",
				len(r.Alpha), len(r.Beta))
		}
		for _, v := range r.Alpha {
			if v < 0 {
				return fmt.Errorf("wire: negative alpha weight %d", v)
			}
		}
		for _, v := range r.Beta {
			if v < 0 {
				return fmt.Errorf("wire: negative beta weight %d", v)
			}
		}
	case KindTriangulation:
		if len(r.Points) < 3 {
			return fmt.Errorf("wire: triangulation needs >= 3 points, got %d", len(r.Points))
		}
	case KindWTriangulation:
		if len(r.Weights) < 3 {
			return fmt.Errorf("wire: wtriangulation needs >= 3 weights, got %d", len(r.Weights))
		}
		for _, w := range r.Weights {
			if w <= 0 {
				return fmt.Errorf("wire: nonpositive vertex weight %d", w)
			}
		}
	case KindSegLS:
		if len(r.Points) < 1 {
			return fmt.Errorf("wire: segls needs >= 1 point, got %d", len(r.Points))
		}
		if r.Penalty < 0 {
			return fmt.Errorf("wire: negative segment penalty %d", r.Penalty)
		}
		for t := 1; t < len(r.Points); t++ {
			if r.Points[t].X <= r.Points[t-1].X {
				return fmt.Errorf("wire: segls xs must be strictly increasing, x[%d]=%d after %d",
					t, r.Points[t].X, r.Points[t-1].X)
			}
		}
	case KindWIS:
		if len(r.Starts) < 1 || len(r.Starts) != len(r.Ends) || len(r.Starts) != len(r.Weights) {
			return fmt.Errorf("wire: wis needs matching nonempty starts/ends/weights, got %d/%d/%d",
				len(r.Starts), len(r.Ends), len(r.Weights))
		}
		for t := range r.Starts {
			if r.Starts[t] >= r.Ends[t] {
				return fmt.Errorf("wire: wis job %d has start %d >= end %d", t, r.Starts[t], r.Ends[t])
			}
			if r.Weights[t] < 0 {
				return fmt.Errorf("wire: wis job %d has negative weight %d", t, r.Weights[t])
			}
		}
	case KindSubsetSum:
		if r.Target < 1 {
			return fmt.Errorf("wire: subsetsum needs target >= 1, got %d", r.Target)
		}
		if len(r.Items) < 1 {
			return fmt.Errorf("wire: subsetsum needs at least one item")
		}
		for _, it := range r.Items {
			if it < 1 {
				return fmt.Errorf("wire: subsetsum items must be positive, got %d", it)
			}
		}
	case "":
		return fmt.Errorf("wire: missing kind")
	default:
		return fmt.Errorf("wire: unknown kind %q", r.Kind)
	}
	if r.ChainWindow != 0 {
		if !IsChainKind(r.Kind) {
			return fmt.Errorf("wire: chain_window applies to chain kinds only, not %q", r.Kind)
		}
		if r.ChainWindow < 0 {
			return fmt.Errorf("wire: negative chain_window %d", r.ChainWindow)
		}
	}
	if maxN > 0 && r.N() > maxN {
		return fmt.Errorf("wire: instance size n=%d exceeds the server limit n=%d", r.N(), maxN)
	}
	if _, err := r.SolverOptions(); err != nil {
		return err
	}
	return nil
}

// Instance builds the recurrence instance the request describes, through
// the same constructors in-process callers use. Call Validate first; a
// malformed request may panic here exactly as a malformed constructor
// call would.
func (r *Request) Instance() (*recurrence.Instance, error) {
	switch r.Kind {
	case KindMatrixChain:
		return problems.MatrixChain(r.Dims), nil
	case KindWorstChain:
		return problems.WorstCaseMatrixChain(r.Dims), nil
	case KindBoolSplit:
		return problems.ForbiddenSplits(r.Count, r.Forbidden), nil
	case KindOBST:
		return problems.OBST(r.Alpha, r.Beta), nil
	case KindTriangulation:
		vs := make([]problems.Point, len(r.Points))
		for i, p := range r.Points {
			vs[i] = problems.Point{X: p.X, Y: p.Y}
		}
		return problems.Triangulation(vs), nil
	case KindWTriangulation:
		return problems.WeightedTriangulation(r.Weights), nil
	}
	if IsChainKind(r.Kind) {
		return nil, fmt.Errorf("wire: %q is a chain kind; use ChainInstance", r.Kind)
	}
	return nil, fmt.Errorf("wire: unknown kind %q", r.Kind)
}

// ChainInstance builds the chain recurrence the request describes,
// through the same constructors in-process callers use. Call Validate
// first, exactly as with Instance. A positive ChainWindow tightens the
// constructor's window (constructors may already set one — subset sum's
// largest item); it never widens a constructor window, which would admit
// candidates the family's F does not define.
func (r *Request) ChainInstance() (*recurrence.Chain, error) {
	var c *recurrence.Chain
	switch r.Kind {
	case KindSegLS:
		xs := make([]int64, len(r.Points))
		ys := make([]int64, len(r.Points))
		for i, p := range r.Points {
			xs[i], ys[i] = p.X, p.Y
		}
		c = problems.SegmentedLeastSquares(xs, ys, r.Penalty)
	case KindWIS:
		c = problems.IntervalScheduling(r.Starts, r.Ends, r.Weights)
	case KindSubsetSum:
		c = problems.SubsetSum(r.Target, r.Items)
	default:
		return nil, fmt.Errorf("wire: %q is not a chain kind", r.Kind)
	}
	if r.ChainWindow > 0 && (c.Window == 0 || r.ChainWindow < c.Window) {
		c.Window = r.ChainWindow
	}
	return c, nil
}

// SolverOptions maps the wire options onto functional options for
// NewSolver/SolveBatch, rejecting unknown enum spellings. The engine
// name is returned by Engine(), not here, because NewSolver takes it
// positionally.
func (r *Request) SolverOptions() ([]sublineardp.Option, error) {
	o := r.Options
	var opts []sublineardp.Option
	switch o.Mode {
	case "", "sync":
	case "chaotic":
		opts = append(opts, sublineardp.WithMode(sublineardp.Chaotic))
	default:
		return nil, fmt.Errorf("wire: unknown mode %q", o.Mode)
	}
	switch o.Termination {
	case "", "fixed":
	case "w-stable":
		opts = append(opts, sublineardp.WithTermination(sublineardp.WStable))
	case "wpw-stable":
		opts = append(opts, sublineardp.WithTermination(sublineardp.WPWStable))
	default:
		return nil, fmt.Errorf("wire: unknown termination %q", o.Termination)
	}
	switch o.Semiring {
	case "", "min-plus":
	default:
		sr, ok := sublineardp.LookupSemiring(o.Semiring)
		if !ok {
			return nil, fmt.Errorf("wire: unknown semiring %q (registered: %v)",
				o.Semiring, sublineardp.Semirings())
		}
		opts = append(opts, sublineardp.WithSemiring(sr))
	}
	if o.MaxIterations > 0 {
		opts = append(opts, sublineardp.WithMaxIterations(o.MaxIterations))
	}
	if o.BandRadius > 0 {
		opts = append(opts, sublineardp.WithBandRadius(o.BandRadius))
	}
	if o.Window {
		opts = append(opts, sublineardp.WithWindow(true))
	}
	if o.TileSize > 0 {
		opts = append(opts, sublineardp.WithTileSize(o.TileSize))
	}
	if o.Workers > 0 {
		opts = append(opts, sublineardp.WithWorkers(o.Workers))
	}
	if o.AutoCutoff > 0 {
		opts = append(opts, sublineardp.WithAutoCutoff(o.AutoCutoff))
	}
	if o.AutoLargeCutoff > 0 {
		opts = append(opts, sublineardp.WithAutoLargeCutoff(o.AutoLargeCutoff))
	}
	if r.ReturnSplits && !IsChainKind(r.Kind) {
		// Record splits during the solve so the reconstruction the
		// response carries is O(n) on the recording engines. Chain solves
		// reconstruct from the vector; no solver option needed.
		opts = append(opts, sublineardp.WithSplits(true))
	}
	return opts, nil
}

// Engine returns the requested engine registry name ("" = server's
// default).
func (r *Request) Engine() string { return r.Options.Engine }

// NewResponse renders a Solution as the wire response for its request.
// Tree reconstruction runs only when the request asked for it and the
// solve ran under the default min-plus algebra (the serving path
// recovers trees from value tables, which is min-plus only; the algebra
// is echoed in Response.Algebra either way).
func NewResponse(r *Request, sol *sublineardp.Solution) *Response {
	resp := &Response{
		ID:            r.ID,
		Kind:          r.Kind,
		N:             sol.N(),
		Engine:        sol.Engine,
		Cost:          int64(sol.Cost()),
		TableDigest:   TableDigest(sol.Table),
		Iterations:    sol.Iterations,
		StoppedEarly:  sol.StoppedEarly,
		BandRadius:    sol.BandRadius,
		Cached:        sol.Cached,
		ElapsedMicros: sol.Elapsed.Microseconds(),
	}
	if sol.Algebra != "" && sol.Algebra != "min-plus" {
		resp.Algebra = sol.Algebra
	}
	if r.WantTree && (sol.Algebra == "" || sol.Algebra == "min-plus") {
		if tr, err := sol.Tree(); err == nil {
			resp.Tree = tr.Encode()
		}
	}
	if r.ReturnSplits {
		rec := &Reconstruction{}
		if tr, err := sol.Tree(); err == nil {
			rec.Tree = tr.Encode()
			rec.Digest = TreeDigest(tr)
		} else {
			rec.Error = err.Error()
		}
		resp.Reconstruction = rec
	}
	return resp
}

// NewChainResponse renders a ChainSolution as the wire response for its
// chain-kind request. TableDigest carries the VectorDigest of the value
// vector (domain-separated from interval table digests); Iterations
// carries the LLP engine's sweep count (0 for the sequential engine).
// WantTree returns the optimal breakpoint sequence ("0 4 9 ... n",
// space-separated) in Tree when the instance is feasible.
func NewChainResponse(r *Request, sol *sublineardp.ChainSolution) *Response {
	resp := &Response{
		ID:            r.ID,
		Kind:          r.Kind,
		N:             sol.N(),
		Engine:        sol.Engine,
		Cost:          int64(sol.Cost()),
		TableDigest:   VectorDigest(sol.Values),
		Iterations:    sol.Sweeps,
		Cached:        sol.Cached,
		ElapsedMicros: sol.Elapsed.Microseconds(),
	}
	if sol.Algebra != "" && sol.Algebra != "min-plus" {
		resp.Algebra = sol.Algebra
	}
	if r.WantTree && sol.Feasible() {
		if path, err := sol.Path(); err == nil {
			var b []byte
			for i, p := range path {
				if i > 0 {
					b = append(b, ' ')
				}
				b = fmt.Appendf(b, "%d", p)
			}
			resp.Tree = string(b)
		}
	}
	if r.ReturnSplits {
		rec := &Reconstruction{}
		if path, err := sol.Path(); err == nil {
			rec.Path = path
			rec.Digest = PathDigest(path)
		} else {
			rec.Error = err.Error()
		}
		resp.Reconstruction = rec
	}
	return resp
}

// TableDigest returns the hex SHA-256 over the table's size and every
// normalised upper-triangle entry in row-major order — the bitwise
// identity of a solve result.
func TableDigest(t *recurrence.Table) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	h.Write(buf[:binary.PutVarint(buf[:], int64(t.N))])
	for i := 0; i <= t.N; i++ {
		for j := i + 1; j <= t.N; j++ {
			h.Write(buf[:binary.PutVarint(buf[:], int64(cost.Norm(t.At(i, j))))])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TreeDigest returns the hex SHA-256 over a "tree" domain tag and the
// tree's S-expression encoding — the bitwise identity of a
// reconstruction, separated from value digests (and from PathDigest) so
// no two digest kinds can ever collide.
func TreeDigest(t *btree.Tree) string {
	h := sha256.New()
	h.Write([]byte("tree"))
	h.Write([]byte(t.Encode()))
	return hex.EncodeToString(h.Sum(nil))
}

// PathDigest is TreeDigest for chain witness paths: the hex SHA-256 over
// a "path" domain tag, the breakpoint count, and every breakpoint as a
// varint.
func PathDigest(path []int) string {
	h := sha256.New()
	h.Write([]byte("path"))
	var buf [binary.MaxVarintLen64]byte
	h.Write(buf[:binary.PutVarint(buf[:], int64(len(path)))])
	for _, p := range path {
		h.Write(buf[:binary.PutVarint(buf[:], int64(p))])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// VectorDigest is TableDigest for chain value vectors: the hex SHA-256
// over a "chain" domain tag, the vector's size, and every normalised
// value c(0..n) — so a chain digest can never collide with an interval
// table digest even on identical payload bytes.
func VectorDigest(v *recurrence.Vector) string {
	h := sha256.New()
	h.Write([]byte("chain"))
	var buf [binary.MaxVarintLen64]byte
	h.Write(buf[:binary.PutVarint(buf[:], int64(v.N))])
	for j := 0; j <= v.N; j++ {
		h.Write(buf[:binary.PutVarint(buf[:], int64(cost.Norm(v.At(j))))])
	}
	return hex.EncodeToString(h.Sum(nil))
}
