package calibrate

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfileRoundTrip(t *testing.T) {
	p := &Profile{
		Schema:          Schema,
		GoVersion:       "go-test",
		GOMAXPROCS:      4,
		Workers:         4,
		AutoCutoff:      48,
		AutoLargeCutoff: 192,
		TileSize:        128,
		Probes: []Probe{
			{Kind: "cutoff", Engine: "sequential", N: 48, NsPerOp: 1000},
			{Kind: "tile", Engine: "blocked-pipe", N: 1024, Tile: 128, NsPerOp: 5000},
		},
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.AutoCutoff != 48 || got.AutoLargeCutoff != 192 || got.TileSize != 128 {
		t.Fatalf("thresholds did not round-trip: %+v", got)
	}
	if len(got.Probes) != 2 || got.Probes[1].Tile != 128 {
		t.Fatalf("probes did not round-trip: %+v", got.Probes)
	}
}

func TestLoadRejectsBadProfiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]string{
		"bad-schema.json": `{"schema":"something/else","auto_cutoff":10}`,
		"negative.json":   `{"schema":"` + Schema + `","auto_cutoff":-1}`,
		"inverted.json":   `{"schema":"` + Schema + `","auto_cutoff":100,"auto_large_cutoff":50}`,
		"not-json.json":   `{"schema":`,
	}
	for name, body := range cases {
		if _, err := Load(write(name, body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: accepted")
	}

	// Partial profiles are valid: zero thresholds mean "keep defaults".
	if _, err := Load(write("partial.json", `{"schema":"`+Schema+`","tile_size":96}`)); err != nil {
		t.Errorf("partial profile rejected: %v", err)
	}
}
