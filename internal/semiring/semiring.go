// Package semiring is the deprecated predecessor of internal/algebra:
// the original int64 semiring interface and a side-package solver that
// pre-dated the generic engines. It survives as a thin compatibility
// shim — the Semiring interface and three algebras keep their int64
// signatures for old callers, and SolveHLV is now a wrapper over the
// unified internal/core engines (see solve.go). New code should use
// internal/algebra with recurrence.Instance.Algebra, or the root
// WithSemiring option.
//
// Nothing in the a-activate / a-square / a-pebble scheme uses properties
// of (min, +) other than: Combine is an idempotent, commutative,
// associative selection; Extend is associative, distributes over Combine,
// and is monotone with respect to the order Combine induces. Under those
// axioms every intermediate estimate is the Extend-accumulation of some
// feasible (partial) tree, the estimates move monotonically toward the
// optimum, and the pebbling-game argument bounds the iteration count by
// 2*ceil(sqrt(n)) exactly as in the paper.
//
// The three algebras here — MinPlus (the paper), MaxPlus (maximum-cost
// parenthesization), BoolPlan (forbidden-split feasibility) — mirror
// their internal/algebra counterparts, which the wrappers map onto so
// legacy solves still run the specialised kernels.
//
// Non-idempotent semirings — notably counting parenthesizations with
// (+, *) — are deliberately NOT supported: iterating to a fixed point
// re-Combines the same tree many times, which only an idempotent Combine
// tolerates. See the package tests for the cross-checks against brute
// force.
package semiring

import (
	"fmt"
	"math"
)

// Semiring is an idempotent semiring over int64 values.
type Semiring interface {
	// Combine selects between two candidate values (min, max, or).
	// It must be idempotent: Combine(a,a) == a.
	Combine(a, b int64) int64
	// Extend accumulates values along a tree decomposition (+, and).
	Extend(a, b int64) int64
	// Zero is Combine's identity ("no candidate yet").
	Zero() int64
	// One is Extend's identity (the weight of an empty accumulation).
	One() int64
	// Name labels the semiring in tables and tests.
	Name() string
}

// Sentinels chosen far from the int64 boundaries so Extend cannot wrap.
const (
	posInf int64 = math.MaxInt64 / 4
	negInf int64 = -(math.MaxInt64 / 4)
)

// MinPlus is the paper's semiring: Combine = min, Extend = saturating +.
type MinPlus struct{}

// Combine returns min(a, b).
func (MinPlus) Combine(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Extend returns a+b saturated at the +Inf sentinel.
func (MinPlus) Extend(a, b int64) int64 {
	if a >= posInf || b >= posInf {
		return posInf
	}
	return a + b
}

// Zero returns +Inf.
func (MinPlus) Zero() int64 { return posInf }

// One returns 0.
func (MinPlus) One() int64 { return 0 }

// Name returns "min-plus".
func (MinPlus) Name() string { return "min-plus" }

// MaxPlus maximises total weight: Combine = max, Extend = saturating +.
// Estimates grow upward from -Inf; the optimum is the costliest tree.
type MaxPlus struct{}

// Combine returns max(a, b).
func (MaxPlus) Combine(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Extend returns a+b, saturating at the -Inf sentinel (an absent operand
// keeps the whole accumulation absent).
func (MaxPlus) Extend(a, b int64) int64 {
	if a <= negInf || b <= negInf {
		return negInf
	}
	return a + b
}

// Zero returns -Inf.
func (MaxPlus) Zero() int64 { return negInf }

// One returns 0.
func (MaxPlus) One() int64 { return 0 }

// Name returns "max-plus".
func (MaxPlus) Name() string { return "max-plus" }

// BoolPlan decides feasibility: values are 0 (impossible) and 1
// (possible); Combine = or, Extend = and. An instance marks forbidden
// splits with F = 0 and allowed ones with F = 1.
type BoolPlan struct{}

// Combine returns a OR b.
func (BoolPlan) Combine(a, b int64) int64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

// Extend returns a AND b.
func (BoolPlan) Extend(a, b int64) int64 {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}

// Zero returns 0 (false).
func (BoolPlan) Zero() int64 { return 0 }

// One returns 1 (true).
func (BoolPlan) One() int64 { return 1 }

// Name returns "bool-plan".
func (BoolPlan) Name() string { return "bool-plan" }

// Instance is a recurrence-(*) problem over an arbitrary semiring.
type Instance struct {
	N    int
	Init func(i int) int64
	F    func(i, k, j int) int64
	Name string
}

// Validate checks the structural preconditions.
func (in *Instance) Validate() error {
	if in.N < 1 {
		return fmt.Errorf("semiring: instance %q has N=%d", in.Name, in.N)
	}
	if in.Init == nil || in.F == nil {
		return fmt.Errorf("semiring: instance %q missing callbacks", in.Name)
	}
	return nil
}
