// Package stats supplies the small statistical toolkit the experiment
// harness uses: summary statistics and least-squares fits, in particular
// the log-log power-law fit that turns measured work counts into empirical
// complexity exponents (experiments E2 and E5).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Fit is a least-squares line fit y = Slope*x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinFit fits a line through the (x,y) points by ordinary least squares.
// It panics if the slices differ in length; it returns a zero Fit for
// fewer than two points.
func LinFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: LinFit with %d xs and %d ys", len(xs), len(ys)))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R^2 = 1 - SSres/SStot.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// PowerFit fits y = c * x^e by least squares in log-log space and returns
// the exponent e, the constant c, and R^2 of the log-space fit. Points
// with nonpositive coordinates are skipped.
func PowerFit(xs, ys []float64) (exponent, constant, r2 float64) {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	f := LinFit(lx, ly)
	return f.Slope, math.Exp(f.Intercept), f.R2
}

// LogFit fits y = a*log2(x) + b and returns the fit. Points with
// nonpositive x are skipped.
func LogFit(xs, ys []float64) Fit {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 {
			lx = append(lx, math.Log2(xs[i]))
			ly = append(ly, ys[i])
		}
	}
	return LinFit(lx, ly)
}

// Ratio returns the element-wise ys[i]/xs[i] (skipping zero denominators).
func Ratio(ys, xs []float64) []float64 {
	var out []float64
	for i := range ys {
		if i < len(xs) && xs[i] != 0 {
			out = append(out, ys[i]/xs[i])
		}
	}
	return out
}
