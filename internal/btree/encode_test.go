package btree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeKnownShapes(t *testing.T) {
	if got := New(1, nil).Encode(); got != "." {
		t.Fatalf("single leaf encodes as %q", got)
	}
	if got := Complete(2).Encode(); got != "(1 . .)" {
		t.Fatalf("two leaves encode as %q", got)
	}
	if got := LeftSkewed(3).Encode(); got != "(2 (1 . .) .)" {
		t.Fatalf("left spine encodes as %q", got)
	}
	if got := RightSkewed(3).Encode(); got != "(1 . (2 . .))" {
		t.Fatalf("right spine encodes as %q", got)
	}
}

func TestParseKnownShapes(t *testing.T) {
	tr, err := Parse("(2 (1 . .) .)")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(LeftSkewed(3)) {
		t.Fatal("parsed tree is not the left spine")
	}
	single, err := Parse(".")
	if err != nil {
		t.Fatal(err)
	}
	if single.N != 1 {
		t.Fatalf("parsed single leaf has N=%d", single.N)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"(",
		"(1 . .",
		"(1 . .))",
		"(x . .)",
		"(3 . .)",        // split outside span (0,2)
		"(1 (1 . .) .)",  // inner split inconsistent
		"(2 . (3 . .))",  // left leaf covers 2 objects
		". .",            // trailing garbage
		"(1 . .) extra",  // trailing garbage
		"(0 . .)",        // split at span edge
		"[1 . .]",        // wrong brackets
		"(1 . .)(2 . .)", // two roots
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestEncodeParseRoundTripShapes(t *testing.T) {
	for name, tr := range shapes(17) {
		got, err := Parse(tr.Encode())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(tr) {
			t.Fatalf("%s: round trip changed the tree (%s)", name, tr.Encode())
		}
	}
}

// Property: Encode/Parse round-trips arbitrary random trees.
func TestEncodeParseRoundTripProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%40 + 1
		var tr *Tree
		if n == 1 {
			tr = New(1, nil)
		} else {
			tr = RandomSplit(n, rand.New(rand.NewSource(seed)))
		}
		got, err := Parse(tr.Encode())
		return err == nil && got.Equal(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: encoding length is linear in n and contains exactly n leaves.
func TestEncodeShape(t *testing.T) {
	tr := RandomSplit(25, rand.New(rand.NewSource(3)))
	enc := tr.Encode()
	if got := strings.Count(enc, "."); got != 25 {
		t.Fatalf("encoding has %d leaves, want 25", got)
	}
	if got := strings.Count(enc, "("); got != 24 {
		t.Fatalf("encoding has %d internal nodes, want 24", got)
	}
}
