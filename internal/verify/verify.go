// Package verify certifies solver outputs independently of how they were
// computed: a table is accepted only if it is exactly the fixed point of
// recurrence (*) — leaves match init, every internal span is realised by
// some split, and no split realises anything better. The checks are
// O(n^3), the cost of one sequential solve, but share no code with any
// solver, so they catch systematic bugs a solver-vs-solver comparison
// could miss.
package verify

import (
	"fmt"

	"sublineardp/internal/algebra"
	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// Violation describes one cell at which a table fails verification.
type Violation struct {
	I, J int
	Got  cost.Cost
	Want cost.Cost
	Kind string // "leaf", "too-high", "too-low"
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at (%d,%d): got %d, recurrence gives %d", v.Kind, v.I, v.J, v.Got, v.Want)
}

// Report is the outcome of a verification.
type Report struct {
	Violations []Violation
	Checked    int
}

// OK reports whether the verification passed.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when verification passed, or an error summarising the
// first violations.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	msg := r.Violations[0].String()
	if len(r.Violations) > 1 {
		msg = fmt.Sprintf("%s (and %d more)", msg, len(r.Violations)-1)
	}
	return fmt.Errorf("verify: %s", msg)
}

// TableSemiring checks that t is the exact fixed point of the recurrence
// for in under an arbitrary algebra: leaves must equal init, and every
// internal span must equal the Combine over its splits of
// Extend(f, Extend(left, right)) — the verifier behind the engine ×
// generator × semiring conformance matrix. Like Table it shares no code
// with any solver. A nil sr resolves the instance's declared algebra.
func TableSemiring(sr algebra.Semiring, in *recurrence.Instance, t *recurrence.Table) *Report {
	k, err := algebra.Resolve(sr, in.Algebra)
	if err != nil {
		return &Report{Violations: []Violation{{Kind: "unresolvable-algebra"}}}
	}
	rep := &Report{}
	n := in.N
	if t.N != n {
		rep.Violations = append(rep.Violations, Violation{Kind: "leaf", Got: cost.Cost(t.N), Want: cost.Cost(n)})
		return rep
	}
	for i := 0; i < n; i++ {
		rep.Checked++
		got := k.Norm(t.At(i, i+1))
		want := k.Norm(in.Init(i))
		if got != want {
			rep.Violations = append(rep.Violations, Violation{I: i, J: i + 1, Got: got, Want: want, Kind: "leaf"})
		}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span
			rep.Checked++
			best := k.Zero()
			for s := i + 1; s < j; s++ {
				best = k.Relax3(best, in.F(i, s, j), t.At(i, s), t.At(s, j))
			}
			got := k.Norm(t.At(i, j))
			best = k.Norm(best)
			if got != best {
				kind := "not-reached" // table misses a value some split realises
				if k.Better(got, best) {
					kind = "unrealisable" // table claims a value no split realises
				}
				rep.Violations = append(rep.Violations, Violation{I: i, J: j, Got: got, Want: best, Kind: kind})
			}
		}
	}
	return rep
}

// Table checks that t is the exact fixed point of the recurrence for in.
func Table(in *recurrence.Instance, t *recurrence.Table) *Report {
	rep := &Report{}
	n := in.N
	if t.N != n {
		rep.Violations = append(rep.Violations, Violation{Kind: "leaf", Got: cost.Cost(t.N), Want: cost.Cost(n)})
		return rep
	}
	for i := 0; i < n; i++ {
		rep.Checked++
		got := cost.Norm(t.At(i, i+1))
		want := cost.Norm(in.Init(i))
		if got != want {
			rep.Violations = append(rep.Violations, Violation{I: i, J: i + 1, Got: got, Want: want, Kind: "leaf"})
		}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span
			rep.Checked++
			best := cost.Inf
			for k := i + 1; k < j; k++ {
				v := cost.Add3(in.F(i, k, j), t.At(i, k), t.At(k, j))
				if v < best {
					best = v
				}
			}
			got := cost.Norm(t.At(i, j))
			best = cost.Norm(best)
			switch {
			case got > best:
				rep.Violations = append(rep.Violations, Violation{I: i, J: j, Got: got, Want: best, Kind: "too-high"})
			case got < best:
				rep.Violations = append(rep.Violations, Violation{I: i, J: j, Got: got, Want: best, Kind: "too-low"})
			}
		}
	}
	return rep
}

// Tree checks that tr is an *optimal* parenthesization for in: it must be
// structurally valid, span (0,N), and its exact cost must equal the
// table's root. The table is assumed verified (call Table first).
func Tree(in *recurrence.Instance, t *recurrence.Table, tr *btree.Tree) error {
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if tr.N != in.N {
		return fmt.Errorf("verify: tree has %d leaves, instance %d", tr.N, in.N)
	}
	got := recurrence.TreeCost(in, tr)
	want := t.Root()
	if cost.Norm(got) != cost.Norm(want) {
		return fmt.Errorf("verify: tree costs %d, optimum is %d", got, want)
	}
	return nil
}

// UpperBoundedBy checks that every entry of a is >= the corresponding
// entry of b (a is a pointwise upper bound) — the monotone-upper-bound
// invariant intermediate solver states must satisfy against the optimum.
func UpperBoundedBy(a, b *recurrence.Table) error {
	if a.N != b.N {
		return fmt.Errorf("verify: table sizes %d vs %d", a.N, b.N)
	}
	for i := 0; i <= a.N; i++ {
		for j := i + 1; j <= a.N; j++ {
			if cost.Norm(a.At(i, j)) < cost.Norm(b.At(i, j)) {
				return fmt.Errorf("verify: undershoot at (%d,%d): %d < %d", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
	return nil
}
