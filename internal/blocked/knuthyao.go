package blocked

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/recurrence"
)

// ErrNotConvex reports a Knuth–Yao solve of an instance that is not
// eligible for pruning: either it does not declare recurrence
// (*)'s convexity conditions (Instance.Convex) or the effective algebra
// is not min-plus — the only algebra the split-monotonicity theorem is
// stated for. The root layer wraps it in its ErrConvexityRequired
// sentinel.
var ErrNotConvex = errors.New("blocked: Knuth–Yao pruning requires a declared-convex min-plus instance")

// SolveKYCtx runs the Knuth–Yao pruned blocked engine: the same tile
// wavefront as SolveCtx, but every cell (i,j) scans only the candidate
// window
//
//	[ max(split(i,j-1), i+1) , split(i+1,j) ]
//
// that Knuth's split-monotonicity theorem bounds the optimal split
// into. Both neighbour splits are final before the cell closes (they
// lie on earlier block diagonals, on a lower row of the same tile, or
// earlier in the same row), so the pruned sweep needs no phase-A panel
// folds at all: each tile closes cell by cell with exact per-cell
// bounds, tiles of a diagonal in parallel. The windows telescope along
// every row and column, so total work is O(n^2) — identically
// seq.SolveKnuth's count — instead of O(n^3), while PR 7's smallest-k
// tie discipline keeps the value table AND the split matrix bitwise
// identical to the unpruned engine (and to the sequential reference):
// the smallest optimal split is always inside the window, and no
// candidate below it can tie.
//
// Splits are always recorded (they are the bounds), so the result is as
// if Options.RecordSplits were set. The instance must declare Convex
// and resolve to min-plus; anything else returns ErrNotConvex — the
// caller picked the pruned engine, and silently falling back to the
// O(n^3) path would misreport both work and intent.
func SolveKYCtx(ctx context.Context, in *recurrence.Instance, opt Options) (*Result, error) {
	if in == nil || in.N < 1 {
		panic(fmt.Sprintf("blocked: invalid instance %+v", in))
	}
	k, err := algebra.Resolve(opt.Semiring, in.Algebra)
	if err != nil {
		return nil, err
	}
	if !in.Convex {
		return nil, fmt.Errorf("%w (instance %q does not declare Convex)", ErrNotConvex, in.Name)
	}
	if k.Name() != algebra.NameMinPlus {
		return nil, fmt.Errorf("%w (instance %q resolves to algebra %q)", ErrNotConvex, in.Name, k.Name())
	}
	// Same concrete-type dispatch as SolveCtx: the shipped min-plus gets
	// its specialised cell body; a third-party kernel that names itself
	// min-plus (tests use a wrapped one to pin generic dispatch) runs
	// through the interface.
	if sr, ok := k.(algebra.MinPlus); ok {
		return runKY(ctx, sr, in, opt)
	}
	return runKY[algebra.Kernel](ctx, k, in, opt)
}

// SolveKY is SolveKYCtx without cancellation, panicking on ineligible
// instances — the test-side convenience mirroring Solve.
func SolveKY(in *recurrence.Instance, opt Options) *Result {
	res, err := SolveKYCtx(context.Background(), in, opt)
	if err != nil {
		panic(err)
	}
	return res
}

// runKY is the pruned block-wavefront driver. Compared to run it has no
// phase A: with O(1)-wide candidate windows there are no GEMM-shaped
// interior panels left to fold, and row-level clipped panel bounds would
// readmit O(n^2·B) work — per-cell exact bounds are both tighter and
// simpler. Tiles of a diagonal still close in parallel; within a tile,
// rows run bottom-up and j ascends, exactly the dependency order the
// bounds need.
func runKY[S algebra.Kernel](ctx context.Context, sr S, in *recurrence.Instance, opt Options) (*Result, error) {
	n := in.N
	pool, workers, procs := poolAndProcs(opt)
	b := EffectiveTileSize(n, opt.TileSize, procs)
	size := n + 1
	nb := (size + b - 1) / b

	tbl := recurrence.NewTable(n)
	data, stride := tbl.Data(), tbl.Stride()
	if zero := sr.Zero(); zero != cost.Inf {
		// Unreachable for the shipped min-plus (Zero == Inf ==
		// NewTable's fill); kept for kernels that rename Zero while
		// claiming min-plus semantics.
		for i := 0; i < n; i++ {
			row := i * stride
			for j := i + 1; j <= n; j++ {
				data[row+j] = zero
			}
		}
	}
	for i := 0; i < n; i++ {
		data[i*stride+i+1] = in.Init(i)
	}
	splits := make([]int32, len(data))
	for i := range splits {
		splits[i] = -1
	}

	f := algebra.SplitFunc(in.F)
	res := &Result{Table: tbl, TileSize: b, Splits: splits}
	res.Acct.ChargeUnit(int64(n)) // the leaf init step

	lo := func(B int) int { return B * b }
	hi := func(B int) int {
		v := (B + 1) * b
		if v > size {
			v = size
		}
		return v
	}

	// closeTileKY closes tile (I,J) cell by cell under the Knuth window
	// and returns its candidate count. The bound logic mirrors
	// seq.SolveKnuth line for line, with one representational shim: seq
	// seeds leaf splits with the sentinel i where the matrix here keeps
	// -1 — both clamp to the same effective window (lo -> i+1; hi < lo
	// -> j-1 = i+1 on span-2 cells), so the counted work is identical.
	closeTileKY := func(I, J int) int64 {
		i0, i1 := lo(I), hi(I)
		j0, j1 := lo(J), hi(J)
		var work int64
		for i := i1 - 1; i >= i0; i-- {
			js := j0
			if js < i+2 {
				js = i + 2 // skip the lower triangle and the leaf
			}
			for j := js; j < j1; j++ {
				klo := int(splits[i*stride+j-1])
				if klo < i+1 {
					klo = i + 1
				}
				khi := int(splits[(i+1)*stride+j])
				if khi < klo || khi > j-1 {
					khi = j - 1
				}
				sr.RelaxSplitCellRec(data, splits, stride, i, klo, khi+1, j, f)
				work += int64(khi - klo + 1)
			}
		}
		return work
	}

	st := &parutil.Stats{}
	defer func() { res.Stats = st.View() }()

	// One fenced dispatch per diagonal (nb barriers total). The pool
	// polls ctx before each claimed tile; the former per-diagonal
	// double-poll was redundant with that and with the dispatch's own
	// ctx.Err() return, and is gone.
	for d := 0; d < nb; d++ {
		tiles := nb - d
		dWork, err := pool.SumInt64StatsCtx(ctx, st, workers, tiles, 1, func(tlo, thi int) int64 {
			var cnt int64
			for t := tlo; t < thi; t++ {
				cnt += closeTileKY(t, t+d)
			}
			return cnt
		})
		if err != nil {
			return nil, err
		}
		if dWork > 0 {
			// The in-tile dependency chain is the same O(B) row/column
			// walk as the unpruned closure; the windows shrink work, not
			// depth.
			res.Acct.ChargeReduce(closedCells(d, b, nb, size), 2*int64(b), dWork)
		}
	}
	return res, nil
}

// poolAndProcs resolves the pool, per-phase worker count and the real
// parallelism the auto tile sizing should target — shared by run and
// runKY. An explicit Workers beyond GOMAXPROCS oversubscribes
// goroutines, it does not add processors.
func poolAndProcs(opt Options) (pool *parutil.Pool, workers, procs int) {
	pool = opt.Pool
	if pool == nil {
		pool = parutil.Default()
	}
	workers = opt.Workers
	procs = workers
	if procs <= 0 {
		procs = pool.Workers()
	}
	if g := runtime.GOMAXPROCS(0); procs > g {
		procs = g
	}
	return pool, workers, procs
}
