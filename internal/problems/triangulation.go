package problems

import (
	"fmt"
	"math"
	"math/rand"

	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// Point is a polygon vertex. Coordinates are integers so triangulation
// costs stay exact after scaling.
type Point struct {
	X, Y int64
}

// Triangulation returns the minimum-weight convex-polygon triangulation
// instance for the polygon with vertices v_0..v_n (len = n+1, listed in
// order). Node (i,j) is the sub-polygon v_i..v_j; splitting at k forms the
// triangle (v_i, v_k, v_j) whose weight is its perimeter, scaled by 1024
// and rounded to keep costs integral. Polygon edges (leaves) are free.
//
// Scaling note: all solvers receive identical integer weights, so the
// cross-validation between them is still exact; only the correspondence
// to true Euclidean perimeters is approximate, which is irrelevant to the
// algorithmic claims being reproduced.
func Triangulation(vs []Point) *recurrence.Instance {
	if len(vs) < 3 {
		panic(fmt.Sprintf("problems: triangulation needs >= 3 vertices, got %d", len(vs)))
	}
	n := len(vs) - 1
	dist := func(a, b Point) cost.Cost {
		dx := float64(a.X - b.X)
		dy := float64(a.Y - b.Y)
		return cost.Cost(math.Round(1024 * math.Hypot(dx, dy)))
	}
	// Snapshot the vertices: F and Canon must observe the same geometry
	// even if the caller mutates its slice after construction, or the
	// cache key would desynchronise from behaviour.
	cvs := append([]Point(nil), vs...)
	xs := make([]int64, len(cvs))
	ys := make([]int64, len(cvs))
	for t, v := range cvs {
		xs[t], ys[t] = v.X, v.Y
	}
	return &recurrence.Instance{
		N:     n,
		Name:  fmt.Sprintf("triangulation-n%d", n),
		Canon: func() []byte { return canon("triangulation", xs, ys) },
		Init:  func(i int) cost.Cost { return 0 },
		F: func(i, k, j int) cost.Cost {
			return cost.Add3(dist(cvs[i], cvs[k]), dist(cvs[k], cvs[j]), dist(cvs[i], cvs[j]))
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			dik := dist(cvs[i], cvs[k])
			for t := range dst {
				j := j0 + t
				dst[t] = cost.Add3(dik, dist(cvs[k], cvs[j]), dist(cvs[i], cvs[j]))
			}
		},
	}
}

// WeightedTriangulation returns the vertex-weight-product variant used in
// many textbooks: the triangle (i,k,j) costs w_i*w_k*w_j. With weights
// equal to matrix dimensions this is isomorphic to matrix-chain ordering,
// which tests exploit as a cross-problem consistency check.
func WeightedTriangulation(weights []int64) *recurrence.Instance {
	if len(weights) < 3 {
		panic(fmt.Sprintf("problems: weighted triangulation needs >= 3 weights, got %d", len(weights)))
	}
	for _, w := range weights {
		if w <= 0 {
			panic("problems: vertex weights must be positive")
		}
	}
	n := len(weights) - 1
	ws := append([]int64(nil), weights...)
	return &recurrence.Instance{
		N:     n,
		Name:  fmt.Sprintf("wtriangulation-n%d", n),
		Canon: func() []byte { return canon("wtriangulation", ws) },
		Init:  func(i int) cost.Cost { return 0 },
		F: func(i, k, j int) cost.Cost {
			return cost.Cost(ws[i] * ws[k] * ws[j])
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			wik := ws[i] * ws[k]
			row := ws[j0 : j0+len(dst)]
			for t := range dst {
				dst[t] = cost.Cost(wik * row[t])
			}
		},
	}
}

// RegularPolygon returns n+1 vertices of a regular polygon with the given
// integer radius, centred at the origin. With all sides symmetric, many
// triangulations tie; useful for exercising tie-breaking determinism.
func RegularPolygon(n int, radius int64) []Point {
	if n < 2 {
		panic("problems: RegularPolygon needs n >= 2")
	}
	vs := make([]Point, n+1)
	for t := 0; t <= n; t++ {
		ang := 2 * math.Pi * float64(t) / float64(n+1)
		vs[t] = Point{
			X: int64(math.Round(float64(radius) * math.Cos(ang))),
			Y: int64(math.Round(float64(radius) * math.Sin(ang))),
		}
	}
	return vs
}

// RandomConvexPolygon returns n+1 vertices of a random convex polygon:
// points on a circle of the given radius at sorted random angles.
func RandomConvexPolygon(n int, radius int64, seed int64) []Point {
	if n < 2 {
		panic("problems: RandomConvexPolygon needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	angles := make([]float64, n+1)
	for i := range angles {
		angles[i] = rng.Float64() * 2 * math.Pi
	}
	// Insertion sort keeps the dependency footprint to the stdlib only.
	for i := 1; i < len(angles); i++ {
		for k := i; k > 0 && angles[k] < angles[k-1]; k-- {
			angles[k], angles[k-1] = angles[k-1], angles[k]
		}
	}
	vs := make([]Point, n+1)
	for t := range vs {
		vs[t] = Point{
			X: int64(math.Round(float64(radius) * math.Cos(angles[t]))),
			Y: int64(math.Round(float64(radius) * math.Sin(angles[t]))),
		}
	}
	return vs
}
