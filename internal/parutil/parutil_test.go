package parutil

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 100, 1023} {
			hits := make([]atomic.Int32, n)
			For(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	for _, grain := range []int{0, 1, 3, 64, 1000} {
		n := 257
		hits := make([]atomic.Int32, n)
		ForChunked(4, n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("grain=%d: index %d executed %d times", grain, i, got)
			}
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -5, func(int) { called = true })
	if called {
		t.Fatal("body invoked for empty range")
	}
}

func TestSumInt64(t *testing.T) {
	// Sum of 0..n-1 for various worker counts.
	for _, workers := range []int{0, 1, 2, 5} {
		n := 10000
		got := SumInt64(workers, n, 0, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		})
		want := int64(n) * int64(n-1) / 2
		if got != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, want)
		}
	}
}

func TestSumInt64Empty(t *testing.T) {
	if got := SumInt64(3, 0, 0, func(lo, hi int) int64 { return 99 }); got != 0 {
		t.Fatalf("empty sum = %d", got)
	}
}

// Property: SumInt64 is independent of worker count and grain.
func TestSumDeterministic(t *testing.T) {
	f := func(nn uint16, w uint8, g uint8) bool {
		n := int(nn) % 3000
		workers := int(w)%7 + 1
		grain := int(g) % 50
		got := SumInt64(workers, n, grain, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i * i % 97)
			}
			return s
		})
		var want int64
		for i := 0; i < n; i++ {
			want += int64(i * i % 97)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParallelWritesAreDisjoint(t *testing.T) {
	// Hammer: many workers writing disjoint slices must not race.
	n := 1 << 16
	buf := make([]int64, n)
	For(8, n, func(i int) { buf[i] = int64(i) })
	for i, v := range buf {
		if v != int64(i) {
			t.Fatalf("buf[%d] = %d", i, v)
		}
	}
}
