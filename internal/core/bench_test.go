package core

import (
	"context"
	"fmt"
	"testing"

	"sublineardp/internal/algebra"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
)

// Per-operation micro-benchmarks: a-activate, a-square and a-pebble for
// both storage variants. a-square is the bottleneck the paper's Section 5
// attacks, and the dense/banded gap here is its payoff.

func benchInstance(n int) *recurrence.Instance {
	return problems.RandomMatrixChain(n, 50, 1).Materialize()
}

func BenchmarkOpDenseActivate(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := newDenseState(algebra.MinPlus{}, benchInstance(n), testRT(0), true, nil, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.activate(context.Background())
			}
		})
	}
}

func BenchmarkOpDenseSquare(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := newDenseState(algebra.MinPlus{}, benchInstance(n), testRT(0), true, nil, false)
			s.activate(context.Background())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.square(context.Background())
			}
		})
	}
}

func BenchmarkOpDensePebble(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := newDenseState(algebra.MinPlus{}, benchInstance(n), testRT(0), true, nil, false)
			s.activate(context.Background())
			s.square(context.Background())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.pebble(context.Background(), 2, n)
			}
		})
	}
}

func BenchmarkOpBandedActivate(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := newBandedState(algebra.MinPlus{}, benchInstance(n), testRT(0), true, nil, 0, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.activate(context.Background())
			}
		})
	}
}

func BenchmarkOpBandedSquare(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := newBandedState(algebra.MinPlus{}, benchInstance(n), testRT(0), true, nil, 0, false)
			s.activate(context.Background())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.square(context.Background())
			}
		})
	}
}

func BenchmarkOpBandedPebble(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := newBandedState(algebra.MinPlus{}, benchInstance(n), testRT(0), true, nil, 0, false)
			s.activate(context.Background())
			s.square(context.Background())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.pebble(context.Background(), 2, n)
			}
		})
	}
}

// The end-to-end solve at several sizes, reported with allocations: the
// steady-state iteration loop must not allocate.
func BenchmarkSolveBandedEndToEnd(b *testing.B) {
	for _, n := range []int{32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := benchInstance(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Solve(in, Options{Variant: Banded})
			}
		})
	}
}
