package problems

import (
	"strings"
	"testing"
)

// Edge-path coverage for the generator guards not exercised elsewhere.

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestGeneratorGuards(t *testing.T) {
	mustPanic(t, "RandomMatrixChain n=0", func() { RandomMatrixChain(0, 5, 1) })
	mustPanic(t, "RandomMatrixChain maxDim=0", func() { RandomMatrixChain(5, 0, 1) })
	mustPanic(t, "RandomOBST m=0", func() { RandomOBST(0, 5, 1) })
	mustPanic(t, "RandomOBST maxW<0", func() { RandomOBST(5, -1, 1) })
	mustPanic(t, "Triangulation 2 pts", func() { Triangulation([]Point{{0, 0}, {1, 1}}) })
	mustPanic(t, "WeightedTriangulation 2 wts", func() { WeightedTriangulation([]int64{1, 2}) })
	mustPanic(t, "WeightedTriangulation nonpositive", func() { WeightedTriangulation([]int64{1, 0, 2}) })
	mustPanic(t, "RegularPolygon n=1", func() { RegularPolygon(1, 10) })
	mustPanic(t, "RandomConvexPolygon n=1", func() { RandomConvexPolygon(1, 10, 1) })
	mustPanic(t, "ShapedWithWeights negative", func() {
		ShapedWithWeights(nil, -1, 0)
	})
	mustPanic(t, "RandomInstance n=0", func() { RandomInstance(0, 5, 1) })
	mustPanic(t, "RandomInstance maxW<0", func() { RandomInstance(5, -1, 1) })
}

func TestNamedConstructors(t *testing.T) {
	if in := KnuthExampleOBST(); in.Name != "obst-knuth-example" || in.Validate() != nil {
		t.Errorf("KnuthExampleOBST malformed: %v", in.Name)
	}
	for _, in := range []interface {
		Validate() error
	}{
		Zigzag(7), Balanced(7), Skewed(7), RandomShaped(7, 1),
	} {
		if err := in.Validate(); err != nil {
			t.Error(err)
		}
	}
	if !strings.HasPrefix(Zigzag(7).Name, "zigzag") {
		t.Error("zigzag name lost")
	}
	if !strings.HasPrefix(Skewed(7).Name, "skewed") {
		t.Error("skewed name lost")
	}
	if !strings.HasPrefix(Balanced(7).Name, "balanced") {
		t.Error("balanced name lost")
	}
}

func TestShapePenaltyHeadroom(t *testing.T) {
	// The forcing argument needs (2n-1)*max(node,leaf) < ShapePenalty for
	// the sizes the repository runs (n <= 4096 in any test or bench).
	const maxN = 4096
	const maxWeight = 1 << 10
	if int64(2*maxN-1)*maxWeight >= int64(ShapePenalty) {
		t.Fatal("ShapePenalty too small for the documented range")
	}
}
