// Package serve is the HTTP serving layer over the Solver API — the
// front end cmd/dpserved mounts. One Server owns three cooperating
// mechanisms, each sized by a Config knob whose mapping onto the paper's
// processor-count model is documented in DESIGN.md:
//
//   - admission control: a bounded in-flight budget (QueueDepth). A
//     request either takes a slot immediately or is shed with 503, so
//     overload degrades by rejecting early instead of queueing without
//     bound; admitted requests run under a server deadline
//     (RequestTimeout) joined with the client's own disconnect.
//   - a canonical-instance cache with single-flight dedup: requests are
//     content-addressed by the instance's canonical encoding plus the
//     solving options, so a resident solution answers without touching
//     the pool and identical in-flight requests fold into one solve.
//   - a coalescing batcher: cache-missing flights are folded, within a
//     BatchWindow, into SolveBatch calls on one shared pool — arrival
//     concurrency becomes batch-level parallelism instead of goroutine
//     oversubscription.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sublineardp"
	"sublineardp/internal/cache"
	"sublineardp/internal/wire"
)

// Config sizes the serving layer. The zero value serves with the
// defaults noted per field.
type Config struct {
	// Engine is the registry engine used when a request names none
	// (default "auto").
	Engine string
	// MaxN rejects instances larger than this with 400 (default 4096;
	// negative = unbounded). It bounds per-request memory for the
	// engines the server routes to by default: a banded solve's working
	// set grows as O(n^2.5).
	MaxN int
	// MaxNHeavy is the stricter size bound for the O(n^4)-memory
	// engines a request may name explicitly — hlv-dense, rytter,
	// semiring (default 64; negative = unbounded). Without it one
	// request for hlv-dense at n=256 would try to allocate ~70 GB.
	MaxNHeavy int
	// MaxWorkers caps the per-request workers option (default 256;
	// negative = unbounded). Workers beyond the pool width spawn
	// transient goroutines, so an unbounded client value is a
	// goroutine-exhaustion vector.
	MaxWorkers int
	// QueueDepth is the admission budget: how many requests may be past
	// admission at once (default 256). The full queue sheds with 503.
	QueueDepth int
	// BatchWindow is how long the batcher holds an open batch for
	// stragglers before dispatching it (default 2ms).
	BatchWindow time.Duration
	// MaxBatch caps instances per SolveBatch dispatch (default 32).
	MaxBatch int
	// Concurrency bounds how many instances one SolveBatch dispatch
	// solves at once (default GOMAXPROCS, see SolveBatch).
	Concurrency int
	// CacheCapacity is the solution LRU size in entries (default 4096;
	// negative disables caching and single-flight entirely).
	CacheCapacity int
	// RequestTimeout is the server-side deadline per admitted request
	// (default 30s; negative = none).
	RequestTimeout time.Duration
	// Pool is the worker pool every batch dispatches onto (nil = the
	// process-wide shared pool).
	Pool *sublineardp.Pool
	// Calibration, when non-nil, is the machine-local profile written by
	// `dpbench -calibrate`: its measured auto-routing cutoffs and tile
	// size apply to every solve, with knobs a request sets explicitly
	// still winning (see sublineardp.WithCalibration).
	Calibration *sublineardp.Calibration
}

func (c Config) withDefaults() Config {
	if c.Engine == "" {
		c.Engine = sublineardp.EngineAuto
	}
	if c.MaxN == 0 {
		c.MaxN = 4096
	}
	if c.MaxNHeavy == 0 {
		c.MaxNHeavy = 64
	}
	if c.MaxWorkers == 0 {
		c.MaxWorkers = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Server is the serving layer. Build with New, mount Handler, Close when
// done.
type Server struct {
	cfg Config
	met *metrics

	lru   *cache.Sharded[*sublineardp.Solution] // nil when caching disabled
	group cache.Group[*sublineardp.Solution]

	// Chain requests (wire.IsChainKind) cache and single-flight in their
	// own store, mirroring the class split in sublineardp.Cache: the two
	// recurrence classes can never collide on an entry.
	clru   *cache.Sharded[*sublineardp.ChainSolution] // nil when caching disabled
	cgroup cache.Group[*sublineardp.ChainSolution]

	slots   chan struct{} // admission tokens; buffered to QueueDepth
	batchCh chan *task

	done    chan struct{}
	closing atomic.Bool
	wg      sync.WaitGroup
}

type task struct {
	in     *sublineardp.Instance // interval instance; nil for chain tasks
	chain  *sublineardp.Chain    // chain instance; nil for interval tasks
	engine string
	opts   []sublineardp.Option
	sig    string // options signature: tasks with equal sig share a SolveBatch
	ctx    context.Context
	res    chan taskResult
}

type taskResult struct {
	sol  *sublineardp.Solution
	csol *sublineardp.ChainSolution
	err  error
}

// New validates the configuration and starts the batcher.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if _, ok := sublineardp.LookupEngine(cfg.Engine); !ok {
		return nil, fmt.Errorf("serve: unknown default engine %q (registered: %v)",
			cfg.Engine, sublineardp.Engines())
	}
	s := &Server{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.QueueDepth),
		batchCh: make(chan *task),
		done:    make(chan struct{}),
	}
	if cfg.CacheCapacity > 0 {
		s.lru = cache.New[*sublineardp.Solution](cfg.CacheCapacity, 16)
		s.clru = cache.New[*sublineardp.ChainSolution](cfg.CacheCapacity, 16)
	}
	entries := func() int { return 0 }
	if s.lru != nil {
		entries = func() int { return s.lru.Len() + s.clru.Len() }
	}
	s.met = newMetrics(entries)
	s.wg.Add(1)
	go s.batcher()
	return s, nil
}

// Close stops accepting new work and waits for the batcher to drain.
func (s *Server) Close() {
	if s.closing.CompareAndSwap(false, true) {
		close(s.done)
	}
	s.wg.Wait()
}

// Metrics returns the counter surface (for tests and embedding).
func (s *Server) Metrics() MetricsSnapshot { return s.snapshot() }

// MetricsSnapshot is a point-in-time copy of the serving counters.
type MetricsSnapshot struct {
	Requests, OK                          int64
	ClientGone, RejectedFull, BadRequests int64
	Timeouts, SolveErrors                 int64
	CacheHits, Coalesced, Solved          int64
	Batches, BatchInstances               int64
	QueueDepth                            int64
}

func (s *Server) snapshot() MetricsSnapshot {
	m := s.met
	return MetricsSnapshot{
		Requests: m.requests.Load(), OK: m.ok.Load(),
		ClientGone: m.clientGone.Load(), RejectedFull: m.rejectedFull.Load(),
		BadRequests: m.badRequests.Load(), Timeouts: m.timeouts.Load(),
		SolveErrors: m.solveErrors.Load(), CacheHits: m.cacheHits.Load(),
		Coalesced: m.coalesced.Load(), Solved: m.solved.Load(),
		Batches: m.batches.Load(), BatchInstances: m.batchSolves.Load(),
		QueueDepth: m.queueDepth.Load(),
	}
}

// Handler returns the HTTP surface: POST /solve, GET /healthz,
// GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.met.write(w)
	})
	return mux
}

const maxBodyBytes = 8 << 20

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.requests.Add(1)

	var req wire.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return
	}
	if err := req.Validate(s.cfg.MaxN); err != nil {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	isChain := wire.IsChainKind(req.Kind)
	engine := req.Engine()
	if isChain {
		// Chain kinds route through the chain engine registry; the
		// configured interval default does not apply to them.
		if engine == "" {
			engine = sublineardp.ChainEngineAuto
		}
		if _, ok := sublineardp.LookupChainEngine(engine); !ok {
			s.met.badRequests.Add(1)
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown chain engine %q (registered: %v)", engine, sublineardp.ChainEngines()))
			return
		}
	} else {
		if engine == "" {
			engine = s.cfg.Engine
		}
		if _, ok := sublineardp.LookupEngine(engine); !ok {
			s.met.badRequests.Add(1)
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown engine %q (registered: %v)", engine, sublineardp.Engines()))
			return
		}
	}
	// Engine-aware resource policy: the O(n^4)-memory engines get a
	// stricter size bound, and the workers option is capped — both are
	// single-request denial-of-service vectors otherwise. Chain engines
	// are O(n) memory, so MaxNHeavy never applies to them.
	if !isChain && heavyMemoryEngines[engine] && s.cfg.MaxNHeavy > 0 && req.N() > s.cfg.MaxNHeavy {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("engine %q is O(n^4) memory: instance size n=%d exceeds the server limit n=%d for it",
				engine, req.N(), s.cfg.MaxNHeavy))
		return
	}
	if s.cfg.MaxWorkers > 0 && req.Options.Workers > s.cfg.MaxWorkers {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("workers=%d exceeds the server limit %d", req.Options.Workers, s.cfg.MaxWorkers))
		return
	}
	opts, err := req.SolverOptions()
	if err != nil {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.cfg.Calibration != nil {
		// Fill-if-unset semantics: the machine profile supplies routing
		// cutoffs and tile size only where the request did not.
		opts = append(opts, sublineardp.WithCalibration(s.cfg.Calibration))
	}
	var in *sublineardp.Instance
	var chain *sublineardp.Chain
	if isChain {
		chain, err = req.ChainInstance()
	} else {
		in, err = req.Instance()
	}
	if err != nil {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Admission: take an in-flight slot or shed immediately.
	select {
	case s.slots <- struct{}{}:
		s.met.queueDepth.Add(1)
		defer func() {
			<-s.slots
			s.met.queueDepth.Add(-1)
		}()
	default:
		s.met.rejectedFull.Add(1)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("admission queue full (%d in flight)", s.cfg.QueueDepth))
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	var resp *wire.Response
	var route via
	if isChain {
		var csol *sublineardp.ChainSolution
		csol, route, err = s.solveChain(ctx, chain, engine, &req, opts)
		if err == nil {
			resp = wire.NewChainResponse(&req, csol)
		}
	} else {
		var sol *sublineardp.Solution
		sol, route, err = s.solve(ctx, in, engine, &req, opts)
		if err == nil {
			resp = wire.NewResponse(&req, sol)
		}
	}
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// The client is gone; nothing useful can be written.
			s.met.clientGone.Add(1)
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, context.Canceled):
			s.met.clientGone.Add(1)
		default:
			s.met.solveErrors.Add(1)
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	resp.Cached = route == viaCacheHit
	resp.Coalesced = route == viaCoalesced
	resp.ElapsedMicros = time.Since(start).Microseconds()
	// Marshal before counting: a request must resolve as exactly one of
	// ok / clientGone / shed / rejected / timeout / solveError for the
	// /metrics identity to balance, so the ok and hit/coalesced/solved
	// counters only move once the response bytes are actually written.
	blob, err := json.Marshal(resp)
	if err != nil {
		s.met.solveErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(blob, '\n')); err != nil {
		s.met.clientGone.Add(1)
		return
	}
	s.met.ok.Add(1)
	s.met.observeLatency(time.Since(start).Seconds())
	switch route {
	case viaCacheHit:
		s.met.cacheHits.Add(1)
	case viaCoalesced:
		s.met.coalesced.Add(1)
	default:
		s.met.solved.Add(1)
	}
}

type via int

const (
	viaSolved via = iota
	viaCacheHit
	viaCoalesced
)

// heavyMemoryEngines names the built-ins whose working set grows as
// O(n^4) — the ones Config.MaxNHeavy bounds. The auto engine never
// routes to any of them. The blocked engine is deliberately exempt:
// its O(n^2) table is the same memory class MaxN already bounds, so
// explicit "blocked" requests serve the full n <= MaxN range — that is
// the engine large instances are meant to name
// (TestResourcePolicyRejections pins the exemption).
var heavyMemoryEngines = map[string]bool{
	sublineardp.EngineHLVDense: true,
	sublineardp.EngineRytter:   true,
	sublineardp.EngineSemiring: true,
}

// solveKey content-addresses one request: the instance's canonical bytes
// plus the option signature. Every wire-buildable instance is
// canonicalisable, so the bool is only false for exotic custom kinds.
func solveKey(in *sublineardp.Instance, sig string) (cache.Key, bool) {
	canon, ok := in.Canonical()
	if !ok {
		return cache.Key{}, false
	}
	return cache.NewHasher().Bytes("instance", canon).String("opts", sig).Sum(), true
}

// optionsSig renders the solving configuration of a request into the
// string that both content-addresses it (with the instance) and groups
// batcher tasks: tasks with equal signatures are safe to fold into one
// SolveBatch call. splits mirrors the root solveKey's RecordSplits
// keying: a split-recording solve carries reconstruction state a
// non-recording one does not, so the two never share a cache entry
// (chain requests always pass false — reconstruction there reads the
// value vector and does not change the solve).
func optionsSig(engine string, o wire.Options, splits bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%s|%d|%d|%v|%d|%d|%d|%d|%v",
		engine, o.Mode, o.Termination, o.Semiring, o.MaxIterations,
		o.BandRadius, o.Window, o.TileSize, o.Workers, o.AutoCutoff, o.AutoLargeCutoff,
		splits)
	return b.String()
}

// solve runs the cache → single-flight → batcher protocol for one
// admitted request.
func (s *Server) solve(ctx context.Context, in *sublineardp.Instance, engine string, req *wire.Request, opts []sublineardp.Option) (*sublineardp.Solution, via, error) {
	sig := optionsSig(engine, req.Options, req.ReturnSplits)
	key, keyed := solveKey(in, sig)
	if s.lru == nil || !keyed {
		sol, err := s.submit(ctx, &task{in: in, engine: engine, opts: opts, sig: sig, ctx: ctx})
		return sol, viaSolved, err
	}
	if sol, ok := s.lru.Get(key); ok {
		cp := *sol
		return &cp, viaCacheHit, nil
	}
	sol, joined, err := s.group.Do(ctx, key, func(fctx context.Context) (*sublineardp.Solution, error) {
		sol, err := s.submit(fctx, &task{in: in, engine: engine, opts: opts, sig: sig, ctx: fctx})
		if err != nil {
			return nil, err
		}
		s.lru.Add(key, sol)
		return sol, nil
	})
	if err != nil {
		return nil, viaSolved, err
	}
	// Same aliasing discipline as the root sublineardp.Cache: the
	// pointer resident in the LRU is never handed out — every caller
	// (leader included) gets a private shallow copy, so nothing
	// downstream can mutate a cached entry.
	cp := *sol
	if joined {
		return &cp, viaCoalesced, nil
	}
	return &cp, viaSolved, nil
}

// chainSolveKey is solveKey for chain requests. The "chain|" signature
// prefix (set by the caller) plus the chain's own canonical domain tags
// keep chain entries disjoint from interval ones.
func chainSolveKey(c *sublineardp.Chain, sig string) (cache.Key, bool) {
	canon, ok := c.Canonical()
	if !ok {
		return cache.Key{}, false
	}
	return cache.NewHasher().Bytes("chain", canon).String("opts", sig).Sum(), true
}

// solveChain runs the cache → single-flight → batcher protocol for one
// admitted chain request, against the chain store.
func (s *Server) solveChain(ctx context.Context, c *sublineardp.Chain, engine string, req *wire.Request, opts []sublineardp.Option) (*sublineardp.ChainSolution, via, error) {
	// The signature prefix keeps chain tasks out of interval SolveBatch
	// groups: runGroup dispatches a group by its head task's class.
	sig := "chain|" + optionsSig(engine, req.Options, false)
	key, keyed := chainSolveKey(c, sig)
	if s.clru == nil || !keyed {
		csol, err := s.submitChain(ctx, &task{chain: c, engine: engine, opts: opts, sig: sig, ctx: ctx})
		return csol, viaSolved, err
	}
	if csol, ok := s.clru.Get(key); ok {
		cp := *csol
		return &cp, viaCacheHit, nil
	}
	csol, joined, err := s.cgroup.Do(ctx, key, func(fctx context.Context) (*sublineardp.ChainSolution, error) {
		csol, err := s.submitChain(fctx, &task{chain: c, engine: engine, opts: opts, sig: sig, ctx: fctx})
		if err != nil {
			return nil, err
		}
		s.clru.Add(key, csol)
		return csol, nil
	})
	if err != nil {
		return nil, viaSolved, err
	}
	cp := *csol
	if joined {
		return &cp, viaCoalesced, nil
	}
	return &cp, viaSolved, nil
}

// submitChain is submit for chain tasks.
func (s *Server) submitChain(ctx context.Context, t *task) (*sublineardp.ChainSolution, error) {
	t.res = make(chan taskResult, 1)
	select {
	case s.batchCh <- t:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		return nil, errors.New("server shutting down")
	}
	select {
	case r := <-t.res:
		return r.csol, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// submit hands a task to the batcher and waits for its result.
func (s *Server) submit(ctx context.Context, t *task) (*sublineardp.Solution, error) {
	t.res = make(chan taskResult, 1)
	select {
	case s.batchCh <- t:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		return nil, errors.New("server shutting down")
	}
	select {
	case r := <-t.res:
		return r.sol, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// batcher collects tasks into windows: the first task opens a batch,
// stragglers join until the window elapses or the batch is full, then
// the batch dispatches asynchronously so the next window can fill while
// this one solves.
func (s *Server) batcher() {
	defer s.wg.Done()
	for {
		var first *task
		select {
		case first = <-s.batchCh:
		case <-s.done:
			return
		}
		batch := []*task{first}
		timer := time.NewTimer(s.cfg.BatchWindow)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-s.batchCh:
				batch = append(batch, t)
			case <-timer.C:
				break collect
			case <-s.done:
				break collect
			}
		}
		timer.Stop()
		s.wg.Add(1)
		go func(batch []*task) {
			defer s.wg.Done()
			s.runBatch(batch)
		}(batch)
	}
}

// runBatch partitions a window by options signature and dispatches one
// SolveBatch per group on the shared pool. The batch context is
// refcounted over the member tasks' contexts: it cancels only when every
// member has been abandoned, which is how a client disconnect propagates
// down to tile-level kernel abort without killing co-batched strangers.
func (s *Server) runBatch(batch []*task) {
	groups := make(map[string][]*task)
	for _, t := range batch {
		groups[t.sig] = append(groups[t.sig], t)
	}
	// Dispatch groups concurrently: signatures are independent solves,
	// and serialising them would head-of-line block a window's small
	// requests behind an unrelated large batch.
	var gwg sync.WaitGroup
	for _, group := range groups {
		gwg.Add(1)
		go func(group []*task) {
			defer gwg.Done()
			s.runGroup(group)
		}(group)
	}
	gwg.Wait()
}

// runGroup dispatches one options-signature group as a SolveBatch (or,
// for chain groups, SolveChainBatch) call. The "chain|" signature prefix
// guarantees a group is homogeneous — its head task's class is the whole
// group's class.
func (s *Server) runGroup(group []*task) {
	bctx, cancel := context.WithCancel(context.Background())
	remaining := int64(len(group))
	var pending atomic.Int64
	pending.Store(remaining)
	for _, t := range group {
		go func(done <-chan struct{}) {
			<-done
			if pending.Add(-1) == 0 {
				cancel()
			}
		}(t.ctx.Done())
	}

	lead := group[0]
	opts := append(append([]sublineardp.Option(nil), lead.opts...),
		sublineardp.WithEngine(lead.engine),
		sublineardp.WithPool(s.cfg.Pool),
		sublineardp.WithConcurrency(s.cfg.Concurrency),
	)
	s.met.batches.Add(1)
	s.met.batchSolves.Add(int64(len(group)))

	fail := func(t *task, err error) error {
		terr := t.ctx.Err()
		if terr == nil {
			terr = bctx.Err()
		}
		if terr == nil {
			if err != nil {
				terr = err
			} else {
				terr = errors.New("solve produced no solution")
			}
		}
		return terr
	}

	if lead.chain != nil {
		chains := make([]*sublineardp.Chain, len(group))
		for i, t := range group {
			chains[i] = t.chain
		}
		csols, err := sublineardp.SolveChainBatch(bctx, chains, opts...)
		if csols == nil {
			csols = make([]*sublineardp.ChainSolution, len(group))
		}
		for i, t := range group {
			if csols[i] != nil {
				t.res <- taskResult{csol: csols[i]}
				continue
			}
			t.res <- taskResult{err: fail(t, err)}
		}
		cancel()
		return
	}

	instances := make([]*sublineardp.Instance, len(group))
	for i, t := range group {
		instances[i] = t.in
	}
	sols, err := sublineardp.SolveBatch(bctx, instances, opts...)
	if sols == nil {
		sols = make([]*sublineardp.Solution, len(group))
	}
	for i, t := range group {
		if sols[i] != nil {
			t.res <- taskResult{sol: sols[i]}
			continue
		}
		t.res <- taskResult{err: fail(t, err)}
	}
	cancel() // the watcher normally fires it; this makes vet-visible cleanup unconditional
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(wire.ErrorBody{Error: err.Error(), Code: code})
}
