// Command dploadgen replays workload mixes against a live dpserved
// instance and reports latency/throughput percentiles — the measurement
// rail for the serving layer, the way cmd/dpbench is for the engines.
//
//	dpserved -addr :8080 &
//	dploadgen -addr http://localhost:8080 -duration 10s -concurrency 16 \
//	        -mix mlp:4,dictionary:4,polygon:2 -distinct 32 -out LOAD_summary.json
//
// The mix names the internal/workload families (mlp matrix chains,
// Zipf-weighted dictionary OBSTs, sensor polygons, max-plus worstchain
// bounds, bool-plan feasibility queries, plus the chain-kind families:
// segls telemetry series, wis job schedules, subsetsum coin-feasibility
// queries) with integer weights; the mlptree and seglspath variants are
// the same instances asking for a reconstruction (return_splits), so
// the mix can exercise the tree/path section of the response;
// -distinct bounds how many distinct instances each family contributes,
// which directly sets the cache-hit share of the run. The JSON summary
// (-out) is uploaded as a CI artifact next to BENCH_core.json.
//
// The mlplarge family is the blocked-pipe tier's load: matrix chains of
// at least n = 1024 regardless of -n, meant to run at low -distinct so
// the server's batcher sees repeats of a few heavy instances and its
// overlapped SolveBatch groups stay hot:
//
//	dploadgen -mix mlplarge:1 -distinct 2 -duration 30s -concurrency 4
//
// Large-instance runs shed and time out by design when the server is
// saturated, so 503 (admission shed) and 504 (deadline) responses are
// counted separately from hard errors and do not fail the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sublineardp/internal/problems"
	"sublineardp/internal/wire"
	"sublineardp/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "dpserved base URL")
		duration = flag.Duration("duration", 10*time.Second, "how long to fire")
		conc     = flag.Int("concurrency", 8, "concurrent client connections")
		mix      = flag.String("mix", "mlp:4,dictionary:4,polygon:2,worstchain:1,boolplan:1,mlptree:1", "family:weight list (mlp | mlptree | mlplarge | dictionary | polygon | worstchain | boolplan | segls | seglspath | wis | subsetsum)")
		distinct = flag.Int("distinct", 32, "distinct instances per family (lower = more cache hits)")
		size     = flag.Int("n", 48, "base instance size per request")
		seed     = flag.Int64("seed", 1, "workload seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		out      = flag.String("out", "", "also write the summary as JSON to this path")
	)
	flag.Parse()

	reqs, err := buildMix(*mix, *distinct, *size, *seed)
	if err != nil {
		fatal(err)
	}
	if err := waitHealthy(*addr, 10*time.Second); err != nil {
		fatal(err)
	}
	sum := run(*addr, reqs, *duration, *conc, *timeout)
	sum.print(os.Stdout)
	if *out != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("summary written to %s\n", *out)
	}
	if sum.Errors > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dploadgen: %v\n", err)
	os.Exit(2)
}

// buildMix expands a family:weight spec into a weighted pool of
// pre-marshalled requests, `distinct` distinct instances per family.
func buildMix(spec string, distinct, n int, seed int64) ([][]byte, error) {
	if distinct < 1 || n < 4 {
		return nil, fmt.Errorf("need -distinct >= 1 and -n >= 4")
	}
	rng := rand.New(rand.NewSource(seed))
	var pool [][]byte
	for _, part := range strings.Split(spec, ",") {
		name, weightStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want family:weight)", part)
		}
		weight, err := strconv.Atoi(weightStr)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("bad mix weight %q", weightStr)
		}
		for d := 0; d < distinct; d++ {
			req, err := buildRequest(name, n, seed+int64(d), rng)
			if err != nil {
				return nil, err
			}
			req.ID = fmt.Sprintf("%s-%d", name, d)
			body, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			for w := 0; w < weight; w++ {
				pool = append(pool, body)
			}
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool, nil
}

// buildRequest renders one workload-family instance as its wire request,
// mirroring the internal/workload generators parameter-for-parameter.
func buildRequest(family string, n int, seed int64, rng *rand.Rand) (*wire.Request, error) {
	switch family {
	case "mlptree":
		// The mlp family asking for the optimal parenthesization back —
		// return_splits routes the solve through recorded splits and adds
		// the reconstruction section (tree + digest) to every response,
		// so the load includes serialising an n-leaf tree per miss.
		req, err := buildRequest("mlp", n, seed, rng)
		if err != nil {
			return nil, err
		}
		req.ReturnSplits = true
		return req, nil
	case "seglspath":
		// Chain-kind counterpart: segmented least squares with the optimal
		// breakpoint list in the response.
		req, err := buildRequest("segls", n, seed, rng)
		if err != nil {
			return nil, err
		}
		req.ReturnSplits = true
		return req, nil
	case "mlplarge":
		// The blocked-pipe tier's family: the mlp chain shape at n >= 1024
		// no matter what -n says. Run it at low -distinct — a handful of
		// heavy instances repeating is what fills the server's overlapped
		// SolveBatch groups (and, warm, its cache) rather than a long tail
		// of cold O(n^3) solves.
		big := n
		if big < 1024 {
			big = 1024
		}
		return buildRequest("mlp", big, seed, rng)
	case "mlp":
		// workload.MLPChain shape: 1 x in, hidden widths, out.
		layers := 2 + rng.Intn(4)
		dims := make([]int, 0, layers+2)
		dims = append(dims, 1, 8+rng.Intn(n))
		for l := 1; l < layers; l++ {
			dims = append(dims, 8+rng.Intn(n))
		}
		dims = append(dims, 1+rng.Intn(16))
		for len(dims) < n+1 {
			dims = append(dims, 8+rng.Intn(n))
		}
		return &wire.Request{Kind: wire.KindMatrixChain, Dims: dims[:n+1]}, nil
	case "dictionary":
		m := n - 1
		beta := workload.Zipf(m, 1.07, 10_000, seed)
		alpha := make([]int64, m+1)
		arng := rand.New(rand.NewSource(seed + 1))
		for i := range alpha {
			alpha[i] = 1 + arng.Int63n(200)
		}
		return &wire.Request{Kind: wire.KindOBST, Alpha: alpha, Beta: beta}, nil
	case "polygon":
		pts := problems.RandomConvexPolygon(n, 1000, seed)
		wpts := make([]wire.Point, len(pts))
		for i, p := range pts {
			wpts[i] = wire.Point{X: p.X, Y: p.Y}
		}
		return &wire.Request{Kind: wire.KindTriangulation, Points: wpts}, nil
	case "worstchain":
		// workload.WorstCaseChain, rendered as its wire request.
		return &wire.Request{Kind: wire.KindWorstChain, Dims: workload.WorstCaseChainDims(n, seed)}, nil
	case "boolplan":
		// workload.FeasibilityPlan, rendered as its wire request — sparse
		// random bans, every fourth seed a deterministically infeasible
		// span-2 wall.
		spans := workload.FeasibilitySpans(n, seed)
		forbidden := make([]wire.Span, len(spans))
		for i, s := range spans {
			forbidden[i] = wire.Span(s)
		}
		return &wire.Request{Kind: wire.KindBoolSplit, Count: n, Forbidden: forbidden}, nil
	case "segls":
		// workload.TelemetrySeries, rendered as its wire request.
		xs, ys := problems.RandomSeries(n, seed)
		pts := make([]wire.Point, len(xs))
		for i := range xs {
			pts[i] = wire.Point{X: xs[i], Y: ys[i]}
		}
		return &wire.Request{Kind: wire.KindSegLS, Points: pts, Penalty: 500 + (seed%7)*250}, nil
	case "wis":
		// workload.JobSchedule, rendered as its wire request.
		starts, ends, weights := problems.RandomJobs(n, seed)
		return &wire.Request{Kind: wire.KindWIS, Starts: starts, Ends: ends, Weights: weights}, nil
	case "subsetsum":
		// workload.CoinFeasibility, rendered as its wire request — every
		// fourth seed a deterministically infeasible all-even coin system.
		target := int64(n)
		if target < 2 {
			target = 2
		}
		return &wire.Request{Kind: wire.KindSubsetSum, Target: target,
			Items: workload.CoinSystem(target, seed)}, nil
	default:
		return nil, fmt.Errorf("unknown workload family %q (mlp | mlptree | mlplarge | dictionary | polygon | worstchain | boolplan | segls | seglspath | wis | subsetsum)", family)
	}
}

func waitHealthy(addr string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %v", addr, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Summary is the machine-readable run report (-out).
type Summary struct {
	DurationSec  float64 `json:"duration_sec"`
	Concurrency  int     `json:"concurrency"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	Timeouts     int64   `json:"timeouts"`
	CacheHits    int64   `json:"cache_hits"`
	Coalesced    int64   `json:"coalesced"`
	Solved       int64   `json:"solved"`
	Throughput   float64 `json:"throughput_rps"`
	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	LatencyMsMax float64 `json:"latency_ms_max"`
}

func (s *Summary) print(w *os.File) {
	fmt.Fprintf(w, "dploadgen: %d requests in %.1fs over %d connections (%.1f req/s)\n",
		s.Requests, s.DurationSec, s.Concurrency, s.Throughput)
	fmt.Fprintf(w, "  outcomes: %d solved, %d cache hits, %d coalesced, %d shed, %d timeouts, %d errors\n",
		s.Solved, s.CacheHits, s.Coalesced, s.Shed, s.Timeouts, s.Errors)
	fmt.Fprintf(w, "  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		s.LatencyMsP50, s.LatencyMsP90, s.LatencyMsP99, s.LatencyMsMax)
}

type sample struct {
	micros    int64
	cached    bool
	coalesced bool
	shed      bool // 503: admission queue full — expected under saturation
	timeout   bool // 504: server-side deadline — expected for heavy mixes
	err       bool
}

func run(addr string, pool [][]byte, duration time.Duration, conc int, timeout time.Duration) *Summary {
	stop := time.Now().Add(duration)
	samplesPer := make([][]sample, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: timeout}
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var local []sample
			for time.Now().Before(stop) {
				body := pool[rng.Intn(len(pool))]
				t0 := time.Now()
				resp, err := client.Post(addr+"/solve", "application/json", bytes.NewReader(body))
				el := time.Since(t0).Microseconds()
				s := sample{micros: el}
				if err != nil {
					s.err = true
				} else {
					var wr wire.Response
					switch {
					case resp.StatusCode == http.StatusServiceUnavailable:
						// Back-pressure, not breakage: the server shed the
						// request at admission.
						s.shed = true
					case resp.StatusCode == http.StatusGatewayTimeout:
						s.timeout = true
					case resp.StatusCode != http.StatusOK ||
						json.NewDecoder(resp.Body).Decode(&wr) != nil:
						s.err = true
					default:
						s.cached, s.coalesced = wr.Cached, wr.Coalesced
					}
					resp.Body.Close()
				}
				local = append(local, s)
			}
			samplesPer[w] = local
		}(w)
	}
	wg.Wait()

	sum := &Summary{DurationSec: duration.Seconds(), Concurrency: conc}
	var lats []int64
	for _, ss := range samplesPer {
		for _, s := range ss {
			sum.Requests++
			switch {
			case s.err:
				sum.Errors++
			case s.shed:
				sum.Shed++
			case s.timeout:
				sum.Timeouts++
			case s.cached:
				sum.CacheHits++
			case s.coalesced:
				sum.Coalesced++
			default:
				sum.Solved++
			}
			if !s.err && !s.shed && !s.timeout {
				lats = append(lats, s.micros)
			}
		}
	}
	sum.Throughput = float64(sum.Requests) / duration.Seconds()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(lats)-1))
			return float64(lats[idx]) / 1000
		}
		sum.LatencyMsP50 = pct(0.50)
		sum.LatencyMsP90 = pct(0.90)
		sum.LatencyMsP99 = pct(0.99)
		sum.LatencyMsMax = float64(lats[len(lats)-1]) / 1000
	}
	return sum
}
