package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(got, 2.138, 0.01) {
		t.Fatalf("stddev = %v", got)
	}
}

func TestLinFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	f := LinFit(xs, ys)
	if !approx(f.Slope, 3, 1e-9) || !approx(f.Intercept, 7, 1e-9) || !approx(f.R2, 1, 1e-9) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinFitDegenerate(t *testing.T) {
	if f := LinFit([]float64{2, 2, 2}, []float64{1, 2, 3}); f.Slope != 0 {
		t.Fatalf("vertical data fit = %+v", f)
	}
	if f := LinFit([]float64{1}, []float64{1}); f != (Fit{}) {
		t.Fatalf("single point fit = %+v", f)
	}
}

func TestLinFitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	LinFit([]float64{1, 2}, []float64{1})
}

func TestPowerFitRecoversExponent(t *testing.T) {
	xs := []float64{8, 16, 32, 64, 128, 256}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 3.5)
	}
	e, c, r2 := PowerFit(xs, ys)
	if !approx(e, 3.5, 1e-6) || !approx(c, 5, 1e-6) || !approx(r2, 1, 1e-9) {
		t.Fatalf("power fit: e=%v c=%v r2=%v", e, c, r2)
	}
}

func TestPowerFitSkipsNonpositive(t *testing.T) {
	xs := []float64{-1, 0, 2, 4, 8}
	ys := []float64{5, 5, 4, 8, 16}
	e, _, _ := PowerFit(xs, ys)
	if !approx(e, 1, 1e-9) {
		t.Fatalf("exponent = %v, want 1", e)
	}
}

func TestLogFit(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 1024}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*math.Log2(x) + 1
	}
	f := LogFit(xs, ys)
	if !approx(f.Slope, 2, 1e-9) || !approx(f.Intercept, 1, 1e-9) {
		t.Fatalf("log fit = %+v", f)
	}
}

func TestRatio(t *testing.T) {
	got := Ratio([]float64{10, 20, 30}, []float64{2, 0, 5})
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("ratio = %v", got)
	}
}

// Property: LinFit on y = a*x + b recovers (a,b) for any finite a,b.
func TestLinFitProperty(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{1, 3, 4, 7, 9, 13}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		fit := LinFit(xs, ys)
		return approx(fit.Slope, a, 1e-6) && approx(fit.Intercept, b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
