package sublineardp

import (
	"errors"
	"time"

	"sublineardp/internal/pram"
	"sublineardp/internal/recurrence"
)

// Accounting is the PRAM cost-model ledger (time, work, processors)
// shared by every parallel engine, re-exported from internal/pram.
type Accounting = pram.Accounting

// Solution is the unified outcome of a Solver.Solve or SolveBatch run:
// one type for every engine, from the sequential O(n^3) baseline to the
// paper's banded HLV iteration. Fields that an engine does not produce
// are left at their zero value (for example Work is sequential-only and
// Iterations is zero for the single-pass baselines).
type Solution struct {
	// Engine is the registry name of the engine that produced this
	// solution ("sequential", "hlv-banded", ...). For the "auto"
	// meta-engine it names the engine actually chosen.
	Engine string

	// Algebra names the semiring the solve ran under ("min-plus" unless
	// the instance declared or WithSemiring selected another): the key to
	// interpreting Table's values (minimal cost, maximal cost, 0/1
	// feasibility, ...).
	Algebra string

	// Table holds the converged cost table c(i,j); Table.Root() is the
	// optimum, also available as Cost().
	Table *Table

	// Iterations is the number of parallel iterations executed (HLV,
	// Rytter and semiring engines; zero for single-pass engines).
	Iterations int

	// StoppedEarly reports that a stability termination rule fired
	// before the worst-case iteration budget was exhausted.
	StoppedEarly bool

	// ConvergedAt is the first iteration after which the table matched
	// WithTarget's reference, or -1 when no target was set or it never
	// matched.
	ConvergedAt int

	// BandRadius echoes the effective deficit bound D of a banded HLV
	// run (zero for every other engine).
	BandRadius int

	// Work counts candidate evaluations of the sequential baseline (the
	// quantity processor-time products are compared against); zero for
	// the parallel engines, whose cost lives in Acct.
	Work int64

	// Acct is the PRAM cost-model accounting (parallel engines only).
	Acct Accounting

	// History holds per-iteration statistics when WithHistory was set
	// and the engine records them (HLV engines only).
	History []IterStat

	// Elapsed is the wall-clock duration of the solve. For a cached
	// solution it is the time this caller waited, not the original
	// solve's duration.
	Elapsed time.Duration

	// Cached reports that the solution was served by a WithCache cache —
	// either a resident LRU hit or a fold into an identical in-flight
	// solve — rather than by running an engine.
	Cached bool

	// instance backs Tree(); treeFn and splits are fast reconstruction
	// paths that only the sequential engine provides.
	instance *Instance
	treeFn   func() (*Tree, error)
	splits   func(i, j int) int
}

// Cost returns the computed optimum c(0,n).
func (s *Solution) Cost() Cost { return s.Table.Root() }

// N returns the instance size the solution answers for.
func (s *Solution) N() int { return s.Table.N }

// Tree reconstructs an optimal parenthesization. The sequential engine
// recorded split points during the solve, so its reconstruction is O(n)
// under any algebra; every other engine recovers the tree from the
// converged value table (the paper's algorithm computes values only),
// which is implemented for the default min-plus algebra only. It fails
// if the table is not a fixed point of the recurrence — e.g. a run
// capped by WithMaxIterations before convergence.
func (s *Solution) Tree() (*Tree, error) {
	if s.treeFn != nil {
		return s.treeFn()
	}
	if s.Table == nil || s.instance == nil {
		return nil, errors.New("sublineardp: solution carries no instance to reconstruct from")
	}
	if s.Algebra != "" && s.Algebra != "min-plus" {
		return nil, errors.New("sublineardp: table-based tree extraction is min-plus only; use the sequential engine for other algebras")
	}
	return recurrence.ExtractTree(s.instance, s.Table)
}

// Split returns the optimal split point of node (i,j) when the engine
// recorded one (sequential engine only), or -1 otherwise.
func (s *Solution) Split(i, j int) int {
	if s.splits == nil {
		return -1
	}
	return s.splits(i, j)
}
