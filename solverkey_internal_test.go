package sublineardp

import (
	"testing"

	"sublineardp/internal/cache"
	"sublineardp/internal/problems"
)

// The cache-key audit behind solveKey's keying discipline: two
// configurations that differ in any result-affecting field must never
// share a solve key, and identical inputs must (determinism). A shared
// key here would mean one option set silently served another's solution
// — the exact hazard the canonical cache must exclude.
func TestSolveKeySeparatesResultAffectingOptions(t *testing.T) {
	in := problems.CLRSMatrixChain()
	base := Config{}

	// One mutation per result-affecting Config field, each applied to a
	// fresh copy of the base. Every mutation must move the key, and all
	// keys (base included) must be pairwise distinct.
	mutations := map[string]func(*Config){
		"workers":      func(c *Config) { c.Workers = 3 },
		"tile":         func(c *Config) { c.TileSize = 17 },
		"mode":         func(c *Config) { c.Mode = Chaotic },
		"termination":  func(c *Config) { c.Termination = WStable },
		"termination2": func(c *Config) { c.Termination = WPWStable },
		"maxiter":      func(c *Config) { c.MaxIterations = 5 },
		"band":         func(c *Config) { c.BandRadius = 7 },
		"window":       func(c *Config) { c.Window = true },
		"autocutoff":   func(c *Config) { c.AutoCutoff = 10 },
		"autolarge":    func(c *Config) { c.AutoLargeCutoff = 512 },
		"history":      func(c *Config) { c.History = true },
		"semiring":     func(c *Config) { c.Semiring = MaxPlus },
		"semiring2":    func(c *Config) { c.Semiring = BoolPlan },
		"splits":       func(c *Config) { c.RecordSplits = true },
		"convexity":    func(c *Config) { c.Convexity = true },
	}
	keys := map[cache.Key]string{}
	add := func(label string, key cache.Key) {
		if prev, dup := keys[key]; dup {
			t.Fatalf("option sets %q and %q share a solve key", prev, label)
		}
		keys[key] = label
	}

	baseKey, ok := solveKey(in, EngineAuto, &base)
	if !ok {
		t.Fatal("canonicalisable instance not keyed")
	}
	if again, _ := solveKey(in, EngineAuto, &base); again != baseKey {
		t.Fatal("solve key is not deterministic")
	}
	add("base", baseKey)

	for label, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		key, ok := solveKey(in, EngineAuto, &cfg)
		if !ok {
			t.Fatalf("%s: not keyed", label)
		}
		add(label, key)
	}

	// Engine routing is keyed through the engine name argument.
	for _, engine := range []string{EngineSequential, EngineHLVBanded, EngineHLVDense, EngineBlocked, EngineBlockedPipe, EngineBlockedKY} {
		key, _ := solveKey(in, engine, &base)
		add("engine="+engine, key)
	}

	// The canonically distinct algebra twin of the same parameters (the
	// declared algebra lives in the canonical bytes, not only in the
	// config override).
	twin := problems.WorstCaseMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	twinKey, ok := solveKey(twin, EngineAuto, &base)
	if !ok {
		t.Fatal("worstchain twin not keyed")
	}
	add("worstchain-twin", twinKey)

	// And the override spelling of the same algebra must coincide with
	// neither min-plus nor the declared twin: the parameters hash
	// differently (matrixchain vs worstchain canon) even though the
	// effective algebra matches.
	maxCfg := base
	maxCfg.Semiring = MaxPlus
	overrideKey, _ := solveKey(in, EngineAuto, &maxCfg)
	if overrideKey == twinKey {
		t.Fatal("override max-plus on matrixchain collides with declared worstchain")
	}
}

// An explicit override must also separate from the instance's declared
// algebra when they disagree — WithSemiring(MinPlus) on a worstchain
// instance is a different computation than its declared max-plus solve.
func TestSolveKeyOverrideBeatsDeclaredAlgebra(t *testing.T) {
	twin := problems.WorstCaseMatrixChain([]int{2, 3, 4, 5})
	declared, ok := solveKey(twin, EngineAuto, &Config{})
	if !ok {
		t.Fatal("not keyed")
	}
	overridden, _ := solveKey(twin, EngineAuto, &Config{Semiring: MinPlus})
	if declared == overridden {
		t.Fatal("min-plus override shares a key with the declared max-plus solve")
	}
}
