package sublineardp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cache"
	"sublineardp/internal/llp"
	"sublineardp/internal/parutil"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
)

// Chain is the repository's second recurrence class: a 1D prefix dynamic
// program c(j) = Combine_{k<j} Extend(c(k), F(k,j)) over any registered
// algebra, alongside the interval recurrence (*) Instance expresses. See
// recurrence.Chain for the contract and NewSegmentedLeastSquares /
// NewIntervalScheduling / NewSubsetSum for the shipped families.
type Chain = recurrence.Chain

// Vector is the dense result of a chain solve: the values c(0)..c(N).
type Vector = recurrence.Vector

// Registry names of the built-in chain engines.
const (
	// ChainEngineAuto picks a chain engine by size: n <= the cutoff
	// (WithAutoCutoff, default DefaultChainAutoCutoff) goes to the
	// sequential scan, larger chains to the asynchronous LLP engine.
	ChainEngineAuto = "auto"
	// ChainEngineSequential is the O(sum of window sizes) prefix scan
	// (records predecessors, so ChainSolution.Path is O(n)).
	ChainEngineSequential = "sequential"
	// ChainEngineLLP is the asynchronous Lattice-Linear-Predicate engine
	// of internal/llp: workers advance any index whose predecessors are
	// stable, with no global barriers, at exactly the sequential work.
	ChainEngineLLP = "llp"
)

// DefaultChainAutoCutoff is the default size threshold of the "auto"
// chain engine: at n <= 512 the sequential prefix scan beats the LLP
// engine's dispatch and publication overhead, above it the bulk
// ReduceRelax folds win.
const DefaultChainAutoCutoff = 512

// ChainEngine is one algorithm for the chain recurrence behind the
// ChainSolver API — the chain analogue of Engine, with the same
// contract: safe for concurrent use, honours ctx cancellation, returns a
// non-nil ChainSolution exactly when the error is nil.
type ChainEngine interface {
	// Name is the registry key ("sequential", "llp", ...).
	Name() string
	// SolveChain runs the engine on one chain under the given read-only
	// configuration.
	SolveChain(ctx context.Context, c *Chain, cfg *Config) (*ChainSolution, error)
}

var chainRegistry = struct {
	mu sync.RWMutex
	m  map[string]ChainEngine
}{m: make(map[string]ChainEngine)}

// RegisterChainEngine adds a chain engine to the registry under
// e.Name(). It rejects nil engines, empty names, and duplicates. The
// chain registry is separate from the interval one: the two recurrence
// classes share names ("auto", "sequential") without colliding.
func RegisterChainEngine(e ChainEngine) error {
	if e == nil || e.Name() == "" {
		return errors.New("sublineardp: RegisterChainEngine needs a non-nil engine with a non-empty name")
	}
	chainRegistry.mu.Lock()
	defer chainRegistry.mu.Unlock()
	if _, dup := chainRegistry.m[e.Name()]; dup {
		return fmt.Errorf("sublineardp: chain engine %q already registered", e.Name())
	}
	chainRegistry.m[e.Name()] = e
	return nil
}

// LookupChainEngine returns the chain engine registered under name.
func LookupChainEngine(name string) (ChainEngine, bool) {
	chainRegistry.mu.RLock()
	defer chainRegistry.mu.RUnlock()
	e, ok := chainRegistry.m[name]
	return e, ok
}

// ChainEngines returns the sorted names of all registered chain engines.
func ChainEngines() []string {
	chainRegistry.mu.RLock()
	defer chainRegistry.mu.RUnlock()
	names := make([]string, 0, len(chainRegistry.m))
	for name := range chainRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	for _, e := range []ChainEngine{
		autoChainEngine{},
		sequentialChainEngine{},
		llpChainEngine{},
	} {
		if err := RegisterChainEngine(e); err != nil {
			panic(err)
		}
	}
}

// ChainSolution is the unified outcome of a chain solve: one type for
// both chain engines, the 1D analogue of Solution.
type ChainSolution struct {
	// Engine is the registry name of the chain engine that produced this
	// solution; for "auto" it names the engine actually chosen.
	Engine string

	// Algebra names the semiring the solve ran under — the key to
	// interpreting Values (minimal cost, maximal weight, 0/1
	// feasibility).
	Algebra string

	// Values holds the converged vector c(0)..c(N); Values.Root() is the
	// optimum, also available as Cost().
	Values *Vector

	// Work counts candidate folds — identical across engines on the same
	// chain (the LLP engine is work-efficient by construction).
	Work int64

	// Sweeps is the LLP engine's straggler metric: the largest number of
	// relaxation sweeps any one worker ran (zero for the sequential
	// engine, 1 when every index was ready on first visit).
	Sweeps int

	// Elapsed is the wall-clock duration of the solve. For a cached
	// solution it is the time this caller waited, not the original
	// solve's duration.
	Elapsed time.Duration

	// Cached reports that the solution was served by a WithCache cache
	// rather than by running an engine.
	Cached bool

	// chain backs Path(); pathFn is the sequential engine's O(n)
	// predecessor walk.
	chain  *Chain
	pathFn func() ([]int, error)
}

// Cost returns the computed optimum c(N). On a solution without a
// vector — the zero value, or an error-path partial — it returns the
// algebra's Zero instead of panicking.
func (s *ChainSolution) Cost() Cost {
	if s == nil || s.Values == nil {
		if s != nil {
			if sr, ok := LookupSemiring(s.Algebra); ok {
				return sr.Zero()
			}
		}
		return Inf
	}
	return s.Values.Root()
}

// N returns the chain length the solution answers for, or 0 for a
// solution without a vector.
func (s *ChainSolution) N() int {
	if s == nil || s.Values == nil {
		return 0
	}
	return s.Values.N
}

// Feasible reports that c(N) holds a solution — its value is not the
// algebra's Zero.
func (s *ChainSolution) Feasible() bool {
	if s == nil || s.Values == nil {
		return false
	}
	k, err := algebra.Resolve(nil, s.Algebra)
	if err != nil {
		return false
	}
	return k.Norm(s.Values.Root()) != k.Norm(k.Zero())
}

// Path returns the witness breakpoint sequence 0 = k_0 < k_1 < ... <
// k_m = N (segment boundaries, the scheduled-job prefix lengths, the
// running subset sums). The sequential engine recorded predecessors
// during the solve; every other engine recovers them from the converged
// vector by re-scanning each index's candidates — O(total candidates),
// smallest-k tie-breaking either way, so the two paths agree.
func (s *ChainSolution) Path() ([]int, error) {
	if s == nil {
		return nil, errors.New("sublineardp: Path on a nil solution")
	}
	if s.pathFn != nil {
		return s.pathFn()
	}
	if s.Values == nil || s.chain == nil {
		return nil, errors.New("sublineardp: solution carries no chain to reconstruct from")
	}
	if !s.Feasible() {
		return nil, errors.New("sublineardp: no chain optimum to reconstruct (root is the algebra's Zero)")
	}
	k, err := algebra.Resolve(nil, s.Algebra)
	if err != nil {
		return nil, err
	}
	path := []int{s.chain.N}
	for j := s.chain.N; j > 0; {
		pred := -1
		target := k.Norm(s.Values.At(j))
		for kk := s.chain.Lo(j); kk < j; kk++ {
			if k.Norm(k.Extend(s.Values.At(kk), s.chain.F(kk, j))) == target {
				pred = kk
				break
			}
		}
		if pred < 0 {
			return nil, fmt.Errorf("sublineardp: no candidate realises c(%d); vector is not a fixed point", j)
		}
		path = append(path, pred)
		j = pred
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// sequentialChainEngine wraps the prefix scan of internal/seq.
type sequentialChainEngine struct{}

func (sequentialChainEngine) Name() string { return ChainEngineSequential }

func (sequentialChainEngine) SolveChain(ctx context.Context, c *Chain, cfg *Config) (*ChainSolution, error) {
	res, err := seq.SolveChainSemiringCtx(ctx, c, cfg.Semiring)
	if err != nil {
		return nil, err
	}
	return &ChainSolution{
		Engine:  ChainEngineSequential,
		Algebra: algebra.ResolveName(cfg.Semiring, c.Algebra),
		Values:  res.Values,
		Work:    res.Work,
		chain:   c,
		pathFn: func() ([]int, error) {
			if !res.Feasible() {
				return nil, errors.New("sublineardp: no chain optimum to reconstruct (root is the algebra's Zero)")
			}
			return res.Path(), nil
		},
	}, nil
}

// llpChainEngine wraps the asynchronous engine of internal/llp.
type llpChainEngine struct{}

func (llpChainEngine) Name() string { return ChainEngineLLP }

func (llpChainEngine) SolveChain(ctx context.Context, c *Chain, cfg *Config) (*ChainSolution, error) {
	res, err := llp.SolveCtx(ctx, c, llp.Options{
		Workers:  cfg.Workers,
		Pool:     cfg.Pool,
		Semiring: cfg.Semiring,
	})
	if err != nil {
		return nil, err
	}
	return &ChainSolution{
		Engine:  ChainEngineLLP,
		Algebra: algebra.ResolveName(cfg.Semiring, c.Algebra),
		Values:  res.Values,
		Work:    res.Work,
		Sweeps:  res.Sweeps,
		chain:   c,
	}, nil
}

// autoChainEngine is the size-based selector: the sequential scan up to
// the cutoff, the LLP engine above it. The returned ChainSolution names
// the engine actually chosen.
type autoChainEngine struct{}

func (autoChainEngine) Name() string { return ChainEngineAuto }

func (autoChainEngine) SolveChain(ctx context.Context, c *Chain, cfg *Config) (*ChainSolution, error) {
	return pickChainAuto(c.N, cfg).SolveChain(ctx, c, cfg)
}

// pickChainAuto resolves the auto chain engine's choice for length n.
func pickChainAuto(n int, cfg *Config) ChainEngine {
	cutoff := cfg.AutoCutoff
	if cutoff <= 0 {
		cutoff = DefaultChainAutoCutoff
	}
	name := ChainEngineSequential
	if n > cutoff {
		name = ChainEngineLLP
	}
	e, ok := LookupChainEngine(name)
	if !ok {
		// The built-ins are registered in init; this cannot fail.
		panic(fmt.Sprintf("sublineardp: built-in chain engine %q missing", name))
	}
	return e
}

// ChainSolver is the chain twin of Solver: a registry chain engine plus
// a fixed configuration, immutable and safe for concurrent use.
type ChainSolver struct {
	engine ChainEngine
	cfg    Config
}

// NewChainSolver builds a ChainSolver for the named chain engine (""
// picks "auto"). It fails on unknown names; see ChainEngines for the
// registered set.
func NewChainSolver(engine string, opts ...Option) (*ChainSolver, error) {
	cfg := buildConfig(opts)
	name := engine
	if name == "" {
		name = cfg.Engine
	}
	if name == "" {
		name = ChainEngineAuto
	}
	e, ok := LookupChainEngine(name)
	if !ok {
		return nil, fmt.Errorf("sublineardp: unknown chain engine %q (registered: %v)", name, ChainEngines())
	}
	cfg.Engine = name
	return &ChainSolver{engine: e, cfg: cfg}, nil
}

// MustNewChainSolver is NewChainSolver but panics on error.
func MustNewChainSolver(engine string, opts ...Option) *ChainSolver {
	s, err := NewChainSolver(engine, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// EngineName returns the registry name the ChainSolver was built with.
func (s *ChainSolver) EngineName() string { return s.engine.Name() }

// Solve runs the chain engine on one chain, with exactly Solver.Solve's
// cache protocol: canonicalisable chains repeat from memory and
// identical in-flight solves fold into one computation.
func (s *ChainSolver) Solve(ctx context.Context, c *Chain) (*ChainSolution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil || c.N < 1 {
		return nil, fmt.Errorf("sublineardp: invalid chain (nil or N < 1)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.cfg.Cache != nil {
		if key, ok := chainSolveKey(c, s.engine.Name(), &s.cfg); ok {
			start := time.Now()
			sol, err := s.cfg.Cache.solveChain(ctx, key, func(fctx context.Context) (*ChainSolution, error) {
				return s.solveDirect(fctx, c)
			})
			if err != nil {
				return nil, err
			}
			if sol.Cached {
				sol.Elapsed = time.Since(start)
			}
			return sol, nil
		}
	}
	return s.solveDirect(ctx, c)
}

// solveDirect runs the chain engine unconditionally.
func (s *ChainSolver) solveDirect(ctx context.Context, c *Chain) (*ChainSolution, error) {
	start := time.Now()
	sol, err := s.engine.SolveChain(ctx, c, &s.cfg)
	if err != nil {
		return nil, err
	}
	sol.Elapsed = time.Since(start)
	return sol, nil
}

// SolveChainBatch fans a slice of chains across a worker pool, exactly
// as SolveBatch does for interval instances: one shared pool, per-solve
// Workers defaulted to 1 under batch-level parallelism, order-stable
// complete results, per-index error wrapping, cooperative cancellation.
func SolveChainBatch(ctx context.Context, chains []*Chain, opts ...Option) ([]*ChainSolution, error) {
	cfg := buildConfig(opts)
	if cfg.Engine == "" {
		cfg.Engine = ChainEngineAuto
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chains) {
		workers = len(chains)
	}
	if cfg.Workers == 0 && workers > 1 {
		cfg.Workers = 1
	}
	pool := cfg.Pool
	if pool == nil {
		pool = parutil.Default()
		cfg.Pool = pool
	}
	solver, err := NewChainSolver(cfg.Engine, func(c *Config) { *c = cfg })
	if err != nil {
		return nil, err
	}

	out := make([]*ChainSolution, len(chains))
	if len(chains) == 0 {
		return out, nil
	}
	errs := make([]error, len(chains))
	pool.ForChunked(workers, len(chains), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := chains[i]
			label := "<nil>"
			if c != nil {
				label = c.Name
			}
			sol, err := solver.Solve(ctx, c)
			if err != nil {
				errs[i] = fmt.Errorf("chain %d (%s): %w", i, label, err)
				continue
			}
			out[i] = sol
		}
	})
	return out, errors.Join(errs...)
}

// NewSegmentedLeastSquares returns the segmented least squares chain
// over the points (xs[t], ys[t]): the min-plus optimum c(n) is the
// cheapest piecewise-linear fit, charging each segment its squared error
// (in thousandths) plus penalty. xs must be strictly increasing.
func NewSegmentedLeastSquares(xs, ys []int64, penalty int64) *Chain {
	return problems.SegmentedLeastSquares(xs, ys, penalty)
}

// NewIntervalScheduling returns the weighted interval scheduling chain:
// the max-plus optimum c(n) is the maximum total weight of any
// non-overlapping subset of the jobs [starts[t], ends[t]) with
// nonnegative weights[t].
func NewIntervalScheduling(starts, ends, weights []int64) *Chain {
	return problems.IntervalScheduling(starts, ends, weights)
}

// NewSubsetSum returns the sum-feasibility chain over bool-plan:
// Cost() is 1 exactly when target is a sum of the (positive) items,
// each usable any number of times.
func NewSubsetSum(target int64, items []int64) *Chain {
	return problems.SubsetSum(target, items)
}

// chainSolveKey derives the content key for one chain solve: the
// chain's canonical bytes (which already fold in its window and
// declared algebra) plus the Config fields that can alter the returned
// ChainSolution. The "chain" hasher label domain-separates chain keys
// from interval keys built over the same parameter bytes, and the two
// classes live in separate LRUs besides. Workers stays keyed as
// scheduling provenance (it changes Sweeps), exactly as the interval
// key treats it.
func chainSolveKey(c *Chain, engineName string, cfg *Config) (cache.Key, bool) {
	canon, ok := c.Canonical()
	if !ok {
		return cache.Key{}, false
	}
	h := cache.NewHasher().
		Bytes("chain", canon).
		String("engine", engineName).
		Int64("workers", int64(cfg.Workers)).
		Int64("autocutoff", int64(cfg.AutoCutoff)).
		String("semiring", algebra.ResolveName(cfg.Semiring, c.Algebra))
	return h.Sum(), true
}
