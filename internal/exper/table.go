// Package exper is the experiment harness: it regenerates, as text tables,
// every quantitative claim of the paper (DESIGN.md section 4 maps each
// experiment to its paper source). cmd/dpbench is the CLI front end;
// EXPERIMENTS.md records one full run next to the paper's claims.
package exper

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is one experiment output: a titled grid of cells plus free-form
// notes (fits, verdicts, caveats).
type Table struct {
	ID       string // experiment id, e.g. "E2"
	Title    string
	PaperRef string // the claim in the paper this reproduces
	Columns  []string
	Rows     [][]string
	Notes    []string
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	if t.PaperRef != "" {
		fmt.Fprintf(w, "   (reproduces: %s)\n", t.PaperRef)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// CSV writes the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// Config controls experiment scale.
type Config struct {
	// Quick shrinks every experiment to test-suite scale.
	Quick bool
	// Workers for the parallel solvers (0 = GOMAXPROCS).
	Workers int
}

// Experiment is a runnable entry of the registry.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) []*Table
}

// All returns the full experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Iterations to convergence by optimal-tree shape", E1IterationsVsShape},
		{"E2", "Total work scaling and processor-time products", E2WorkScaling},
		{"E3", "Pebbling game: moves vs the Lemma 3.3 bound", E3PebbleGame},
		{"E4", "Average-case moves on random trees (Section 6)", E4AverageCase},
		{"E5", "PRAM time and processor accounting (Sections 4-5)", E5PRAMAccounting},
		{"E6", "Cross-validation of all solvers on all problem families", E6CrossValidation},
		{"E7", "Termination heuristics (Section 7 open problem)", E7Termination},
		{"E8", "Wall-clock self-speedup of the goroutine executor", E8Speedup},
		{"E9", "Figures 1 and 2 as ASCII traces", E9Figures},
		{"E10", "Adaptive processor-time product (Section 7 question)", E10AdaptivePT},
		{"E11", "Brent-scheduled makespan on bounded machines", E11ProcessorScaling},
		{"E12", "Idempotent-semiring generalisation (extension)", E12Semirings},
	}
}

// ByID returns the experiment with the given id (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
