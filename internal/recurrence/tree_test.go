package recurrence

import (
	"strings"
	"testing"

	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
)

// fixedInstance builds a tiny instance with known costs: f(i,k,j) = 1 for
// every split, init = 0, so every tree over n leaves costs n-1 and every
// table entry c(i,j) = span-1.
func fixedInstance(n int) *Instance {
	return &Instance{
		N:    n,
		Name: "unit-f",
		Init: func(i int) cost.Cost { return 0 },
		F:    func(i, k, j int) cost.Cost { return 1 },
	}
}

func solvedTable(in *Instance) *Table {
	// Tiny local DP to avoid importing seq (which would create a cycle:
	// seq already imports recurrence).
	t := NewTable(in.N)
	for i := 0; i < in.N; i++ {
		t.Set(i, i+1, in.Init(i))
	}
	for span := 2; span <= in.N; span++ {
		for i := 0; i+span <= in.N; i++ {
			j := i + span
			best := cost.Inf
			for k := i + 1; k < j; k++ {
				v := cost.Add3(in.F(i, k, j), t.At(i, k), t.At(k, j))
				if v < best {
					best = v
				}
			}
			t.Set(i, j, best)
		}
	}
	return t
}

func TestTreeCostUnitInstance(t *testing.T) {
	in := fixedInstance(9)
	for _, tr := range []*btree.Tree{btree.Complete(9), btree.Zigzag(9), btree.LeftSkewed(9)} {
		if got := TreeCost(in, tr); got != 8 {
			t.Errorf("TreeCost = %d, want 8", got)
		}
	}
}

func TestTreeCostMismatchedSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	TreeCost(fixedInstance(5), btree.Complete(6))
}

func TestExtractTreeRoundTrip(t *testing.T) {
	in := fixedInstance(11)
	tbl := solvedTable(in)
	tr, err := ExtractTree(in, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := TreeCost(in, tr); got != tbl.Root() {
		t.Fatalf("extracted tree costs %d, table root %d", got, tbl.Root())
	}
}

func TestExtractTreeRejectsNonFixpoint(t *testing.T) {
	in := fixedInstance(6)
	tbl := solvedTable(in)
	tbl.Set(1, 4, tbl.At(1, 4)+1) // perturb: no split can realise this value
	_, err := ExtractTree(in, tbl)
	if err == nil || !strings.Contains(err.Error(), "fixed point") {
		t.Fatalf("perturbed table accepted: %v", err)
	}
}

func TestExtractTreeRejectsInfiniteRoot(t *testing.T) {
	in := fixedInstance(6)
	if _, err := ExtractTree(in, NewTable(6)); err == nil {
		t.Fatal("all-Inf table accepted")
	}
}

func TestExtractTreeRejectsSizeMismatch(t *testing.T) {
	in := fixedInstance(6)
	if _, err := ExtractTree(in, NewTable(7)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
