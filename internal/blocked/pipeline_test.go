package blocked

import (
	"context"
	"sync/atomic"
	"testing"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
	"sublineardp/internal/verify"
)

// The pipelined driver must reproduce the barrier driver bitwise across
// every tile-boundary residue the wavefront sweep covers — same case
// table as TestBlockedMatchesSequentialAcrossTileBoundaries, compared
// against both the sequential DP and the barrier engine.
func TestPipelinedMatchesBlockedAcrossTileBoundaries(t *testing.T) {
	cases := []struct{ n, tile int }{
		{1, 0}, {2, 0}, {3, 2}, {7, 3},
		{16, 4}, {15, 4}, {14, 4}, {17, 4},
		{23, 5}, {31, 8}, {24, 1}, {24, 64},
		{40, 7}, {40, 0},
	}
	for _, tc := range cases {
		in := problems.RandomInstance(tc.n, 90, int64(tc.n*31+tc.tile))
		want := Solve(in, Options{TileSize: tc.tile})
		got := SolvePipe(in, Options{TileSize: tc.tile})
		if !bitwiseEqual(got.Table, want.Table) {
			t.Errorf("n=%d tile=%d: table differs from blocked: %v",
				tc.n, tc.tile, got.Table.Diff(want.Table, 3))
		}
		if rep := verify.Table(in, got.Table); !rep.OK() {
			t.Errorf("n=%d tile=%d: not a fixed point: %v", tc.n, tc.tile, rep.Err())
		}
		if got.TileSize != want.TileSize {
			t.Errorf("n=%d tile=%d: effective tile %d, blocked used %d",
				tc.n, tc.tile, got.TileSize, want.TileSize)
		}
	}
}

// Every registered algebra × tile edge, values AND recorded splits,
// bitwise against the barrier engine.
func TestPipelinedMatchesBlockedAcrossSemirings(t *testing.T) {
	ctx := context.Background()
	for _, name := range algebra.Names() {
		sr, _ := algebra.Lookup(name)
		for _, in := range pipelineInstances() {
			for _, tile := range []int{1, 4, 7, 64} {
				want, err := SolveCtx(ctx, in, Options{TileSize: tile, Semiring: sr, RecordSplits: true})
				if err != nil {
					t.Fatal(err)
				}
				got, err := SolvePipeCtx(ctx, in, Options{TileSize: tile, Semiring: sr, RecordSplits: true})
				if err != nil {
					t.Fatal(err)
				}
				if !bitwiseEqual(got.Table, want.Table) {
					t.Errorf("%s/%s tile=%d: table differs: %v",
						name, in.Name, tile, got.Table.Diff(want.Table, 3))
				}
				for idx := range want.Splits {
					if got.Splits[idx] != want.Splits[idx] {
						t.Errorf("%s/%s tile=%d: split flat[%d] = %d, blocked recorded %d",
							name, in.Name, tile, idx, got.Splits[idx], want.Splits[idx])
						break
					}
				}
			}
		}
	}
}

// The interface (non-stenciled) dispatch path must agree too.
func TestPipelinedGenericKernelPath(t *testing.T) {
	in := problems.RandomInstance(18, 60, 11)
	want := seq.Solve(in)
	got, err := SolvePipeCtx(context.Background(), in, Options{TileSize: 4, Semiring: wrappedMinPlus{}})
	if err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqual(got.Table, want.Table) {
		t.Errorf("wrapped kernel diverges: %v", got.Table.Diff(want.Table, 3))
	}
}

func TestPipelinedCancellation(t *testing.T) {
	in := problems.RandomInstance(220, 80, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolvePipeCtx(ctx, in, Options{TileSize: 16})
	if err == nil || res != nil {
		t.Fatalf("cancelled solve returned (%v, %v), want nil result and ctx error", res, err)
	}
}

// The candidate ledger must stay exact under the reordering: charged
// work equals the sequential candidate count for every tile size.
func TestPipelinedWorkMatchesSequential(t *testing.T) {
	for _, tile := range []int{1, 3, 8, 64} {
		in := problems.RandomInstance(33, 50, 2)
		want := seq.Solve(in).Work
		got := SolvePipe(in, Options{TileSize: tile})
		if gotWork := got.Acct.Work - int64(in.N); gotWork != want {
			t.Errorf("tile=%d: charged work %d, sequential %d", tile, gotWork, want)
		}
	}
}

// The observability satellite's core claim: the barrier engine fences
// 2(nb−1) times per solve, the pipelined engine never — its only join
// is the graph's final quiescence.
func TestPipelinedBarrierFree(t *testing.T) {
	in := problems.RandomInstance(120, 70, 4)
	tile := 16
	nb := (in.N + 1 + tile - 1) / tile

	barrier := Solve(in, Options{TileSize: tile, Workers: 3})
	if want := int64(2 * (nb - 1)); barrier.Stats.Barriers != want {
		t.Errorf("blocked: %d barriers, want 2(nb-1) = %d", barrier.Stats.Barriers, want)
	}
	if barrier.Stats.Tasks == 0 {
		t.Errorf("blocked: no tasks counted")
	}

	pipe := SolvePipe(in, Options{TileSize: tile, Workers: 3})
	if pipe.Stats.Barriers != 0 {
		t.Errorf("blocked-pipe: %d barriers, want 0", pipe.Stats.Barriers)
	}
	if pipe.Stats.Tasks == 0 {
		t.Errorf("blocked-pipe: no tasks counted")
	}
	if !bitwiseEqual(pipe.Table, barrier.Table) {
		t.Errorf("table diverged while counting: %v", pipe.Table.Diff(barrier.Table, 3))
	}
}

// Two instances through one shared graph on a 2-worker pool: both tables
// bitwise correct, and the joint Stats view on both results proves they
// ran through one scheduler — its task count is exactly the sum of the
// two solves' individual (deterministic) task counts.
func TestPipeBatchSharedScheduler(t *testing.T) {
	pool := parutil.NewPool(2)
	defer pool.Close()
	a := problems.RandomInstance(130, 80, 21)
	b := problems.RandomMatrixChain(110, 60, 22)
	opt := Options{TileSize: 16, Pool: pool, Workers: 2}

	wantA := Solve(a, opt)
	wantB := Solve(b, opt)
	soloA := SolvePipe(a, opt)
	soloB := SolvePipe(b, opt)

	results, errs := SolvePipeBatchCtx(context.Background(),
		[]BatchItem{{In: a}, {In: b}}, opt)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if !bitwiseEqual(results[0].Table, wantA.Table) {
		t.Errorf("batched A differs from blocked: %v", results[0].Table.Diff(wantA.Table, 3))
	}
	if !bitwiseEqual(results[1].Table, wantB.Table) {
		t.Errorf("batched B differs from blocked: %v", results[1].Table.Diff(wantB.Table, 3))
	}
	if results[0].Stats != results[1].Stats {
		t.Errorf("batch items report different Stats views (%+v vs %+v) — not one shared scheduler",
			results[0].Stats, results[1].Stats)
	}
	if got, want := results[0].Stats.Tasks, soloA.Stats.Tasks+soloB.Stats.Tasks; got != want {
		t.Errorf("shared graph ran %d tasks, want %d (sum of the two solves)", got, want)
	}
	if results[0].Stats.Barriers != 0 {
		t.Errorf("overlapped batch recorded %d barriers, want 0", results[0].Stats.Barriers)
	}
}

// Mid-flight cancellation of one item must not corrupt or cancel its
// co-batched neighbour. The cancel fires from inside item A's own F
// evaluation, so it is guaranteed to land while A is mid-solve.
func TestPipeBatchCancellationIsolation(t *testing.T) {
	pool := parutil.NewPool(2)
	defer pool.Close()
	opt := Options{TileSize: 16, Pool: pool, Workers: 2}

	base := problems.RandomInstance(130, 80, 31)
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	var calls atomic.Int64
	inA := *base
	inA.FPanel = nil // force the per-candidate F path so the trap sees every fold
	inA.F = func(i, k, j int) cost.Cost {
		if calls.Add(1) == 5000 {
			cancelA()
		}
		return base.F(i, k, j)
	}

	b := problems.RandomMatrixChain(110, 60, 32)
	wantB := Solve(b, opt)

	results, errs := SolvePipeBatchCtx(context.Background(),
		[]BatchItem{{In: &inA, Ctx: ctxA}, {In: b}}, opt)
	if errs[0] == nil || results[0] != nil {
		t.Fatalf("cancelled item returned (%v, %v), want nil result and ctx error", results[0], errs[0])
	}
	if errs[0] != context.Canceled {
		t.Errorf("cancelled item error = %v, want context.Canceled", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("co-batched item failed: %v", errs[1])
	}
	if !bitwiseEqual(results[1].Table, wantB.Table) {
		t.Errorf("co-batched item corrupted by neighbour's cancellation: %v",
			results[1].Table.Diff(wantB.Table, 3))
	}
}

// Mixed-algebra batches share the scheduler too (the runner erases the
// kernel type per item).
func TestPipeBatchMixedAlgebras(t *testing.T) {
	in := problems.RandomInstance(40, 70, 7)
	maxSR, _ := algebra.Lookup(algebra.NameMaxPlus)
	wantMin := Solve(in, Options{TileSize: 8})
	wantMax := Solve(in, Options{TileSize: 8, Semiring: maxSR})

	// Per-item algebra comes from the instance; override via two batches
	// is not needed — run min-plus and max-plus instances side by side.
	inMax := *in
	inMax.Algebra = algebra.NameMaxPlus
	results, errs := SolvePipeBatchCtx(context.Background(),
		[]BatchItem{{In: in}, {In: &inMax}}, Options{TileSize: 8})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if !bitwiseEqual(results[0].Table, wantMin.Table) {
		t.Errorf("min-plus item differs: %v", results[0].Table.Diff(wantMin.Table, 3))
	}
	if !bitwiseEqual(results[1].Table, wantMax.Table) {
		t.Errorf("max-plus item differs: %v", results[1].Table.Diff(wantMax.Table, 3))
	}
}

func pipelineInstances() []*recurrence.Instance {
	return []*recurrence.Instance{
		problems.RandomInstance(21, 70, 3),
		problems.RandomMatrixChain(26, 50, 5),
		problems.Zigzag(19),
	}
}
