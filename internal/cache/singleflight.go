package cache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Group folds concurrent computations of the same Key into one: the
// first caller executes fn, later callers ("joiners") wait for its
// result. It is the dedup layer in front of the LRU — with it, k
// identical in-flight requests cost one solve, not k.
//
// Cancellation is refcounted: fn receives a context that is detached
// from any single caller and is cancelled only when *every* caller of
// the flight has abandoned it (their own contexts done). One impatient
// client therefore cannot kill a solve that other clients still want,
// while a solve nobody is waiting for anymore aborts promptly — that is
// the path a client disconnect takes down to tile-level abort.
type Group[V any] struct {
	mu sync.Mutex
	m  map[Key]*flight[V]

	executions atomic.Int64
	dedups     atomic.Int64
}

type flight[V any] struct {
	cancel  context.CancelFunc
	waiters int
	done    chan struct{}
	val     V
	err     error
}

// FlightStats is the Group's counter snapshot.
type FlightStats struct {
	Executions int64 // flights that ran fn
	Dedups     int64 // callers that joined an existing flight
}

// Stats returns a snapshot of the cumulative counters.
func (g *Group[V]) Stats() FlightStats {
	return FlightStats{Executions: g.executions.Load(), Dedups: g.dedups.Load()}
}

// Do returns the result of fn for key, executing it at most once among
// concurrent callers. The boolean reports whether this caller joined a
// flight started by another caller. A caller whose ctx ends before the
// flight finishes gets ctx's error; the flight itself keeps running for
// the remaining waiters and is cancelled when none remain.
func (g *Group[V]) Do(ctx context.Context, key Key, fn func(context.Context) (V, error)) (V, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[Key]*flight[V])
	}
	if f, ok := g.m[key]; ok {
		f.waiters++
		g.mu.Unlock()
		g.dedups.Add(1)
		return g.wait(ctx, f, true)
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight[V]{cancel: cancel, waiters: 1, done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()
	g.executions.Add(1)
	go func() {
		v, err := fn(fctx)
		g.mu.Lock()
		f.val, f.err = v, err
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return g.wait(ctx, f, false)
}

func (g *Group[V]) wait(ctx context.Context, f *flight[V], joined bool) (V, bool, error) {
	select {
	case <-f.done:
		return f.val, joined, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.cancel()
		}
		g.mu.Unlock()
		var zero V
		return zero, joined, ctx.Err()
	}
}
