package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"sublineardp/internal/cost"
)

// Every shipped algebra must satisfy the semiring laws the solvers rely
// on — the same checker Register applies to third parties.
func TestShippedAlgebrasSatisfyLaws(t *testing.T) {
	for _, name := range Names() {
		k, ok := Lookup(name)
		if !ok {
			t.Fatalf("registered name %q does not resolve", name)
		}
		if err := CheckLaws(k); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// counting is the classic non-idempotent semiring (+, *): counting
// parenthesizations. The fixed-point iteration re-Combines the same tree
// many times, so Register must refuse it.
type counting struct{}

func (counting) Combine(a, b cost.Cost) cost.Cost { return a + b }
func (counting) Extend(a, b cost.Cost) cost.Cost  { return a * b }
func (counting) Zero() cost.Cost                  { return 0 }
func (counting) One() cost.Cost                   { return 1 }
func (counting) Name() string                     { return "counting" }

func TestRegisterRejectsNonIdempotentSemiring(t *testing.T) {
	err := Register(counting{})
	if err == nil {
		t.Fatal("Register accepted the non-idempotent counting semiring")
	}
	if !strings.Contains(err.Error(), "idempotent") && !strings.Contains(err.Error(), "laws") {
		t.Fatalf("rejection does not name the laws: %v", err)
	}
	if _, ok := Lookup("counting"); ok {
		t.Fatal("rejected semiring still resolvable")
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Fatal("nil semiring accepted")
	}
	if err := Register(MinPlus{}); err == nil {
		t.Fatal("duplicate of a shipped algebra accepted")
	}
}

// renamed wraps a lawful algebra under an arbitrary name, to probe name
// validation independently of the laws.
type renamed struct {
	MinPlus
	name string
}

func (r renamed) Name() string { return r.name }

func TestRegisterRejectsNULInName(t *testing.T) {
	// A NUL-bearing name would alias the canonical "alg\x00name\x00canon"
	// tagging across (algebra, instance) pairs.
	if err := Register(renamed{name: "x\x00y"}); err == nil {
		t.Fatal("NUL-bearing algebra name accepted")
	}
	if _, ok := Lookup("x\x00y"); ok {
		t.Fatal("rejected name resolvable")
	}
}

// leftmost is a lawful but non-shipped algebra: Combine keeps the
// smaller value like min-plus but over a capped domain. It exercises the
// third-party registration path end to end, including promotion to the
// derived kernel.
type leftmost struct{}

func (leftmost) Combine(a, b cost.Cost) cost.Cost { return cost.Min(a, b) }
func (leftmost) Extend(a, b cost.Cost) cost.Cost  { return cost.Add(a, b) }
func (leftmost) Zero() cost.Cost                  { return cost.Inf }
func (leftmost) One() cost.Cost                   { return 0 }
func (leftmost) Name() string                     { return "test-leftmost" }

func TestRegisterAcceptsLawfulThirdParty(t *testing.T) {
	if err := Register(leftmost{}); err != nil {
		t.Fatalf("lawful semiring rejected: %v", err)
	}
	k, ok := Lookup("test-leftmost")
	if !ok {
		t.Fatal("registered semiring not resolvable")
	}
	if !k.Better(1, 2) || k.Better(2, 2) {
		t.Fatal("derived Better does not follow Combine")
	}
}

func TestResolvePrecedence(t *testing.T) {
	k, err := Resolve(nil, "")
	if err != nil || k.Name() != NameMinPlus {
		t.Fatalf("default algebra = %v, %v; want min-plus", k, err)
	}
	k, err = Resolve(nil, NameMaxPlus)
	if err != nil || k.Name() != NameMaxPlus {
		t.Fatalf("instance algebra = %v, %v; want max-plus", k, err)
	}
	k, err = Resolve(BoolPlan{}, NameMaxPlus)
	if err != nil || k.Name() != NameBoolPlan {
		t.Fatalf("override = %v, %v; want bool-plan", k, err)
	}
	if _, err = Resolve(nil, "no-such-algebra"); err == nil {
		t.Fatal("unregistered instance algebra resolved")
	}
	if got := ResolveName(MaxPlus{}, NameBoolPlan); got != NameMaxPlus {
		t.Fatalf("ResolveName override = %q", got)
	}
	if got := ResolveName(nil, ""); got != NameMinPlus {
		t.Fatalf("ResolveName default = %q", got)
	}
}

// The specialised bulk primitives must agree with the generic reference
// walk on randomised panels — this is what lets the tiled kernels trust
// any Kernel implementation interchangeably.
func TestSpecialisedPrimitivesMatchGenericWalk(t *testing.T) {
	kernels := []Kernel{MinPlus{}, MaxPlus{}, BoolPlan{}}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		for _, k := range kernels {
			// 256 cells comfortably bounds every index a panel drawn from
			// the parameter ranges below can reach.
			n := 256
			src := make([]cost.Cost, n)
			dstA := make([]cost.Cost, n)
			base := make([]int, 8)
			for i := range src {
				src[i] = k.Norm(cost.Cost(rng.Int63n(100)))
				if rng.Intn(4) == 0 {
					src[i] = k.Zero()
				}
				dstA[i] = k.Norm(cost.Cost(rng.Int63n(100)))
			}
			for i := range base {
				base[i] = rng.Intn(4)
			}
			// Small second-order panel staying inside [0, n).
			m := 1 + rng.Intn(4)
			p := Panel{
				M: m, Cnt0: 1 + rng.Intn(3), CntInc: rng.Intn(3) - 1,
				S1: rng.Intn(8), S1Step: 1 + rng.Intn(2), S1Inc: rng.Intn(2),
				D: 8 + rng.Intn(4), DStartStep: 1 + rng.Intn(3), DStartInc: rng.Intn(2),
				DStep: 1 + rng.Intn(2), DStepRow: rng.Intn(2), DInc: rng.Intn(2),
				S: 8 + rng.Intn(4), SStartStep: rng.Intn(3),
				SStep: 1 + rng.Intn(2), SInc: rng.Intn(2),
				BaseIdx: rng.Intn(4), BaseStep: 1,
			}
			var useBase []int
			if rng.Intn(2) == 0 {
				useBase = base
			}
			dstB := append([]cost.Cost(nil), dstA...)
			k.RelaxPanel(dstA, src, useBase, p)
			relaxPanelGeneric(k, dstB, src, useBase, p)
			for i := range dstA {
				if dstA[i] != dstB[i] {
					t.Fatalf("%s: RelaxPanel diverges from generic at %d (%d vs %d), panel %+v",
						k.Name(), i, dstA[i], dstB[i], p)
				}
			}

			// ReduceRelax vs the generic reduction.
			sh := ReduceShape{
				M: 1 + rng.Intn(4), Cnt0: 1 + rng.Intn(3), CntInc: rng.Intn(3) - 1,
				A: rng.Intn(8), AStartStep: 1 + rng.Intn(2), AStartInc: rng.Intn(2), AStep: 1 + rng.Intn(2),
				B: rng.Intn(8), BStartStep: 1 + rng.Intn(2), BStep: 1 + rng.Intn(2),
			}
			best0 := k.Norm(cost.Cost(rng.Int63n(100)))
			got := k.ReduceRelax(best0, src, dstB, sh)
			want := reduceRelaxGeneric(k, best0, src, dstB, sh)
			if got != want {
				t.Fatalf("%s: ReduceRelax %d != generic %d, shape %+v", k.Name(), got, want, sh)
			}
		}
	}
}

// The RelaxRows s1/start parameters above are fixed; cross-check the two
// dst buffers explicitly with a dedicated deterministic case per kernel.
func TestRelaxRowsMatchesPanelEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []Kernel{MinPlus{}, MaxPlus{}, BoolPlan{}} {
		for trial := 0; trial < 100; trial++ {
			n := 128
			src := make([]cost.Cost, n)
			dstA := make([]cost.Cost, n)
			for i := range src {
				src[i] = k.Norm(cost.Cost(rng.Int63n(50)))
				if rng.Intn(5) == 0 {
					src[i] = k.Zero()
				}
				dstA[i] = k.Norm(cost.Cost(rng.Int63n(50)))
			}
			dstB := append([]cost.Cost(nil), dstA...)
			m, cnt0, cntInc := 1+rng.Intn(4), 1+rng.Intn(4), rng.Intn(3)-1
			s1, s1Step := rng.Intn(8), 1+rng.Intn(2)
			d, dStep := 16+rng.Intn(8), 1+rng.Intn(4)
			s, sStep := 64+rng.Intn(8), 1+rng.Intn(4)
			stride := 1 + rng.Intn(3)
			k.RelaxRows(dstA, src, m, cnt0, cntInc, s1, s1Step, d, dStep, s, sStep, stride)
			relaxPanelGeneric(k, dstB, src, nil, Panel{
				M: m, Cnt0: cnt0, CntInc: cntInc,
				S1: s1, S1Step: s1Step,
				D: d, DStartStep: dStep, DStep: stride,
				S: s, SStartStep: sStep, SStep: stride,
			})
			for i := range dstA {
				if dstA[i] != dstB[i] {
					t.Fatalf("%s: RelaxRows diverges at %d (%d vs %d)", k.Name(), i, dstA[i], dstB[i])
				}
			}
		}
	}
}

// The blocked engine's split primitives must agree with the generic
// reference walk on randomised table layouts — same contract as the
// panel/reduce pinning above, including rows/cells that hold the
// algebra's Zero.
func TestSplitPrimitivesMatchGenericWalk(t *testing.T) {
	kernels := []Kernel{MinPlus{}, MaxPlus{}, BoolPlan{}, derived{leftmost{}}}
	rng := rand.New(rand.NewSource(99))
	const stride = 16
	for trial := 0; trial < 300; trial++ {
		for _, k := range kernels {
			tabA := make([]cost.Cost, stride*stride)
			for i := range tabA {
				tabA[i] = k.Norm(cost.Cost(rng.Int63n(60)))
				if rng.Intn(4) == 0 {
					tabA[i] = k.Zero()
				}
			}
			f := func(i, s, j int) cost.Cost {
				v := cost.Cost((i*7 + s*3 + j) % 11)
				if v == 10 {
					return k.Zero()
				}
				return v
			}
			// A legal panel layout: i < ka <= kb <= j0, run inside the row.
			i := rng.Intn(4)
			ka := i + 1 + rng.Intn(3)
			kb := ka + rng.Intn(4)
			j0 := kb + rng.Intn(3)
			m := rng.Intn(stride - j0 + 1)
			tabB := append([]cost.Cost(nil), tabA...)
			k.RelaxSplitPanel(tabA, stride, i, ka, kb, j0, m, f)
			relaxSplitPanelGeneric(k, tabB, stride, i, ka, kb, j0, m, f)
			for c := range tabA {
				if tabA[c] != tabB[c] {
					t.Fatalf("%s: RelaxSplitPanel diverges from generic at %d (%d vs %d), i=%d ka=%d kb=%d j0=%d m=%d",
						k.Name(), c, tabA[c], tabB[c], i, ka, kb, j0, m)
				}
			}

			// RelaxSplitRow with a pre-evaluated f run of the same shape.
			fRow := make([]cost.Cost, m)
			for t := range fRow {
				fRow[t] = f(i, ka, j0+t)
			}
			tabC := append([]cost.Cost(nil), tabA...)
			k.RelaxSplitRow(tabA, stride, i, ka, j0, m, fRow)
			relaxSplitRowGeneric(k, tabC, stride, i, ka, j0, m, fRow)
			for c := range tabA {
				if tabA[c] != tabC[c] {
					t.Fatalf("%s: RelaxSplitRow diverges from generic at %d (%d vs %d), i=%d k=%d j0=%d m=%d",
						k.Name(), c, tabA[c], tabC[c], i, ka, j0, m)
				}
			}
		}
	}
}

// The recording split primitives must (a) agree with the generic
// recording reference walk on both the value table and the split
// matrix, and (b) write the exact same value bytes as the non-recording
// primitives — recording is observable only through spl.
func TestSplitRecPrimitivesMatchGenericWalk(t *testing.T) {
	kernels := []Kernel{MinPlus{}, MaxPlus{}, BoolPlan{}, derived{leftmost{}}}
	rng := rand.New(rand.NewSource(123))
	const stride = 16
	for trial := 0; trial < 300; trial++ {
		for _, k := range kernels {
			tabA := make([]cost.Cost, stride*stride)
			splA := make([]int32, stride*stride)
			for c := range tabA {
				tabA[c] = k.Norm(cost.Cost(rng.Int63n(60)))
				if rng.Intn(4) == 0 {
					tabA[c] = k.Zero()
				}
				// A prior recording state: none, or some earlier split.
				splA[c] = -1
				if rng.Intn(3) == 0 {
					splA[c] = int32(rng.Intn(8))
				}
			}
			f := func(i, s, j int) cost.Cost {
				v := cost.Cost((i*7 + s*3 + j) % 11)
				if v == 10 {
					return k.Zero()
				}
				return v
			}
			i := rng.Intn(4)
			ka := i + 1 + rng.Intn(3)
			kb := ka + rng.Intn(4)
			j0 := kb + rng.Intn(3)
			m := rng.Intn(stride - j0 + 1)
			tabB := append([]cost.Cost(nil), tabA...)
			splB := append([]int32(nil), splA...)
			tabPlain := append([]cost.Cost(nil), tabA...)
			k.RelaxSplitPanelRec(tabA, splA, stride, i, ka, kb, j0, m, f)
			relaxSplitPanelRecGeneric(k, tabB, splB, stride, i, ka, kb, j0, m, f)
			k.RelaxSplitPanel(tabPlain, stride, i, ka, kb, j0, m, f)
			for c := range tabA {
				if tabA[c] != tabB[c] || splA[c] != splB[c] {
					t.Fatalf("%s: RelaxSplitPanelRec diverges from generic at %d (val %d vs %d, spl %d vs %d), i=%d ka=%d kb=%d j0=%d m=%d",
						k.Name(), c, tabA[c], tabB[c], splA[c], splB[c], i, ka, kb, j0, m)
				}
				if tabA[c] != tabPlain[c] {
					t.Fatalf("%s: recording changed a value at %d (%d vs %d), i=%d ka=%d kb=%d j0=%d m=%d",
						k.Name(), c, tabA[c], tabPlain[c], i, ka, kb, j0, m)
				}
			}

			// RelaxSplitRowRec with a pre-evaluated f run of the same shape.
			fRow := make([]cost.Cost, m)
			for t := range fRow {
				fRow[t] = f(i, ka, j0+t)
			}
			tabC := append([]cost.Cost(nil), tabA...)
			splC := append([]int32(nil), splA...)
			tabPlain = append(tabPlain[:0], tabA...)
			k.RelaxSplitRowRec(tabA, splA, stride, i, ka, j0, m, fRow)
			relaxSplitRowRecGeneric(k, tabC, splC, stride, i, ka, j0, m, fRow)
			k.RelaxSplitRow(tabPlain, stride, i, ka, j0, m, fRow)
			for c := range tabA {
				if tabA[c] != tabC[c] || splA[c] != splC[c] {
					t.Fatalf("%s: RelaxSplitRowRec diverges from generic at %d (val %d vs %d, spl %d vs %d), i=%d k=%d j0=%d m=%d",
						k.Name(), c, tabA[c], tabC[c], splA[c], splC[c], i, ka, j0, m)
				}
				if tabA[c] != tabPlain[c] {
					t.Fatalf("%s: row recording changed a value at %d (%d vs %d), i=%d k=%d j0=%d m=%d",
						k.Name(), c, tabA[c], tabPlain[c], i, ka, j0, m)
				}
			}
		}
	}
}

// RelaxSplitCellRec is specified as exactly the m=1 panel form — the
// Knuth–Yao driver leans on that to stay bitwise identical to the
// unpruned engine. Pin every kernel (and the derived fallback) against
// RelaxSplitPanelRec on random prior states, including pre-recorded
// splits and Zero-saturated cells.
func TestRelaxSplitCellRecMatchesPanelForm(t *testing.T) {
	kernels := []Kernel{MinPlus{}, MaxPlus{}, BoolPlan{}, derived{leftmost{}}}
	rng := rand.New(rand.NewSource(321))
	const stride = 16
	for trial := 0; trial < 300; trial++ {
		for _, k := range kernels {
			tabA := make([]cost.Cost, stride*stride)
			splA := make([]int32, stride*stride)
			for c := range tabA {
				tabA[c] = k.Norm(cost.Cost(rng.Int63n(60)))
				if rng.Intn(4) == 0 {
					tabA[c] = k.Zero()
				}
				splA[c] = -1
				if rng.Intn(3) == 0 {
					splA[c] = int32(rng.Intn(8))
				}
			}
			f := func(i, s, j int) cost.Cost {
				v := cost.Cost((i*5 + s*3 + j) % 11)
				if v == 10 {
					return k.Zero()
				}
				return v
			}
			i := rng.Intn(4)
			ka := i + 1 + rng.Intn(3)
			kb := ka + rng.Intn(4)
			j := kb + rng.Intn(stride-kb)
			tabB := append([]cost.Cost(nil), tabA...)
			splB := append([]int32(nil), splA...)
			k.RelaxSplitCellRec(tabA, splA, stride, i, ka, kb, j, f)
			k.RelaxSplitPanelRec(tabB, splB, stride, i, ka, kb, j, 1, f)
			for c := range tabA {
				if tabA[c] != tabB[c] || splA[c] != splB[c] {
					t.Fatalf("%s: RelaxSplitCellRec diverges from m=1 panel at %d (val %d vs %d, spl %d vs %d), i=%d ka=%d kb=%d j=%d",
						k.Name(), c, tabA[c], tabB[c], splA[c], splB[c], i, ka, kb, j)
				}
			}
		}
	}
}

func TestScalarHelpers(t *testing.T) {
	for _, k := range []Kernel{MinPlus{}, MaxPlus{}, BoolPlan{}} {
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 200; trial++ {
			a := k.Norm(cost.Cost(rng.Int63n(1000)))
			b := k.Norm(cost.Cost(rng.Int63n(1000)))
			c := k.Norm(cost.Cost(rng.Int63n(1000)))
			if got, want := k.Extend3(a, b, c), k.Extend(a, k.Extend(b, c)); got != want {
				t.Fatalf("%s: Extend3 %d != %d", k.Name(), got, want)
			}
			if got, want := k.Relax2(a, b, c), k.Combine(a, k.Extend(b, c)); got != want {
				t.Fatalf("%s: Relax2 %d != %d", k.Name(), got, want)
			}
			if got, want := k.Relax3(a, a, b, c), k.Combine(a, k.Extend3(a, b, c)); got != want {
				t.Fatalf("%s: Relax3 %d != %d", k.Name(), got, want)
			}
			buf := []cost.Cost{a}
			changed := k.RelaxAt(buf, 0, b, c)
			if want := k.Combine(a, k.Extend(b, c)); buf[0] != want {
				t.Fatalf("%s: RelaxAt left %d, want %d", k.Name(), buf[0], want)
			}
			if changed != (buf[0] != a) {
				t.Fatalf("%s: RelaxAt change report wrong", k.Name())
			}
		}
	}
}
