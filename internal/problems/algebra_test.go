package problems

import (
	"bytes"
	"testing"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
)

func TestWorstCaseMatrixChainDeclaresMaxPlus(t *testing.T) {
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	worst := WorstCaseMatrixChain(dims)
	if worst.Algebra != algebra.NameMaxPlus {
		t.Fatalf("algebra = %q, want max-plus", worst.Algebra)
	}
	best := MatrixChain(dims)

	// Same parameters, different canon: the twins must never collide.
	wc, ok1 := worst.Canonical()
	bc, ok2 := best.Canonical()
	if !ok1 || !ok2 {
		t.Fatal("twins not canonicalisable")
	}
	if bytes.Equal(wc, bc) {
		t.Fatal("worstchain and matrixchain share canonical bytes")
	}

	// The worst case must dominate the best case, and on CLRS's example
	// the spread is known to be wide.
	worstRes, err := seq.SolveSemiringCtx(t.Context(), worst, nil)
	if err != nil {
		t.Fatal(err)
	}
	bestRes := seq.Solve(best)
	if worstRes.Cost() < bestRes.Cost() {
		t.Fatalf("worst %d < best %d", worstRes.Cost(), bestRes.Cost())
	}
	if bestRes.Cost() != CLRSOptimalCost {
		t.Fatalf("best = %d, want %d", bestRes.Cost(), CLRSOptimalCost)
	}
	// Brute-force the maximum over all parenthesizations at this size.
	want := bruteMax(worst, 0, worst.N)
	if worstRes.Cost() != want {
		t.Fatalf("worst-case optimum %d, brute force %d", worstRes.Cost(), want)
	}
}

// bruteMax enumerates all parenthesizations of (i,j) recursively and
// returns the costliest — independent of every solver. Small n only.
func bruteMax(in *recurrence.Instance, i, j int) cost.Cost {
	if j == i+1 {
		return in.Init(i)
	}
	best := cost.Cost(-1)
	for k := i + 1; k < j; k++ {
		v := in.F(i, k, j) + bruteMax(in, i, k) + bruteMax(in, k, j)
		if v > best {
			best = v
		}
	}
	return best
}

func TestForbiddenSplitsSemantics(t *testing.T) {
	// n=4, ban subexpression (1,3): feasible trees must avoid creating
	// A2*A3 as a unit. Parenthesizations of 4 objects: 5 trees, of which
	// those splitting (0,4) at 1 with right (1,4) split at 3, etc.
	in := ForbiddenSplits(4, [][2]int{{1, 3}})
	if in.Algebra != algebra.NameBoolPlan {
		t.Fatalf("algebra = %q", in.Algebra)
	}
	res, err := seq.SolveSemiringCtx(t.Context(), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost() != 1 {
		t.Fatalf("banning one mid-span must stay feasible, got %d", res.Cost())
	}

	// Banning every span-2 node makes any tree impossible at n >= 3
	// (every parenthesization of >= 3 objects contains some span-2 node).
	all2 := [][2]int{{0, 2}, {1, 3}, {2, 4}}
	res, err = seq.SolveSemiringCtx(t.Context(), ForbiddenSplits(4, all2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost() != 0 {
		t.Fatalf("banning all span-2 nodes must be infeasible, got %d", res.Cost())
	}
	if res.Feasible() {
		t.Fatal("Feasible() true on infeasible instance")
	}

	// A banned leaf is infeasible outright.
	res, err = seq.SolveSemiringCtx(t.Context(), ForbiddenSplits(3, [][2]int{{1, 2}}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost() != 0 {
		t.Fatalf("banned leaf must be infeasible, got %d", res.Cost())
	}
}

func TestForbiddenSplitsCanonOrderIndependent(t *testing.T) {
	a := ForbiddenSplits(6, [][2]int{{0, 3}, {2, 5}, {1, 4}, {2, 5}})
	b := ForbiddenSplits(6, [][2]int{{2, 5}, {1, 4}, {0, 3}})
	ca, _ := a.Canonical()
	cb, _ := b.Canonical()
	if !bytes.Equal(ca, cb) {
		t.Fatal("canonical bytes depend on forbidden-list order/duplicates")
	}
	c := ForbiddenSplits(6, [][2]int{{0, 3}, {1, 4}})
	cc, _ := c.Canonical()
	if bytes.Equal(ca, cc) {
		t.Fatal("different forbidden sets share canonical bytes")
	}
}

func TestForbiddenSplitsValidation(t *testing.T) {
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {3, 2}, {0, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("pair %v accepted", bad)
				}
			}()
			ForbiddenSplits(5, [][2]int{bad})
		}()
	}
}

func TestWorstCaseMatrixChainValidation(t *testing.T) {
	for _, bad := range [][]int{{5}, {3, 0, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v accepted", bad)
				}
			}()
			WorstCaseMatrixChain(bad)
		}()
	}
}
