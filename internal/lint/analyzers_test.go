package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Each analyzer is pinned against a fixture package under testdata/
// holding at least one true positive (a line marked `positive:`) and
// one //lint:allow-suppressed negative. The test asserts three things:
// the surviving findings are exactly the marked lines, the suppressed
// negative was genuinely detected before suppression (the annotation is
// load-bearing, not decorative), and deleting the annotation would
// therefore make the suite fail.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer Analyzer
	}{
		{"keycoverage", &KeyCoverage{Struct: "Config", KeyFuncs: []string{"solveKey"}}},
		{"ctxpoll", &CtxPoll{}},
		{"bulkonly", &BulkOnly{}},
		{"hotalloc", &HotAlloc{}},
		{"atomicmix", &AtomicMix{}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			prog := loadFixture(t, tc.fixture)
			name := tc.analyzer.Name()

			survived := Run(prog, []Analyzer{tc.analyzer})
			for _, f := range survived {
				if f.Check != name {
					t.Fatalf("unexpected check %q in %v", f.Check, f)
				}
			}
			got := findingLines(survived)
			want := markedLines(t, fixtureFile(tc.fixture), "positive:")
			if len(want) == 0 {
				t.Fatal("fixture declares no positive lines")
			}
			if !equalInts(got, want) {
				t.Errorf("surviving finding lines = %v, want marked lines %v\nfindings:\n%s",
					got, want, findingDump(survived))
			}

			// The annotated negative must be a real detection that the
			// directive discharged — raw output strictly larger than the
			// surviving set, covering the directive's target line.
			raw := tc.analyzer.Run(prog)
			if len(raw) <= len(survived) {
				t.Fatalf("suppressed negative not detected pre-suppression: raw=%d survived=%d", len(raw), len(survived))
			}
			dirLines := markedLines(t, fixtureFile(tc.fixture), "lint:allow")
			if len(dirLines) != 1 {
				t.Fatalf("fixture wants exactly one allow directive, found lines %v", dirLines)
			}
			rawLines := findingLines(raw)
			if !containsInt(rawLines, dirLines[0]) && !containsInt(rawLines, dirLines[0]+1) {
				t.Errorf("no raw finding at the annotated negative (directive line %d, raw lines %v)", dirLines[0], rawLines)
			}
			// And no directive went stale: Run reported no allowdead.
			for _, f := range survived {
				if f.Check == CheckAllowDead {
					t.Errorf("fixture annotation is dead: %v", f)
				}
			}
		})
	}
}

// The framework's own hygiene: a stale directive is an allowdead
// finding, a reasonless directive is an allowform finding — so every
// annotation in the tree stays both load-bearing and justified.
func TestDirectiveHygieneFixture(t *testing.T) {
	prog := loadFixture(t, "framework")
	findings := Run(prog, []Analyzer{&CtxPoll{}, &HotAlloc{}})
	var checks []string
	for _, f := range findings {
		checks = append(checks, f.Check)
	}
	sort.Strings(checks)
	if strings.Join(checks, ",") != CheckAllowDead+","+CheckAllowForm {
		t.Fatalf("framework fixture findings = %v, want exactly one %s and one %s\n%s",
			checks, CheckAllowDead, CheckAllowForm, findingDump(findings))
	}
}

// A directive must only discharge findings of its own check: under a
// ctxpoll-only run the bulkonly fixture's annotation discharges
// nothing (its loops belong to no Solve*Ctx entry point), so the
// directive itself is reported dead rather than silently absorbing a
// finding from the wrong check.
func TestDirectiveIsCheckScoped(t *testing.T) {
	prog := loadFixture(t, "bulkonly")
	findings := Run(prog, []Analyzer{&CtxPoll{}})
	dead := 0
	for _, f := range findings {
		if f.Check == CheckAllowDead {
			dead++
		}
	}
	if dead != 1 {
		t.Fatalf("want the bulkonly directive reported dead under a ctxpoll-only run, got findings:\n%s", findingDump(findings))
	}
}

func loadFixture(t *testing.T, name string) *Program {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadDir(filepath.Join("testdata", name), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, prog.TypeErrors)
	}
	return prog
}

func fixtureFile(name string) string {
	return filepath.Join("testdata", name, "fixture.go")
}

// markedLines returns the 1-based lines of path containing marker.
func markedLines(t *testing.T, path, marker string) []int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			out = append(out, i+1)
		}
	}
	return out
}

// findingLines returns the sorted, deduplicated finding lines (several
// findings may anchor to one marked line, e.g. fmt call + boxing).
func findingLines(fs []Finding) []int {
	seen := map[int]bool{}
	for _, f := range fs {
		seen[f.Line] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

func findingDump(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
