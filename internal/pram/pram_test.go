package pram

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestReduceTime(t *testing.T) {
	cases := map[int64]int64{
		0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11,
	}
	for m, want := range cases {
		if got := ReduceTime(m); got != want {
			t.Errorf("ReduceTime(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestChargeUnit(t *testing.T) {
	var a Accounting
	a.ChargeUnit(100)
	a.ChargeUnit(50)
	if a.Time != 2 || a.Work != 150 || a.MaxProcs != 100 || a.Steps != 2 {
		t.Fatalf("accounting = %+v", a)
	}
}

func TestChargeReduce(t *testing.T) {
	var a Accounting
	// 10 cells, largest reduction over 8 candidates, 64 total candidates:
	// time += 3, procs = ceil(64/3) = 22.
	a.ChargeReduce(10, 8, 64)
	if a.Time != 3 {
		t.Fatalf("time = %d, want 3", a.Time)
	}
	if a.Work != 64 {
		t.Fatalf("work = %d", a.Work)
	}
	if a.MaxProcs != 22 {
		t.Fatalf("procs = %d, want 22", a.MaxProcs)
	}
}

func TestChargeReduceCellFloor(t *testing.T) {
	var a Accounting
	// 100 cells each reducing over 1 candidate: procs must be >= cells.
	a.ChargeReduce(100, 1, 100)
	if a.MaxProcs != 100 {
		t.Fatalf("procs = %d, want 100", a.MaxProcs)
	}
}

func TestChargeReduceZeroCells(t *testing.T) {
	var a Accounting
	a.ChargeReduce(0, 5, 10)
	if a.Time != 0 || a.Work != 0 {
		t.Fatalf("zero cells charged: %+v", a)
	}
}

func TestAccountingAdd(t *testing.T) {
	var a, b Accounting
	a.ChargeUnit(10)
	b.ChargeReduce(5, 4, 20)
	a.Add(b)
	if a.Time != 1+2 || a.Work != 30 || a.Steps != 2 {
		t.Fatalf("after Add: %+v", a)
	}
	if len(a.Ops()) != 2 {
		t.Fatalf("ops = %d, want 2", len(a.Ops()))
	}
}

func TestTimeOnBrent(t *testing.T) {
	var a Accounting
	a.ChargeUnit(100)        // work 100, depth 1
	a.ChargeReduce(8, 8, 64) // work 64, depth 3
	// p = 1: ceil(100/1)+1 + ceil(64/1)+3 = 101 + 67 = 168.
	if got := a.TimeOn(1); got != 168 {
		t.Fatalf("TimeOn(1) = %d, want 168", got)
	}
	// p huge: 1+1 + 1+3 = 6 (critical path plus one unit each).
	if got := a.TimeOn(1 << 40); got != 6 {
		t.Fatalf("TimeOn(inf) = %d, want 6", got)
	}
	// p = 10: ceil(100/10)+1 + ceil(64/10)+3 = 11 + 10 = 21.
	if got := a.TimeOn(10); got != 21 {
		t.Fatalf("TimeOn(10) = %d, want 21", got)
	}
	// Monotone in p.
	prev := a.TimeOn(1)
	for p := int64(2); p <= 128; p *= 2 {
		cur := a.TimeOn(p)
		if cur > prev {
			t.Fatalf("TimeOn not monotone at p=%d", p)
		}
		prev = cur
	}
	if a.TimeOn(0) != a.TimeOn(1) {
		t.Fatal("TimeOn(0) not clamped to 1")
	}
}

func TestPTProduct(t *testing.T) {
	var a Accounting
	a.ChargeUnit(7)
	if a.PTProduct() != 7 {
		t.Fatalf("pt = %d", a.PTProduct())
	}
	if !strings.Contains(a.String(), "pt=7") {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestAuditorCleanRun(t *testing.T) {
	var au Auditor
	au.BeginStep("activate")
	au.Read(Addr(1, 5))
	au.Read(Addr(1, 5)) // concurrent read is fine
	au.Write(Addr(2, 5))
	au.EndStep()
	au.BeginStep("pebble")
	au.Write(Addr(1, 5)) // writing a cell read in a *previous* step is fine
	au.EndStep()
	if err := au.Err(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
}

func TestAuditorWriteWrite(t *testing.T) {
	var au Auditor
	au.BeginStep("square")
	au.Write(Addr(1, 9))
	au.Write(Addr(1, 9))
	au.EndStep()
	vs := au.Violations()
	if len(vs) != 1 || vs[0].Kind != "write-write" {
		t.Fatalf("violations = %v", vs)
	}
	if au.Err() == nil {
		t.Fatal("Err() nil despite violation")
	}
}

func TestAuditorReadWrite(t *testing.T) {
	var au Auditor
	au.BeginStep("square")
	au.Read(Addr(1, 3))
	au.Write(Addr(1, 3))
	au.EndStep()
	vs := au.Violations()
	if len(vs) != 1 || vs[0].Kind != "read-write" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestAuditorStepIsolation(t *testing.T) {
	var au Auditor
	au.BeginStep("a")
	au.Write(Addr(1, 1))
	au.BeginStep("b") // implicitly closes "a"
	au.Write(Addr(1, 1))
	au.EndStep()
	if err := au.Err(); err != nil {
		t.Fatalf("cross-step writes flagged: %v", err)
	}
}

func TestAuditorConcurrentRecording(t *testing.T) {
	var au Auditor
	au.BeginStep("parallel")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				au.Write(Addr(3, w*200+i)) // disjoint per goroutine
				au.Read(Addr(4, i))        // shared reads
			}
		}(w)
	}
	wg.Wait()
	au.EndStep()
	if err := au.Err(); err != nil {
		t.Fatalf("disjoint parallel writes flagged: %v", err)
	}
}

func TestAuditorInactiveIgnores(t *testing.T) {
	var au Auditor
	au.Write(Addr(1, 1)) // before any step: ignored
	au.Write(Addr(1, 1))
	if err := au.Err(); err != nil {
		t.Fatalf("inactive recording flagged: %v", err)
	}
}

func TestAddrDisjointness(t *testing.T) {
	// Different arrays never collide, different indices never collide.
	seen := map[uint64][2]int{}
	for arr := 0; arr < 4; arr++ {
		for idx := 0; idx < 5000; idx += 7 {
			a := Addr(uint8(arr), idx)
			if prev, ok := seen[a]; ok {
				t.Fatalf("Addr collision: (%d,%d) vs %v", arr, idx, prev)
			}
			seen[a] = [2]int{arr, idx}
		}
	}
}

func TestAddr4Disjointness(t *testing.T) {
	f := func(i1, j1, p1, q1, i2, j2, p2, q2 uint8) bool {
		a := Addr4(1, int(i1), int(j1), int(p1), int(q1))
		b := Addr4(1, int(i2), int(j2), int(p2), int(q2))
		same := i1 == i2 && j1 == j2 && p1 == p2 && q1 == q2
		return (a == b) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ReduceTime is monotone and ReduceTime(2^k) = k.
func TestReduceTimeProperties(t *testing.T) {
	f := func(m uint16) bool {
		x := int64(m) + 2
		return ReduceTime(x) >= ReduceTime(x-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for k := int64(1); k <= 20; k++ {
		if got := ReduceTime(1 << k); got != k {
			t.Errorf("ReduceTime(2^%d) = %d", k, got)
		}
	}
}
