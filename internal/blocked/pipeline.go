// Pipelined (barrier-free) execution of the blocked schedule.
//
// The wavefront driver in blocked.go fences every anti-diagonal twice
// (phase A, phase B) — 2(nb−1) full-pool barriers per solve, each with an
// idle tail while the last tile of a phase finishes. The pipelined driver
// here runs the *same* tile decomposition as a dependency graph instead
// (ROADMAP direction 2; the per-tile counter construction of the GPU
// pipeline line, arXiv:2008.01938, with the nested-dataflow read-set
// analysis of arXiv:1911.05333 deciding which edges are real): each tile
// carries an atomic in-degree counter and is pushed onto a lock-free
// ready stack the instant the counter hits zero, so diagonals stream into
// each other and — because several solves may seed one shared graph —
// independent solves overlap on one pool, one solve's tail filling
// another's head.
//
// # Dependency edges
//
// Derived from the actual read sets of the two phases, not from the
// wavefront order. Tile (I,J) with block distance d = J−I reads:
//
//   - phase A (d ≥ 2): left factors c(i,k) with k strictly interior —
//     tiles (I,K), I < K < J — and right rows c(k,j) — tiles (K,J),
//     I < K < J;
//   - phase B closure: the block-I fold reads c(i,k) with i,k ∈ block I —
//     tile (I,I) — and the block-J sweep reads c(k,j) with k,j ∈ block
//     J — tile (J,J). (Its reads of tile (I,J) itself are intra-tile and
//     ordered by the closure's own row/column discipline.)
//
// Union: (I,K) for I ≤ K < J and (K,J) for I < K ≤ J — exactly 2d
// predecessors, so deps[(I,J)] starts at 2d, every completed tile
// decrements its row to the right and its column upward, and the d = 0
// diagonal tiles seed the graph. This is strictly weaker than the
// wavefront's "whole diagonal d−1 first", which is why the schedule can
// pipeline at all.
//
// # Why the tables stay bitwise identical
//
// Reordering tiles cannot reorder the folds a given cell sees: both
// drivers call the shared tileSolver units — foldRowInterior folds the
// interior blocks K in ascending order within one task, and closeTile
// folds block-I rows then sweeps block-J forward — and a destination
// cell's every write happens inside exactly one of those units. The
// dependency edges above guarantee each unit's inputs are final before
// it runs, so per cell the candidate sequence (and PR 7's smallest-k tie
// discipline) is identical to the barrier engine's, hence bitwise-equal
// tables and split matrices under every registered algebra. The
// conformance matrix and FuzzPipelinedMatchesBlocked pin this.
package blocked

import (
	"context"
	"fmt"
	"sync/atomic"

	"sublineardp/internal/algebra"
	"sublineardp/internal/parutil"
	"sublineardp/internal/recurrence"
)

// BatchItem is one instance of an overlapped pipelined batch, with an
// optional per-item context: cancelling it abandons that solve's
// remaining tiles (which still resolve their successors' counters, so
// the shared graph drains) without touching the other items.
type BatchItem struct {
	In  *recurrence.Instance
	Ctx context.Context
}

// SolvePipe runs the pipelined engine; like Solve it panics on the only
// reachable error (an unregistered instance algebra).
func SolvePipe(in *recurrence.Instance, opt Options) *Result {
	res, err := SolvePipeCtx(context.Background(), in, opt)
	if err != nil {
		panic(err)
	}
	return res
}

// SolvePipeCtx runs the pipelined engine for one instance: the blocked
// tile decomposition executed as a dependency graph with no wavefront
// barriers. The context is checked at tile-task granularity. The result
// — table, splits, work ledger — is bitwise identical to SolveCtx's.
func SolvePipeCtx(ctx context.Context, in *recurrence.Instance, opt Options) (*Result, error) {
	res, errs := SolvePipeBatchCtx(ctx, []BatchItem{{In: in}}, opt)
	if errs[0] != nil {
		return nil, errs[0]
	}
	return res[0], nil
}

// SolvePipeBatchCtx seeds every item's tile graph into one shared
// scheduler and drains them together, so independent solves overlap: the
// pool never fences between one instance's diagonals or between
// instances. Results and errors are positional. ctx cancels the whole
// batch; BatchItem.Ctx cancels one item. Every successful Result carries
// the shared scheduler's Stats view (the batch ran as one graph — its
// counters are joint by construction).
func SolvePipeBatchCtx(ctx context.Context, items []BatchItem, opt Options) ([]*Result, []error) {
	results := make([]*Result, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		return results, errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pool, workers, procs := poolAndProcs(opt)
	runners := make([]pipeRunner, len(items))
	live := false
	for idx, it := range items {
		if it.In == nil || it.In.N < 1 {
			panic(fmt.Sprintf("blocked: invalid instance %+v", it.In)) //lint:allow hotalloc construction-time validation panic: formats once on a programming error, cold by definition
		}
		ictx := it.Ctx
		if ictx == nil {
			ictx = ctx
		}
		r, err := newPipeRunner(ictx, it.In, opt, procs)
		if err != nil {
			errs[idx] = err
			continue
		}
		runners[idx] = r
		live = true
	}
	if !live {
		return results, errs
	}

	st := &parutil.Stats{}
	pool.RunGraph(ctx, workers, st, func(g *parutil.TaskGraph) {
		for _, r := range runners { //lint:allow ctxpoll O(batch) task-seeding loop; cancellation is RunGraph(ctx) draining the shared graph
			if r != nil {
				r.seed(g)
			}
		}
	})
	view := st.View()
	for idx, r := range runners {
		if r == nil {
			continue
		}
		res, err := r.finish(ctx)
		if err != nil {
			errs[idx] = err
			continue
		}
		res.Stats = view
		results[idx] = res
	}
	return results, errs
}

// pipeRunner erases pipeSolve's algebra type parameter so one graph can
// mix items over different semirings.
type pipeRunner interface {
	seed(g *parutil.TaskGraph)
	finish(batchCtx context.Context) (*Result, error)
}

// newPipeRunner resolves the item's algebra and instantiates the driver
// at the concrete kernel type, mirroring SolveCtx's dispatch.
func newPipeRunner(ctx context.Context, in *recurrence.Instance, opt Options, procs int) (pipeRunner, error) {
	k, err := algebra.Resolve(opt.Semiring, in.Algebra)
	if err != nil {
		return nil, err
	}
	b := EffectiveTileSize(in.N, opt.TileSize, procs)
	switch sr := k.(type) {
	case algebra.MinPlus:
		return newPipeSolve(ctx, sr, in, opt, b), nil
	case algebra.MaxPlus:
		return newPipeSolve(ctx, sr, in, opt, b), nil
	case algebra.BoolPlan:
		return newPipeSolve(ctx, sr, in, opt, b), nil
	default:
		return newPipeSolve[algebra.Kernel](ctx, k, in, opt, b), nil
	}
}

// pipeSolve is one instance's tile graph state. Tile (I,J) is flat index
// I*nb+J.
type pipeSolve[S algebra.Kernel] struct {
	ts  *tileSolver[S]
	ctx context.Context
	// deps is the in-degree counter: 2(J−I) unfinished predecessor
	// tiles. The task that moves it to zero owns submitting the tile.
	deps []atomic.Int32
	// aLeft counts the tile's outstanding phase-A row tasks; the last
	// row submits the closure, which is the intra-tile A-before-B edge.
	aLeft     []atomic.Int32
	tilesLeft atomic.Int64
	aWork     atomic.Int64
	bWork     atomic.Int64
	// failed records that some task observed the item's cancellation and
	// skipped its compute — the table is not trustworthy past that point.
	failed atomic.Bool
}

func newPipeSolve[S algebra.Kernel](ctx context.Context, sr S, in *recurrence.Instance, opt Options, b int) *pipeSolve[S] {
	ts := newTileSolver(sr, in, b, opt.RecordSplits)
	nb := ts.nb
	p := &pipeSolve[S]{
		ts:    ts,
		ctx:   ctx,
		deps:  make([]atomic.Int32, nb*nb),
		aLeft: make([]atomic.Int32, nb*nb),
	}
	for I := 0; I < nb; I++ {
		for J := I; J < nb; J++ {
			id := I*nb + J
			p.deps[id].Store(int32(2 * (J - I)))
			if J-I >= 2 {
				p.aLeft[id].Store(int32(ts.hi(I) - ts.lo(I)))
			}
		}
	}
	p.tilesLeft.Store(int64(nb) * int64(nb+1) / 2)
	return p
}

// seed submits the in-degree-zero diagonal tiles.
func (p *pipeSolve[S]) seed(g *parutil.TaskGraph) {
	for T := 0; T < p.ts.nb; T++ {
		T := T
		g.Submit(func(g *parutil.TaskGraph) { p.closeTask(g, T, T) })
	}
}

// ready fires when tile (I,J)'s last predecessor finished: far tiles fan
// out into one phase-A task per row, near tiles (d < 2 — nothing
// interior to fold) go straight to closure. A cancelled item skips the
// fan-out and lets closeTask do bookkeeping only.
func (p *pipeSolve[S]) ready(g *parutil.TaskGraph, I, J int) {
	if J-I >= 2 && p.ctx.Err() == nil {
		i0, i1 := p.ts.lo(I), p.ts.hi(I)
		for i := i0; i < i1; i++ {
			i := i
			g.Submit(func(g *parutil.TaskGraph) { p.rowTask(g, i, I, J) })
		}
		return
	}
	g.Submit(func(g *parutil.TaskGraph) { p.closeTask(g, I, J) })
}

// rowTask is one phase-A unit: fold every strictly interior block into
// row i of tile (I,J). The last row of the tile submits the closure.
func (p *pipeSolve[S]) rowTask(g *parutil.TaskGraph, i, I, J int) {
	if p.ctx.Err() == nil {
		fbuf := fbufArena.Get(p.ts.b)
		p.aWork.Add(p.ts.foldRowInterior(fbuf, i, I, J))
		fbufArena.Put(fbuf)
	} else {
		p.failed.Store(true)
	}
	if p.aLeft[I*p.ts.nb+J].Add(-1) == 0 {
		g.Submit(func(g *parutil.TaskGraph) { p.closeTask(g, I, J) })
	}
}

// closeTask closes tile (I,J) and resolves its successors' counters:
// the rest of row I to the right, the rest of column J upward. Counter
// bookkeeping runs even for a cancelled item so a shared graph always
// drains — cancellation abandons work, never wedges co-batched solves.
func (p *pipeSolve[S]) closeTask(g *parutil.TaskGraph, I, J int) {
	if p.ctx.Err() == nil {
		fbuf := fbufArena.Get(p.ts.b)
		p.bWork.Add(p.ts.closeTile(fbuf, I, J))
		fbufArena.Put(fbuf)
	} else {
		p.failed.Store(true)
	}
	nb := p.ts.nb
	for J2 := J + 1; J2 < nb; J2++ {
		if p.deps[I*nb+J2].Add(-1) == 0 {
			p.ready(g, I, J2)
		}
	}
	for I2 := I - 1; I2 >= 0; I2-- {
		if p.deps[I2*nb+J].Add(-1) == 0 {
			p.ready(g, I2, J)
		}
	}
	p.tilesLeft.Add(-1)
}

// finish validates completion and charges the work ledger. The Work
// total (leaf units + phase-A + closure candidates) is identical to the
// barrier driver's — the units return the same counts — while Time is
// charged as one phase-A fold plus one closure fold for the whole solve
// (the pipelined schedule has no per-diagonal fences to charge).
func (p *pipeSolve[S]) finish(batchCtx context.Context) (*Result, error) {
	if p.failed.Load() || p.tilesLeft.Load() > 0 {
		if err := p.ctx.Err(); err != nil {
			return nil, err
		}
		if err := batchCtx.Err(); err != nil {
			return nil, err
		}
		// Unreachable: incompleteness implies a cancelled context.
		return nil, context.Canceled
	}
	ts := p.ts
	b, nb, size := ts.b, ts.nb, ts.size
	res := ts.res
	var aCells, bCells int64
	for d := 0; d < nb; d++ {
		if d >= 2 {
			tiles := nb - d
			aCells += int64(b) * (int64(tiles-1)*int64(b) + int64(ts.hi(nb-1)-ts.lo(nb-1)))
		}
		bCells += closedCells(d, b, nb, size)
	}
	if aw := p.aWork.Load(); aw > 0 {
		res.Acct.ChargeReduce(aCells, int64(nb-2)*int64(b), aw)
	}
	if bw := p.bWork.Load(); bw > 0 {
		res.Acct.ChargeReduce(bCells, 2*int64(b), bw)
	}
	return res, nil
}
