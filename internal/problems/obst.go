package problems

import (
	"fmt"
	"math/rand"

	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// OBST returns the optimal binary search tree instance in Knuth's
// formulation with m keys and m+1 gaps. beta[t] is the access weight of
// key t+1 (len m) and alpha[g] the weight of the gap/dummy g (len m+1).
//
// Mapping onto recurrence (*): the instance has N = m+1 objects (the
// gaps). Leaf (i,i+1) is gap i with init(i) = alpha[i]. Internal node
// (i,j) is the subtree holding keys i+1..j-1 and gaps i..j-1; choosing
// split k makes key k the root, and
//
//	f(i,k,j) = W(i,j) = sum(beta over keys i+1..j-1) + sum(alpha over gaps i..j-1)
//
// independently of k — summing f over all internal nodes plus init over
// leaves charges every key and gap once per tree level, which is the
// node-counting weighted path length sum((depth+1)*beta) +
// sum((depth+1)*alpha) that OBST minimises (Knuth's objective up to the
// constant sum(alpha)).
func OBST(alpha, beta []int64) *recurrence.Instance {
	m := len(beta)
	if len(alpha) != m+1 {
		panic(fmt.Sprintf("problems: OBST needs len(alpha) == len(beta)+1, got %d and %d", len(alpha), len(beta)))
	}
	for _, v := range alpha {
		if v < 0 {
			panic("problems: negative alpha weight")
		}
	}
	for _, v := range beta {
		if v < 0 {
			panic("problems: negative beta weight")
		}
	}
	// Prefix sums so that f is O(1).
	// betaPre[t] = beta[0]+..+beta[t-1]; alphaPre[g] = alpha[0]+..+alpha[g-1].
	betaPre := make([]int64, m+1)
	for t := 0; t < m; t++ {
		betaPre[t+1] = betaPre[t] + beta[t]
	}
	alphaPre := make([]int64, m+2)
	for g := 0; g <= m; g++ {
		alphaPre[g+1] = alphaPre[g] + alpha[g]
	}
	// Init and Canon share one snapshot of the weights, so caller
	// mutation after construction cannot desynchronise the cache key
	// from behaviour (F already reads only the prefix sums above).
	alphaC := append([]int64(nil), alpha...)
	betaC := append([]int64(nil), beta...)
	return &recurrence.Instance{
		N:    m + 1,
		Name: fmt.Sprintf("obst-m%d", m),
		// f = W(i,j) is k-independent, W(i,i+1) = alpha[i] = init(i), and
		// W is a sum of nonnegative weights over the keys and gaps of
		// [i,j] — additive over interval contents, hence monotone and
		// quadrangle-convex (with equality). That is exactly the Knuth–Yao
		// precondition, so the pruned engines may trust the declaration.
		Convex: true,
		Canon:  func() []byte { return canon("obst", alphaC, betaC) },
		Init:   func(i int) cost.Cost { return cost.Cost(alphaC[i]) },
		F: func(i, k, j int) cost.Cost {
			// Keys i+1..j-1 are beta indices i..j-2; gaps i..j-1 are
			// alpha indices i..j-1.
			return cost.Cost((betaPre[j-1] - betaPre[i]) + (alphaPre[j] - alphaPre[i]))
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			// f is independent of k; same int64 sums as F, reassociated
			// around the constant -(betaPre[i]+alphaPre[i]) term.
			base := -(betaPre[i] + alphaPre[i])
			for t := range dst {
				j := j0 + t
				dst[t] = cost.Cost(betaPre[j-1] + alphaPre[j] + base)
			}
		},
	}
}

// RandomOBST returns an OBST instance with m keys whose alpha and beta
// weights are drawn uniformly from [0, maxW] with the given seed.
func RandomOBST(m, maxW int, seed int64) *recurrence.Instance {
	if m < 1 || maxW < 0 {
		panic("problems: RandomOBST needs m >= 1 and maxW >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	alpha := make([]int64, m+1)
	beta := make([]int64, m)
	for i := range alpha {
		alpha[i] = int64(rng.Intn(maxW + 1))
	}
	for i := range beta {
		beta[i] = int64(rng.Intn(maxW + 1))
	}
	in := OBST(alpha, beta)
	in.Name = fmt.Sprintf("obst-rand-m%d-s%d", m, seed)
	return in
}

// KnuthExampleOBST returns the worked example from Knuth's 1971 paper
// "Optimum binary search trees" scaled to integers: keys with
// probabilities proportional to the classic (beta; alpha) frequencies.
// Used as a golden test together with the brute-force optimum.
func KnuthExampleOBST() *recurrence.Instance {
	// Four keys; weights in units of 1/16 from the standard textbook
	// variant: beta = (4,2,6,3), alpha = (1,0,0,0,... ) -- we use a fixed
	// small example whose optimum is brute-force checkable.
	alpha := []int64{1, 2, 1, 0, 1}
	beta := []int64{4, 2, 6, 3}
	in := OBST(alpha, beta)
	in.Name = "obst-knuth-example"
	return in
}
