package sublineardp_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sublineardp"
	"sublineardp/internal/algebra"
	"sublineardp/internal/problems"
	"sublineardp/internal/seq"
	"sublineardp/internal/verify"
	"sublineardp/internal/workload"
)

// The cross-engine conformance suite: every registered engine — built-in
// or third-party via RegisterEngine — must, on every problem generator in
// internal/problems, produce the sequential optimum and a table that is
// the exact fixed point of recurrence (*) under the solver-independent
// verifier. This is the contract README documents for custom engines:
// register, run `go test -run TestEngineConformance`, and the engine is
// held to the same gate as the shipped ones.
//
// Engines registered by other tests as deliberate counterexamples (they
// exist to prove the registry dispatches, not to solve) are exempted by
// name here; a real engine must never be added to this map.
var nonconformingFixtures = map[string]string{
	"test-const":             "registry-dispatch fixture of solver_test.go; returns a constant",
	"counting-singleflight":  "cache-instrumentation fixture of solvercache_test.go; blocks until released",
	"counting-batch":         "cache-instrumentation fixture of solvercache_test.go; counts executions",
	"counting-stress":        "cache-instrumentation fixture of solvercache_test.go; counts executions",
	"counting-stress-cancel": "cache-instrumentation fixture of solvercache_test.go; blocks until released",
}

// conformanceInstances spans every generator family: the named problems
// (matrixchain, obst, triangulation), the shaped adversarial instances,
// and unstructured random ones. Sizes stay small enough for the O(n^4)
// dense engine while still crossing the banded engine's D = 2*ceil(sqrt
// n) boundary.
func conformanceInstances() []*sublineardp.Instance {
	return []*sublineardp.Instance{
		problems.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}),
		problems.RandomMatrixChain(24, 60, 3),
		problems.RandomOBST(18, 40, 5),
		problems.Triangulation(problems.RandomConvexPolygon(16, 1000, 7)),
		problems.Zigzag(21),
		problems.Balanced(16),
		problems.RandomShaped(15, 11),
		problems.RandomInstance(19, 80, 9),
	}
}

func TestEngineConformance(t *testing.T) {
	instances := conformanceInstances()
	type want struct {
		cost  sublineardp.Cost
		table *sublineardp.Table
	}
	wants := make([]want, len(instances))
	for i, in := range instances {
		res := seq.Solve(in)
		if rep := verify.Table(in, res.Table); !rep.OK() {
			t.Fatalf("reference table for %s fails verification: %v", in.Name, rep.Err())
		}
		wants[i] = want{cost: res.Cost(), table: res.Table}
	}

	ctx := context.Background()
	for _, name := range sublineardp.Engines() {
		if why, skip := nonconformingFixtures[name]; skip {
			t.Logf("engine %q exempt: %s", name, why)
			continue
		}
		t.Run(fmt.Sprintf("engine=%s", name), func(t *testing.T) {
			solver, err := sublineardp.NewSolver(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, in := range instances {
				sol, err := solver.Solve(ctx, in)
				if err != nil {
					if errors.Is(err, sublineardp.ErrConvexityRequired) && !in.Convex {
						// The Knuth-Yao engine's contract is to refuse
						// instances that do not declare convexity; on a
						// declared one (RandomOBST above) it must solve.
						continue
					}
					t.Fatalf("%s: %v", in.Name, err)
				}
				if sol.Cost() != wants[i].cost {
					t.Errorf("%s: cost %d, sequential optimum %d", in.Name, sol.Cost(), wants[i].cost)
				}
				if rep := verify.Table(in, sol.Table); !rep.OK() {
					t.Errorf("%s: table is not a fixed point of the recurrence: %v", in.Name, rep.Err())
				}
			}
		})
	}
}

// The engine × generator × semiring matrix: every registered engine must
// solve every generator family under every registered algebra to the
// same optimum as the generic sequential reference, and its table must
// be the exact fixed point of the recurrence under that algebra
// (verify.TableSemiring — solver-independent, like verify.Table). This
// is the contract that makes WithSemiring safe on any engine, and it
// runs against the registry, so a third-party algebra admitted by
// RegisterSemiring is held to it automatically.
//
// The matrix instances are smaller than conformanceInstances: the
// O(n^6)-work rytter engine appears |algebras| times here.
func TestEngineSemiringConformance(t *testing.T) {
	instances := []*sublineardp.Instance{
		problems.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}),
		problems.RandomOBST(12, 40, 5),
		problems.RandomShaped(13, 11),
		problems.RandomInstance(15, 80, 9),
	}
	ctx := context.Background()
	for _, algName := range sublineardp.Semirings() {
		sr, ok := sublineardp.LookupSemiring(algName)
		if !ok {
			t.Fatalf("registered semiring %q not resolvable", algName)
		}
		wants := make([]*seq.Result, len(instances))
		for i, in := range instances {
			res, err := seq.SolveSemiringCtx(ctx, in, sr)
			if err != nil {
				t.Fatal(err)
			}
			if rep := verify.TableSemiring(sr, in, res.Table); !rep.OK() {
				t.Fatalf("%s/%s: reference fails verification: %v", algName, in.Name, rep.Err())
			}
			wants[i] = res
		}
		for _, name := range sublineardp.Engines() {
			if _, skip := nonconformingFixtures[name]; skip {
				continue
			}
			t.Run(fmt.Sprintf("algebra=%s/engine=%s", algName, name), func(t *testing.T) {
				solver, err := sublineardp.NewSolver(name, sublineardp.WithSemiring(sr))
				if err != nil {
					t.Fatal(err)
				}
				for i, in := range instances {
					sol, err := solver.Solve(ctx, in)
					if err != nil {
						if errors.Is(err, sublineardp.ErrConvexityRequired) &&
							(!in.Convex || algName != "min-plus") {
							// Refusal is the conforming outcome off the
							// convex min-plus diagonal of the matrix.
							continue
						}
						t.Fatalf("%s: %v", in.Name, err)
					}
					if sol.Algebra != algName {
						t.Errorf("%s: solution algebra %q, want %q", in.Name, sol.Algebra, algName)
					}
					if sol.Cost() != wants[i].Cost() {
						t.Errorf("%s: optimum %d, sequential reference %d", in.Name, sol.Cost(), wants[i].Cost())
					}
					if rep := verify.TableSemiring(sr, in, sol.Table); !rep.OK() {
						t.Errorf("%s: table is not a fixed point under %s: %v", in.Name, algName, rep.Err())
					}
				}
			})
		}
	}
}

// The intrinsically non-min-plus families must route by their declared
// Instance.Algebra with no WithSemiring at all, through every engine.
func TestDeclaredAlgebraRoutesWithoutOverride(t *testing.T) {
	instances := []*sublineardp.Instance{
		problems.WorstCaseMatrixChain([]int{30, 35, 15, 5, 10, 20, 25}),
		workload.FeasibilityPlan(14, 3),
		workload.WorstCaseChain(12, 5),
	}
	ctx := context.Background()
	for _, in := range instances {
		want, err := seq.SolveSemiringCtx(ctx, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range sublineardp.Engines() {
			if _, skip := nonconformingFixtures[name]; skip {
				continue
			}
			solver := sublineardp.MustNewSolver(name)
			sol, err := solver.Solve(ctx, in)
			if err != nil {
				if errors.Is(err, sublineardp.ErrConvexityRequired) &&
					(!in.Convex || (in.Algebra != "" && in.Algebra != "min-plus")) {
					continue
				}
				t.Fatalf("%s/%s: %v", name, in.Name, err)
			}
			if sol.Algebra != in.Algebra {
				t.Errorf("%s/%s: algebra %q, want declared %q", name, in.Name, sol.Algebra, in.Algebra)
			}
			if sol.Cost() != want.Cost() {
				t.Errorf("%s/%s: optimum %d, reference %d", name, in.Name, sol.Cost(), want.Cost())
			}
			if rep := verify.TableSemiring(nil, in, sol.Table); !rep.OK() {
				t.Errorf("%s/%s: not a fixed point: %v", name, in.Name, rep.Err())
			}
		}
	}
}

// Every registered algebra must satisfy the semiring laws — part of the
// conformance contract: RegisterSemiring enforces it at admission, and
// this re-checks the registry as a whole (including the shipped
// algebras' specialised kernels agreeing with their scalar ops).
func TestRegisteredSemiringsSatisfyLaws(t *testing.T) {
	for _, name := range sublineardp.Semirings() {
		sr, ok := sublineardp.LookupSemiring(name)
		if !ok {
			t.Fatalf("registered semiring %q not resolvable", name)
		}
		if err := algebra.CheckLaws(sr); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// A custom engine that wraps a conforming solver must pass the suite
// end-to-end — the positive half of the third-party contract (test-const
// above is the negative half: a nonconforming engine is caught, so it
// must be exempted explicitly).
type delegatingEngine struct{ inner *sublineardp.Solver }

func (delegatingEngine) Name() string { return "test-conforming" }

func (e delegatingEngine) Solve(ctx context.Context, in *sublineardp.Instance, cfg *sublineardp.Config) (*sublineardp.Solution, error) {
	return e.inner.Solve(ctx, in)
}

func TestThirdPartyEngineMeetsConformance(t *testing.T) {
	eng := delegatingEngine{inner: sublineardp.MustNewSolver(sublineardp.EngineHLVBanded)}
	if err := sublineardp.RegisterEngine(eng); err != nil {
		t.Fatal(err)
	}
	solver := sublineardp.MustNewSolver("test-conforming")
	for _, in := range conformanceInstances() {
		sol, err := solver.Solve(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if rep := verify.Table(in, sol.Table); !rep.OK() {
			t.Errorf("%s: %v", in.Name, rep.Err())
		}
	}
}

// chainConformanceInstances spans every chain generator family: the
// three shipped problems (each declaring its own algebra), plus neutral
// random chains — full-prefix and windowed — that are lawful under any
// registered algebra. Sizes cross the LLP engine's worker-interleave
// boundaries.
func chainConformanceInstances() []*sublineardp.Chain {
	xs, ys := problems.RandomSeries(40, 3)
	s, e, w := problems.RandomJobs(37, 5)
	return []*sublineardp.Chain{
		problems.SegmentedLeastSquares(xs, ys, 500),
		problems.IntervalScheduling(s, e, w),
		problems.SubsetSum(53, []int64{4, 9, 13}),
		problems.RandomChain(45, 60, 0, 7),
		problems.RandomChain(45, 60, 6, 8),
	}
}

// The chain engine × generator conformance suite: every registered
// chain engine must, on every chain generator family, produce the
// sequential reference's vector bitwise (not just the same optimum —
// the LLP acceptance bar) and a vector that is the exact fixed point of
// the chain recurrence under the solver-independent verify.Chain.
func TestChainEngineConformance(t *testing.T) {
	chains := chainConformanceInstances()
	wants := make([]*seq.ChainResult, len(chains))
	for i, c := range chains {
		res, err := seq.SolveChainCtx(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		if rep := verify.Chain(nil, c, res.Values); !rep.OK() {
			t.Fatalf("reference vector for %s fails verification: %v", c.Name, rep.Err())
		}
		wants[i] = res
	}

	ctx := context.Background()
	for _, name := range sublineardp.ChainEngines() {
		t.Run(fmt.Sprintf("engine=%s", name), func(t *testing.T) {
			for _, workers := range []int{1, 3} {
				solver, err := sublineardp.NewChainSolver(name, sublineardp.WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				for i, c := range chains {
					sol, err := solver.Solve(ctx, c)
					if err != nil {
						t.Fatalf("%s: %v", c.Name, err)
					}
					if sol.Algebra != c.Algebra && !(c.Algebra == "" && sol.Algebra == "min-plus") {
						t.Errorf("%s: algebra %q, want declared %q", c.Name, sol.Algebra, c.Algebra)
					}
					for j := 0; j <= c.N; j++ {
						if sol.Values.At(j) != wants[i].Values.At(j) {
							t.Fatalf("%s workers=%d: c(%d) = %d, sequential %d",
								c.Name, workers, j, sol.Values.At(j), wants[i].Values.At(j))
						}
					}
					if sol.Work != wants[i].Work {
						t.Errorf("%s workers=%d: work %d, sequential %d — not work-efficient",
							c.Name, workers, sol.Work, wants[i].Work)
					}
					if rep := verify.Chain(nil, c, sol.Values); !rep.OK() {
						t.Errorf("%s: vector is not a fixed point: %v", c.Name, rep.Err())
					}
				}
			}
		})
	}
}

// The chain engine × generator × semiring matrix: every registered
// chain engine must solve the neutral chain generators under every
// registered algebra bitwise to the generic sequential reference, with
// the fixed point certified by verify.Chain under that algebra. The
// shipped families run under their declared algebras above; the neutral
// random chains here make the matrix total, including third-party
// algebras admitted by RegisterSemiring.
func TestChainEngineSemiringConformance(t *testing.T) {
	chains := []*sublineardp.Chain{
		problems.RandomChain(31, 50, 0, 21),
		problems.RandomChain(34, 50, 5, 22),
	}
	ctx := context.Background()
	for _, algName := range sublineardp.Semirings() {
		sr, ok := sublineardp.LookupSemiring(algName)
		if !ok {
			t.Fatalf("registered semiring %q not resolvable", algName)
		}
		wants := make([]*seq.ChainResult, len(chains))
		for i, c := range chains {
			res, err := seq.SolveChainSemiringCtx(ctx, c, sr)
			if err != nil {
				t.Fatal(err)
			}
			if rep := verify.Chain(sr, c, res.Values); !rep.OK() {
				t.Fatalf("%s/%s: reference fails verification: %v", algName, c.Name, rep.Err())
			}
			wants[i] = res
		}
		for _, name := range sublineardp.ChainEngines() {
			t.Run(fmt.Sprintf("algebra=%s/engine=%s", algName, name), func(t *testing.T) {
				solver, err := sublineardp.NewChainSolver(name, sublineardp.WithSemiring(sr), sublineardp.WithWorkers(3))
				if err != nil {
					t.Fatal(err)
				}
				for i, c := range chains {
					sol, err := solver.Solve(ctx, c)
					if err != nil {
						t.Fatalf("%s: %v", c.Name, err)
					}
					if sol.Algebra != algName {
						t.Errorf("%s: solution algebra %q, want %q", c.Name, sol.Algebra, algName)
					}
					for j := 0; j <= c.N; j++ {
						if sol.Values.At(j) != wants[i].Values.At(j) {
							t.Fatalf("%s: c(%d) = %d, sequential %d", c.Name, j, sol.Values.At(j), wants[i].Values.At(j))
						}
					}
					if rep := verify.Chain(sr, c, sol.Values); !rep.OK() {
						t.Errorf("%s: vector is not a fixed point under %s: %v", c.Name, algName, rep.Err())
					}
				}
			})
		}
	}
}

// The pruned-engine conformance matrix: blocked-ky × every declared-
// convex generator family × the tile-edge sweep must be bitwise
// identical — values AND splits — to the unpruned recording blocked
// engine and the sequential reference. This is the wall the O(n^2)
// claim hides behind: a pruning bug cannot shave work without moving a
// split or a value, and either moves trips this matrix.
func TestKnuthYaoConformanceMatrix(t *testing.T) {
	instances := []*sublineardp.Instance{
		problems.KnuthExampleOBST(),
		problems.RandomOBST(18, 40, 5),
		problems.RandomOBST(33, 70, 6),
		problems.RandomConvex(29, 15, 7),
		problems.RandomConvex(64, 9, 8),
	}
	ctx := context.Background()
	for _, in := range instances {
		if !in.Convex {
			t.Fatalf("%s: matrix fixture must declare Convex", in.Name)
		}
		want := sublineardp.SolveSequential(in)
		for _, tile := range []int{0, 1, 4, 7, 64} {
			pruned, err := sublineardp.MustNewSolver(sublineardp.EngineBlockedKY,
				sublineardp.WithTileSize(tile)).Solve(ctx, in)
			if err != nil {
				t.Fatalf("%s tile=%d: %v", in.Name, tile, err)
			}
			unpruned, err := sublineardp.MustNewSolver(sublineardp.EngineBlocked,
				sublineardp.WithTileSize(tile), sublineardp.WithSplits(true)).Solve(ctx, in)
			if err != nil {
				t.Fatalf("%s tile=%d: %v", in.Name, tile, err)
			}
			for i := 0; i <= in.N; i++ {
				for j := i + 1; j <= in.N; j++ {
					if g, e := pruned.Table.At(i, j), unpruned.Table.At(i, j); g != e {
						t.Fatalf("%s tile=%d: value(%d,%d) = %d, unpruned %d", in.Name, tile, i, j, g, e)
					}
					if j >= i+2 {
						if g, e := pruned.Split(i, j), unpruned.Split(i, j); g != e {
							t.Fatalf("%s tile=%d: split(%d,%d) = %d, unpruned %d", in.Name, tile, i, j, g, e)
						}
						if g, e := pruned.Split(i, j), want.Split(i, j); g != e {
							t.Fatalf("%s tile=%d: split(%d,%d) = %d, sequential %d", in.Name, tile, i, j, g, e)
						}
					}
				}
			}
			if rep := verify.Table(in, pruned.Table); !rep.OK() {
				t.Errorf("%s tile=%d: not a fixed point: %v", in.Name, tile, rep.Err())
			}
			tr, err := pruned.Tree()
			if err != nil {
				t.Fatalf("%s tile=%d: Tree: %v", in.Name, tile, err)
			}
			if err := verify.Tree(in, pruned.Table, tr); err != nil {
				t.Errorf("%s tile=%d: %v", in.Name, tile, err)
			}
		}
	}
}

// The negative half of the routing contract: an instance that does not
// declare convexity must never reach the pruned engine — not through
// auto, not through WithConvexity — and a declared one must route to it
// through auto at every parallel tier.
func TestConvexityRouting(t *testing.T) {
	ctx := context.Background()

	// auto on a non-convex instance keeps its size-tier choice.
	chain := problems.RandomMatrixChain(100, 60, 2)
	sol, err := sublineardp.MustNewSolver(sublineardp.EngineAuto).Solve(ctx, chain)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Engine == sublineardp.EngineBlockedKY {
		t.Fatalf("auto routed non-convex %s to the pruned engine", chain.Name)
	}

	// auto on declared-convex min-plus prefers the pruned engine on both
	// parallel tiers (mid and large), and keeps sequential below cutoff.
	for _, n := range []int{100, 300} {
		in := problems.RandomOBST(n, 50, int64(n))
		sol, err := sublineardp.MustNewSolver(sublineardp.EngineAuto).Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Engine != sublineardp.EngineBlockedKY {
			t.Errorf("auto(%s, n=%d) chose %q, want %q", in.Name, n, sol.Engine, sublineardp.EngineBlockedKY)
		}
	}
	small := problems.RandomOBST(12, 50, 3)
	if sol, err = sublineardp.MustNewSolver(sublineardp.EngineAuto).Solve(ctx, small); err != nil {
		t.Fatal(err)
	}
	if sol.Engine != sublineardp.EngineSequential {
		t.Errorf("auto below cutoff chose %q, want sequential", sol.Engine)
	}

	// WithConvexity forces the pruned engine at every size...
	if sol, err = sublineardp.MustNewSolver(sublineardp.EngineAuto,
		sublineardp.WithConvexity(true)).Solve(ctx, small); err != nil {
		t.Fatal(err)
	}
	if sol.Engine != sublineardp.EngineBlockedKY {
		t.Errorf("auto+WithConvexity chose %q, want %q", sol.Engine, sublineardp.EngineBlockedKY)
	}

	// ...and is a contract on every engine: undeclared instances fail
	// with ErrConvexityRequired before any engine runs, as does a
	// semiring override off min-plus.
	for _, engine := range []string{sublineardp.EngineAuto, sublineardp.EngineSequential, sublineardp.EngineBlocked} {
		_, err := sublineardp.MustNewSolver(engine, sublineardp.WithConvexity(true)).Solve(ctx, chain)
		if !errors.Is(err, sublineardp.ErrConvexityRequired) {
			t.Errorf("%s+WithConvexity on non-convex: err = %v, want ErrConvexityRequired", engine, err)
		}
	}
	obst := problems.RandomOBST(20, 50, 4)
	_, err = sublineardp.MustNewSolver(sublineardp.EngineBlockedKY,
		sublineardp.WithSemiring(sublineardp.MaxPlus)).Solve(ctx, obst)
	if !errors.Is(err, sublineardp.ErrConvexityRequired) {
		t.Errorf("blocked-ky under max-plus: err = %v, want ErrConvexityRequired", err)
	}
	_, err = sublineardp.MustNewSolver(sublineardp.EngineBlockedKY).Solve(ctx, chain)
	if !errors.Is(err, sublineardp.ErrConvexityRequired) {
		t.Errorf("blocked-ky on non-convex: err = %v, want ErrConvexityRequired", err)
	}
}

// The pipelined-engine conformance matrix: blocked-pipe × every
// registered algebra × the tile-edge sweep must be bitwise identical —
// values AND recorded splits — to the fenced blocked engine, with the
// fixed point certified under the algebra and the scheduler counters
// proving the run was barrier-free. The dependency-counter schedule has
// no way to cheat this: executing any tile before its last input is
// final changes a fold's operand sequence, and that moves a value or a
// split somewhere in the table.
func TestPipelinedConformanceMatrix(t *testing.T) {
	instances := []*sublineardp.Instance{
		problems.RandomMatrixChain(26, 60, 11),
		problems.RandomInstance(33, 80, 12),
		problems.Zigzag(23),
	}
	ctx := context.Background()
	for _, algName := range sublineardp.Semirings() {
		sr, ok := sublineardp.LookupSemiring(algName)
		if !ok {
			t.Fatalf("registered semiring %q not resolvable", algName)
		}
		for _, in := range instances {
			for _, tile := range []int{1, 4, 7, 64} {
				piped, err := sublineardp.MustNewSolver(sublineardp.EngineBlockedPipe,
					sublineardp.WithTileSize(tile), sublineardp.WithSemiring(sr),
					sublineardp.WithSplits(true)).Solve(ctx, in)
				if err != nil {
					t.Fatalf("%s/%s tile=%d: pipe: %v", algName, in.Name, tile, err)
				}
				fenced, err := sublineardp.MustNewSolver(sublineardp.EngineBlocked,
					sublineardp.WithTileSize(tile), sublineardp.WithSemiring(sr),
					sublineardp.WithSplits(true)).Solve(ctx, in)
				if err != nil {
					t.Fatalf("%s/%s tile=%d: blocked: %v", algName, in.Name, tile, err)
				}
				pd, fd := piped.Table.Data(), fenced.Table.Data()
				for c := range pd {
					if pd[c] != fd[c] {
						t.Fatalf("%s/%s tile=%d: pipelined table diverges from blocked bitwise: %v",
							algName, in.Name, tile, piped.Table.Diff(fenced.Table, 3))
					}
				}
				for i := 0; i <= in.N; i++ {
					for j := i + 2; j <= in.N; j++ {
						if g, e := piped.Split(i, j), fenced.Split(i, j); g != e {
							t.Fatalf("%s/%s tile=%d: split(%d,%d) = %d, blocked %d",
								algName, in.Name, tile, i, j, g, e)
						}
					}
				}
				if piped.Stats.Barriers != 0 {
					t.Errorf("%s/%s tile=%d: pipelined solve crossed %d barriers, want 0",
						algName, in.Name, tile, piped.Stats.Barriers)
				}
				if piped.Stats.Tasks == 0 {
					t.Errorf("%s/%s tile=%d: pipelined solve reports zero scheduler tasks",
						algName, in.Name, tile)
				}
				if rep := verify.TableSemiring(sr, in, piped.Table); !rep.OK() {
					t.Errorf("%s/%s tile=%d: table is not a fixed point: %v",
						algName, in.Name, tile, rep.Err())
				}
			}
		}
	}
}
