package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sublineardp"
	"sublineardp/internal/problems"
)

// -update refreshes the golden fixtures. The fixtures freeze the wire
// format: a diff here is an API break and must be deliberate.
var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// goldenCases are the frozen request/response exemplars, one per kind
// plus the serving-specific response variants.
func goldenCases() map[string]any {
	return map[string]any{
		"request_matrixchain.json": &Request{
			ID:   "req-1",
			Kind: KindMatrixChain,
			Dims: []int{30, 35, 15, 5, 10, 20, 25},
			Options: Options{
				Engine: "hlv-banded", Termination: "w-stable", BandRadius: 6,
			},
			WantTree: true,
		},
		"request_obst.json": &Request{
			ID:    "req-2",
			Kind:  KindOBST,
			Alpha: []int64{1, 2, 1, 0, 1},
			Beta:  []int64{4, 2, 6, 3},
		},
		"request_triangulation.json": &Request{
			Kind: KindTriangulation,
			Points: []Point{
				{X: 1000, Y: 0}, {X: 309, Y: 951}, {X: -809, Y: 588},
				{X: -809, Y: -588}, {X: 309, Y: -951},
			},
			Options: Options{Engine: "sequential"},
		},
		"request_wtriangulation.json": &Request{
			Kind:    KindWTriangulation,
			Weights: []int64{30, 35, 15, 5, 10, 20, 25},
			Options: Options{Mode: "chaotic", MaxIterations: 12},
		},
		"response_solved.json": &Response{
			ID: "req-1", Kind: KindMatrixChain, N: 6, Engine: "hlv-banded",
			Cost: 15125, TableDigest: "6a0e2e343d2a1c47a2b95245b1c0ab05e5b35058ee3b93dcbeb18f9d7154f4bc",
			Iterations: 5, StoppedEarly: true, BandRadius: 6,
			Tree: "((1 . (2 . 3)) . ((4 . 5) . 6))", ElapsedMicros: 1234,
		},
		"response_cached.json": &Response{
			ID: "req-9", Kind: KindOBST, N: 5, Engine: "sequential",
			Cost: 42, TableDigest: "1f2a7c3fcdd9d0b57c2b578b0ba4eddc66c2a31ba4fa40ad0cd1d14c9b4eeb95",
			Cached: true, ElapsedMicros: 11,
		},
		"response_coalesced.json": &Response{
			Kind: KindMatrixChain, N: 64, Engine: "hlv-banded",
			Cost: 99481, TableDigest: "0ab4d19933b09c9fe36a9287ba1cbd02e85c1c0b06158be64b2b0207ec2356f8",
			Iterations: 9, Coalesced: true, ElapsedMicros: 52017,
		},
		"request_worstchain.json": &Request{
			ID:   "req-w1",
			Kind: KindWorstChain,
			Dims: []int{30, 35, 15, 5, 10, 20, 25},
		},
		"request_boolsplit.json": &Request{
			ID:        "req-b1",
			Kind:      KindBoolSplit,
			Count:     6,
			Forbidden: []Span{{0, 3}, {2, 5}},
			Options:   Options{Engine: "hlv-banded"},
		},
		"request_semiring_override.json": &Request{
			Kind:    KindMatrixChain,
			Dims:    []int{2, 3, 4, 5},
			Options: Options{Semiring: "max-plus"},
		},
		"response_maxplus.json": &Response{
			ID: "req-w1", Kind: KindWorstChain, N: 6, Engine: "hlv-banded",
			Cost: 58000, TableDigest: "9c11361ff2a3fb415ad88d8f4329331ea0f1c4ab5a8b1a4ca41d1f84b9e01a02",
			Iterations: 5, Algebra: "max-plus", ElapsedMicros: 321,
		},
		"response_boolplan.json": &Response{
			ID: "req-b1", Kind: KindBoolSplit, N: 6, Engine: "sequential",
			Cost: 1, TableDigest: "5511361ff2a3fb415ad88d8f4329331ea0f1c4ab5a8b1a4ca41d1f84b9e01a02",
			Algebra: "bool-plan", Cached: true, ElapsedMicros: 17,
		},
		"error_bad_request.json": &ErrorBody{
			Error: `wire: obst needs len(alpha) == len(beta)+1, got 2 and 4`, Code: 400,
		},
		"request_segls.json": &Request{
			ID:   "req-c1",
			Kind: KindSegLS,
			Points: []Point{
				{X: 0, Y: 0}, {X: 1, Y: 10}, {X: 2, Y: 20}, {X: 3, Y: 18}, {X: 4, Y: 16},
			},
			Penalty:  2500,
			Options:  Options{Engine: "llp", Workers: 4},
			WantTree: true,
		},
		"request_wis.json": &Request{
			ID:      "req-c2",
			Kind:    KindWIS,
			Starts:  []int64{1, 3, 0, 5, 3, 5, 6, 8},
			Ends:    []int64{4, 5, 6, 7, 9, 9, 10, 11},
			Weights: []int64{3, 2, 5, 2, 4, 6, 2, 4},
		},
		"request_subsetsum.json": &Request{
			ID:      "req-c3",
			Kind:    KindSubsetSum,
			Target:  30,
			Items:   []int64{4, 9, 13},
			Options: Options{Engine: "sequential"},
		},
		"response_chain.json": &Response{
			ID: "req-c1", Kind: KindSegLS, N: 5, Engine: "llp",
			Cost: 7500, TableDigest: "3c0e2e343d2a1c47a2b95245b1c0ab05e5b35058ee3b93dcbeb18f9d7154f4bc",
			Iterations: 2, Tree: "0 2 5", ElapsedMicros: 87,
		},
		"request_chain_window.json": &Request{
			ID:          "req-c4",
			Kind:        KindWIS,
			Starts:      []int64{1, 3, 0, 5, 3, 5, 6, 8},
			Ends:        []int64{4, 5, 6, 7, 9, 9, 10, 11},
			Weights:     []int64{3, 2, 5, 2, 4, 6, 2, 4},
			ChainWindow: 3,
		},
		"request_return_splits.json": &Request{
			ID:           "req-r1",
			Kind:         KindMatrixChain,
			Dims:         []int{30, 35, 15, 5, 10, 20, 25},
			Options:      Options{Engine: "blocked"},
			ReturnSplits: true,
		},
		"response_reconstruction.json": &Response{
			ID: "req-r1", Kind: KindMatrixChain, N: 6, Engine: "blocked",
			Cost: 15125, TableDigest: "6a0e2e343d2a1c47a2b95245b1c0ab05e5b35058ee3b93dcbeb18f9d7154f4bc",
			ElapsedMicros: 412,
			Reconstruction: &Reconstruction{
				Tree:   "((1 . (2 . 3)) . ((4 . 5) . 6))",
				Digest: "b1946ac92492d2347c6235b4d2611184b1946ac92492d2347c6235b4d2611184",
			},
		},
		"response_chain_path.json": &Response{
			ID: "req-c1", Kind: KindSegLS, N: 5, Engine: "llp",
			Cost: 7500, TableDigest: "3c0e2e343d2a1c47a2b95245b1c0ab05e5b35058ee3b93dcbeb18f9d7154f4bc",
			ElapsedMicros: 93,
			Reconstruction: &Reconstruction{
				Path:   []int{0, 2, 5},
				Digest: "c2946ac92492d2347c6235b4d2611184b1946ac92492d2347c6235b4d2611184",
			},
		},
	}
}

func TestGoldenWireFormat(t *testing.T) {
	for name, v := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", name)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/wire -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
			// Decode must round-trip back to the identical value: the
			// format carries everything the type does.
			back := reflect.New(reflect.TypeOf(v).Elem()).Interface()
			if err := json.Unmarshal(want, back); err != nil {
				t.Fatalf("golden file does not decode: %v", err)
			}
			if !reflect.DeepEqual(v, back) {
				t.Errorf("decode(%s) != original:\n got %+v\nwant %+v", name, back, v)
			}
		})
	}
}

func TestRequestValidate(t *testing.T) {
	bad := []Request{
		{},
		{Kind: "povray"},
		{Kind: KindMatrixChain, Dims: []int{5}},
		{Kind: KindMatrixChain, Dims: []int{5, 0, 3}},
		{Kind: KindOBST, Alpha: []int64{1, 1}, Beta: []int64{1, 1, 1, 1}},
		{Kind: KindOBST, Alpha: []int64{1, -2}, Beta: []int64{1}},
		{Kind: KindTriangulation, Points: []Point{{X: 1}, {Y: 1}}},
		{Kind: KindWTriangulation, Weights: []int64{3, 0, 3}},
		{Kind: KindMatrixChain, Dims: []int{2, 3, 4}, Options: Options{Mode: "frantic"}},
		{Kind: KindMatrixChain, Dims: []int{2, 3, 4}, Options: Options{Termination: "never"}},
		{Kind: KindMatrixChain, Dims: []int{2, 3, 4}, Options: Options{Semiring: "tropical?"}},
		{Kind: KindWorstChain, Dims: []int{5}},
		{Kind: KindWorstChain, Dims: []int{5, 0, 3}},
		{Kind: KindBoolSplit},
		{Kind: KindBoolSplit, Count: 4, Forbidden: []Span{{2, 2}}},
		{Kind: KindBoolSplit, Count: 4, Forbidden: []Span{{-1, 2}}},
		{Kind: KindBoolSplit, Count: 4, Forbidden: []Span{{1, 9}}},
		{Kind: KindSegLS},
		{Kind: KindSegLS, Points: []Point{{X: 0}, {X: 0}}},
		{Kind: KindSegLS, Points: []Point{{X: 0}, {X: 1}}, Penalty: -5},
		{Kind: KindWIS},
		{Kind: KindWIS, Starts: []int64{1, 2}, Ends: []int64{3}, Weights: []int64{1, 1}},
		{Kind: KindWIS, Starts: []int64{5}, Ends: []int64{5}, Weights: []int64{1}},
		{Kind: KindWIS, Starts: []int64{1}, Ends: []int64{2}, Weights: []int64{-1}},
		{Kind: KindSubsetSum, Items: []int64{3}},
		{Kind: KindSubsetSum, Target: 9},
		{Kind: KindSubsetSum, Target: 9, Items: []int64{3, 0}},
	}
	for i, r := range bad {
		if err := r.Validate(0); err == nil {
			t.Errorf("case %d (%+v): Validate accepted a malformed request", i, r)
		}
	}
	ok := Request{Kind: KindMatrixChain, Dims: []int{30, 35, 15, 5, 10, 20, 25}}
	if err := ok.Validate(0); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	if err := ok.Validate(5); err == nil {
		t.Error("Validate(maxN=5) accepted an n=6 instance")
	}
}

func TestRequestInstanceMatchesDirectConstruction(t *testing.T) {
	cases := []struct {
		req    Request
		direct func() *sublineardp.Instance
	}{
		{
			Request{Kind: KindMatrixChain, Dims: []int{30, 35, 15, 5, 10, 20, 25}},
			func() *sublineardp.Instance { return problems.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}) },
		},
		{
			Request{Kind: KindOBST, Alpha: []int64{1, 2, 1, 0, 1}, Beta: []int64{4, 2, 6, 3}},
			func() *sublineardp.Instance {
				return problems.OBST([]int64{1, 2, 1, 0, 1}, []int64{4, 2, 6, 3})
			},
		},
		{
			Request{Kind: KindWTriangulation, Weights: []int64{3, 7, 2, 9}},
			func() *sublineardp.Instance { return problems.WeightedTriangulation([]int64{3, 7, 2, 9}) },
		},
		{
			Request{Kind: KindTriangulation, Points: []Point{{1000, 0}, {0, 1000}, {-1000, 0}, {0, -1000}}},
			func() *sublineardp.Instance {
				return problems.Triangulation([]problems.Point{
					{X: 1000, Y: 0}, {X: 0, Y: 1000}, {X: -1000, Y: 0}, {X: 0, Y: -1000}})
			},
		},
		{
			Request{Kind: KindWorstChain, Dims: []int{30, 35, 15, 5, 10, 20, 25}},
			func() *sublineardp.Instance {
				return problems.WorstCaseMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
			},
		},
		{
			Request{Kind: KindBoolSplit, Count: 6, Forbidden: []Span{{0, 3}, {2, 5}}},
			func() *sublineardp.Instance {
				return problems.ForbiddenSplits(6, [][2]int{{0, 3}, {2, 5}})
			},
		},
	}
	solver := sublineardp.MustNewSolver(sublineardp.EngineSequential)
	for _, tc := range cases {
		t.Run(tc.req.Kind, func(t *testing.T) {
			if err := tc.req.Validate(0); err != nil {
				t.Fatal(err)
			}
			decoded, err := tc.req.Instance()
			if err != nil {
				t.Fatal(err)
			}
			direct := tc.direct()
			dc, ok1 := decoded.Canonical()
			cc, ok2 := direct.Canonical()
			if !ok1 || !ok2 {
				t.Fatal("wire-built instance not canonicalisable")
			}
			if !bytes.Equal(dc, cc) {
				t.Fatal("wire-built instance canonicalises differently from the direct constructor")
			}
			a, err := solver.Solve(context.Background(), decoded)
			if err != nil {
				t.Fatal(err)
			}
			b, err := solver.Solve(context.Background(), direct)
			if err != nil {
				t.Fatal(err)
			}
			if TableDigest(a.Table) != TableDigest(b.Table) {
				t.Fatal("wire-built instance solves to a different table")
			}
		})
	}
}

func TestChainRequestInstanceMatchesDirectConstruction(t *testing.T) {
	cases := []struct {
		req    Request
		direct func() *sublineardp.Chain
	}{
		{
			Request{Kind: KindSegLS, Penalty: 2500,
				Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 10}, {X: 2, Y: 20}, {X: 3, Y: 18}, {X: 4, Y: 16}}},
			func() *sublineardp.Chain {
				return problems.SegmentedLeastSquares(
					[]int64{0, 1, 2, 3, 4}, []int64{0, 10, 20, 18, 16}, 2500)
			},
		},
		{
			Request{Kind: KindWIS,
				Starts:  []int64{1, 3, 0, 5, 3, 5, 6, 8},
				Ends:    []int64{4, 5, 6, 7, 9, 9, 10, 11},
				Weights: []int64{3, 2, 5, 2, 4, 6, 2, 4}},
			func() *sublineardp.Chain {
				return problems.IntervalScheduling(
					[]int64{1, 3, 0, 5, 3, 5, 6, 8},
					[]int64{4, 5, 6, 7, 9, 9, 10, 11},
					[]int64{3, 2, 5, 2, 4, 6, 2, 4})
			},
		},
		{
			Request{Kind: KindSubsetSum, Target: 30, Items: []int64{4, 9, 13}},
			func() *sublineardp.Chain { return problems.SubsetSum(30, []int64{4, 9, 13}) },
		},
	}
	solver := sublineardp.MustNewChainSolver(sublineardp.ChainEngineSequential)
	for _, tc := range cases {
		t.Run(tc.req.Kind, func(t *testing.T) {
			if !IsChainKind(tc.req.Kind) {
				t.Fatalf("IsChainKind(%q) = false", tc.req.Kind)
			}
			if err := tc.req.Validate(0); err != nil {
				t.Fatal(err)
			}
			if _, err := tc.req.Instance(); err == nil {
				t.Fatal("Instance() accepted a chain kind")
			}
			decoded, err := tc.req.ChainInstance()
			if err != nil {
				t.Fatal(err)
			}
			direct := tc.direct()
			dc, ok1 := decoded.Canonical()
			cc, ok2 := direct.Canonical()
			if !ok1 || !ok2 {
				t.Fatal("wire-built chain not canonicalisable")
			}
			if !bytes.Equal(dc, cc) {
				t.Fatal("wire-built chain canonicalises differently from the direct constructor")
			}
			a, err := solver.Solve(context.Background(), decoded)
			if err != nil {
				t.Fatal(err)
			}
			b, err := solver.Solve(context.Background(), direct)
			if err != nil {
				t.Fatal(err)
			}
			if VectorDigest(a.Values) != VectorDigest(b.Values) {
				t.Fatal("wire-built chain solves to a different value vector")
			}
			resp := NewChainResponse(&tc.req, a)
			if resp.Kind != tc.req.Kind || resp.N != decoded.N || resp.TableDigest != VectorDigest(a.Values) {
				t.Fatalf("NewChainResponse mismatch: %+v", resp)
			}
		})
	}
}

func TestChainResponsePath(t *testing.T) {
	req := Request{Kind: KindSegLS, Penalty: 2500, WantTree: true,
		Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 5}, {X: 2, Y: 10}, {X: 3, Y: 15}}}
	if err := req.Validate(0); err != nil {
		t.Fatal(err)
	}
	c, err := req.ChainInstance()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sublineardp.MustNewChainSolver("").Solve(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewChainResponse(&req, sol)
	if resp.Tree != "0 4" {
		t.Fatalf("collinear points produced breakpoints %q, want \"0 4\"", resp.Tree)
	}
}

// chain_window is part of the problem statement: Validate gates it to
// chain kinds and non-negative values, and ChainInstance threads it as
// a tightening-only constraint — a window wider than the constructor's
// would admit candidates the family's F never defined.
func TestChainWindowValidateAndThreading(t *testing.T) {
	wis := Request{Kind: KindWIS,
		Starts: []int64{1, 3, 0, 5}, Ends: []int64{4, 5, 6, 7}, Weights: []int64{3, 2, 5, 2}}

	bad := wis
	bad.ChainWindow = -2
	if err := bad.Validate(0); err == nil {
		t.Error("negative chain_window accepted")
	}
	interval := Request{Kind: KindMatrixChain, Dims: []int{2, 3, 4}, ChainWindow: 2}
	if err := interval.Validate(0); err == nil {
		t.Error("chain_window on an interval kind accepted")
	}

	// Full-prefix constructor (WIS): any positive window tightens.
	wis.ChainWindow = 3
	if err := wis.Validate(0); err != nil {
		t.Fatal(err)
	}
	c, err := wis.ChainInstance()
	if err != nil {
		t.Fatal(err)
	}
	if c.Window != 3 {
		t.Errorf("wis chain_window=3: Window = %d, want 3", c.Window)
	}

	// Positive constructor window (subsetsum: max item = 13): a narrower
	// request window tightens, a wider one is ignored.
	ss := Request{Kind: KindSubsetSum, Target: 30, Items: []int64{4, 9, 13}}
	ssc, err := ss.ChainInstance()
	if err != nil {
		t.Fatal(err)
	}
	base := ssc.Window
	if base <= 0 {
		t.Fatalf("subsetsum constructor window = %d, want positive", base)
	}
	narrow := ss
	narrow.ChainWindow = base - 1
	if nc, err := narrow.ChainInstance(); err != nil || nc.Window != base-1 {
		t.Errorf("narrow chain_window: Window = %d (err %v), want %d", nc.Window, err, base-1)
	}
	wide := ss
	wide.ChainWindow = base + 10
	if wc, err := wide.ChainInstance(); err != nil || wc.Window != base {
		t.Errorf("wide chain_window widened the constructor window: Window = %d (err %v), want %d",
			wc.Window, err, base)
	}

	// The tightened window changes the canonical encoding, so the two
	// requests can never share a cache entry.
	a, _ := wis.ChainInstance()
	wis.ChainWindow = 0
	b, _ := wis.ChainInstance()
	ca, _ := a.Canonical()
	cb, _ := b.Canonical()
	if bytes.Equal(ca, cb) {
		t.Error("windowed and full-prefix chains share a canonical encoding")
	}
}

// return_splits on an interval kind adds the reconstruction section:
// the served tree must match a direct solve, carry the matching digest,
// and leave the frozen legacy fields untouched.
func TestResponseReconstructionTree(t *testing.T) {
	req := Request{Kind: KindMatrixChain, Dims: []int{30, 35, 15, 5, 10, 20, 25},
		ReturnSplits: true, Options: Options{Engine: "blocked"}}
	if err := req.Validate(0); err != nil {
		t.Fatal(err)
	}
	in, err := req.Instance()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := req.SolverOptions()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sublineardp.MustNewSolver(req.Engine(), opts...).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewResponse(&req, sol)
	if resp.Reconstruction == nil {
		t.Fatal("return_splits produced no reconstruction section")
	}
	want := sublineardp.SolveSequential(in).Tree()
	if resp.Reconstruction.Tree != want.Encode() {
		t.Errorf("served tree %q, direct solve %q", resp.Reconstruction.Tree, want.Encode())
	}
	if resp.Reconstruction.Digest != TreeDigest(want) {
		t.Errorf("served tree digest %q, want %q", resp.Reconstruction.Digest, TreeDigest(want))
	}
	if resp.Reconstruction.Error != "" || resp.Reconstruction.Path != nil {
		t.Errorf("interval reconstruction carries stray fields: %+v", resp.Reconstruction)
	}
	if resp.Tree != "" {
		t.Errorf("return_splits leaked into the legacy want_tree field: %q", resp.Tree)
	}

	// An unreachable root reports the error in-band instead of failing
	// the whole response.
	walls := Request{Kind: KindBoolSplit, Count: 4,
		Forbidden: []Span{{0, 2}, {1, 3}, {2, 4}}, ReturnSplits: true}
	win, err := walls.Instance()
	if err != nil {
		t.Fatal(err)
	}
	wsol, err := sublineardp.MustNewSolver(walls.Engine()).Solve(context.Background(), win)
	if err != nil {
		t.Fatal(err)
	}
	wresp := NewResponse(&walls, wsol)
	if wresp.Reconstruction == nil || wresp.Reconstruction.Error == "" {
		t.Fatalf("infeasible instance: reconstruction = %+v, want in-band error", wresp.Reconstruction)
	}
	if wresp.Reconstruction.Tree != "" || wresp.Reconstruction.Digest != "" {
		t.Errorf("infeasible instance fabricated a tree: %+v", wresp.Reconstruction)
	}
}

// return_splits on a chain kind serves the breakpoint path with its own
// digest, separate from the legacy want_tree text rendering.
func TestChainResponseReconstructionPath(t *testing.T) {
	req := Request{Kind: KindSegLS, Penalty: 2500, ReturnSplits: true,
		Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 5}, {X: 2, Y: 10}, {X: 3, Y: 15}}}
	if err := req.Validate(0); err != nil {
		t.Fatal(err)
	}
	c, err := req.ChainInstance()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sublineardp.MustNewChainSolver("").Solve(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewChainResponse(&req, sol)
	if resp.Reconstruction == nil {
		t.Fatal("return_splits produced no reconstruction section")
	}
	want, err := sol.Path()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Reconstruction.Path, want) {
		t.Errorf("served path %v, direct %v", resp.Reconstruction.Path, want)
	}
	if resp.Reconstruction.Digest != PathDigest(want) {
		t.Errorf("served path digest %q, want %q", resp.Reconstruction.Digest, PathDigest(want))
	}
	if resp.Tree != "" {
		t.Errorf("return_splits leaked into the legacy want_tree field: %q", resp.Tree)
	}
}

// The three digest families are domain-separated: identical underlying
// bytes can never collide across table/tree/path digests, and each
// distinguishes distinct values.
func TestTreeAndPathDigests(t *testing.T) {
	in := problems.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	tr := sublineardp.SolveSequential(in).Tree()
	if TreeDigest(tr) != TreeDigest(tr) {
		t.Fatal("TreeDigest not deterministic")
	}
	other := sublineardp.SolveSequential(problems.MatrixChain([]int{2, 9, 2, 9, 2, 9, 2})).Tree()
	if TreeDigest(tr) == TreeDigest(other) {
		t.Fatal("different trees share a digest")
	}
	if PathDigest([]int{0, 2, 5}) == PathDigest([]int{0, 3, 5}) {
		t.Fatal("different paths share a digest")
	}
	if PathDigest([]int{0, 2, 5}) == PathDigest([]int{0, 2}) {
		t.Fatal("prefix path shares a digest")
	}
}

func TestVectorDigestDomainSeparated(t *testing.T) {
	s := sublineardp.MustNewChainSolver(sublineardp.ChainEngineSequential)
	a, err := s.Solve(context.Background(), problems.SubsetSum(20, []int64{3, 7}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Solve(context.Background(), problems.SubsetSum(20, []int64{3, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if VectorDigest(a.Values) == VectorDigest(b.Values) {
		t.Fatal("different vectors share a digest")
	}
	if VectorDigest(a.Values) != VectorDigest(a.Values.Clone()) {
		t.Fatal("cloned vector digests differently")
	}
}

func TestTableDigestDistinguishesTables(t *testing.T) {
	s := sublineardp.MustNewSolver(sublineardp.EngineSequential)
	a, err := s.Solve(context.Background(), problems.MatrixChain([]int{2, 3, 4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Solve(context.Background(), problems.MatrixChain([]int{2, 3, 4, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if TableDigest(a.Table) == TableDigest(b.Table) {
		t.Fatal("different tables share a digest")
	}
	if TableDigest(a.Table) != TableDigest(a.Table.Clone()) {
		t.Fatal("cloned table digests differently")
	}
}
