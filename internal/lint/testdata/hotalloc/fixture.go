// Package fixture pins the hotalloc analyzer: fmt, time.Now, string
// concatenation (both spellings), and interface boxing inside a loop
// are true positives; the annotated line is the suppressed negative;
// the same constructs outside loops are clean.
package fixture

import (
	"fmt"
	"time"
)

func kernel(xs []int) (string, int64) {
	s := ""
	var ns int64
	acc := 0
	for _, x := range xs {
		s = s + "x"                 // positive: concatenation
		s += "y"                    // positive: concatenation, += spelling
		ns += time.Now().UnixNano() // positive: time.Now per iteration
		sink(x)                     // positive: x boxes into interface{}
		acc += x                    // clean: no allocation
	}
	for range xs {
		fmt.Println("hot") //lint:allow hotalloc suppressed-negative fixture line, pretend this is a cold path
	}
	out := fmt.Sprintf("%s-%d", s, acc) // clean: not inside a loop
	return out, ns
}

func sink(v interface{}) {}

var _ = kernel
