package sublineardp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"sublineardp"
)

// Acceptance: SolveBatch results are order-stable and complete — slot i
// answers instance i regardless of scheduling, and every slot is filled.
func TestSolveBatchOrderStableAndComplete(t *testing.T) {
	var ins []*sublineardp.Instance
	var want []sublineardp.Cost
	// Mixed sizes on both sides of the auto cutoff, in a scrambled order
	// so scheduling cannot accidentally match slot order.
	for _, n := range []int{70, 3, 24, 81, 9, 48, 66, 5, 33, 72, 12, 57} {
		in := sublineardp.NewShaped(sublineardp.ZigzagTree(n))
		ins = append(ins, in)
		want = append(want, sublineardp.SolveSequential(in).Cost())
	}
	sols, err := sublineardp.SolveBatch(context.Background(), ins,
		sublineardp.WithConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(ins) {
		t.Fatalf("%d solutions for %d instances", len(sols), len(ins))
	}
	for i, sol := range sols {
		if sol == nil {
			t.Fatalf("slot %d is nil", i)
		}
		if sol.Cost() != want[i] {
			t.Errorf("slot %d: cost %d, want %d (order instability?)", i, sol.Cost(), want[i])
		}
		if sol.N() != ins[i].N {
			t.Errorf("slot %d: solution for n=%d, instance has n=%d", i, sol.N(), ins[i].N)
		}
		wantEngine := sublineardp.EngineSequential
		if ins[i].N > sublineardp.DefaultAutoCutoff {
			wantEngine = sublineardp.EngineHLVBanded
		}
		if sol.Engine != wantEngine {
			t.Errorf("slot %d (n=%d): engine %q, want %q", i, ins[i].N, sol.Engine, wantEngine)
		}
	}
}

func TestSolveBatchFixedEngine(t *testing.T) {
	ins := []*sublineardp.Instance{
		sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25}),
		sublineardp.NewOBST([]int64{1, 2, 1, 3, 1}, []int64{10, 3, 8, 6}),
	}
	sols, err := sublineardp.SolveBatch(context.Background(), ins,
		sublineardp.WithEngine(sublineardp.EngineWavefront))
	if err != nil {
		t.Fatal(err)
	}
	for i, sol := range sols {
		if sol.Engine != sublineardp.EngineWavefront {
			t.Errorf("slot %d: engine %q", i, sol.Engine)
		}
		if want := sublineardp.SolveSequential(ins[i]).Cost(); sol.Cost() != want {
			t.Errorf("slot %d: cost %d, want %d", i, sol.Cost(), want)
		}
	}

	if _, err := sublineardp.SolveBatch(context.Background(), ins,
		sublineardp.WithEngine("no-such-engine")); err == nil {
		t.Fatal("unknown batch engine accepted")
	}
}

func TestSolveBatchEmptyAndInvalid(t *testing.T) {
	sols, err := sublineardp.SolveBatch(context.Background(), nil)
	if err != nil || len(sols) != 0 {
		t.Fatalf("empty batch: %v, %d solutions", err, len(sols))
	}

	ins := []*sublineardp.Instance{
		sublineardp.NewMatrixChain([]int{1, 2, 3}),
		nil, // invalid slot must not poison the others
		sublineardp.NewMatrixChain([]int{4, 5, 6}),
	}
	sols, err = sublineardp.SolveBatch(context.Background(), ins)
	if err == nil {
		t.Fatal("batch with nil instance returned no error")
	}
	if sols[0] == nil || sols[2] == nil {
		t.Fatal("valid slots not solved despite one invalid instance")
	}
	if sols[1] != nil {
		t.Fatal("invalid slot produced a solution")
	}
}

func TestSolveBatchCancellation(t *testing.T) {
	// Enough slow instances that cancellation lands mid-batch.
	var ins []*sublineardp.Instance
	for i := 0; i < 16; i++ {
		ins = append(ins, slowInstance(24, 50*time.Microsecond))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sols, err := sublineardp.SolveBatch(ctx, ins, sublineardp.WithConcurrency(2))
	elapsed := time.Since(start)
	cancel()
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sols) != len(ins) {
		t.Fatalf("result slice length %d, want %d", len(sols), len(ins))
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancelled batch took %v, want prompt return", elapsed)
	}
}
