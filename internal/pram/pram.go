// Package pram models the paper's machine: the synchronous Concurrent-Read
// Exclusive-Write Parallel RAM. The solvers execute on real goroutines
// (internal/parutil); this package supplies the two things a goroutine pool
// cannot: the PRAM *cost model* (time charged per synchronous step, with
// m-way min-reductions costing ceil(log2 m) steps as in the paper's
// "O(log n) time using O(n/log n) processors" folklore), and a *write
// audit* that checks the exclusive-write discipline the CREW model demands.
//
// Accounting is what experiments E2/E5 report: PRAM time, total work, and
// the implied processor count work/time per Brent's theorem. The Auditor
// is a test-time tool: solvers route their reads and writes through it at
// small sizes, and the tests assert that no memory cell is written twice
// in one synchronous step and that no step reads a cell it also writes
// (the double-buffering discipline that makes the simulation faithful).
package pram

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// Accounting accumulates the PRAM complexity measures of a run.
type Accounting struct {
	// Time is the number of elapsed PRAM steps.
	Time int64
	// Work is the total number of primitive operations across all steps.
	Work int64
	// MaxProcs is the maximum, over charged operations, of the processor
	// count ceil(work/time) that operation needs to finish in its charged
	// time — the machine size the run demands under Brent scheduling.
	MaxProcs int64
	// Steps counts the charged operations (for averaging in reports).
	Steps int64

	// ops records every charged operation so Brent-scheduled times on a
	// bounded machine can be replayed (TimeOn). A few hundred entries per
	// run — negligible.
	ops []OpCharge
}

// OpCharge is one charged operation: its total work and its unbounded
// (critical-path) time.
type OpCharge struct {
	Work int64
	Time int64
}

// Ops returns the recorded per-operation charges.
func (a *Accounting) Ops() []OpCharge { return a.ops }

// TimeOn returns the run's makespan on a machine with p processors under
// Brent scheduling: each operation with work W and depth T contributes
// ceil(W/p) + T steps (the standard Brent bound; each depth level's work
// is spread across p processors, costing at most W/p extra plus the
// level count). For p >= MaxProcs this degenerates to ~Time; for p = 1 it
// approaches Work.
func (a *Accounting) TimeOn(p int64) int64 {
	if p < 1 {
		p = 1
	}
	var total int64
	for _, op := range a.ops {
		total += (op.Work+p-1)/p + op.Time
	}
	return total
}

// ReduceTime returns the PRAM time of an m-way reduction: ceil(log2 m)
// for m >= 2, and 1 for m <= 1 (a single compare-or-copy still takes a
// step).
func ReduceTime(m int64) int64 {
	if m <= 1 {
		return 1
	}
	return int64(bits.Len64(uint64(m - 1)))
}

// ChargeUnit charges one unit-time step that performs the given total
// work across all virtual processors (e.g. the a-activate operation:
// every cell does O(1) work in one step).
func (a *Accounting) ChargeUnit(work int64) {
	a.Time++
	a.Work += work
	a.Steps++
	if work > a.MaxProcs {
		a.MaxProcs = work
	}
	a.ops = append(a.ops, OpCharge{Work: work, Time: 1})
}

// ChargeReduce charges a parallel reduction phase: `cells` independent
// reductions, the largest over maxM candidates, with totalWork candidate
// evaluations overall. Time advances by ReduceTime(maxM); processors are
// totalWork/time rounded up (the standard n/log n trick applied to the
// whole phase).
func (a *Accounting) ChargeReduce(cells, maxM, totalWork int64) {
	if cells <= 0 {
		return
	}
	t := ReduceTime(maxM)
	a.Time += t
	a.Work += totalWork
	a.Steps++
	procs := (totalWork + t - 1) / t
	if procs < cells { // every cell needs at least one processor at the end
		procs = cells
	}
	if procs > a.MaxProcs {
		a.MaxProcs = procs
	}
	a.ops = append(a.ops, OpCharge{Work: totalWork, Time: t})
}

// Add folds another accounting (e.g. a sub-phase) into a.
func (a *Accounting) Add(b Accounting) {
	a.Time += b.Time
	a.Work += b.Work
	a.Steps += b.Steps
	if b.MaxProcs > a.MaxProcs {
		a.MaxProcs = b.MaxProcs
	}
	a.ops = append(a.ops, b.ops...)
}

// PTProduct returns the processor-time product MaxProcs*Time, the measure
// the paper uses to compare algorithms.
func (a *Accounting) PTProduct() int64 { return a.MaxProcs * a.Time }

// String summarises the accounting for experiment tables.
func (a *Accounting) String() string {
	return fmt.Sprintf("time=%d work=%d procs=%d pt=%d", a.Time, a.Work, a.MaxProcs, a.PTProduct())
}

// Violation describes one breach of the synchronous CREW discipline.
type Violation struct {
	Step string
	Addr uint64
	Kind string // "write-write" or "read-write"
}

func (v Violation) String() string {
	return fmt.Sprintf("%s conflict at address %#x during step %q", v.Kind, v.Addr, v.Step)
}

// Auditor checks the exclusive-write and read/write-separation discipline
// of synchronous PRAM steps. It is intended for tests at small sizes: all
// recording goes through a mutex, so it is far too slow for benchmarks.
// The zero Auditor is ready to use.
type Auditor struct {
	mu     sync.Mutex
	step   string
	reads  map[uint64]struct{}
	writes map[uint64]struct{}
	viols  []Violation
	active bool
}

// BeginStep starts a new synchronous step with the given label, closing
// any previous step.
func (a *Auditor) BeginStep(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closeLocked()
	a.step = name
	a.reads = make(map[uint64]struct{})
	a.writes = make(map[uint64]struct{})
	a.active = true
}

// EndStep closes the current step, performing the read-write overlap check.
func (a *Auditor) EndStep() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closeLocked()
}

func (a *Auditor) closeLocked() {
	if !a.active {
		return
	}
	// Sort for deterministic violation ordering.
	var overlap []uint64
	for addr := range a.writes {
		if _, ok := a.reads[addr]; ok {
			overlap = append(overlap, addr)
		}
	}
	sort.Slice(overlap, func(i, j int) bool { return overlap[i] < overlap[j] })
	for _, addr := range overlap {
		a.viols = append(a.viols, Violation{Step: a.step, Addr: addr, Kind: "read-write"})
	}
	a.active = false
}

// Read records a read of addr in the current step. Concurrent reads are
// legal in CREW, so reads alone never violate.
func (a *Auditor) Read(addr uint64) {
	a.mu.Lock()
	if a.active {
		a.reads[addr] = struct{}{}
	}
	a.mu.Unlock()
}

// Write records a write of addr in the current step; a second write to
// the same address within one step is an exclusive-write violation.
func (a *Auditor) Write(addr uint64) {
	a.mu.Lock()
	if a.active {
		if _, dup := a.writes[addr]; dup {
			a.viols = append(a.viols, Violation{Step: a.step, Addr: addr, Kind: "write-write"})
		}
		a.writes[addr] = struct{}{}
	}
	a.mu.Unlock()
}

// Violations returns all recorded violations (closing the current step).
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closeLocked()
	return append([]Violation(nil), a.viols...)
}

// Err returns nil if the audited run was CREW-clean, or an error
// describing the first few violations.
func (a *Auditor) Err() error {
	vs := a.Violations()
	if len(vs) == 0 {
		return nil
	}
	msg := vs[0].String()
	if len(vs) > 1 {
		msg = fmt.Sprintf("%s (and %d more)", msg, len(vs)-1)
	}
	return fmt.Errorf("pram: %s", msg)
}

// Addr packs an (array, index) pair into a single audit address. Arrays
// are identified by small integer tags chosen by the solver; indices must
// fit in 56 bits, which every flat array in this repository does.
func Addr(array uint8, index int) uint64 {
	return uint64(array)<<56 | (uint64(index) & (1<<56 - 1))
}

// Addr4 packs an array tag and a 4-index cell (i,j,p,q), each < 2^13,
// into an audit address.
func Addr4(array uint8, i, j, p, q int) uint64 {
	return uint64(array)<<56 |
		uint64(uint16(i))<<39 | uint64(uint16(j))<<26 | uint64(uint16(p))<<13 | uint64(uint16(q))
}
