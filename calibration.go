package sublineardp

import (
	"sublineardp/internal/calibrate"
)

// Calibration is a machine-local measurement of the scheduling
// constants the auto engine and the tiled engines otherwise take from
// compiled-in defaults: the sequential/parallel crossover
// (DefaultAutoCutoff), the banded-HLV/blocked-pipe crossover
// (DefaultAutoLargeCutoff), and the blocked tile edge
// (DefaultTileSize's auto clamp). Generate one with `dpbench
// -calibrate`, which probes the crossovers on the current machine and
// writes DefaultCalibrationPath; apply it with WithCalibration.
type Calibration = calibrate.Profile

// DefaultCalibrationPath is the conventional profile location written
// by `dpbench -calibrate` ("CALIBRATION.json").
const DefaultCalibrationPath = calibrate.DefaultPath

// LoadCalibration reads and validates a calibration profile written by
// `dpbench -calibrate`. A profile with a foreign schema, or one whose
// thresholds are incoherent, is rejected rather than silently
// misrouting every auto solve.
func LoadCalibration(path string) (*Calibration, error) {
	return calibrate.Load(path)
}

// WithCalibration applies a measured calibration profile to the solve:
// the profile's non-zero thresholds replace the compiled-in
// DefaultAutoCutoff / DefaultAutoLargeCutoff routing constants and the
// blocked engines' automatic tile-size choice. Knobs set explicitly by
// their own options (WithAutoCutoff, WithAutoLargeCutoff,
// WithTileSize) win over the profile regardless of option order, and a
// nil profile is a no-op — callers can thread an optional profile
// through unconditionally.
func WithCalibration(p *Calibration) Option {
	return func(c *Config) {
		if p == nil {
			return
		}
		if p.AutoCutoff > 0 && c.AutoCutoff == 0 {
			c.AutoCutoff = p.AutoCutoff
		}
		if p.AutoLargeCutoff > 0 && c.AutoLargeCutoff == 0 {
			c.AutoLargeCutoff = p.AutoLargeCutoff
		}
		if p.TileSize > 0 && c.TileSize == 0 {
			c.TileSize = p.TileSize
		}
	}
}
