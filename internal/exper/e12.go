package exper

import (
	"math/rand"

	"sublineardp/internal/semiring"
)

// E12Semirings exercises the generalisation of the algorithm to arbitrary
// idempotent semirings (an extension beyond the paper; see
// internal/semiring): min-plus (the paper), max-plus (costliest
// parenthesization) and boolean feasibility all converge within the
// Lemma 3.3 budget because the pebbling argument never uses more than
// idempotency, distributivity and monotonicity.
func E12Semirings(cfg Config) []*Table {
	sizes := []int{6, 8, 10, 12}
	seeds := []int64{1, 2, 3}
	if cfg.Quick {
		sizes = []int{6, 8}
		seeds = []int64{1}
	}

	t := &Table{
		ID:       "E12",
		Title:    "Idempotent-semiring generalisation: agreement with brute force (runs passed/total)",
		PaperRef: "extension: the paper's scheme over (min,+), (max,+) and (or,and)",
		Columns:  []string{"semiring", "passed", "iterations used (= budget)"},
	}

	rings := []semiring.Semiring{semiring.MinPlus{}, semiring.MaxPlus{}, semiring.BoolPlan{}}
	for _, sr := range rings {
		passed, total, iters := 0, 0, 0
		for _, n := range sizes {
			for _, seed := range seeds {
				in := randomSemiringInstance(sr, n, seed)
				total++
				res := semiring.SolveHLV(sr, in, 0)
				iters = res.Iterations
				if res.Root() == semiring.BruteForce(sr, in) {
					passed++
				}
			}
		}
		t.AddRow(sr.Name(), fmtFrac(passed, total), iters)
	}
	t.Note("counting parenthesizations ((+,*), non-idempotent) is deliberately unsupported: re-Combining the same tree across iterations would overcount")
	return []*Table{t}
}

func randomSemiringInstance(sr semiring.Semiring, n int, seed int64) *semiring.Instance {
	rng := rand.New(rand.NewSource(seed))
	sz := n + 1
	f := make([]int64, sz*sz*sz)
	ini := make([]int64, n)
	boolean := sr.Name() == "bool-plan"
	for i := range f {
		if boolean {
			f[i] = int64(rng.Intn(2))
		} else {
			f[i] = rng.Int63n(40)
		}
	}
	for i := range ini {
		if boolean {
			ini[i] = 1
		} else {
			ini[i] = rng.Int63n(40)
		}
	}
	return &semiring.Instance{
		N:    n,
		Name: sr.Name(),
		Init: func(i int) int64 { return ini[i] },
		F:    func(i, k, j int) int64 { return f[(i*sz+k)*sz+j] },
	}
}
