// Package wavefront implements the "optimal" parallel baseline the paper
// cites as [10] (I. Yen, private communication): recurrence (*) evaluated
// span by span, all cells of one span in parallel. With n^2 virtual
// processors this is the linear-time family of algorithms whose
// processor-time product matches the sequential O(n^3) bound.
//
// Since [10] was never published, this package substitutes the standard
// wavefront schedule: span s has n-s+1 cells, each taking a min over s-1
// candidates. Under the simple CREW reduction schedule used throughout
// this repository the time is sum_s ceil(log2(s-1)) = O(n log n); the
// work — the quantity the experiments compare — is exactly the sequential
// O(n^3). (Pipelining the reduction trees across spans recovers O(n), but
// does not change work or the PT product by more than the log factor.)
package wavefront

import (
	"context"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/pram"
	"sublineardp/internal/recurrence"
)

// Options configures a wavefront run.
type Options struct {
	// Workers is the number of goroutines (0 = GOMAXPROCS).
	Workers int
	// Pool is the persistent worker pool the spans dispatch onto
	// (nil = the process-wide shared pool).
	Pool *parutil.Pool
	// Semiring overrides the algebra the recurrence is evaluated over
	// (nil = the instance's declared algebra, min-plus by default).
	Semiring algebra.Semiring
}

// Result is a wavefront solve: the cost table plus PRAM accounting.
type Result struct {
	Table *recurrence.Table
	Acct  pram.Accounting
}

// Cost returns c(0,n).
func (r *Result) Cost() cost.Cost { return r.Table.Root() }

// Solve evaluates the recurrence span by span, parallelising within each
// span. The result is exact (identical to seq.Solve's table).
func Solve(in *recurrence.Instance, opt Options) *Result {
	res, err := SolveCtx(context.Background(), in, opt)
	if err != nil {
		// Only reachable for an unregistered instance algebra; the
		// background context never cancels.
		panic(err)
	}
	return res
}

// SolveCtx is Solve with cooperative cancellation, checked between spans
// (each span is one parallel barrier, so this is the natural granularity).
// A cancelled or expired context aborts with a nil Result and ctx.Err().
// The sweep is generic over the algebra: the min-plus instantiation keeps
// its dedicated scalar loop, other algebras run the same schedule through
// the semiring's fused Relax3.
func SolveCtx(ctx context.Context, in *recurrence.Instance, opt Options) (*Result, error) {
	sr, err := algebra.Resolve(opt.Semiring, in.Algebra)
	if err != nil {
		return nil, err
	}
	n := in.N
	res := &Result{Table: recurrence.NewTable(n)}
	tbl := res.Table
	for i := 0; i < n; i++ { //lint:allow ctxpoll O(n) Init fill before the polled span loop
		tbl.Set(i, i+1, in.Init(i))
	}
	res.Acct.ChargeUnit(int64(n)) // the init step
	pool := opt.Pool
	if pool == nil {
		pool = parutil.Default()
	}
	_, minPlus := sr.(algebra.MinPlus)
	for span := 2; span <= n; span++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cells := n - span + 1
		pool.ForChunked(opt.Workers, cells, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				j := i + span
				var best cost.Cost
				if minPlus {
					best = cost.Inf
					for k := i + 1; k < j; k++ {
						v := cost.Add3(in.F(i, k, j), tbl.At(i, k), tbl.At(k, j)) //lint:allow bulkonly concrete min-plus loop: in.F is a direct func-field call here, no dictionary dispatch
						if v < best {
							best = v
						}
					}
				} else {
					best = sr.Zero()
					for k := i + 1; k < j; k++ {
						best = sr.Relax3(best, in.F(i, k, j), tbl.At(i, k), tbl.At(k, j)) //lint:allow bulkonly legacy generic wavefront kept as a conformance reference; bulk serving routes to the blocked engines
					}
				}
				tbl.Set(i, j, best)
			}
		})
		res.Acct.ChargeReduce(int64(cells), int64(span-1), int64(cells)*int64(span-1))
	}
	return res, nil
}
