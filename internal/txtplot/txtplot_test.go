package txtplot

import (
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	out := Lines(20, 5, []float64{1, 2, 3, 4},
		Series{Name: "squares", Ys: []float64{1, 4, 9, 16}})
	if !strings.Contains(out, "*") {
		t.Fatalf("no data glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend: * squares") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "x: 1 .. 4") {
		t.Fatalf("x range missing:\n%s", out)
	}
	// 5 grid rows + axis + x note + legend.
	if got := strings.Count(out, "\n"); got != 8 {
		t.Fatalf("line count = %d:\n%s", got, out)
	}
}

func TestLinesMultipleSeries(t *testing.T) {
	out := Lines(30, 6, nil,
		Series{Name: "a", Ys: []float64{1, 2, 3}},
		Series{Name: "b", Ys: []float64{3, 2, 1}})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
}

func TestLinesEmpty(t *testing.T) {
	if out := Lines(10, 4, nil); !strings.Contains(out, "empty") {
		t.Fatalf("empty plot output %q", out)
	}
}

func TestLinesConstantSeries(t *testing.T) {
	// A constant series must not divide by zero.
	out := Lines(10, 4, nil, Series{Name: "c", Ys: []float64{5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series lost:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"seq", "hlv", "rytter"}, []float64{1, 4, 16}, 16)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("bar lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seq") || !strings.Contains(lines[2], strings.Repeat("#", 16)) {
		t.Fatalf("bars malformed:\n%s", out)
	}
	// Proportionality: the largest bar is maxWidth wide, the smallest ~1/16.
	if strings.Count(lines[0], "#") >= strings.Count(lines[1], "#") {
		t.Fatalf("bar widths not monotone:\n%s", out)
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars([]string{"z"}, []float64{0}, 10)
	if !strings.Contains(out, "z") {
		t.Fatalf("zero bar lost: %q", out)
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Bars([]string{"a"}, []float64{1, 2}, 10)
}
