package parutil

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolForCoversEveryIndexOnce(t *testing.T) {
	for _, width := range []int{1, 2, 4} {
		p := NewPool(width)
		for _, n := range []int{0, 1, 7, 100, 1023} {
			hits := make([]atomic.Int32, n)
			p.For(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("width=%d n=%d: index %d executed %d times", width, n, i, got)
				}
			}
		}
		p.Close()
	}
}

func TestPoolOversubscribedDispatch(t *testing.T) {
	// Asking for more workers than the pool holds tops up with transient
	// goroutines: every index still runs exactly once.
	p := NewPool(2)
	defer p.Close()
	n := 10000
	hits := make([]atomic.Int32, n)
	p.ForChunked(16, n, 3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times", i, got)
		}
	}
}

func TestPoolSumMatchesSequential(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	n := 5000
	got := p.SumInt64(0, n, 0, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	})
	if want := int64(n) * int64(n-1) / 2; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestPoolConcurrentDispatch(t *testing.T) {
	// Many goroutines sharing one pool (the SolveBatch shape) must each
	// see their own job complete exactly.
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				n := 512
				var total atomic.Int64
				p.ForChunked(2, n, 7, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
				if total.Load() != int64(n) {
					t.Errorf("covered %d of %d indices", total.Load(), n)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPoolNestedDispatchNoDeadlock(t *testing.T) {
	// A job body that dispatches onto the same pool must complete: the
	// submitter always participates, so progress never depends on a free
	// pool worker.
	p := NewPool(2)
	defer p.Close()
	var leaves atomic.Int64
	p.For(4, func(i int) {
		p.For(8, func(j int) { leaves.Add(1) })
	})
	if leaves.Load() != 32 {
		t.Fatalf("nested dispatch ran %d leaves, want 32", leaves.Load())
	}
}

func TestPoolForChunkedCtxCancellation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	err := p.ForChunkedCtx(ctx, 0, 1000, 1, func(lo, hi int) {
		if done.Add(int64(hi-lo)) > 100 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done.Load() >= 1000 {
		t.Fatal("cancellation did not abandon remaining chunks")
	}
	// An already-cancelled context runs nothing and reports the error.
	ran := false
	if err := p.ForChunkedCtx(ctx, 0, 10, 1, func(lo, hi int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if ran {
		t.Fatal("body ran under a pre-cancelled context")
	}
}

func TestPoolSumInt64Ctx(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	got, err := p.SumInt64Ctx(context.Background(), 0, 100, 0, func(lo, hi int) int64 {
		return int64(hi - lo)
	})
	if err != nil || got != 100 {
		t.Fatalf("sum = %d err = %v", got, err)
	}
}

func TestClosedPoolStillCompletes(t *testing.T) {
	p := NewPool(4)
	p.Close()
	var total atomic.Int64
	p.ForChunked(4, 100, 1, func(lo, hi int) { total.Add(int64(hi - lo)) })
	if total.Load() != 100 {
		t.Fatalf("closed pool covered %d of 100", total.Load())
	}
}

func TestArenaRecyclesExactLength(t *testing.T) {
	var a Arena[int64]
	s := a.Get(1024)
	if len(s) != 1024 {
		t.Fatalf("len = %d", len(s))
	}
	s[0] = 42
	a.Put(s)
	r := a.Get(1024)
	if len(r) != 1024 {
		t.Fatalf("reused len = %d", len(r))
	}
	// Contents are unspecified; the caller reinitialises. Different
	// lengths never alias a pooled slice of another size.
	small := a.Get(8)
	if len(small) != 8 {
		t.Fatalf("len = %d", len(small))
	}
	if got := a.Get(0); got != nil {
		t.Fatalf("Get(0) = %v, want nil", got)
	}
	a.Put(nil) // no-op
}
