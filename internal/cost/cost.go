// Package cost provides the exact integer cost arithmetic shared by every
// solver in this repository.
//
// All dynamic-programming values are nonnegative integers plus a single
// "infinite" sentinel used for not-yet-computed entries. Using integers
// (rather than floats) keeps every algorithm exact, so the parallel solvers
// can be compared bit-for-bit against the sequential one. Inf is chosen far
// below the int64 overflow boundary so that sums of a few infinities still
// compare as "infinite" without wrapping.
package cost

import "math"

// Cost is a nonnegative dynamic-programming value or Inf.
type Cost int64

// Inf is the "not computed / unreachable" sentinel. Any value >= Inf is
// treated as infinite. Inf is MaxInt64/4 so that Add(Inf, Inf) cannot
// overflow and any finite algorithmic sum stays clearly below it.
const Inf Cost = math.MaxInt64 / 4

// IsInf reports whether c represents an infinite (absent) value.
func IsInf(c Cost) bool { return c >= Inf }

// Add returns a+b with saturation at Inf. It is the only addition the
// solvers use, so partial-weight compositions involving absent entries
// stay absent instead of producing garbage.
func Add(a, b Cost) Cost {
	if a >= Inf || b >= Inf {
		return Inf
	}
	return a + b
}

// Add3 returns a+b+c with saturation at Inf.
func Add3(a, b, c Cost) Cost {
	return Add(Add(a, b), c)
}

// Min returns the smaller of a and b.
func Min(a, b Cost) Cost {
	if a < b {
		return a
	}
	return b
}

// MinOf returns the minimum of vs, or Inf for an empty list.
func MinOf(vs ...Cost) Cost {
	m := Inf
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}

// Valid reports whether c is a legal cost: nonnegative and not above Inf.
func Valid(c Cost) bool { return c >= 0 }

// Norm maps every infinite representation to the canonical Inf, leaving
// finite values unchanged. Useful before comparing arrays for equality.
func Norm(c Cost) Cost {
	if c >= Inf {
		return Inf
	}
	return c
}
