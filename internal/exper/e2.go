package exper

import (
	"sublineardp/internal/core"
	"sublineardp/internal/problems"
	"sublineardp/internal/rytter"
	"sublineardp/internal/seq"
	"sublineardp/internal/wavefront"
)

// E2WorkScaling measures the total work (candidate evaluations) of every
// solver over a size sweep on worst-case (zigzag) instances run to their
// full worst-case budgets, fits empirical exponents, and compares the
// resulting processor-time products — the paper's headline comparison:
// sequential O(n^3); HLV banded PT O(n^4); HLV dense PT O(n^5.5);
// Rytter PT O(n^6 log n); improvement Theta(n^2 log n).
func E2WorkScaling(cfg Config) []*Table {
	sizes := []int{8, 12, 16, 24, 32, 40}
	rytterMax := 24
	denseMax := 40
	if cfg.Quick {
		sizes = []int{8, 12, 16}
		rytterMax = 12
		denseMax = 16
	}

	t := &Table{
		ID:       "E2",
		Title:    "Total work (candidate evaluations) at the worst-case iteration budgets",
		PaperRef: "abstract + Section 7: PT products n^3 (seq) / n^4 (HLV banded) / n^6 log n (Rytter)",
		Columns:  []string{"n", "seq", "wavefront", "hlv-banded", "hlv-dense", "rytter"},
	}

	var xs, wSeq, wWave, wBand, wDense, wRyt []float64
	for _, n := range sizes {
		in := problems.Zigzag(n).Materialize()
		xs = append(xs, float64(n))

		sres := seq.Solve(in)
		wv := wavefront.Solve(in, wavefront.Options{Workers: cfg.Workers})
		band := core.Solve(in, core.Options{Variant: core.Banded, Workers: cfg.Workers})
		wSeq = append(wSeq, float64(sres.Work))
		wWave = append(wWave, float64(wv.Acct.Work))
		wBand = append(wBand, float64(band.Acct.Work))

		denseCell, rytCell := "-", "-"
		if n <= denseMax {
			dres := core.Solve(in, core.Options{Variant: core.Dense, Workers: cfg.Workers})
			wDense = append(wDense, float64(dres.Acct.Work))
			denseCell = fmtInt(dres.Acct.Work)
		}
		if n <= rytterMax {
			rres := rytter.Solve(in, rytter.Options{Workers: cfg.Workers,
				MaxIterations: rytter.DefaultIterations(n)})
			wRyt = append(wRyt, float64(rres.Acct.Work))
			rytCell = fmtInt(rres.Acct.Work)
		}
		t.AddRow(n, fmtInt(sres.Work), fmtInt(wv.Acct.Work), fmtInt(band.Acct.Work), denseCell, rytCell)
	}

	eSeq := powerExponent(xs, wSeq)
	eWave := powerExponent(xs, wWave)
	eBand := powerExponent(xs, wBand)
	eDense := powerExponent(xs[:len(wDense)], wDense)
	eRyt := powerExponent(xs[:len(wRyt)], wRyt)
	t.Note("fitted work exponents: seq n^%.2f (paper 3), wavefront n^%.2f (3), hlv-banded n^%.2f (4), hlv-dense n^%.2f (5.5), rytter n^%.2f (6)",
		eSeq, eWave, eBand, eDense, eRyt)
	t.Note("rytter's memory forces a smaller size range, so its fitted exponent underestimates the asymptotic 6; the per-size ratios below show the separation directly")
	if len(wRyt) > 0 && len(wBand) > 0 {
		idx := len(wRyt) - 1
		first := 0
		t.Note("rytter/hlv-banded work ratio: %.1fx at n=%d growing to %.1fx at n=%d (theory: Theta(n^2 log n))",
			wRyt[first]/wBand[first], int(xs[first]), wRyt[idx]/wBand[idx], int(xs[idx]))
	}
	t.Note("who wins: seq < wavefront <= hlv-banded << hlv-dense << rytter, matching the paper's ordering")
	return []*Table{t}
}
