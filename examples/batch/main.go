// Batch serving: fan a mixed stream of matrix-chain, OBST and
// triangulation requests across the worker-pool scheduler, letting the
// "auto" engine route each instance by size — small ones to the
// sequential scan, large ones to the banded HLV iteration — under one
// deadline, the shape of a production request handler.
//
// Run with:
//
//	go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sublineardp"
	"sublineardp/internal/problems"
)

func main() {
	// A burst of requests of very different sizes, as a service would see.
	var batch []*sublineardp.Instance
	for i, n := range []int{8, 120, 24, 96, 12, 80, 40, 6, 150, 30} {
		switch i % 3 {
		case 0:
			batch = append(batch, problems.RandomMatrixChain(n, 100, int64(i)))
		case 1:
			batch = append(batch, problems.RandomOBST(n, 50, int64(i)))
		default:
			batch = append(batch, problems.Triangulation(problems.RandomConvexPolygon(n, 1000, int64(i))))
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	start := time.Now()
	sols, err := sublineardp.SolveBatch(ctx, batch,
		sublineardp.WithConcurrency(4),
		sublineardp.WithTermination(sublineardp.WStable), // adaptive stop for the HLV runs
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %d instances in %s (4-way concurrency)\n\n", len(sols), time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-28s %6s %-12s %10s %6s\n", "instance", "n", "engine", "optimum", "iters")
	for i, sol := range sols {
		fmt.Printf("%-28s %6d %-12s %10d %6d\n",
			batch[i].Name, batch[i].N, sol.Engine, sol.Cost(), sol.Iterations)
	}

	// Order stability: slot i always answers request i, so responses can
	// be matched back to callers by index alone.
	for i, sol := range sols {
		if sol.N() != batch[i].N {
			log.Fatalf("slot %d answered the wrong request", i)
		}
	}
	fmt.Println("\nall slots matched their requests in order")
}
