package parutil

import (
	"context"
	"sync/atomic"
	"testing"
)

// A task graph must run every submitted task exactly once, including
// tasks submitted from inside running tasks (the successor pattern).
func TestRunGraphExecutesAllTasks(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	var ran atomic.Int64
	st := &Stats{}
	err := pool.RunGraph(context.Background(), 3, st, func(g *TaskGraph) {
		for i := 0; i < 8; i++ {
			g.Submit(func(g *TaskGraph) {
				ran.Add(1)
				// Two generations of successors from inside the task.
				g.Submit(func(g *TaskGraph) {
					ran.Add(1)
					g.Submit(func(*TaskGraph) { ran.Add(1) })
				})
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 24 {
		t.Fatalf("ran %d tasks, want 24", got)
	}
	v := st.View()
	if v.Tasks != 24 {
		t.Errorf("stats counted %d tasks, want 24", v.Tasks)
	}
	if v.Barriers != 0 {
		t.Errorf("graph drain recorded %d barriers, want 0", v.Barriers)
	}
}

// An empty graph (seed submits nothing) must quiesce immediately.
func TestRunGraphEmpty(t *testing.T) {
	if err := Default().RunGraph(context.Background(), 2, nil, func(*TaskGraph) {}); err != nil {
		t.Fatal(err)
	}
}

// Dependency-counter publication: a diamond where the join task reads
// values written by both branches, gated only by the atomic counter.
func TestRunGraphCounterPublication(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for trial := 0; trial < 200; trial++ {
		var a, b int
		var pending atomic.Int32
		pending.Store(2)
		var sum int
		err := pool.RunGraph(context.Background(), 4, nil, func(g *TaskGraph) {
			join := func(g *TaskGraph) {
				if pending.Add(-1) == 0 {
					g.Submit(func(*TaskGraph) { sum = a + b })
				}
			}
			g.Submit(func(g *TaskGraph) { a = 1; join(g) })
			g.Submit(func(g *TaskGraph) { b = 2; join(g) })
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum != 3 {
			t.Fatalf("trial %d: join read %d, want 3", trial, sum)
		}
	}
}

// Cancellation: workers stop claiming, parked workers wake, RunGraph
// returns the error instead of wedging on the abandoned tasks.
func TestRunGraphCancellation(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var after atomic.Int64
	err := pool.RunGraph(ctx, 3, nil, func(g *TaskGraph) {
		g.Submit(func(g *TaskGraph) {
			cancel()
			for i := 0; i < 64; i++ {
				g.Submit(func(*TaskGraph) { after.Add(1) })
			}
		})
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The stats-aware dispatch counts one barrier per phase and one task per
// claimed chunk, deterministically.
func TestStatsDispatchCounters(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	st := &Stats{}
	var total atomic.Int64
	for phase := 0; phase < 3; phase++ {
		sum, err := pool.SumInt64StatsCtx(context.Background(), st, 4, 8, 1, func(lo, hi int) int64 {
			total.Add(int64(hi - lo))
			return int64(hi - lo)
		})
		if err != nil || sum != 8 {
			t.Fatalf("phase %d: sum=%d err=%v", phase, sum, err)
		}
	}
	v := st.View()
	if v.Barriers != 3 {
		t.Errorf("barriers = %d, want 3 (one per dispatch)", v.Barriers)
	}
	if v.Tasks != 24 {
		t.Errorf("tasks = %d, want 24 (8 unit chunks per dispatch)", v.Tasks)
	}
	// The single-worker inline path still fences (and counts) the phase.
	st2 := &Stats{}
	if _, err := pool.SumInt64StatsCtx(context.Background(), st2, 1, 5, 0, func(lo, hi int) int64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if v2 := st2.View(); v2.Barriers != 1 || v2.Tasks != 1 {
		t.Errorf("inline dispatch counted %+v, want 1 barrier / 1 task", v2)
	}
	// A nil collector is a no-op everywhere.
	if _, err := pool.SumInt64StatsCtx(context.Background(), nil, 2, 4, 1, func(lo, hi int) int64 { return 0 }); err != nil {
		t.Fatal(err)
	}
}
