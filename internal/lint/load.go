// Package lint is the repo-aware static-analysis suite behind
// cmd/dplint and the tier-1 lint self-test: a stdlib-only framework
// (go/parser + go/types, no external analysis deps) that loads the
// module's packages and runs repo-specific analyzers over them, each
// mechanizing an invariant earlier PRs audited by hand (cache-key
// coverage, context polling, bulk-kernel discipline, hot-loop
// allocations, atomic/plain access mixing).
//
// Findings are suppressible only via explicit
//
//	//lint:allow <check> <reason>
//
// comments — end-of-line on the offending line, or standalone directly
// above it. A directive that suppresses nothing is itself a finding
// (allowdead), so every annotation in the tree stays load-bearing.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the loaded program.
type Package struct {
	// Path is the package's import path ("sublineardp/internal/seq").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Types and Info carry the go/types results. Info is always
	// non-nil; best-effort when the package had type errors.
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded module (or a single fixture directory) ready for
// analysis.
type Program struct {
	Fset *token.FileSet
	// Root is the absolute module root directory.
	Root string
	// ModulePath is the module path from go.mod ("sublineardp"), or the
	// synthetic fixture path for LoadDir programs.
	ModulePath string
	// Packages is every loaded package in dependency order.
	Packages []*Package
	// TypeErrors collects type-checker diagnostics; analysis proceeds
	// best-effort past them, but the driver surfaces them so a broken
	// tree cannot silently pass as "no findings".
	TypeErrors []error
}

// Pkg returns the loaded package whose path is ModulePath+"/"+rel
// (or ModulePath itself for rel ""), or nil.
func (p *Program) Pkg(rel string) *Package {
	path := p.ModulePath
	if rel != "" {
		path += "/" + rel
	}
	for _, pkg := range p.Packages {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// Load parses and type-checks every non-test package under the module
// rooted at root (skipping testdata, hidden and vendor directories).
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), Root: root, ModulePath: modPath}
	parsed := make(map[string]*Package, len(dirs)) // import path -> package
	for _, dir := range dirs {
		pkg, err := parseDir(prog.Fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkg.Path = modPath
		if rel != "." {
			pkg.Path = modPath + "/" + filepath.ToSlash(rel)
		}
		parsed[pkg.Path] = pkg
	}
	order := topoOrder(parsed, modPath)
	if err := typeCheck(prog, parsed, order); err != nil {
		return nil, err
	}
	for _, path := range order {
		prog.Packages = append(prog.Packages, parsed[path])
	}
	return prog, nil
}

// LoadDir parses and type-checks the single package in dir as a
// stand-alone program — the fixture loader behind the analyzer tests.
// The package may import the standard library but not other module
// packages. goRoot locates a go.mod so `go list` runs in module mode
// (any module directory works; fixtures only resolve stdlib imports).
func LoadDir(dir, goRoot string) (*Program, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), Root: dir, ModulePath: "fixture/" + filepath.Base(dir)}
	pkg, err := parseDir(prog.Fset, dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Path = prog.ModulePath
	parsed := map[string]*Package{pkg.Path: pkg}
	saved := prog.Root
	prog.Root = goRoot // go list cwd for stdlib export data
	err = typeCheck(prog, parsed, []string{pkg.Path})
	prog.Root = saved
	if err != nil {
		return nil, err
	}
	prog.Packages = []*Package{pkg}
	return prog, nil
}

// FindModuleRoot walks upward from dir to the nearest directory
// holding a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above the start directory")
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs walks root collecting every directory holding non-test Go
// files, skipping testdata (fixtures are loaded explicitly by their
// tests, never as part of the module program), hidden directories, and
// vendor trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of dir as one package (nil if
// the directory holds none).
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// topoOrder orders the parsed packages so every module-local import
// precedes its importer (stdlib imports are external to the order).
func topoOrder(pkgs map[string]*Package, modPath string) []string {
	var order []string
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return // visiting (cycle: let the type checker report it) or done
		}
		state[path] = 1
		for _, imp := range localImports(pkgs[path], modPath) {
			if _, ok := pkgs[imp]; ok {
				visit(imp)
			}
		}
		state[path] = 2
		order = append(order, path)
	}
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		visit(path)
	}
	return order
}

func localImports(pkg *Package, modPath string) []string {
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// typeCheck type-checks the packages in order. Module-local imports
// resolve against the already-checked packages; everything else
// resolves from compiler export data located by one `go list -export`
// invocation over the union of external imports (the go toolchain is
// part of the environment; no analysis library is).
func typeCheck(prog *Program, pkgs map[string]*Package, order []string) error {
	external := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "unsafe" || path == "C" || pkgs[path] != nil {
					continue
				}
				if !strings.HasPrefix(path, prog.ModulePath+"/") {
					external[path] = true
				}
			}
		}
	}
	exports, err := exportData(prog.Root, external)
	if err != nil {
		return err
	}
	imp := &progImporter{local: pkgs, exports: exports}
	imp.std = importer.ForCompiler(prog.Fset, "gc", imp.lookup)
	for _, path := range order {
		pkg := pkgs[path]
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { prog.TypeErrors = append(prog.TypeErrors, err) },
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		// Check returns an error on the first problem but the collected
		// Info is still usable; TypeErrors carries the diagnostics.
		pkg.Types, _ = conf.Check(path, prog.Fset, pkg.Files, pkg.Info)
	}
	return nil
}

type progImporter struct {
	local   map[string]*Package
	exports map[string]string // import path -> export data file
	std     types.Importer
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := im.local[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import cycle or unchecked local package %q", path)
		}
		return pkg.Types, nil
	}
	return im.std.Import(path)
}

func (im *progImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := im.exports[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// exportData asks the go command for compiled export data covering the
// given import paths and their dependencies. One invocation serves the
// whole load; results come from the build cache.
func exportData(dir string, paths map[string]bool) (map[string]string, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	args := []string{"list", "-deps", "-export", "-e", "-json=ImportPath,Export"}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	args = append(args, sorted...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list -export: %v\n%s", err, errb.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(&out)
	for {
		var entry struct{ ImportPath, Export string }
		if err := dec.Decode(&entry); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list -export output: %v", err)
		}
		if entry.Export != "" {
			exports[entry.ImportPath] = entry.Export
		}
	}
	return exports, nil
}
