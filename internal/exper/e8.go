package exper

import (
	"fmt"
	"runtime"
	"time"

	"sublineardp/internal/core"
	"sublineardp/internal/problems"
)

// E8Speedup measures wall-clock self-speedup of the goroutine-backed
// executor: the same banded solve at 1, 2 and 4 workers. The paper's
// machine is an abstract PRAM; this experiment documents that the
// simulation substrate actually runs in parallel (Brent scheduling on
// real cores), which is what makes the wall-clock benchmarks meaningful.
func E8Speedup(cfg Config) []*Table {
	n := 96
	reps := 3
	if cfg.Quick {
		n = 48
		reps = 1
	}
	in := problems.Zigzag(n).Materialize()

	t := &Table{
		ID:       "E8",
		Title:    fmt.Sprintf("Wall-clock self-speedup, banded variant, zigzag n=%d", n),
		PaperRef: "implicit: the CREW PRAM is simulated by a worker pool (Brent's theorem)",
		Columns:  []string{"workers", "best wall time", "speedup vs 1 worker"},
	}

	var base time.Duration
	for _, workers := range []int{1, 2, 4} {
		best := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			core.Solve(in, core.Options{Variant: core.Banded, Workers: workers})
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
		}
		if workers == 1 {
			base = best
		}
		t.AddRow(workers, best.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(best)))
	}
	t.Note("host: GOMAXPROCS=%d, NumCPU=%d — on small cloud hosts the vCPUs are often SMT siblings of one physical core, capping the attainable speedup near 1; results (tables, accounting) are worker-count invariant regardless",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	return []*Table{t}
}
