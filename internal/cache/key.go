// Package cache provides the content-addressed solution cache under the
// serving layer and the root WithCache solver option: canonical-instance
// hashing, a sharded LRU, and a single-flight group that folds identical
// in-flight computations into one.
//
// The package is deliberately generic — it stores any value type and
// knows nothing about instances or solutions — so it cannot create an
// import cycle with the root package. Correctness rests on the keying
// discipline of its callers: a Key must be derived (via Hasher) from the
// instance's canonical encoding plus every configuration field that can
// change the cached value.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Key is a 256-bit content hash. Collision probability is negligible at
// any realistic cache size, so lookups compare keys only, never values.
type Key [sha256.Size]byte

// String returns the key as lowercase hex, for logs and metrics labels.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// shard maps the key onto one of n LRU shards. The hash bytes are
// uniformly distributed, so the first word is as good as any.
func (k Key) shard(n int) int {
	return int(binary.BigEndian.Uint64(k[:8]) % uint64(n))
}

// Hasher accumulates labeled fields into a Key. Every field write is
// length-prefixed and label-tagged, so distinct field sequences cannot
// collide by concatenation ("ab"+"c" vs "a"+"bc").
type Hasher struct {
	h hash.Hash
}

// NewHasher returns an empty Hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

func (h *Hasher) writeLen(n int) {
	var buf [binary.MaxVarintLen64]byte
	h.h.Write(buf[:binary.PutUvarint(buf[:], uint64(n))])
}

// Bytes adds a labeled byte field.
func (h *Hasher) Bytes(label string, b []byte) *Hasher {
	h.writeLen(len(label))
	h.h.Write([]byte(label))
	h.writeLen(len(b))
	h.h.Write(b)
	return h
}

// String adds a labeled string field.
func (h *Hasher) String(label, s string) *Hasher { return h.Bytes(label, []byte(s)) }

// Int64 adds a labeled integer field.
func (h *Hasher) Int64(label string, v int64) *Hasher {
	var buf [binary.MaxVarintLen64]byte
	return h.Bytes(label, buf[:binary.PutVarint(buf[:], v)])
}

// Bool adds a labeled boolean field.
func (h *Hasher) Bool(label string, v bool) *Hasher {
	b := int64(0)
	if v {
		b = 1
	}
	return h.Int64(label, b)
}

// Sum finalises the accumulated fields into a Key. The Hasher must not
// be used again afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}
