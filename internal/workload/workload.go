// Package workload generates realistic instances of the paper's three
// applications — the workloads its introduction motivates ("optimal
// control, industrial engineering, and economics" via matrix products,
// compiler/search-structure construction via OBST, geometry via
// triangulation). The generators are deterministic given a seed, so
// experiments and benchmarks are reproducible.
//
// The chain families — TelemetrySeries (segmented least squares),
// JobSchedule (weighted interval scheduling) and CoinFeasibility
// (subset sum) — are the 1D prefix-recurrence counterparts, one per
// registered semiring.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
)

// Zipf returns n integer weights following a Zipf distribution with the
// given exponent s (weight of rank r proportional to 1/r^s), scaled so
// the largest weight is `scale`. Rank order is shuffled with the seed so
// the heavy keys are spread across positions, as in real key sets.
func Zipf(n int, s float64, scale int64, seed int64) []int64 {
	if n < 1 || s <= 0 || scale < 1 {
		panic(fmt.Sprintf("workload: bad Zipf parameters n=%d s=%v scale=%d", n, s, scale))
	}
	ws := make([]int64, n)
	for r := 0; r < n; r++ {
		w := float64(scale) / math.Pow(float64(r+1), s)
		if w < 1 {
			w = 1
		}
		ws[r] = int64(w)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { ws[i], ws[j] = ws[j], ws[i] })
	return ws
}

// DictionaryOBST builds an optimal-BST instance for a dictionary of m
// keys whose access frequencies are Zipf-distributed (the classic
// motivation: a static keyword table). Gap weights model unsuccessful
// lookups at a fraction of the key mass.
func DictionaryOBST(m int, seed int64) *recurrence.Instance {
	beta := Zipf(m, 1.07, 10_000, seed)
	alpha := make([]int64, m+1)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range alpha {
		alpha[i] = 1 + rng.Int63n(200)
	}
	in := problems.OBST(alpha, beta)
	in.Name = fmt.Sprintf("dictionary-obst-m%d-s%d", m, seed)
	return in
}

// MLPChain returns the matrix-chain instance for evaluating the product
// of an MLP's weight matrices against a single input vector — the shape
// of an inference-time composition W_L * ... * W_1 * x. Layer widths
// interpolate from `in` to `out` through `hidden`, a realistic case where
// association order changes the multiplication count by orders of
// magnitude.
func MLPChain(layers int, inDim, hidden, outDim int) *recurrence.Instance {
	if layers < 1 || inDim < 1 || hidden < 1 || outDim < 1 {
		panic("workload: bad MLP parameters")
	}
	dims := make([]int, 0, layers+2)
	dims = append(dims, 1) // the input vector as a 1 x inDim row
	dims = append(dims, inDim)
	for l := 1; l < layers; l++ {
		dims = append(dims, hidden)
	}
	dims = append(dims, outDim)
	inst := problems.MatrixChain(dims)
	inst.Name = fmt.Sprintf("mlp-chain-l%d-%dx%dx%d", layers, inDim, hidden, outDim)
	return inst
}

// WorstCaseChainDims returns the dimension list of one WorstCaseChain
// instance — exported separately so cmd/dploadgen can render the exact
// same family as wire requests without duplicating the sampler.
func WorstCaseChainDims(n int, seed int64) []int {
	if n < 2 {
		panic("workload: WorstCaseChain needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	dims := make([]int, n+1)
	dims[0] = 1
	for i := 1; i <= n; i++ {
		dims[i] = 8 + rng.Intn(4*n)
	}
	return dims
}

// WorstCaseChain returns the max-plus twin of a realistic inference
// chain: the adversarial evaluation-order bound for an MLP-shaped matrix
// product with jittered layer widths. Planners fire these alongside the
// min-plus mix to price the best-vs-worst association spread.
func WorstCaseChain(n int, seed int64) *recurrence.Instance {
	in := problems.WorstCaseMatrixChain(WorstCaseChainDims(n, seed))
	in.Name = fmt.Sprintf("worstchain-n%d-s%d", n, seed)
	return in
}

// FeasibilityPlan returns a bool-plan forbidden-split instance over n
// objects — the shape of "can this product be evaluated without ever
// materialising one of these intermediates" constraint queries. Three of
// every four seeds ban a random ~n/3-sized span set (almost always
// feasible: sparse bans rarely block all Catalan-many trees); every
// fourth seed bans the complete span-2 layer, a constraint wall no tree
// avoids (every parenthesization pairs two adjacent objects somewhere),
// so load mixes deterministically exercise both outcomes end to end.
func FeasibilityPlan(n int, seed int64) *recurrence.Instance {
	in := problems.ForbiddenSplits(n, FeasibilitySpans(n, seed))
	in.Name = fmt.Sprintf("feasibilityplan-n%d-s%d", n, seed)
	return in
}

// FeasibilitySpans returns the forbidden-span set of one FeasibilityPlan
// instance — exported separately so cmd/dploadgen can render the exact
// same family as wire requests without duplicating the sampler.
func FeasibilitySpans(n int, seed int64) [][2]int {
	if n < 2 {
		panic("workload: FeasibilityPlan needs n >= 2")
	}
	var forbidden [][2]int
	if seed%4 == 3 {
		for i := 0; i+2 <= n; i++ {
			forbidden = append(forbidden, [2]int{i, i + 2})
		}
		return forbidden
	}
	rng := rand.New(rand.NewSource(seed))
	m := 1 + n/3
	for len(forbidden) < m {
		i := rng.Intn(n)
		j := i + 2 + rng.Intn(n-i) // spans >= 2: never ban a leaf outright
		if j > n {
			continue
		}
		if i == 0 && j == n {
			continue // banning the root is a trivial infeasibility
		}
		forbidden = append(forbidden, [2]int{i, j})
	}
	return forbidden
}

// TelemetrySeries returns a segmented-least-squares chain over a noisy
// piecewise-linear series — the "fit a changing trend with as few
// segments as the penalty justifies" shape of telemetry compression and
// changepoint detection. Min-plus.
func TelemetrySeries(n int, seed int64) *recurrence.Chain {
	xs, ys := problems.RandomSeries(n, seed)
	c := problems.SegmentedLeastSquares(xs, ys, 500+(seed%7)*250)
	c.Name = fmt.Sprintf("telemetry-series-n%d-s%d", n, seed)
	return c
}

// JobSchedule returns a weighted-interval-scheduling chain over n jobs
// with overlapping spans and skewed weights — the booking/reservation
// shape where the optimum must skip locally attractive jobs. Max-plus.
func JobSchedule(n int, seed int64) *recurrence.Chain {
	starts, ends, weights := problems.RandomJobs(n, seed)
	c := problems.IntervalScheduling(starts, ends, weights)
	c.Name = fmt.Sprintf("job-schedule-n%d-s%d", n, seed)
	return c
}

// CoinFeasibility returns a subset-sum chain asking whether `target` is
// reachable from a small random coin system — the denomination-coverage
// query shape. Every fourth seed uses a coprime-free system ({2k, 4k,
// 6k}) against an odd target, a deterministic infeasibility, so load
// mixes exercise both outcomes. Bool-plan.
func CoinFeasibility(target int64, seed int64) *recurrence.Chain {
	c := problems.SubsetSum(target, CoinSystem(target, seed))
	c.Name = fmt.Sprintf("coin-feasibility-t%d-s%d", target, seed)
	return c
}

// CoinSystem returns the item set of one CoinFeasibility instance —
// exported separately so cmd/dploadgen can render the exact same family
// as wire requests without duplicating the sampler.
func CoinSystem(target int64, seed int64) []int64 {
	if target < 2 {
		panic("workload: CoinFeasibility needs target >= 2")
	}
	if seed%4 == 3 {
		k := 1 + seed%3
		return []int64{2 * k, 4 * k, 6 * k} // all even: odd targets unreachable
	}
	rng := rand.New(rand.NewSource(seed))
	m := 2 + rng.Intn(3)
	items := make([]int64, m)
	for i := range items {
		items[i] = 1 + rng.Int63n(target/2+1)
	}
	return items
}

// SensorPolygon returns a triangulation instance over a convex polygon
// whose radii jitter around a circle — the "coverage mesh" shape used in
// terrain and sensor-field triangulation demos.
func SensorPolygon(n int, radius int64, jitter float64, seed int64) *recurrence.Instance {
	if n < 2 || radius < 1 || jitter < 0 || jitter >= 1 {
		panic("workload: bad polygon parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	angles := make([]float64, n+1)
	for i := range angles {
		angles[i] = rng.Float64() * 2 * math.Pi
	}
	for i := 1; i < len(angles); i++ {
		for k := i; k > 0 && angles[k] < angles[k-1]; k-- {
			angles[k], angles[k-1] = angles[k-1], angles[k]
		}
	}
	vs := make([]problems.Point, n+1)
	for t := range vs {
		// Jitter the radius but keep the polygon convex by bounding the
		// perturbation well below the chord sagitta; small jitter keeps
		// angular monotonicity, which is what the solvers require.
		r := float64(radius) * (1 - jitter*rng.Float64())
		vs[t] = problems.Point{
			X: int64(math.Round(r * math.Cos(angles[t]))),
			Y: int64(math.Round(r * math.Sin(angles[t]))),
		}
	}
	in := problems.Triangulation(vs)
	in.Name = fmt.Sprintf("sensor-polygon-n%d-s%d", n, seed)
	return in
}
