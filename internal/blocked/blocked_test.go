package blocked

import (
	"context"
	"runtime"
	"testing"

	"sublineardp/internal/algebra"
	"sublineardp/internal/parutil"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
	"sublineardp/internal/verify"
)

// bitwiseEqual is stricter than Table.Equal: no Norm — the blocked
// engine promises the exact bytes of the sequential table.
func bitwiseEqual(a, b *recurrence.Table) bool {
	if a.N != b.N {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			return false
		}
	}
	return true
}

// The tile-boundary sweep: every residue class of n mod B that matters
// (0, 1, B-1), tiles wider than the instance, degenerate B=1, and odd
// co-prime shapes, bitwise against the sequential DP.
func TestBlockedMatchesSequentialAcrossTileBoundaries(t *testing.T) {
	cases := []struct{ n, tile int }{
		{1, 0}, {2, 0}, {3, 2}, {7, 3},
		{16, 4}, // n+1 % B == 1
		{15, 4}, // n+1 % B == 0
		{14, 4}, // n+1 % B == B-1
		{17, 4}, {23, 5}, {31, 8},
		{24, 1},  // one index per block
		{24, 64}, // single tile (pure in-tile closure)
		{40, 7}, {40, 0},
	}
	for _, tc := range cases {
		in := problems.RandomInstance(tc.n, 90, int64(tc.n*31+tc.tile))
		want := seq.Solve(in)
		got := Solve(in, Options{TileSize: tc.tile})
		if !bitwiseEqual(got.Table, want.Table) {
			t.Errorf("n=%d tile=%d: table differs from sequential: %v",
				tc.n, tc.tile, got.Table.Diff(want.Table, 3))
		}
		if rep := verify.Table(in, got.Table); !rep.OK() {
			t.Errorf("n=%d tile=%d: not a fixed point: %v", tc.n, tc.tile, rep.Err())
		}
		if want := EffectiveTileSize(tc.n, tc.tile, runtime.GOMAXPROCS(0)); got.TileSize != want {
			t.Errorf("n=%d tile=%d: effective tile %d, want %d", tc.n, tc.tile, got.TileSize, want)
		}
	}
}

// Every shipped algebra must come out bitwise equal to the generic
// sequential sweep, including the promoted-interface dispatch path.
func TestBlockedMatchesSequentialAcrossSemirings(t *testing.T) {
	instances := []*recurrence.Instance{
		problems.RandomInstance(21, 70, 3),
		problems.RandomMatrixChain(26, 50, 5),
		problems.Zigzag(19),
	}
	for _, name := range algebra.Names() {
		sr, _ := algebra.Lookup(name)
		for _, in := range instances {
			want, err := seq.SolveSemiringCtx(context.Background(), in, sr)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SolveCtx(context.Background(), in, Options{TileSize: 5, Semiring: sr})
			if err != nil {
				t.Fatal(err)
			}
			if !bitwiseEqual(got.Table, want.Table) {
				t.Errorf("%s/%s: table differs: %v", name, in.Name, got.Table.Diff(want.Table, 3))
			}
		}
	}
}

// The interface (non-stenciled) dispatch path must agree too: force it
// by passing a wrapper the concrete-type switch cannot see.
type wrappedMinPlus struct{ algebra.MinPlus }

func TestBlockedGenericKernelPath(t *testing.T) {
	in := problems.RandomInstance(18, 60, 11)
	want := seq.Solve(in)
	got, err := SolveCtx(context.Background(), in, Options{TileSize: 4, Semiring: wrappedMinPlus{}})
	if err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqual(got.Table, want.Table) {
		t.Errorf("wrapped kernel diverges: %v", got.Table.Diff(want.Table, 3))
	}
}

// Recording split points must be invisible to the value table — the
// recording kernel bodies run the exact same arithmetic, so the bytes
// match a non-recording solve — and must reproduce the sequential
// engine's recorded splits exactly (smallest k achieving the optimum)
// on every registered algebra, across tile boundaries.
func TestBlockedRecordedSplitsMatchSequential(t *testing.T) {
	instances := []*recurrence.Instance{
		problems.RandomInstance(21, 70, 3),
		problems.RandomMatrixChain(26, 50, 5),
		problems.Zigzag(19),
	}
	ctx := context.Background()
	for _, name := range algebra.Names() {
		sr, _ := algebra.Lookup(name)
		for _, in := range instances {
			want, err := seq.SolveSemiringCtx(ctx, in, sr)
			if err != nil {
				t.Fatal(err)
			}
			for _, tile := range []int{1, 4, 7, 64} {
				plain, err := SolveCtx(ctx, in, Options{TileSize: tile, Semiring: sr})
				if err != nil {
					t.Fatal(err)
				}
				if plain.Splits != nil {
					t.Fatalf("%s/%s tile=%d: splits recorded without RecordSplits", name, in.Name, tile)
				}
				rec, err := SolveCtx(ctx, in, Options{TileSize: tile, Semiring: sr, RecordSplits: true})
				if err != nil {
					t.Fatal(err)
				}
				if !bitwiseEqual(rec.Table, plain.Table) {
					t.Errorf("%s/%s tile=%d: recording changed the value table: %v",
						name, in.Name, tile, rec.Table.Diff(plain.Table, 3))
				}
				for i := 0; i <= in.N; i++ {
					for j := i + 2; j <= in.N; j++ {
						if got, exp := rec.Split(i, j), want.Split(i, j); got != exp {
							t.Errorf("%s/%s tile=%d: split(%d,%d) = %d, sequential recorded %d",
								name, in.Name, tile, i, j, got, exp)
						}
					}
					if i < in.N {
						if got := rec.Split(i, i+1); got != -1 {
							t.Errorf("%s/%s tile=%d: leaf split(%d,%d) = %d, want -1",
								name, in.Name, tile, i, i+1, got)
						}
					}
				}
			}
		}
	}
}

// The interface (non-stenciled) recording path — via the generic
// derived walkers — must agree with the concrete one.
func TestBlockedRecordedSplitsGenericKernelPath(t *testing.T) {
	in := problems.RandomMatrixChain(23, 60, 13)
	want := seq.Solve(in)
	rec, err := SolveCtx(context.Background(), in,
		Options{TileSize: 4, Semiring: wrappedMinPlus{}, RecordSplits: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= in.N; i++ {
		for j := i + 2; j <= in.N; j++ {
			if got, exp := rec.Split(i, j), want.Split(i, j); got != exp {
				t.Errorf("generic split(%d,%d) = %d, sequential recorded %d", i, j, got, exp)
			}
		}
	}
}

func TestBlockedCancellation(t *testing.T) {
	in := problems.RandomInstance(220, 80, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveCtx(ctx, in, Options{TileSize: 16})
	if err == nil || res != nil {
		t.Fatalf("cancelled solve returned (%v, %v), want nil result and ctx error", res, err)
	}
}

func TestBlockedSharedPool(t *testing.T) {
	pool := parutil.NewPool(3)
	defer pool.Close()
	in := problems.RandomMatrixChain(60, 40, 9)
	want := seq.Solve(in)
	got, err := SolveCtx(context.Background(), in, Options{TileSize: 8, Pool: pool, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqual(got.Table, want.Table) {
		t.Errorf("pooled solve diverges: %v", got.Table.Diff(want.Table, 3))
	}
	if got.Acct.Work == 0 || got.Acct.Time == 0 {
		t.Errorf("accounting empty: %+v", got.Acct)
	}
}

// The candidate ledger must be exact: the blocked schedule visits every
// (i,k,j) triple exactly once, so charged work equals the sequential
// candidate count regardless of tile size.
func TestBlockedWorkMatchesSequential(t *testing.T) {
	for _, tile := range []int{1, 3, 8, 64} {
		in := problems.RandomInstance(33, 50, 2)
		want := seq.Solve(in).Work
		got := Solve(in, Options{TileSize: tile})
		// Subtract the leaf-init ChargeUnit(n).
		if gotWork := got.Acct.Work - int64(in.N); gotWork != want {
			t.Errorf("tile=%d: charged work %d, sequential %d", tile, gotWork, want)
		}
	}
}
