package exper

import (
	"math"

	"sublineardp/internal/pebble"
)

// E4AverageCase reproduces Section 6: under uniformly random splits, the
// expected number of moves grows like O(log n). It compares the simulated
// game against the numeric solution of the paper's recurrence
// T(n) = 1 + (1/(n-1)) sum max(T(i), T(n-i)) and reports the log-fit.
func E4AverageCase(cfg Config) []*Table {
	sizes := []int{16, 32, 64, 128, 256, 512, 1024}
	trials := 200
	if cfg.Quick {
		sizes = []int{16, 32, 64}
		trials = 40
	}

	maxN := sizes[len(sizes)-1]
	rec := pebble.RecurrenceT(maxN)

	t := &Table{
		ID:       "E4",
		Title:    "Average moves on uniformly random split trees",
		PaperRef: "Section 6: T(n) = O(log n), hence O(log^2 n) expected algorithm time",
		Columns:  []string{"n", "trials", "mean moves", "max", "bound", "T(n) recurrence", "mean/log2(n)"},
	}

	var xs, means []float64
	for _, n := range sizes {
		st := pebble.SimulateRandom(n, trials, pebble.HLVRule, int64(1000+n))
		xs = append(xs, float64(n))
		means = append(means, st.Mean)
		t.AddRow(n, st.Trials, st.Mean, st.Max, st.Bound, rec[n], st.Mean/math.Log2(float64(n)))
	}

	f := logFit(xs, means)
	t.Note("simulated mean moves ~ %.2f*log2(n) + %.2f (R^2=%.3f); the paper proves O(log n)", f.Slope, f.Intercept, f.R2)
	t.Note("the recurrence T(n) upper-bounds the simulation: the game also pebbles through partial chains, the recurrence models only bottom-up pebbling")
	return []*Table{t}
}
