package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// KeyCoverage mechanizes the cache-key audit three PRs ran by hand:
// every field of the solve-affecting config struct must be hashed by a
// key-derivation function, or carry an explicit //lint:allow
// keycoverage annotation stating why it cannot change the result. An
// unkeyed result-affecting option is a wrong-answer-from-cache bug —
// one option set silently served another's solution.
type KeyCoverage struct {
	// PkgPath is the package holding the struct and key funcs, relative
	// to the module root ("" = the root package itself).
	PkgPath string
	// Struct is the config struct's type name.
	Struct string
	// KeyFuncs are the key-derivation functions; a field referenced in
	// any of them counts as keyed.
	KeyFuncs []string
}

func (*KeyCoverage) Name() string { return "keycoverage" }
func (*KeyCoverage) Doc() string {
	return "every solve-affecting config field must be hashed by the solve-key functions or carry an explicit exemption"
}

func (a *KeyCoverage) Run(prog *Program) []Finding {
	pkg := prog.Pkg(a.PkgPath)
	if pkg == nil || pkg.Types == nil {
		return nil
	}
	obj := pkg.Types.Scope().Lookup(a.Struct)
	if obj == nil {
		return []Finding{{Check: a.Name(), Message: "struct " + a.Struct + " not found in " + pkg.Path}}
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return []Finding{{Check: a.Name(), Message: a.Struct + " is not a struct"}}
	}
	fields := map[types.Object]bool{} // field -> referenced in a key func
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = false
	}

	keyFuncs := map[string]bool{}
	for _, name := range a.KeyFuncs {
		keyFuncs[name] = true
	}
	seen := 0
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !keyFuncs[fd.Name.Name] || fd.Body == nil {
				continue
			}
			seen++
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
					if _, tracked := fields[s.Obj()]; tracked {
						fields[s.Obj()] = true
					}
				}
				return true
			})
		}
	}
	if seen == 0 {
		return []Finding{{Check: a.Name(), Message: "none of the key functions " + strings.Join(a.KeyFuncs, "/") + " found in " + pkg.Path}}
	}

	var out []Finding
	// Report in declaration order at each field's own position.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if fields[f] {
			continue
		}
		out = append(out, finding(prog, a.Name(), f.Pos(),
			"%s.%s is not hashed by %s: a result-affecting value here is a wrong-answer-from-cache bug — hash it, or annotate why it cannot change the Solution",
			a.Struct, f.Name(), strings.Join(a.KeyFuncs, "/")))
	}
	return out
}
