// Package txtplot renders small ASCII charts for the experiment harness
// and the CLIs: convergence histories, scaling curves, and bar
// comparisons, all in plain text so they live inside EXPERIMENTS.md and
// terminal output.
package txtplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a plot.
type Series struct {
	Name string
	Ys   []float64
}

// Lines renders one or more series as a height x width character grid
// with a y-axis scale. X positions are the sample indices, compressed or
// stretched to the width. Each series draws with its own glyph.
func Lines(width, height int, xs []float64, series ...Series) string {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Ys) > maxLen {
			maxLen = len(s.Ys)
		}
		for _, y := range s.Ys {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if maxLen == 0 {
		return "(empty plot)\n"
	}
	if lo == hi {
		hi = lo + 1
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i, y := range s.Ys {
			col := 0
			if maxLen > 1 {
				col = i * (width - 1) / (maxLen - 1)
			}
			row := int(math.Round((hi - y) / (hi - lo) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}
	var b strings.Builder
	for r := 0; r < height; r++ {
		yval := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.2f |%s\n", yval, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "\n")
	if len(xs) > 0 {
		fmt.Fprintf(&b, "%11s x: %s .. %s\n", "", trim(xs[0]), trim(xs[len(xs)-1]))
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%11s legend: %s\n", "", strings.Join(legend, "   "))
	}
	return b.String()
}

// Bars renders a horizontal bar chart with proportional widths.
func Bars(labels []string, values []float64, maxWidth int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("txtplot: %d labels for %d values", len(labels), len(values)))
	}
	if maxWidth < 4 {
		maxWidth = 4
	}
	maxV := 0.0
	labW := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > labW {
			labW = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for i, v := range values {
		w := int(math.Round(v / maxV * float64(maxWidth)))
		if w < 1 && v > 0 {
			w = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", labW, labels[i], strings.Repeat("#", w), trim(v))
	}
	return b.String()
}

func trim(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
