// Quickstart: solve the textbook matrix-chain instance with the paper's
// parallel algorithm through the unified Solver API and compare against
// the sequential optimum.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"sublineardp"
)

func main() {
	// Six matrices: 30x35, 35x15, 15x5, 5x10, 10x20, 20x25 (CLRS §15.2).
	in := sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	ctx := context.Background()

	// The paper's algorithm: the "hlv-banded" engine is the
	// O(n^3.5/log n)-processor variant of Section 5 with synchronous
	// PRAM-faithful updates and the fixed 2*ceil(sqrt(n)) budget.
	solver, err := sublineardp.NewSolver(sublineardp.EngineHLVBanded)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := solver.Solve(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel optimum:  %d scalar multiplications\n", sol.Cost())
	fmt.Printf("iterations:        %d (worst-case budget %d)\n",
		sol.Iterations, sublineardp.WorstCaseIterations(in.N))
	fmt.Printf("PRAM accounting:   %s\n", sol.Acct.String())

	// The O(n^3) sequential baseline through the same API; its Solution
	// reconstructs the optimal tree from recorded split points.
	seqSolver, err := sublineardp.NewSolver(sublineardp.EngineSequential)
	if err != nil {
		log.Fatal(err)
	}
	seqSol, err := seqSolver.Solve(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential optimum: %d\n", seqSol.Cost())
	if sol.Cost() != seqSol.Cost() {
		log.Fatal("parallel and sequential optima disagree")
	}

	tree, err := seqSol.Tree()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal parenthesization ((A1(A2A3))((A4A5)A6)):")
	fmt.Print(tree.Render(nil))
}
