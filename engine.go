package sublineardp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sublineardp/internal/algebra"
	"sublineardp/internal/blocked"
	"sublineardp/internal/core"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/rytter"
	"sublineardp/internal/seq"
	"sublineardp/internal/wavefront"
)

// Engine is one algorithm for recurrence (*) behind the unified Solver
// API. Implementations must be safe for concurrent use: SolveBatch calls
// one Engine from many goroutines. Solve must honour ctx cancellation
// (return ctx.Err() promptly) and must return a non-nil Solution exactly
// when the error is nil. Every built-in engine consumes the one
// recurrence.Instance type under any registered algebra: the effective
// semiring is WithSemiring's override, else the instance's declared
// Algebra, else min-plus.
type Engine interface {
	// Name is the registry key ("sequential", "hlv-banded", ...).
	Name() string
	// Solve runs the engine on one instance under the given read-only
	// configuration.
	Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error)
}

// Registry names of the built-in engines.
const (
	// EngineAuto picks an engine per instance by size: n <= AutoCutoff
	// goes to the sequential scan, mid-sized instances to the banded HLV
	// iteration, and n > AutoLargeCutoff to the barrier-free pipelined
	// blocked engine (O(n^2) memory, zero wavefront barriers). The
	// cutoffs default to the built-in constants; WithCalibration installs
	// the measured, machine-local values a `dpbench -calibrate` pass
	// derived.
	EngineAuto = "auto"
	// EngineSequential is the classic O(n^3) dynamic program (records
	// split points, so Solution.Tree is O(n)).
	EngineSequential = "sequential"
	// EngineWavefront is the span-parallel linear-time baseline.
	EngineWavefront = "wavefront"
	// EngineRytter is Rytter's O(log^2 n)-time baseline the paper
	// improves upon.
	EngineRytter = "rytter"
	// EngineHLVDense is the paper's Sections 2-4 algorithm with the full
	// O(n^4) partial-weight array.
	EngineHLVDense = "hlv-dense"
	// EngineHLVBanded is the headline Section 5 algorithm storing only
	// deficits within the 2*ceil(sqrt n) band.
	EngineHLVBanded = "hlv-banded"
	// EngineBlocked is the work-efficient blocked engine: B x B tiles in
	// anti-diagonal block-wavefront order, O(n^3) work and O(n^2) memory
	// — the large-instance engine (n = 1024-4096 and beyond) where the
	// HLV partial-weight arrays cannot even be allocated.
	EngineBlocked = "blocked"
	// EngineBlockedPipe is the barrier-free pipelined blocked engine: the
	// same tile decomposition as "blocked", executed as a dependency
	// graph — every tile carries an atomic in-degree counter derived from
	// the phase-A/phase-B read sets and dispatches the moment it drops to
	// zero, so anti-diagonals stream into each other with no wavefront
	// barriers (Solution.Stats reports 0 where "blocked" reports
	// 2(nb−1)). Tables and recorded splits are bitwise identical to
	// "blocked". SolveBatch seeds multiple instances' tile graphs into
	// one shared scheduler so independent solves overlap on one pool.
	EngineBlockedPipe = "blocked-pipe"
	// EngineBlockedKY is the Knuth-Yao pruned blocked engine: the same
	// tile wavefront as "blocked", but each cell scans only the candidate
	// window bounded by its neighbours' recorded splits — O(n^2) total
	// work instead of O(n^3), with the value table and split matrix
	// bitwise identical to the unpruned engine. Only instances declaring
	// the convexity conditions (Instance.Convex) under min-plus are
	// eligible; anything else fails with ErrConvexityRequired. Splits are
	// always recorded (they are the pruning bounds), so Solution.Tree is
	// O(n) without WithSplits.
	EngineBlockedKY = "blocked-ky"
	// EngineSemiring is a deprecated alias of the hlv-dense engine from
	// when only one engine understood WithSemiring; every engine now
	// evaluates any registered algebra. Kept registered so old clients
	// and wire requests keep resolving.
	EngineSemiring = "semiring"
)

var engineRegistry = struct {
	mu sync.RWMutex
	m  map[string]Engine
}{m: make(map[string]Engine)}

// RegisterEngine adds an engine to the registry under e.Name(). It
// rejects nil engines, empty names, and duplicates, so built-ins cannot
// be replaced by accident.
func RegisterEngine(e Engine) error {
	if e == nil || e.Name() == "" {
		return errors.New("sublineardp: RegisterEngine needs a non-nil engine with a non-empty name")
	}
	engineRegistry.mu.Lock()
	defer engineRegistry.mu.Unlock()
	if _, dup := engineRegistry.m[e.Name()]; dup {
		return fmt.Errorf("sublineardp: engine %q already registered", e.Name())
	}
	engineRegistry.m[e.Name()] = e
	return nil
}

// LookupEngine returns the engine registered under name.
func LookupEngine(name string) (Engine, bool) {
	engineRegistry.mu.RLock()
	defer engineRegistry.mu.RUnlock()
	e, ok := engineRegistry.m[name]
	return e, ok
}

// Engines returns the sorted names of all registered engines.
func Engines() []string {
	engineRegistry.mu.RLock()
	defer engineRegistry.mu.RUnlock()
	names := make([]string, 0, len(engineRegistry.m))
	for name := range engineRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EngineInfo describes one registered engine for CLI listings: what it
// implements and which functional options it honours.
type EngineInfo struct {
	Name        string
	Description string
	Options     string
}

// builtinInfo documents the shipped engines; third-party engines get a
// generic entry (their RegisterEngine call site is the authority on the
// options they interpret).
var builtinInfo = map[string]EngineInfo{
	EngineAuto: {Description: "size-based selector: sequential at n <= cutoff, hlv-banded in the mid range, blocked above the large cutoff",
		Options: "WithAutoCutoff, WithAutoLargeCutoff, WithSemiring + the chosen engine's options (iteration knobs apply only on the hlv tier)"},
	EngineSequential: {Description: "classic O(n^3) dynamic program with O(n) tree reconstruction",
		Options: "WithSemiring"},
	EngineWavefront: {Description: "span-parallel linear-time baseline",
		Options: "WithWorkers, WithPool, WithSemiring"},
	EngineRytter: {Description: "Rytter's 1988 O(log^2 n) pointer-doubling baseline",
		Options: "WithWorkers, WithPool, WithMaxIterations, WithTarget, WithSemiring"},
	EngineHLVDense: {Description: "paper Sections 2-4: full O(n^4) partial-weight array",
		Options: "WithWorkers, WithPool, WithTileSize, WithMode, WithTermination, WithMaxIterations, WithTarget, WithHistory, WithSemiring"},
	EngineHLVBanded: {Description: "paper Section 5: deficits within 2*ceil(sqrt n), tiled pooled kernels",
		Options: "WithWorkers, WithPool, WithTileSize, WithMode, WithTermination, WithMaxIterations, WithBandRadius, WithWindow, WithTarget, WithHistory, WithSemiring"},
	EngineBlocked: {Description: "work-efficient blocked wavefront: O(n^3) work, O(n^2) memory, solves n >= 1024",
		Options: "WithWorkers, WithPool, WithTileSize (block edge B), WithSemiring, WithSplits (O(n) tree reconstruction)"},
	EngineBlockedPipe: {Description: "barrier-free pipelined blocked engine: per-tile dependency counters, 0 barriers, bitwise identical to blocked; overlaps independent solves in SolveBatch",
		Options: "WithWorkers, WithPool, WithTileSize (block edge B), WithSemiring, WithSplits (O(n) tree reconstruction)"},
	EngineBlockedKY: {Description: "Knuth-Yao pruned blocked wavefront: O(n^2) work on declared-convex min-plus instances, bitwise identical to blocked",
		Options: "WithWorkers, WithPool, WithTileSize (block edge B); splits always recorded"},
	EngineSemiring: {Description: "deprecated alias of hlv-dense (every engine honours WithSemiring now)",
		Options: "WithSemiring, WithMaxIterations + hlv-dense options"},
}

// EngineInfos returns one EngineInfo per registered engine, sorted by
// name — the data behind `dpsolve -engines`.
func EngineInfos() []EngineInfo {
	names := Engines()
	infos := make([]EngineInfo, 0, len(names))
	for _, name := range names {
		info, ok := builtinInfo[name]
		if !ok {
			info = EngineInfo{Description: "custom engine (RegisterEngine)", Options: "engine-defined"}
		}
		info.Name = name
		infos = append(infos, info)
	}
	return infos
}

func init() {
	for _, e := range []Engine{
		autoEngine{},
		sequentialEngine{},
		wavefrontEngine{},
		rytterEngine{},
		hlvEngine{name: EngineHLVDense, variant: core.Dense},
		hlvEngine{name: EngineHLVBanded, variant: core.Banded},
		hlvEngine{name: EngineSemiring, variant: core.Dense},
		blockedEngine{},
		blockedPipeEngine{},
		blockedKYEngine{},
	} {
		if err := RegisterEngine(e); err != nil {
			panic(err)
		}
	}
}

// resolveSemiring picks the algebra one solve runs under: the config's
// explicit override, else the instance's declared algebra, else
// min-plus. Engines use it for algebra-dependent result shaping; the
// internal solvers re-resolve identically for their kernels.
func resolveSemiring(cfg *Config, in *Instance) (algebra.Kernel, error) {
	return algebra.Resolve(cfg.Semiring, in.Algebra)
}

// sequentialEngine wraps the O(n^3) baseline of internal/seq.
type sequentialEngine struct{}

func (sequentialEngine) Name() string { return EngineSequential }

func (sequentialEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	sr, err := resolveSemiring(cfg, in)
	if err != nil {
		return nil, err
	}
	res, err := seq.SolveSemiringCtx(ctx, in, sr)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Engine:      EngineSequential,
		Algebra:     sr.Name(),
		Table:       res.Table,
		Work:        res.Work,
		ConvergedAt: -1,
		instance:    in,
		splits:      res.Split,
		treeFn: func() (*Tree, error) {
			if !res.Feasible() {
				return nil, errors.New("sublineardp: no optimum to reconstruct (root is the algebra's Zero)")
			}
			return res.Tree(), nil
		},
	}, nil
}

// wavefrontEngine wraps the span-parallel baseline of internal/wavefront.
type wavefrontEngine struct{}

func (wavefrontEngine) Name() string { return EngineWavefront }

func (wavefrontEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := wavefront.SolveCtx(ctx, in, wavefront.Options{
		Workers:  cfg.Workers,
		Pool:     cfg.Pool,
		Semiring: cfg.Semiring,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Engine:      EngineWavefront,
		Algebra:     algebra.ResolveName(cfg.Semiring, in.Algebra),
		Table:       res.Table,
		Acct:        res.Acct,
		ConvergedAt: -1,
		instance:    in,
	}, nil
}

// rytterEngine wraps the 1988 pointer-doubling baseline of internal/rytter.
type rytterEngine struct{}

func (rytterEngine) Name() string { return EngineRytter }

func (rytterEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := rytter.SolveCtx(ctx, in, rytter.Options{
		Workers:       cfg.Workers,
		Pool:          cfg.Pool,
		MaxIterations: cfg.MaxIterations,
		Target:        cfg.Target,
		Semiring:      cfg.Semiring,
	})
	if err != nil {
		return nil, err
	}
	budget := cfg.MaxIterations
	if budget <= 0 {
		budget = rytter.DefaultIterations(in.N)
	}
	return &Solution{
		Engine:       EngineRytter,
		Algebra:      algebra.ResolveName(cfg.Semiring, in.Algebra),
		Table:        res.Table,
		Iterations:   res.Iterations,
		StoppedEarly: res.Iterations < budget,
		ConvergedAt:  res.ConvergedAt,
		Acct:         res.Acct,
		instance:     in,
	}, nil
}

// hlvEngine wraps the paper's algorithm (internal/core) in either storage
// variant. The same struct backs the deprecated "semiring" registry name
// (dense variant), which is why the Solution echoes e.name rather than a
// constant.
type hlvEngine struct {
	name    string
	variant Variant
}

func (e hlvEngine) Name() string { return e.name }

func (e hlvEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := core.SolveCtx(ctx, in, core.Options{
		Variant:       e.variant,
		Mode:          cfg.Mode,
		Termination:   cfg.Termination,
		Workers:       cfg.Workers,
		Pool:          cfg.Pool,
		TileSize:      cfg.TileSize,
		MaxIterations: cfg.MaxIterations,
		BandRadius:    cfg.BandRadius,
		Window:        cfg.Window,
		Target:        cfg.Target,
		History:       cfg.History,
		Semiring:      cfg.Semiring,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Engine:       e.name,
		Algebra:      algebra.ResolveName(cfg.Semiring, in.Algebra),
		Table:        res.Table,
		Iterations:   res.Iterations,
		StoppedEarly: res.StoppedEarly,
		ConvergedAt:  res.ConvergedAt,
		BandRadius:   res.BandRadius,
		Acct:         res.Acct,
		History:      res.History,
		instance:     in,
	}, nil
}

// blockedEngine wraps the work-efficient blocked wavefront of
// internal/blocked: the engine that breaks the HLV n=64 memory ceiling
// (O(n^2) memory, O(n^3) work) and therefore the auto choice for large
// instances.
type blockedEngine struct{}

func (blockedEngine) Name() string { return EngineBlocked }

func (blockedEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := blocked.SolveCtx(ctx, in, blocked.Options{
		Workers:      cfg.Workers,
		Pool:         cfg.Pool,
		TileSize:     cfg.TileSize,
		Semiring:     cfg.Semiring,
		RecordSplits: cfg.RecordSplits,
	})
	if err != nil {
		return nil, err
	}
	return blockedSolution(EngineBlocked, in, cfg, res), nil
}

// blockedSolution shapes a blocked.Result into a Solution — shared by
// the barrier ("blocked") and pipelined ("blocked-pipe") engines, whose
// results are bitwise interchangeable.
func blockedSolution(engine string, in *Instance, cfg *Config, res *blocked.Result) *Solution {
	sol := &Solution{
		Engine:      engine,
		Algebra:     algebra.ResolveName(cfg.Semiring, in.Algebra),
		Table:       res.Table,
		Acct:        res.Acct,
		Stats:       res.Stats,
		ConvergedAt: -1,
		instance:    in,
	}
	if res.Splits != nil {
		// WithSplits: O(n) reconstruction from the recorded matrix, the
		// same smallest-k choices as the sequential engine under every
		// algebra. An unreachable root records no split, which
		// TreeFromSplits reports as an error rather than a panic.
		sol.splits = res.Split
		sol.treeFn = func() (*Tree, error) {
			return recurrence.TreeFromSplits(in.N, res.Split)
		}
	}
	return sol
}

// blockedPipeEngine wraps the barrier-free pipelined driver of
// internal/blocked: the same tile decomposition as blockedEngine run as
// a dependency graph, bitwise-identical tables and splits, zero
// barriers on Solution.Stats. SolveBatch routes groups of pipe-destined
// instances through blocked.SolvePipeBatchCtx so their graphs share one
// scheduler.
type blockedPipeEngine struct{}

func (blockedPipeEngine) Name() string { return EngineBlockedPipe }

func (blockedPipeEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := blocked.SolvePipeCtx(ctx, in, blocked.Options{
		Workers:      cfg.Workers,
		Pool:         cfg.Pool,
		TileSize:     cfg.TileSize,
		Semiring:     cfg.Semiring,
		RecordSplits: cfg.RecordSplits,
	})
	if err != nil {
		return nil, err
	}
	return blockedSolution(EngineBlockedPipe, in, cfg, res), nil
}

// ErrConvexityRequired reports a solve that demanded Knuth-Yao pruning
// — the "blocked-ky" engine, or WithConvexity(true) — on an instance
// that is not eligible: it does not declare the convexity conditions
// (Instance.Convex) or its effective algebra is not min-plus, the only
// algebra the split-monotonicity theorem covers. Callers probing
// eligibility should test with errors.Is.
var ErrConvexityRequired = errors.New("sublineardp: Knuth-Yao pruning requires a declared-convex min-plus instance")

// blockedKYEngine wraps the Knuth-Yao pruned blocked wavefront of
// internal/blocked: O(n^2) work on declared-convex min-plus instances,
// bitwise identical tables and splits to the unpruned engine.
type blockedKYEngine struct{}

func (blockedKYEngine) Name() string { return EngineBlockedKY }

func (blockedKYEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	// Gate here with the package sentinel rather than relying on the
	// internal error alone, so the registry boundary has one stable
	// errors.Is target (the internal cause is kept in the chain).
	sr, err := resolveSemiring(cfg, in)
	if err != nil {
		return nil, err
	}
	if !in.Convex {
		return nil, fmt.Errorf("%w (instance %q does not declare Convex)", ErrConvexityRequired, in.Name)
	}
	if sr.Name() != algebra.NameMinPlus {
		return nil, fmt.Errorf("%w (instance %q resolves to algebra %q)", ErrConvexityRequired, in.Name, sr.Name())
	}
	res, err := blocked.SolveKYCtx(ctx, in, blocked.Options{
		Workers:  cfg.Workers,
		Pool:     cfg.Pool,
		TileSize: cfg.TileSize,
		Semiring: cfg.Semiring,
	})
	if err != nil {
		if errors.Is(err, blocked.ErrNotConvex) {
			// Unreachable after the gate above; kept so the sentinel
			// survives even if the internal eligibility rules tighten.
			return nil, fmt.Errorf("%w: %w", ErrConvexityRequired, err)
		}
		return nil, err
	}
	return &Solution{
		Engine:      EngineBlockedKY,
		Algebra:     sr.Name(),
		Table:       res.Table,
		Acct:        res.Acct,
		Stats:       res.Stats,
		ConvergedAt: -1,
		instance:    in,
		splits:      res.Split,
		treeFn: func() (*Tree, error) {
			return recurrence.TreeFromSplits(in.N, res.Split)
		},
	}, nil
}

// autoEngine is the size-based meta-engine: small instances go to the
// sequential scan, mid-sized ones to the banded HLV iteration, large
// ones to the pipelined blocked engine — under any algebra, since all
// three targets are generic. The returned Solution names the engine actually
// chosen. Routing is purely by size: options are interpreted by the
// chosen engine, so the iteration-discipline knobs (WithTermination,
// WithMaxIterations, WithHistory, WithTarget) take effect only when the
// HLV tier is selected — exactly as they always vanished on the
// sequential tier. Callers that need per-iteration instrumentation at
// any size should name an HLV engine explicitly.
type autoEngine struct{}

func (autoEngine) Name() string { return EngineAuto }

func (autoEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	return pickAuto(in, cfg).Solve(ctx, in, cfg)
}

// pickAuto resolves the auto engine's choice for an instance. Size sets
// the tier; a declared-convex min-plus instance above the sequential
// cutoff takes the Knuth-Yao pruned engine instead of either parallel
// tier (its O(n^2) work dominates both), and WithConvexity(true) forces
// the pruned engine at every size — Solve has already rejected
// ineligible instances by then.
func pickAuto(in *Instance, cfg *Config) Engine {
	name := pickAutoName(in, cfg)
	e, ok := LookupEngine(name)
	if !ok {
		// The built-ins are registered in init; this cannot fail.
		panic(fmt.Sprintf("sublineardp: built-in engine %q missing", name))
	}
	return e
}

// pickAutoName is pickAuto's routing table by registry name — also what
// SolveBatch consults to group pipe-destined instances into one shared
// scheduler. The large tier routes to the pipelined blocked engine: same
// bitwise tables as "blocked" with the wavefront barriers gone.
func pickAutoName(in *Instance, cfg *Config) string {
	n := in.N
	cutoff := cfg.AutoCutoff
	if cutoff <= 0 {
		cutoff = DefaultAutoCutoff
	}
	large := cfg.AutoLargeCutoff
	if large <= 0 {
		large = DefaultAutoLargeCutoff
	}
	if large < cutoff {
		large = cutoff
	}
	kyEligible := in.Convex && algebra.ResolveName(cfg.Semiring, in.Algebra) == algebra.NameMinPlus
	switch {
	case kyEligible && (cfg.Convexity || n > cutoff):
		return EngineBlockedKY
	case n <= cutoff:
		return EngineSequential
	case n <= large:
		return EngineHLVBanded
	default:
		return EngineBlockedPipe
	}
}
