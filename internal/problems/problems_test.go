package problems

import (
	"testing"
	"testing/quick"

	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

func TestMatrixChainCLRSShape(t *testing.T) {
	in := CLRSMatrixChain()
	if in.N != 6 {
		t.Fatalf("CLRS instance N = %d, want 6", in.N)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// f(0,1,6) = 30*35*25.
	if got := in.F(0, 1, 6); got != 30*35*25 {
		t.Errorf("f(0,1,6) = %d, want %d", got, 30*35*25)
	}
	if in.Init(3) != 0 {
		t.Error("matrix chain leaves must be free")
	}
}

func TestMatrixChainPanics(t *testing.T) {
	for _, dims := range [][]int{{}, {5}, {3, 0, 2}, {3, -1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v accepted", dims)
				}
			}()
			MatrixChain(dims)
		}()
	}
}

func TestRandomMatrixChainReproducible(t *testing.T) {
	a := RandomMatrixChain(10, 50, 3)
	b := RandomMatrixChain(10, 50, 3)
	for i := 0; i <= 10; i++ {
		for k := i + 1; k <= 10; k++ {
			for j := k + 1; j <= 10; j++ {
				if a.F(i, k, j) != b.F(i, k, j) {
					t.Fatalf("same seed, different f(%d,%d,%d)", i, k, j)
				}
			}
		}
	}
}

func TestOBSTStructure(t *testing.T) {
	alpha := []int64{1, 2, 3, 4}
	beta := []int64{10, 20, 30}
	in := OBST(alpha, beta)
	if in.N != 4 {
		t.Fatalf("OBST N = %d, want 4", in.N)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// init(i) = alpha[i].
	for i, a := range alpha {
		if got := in.Init(i); got != cost.Cost(a) {
			t.Errorf("init(%d) = %d, want %d", i, got, a)
		}
	}
	// f(i,k,j) = sum beta over keys i+1..j-1 + sum alpha over gaps i..j-1,
	// independent of k. f(0,k,4) = (10+20+30) + (1+2+3+4) = 70 for any k.
	for k := 1; k <= 3; k++ {
		if got := in.F(0, k, 4); got != 70 {
			t.Errorf("f(0,%d,4) = %d, want 70", k, got)
		}
	}
	// f(1,2,3): key 2 only (beta idx 1 = 20); gaps 1..2 (alpha 2+3).
	if got := in.F(1, 2, 3); got != 20+2+3 {
		t.Errorf("f(1,2,3) = %d, want %d", got, 20+2+3)
	}
}

func TestOBSTPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched alpha length accepted")
			}
		}()
		OBST([]int64{1, 2}, []int64{3, 4})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative weight accepted")
			}
		}()
		OBST([]int64{1, -1}, []int64{3})
	}()
}

func TestTriangulationPerimeter(t *testing.T) {
	// Right triangle (0,0) (3,0) (0,4): perimeter 3+4+5 = 12, scaled 12*1024.
	vs := []Point{{0, 0}, {3, 0}, {0, 4}}
	in := Triangulation(vs)
	if in.N != 2 {
		t.Fatalf("N = %d, want 2", in.N)
	}
	if got := in.F(0, 1, 2); got != 12*1024 {
		t.Errorf("triangle cost = %d, want %d", got, 12*1024)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedTriangulationMatchesMatrixChain(t *testing.T) {
	// With identical weight vectors the two instances are the same function.
	w := []int64{30, 35, 15, 5, 10, 20, 25}
	wi := WeightedTriangulation(w)
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	mc := MatrixChain(dims)
	if wi.N != mc.N {
		t.Fatal("size mismatch")
	}
	for i := 0; i <= wi.N; i++ {
		for k := i + 1; k <= wi.N; k++ {
			for j := k + 1; j <= wi.N; j++ {
				if wi.F(i, k, j) != mc.F(i, k, j) {
					t.Fatalf("f(%d,%d,%d) differs", i, k, j)
				}
			}
		}
	}
}

func TestRegularPolygonOnCircle(t *testing.T) {
	vs := RegularPolygon(7, 1000)
	if len(vs) != 8 {
		t.Fatalf("got %d vertices, want 8", len(vs))
	}
	for _, p := range vs {
		r2 := p.X*p.X + p.Y*p.Y
		if r2 < 990*990 || r2 > 1010*1010 {
			t.Errorf("vertex (%d,%d) not on circle", p.X, p.Y)
		}
	}
}

func TestRandomConvexPolygonSortedAngles(t *testing.T) {
	vs := RandomConvexPolygon(20, 10000, 5)
	if len(vs) != 21 {
		t.Fatalf("got %d vertices", len(vs))
	}
	// Convexity proxy: traversing vertices must wind monotonically, i.e.
	// all cross products of consecutive edge vectors share a sign (allowing
	// zeros from rounding).
	sign := 0
	m := len(vs)
	for t2 := 0; t2 < m; t2++ {
		a, b, c := vs[t2], vs[(t2+1)%m], vs[(t2+2)%m]
		cross := (b.X-a.X)*(c.Y-b.Y) - (b.Y-a.Y)*(c.X-b.X)
		switch {
		case cross > 0:
			if sign < 0 {
				t.Fatal("polygon not convex")
			}
			sign = 1
		case cross < 0:
			if sign > 0 {
				t.Fatal("polygon not convex")
			}
			sign = -1
		}
	}
}

func TestShapedZeroOnTree(t *testing.T) {
	tr := btree.Zigzag(9)
	in := Shaped(tr)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for span, k := range tr.Splits() {
		if got := in.F(span[0], k, span[1]); got != 0 {
			t.Errorf("on-tree split f(%d,%d,%d) = %d, want 0", span[0], k, span[1], got)
		}
	}
	// An off-tree split must be penalised.
	if got := in.F(0, 1, 9); got != ShapePenalty {
		// (0,9) splits at 8 in Zigzag(9) (depth-0 rule puts the big child left).
		t.Errorf("off-tree split cost = %d, want penalty", got)
	}
}

func TestShapedWithWeights(t *testing.T) {
	tr := btree.Complete(6)
	in := ShapedWithWeights(tr, 3, 2)
	for span, k := range tr.Splits() {
		if got := in.F(span[0], k, span[1]); got != 3 {
			t.Errorf("node cost = %d, want 3", got)
		}
	}
	if in.Init(0) != 2 {
		t.Error("leaf cost lost")
	}
}

func TestRandomInstanceValid(t *testing.T) {
	in := RandomInstance(12, 30, 77)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	b := RandomInstance(12, 30, 77)
	for i := 0; i <= 12; i++ {
		for k := i + 1; k <= 12; k++ {
			for j := k + 1; j <= 12; j++ {
				if in.F(i, k, j) != b.F(i, k, j) {
					t.Fatal("seeded RandomInstance not reproducible")
				}
			}
		}
	}
}

// Every constructor that ships a bulk FPanel must agree with its scalar
// F on all arguments — Validate cross-checks the two cell by cell, and
// materialisation must preserve the contract through its flat-copy form.
func TestFPanelAgreesWithF(t *testing.T) {
	ins := []*recurrence.Instance{
		RandomMatrixChain(13, 40, 3),
		RandomOBST(11, 30, 5),
		Triangulation(RandomConvexPolygon(10, 800, 7)),
		WeightedTriangulation([]int64{3, 1, 4, 1, 5, 9, 2, 6}),
		WorstCaseMatrixChain([]int{7, 3, 9, 2, 5}),
		ForbiddenSplits(9, [][2]int{{1, 3}, {2, 7}, {4, 5}}),
		RandomMatrixChain(12, 25, 9).Materialize(),
		Zigzag(10),
		ShapedWithWeights(btree.Complete(9), 3, 2),
		RandomShaped(11, 4),
		RandomInstance(10, 30, 6),
	}
	for _, in := range ins {
		if in.FPanel == nil {
			t.Errorf("%s: no FPanel", in.Name)
			continue
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", in.Name, err)
		}
	}
}

// Property: all generator families produce instances passing Validate.
func TestGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%14 + 2
		gens := []interface{ Validate() error }{
			RandomMatrixChain(n, 20, seed),
			RandomOBST(n, 20, seed),
			Triangulation(RandomConvexPolygon(n, 500, seed)),
			RandomShaped(n, seed),
			RandomInstance(n, 25, seed),
		}
		for _, g := range gens {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
