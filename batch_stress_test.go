package sublineardp_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sublineardp"
	"sublineardp/internal/problems"
	"sublineardp/internal/verify"
)

// stressInstances builds a batch of deliberately mixed sizes: tiny
// instances that finish instantly interleaved with larger ones that keep
// the pool busy, so claims, solves and buffer recycling overlap under
// -race (this file is part of the CI race job's root-package run).
func stressInstances(count int) []*sublineardp.Instance {
	sizes := []int{3, 40, 8, 24, 5, 48, 12, 33, 2, 21}
	out := make([]*sublineardp.Instance, count)
	for i := range out {
		n := sizes[i%len(sizes)]
		out[i] = problems.RandomInstance(n, 50, int64(i+1)).Materialize()
	}
	return out
}

// TestSolveBatchSharedPoolStress hammers one explicit pool from two
// dimensions of concurrency at once: several SolveBatch calls in flight,
// each with multi-instance concurrency and multi-worker solves, all
// dispatching onto the same four goroutines. Every slot must come back
// correct and verified.
func TestSolveBatchSharedPoolStress(t *testing.T) {
	pool := sublineardp.NewPool(4)
	defer pool.Close()
	instances := stressInstances(24)

	var wg sync.WaitGroup
	for batch := 0; batch < 3; batch++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sols, err := sublineardp.SolveBatch(context.Background(), instances,
				sublineardp.WithPool(pool),
				sublineardp.WithEngine(sublineardp.EngineHLVBanded),
				sublineardp.WithWorkers(2),
				sublineardp.WithConcurrency(4))
			if err != nil {
				t.Errorf("batch failed: %v", err)
				return
			}
			for i, sol := range sols {
				if sol == nil {
					t.Errorf("slot %d missing", i)
					continue
				}
				if rep := verify.Table(instances[i], sol.Table); !rep.OK() {
					t.Errorf("slot %d: %v", i, rep.Err())
				}
			}
		}()
	}
	wg.Wait()
}

// TestSolveBatchMidFlightCancellation cancels a shared-pool batch while
// solves are in flight: completed slots must hold verified solutions,
// unfinished slots must be nil with their errors joined as
// context.Canceled, and — the regression this pins — the pool must come
// out of the aborted batch healthy enough to run a full clean batch.
func TestSolveBatchMidFlightCancellation(t *testing.T) {
	pool := sublineardp.NewPool(4)
	defer pool.Close()
	// Large-ish banded solves so cancellation lands mid-iteration.
	instances := stressInstances(40)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	sols, err := sublineardp.SolveBatch(ctx, instances,
		sublineardp.WithPool(pool),
		sublineardp.WithEngine(sublineardp.EngineHLVBanded),
		sublineardp.WithConcurrency(4))
	if err == nil {
		t.Skip("batch finished before cancellation landed; nothing to assert")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	completed := 0
	for i, sol := range sols {
		if sol == nil {
			continue
		}
		completed++
		if rep := verify.Table(instances[i], sol.Table); !rep.OK() {
			t.Errorf("completed slot %d invalid after cancellation: %v", i, rep.Err())
		}
	}
	t.Logf("cancellation left %d/%d slots completed", completed, len(instances))

	// The shared pool and arena must be reusable after the abort.
	clean, err := sublineardp.SolveBatch(context.Background(), instances[:8],
		sublineardp.WithPool(pool), sublineardp.WithEngine(sublineardp.EngineHLVBanded))
	if err != nil {
		t.Fatalf("clean batch after abort failed: %v", err)
	}
	for i, sol := range clean {
		if rep := verify.Table(instances[i], sol.Table); !rep.OK() {
			t.Errorf("post-abort slot %d: %v", i, rep.Err())
		}
	}
}
