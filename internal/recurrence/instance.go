// Package recurrence defines the dynamic-programming problem family the
// paper calls recurrence (*):
//
//	c(i,j) = min_{i<k<j} { c(i,k) + c(k,j) + f(i,k,j) }    0 <= i < j <= n
//	c(i,i+1) = init(i)                                      0 <= i <= n-1
//
// with nonnegative f and init. Matrix-chain multiplication, optimal binary
// search trees and optimal polygon triangulation are all members (see
// internal/problems). Every solver in this repository consumes an Instance.
package recurrence

import (
	"errors"
	"fmt"

	"sublineardp/internal/cost"
)

// Instance is one concrete problem of the recurrence family (*).
//
// The objects being parenthesised are a_1..a_N; tree nodes are index pairs
// (i,j) with 0 <= i < j <= N; leaves are (i,i+1). The zero Instance is not
// usable: construct instances via internal/problems or fill all fields.
type Instance struct {
	// N is the number of objects; the answer sought is c(0,N).
	N int

	// Init gives the weight of leaf (i,i+1), 0 <= i <= N-1.
	Init func(i int) cost.Cost

	// F gives the decomposition cost f(i,k,j) of splitting node (i,j)
	// into sons (i,k) and (k,j), for 0 <= i < k < j <= N.
	F func(i, k, j int) cost.Cost

	// FPanel, when non-nil, bulk-evaluates F over one j-run: it fills
	// dst[t] = F(i, k, j0+t) for 0 <= t < len(dst), with every j0+t a
	// valid third argument (i < k < j0). It is semantically redundant
	// with F and must agree with it on every argument (Validate checks);
	// engines that sweep j-contiguous candidate runs (the blocked
	// engine's panels) use it to amortise the per-candidate closure call
	// into one tight loop. Constructors whose f has a cheap row form set
	// it; Materialize always provides one (a flat-table copy).
	FPanel func(i, k, j0 int, dst []cost.Cost)

	// Name labels the instance in experiment tables and error messages.
	Name string

	// Algebra names the idempotent semiring the recurrence is evaluated
	// over ("" means "min-plus", the paper's algebra). Every engine
	// resolves it through the algebra registry unless the caller
	// overrides it with an explicit semiring option; constructors of
	// intrinsically non-min-plus families (worst-case parenthesization,
	// forbidden-split feasibility) set it. The name participates in the
	// canonical encoding, so the same parameters under different
	// algebras can never share a cache entry.
	Algebra string

	// Canon, when non-nil, returns a stable, self-describing byte
	// encoding of the instance: two instances whose Canon bytes are equal
	// must describe the same recurrence (identical N, Init and F on every
	// argument). Constructors that build instances from concrete
	// parameters (matrix dimensions, OBST weights, polygon vertices) set
	// it; synthetic instances backed by opaque closures leave it nil and
	// are simply not canonicalisable. The encoding is the input to
	// content-addressed caching, so it must be injective per kind — it
	// always starts with a kind tag followed by the defining parameters.
	Canon func() []byte

	// Convex declares that the instance satisfies the Knuth–Yao
	// conditions for recurrence (*) under min-plus: f(i,k,j) is
	// independent of k — write it w(i,j), with w(i,i+1) = Init(i) — and w
	// satisfies the quadrangle inequality
	//
	//	w(i,j) + w(i',j') <= w(i,j') + w(i',j)   for i <= i' <= j <= j'
	//
	// and is monotone on interval inclusion (w(i',j) <= w(i,j') whenever
	// [i',j] ⊆ [i,j']). Under these conditions the smallest optimal split
	// K(i,j) is monotone — K(i,j-1) <= K(i,j) <= K(i+1,j) — which is what
	// licenses the pruned blocked-ky engine to scan only that candidate
	// window. The declaration is a constructor-made promise (OBST-style
	// families set it); Validate spot-checks it with a sampled auditor,
	// internal/verify.QuadrangleInequality audits it thoroughly, and it
	// participates in the canonical encoding so a declared-convex
	// instance never shares a cache entry with its undeclared twin.
	// Meaningful only under min-plus: Validate rejects the declaration on
	// instances declaring any other algebra.
	Convex bool
}

// Canonical returns the instance's stable canonical encoding and true,
// or nil and false when the instance has no Canon hook (and therefore
// cannot be content-addressed). The bytes are safe to hash or compare:
// equality implies every solver observes identical inputs — including
// the algebra, which is folded in as a tag so min-plus and max-plus
// solutions of the same parameters never collide in a cache.
//
// Min-plus instances (the default) keep exactly their Canon bytes, so
// content hashes from before algebras existed remain stable. Any other
// algebra is prefixed with "alg\x00<name>\x00"; Canon encodings start
// with a varint kind-name length, and no registered kind is the 97
// characters long a first byte of 'a' would imply, so the prefixed and
// unprefixed spaces cannot collide. A declared-convex instance gets the
// outermost prefix "qi\x00" (first byte 'q' = 113, colliding with no
// kind-name length either): convexity is a routing-relevant claim about
// the instance, so the declared and undeclared twins must never alias
// one cache entry.
func (in *Instance) Canonical() ([]byte, bool) {
	if in.Canon == nil {
		return nil, false
	}
	c := in.Canon()
	if in.Algebra != "" && in.Algebra != "min-plus" {
		tagged := make([]byte, 0, len(in.Algebra)+5+len(c))
		tagged = append(tagged, "alg\x00"...)
		tagged = append(tagged, in.Algebra...)
		tagged = append(tagged, 0)
		c = append(tagged, c...)
	}
	if in.Convex {
		c = append([]byte("qi\x00"), c...)
	}
	return c, true
}

// Validate checks the structural preconditions the paper assumes:
// N >= 1, callbacks present, and all init/f values nonnegative.
// It evaluates every init value and every f triple, so it is O(N^3);
// intended for tests and small experiment sizes. When the instance
// declares Convex it additionally runs a cheap sampled Knuth–Yao audit
// (k-independence of f plus the quadrangle inequality and monotonicity
// on deterministic sample quadruples); internal/verify's
// QuadrangleInequality is the thorough version.
func (in *Instance) Validate() error {
	if in.N < 1 {
		return fmt.Errorf("recurrence: instance %q has N=%d, need >= 1", in.Name, in.N)
	}
	if in.Init == nil || in.F == nil {
		return errors.New("recurrence: Init and F must be non-nil")
	}
	if in.Convex {
		if in.Algebra != "" && in.Algebra != "min-plus" {
			return fmt.Errorf("recurrence: instance %q declares Convex under algebra %q; the Knuth–Yao conditions are defined for min-plus only", in.Name, in.Algebra)
		}
		if err := in.convexAudit(); err != nil {
			return err
		}
	}
	for i := 0; i < in.N; i++ {
		if v := in.Init(i); v < 0 {
			return fmt.Errorf("recurrence: init(%d) = %d is negative", i, v)
		}
	}
	var panelRow []cost.Cost
	if in.FPanel != nil {
		panelRow = make([]cost.Cost, in.N+1)
	}
	for i := 0; i <= in.N; i++ {
		for k := i + 1; k <= in.N; k++ {
			if panelRow != nil && k < in.N {
				in.FPanel(i, k, k+1, panelRow[:in.N-k])
			}
			for j := k + 1; j <= in.N; j++ {
				v := in.F(i, k, j)
				if v < 0 {
					return fmt.Errorf("recurrence: f(%d,%d,%d) = %d is negative", i, k, j, v)
				}
				if panelRow != nil && panelRow[j-k-1] != v {
					return fmt.Errorf("recurrence: FPanel(%d,%d,%d) = %d disagrees with F = %d",
						i, k, j, panelRow[j-k-1], v)
				}
			}
		}
	}
	return nil
}

// convexWeight probes the Knuth–Yao weight w(i,j) of a declared-convex
// instance: Init for leaves, f(i,i+1,j) otherwise — legal because a
// convex f is independent of its split argument (convexAudit checks
// that first).
func (in *Instance) convexWeight(i, j int) cost.Cost {
	if j == i+1 {
		return in.Init(i)
	}
	return in.F(i, i+1, j)
}

// convexAudit spot-checks the declared Knuth–Yao conditions on a fixed
// deterministic sample: k-independence of f, then the quadrangle
// inequality and interval monotonicity of w over sampled quadruples
// i <= i' < j <= j'. A cheap gate — internal/verify.QuadrangleInequality
// is the thorough randomized auditor.
func (in *Instance) convexAudit() error {
	n := in.N
	// xorshift64*: deterministic, seedless, no math/rand dependency.
	state := uint64(0x9e3779b97f4a7c15)
	next := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int((state * 0x2545f4914f6cdd1d >> 33) % uint64(bound))
	}
	samples := 8 * n
	if samples > 512 {
		samples = 512
	}
	for s := 0; s < samples && n >= 3; s++ {
		i := next(n - 2)
		j := i + 3 + next(n-i-2) // j in [i+3, n]
		k1, k2 := i+1+next(j-i-1), i+1+next(j-i-1)
		if a, b := in.F(i, k1, j), in.F(i, k2, j); a != b {
			return fmt.Errorf("recurrence: instance %q declares Convex but f(%d,%d,%d)=%d != f(%d,%d,%d)=%d (f must not depend on the split)",
				in.Name, i, k1, j, a, i, k2, j, b)
		}
	}
	for s := 0; s < samples && n >= 2; s++ {
		i := next(n)
		ip := i + next(n-i)      // i' in [i, n-1]
		j := ip + 1 + next(n-ip) // j in [i'+1, n]
		jp := j + next(n-j+1)    // j' in [j, n]
		a := in.convexWeight(i, j) + in.convexWeight(ip, jp)
		b := in.convexWeight(i, jp) + in.convexWeight(ip, j)
		if a > b {
			return fmt.Errorf("recurrence: instance %q declares Convex but w(%d,%d)+w(%d,%d)=%d > w(%d,%d)+w(%d,%d)=%d violates the quadrangle inequality",
				in.Name, i, j, ip, jp, a, i, jp, ip, j, b)
		}
		if in.convexWeight(ip, j) > in.convexWeight(i, jp) {
			return fmt.Errorf("recurrence: instance %q declares Convex but w(%d,%d) > w(%d,%d) violates monotonicity on [%d,%d] ⊆ [%d,%d]",
				in.Name, ip, j, i, jp, ip, j, i, jp)
		}
	}
	return nil
}

// NumNodes returns the number of (i,j) pairs with 0 <= i < j <= N,
// i.e. the size of the w table's upper triangle.
func (in *Instance) NumNodes() int {
	n := in.N + 1
	return n * (n - 1) / 2
}

// Materialize returns a copy of the instance whose F and Init are backed
// by precomputed flat tables, so that repeated solver runs pay no closure
// or recomputation overhead. It allocates O(N^3) memory; callers should
// materialise only at benchmark-scale N.
func (in *Instance) Materialize() *Instance {
	n := in.N
	ini := make([]cost.Cost, n)
	for i := range ini {
		ini[i] = in.Init(i)
	}
	size := n + 1
	f := make([]cost.Cost, size*size*size)
	for i := 0; i <= n; i++ {
		for k := i + 1; k <= n; k++ {
			for j := k + 1; j <= n; j++ {
				f[(i*size+k)*size+j] = in.F(i, k, j)
			}
		}
	}
	return &Instance{
		N:       n,
		Name:    in.Name,
		Algebra: in.Algebra,
		Convex:  in.Convex,
		Canon:   in.Canon, // materialisation changes representation, not identity
		Init:    func(i int) cost.Cost { return ini[i] },
		F: func(i, k, j int) cost.Cost {
			return f[(i*size+k)*size+j]
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			base := (i*size+k)*size + j0
			copy(dst, f[base:base+len(dst)])
		},
	}
}

// Table is a dense upper-triangular cost table over the node pairs (i,j),
// 0 <= i <= j <= N, stored row-major in a flat slice. It is the common
// result representation shared by all solvers.
type Table struct {
	N    int
	data []cost.Cost
}

// NewTable returns a table for objects 1..n with every entry Inf.
func NewTable(n int) *Table {
	size := n + 1
	t := &Table{N: n, data: make([]cost.Cost, size*size)}
	for i := range t.data {
		t.data[i] = cost.Inf
	}
	return t
}

// At returns the entry for node (i,j).
func (t *Table) At(i, j int) cost.Cost { return t.data[i*(t.N+1)+j] }

// Data exposes the flat row-major backing slice (cell (i,j) lives at
// i*Stride()+j) — the kernel-facing escape hatch the bulk primitives
// operate on. Mutating it mutates the table.
func (t *Table) Data() []cost.Cost { return t.data }

// Stride returns the row length N+1 of the flat layout behind Data.
func (t *Table) Stride() int { return t.N + 1 }

// Set stores v at node (i,j).
func (t *Table) Set(i, j int, v cost.Cost) { t.data[i*(t.N+1)+j] = v }

// Root returns c(0,N), the value the recurrence asks for.
func (t *Table) Root() cost.Cost { return t.At(0, t.N) }

// Equal reports whether two tables agree on every node (i,j), i < j,
// after normalising infinities.
func (t *Table) Equal(o *Table) bool {
	if t.N != o.N {
		return false
	}
	for i := 0; i <= t.N; i++ {
		for j := i + 1; j <= t.N; j++ {
			if cost.Norm(t.At(i, j)) != cost.Norm(o.At(i, j)) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{N: t.N, data: make([]cost.Cost, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Diff returns the node pairs on which the two tables disagree, up to max
// entries (max <= 0 means no limit). Useful for debugging solver mismatches.
func (t *Table) Diff(o *Table, max int) []string {
	var out []string
	if t.N != o.N {
		return []string{fmt.Sprintf("size mismatch: N=%d vs N=%d", t.N, o.N)}
	}
	for i := 0; i <= t.N; i++ {
		for j := i + 1; j <= t.N; j++ {
			a, b := cost.Norm(t.At(i, j)), cost.Norm(o.At(i, j))
			if a != b {
				out = append(out, fmt.Sprintf("(%d,%d): %d vs %d", i, j, a, b))
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}
