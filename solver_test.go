package sublineardp_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sublineardp"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// fixtures returns the shared instances every engine must agree on:
// one per problem family plus the zigzag worst case, small enough for
// the O(n^4)-memory engines (rytter, hlv-dense, semiring).
func fixtures() []*sublineardp.Instance {
	return []*sublineardp.Instance{
		sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25}),
		sublineardp.NewOBST([]int64{1, 2, 1, 3, 1}, []int64{10, 3, 8, 6}),
		sublineardp.NewWeightedTriangulation([]int64{7, 3, 9, 2, 8, 4, 6, 5}),
		sublineardp.NewShaped(sublineardp.ZigzagTree(16)),
	}
}

// builtinEngines is the fixed built-in set. Tests that solve with every
// engine iterate this list rather than Engines(), so engines registered
// by other tests (e.g. TestRegisterCustomEngine's constant engine)
// cannot make the suite order-dependent.
func builtinEngines() []string {
	return []string{
		sublineardp.EngineAuto,
		sublineardp.EngineSequential,
		sublineardp.EngineWavefront,
		sublineardp.EngineRytter,
		sublineardp.EngineHLVDense,
		sublineardp.EngineHLVBanded,
		sublineardp.EngineSemiring,
	}
}

// Acceptance: every registered engine is reachable through the single
// Solver API and returns an identical Solution.Cost() on shared fixtures.
func TestAllEnginesAgreeOnFixtures(t *testing.T) {
	for _, in := range fixtures() {
		want := sublineardp.SolveSequential(in).Cost()
		for _, name := range builtinEngines() {
			s, err := sublineardp.NewSolver(name)
			if err != nil {
				t.Fatalf("NewSolver(%q): %v", name, err)
			}
			sol, err := s.Solve(context.Background(), in)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, in.Name, err)
			}
			if got := sol.Cost(); got != want {
				t.Errorf("%s on %s: cost %d, want %d", name, in.Name, got, want)
			}
			if sol.Engine == "" {
				t.Errorf("%s on %s: Solution.Engine is empty", name, in.Name)
			}
		}
	}
}

func TestEngineRegistryRoundTrip(t *testing.T) {
	names := sublineardp.Engines()
	wantBuiltins := builtinEngines()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
		e, ok := sublineardp.LookupEngine(n)
		if !ok {
			t.Fatalf("Engines() lists %q but LookupEngine misses it", n)
		}
		if e.Name() != n {
			t.Errorf("engine registered as %q names itself %q", n, e.Name())
		}
	}
	for _, n := range wantBuiltins {
		if !have[n] {
			t.Errorf("built-in engine %q not registered", n)
		}
	}
	if _, err := sublineardp.NewSolver("no-such-engine"); err == nil {
		t.Fatal("NewSolver accepted an unknown engine name")
	}
	if err := sublineardp.RegisterEngine(nil); err == nil {
		t.Fatal("RegisterEngine accepted nil")
	}
}

func TestSolverRejectsInvalidInstance(t *testing.T) {
	s := sublineardp.MustNewSolver(sublineardp.EngineSequential)
	if _, err := s.Solve(context.Background(), nil); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := s.Solve(context.Background(), &sublineardp.Instance{}); err == nil {
		t.Fatal("zero instance accepted")
	}
}

// slowInstance is a valid instance whose F callback sleeps, so a solve
// takes long enough to cancel mid-flight deterministically.
func slowInstance(n int, delay time.Duration) *sublineardp.Instance {
	return &sublineardp.Instance{
		N:    n,
		Name: "slow",
		Init: func(i int) cost.Cost { return 1 },
		F: func(i, k, j int) cost.Cost {
			time.Sleep(delay)
			return cost.Cost(j - i)
		},
	}
}

// Acceptance: cancelling a context mid-solve terminates promptly with a
// non-nil error (ctx.Err()), for the per-cell-checking sequential engine
// and the per-iteration-checking parallel ones.
func TestSolveCancellationMidSolve(t *testing.T) {
	// n=40 with 25us per F call is ~250ms of work; cancellation after
	// 10ms must cut that short.
	in := slowInstance(40, 25*time.Microsecond)
	for _, name := range []string{sublineardp.EngineSequential, sublineardp.EngineWavefront} {
		s := sublineardp.MustNewSolver(name, sublineardp.WithWorkers(1))
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		sol, err := s.Solve(ctx, in)
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			t.Fatalf("%s: cancelled solve returned no error (took %v)", name, elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v, want context.Canceled", name, err)
		}
		if sol != nil {
			t.Fatalf("%s: cancelled solve returned a solution", name)
		}
		if elapsed > 150*time.Millisecond {
			t.Errorf("%s: cancellation took %v, want prompt return", name, elapsed)
		}
	}
}

// A context that is already expired must abort every engine before any
// work happens.
func TestSolveDeadlineAlreadyExpired(t *testing.T) {
	in := sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, name := range builtinEngines() {
		sol, err := sublineardp.MustNewSolver(name).Solve(ctx, in)
		if err == nil || !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want DeadlineExceeded", name, err)
		}
		if sol != nil {
			t.Errorf("%s: expired context returned a solution", name)
		}
	}
}

func TestAutoEngineSelectsBySize(t *testing.T) {
	small := sublineardp.NewShaped(sublineardp.CompleteTree(12))
	large := sublineardp.NewShaped(sublineardp.CompleteTree(80))
	s := sublineardp.MustNewSolver(sublineardp.EngineAuto)
	if s.EngineName() != sublineardp.EngineAuto {
		t.Fatalf("EngineName = %q", s.EngineName())
	}
	solSmall, err := s.Solve(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if solSmall.Engine != sublineardp.EngineSequential {
		t.Errorf("n=%d routed to %q, want sequential", small.N, solSmall.Engine)
	}
	solLarge, err := s.Solve(context.Background(), large)
	if err != nil {
		t.Fatal(err)
	}
	if solLarge.Engine != sublineardp.EngineHLVBanded {
		t.Errorf("n=%d routed to %q, want hlv-banded", large.N, solLarge.Engine)
	}

	// Above the large cutoff the barrier-free pipelined blocked engine
	// takes over — O(n^2) memory and zero wavefront barriers
	// (Solution.Stats pins the latter).
	huge := sublineardp.NewShaped(sublineardp.CompleteTree(300))
	solHuge, err := s.Solve(context.Background(), huge)
	if err != nil {
		t.Fatal(err)
	}
	if solHuge.Engine != sublineardp.EngineBlockedPipe {
		t.Errorf("n=%d routed to %q, want blocked-pipe", huge.N, solHuge.Engine)
	}
	if solHuge.Stats.Barriers != 0 || solHuge.Stats.Tasks == 0 {
		t.Errorf("blocked-pipe stats = %+v, want 0 barriers and non-zero tasks", solHuge.Stats)
	}

	// A custom cutoff flips the small instance to the parallel engine.
	tight := sublineardp.MustNewSolver(sublineardp.EngineAuto, sublineardp.WithAutoCutoff(4))
	sol, err := tight.Solve(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Engine != sublineardp.EngineHLVBanded {
		t.Errorf("cutoff=4: n=%d routed to %q, want hlv-banded", small.N, sol.Engine)
	}

	// A custom large cutoff flips the mid-sized instance to the
	// pipelined blocked engine.
	wide := sublineardp.MustNewSolver(sublineardp.EngineAuto, sublineardp.WithAutoLargeCutoff(70))
	sol, err = wide.Solve(context.Background(), large)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Engine != sublineardp.EngineBlockedPipe {
		t.Errorf("large-cutoff=70: n=%d routed to %q, want blocked-pipe", large.N, sol.Engine)
	}
}

func TestSolutionTreeAcrossEngines(t *testing.T) {
	in := sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	wantTree := sublineardp.SolveSequential(in).Tree()
	for _, name := range []string{
		sublineardp.EngineSequential,
		sublineardp.EngineHLVBanded,
		sublineardp.EngineSemiring,
	} {
		sol, err := sublineardp.MustNewSolver(name).Solve(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := sol.Tree()
		if err != nil {
			t.Fatalf("%s: Tree: %v", name, err)
		}
		if !tr.Equal(wantTree) {
			t.Errorf("%s: reconstructed tree differs from sequential", name)
		}
	}
	// The sequential engine also exposes split points directly.
	sol, err := sublineardp.MustNewSolver(sublineardp.EngineSequential).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Split(0, 6); got != 3 {
		t.Errorf("root split = %d, want 3", got)
	}
	if got := sol.Work; got <= 0 {
		t.Errorf("sequential Work = %d, want > 0", got)
	}
}

func TestSolverOptionsReachEngine(t *testing.T) {
	in := sublineardp.NewShaped(sublineardp.CompleteTree(49))
	want := sublineardp.SolveSequential(in).Table

	s := sublineardp.MustNewSolver(sublineardp.EngineHLVBanded,
		sublineardp.WithTermination(sublineardp.WStable),
		sublineardp.WithHistory(true),
		sublineardp.WithTarget(want),
	)
	sol, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.StoppedEarly {
		t.Error("WStable on a balanced instance should stop early")
	}
	if len(sol.History) != sol.Iterations {
		t.Errorf("history has %d entries, iterations %d", len(sol.History), sol.Iterations)
	}
	if sol.ConvergedAt < 1 {
		t.Errorf("ConvergedAt = %d, want >= 1 with target set", sol.ConvergedAt)
	}
	if sol.BandRadius <= 0 {
		t.Errorf("BandRadius = %d, want > 0 for banded engine", sol.BandRadius)
	}
	if !sol.Table.Equal(want) {
		t.Error("early-stopped table differs from sequential")
	}

	// WithBandRadius reaches the banded engine.
	wide := sublineardp.MustNewSolver(sublineardp.EngineHLVBanded, sublineardp.WithBandRadius(in.N))
	solWide, err := wide.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if solWide.BandRadius != in.N {
		t.Errorf("BandRadius = %d, want %d", solWide.BandRadius, in.N)
	}
}

func TestSemiringEngineAlgebras(t *testing.T) {
	in := sublineardp.NewMatrixChain([]int{10, 100, 5, 50, 20})
	minSol, err := sublineardp.MustNewSolver(sublineardp.EngineSemiring).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	maxSol, err := sublineardp.MustNewSolver(sublineardp.EngineSemiring,
		sublineardp.WithSemiring(sublineardp.MaxPlus)).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if want := sublineardp.SolveSequential(in).Cost(); minSol.Cost() != want {
		t.Errorf("min-plus cost %d, want %d", minSol.Cost(), want)
	}
	if maxSol.Cost() <= minSol.Cost() {
		t.Errorf("max-plus optimum %d not above min-plus %d", maxSol.Cost(), minSol.Cost())
	}
}

// A third-party engine registered at runtime is reachable by name.
type constEngine struct{}

func (constEngine) Name() string { return "test-const" }
func (constEngine) Solve(ctx context.Context, in *sublineardp.Instance, cfg *sublineardp.Config) (*sublineardp.Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tbl := recurrence.NewTable(in.N)
	for i := 0; i < in.N; i++ {
		tbl.Set(i, i+1, in.Init(i))
	}
	tbl.Set(0, in.N, 42)
	return &sublineardp.Solution{Engine: "test-const", Table: tbl, ConvergedAt: -1}, nil
}

func TestRegisterCustomEngine(t *testing.T) {
	if err := sublineardp.RegisterEngine(constEngine{}); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	sol, err := sublineardp.MustNewSolver("test-const").Solve(context.Background(),
		sublineardp.NewMatrixChain([]int{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost() != 42 {
		t.Fatalf("custom engine cost = %d", sol.Cost())
	}
	if err := sublineardp.RegisterEngine(constEngine{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
