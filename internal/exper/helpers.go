package exper

import (
	"fmt"
	"math"

	"sublineardp/internal/stats"
)

// fmtInt renders large counters with thousands separators so the work
// columns stay readable.
func fmtInt[T int64 | int](v T) string {
	x := int64(v)
	neg := x < 0
	if neg {
		x = -x
	}
	s := fmt.Sprintf("%d", x)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}

func fmtFrac(num, den int) string { return fmt.Sprintf("%d/%d", num, den) }

func log2(x float64) float64 { return math.Log2(x) }

func pow(x, e float64) float64 { return math.Pow(x, e) }

func logFit(xs, ys []float64) stats.Fit { return stats.LogFit(xs, ys) }
