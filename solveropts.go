package sublineardp

import (
	"sublineardp/internal/core"
	"sublineardp/internal/semiring"
)

// Re-exported enum types, so functional options can be used without
// importing internal packages.
type (
	// Variant selects the HLV partial-weight storage scheme (Dense | Banded).
	Variant = core.Variant
	// Mode selects the update discipline (Synchronous | Chaotic).
	Mode = core.Mode
	// Termination selects the stopping rule (FixedIterations | WStable |
	// WPWStable).
	Termination = core.Termination
	// Semiring is an idempotent semiring over int64 values, the algebra
	// the "semiring" engine iterates over.
	Semiring = semiring.Semiring
	// IterStat is one iteration's summary, recorded under WithHistory.
	IterStat = core.IterStat
)

// The three semirings shipped with the repository, usable with
// WithSemiring. MinPlus is the paper's algebra and the default.
var (
	MinPlus  Semiring = semiring.MinPlus{}
	MaxPlus  Semiring = semiring.MaxPlus{}
	BoolPlan Semiring = semiring.BoolPlan{}
)

// Config carries every knob a Solve or SolveBatch run can set. Engines
// receive it read-only; third-party engines registered with
// RegisterEngine may interpret (or ignore) any field. The zero value is
// a valid default configuration.
type Config struct {
	// Engine is the registry name to solve with ("" = "auto"). NewSolver's
	// positional engine argument takes precedence when both are given.
	Engine string

	// Workers is the goroutine count per solve (0 = GOMAXPROCS).
	// SolveBatch defaults it to 1 so batch-level parallelism is not
	// oversubscribed by intra-solve parallelism.
	Workers int

	// Mode is the HLV update discipline (Synchronous | Chaotic).
	Mode Mode

	// Termination is the HLV stopping rule.
	Termination Termination

	// MaxIterations caps the iteration count of the iterative engines
	// (0 = engine's worst-case budget).
	MaxIterations int

	// BandRadius overrides the banded HLV deficit bound D
	// (0 = 2*ceil(sqrt n)).
	BandRadius int

	// Window enables the Section 5 windowed pebble schedule (banded HLV).
	Window bool

	// History records per-iteration statistics in Solution.History
	// (HLV engines).
	History bool

	// Target, when non-nil, is a known-correct table; iterative engines
	// record in Solution.ConvergedAt the first iteration after which
	// their table matches it. Never affects control flow.
	Target *Table

	// Semiring is the algebra of the "semiring" engine (nil = MinPlus).
	Semiring Semiring

	// Concurrency bounds how many instances SolveBatch solves at once
	// (0 = GOMAXPROCS). Ignored by single solves.
	Concurrency int

	// AutoCutoff is the instance size at or below which the "auto"
	// engine picks "sequential" instead of "hlv-banded" (0 = the
	// DefaultAutoCutoff). Small instances are solved faster by the
	// cache-friendly O(n^3) scan than by any parallel iteration.
	AutoCutoff int
}

// DefaultAutoCutoff is the default small-instance threshold of the
// "auto" engine: at n <= 64 the sequential O(n^3) scan beats the
// parallel engines' per-iteration overhead on real hardware.
const DefaultAutoCutoff = 64

// Option configures a Solver, a single Solve call, or a SolveBatch run.
type Option func(*Config)

// WithEngine selects the engine by registry name ("" = "auto"). Mostly
// useful with SolveBatch, which has no positional engine argument.
func WithEngine(name string) Option { return func(c *Config) { c.Engine = name } }

// WithWorkers sets the goroutine count used inside one solve
// (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithMode selects the HLV update discipline (Synchronous | Chaotic).
func WithMode(m Mode) Option { return func(c *Config) { c.Mode = m } }

// WithTermination selects the HLV stopping rule (FixedIterations |
// WStable | WPWStable).
func WithTermination(t Termination) Option { return func(c *Config) { c.Termination = t } }

// WithMaxIterations caps the iterative engines' iteration count
// (0 = worst-case budget).
func WithMaxIterations(n int) Option { return func(c *Config) { c.MaxIterations = n } }

// WithBandRadius overrides the banded HLV deficit bound D
// (0 = 2*ceil(sqrt n)).
func WithBandRadius(d int) Option { return func(c *Config) { c.BandRadius = d } }

// WithWindow toggles the Section 5 windowed pebble schedule (banded HLV).
func WithWindow(on bool) Option { return func(c *Config) { c.Window = on } }

// WithHistory toggles per-iteration statistics in Solution.History.
func WithHistory(on bool) Option { return func(c *Config) { c.History = on } }

// WithTarget supplies a known-correct table for convergence tracking
// (Solution.ConvergedAt).
func WithTarget(t *Table) Option { return func(c *Config) { c.Target = t } }

// WithSemiring selects the algebra of the "semiring" engine
// (nil = MinPlus, the paper's min-plus algebra).
func WithSemiring(sr Semiring) Option { return func(c *Config) { c.Semiring = sr } }

// WithConcurrency bounds how many instances SolveBatch works on at once
// (0 = GOMAXPROCS).
func WithConcurrency(n int) Option { return func(c *Config) { c.Concurrency = n } }

// WithAutoCutoff sets the instance size at or below which the "auto"
// engine (and SolveBatch's default scheduling) picks the sequential
// engine (0 = DefaultAutoCutoff).
func WithAutoCutoff(n int) Option { return func(c *Config) { c.AutoCutoff = n } }

func buildConfig(opts []Option) Config {
	var cfg Config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}
