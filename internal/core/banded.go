package core

import (
	"context"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/pebble"
	"sublineardp/internal/pram"
	"sublineardp/internal/recurrence"
)

// bandedState is the Section 5 algorithm state: only partial weights with
// deficit (j-i)-(q-p) <= D are stored, D = 2*ceil(sqrt(n)) by default.
// For a pair (i,j) of span L the stored gaps are indexed by
// (d, a) with d = (p-i)+(j-q) <= min(D, L-1) and a = p-i <= d, laid out
// triangularly after a per-pair base offset. Like denseState it is
// generic over the algebra; the deficit-band observation of Section 5 is
// purely structural, so it holds for any idempotent semiring.
type bandedState[S algebra.Kernel] struct {
	sr       S
	n, sz, D int
	in       *recurrence.Instance
	w        []cost.Cost
	wNext    []cost.Cost
	buf      []cost.Cost
	bufNext  []cost.Cost
	base     []int
	pairs    []pair
	rt       *runtime
	sync     bool
	legacy   bool // pin the reference kernels (audit/chaotic/tests)
	aud      *pram.Auditor

	activateWork int64
	squareCells  int64
	squareWork   int64
	squareMaxM   int64
	// Per-span pebble charge components, indexed by span.
	pebbleCands []int64
	// triTab[d] = d*(d+1)/2, precomputed for the hot square loop.
	triTab []int

	trackPWChanges    bool
	pwChangedThisIter int64
	wEpoch, pwEpoch   uint8
}

// dmax returns the largest storable deficit for a span-L pair.
func (s *bandedState[S]) dmax(L int) int {
	m := L - 1
	if s.D < m {
		m = s.D
	}
	return m
}

// tri returns the m-th triangular number, the size of a (d,a) block with
// d < m.
func tri(m int) int { return m * (m + 1) / 2 }

// cellIdx returns the storage index of gap (p,q) under pair (i,j). The
// caller guarantees the deficit is within the band.
func (s *bandedState[S]) cellIdx(i, j, p, q int) int {
	d := (p - i) + (j - q)
	return s.base[i*s.sz+j] + tri(d) + (p - i)
}

// get reads pw'(i,j,p,q), returning Zero for gaps outside the band.
func (s *bandedState[S]) get(buf []cost.Cost, i, j, p, q int) cost.Cost {
	d := (p - i) + (j - q)
	if d > s.dmax(j-i) {
		return s.sr.Zero()
	}
	c := s.base[i*s.sz+j] + tri(d) + (p - i)
	if s.aud != nil {
		s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c))
	}
	return buf[c]
}

func (s *bandedState[S]) readW(i, j int) cost.Cost {
	c := i*s.sz + j
	if s.aud != nil {
		s.aud.Read(pram.Addr(epochTag(tagW, s.wEpoch), c))
	}
	return s.w[c]
}

func (s *bandedState[S]) writeEpochB(epoch uint8) uint8 {
	if s.sync {
		return epoch ^ 1
	}
	return epoch
}

func newBandedState[S algebra.Kernel](sr S, in *recurrence.Instance, rt *runtime, syncMode bool, aud *pram.Auditor, bandRadius int, forceLegacy bool) *bandedState[S] {
	n := in.N
	sz := n + 1
	D := bandRadius
	if D <= 0 {
		D = 2 * pebble.IsqrtCeil(n)
	}
	if D < 1 {
		D = 1
	}
	s := &bandedState[S]{
		sr:     sr,
		n:      n,
		sz:     sz,
		D:      D,
		in:     in,
		rt:     rt,
		sync:   syncMode,
		legacy: forceLegacy || !syncMode || aud != nil,
		aud:    aud,
		w:      costArena.Get(sz * sz),
		base:   intArena.Get(sz * sz),
	}
	total := 0
	s.pairs = pairArena.Get((n + 1) * n / 2)
	t := 0
	for i := 0; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			s.base[i*sz+j] = total
			total += tri(s.dmax(j-i) + 1)
			s.pairs[t] = pair{int32(i), int32(j)}
			t++
		}
	}
	s.triTab = make([]int, D+2)
	for d := range s.triTab {
		s.triTab[d] = tri(d)
	}
	s.buf = costArena.Get(total)
	zero := sr.Zero()
	fillValue(rt, s.buf, zero)
	for i := range s.w {
		s.w[i] = zero
	}
	if syncMode {
		// Scratch halves come back dirty from the arena; every cell a
		// synchronous step reads after the swap is written first (square
		// rewrites every banded cell, pebble copies w' wholesale).
		s.wNext = costArena.Get(sz * sz)
		s.bufNext = costArena.Get(total)
	}
	for i := 0; i < n; i++ {
		s.w[i*sz+i+1] = in.Init(i)
	}
	// pw'(i,j,i,j) = One: the (d=0, a=0) cell of every pair.
	one := sr.One()
	for _, pr := range s.pairs {
		s.buf[s.base[int(pr.i)*sz+int(pr.j)]] = one
	}
	s.computeCharges()
	return s
}

// release returns the state's buffers to the shared arenas. The state
// must not be used afterwards.
func (s *bandedState[S]) release() {
	costArena.Put(s.w)
	costArena.Put(s.wNext)
	costArena.Put(s.buf)
	costArena.Put(s.bufNext)
	intArena.Put(s.base)
	pairArena.Put(s.pairs)
	s.w, s.wNext, s.buf, s.bufNext, s.base, s.pairs = nil, nil, nil, nil, nil, nil
}

func (s *bandedState[S]) computeCharges() {
	n := s.n
	for L := 2; L <= n; L++ {
		pairsL := int64(n + 1 - L)
		dm := s.dmax(L)
		// activate: left gaps need j-k <= dm (dm choices of k), right gaps
		// k-i <= dm, both capped by the L-1 available splits.
		leftK := min(dm, L-1)
		rightK := min(dm, L-1)
		s.activateWork += pairsL * int64(leftK+rightK)
	}
	for L := 1; L <= n; L++ {
		pairsL := int64(n + 1 - L)
		dm := s.dmax(L)
		var cells, work int64
		for d := 0; d <= dm; d++ {
			cells += int64(d + 1)         // a = 0..d
			work += int64(d) * int64(d+1) // each (d,a) cell reduces over d candidates
		}
		s.squareCells += pairsL * cells
		s.squareWork += pairsL * work
		if int64(dm) > s.squareMaxM {
			s.squareMaxM = int64(dm)
		}
	}
	// pebble candidates per span: banded gaps (minus the trivial one) plus
	// the L-1 direct-combine splits.
	s.pebbleCands = make([]int64, n+1)
	for L := 2; L <= n; L++ {
		dm := s.dmax(L)
		s.pebbleCands[L] = int64(tri(dm+1)-1) + int64(L-1)
	}
}

// activate applies eq. (1a)/(1b) restricted to gaps inside the band: a
// left gap (i,k) has deficit j-k, a right gap (k,j) deficit k-i, so only
// the D splits nearest each end are touched — O(n^2 sqrt n) work.
func (s *bandedState[S]) activate(ctx context.Context) {
	if s.aud != nil {
		s.aud.BeginStep("a-activate")
	}
	in := s.in
	changed := s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr.i), int(pr.j)
			if j-i < 2 {
				continue
			}
			dm := s.dmax(j - i)
			// Left gaps (i,k): k from j-dm to j-1.
			for k := max(i+1, j-dm); k < j; k++ {
				c := s.cellIdx(i, j, i, k)
				fv := in.F(i, k, j) //lint:allow bulkonly banded reference/audit activate path; the tiled kernels carry the serving load
				wkj := s.readW(k, j)
				if s.aud != nil {
					s.aud.Write(pram.Addr(epochTag(tagPW, s.pwEpoch), c))
				}
				if s.sr.RelaxAt(s.buf, c, fv, wkj) {
					local++
				}
			}
			// Right gaps (k,j): k from i+1 to i+dm.
			for k := i + 1; k <= min(j-1, i+dm); k++ {
				c := s.cellIdx(i, j, k, j)
				fv := in.F(i, k, j) //lint:allow bulkonly banded reference/audit activate path; the tiled kernels carry the serving load
				wik := s.readW(i, k)
				if s.aud != nil {
					s.aud.Write(pram.Addr(epochTag(tagPW, s.pwEpoch), c))
				}
				if s.sr.RelaxAt(s.buf, c, fv, wik) {
					local++
				}
			}
		}
		return local
	})
	if s.trackPWChanges {
		s.pwChangedThisIter += changed
	}
	if s.aud != nil {
		s.aud.EndStep()
	}
}

// square applies eq. (2c) to every banded cell. All composition reads
// stay inside the band (the deficits of both factors are bounded by the
// target's deficit — the observation that makes Section 5 work). The
// synchronous no-audit path runs the cache-tiled kernel
// (banded_tiled.go); this body is the reference kernel, kept for the
// auditor (which must see every logical read) and for chaotic mode
// (which must keep its sweep order).
func (s *bandedState[S]) square(ctx context.Context) {
	if s.aud != nil {
		s.aud.BeginStep("a-square")
	}
	if !s.legacy {
		s.squareTiled(ctx)
		return
	}
	src := s.buf
	dst := s.buf
	if s.sync {
		dst = s.bufNext
	}
	track := s.trackPWChanges
	sz := s.sz
	triTab := s.triTab
	changed := s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr.i), int(pr.j)
			dm := s.dmax(j - i)
			basec := s.base[i*sz+j]
			for d := 0; d <= dm; d++ {
				rowD := basec + triTab[d]
				for a := 0; a <= d; a++ {
					p := i + a
					q := j - (d - a)
					c := rowD + a
					best := src[c] // own-cell RMW: not a shared read
					// First form: intermediate (r,q), r in [i,p). All reads
					// are in-band (deficits bounded by d; see doc.go):
					//   pw(i,j,r,q) at cell basec + tri(rr+d-a) + rr, rr=r-i
					//   pw(r,q,p,q) at cell base[r,q] + tri(p-r) + (p-r)
					for rr := 0; rr < a; rr++ {
						c1 := basec + triTab[rr+d-a] + rr
						pr2 := p - (i + rr) // p - r
						c2 := s.base[(i+rr)*sz+q] + triTab[pr2] + pr2
						if s.aud != nil {
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c1))
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c2))
						}
						v := s.sr.Extend(src[c1], src[c2])
						if s.sr.Better(v, best) {
							best = v
						}
					}
					// Second form: intermediate (p,x), x in (q,j]:
					//   pw(i,j,p,x) at cell basec + tri(a+j-x) + a
					//   pw(p,x,p,q) at cell base[p,x] + tri(x-q)
					for x := q + 1; x <= j; x++ {
						c3 := basec + triTab[a+j-x] + a
						c4 := s.base[p*sz+x] + triTab[x-q]
						if s.aud != nil {
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c3))
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c4))
						}
						v := s.sr.Extend(src[c3], src[c4])
						if s.sr.Better(v, best) {
							best = v
						}
					}
					if s.aud != nil {
						s.aud.Write(pram.Addr(epochTag(tagPW, s.writeEpochB(s.pwEpoch)), c))
					}
					if track && best != src[c] {
						local++
					}
					dst[c] = best
				}
			}
		}
		return local
	})
	if track {
		s.pwChangedThisIter += changed
	}
	if s.sync {
		s.buf, s.bufNext = s.bufNext, s.buf
		s.pwEpoch ^= 1
	}
	if s.aud != nil {
		s.aud.EndStep()
	}
}

// pebble applies eq. (3) over the banded gaps plus the direct combine
// Combine_k Extend3(f(i,k,j), w'(i,k), w'(k,j)). The combine stands in
// for the activate edges the band cannot store (gaps whose sibling
// subtree exceeds D); in the pebbling game it is the activate-then-pebble
// move at a node whose children are both pebbled, so Lemma 3.3's schedule
// is preserved. The synchronous no-audit path reduces the banded gaps
// with one bulk ReduceRelax sweep (the d=0 trivial gap it includes is
// harmless: pw'(i,j,i,j) stays at One, so its candidate equals the old
// value); the scalar body is kept for the auditor and chaotic mode.
func (s *bandedState[S]) pebble(ctx context.Context, loSpan, hiSpan int) int64 {
	if s.aud != nil {
		s.aud.BeginStep("a-pebble")
	}
	in := s.in
	src := s.w
	dst := s.w
	if s.sync {
		copy(s.wNext, s.w)
		dst = s.wNext
	}
	sz := s.sz
	changed := s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr.i), int(pr.j)
			span := j - i
			if span < 2 || span < loSpan || span > hiSpan {
				continue
			}
			c := i*sz + j
			best := src[c] // own-cell RMW: not a shared read
			dm := s.dmax(span)
			basec := s.base[c]
			if !s.legacy {
				best = s.sr.ReduceRelax(best, s.buf, s.w, algebra.ReduceShape{
					M: dm + 1, Cnt0: 1, CntInc: 1,
					A: basec, AStartStep: 1, AStartInc: 1, AStep: 1,
					B: i*sz + j, BStartStep: -1, BStep: sz + 1,
				})
				for k := i + 1; k < j; k++ {
					best = s.sr.Relax3(best, in.F(i, k, j), s.w[i*sz+k], s.w[k*sz+j]) //lint:allow bulkonly direct-combine tail of the generic pebble close; O(band) candidates per cell
				}
			} else {
				for d := 1; d <= dm; d++ {
					for a := 0; a <= d; a++ {
						p := i + a
						q := j - (d - a)
						pc := basec + tri(d) + a
						if s.aud != nil {
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), pc))
						}
						v := s.sr.Extend(s.buf[pc], s.readW(p, q))
						if s.sr.Better(v, best) {
							best = v
						}
					}
				}
				for k := i + 1; k < j; k++ {
					v := s.sr.Extend3(in.F(i, k, j), s.readW(i, k), s.readW(k, j)) //lint:allow bulkonly legacy audit path kept for the PRAM exclusive-write checker
					if s.sr.Better(v, best) {
						best = v
					}
				}
			}
			if s.aud != nil {
				s.aud.Write(pram.Addr(epochTag(tagW, s.writeEpochB(s.wEpoch)), c))
			}
			if best != src[c] {
				local++
			}
			dst[c] = best
		}
		return local
	})
	if s.sync {
		s.w, s.wNext = s.wNext, s.w
		s.wEpoch ^= 1
	}
	if s.aud != nil {
		s.aud.EndStep()
	}
	return changed
}

func (s *bandedState[S]) charge(acct *pram.Accounting, loSpan, hiSpan int) {
	acct.ChargeUnit(s.activateWork)
	acct.ChargeReduce(s.squareCells, s.squareMaxM+1, s.squareWork)
	var cells, work, maxM int64
	for L := max(2, loSpan); L <= min(s.n, hiSpan); L++ {
		pairsL := int64(s.n + 1 - L)
		m := s.pebbleCands[L]
		cells += pairsL
		work += pairsL * m
		if m > maxM {
			maxM = m
		}
	}
	acct.ChargeReduce(cells, maxM, work)
}

func (s *bandedState[S]) wTable() *recurrence.Table {
	t := recurrence.NewTable(s.n)
	for i := 0; i <= s.n; i++ {
		for j := i + 1; j <= s.n; j++ {
			t.Set(i, j, s.w[i*s.sz+j])
		}
	}
	return t
}

func (s *bandedState[S]) wEquals(t *recurrence.Table) bool {
	for i := 0; i <= s.n; i++ {
		for j := i + 1; j <= s.n; j++ {
			if s.sr.Norm(s.w[i*s.sz+j]) != s.sr.Norm(t.At(i, j)) {
				return false
			}
		}
	}
	return true
}

func (s *bandedState[S]) finiteW() int {
	c := 0
	for i := 0; i <= s.n; i++ {
		for j := i + 1; j <= s.n; j++ {
			if !s.sr.IsZero(s.w[i*s.sz+j]) {
				c++
			}
		}
	}
	return c
}

func (s *bandedState[S]) setTrackPW(on bool) { s.trackPWChanges = on }
func (s *bandedState[S]) pwChanged() int64   { return s.pwChangedThisIter }
func (s *bandedState[S]) resetPWChanged()    { s.pwChangedThisIter = 0 }
func (s *bandedState[S]) bandRadius() int    { return s.D }
