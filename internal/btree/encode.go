package btree

import (
	"fmt"
	"strconv"
	"strings"
)

// Encode serialises the tree shape as a compact S-expression: a leaf is
// "." and an internal node with split k is "(k LEFT RIGHT)". The span
// structure is implied — the root spans (0,N) and splits recursively —
// so the string plus nothing else reconstructs the tree exactly.
//
// Example: the left-leaning tree over 3 objects encodes as "(2 (1 . .) .)".
func (t *Tree) Encode() string {
	var b strings.Builder
	var rec func(v int32)
	rec = func(v int32) {
		if t.IsLeaf(v) {
			b.WriteByte('.')
			return
		}
		b.WriteByte('(')
		b.WriteString(strconv.Itoa(t.Split(v)))
		b.WriteByte(' ')
		rec(t.Left[v])
		b.WriteByte(' ')
		rec(t.Right[v])
		b.WriteByte(')')
	}
	rec(t.Root)
	return b.String()
}

// Parse reconstructs a tree from Encode's format. It validates both the
// syntax and the structural consistency (every split must lie strictly
// inside its span, and leaf counts must match).
func Parse(s string) (*Tree, error) {
	p := &parser{s: s}
	// First pass: parse into a skeleton and count leaves.
	node, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpaces()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("btree: trailing garbage at offset %d in %q", p.pos, s)
	}
	n := countLeaves(node)
	// Second pass: assign spans and collect splits.
	splits := make(map[[2]int]int)
	if err := assignSpans(node, 0, n, splits); err != nil {
		return nil, err
	}
	if n == 1 {
		return New(1, nil), nil
	}
	// Construction panics are converted to errors for malformed splits.
	var tree *Tree
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("btree: %v", r)
			}
		}()
		tree = New(n, FromSplits(splits))
		return nil
	}()
	if err != nil {
		return nil, err
	}
	return tree, nil
}

type skeleton struct {
	split       int // -1 for leaf
	left, right *skeleton
}

type parser struct {
	s   string
	pos int
}

func (p *parser) skipSpaces() {
	for p.pos < len(p.s) && p.s[p.pos] == ' ' {
		p.pos++
	}
}

func (p *parser) parseNode() (*skeleton, error) {
	p.skipSpaces()
	if p.pos >= len(p.s) {
		return nil, fmt.Errorf("btree: unexpected end of input in %q", p.s)
	}
	switch p.s[p.pos] {
	case '.':
		p.pos++
		return &skeleton{split: -1}, nil
	case '(':
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] != ' ' {
			p.pos++
		}
		k, err := strconv.Atoi(p.s[start:p.pos])
		if err != nil {
			return nil, fmt.Errorf("btree: bad split near offset %d in %q", start, p.s)
		}
		left, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		right, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		p.skipSpaces()
		if p.pos >= len(p.s) || p.s[p.pos] != ')' {
			return nil, fmt.Errorf("btree: missing ')' at offset %d in %q", p.pos, p.s)
		}
		p.pos++
		return &skeleton{split: k, left: left, right: right}, nil
	default:
		return nil, fmt.Errorf("btree: unexpected %q at offset %d", p.s[p.pos], p.pos)
	}
}

func countLeaves(n *skeleton) int {
	if n.split < 0 {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

func assignSpans(n *skeleton, lo, hi int, splits map[[2]int]int) error {
	if n.split < 0 {
		if hi-lo != 1 {
			return fmt.Errorf("btree: leaf covers span (%d,%d)", lo, hi)
		}
		return nil
	}
	if n.split <= lo || n.split >= hi {
		return fmt.Errorf("btree: split %d outside span (%d,%d)", n.split, lo, hi)
	}
	// The split must agree with the leaf counts of the subtrees.
	if got := lo + countLeaves(n.left); got != n.split {
		return fmt.Errorf("btree: split %d inconsistent with left subtree (%d leaves from %d)",
			n.split, countLeaves(n.left), lo)
	}
	splits[[2]int{lo, hi}] = n.split
	if err := assignSpans(n.left, lo, n.split, splits); err != nil {
		return err
	}
	return assignSpans(n.right, n.split, hi, splits)
}
