package parutil

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"
)

// TaskGraph is a dynamic dependency-driven scheduler: tasks are pushed
// onto a lock-free ready stack the moment their last dependency resolves
// and claimed by a fixed set of drain workers, with no phase fences
// anywhere — the barrier-free alternative to the pool's fan-out/join
// dispatch. Tasks submit their successors themselves (typically after an
// atomic in-degree counter they decrement hits zero), so the schedule is
// exactly the dependency graph and an idle worker always takes the
// oldest-available ready work regardless of which "phase" or even which
// solve it belongs to. Several independent solves can seed one graph and
// overlap: one solve's tail tiles fill another's head.
//
// Memory ordering: Submit/claim pairs synchronise through the stack's
// CAS, and dependency-counter decrements are atomic RMWs, so the task
// that observes a counter reach zero also observes every write made by
// the tasks that decremented it — the standard refcount publication
// argument. Tasks therefore never need locks of their own as long as
// each output location has exactly one writing task.
type TaskGraph struct {
	ctx   context.Context
	stats *Stats
	head  atomic.Pointer[graphNode]
	// pending counts unfinished tasks plus one guard held during
	// seeding; done closes when it reaches zero.
	pending atomic.Int64
	done    chan struct{}
	// wake has one slot per worker: a non-blocking send on Submit either
	// queues a token or finds the channel full, which already guarantees
	// a token for every parked worker — no lost wakeups. parked counts
	// workers at or past the pre-park re-check, so Submit can skip the
	// channel entirely (its only locking operation) while every worker is
	// busy — the common case in a saturated graph.
	wake   chan struct{}
	parked atomic.Int32
}

type graphNode struct {
	next *graphNode
	run  func(*TaskGraph)
}

// Submit pushes a ready task onto the graph. Safe from any goroutine,
// including (typically) from inside a running task; tasks run exactly
// once, in no particular order.
func (g *TaskGraph) Submit(run func(*TaskGraph)) {
	g.pending.Add(1)
	n := &graphNode{run: run}
	for {
		old := g.head.Load()
		n.next = old
		if g.head.CompareAndSwap(old, n) {
			break
		}
	}
	// Wake only if someone might be parked. A worker that misses this
	// push re-checks the stack after raising parked (see drain), and
	// Go atomics are sequentially consistent, so either that re-check
	// sees our node or this load sees parked > 0 — never neither.
	if g.parked.Load() > 0 {
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
}

// Err reports the graph context's error, checked by workers before every
// claimed task — the tile-granularity cancellation bound.
func (g *TaskGraph) Err() error {
	if g.ctx == nil {
		return nil
	}
	return g.ctx.Err()
}

// pop claims one ready task. Fresh nodes are never reused, so the CAS is
// ABA-safe: a stale head simply fails and reloads.
func (g *TaskGraph) pop() *graphNode {
	for {
		n := g.head.Load()
		if n == nil {
			return nil
		}
		if g.head.CompareAndSwap(n, n.next) {
			return n
		}
	}
}

// complete retires k tasks (or the seed guard); whoever moves pending to
// zero closes done and releases every parked worker.
func (g *TaskGraph) complete(k int64) {
	if g.pending.Add(-k) == 0 {
		close(g.done)
	}
}

// drain is one worker's loop: claim ready tasks until the graph is
// exhausted or cancelled, parking on the wake channel when the stack is
// momentarily empty. Parked time is charged to stats as idle — the
// pipelined analogue of a barrier tail.
func (g *TaskGraph) drain() {
	var ctxDone <-chan struct{}
	if g.ctx != nil {
		ctxDone = g.ctx.Done()
	}
	for {
		if g.ctx != nil && g.ctx.Err() != nil {
			return
		}
		if n := g.pop(); n != nil {
			n.run(g)
			g.stats.AddTasks(1)
			g.complete(1)
			continue
		}
		// Raise parked before the final re-check: a Submit that raced our
		// empty pop either lands its node where the re-check finds it, or
		// observes parked > 0 and queues a wake token.
		g.parked.Add(1)
		if n := g.pop(); n != nil {
			g.parked.Add(-1)
			n.run(g)
			g.stats.AddTasks(1)
			g.complete(1)
			continue
		}
		var t0 time.Time
		if g.stats != nil {
			t0 = time.Now()
		}
		select {
		case <-g.wake:
			g.parked.Add(-1)
			if g.stats != nil {
				g.stats.AddIdleNs(int64(time.Since(t0)))
			}
		case <-g.done:
			g.parked.Add(-1)
			if g.stats != nil {
				g.stats.AddIdleNs(int64(time.Since(t0)))
			}
			return
		case <-ctxDone:
			g.parked.Add(-1)
			if g.stats != nil {
				g.stats.AddIdleNs(int64(time.Since(t0)))
			}
			return
		}
	}
}

// RunGraph runs a dynamic task graph on the pool and blocks until every
// task has completed or ctx is cancelled. seed submits the graph's
// initial (in-degree zero) tasks; tasks submit their successors as their
// dependency counters drain. workers caps the drain width (0 = pool
// width). No barrier is ever recorded on st: the only join is the final
// quiescence of the whole graph.
//
// On cancellation workers stop claiming tasks (the current task finishes;
// queued tasks are abandoned) and RunGraph returns ctx.Err(). Callers
// that share one graph across several solves should give tasks their own
// per-solve contexts and have cancelled tasks still resolve their
// successors' counters, so one solve's cancellation drains — not wedges —
// the rest of the graph.
func (p *Pool) RunGraph(ctx context.Context, workers int, st *Stats, seed func(*TaskGraph)) error {
	if workers <= 0 {
		workers = p.width
	}
	// Graph tasks are CPU-bound, so drainers beyond the runnable
	// processors cannot add throughput — but they do add churn: every
	// Submit wakes a parked drainer that loses the race for the task to
	// whoever is already running, and on few cores that is two context
	// switches per task. Fine-grained graphs (thousands of sub-ms row
	// tasks) pay it as a measurable fraction of the solve.
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	g := &TaskGraph{
		ctx:   ctx,
		stats: st,
		done:  make(chan struct{}),
		wake:  make(chan struct{}, workers),
	}
	g.pending.Store(1) // seed guard: the graph can't quiesce mid-seed
	seed(g)
	g.complete(1)
	// The drain workers are one plain pool dispatch of `workers` unit
	// chunks; the dispatch carries no stats, so the graph contributes no
	// barrier and task/idle accounting stays with the graph itself.
	p.ForChunked(workers, workers, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.drain()
		}
	})
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}
