package recurrence

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sublineardp/internal/cost"
)

// Chain is the second recurrence class of this repository: a 1D prefix
// dynamic program over indices 0..N with O(N)-candidate transitions,
//
//	c(0) = One
//	c(j) = Combine_{Lo(j) <= k < j} Extend(c(k), F(k,j))    1 <= j <= N
//
// evaluated over any registered idempotent semiring, exactly as the
// interval recurrence (*) is. Segmented least squares, weighted interval
// scheduling and subset-sum feasibility are all members (see
// internal/problems); internal/seq holds the sequential reference and
// internal/llp the asynchronous LLP engine.
//
// F values should stay strictly inside the cost sentinels (|F| well
// below cost.Inf): the bulk kernels assume finite transition weights, and
// the shipped constructors encode "no transition" as a finite penalty in
// the algebra's order rather than as the algebra's Zero. The zero Chain
// is not usable: construct chains via internal/problems or fill all
// fields.
type Chain struct {
	// N is the number of transition steps; the answer sought is c(N).
	N int

	// F gives the transition weight of extending prefix k to prefix j,
	// for 0 <= k < j <= N.
	F func(k, j int) cost.Cost

	// FRow, when non-nil, bulk-evaluates F over one k-run: it fills
	// dst[t] = F(k0+t, j) for 0 <= t < len(dst), with every k0+t < j.
	// It is semantically redundant with F and must agree with it on
	// every argument (Validate checks); the LLP engine folds candidate
	// runs through it to amortise the per-candidate closure call into
	// one tight loop, exactly as Instance.FPanel does for the blocked
	// interval engine.
	FRow func(j, k0 int, dst []cost.Cost)

	// Window, when positive, restricts the candidate set of index j to
	// k >= j-Window (Lo). Zero means the full prefix. Constructors whose
	// F is Zero-valued beyond some reach set it (subset sum's largest
	// item); it participates in the canonical encoding, so a windowed
	// chain never shares a cache entry with its full-prefix twin.
	Window int

	// Name labels the chain in experiment tables and error messages.
	Name string

	// Algebra names the idempotent semiring the recurrence is evaluated
	// over ("" means "min-plus"), with exactly Instance.Algebra's
	// resolution and canonical-encoding semantics.
	Algebra string

	// Canon, when non-nil, returns a stable, self-describing byte
	// encoding of the chain's defining parameters — the same contract as
	// Instance.Canon (injective per kind, kind tag first). Window and
	// Algebra are folded in by Canonical, not here.
	Canon func() []byte
}

// Lo returns the smallest candidate index of position j under the
// chain's window: max(0, j-Window), or 0 when no window is set.
func (c *Chain) Lo(j int) int {
	if c.Window > 0 && j-c.Window > 0 {
		return j - c.Window
	}
	return 0
}

// Canonical returns the chain's stable canonical encoding and true, or
// nil and false when the chain has no Canon hook. Like
// Instance.Canonical it folds the algebra in as an "alg\x00<name>\x00"
// prefix (min-plus stays untagged); a positive Window is additionally
// folded as a "win\x00<uvarint>" prefix inside the algebra tag, so the
// same parameters under different windows or algebras can never share a
// cache entry. Canon encodings start with a varint kind-name length, so
// neither prefix can collide with an untagged encoding (no registered
// kind name is the 119 or 97 characters long a first byte of 'w' or 'a'
// would imply).
func (c *Chain) Canonical() ([]byte, bool) {
	if c.Canon == nil {
		return nil, false
	}
	b := c.Canon()
	if c.Window > 0 {
		tagged := make([]byte, 0, len(b)+4+binary.MaxVarintLen64)
		tagged = append(tagged, "win\x00"...)
		tagged = binary.AppendUvarint(tagged, uint64(c.Window))
		b = append(tagged, b...)
	}
	if c.Algebra != "" && c.Algebra != "min-plus" {
		tagged := make([]byte, 0, len(c.Algebra)+5+len(b))
		tagged = append(tagged, "alg\x00"...)
		tagged = append(tagged, c.Algebra...)
		tagged = append(tagged, 0)
		b = append(tagged, b...)
	}
	return b, true
}

// NumCandidates returns the total number of (k,j) transition pairs the
// chain's window admits — the exact work of one full solve, the quantity
// the LLP engine's work-efficiency is audited against.
func (c *Chain) NumCandidates() int64 {
	var total int64
	for j := 1; j <= c.N; j++ {
		total += int64(j - c.Lo(j))
	}
	return total
}

// Validate checks the structural preconditions: N >= 1, F present, a
// nonnegative window, and FRow agreeing with F on every admitted (k,j)
// pair. It evaluates every candidate, so it is O(N^2); intended for
// tests and constructor-time checks at small sizes.
func (c *Chain) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("recurrence: chain %q has N=%d, need >= 1", c.Name, c.N)
	}
	if c.F == nil {
		return errors.New("recurrence: chain F must be non-nil")
	}
	if c.Window < 0 {
		return fmt.Errorf("recurrence: chain %q has negative window %d", c.Name, c.Window)
	}
	var row []cost.Cost
	if c.FRow != nil {
		row = make([]cost.Cost, c.N)
	}
	for j := 1; j <= c.N; j++ {
		lo := c.Lo(j)
		if row != nil {
			c.FRow(j, lo, row[:j-lo])
		}
		for k := lo; k < j; k++ {
			v := c.F(k, j)
			if row != nil && row[k-lo] != v {
				return fmt.Errorf("recurrence: FRow(%d,%d)[%d] = %d disagrees with F(%d,%d) = %d",
					j, lo, k-lo, row[k-lo], k, j, v)
			}
		}
	}
	return nil
}

// Vector is the dense result of a chain solve: the values c(0)..c(N),
// the 1D analogue of Table. Root — c(N) — is the value the recurrence
// asks for.
type Vector struct {
	N    int
	data []cost.Cost
}

// NewVector returns a vector for indices 0..n with every entry Inf
// (engines overwrite every cell: c(0) with the algebra's One, the rest
// with fold results).
func NewVector(n int) *Vector {
	v := &Vector{N: n, data: make([]cost.Cost, n+1)}
	for i := range v.data {
		v.data[i] = cost.Inf
	}
	return v
}

// At returns c(j).
func (v *Vector) At(j int) cost.Cost { return v.data[j] }

// Set stores x at index j.
func (v *Vector) Set(j int, x cost.Cost) { v.data[j] = x }

// Data exposes the flat backing slice (index j holds c(j)) — the
// kernel-facing escape hatch the bulk primitives operate on. Mutating it
// mutates the vector.
func (v *Vector) Data() []cost.Cost { return v.data }

// Root returns c(N), the value the recurrence asks for.
func (v *Vector) Root() cost.Cost { return v.data[v.N] }

// Equal reports whether two vectors agree on every index after
// normalising infinities.
func (v *Vector) Equal(o *Vector) bool {
	if v.N != o.N {
		return false
	}
	for j := 0; j <= v.N; j++ {
		if cost.Norm(v.data[j]) != cost.Norm(o.data[j]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	c := &Vector{N: v.N, data: make([]cost.Cost, len(v.data))}
	copy(c.data, v.data)
	return c
}

// Diff returns the indices on which the two vectors disagree, up to max
// entries (max <= 0 means no limit).
func (v *Vector) Diff(o *Vector, max int) []string {
	if v.N != o.N {
		return []string{fmt.Sprintf("size mismatch: N=%d vs N=%d", v.N, o.N)}
	}
	var out []string
	for j := 0; j <= v.N; j++ {
		a, b := cost.Norm(v.data[j]), cost.Norm(o.data[j])
		if a != b {
			out = append(out, fmt.Sprintf("c(%d): %d vs %d", j, a, b))
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}
