// Package seq provides the sequential baselines: the classic O(n^3)
// dynamic program for recurrence (*) (the "best sequential algorithm" the
// paper compares processor-time products against) and Knuth's O(n^2)
// speedup for instances satisfying his monotonicity conditions (optimal
// binary search trees). Both reconstruct the optimal parenthesization
// tree, which the pebbling game and the experiment harness consume.
package seq

import (
	"context"
	"fmt"

	"sublineardp/internal/algebra"
	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// Result carries a sequential solve: the full cost table, the split table
// for reconstruction, and the exact number of candidate evaluations (the
// work W used in processor-time product comparisons).
type Result struct {
	Table  *recurrence.Table
	splits []int32 // split[k] choice per (i,j); -1 for leaves
	N      int
	Work   int64
	zero   cost.Cost // the algebra's "no solution" value, for Tree gating
}

// Solve runs the O(n^3) dynamic program span by span, under the
// instance's declared algebra. Ties between splits resolve to the
// smallest k, making the reconstruction deterministic.
func Solve(in *recurrence.Instance) *Result {
	res, err := SolveCtx(context.Background(), in)
	if err != nil {
		// Only reachable for an unregistered instance algebra; the
		// background context never cancels.
		panic(err)
	}
	return res
}

// SolveCtx is Solve with cooperative cancellation: the context is checked
// once per table cell (O(n^2) checks against O(n^3) work, so cancellation
// is prompt even when Init/F are expensive callbacks). A cancelled or
// expired context aborts with a nil Result and ctx.Err().
func SolveCtx(ctx context.Context, in *recurrence.Instance) (*Result, error) {
	return SolveSemiringCtx(ctx, in, nil)
}

// SolveSemiringCtx is SolveCtx under an explicit algebra override
// (nil = the instance's declared algebra, min-plus by default). The
// min-plus instantiation runs a dedicated scalar loop — it is the
// auto-engine's small-instance serving path — and is bitwise what
// SolveCtx always computed; every other algebra runs the same sweep
// through the semiring's operations.
func SolveSemiringCtx(ctx context.Context, in *recurrence.Instance, sr algebra.Semiring) (*Result, error) {
	k, err := algebra.Resolve(sr, in.Algebra)
	if err != nil {
		return nil, err
	}
	n := in.N
	size := n + 1
	res := &Result{
		Table:  recurrence.NewTable(n),
		splits: make([]int32, size*size),
		N:      n,
		zero:   k.Zero(),
	}
	for i := range res.splits { //lint:allow ctxpoll O(n^2) split-matrix sentinel fill before the polled span sweep
		res.splits[i] = -1
	}
	for i := 0; i < n; i++ { //lint:allow ctxpoll O(n) Init fill before the polled span sweep
		res.Table.Set(i, i+1, in.Init(i))
	}
	if _, minPlus := k.(algebra.MinPlus); minPlus {
		err = solveMinPlus(ctx, in, res)
	} else {
		err = solveSemiring(ctx, in, res, k)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// solveMinPlus is the concrete min-plus sweep.
func solveMinPlus(ctx context.Context, in *recurrence.Instance, res *Result) error {
	n := in.N
	size := n + 1
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			j := i + span
			best := cost.Inf
			bestK := int32(-1)
			for k := i + 1; k < j; k++ {
				v := cost.Add3(in.F(i, k, j), res.Table.At(i, k), res.Table.At(k, j)) //lint:allow bulkonly concrete min-plus serving loop: in.F is a direct func-field call here, no dictionary dispatch
				if v < best {
					best = v
					bestK = int32(k)
				}
			}
			res.Work += int64(span - 1)
			res.Table.Set(i, j, best)
			res.splits[i*size+j] = bestK
		}
	}
	return nil
}

// solveSemiring is the same sweep over an arbitrary algebra. Better is
// strict, so ties keep the smallest k exactly like the min-plus loop.
func solveSemiring(ctx context.Context, in *recurrence.Instance, res *Result, sr algebra.Kernel) error {
	n := in.N
	size := n + 1
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			j := i + span
			best := sr.Zero()
			bestK := int32(-1)
			for k := i + 1; k < j; k++ {
				v := sr.Extend3(in.F(i, k, j), res.Table.At(i, k), res.Table.At(k, j)) //lint:allow bulkonly the engine-independent reference scan every bulk kernel is conformance-pinned against
				if sr.Better(v, best) {
					best = v
					bestK = int32(k)
				}
			}
			res.Work += int64(span - 1)
			res.Table.Set(i, j, best)
			res.splits[i*size+j] = bestK
		}
	}
	return nil
}

// Cost returns the optimal value c(0,n).
func (r *Result) Cost() cost.Cost { return r.Table.Root() }

// Feasible reports that the root holds a solution — its value is not the
// algebra's Zero. For min-plus this is the classic "optimum is finite".
func (r *Result) Feasible() bool {
	root := r.Cost()
	if r.zero == cost.Inf {
		return !cost.IsInf(root)
	}
	return root != r.zero
}

// Split returns the optimal split point recorded for node (i,j), or -1
// for leaves and never-computed spans.
func (r *Result) Split(i, j int) int {
	return int(r.splits[i*(r.N+1)+j])
}

// Tree reconstructs the optimal parenthesization tree from the split
// table. It panics if the table holds no solution — the root is the
// algebra's Zero (Inf for min-plus), which cannot happen for valid
// min-plus instances but is an ordinary outcome for e.g. an infeasible
// bool-plan family; call Feasible first for those.
func (r *Result) Tree() *btree.Tree {
	if !r.Feasible() {
		panic("seq: no optimum to reconstruct")
	}
	return btree.New(r.N, func(i, j int) int {
		k := r.Split(i, j)
		if k < 0 {
			panic(fmt.Sprintf("seq: missing split for span (%d,%d)", i, j))
		}
		return k
	})
}

// SolveKnuth runs Knuth's O(n^2) variant, which restricts the split search
// for (i,j) to the range [split(i,j-1), split(i+1,j)]. The optimisation is
// only valid for instances satisfying the quadrangle inequality and
// monotonicity (OBST-style f that depends on (i,j) only) under the
// min-plus algebra — it panics on instances declaring any other algebra;
// callers are responsible for using it on such instances, and tests
// verify agreement with Solve on them.
func SolveKnuth(in *recurrence.Instance) *Result {
	if in.Algebra != "" && in.Algebra != algebra.NameMinPlus {
		panic(fmt.Sprintf("seq: SolveKnuth requires min-plus, instance %q declares %q", in.Name, in.Algebra))
	}
	n := in.N
	size := n + 1
	res := &Result{
		Table:  recurrence.NewTable(n),
		splits: make([]int32, size*size),
		N:      n,
		zero:   cost.Inf,
	}
	for i := range res.splits {
		res.splits[i] = -1
	}
	for i := 0; i < n; i++ {
		res.Table.Set(i, i+1, in.Init(i))
		// Treat the leaf's "split" as its midpoint so the span-2 windows
		// below are well defined.
		res.splits[i*size+i+1] = int32(i) // lower bound sentinel: k >= i+1 enforced below
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span
			lo := int(res.splits[i*size+j-1])
			hi := int(res.splits[(i+1)*size+j])
			if lo < i+1 {
				lo = i + 1
			}
			if hi < lo || hi > j-1 {
				hi = j - 1
			}
			best := cost.Inf
			bestK := int32(-1)
			for k := lo; k <= hi; k++ {
				v := cost.Add3(in.F(i, k, j), res.Table.At(i, k), res.Table.At(k, j)) //lint:allow bulkonly Knuth window scan: per-candidate F over O(n^2) total candidates is the algorithm being charged
				if v < best {
					best = v
					bestK = int32(k)
				}
			}
			res.Work += int64(hi - lo + 1)
			res.Table.Set(i, j, best)
			res.splits[i*size+j] = bestK
		}
	}
	return res
}

// BruteForce computes c(0,n) by exhaustive recursion with memoisation
// over all parenthesizations. Exponential bookkeeping but entirely
// independent of the DP formulation; tests use it at tiny n as ground
// truth for everything else.
func BruteForce(in *recurrence.Instance) cost.Cost {
	n := in.N
	size := n + 1
	memo := make([]cost.Cost, size*size)
	for i := range memo {
		memo[i] = -1
	}
	var rec func(i, j int) cost.Cost
	rec = func(i, j int) cost.Cost {
		if m := memo[i*size+j]; m >= 0 {
			return m
		}
		var v cost.Cost
		if j == i+1 {
			v = in.Init(i)
		} else {
			v = cost.Inf
			for k := i + 1; k < j; k++ {
				c := cost.Add3(in.F(i, k, j), rec(i, k), rec(k, j)) //lint:allow bulkonly brute-force ground truth for tiny n; test-only by construction
				if c < v {
					v = c
				}
			}
		}
		memo[i*size+j] = v
		return v
	}
	return rec(0, n)
}
