package exper

import (
	"math"

	"sublineardp/internal/core"
	"sublineardp/internal/problems"
	"sublineardp/internal/stats"
)

// E5PRAMAccounting verifies the complexity bookkeeping of Sections 4-5 on
// the PRAM cost model: for the banded variant run to its full worst-case
// budget, PRAM time should scale like sqrt(n)*log(n) and the implied
// processor count like n^3.5/log(n); the dense variant's processors like
// n^5/log n. The table reports measured values and normalised ratios that
// should flatten as n grows.
func E5PRAMAccounting(cfg Config) []*Table {
	sizes := []int{16, 25, 36, 49, 64, 100, 144}
	denseMax := 49
	if cfg.Quick {
		sizes = []int{16, 25, 36}
		denseMax = 25
	}

	t := &Table{
		ID:       "E5",
		Title:    "PRAM time and implied processors at the worst-case budget (banded variant)",
		PaperRef: "Theorem: O(sqrt(n) log n) time, O(n^3.5/log n) processors (Section 5); O(n^5/log n) dense (Section 4)",
		Columns: []string{"n", "iters", "pram time", "time/(√n·log2 n)", "procs",
			"procs/(n^3.5/log2 n)", "dense procs", "dense/(n^5/log2 n)"},
	}

	var xs, times, procs []float64
	for _, n := range sizes {
		in := problems.Zigzag(n).Materialize()
		res := core.Solve(in, core.Options{Variant: core.Banded, Window: true, Workers: cfg.Workers})
		logn := math.Log2(float64(n))
		sq := math.Sqrt(float64(n))
		xs = append(xs, float64(n))
		times = append(times, float64(res.Acct.Time))
		procs = append(procs, float64(res.Acct.MaxProcs))

		denseCell, denseNorm := "-", "-"
		if n <= denseMax {
			dres := core.Solve(in, core.Options{Variant: core.Dense, Workers: cfg.Workers})
			denseCell = fmtInt(dres.Acct.MaxProcs)
			denseNorm = trimFloat(float64(dres.Acct.MaxProcs) / (math.Pow(float64(n), 5) / logn))
		}
		t.AddRow(n, res.Iterations, fmtInt(res.Acct.Time),
			float64(res.Acct.Time)/(sq*logn),
			fmtInt(res.Acct.MaxProcs),
			float64(res.Acct.MaxProcs)/(math.Pow(float64(n), 3.5)/logn),
			denseCell, denseNorm)
	}

	eT, _, _ := stats.PowerFit(xs, times)
	eP, _, _ := stats.PowerFit(xs, procs)
	t.Note("fitted: pram time ~ n^%.2f (paper 0.5 + log factor), processors ~ n^%.2f (paper 3.5 - log factor)", eT, eP)
	t.Note("normalised columns flatten with n, matching the claimed bounds up to constants")
	return []*Table{t}
}
