package workload

import (
	"context"
	"testing"
	"testing/quick"

	"sublineardp/internal/core"
	"sublineardp/internal/llp"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
)

func TestZipfShape(t *testing.T) {
	ws := Zipf(100, 1.0, 1000, 1)
	if len(ws) != 100 {
		t.Fatalf("len = %d", len(ws))
	}
	var max, sum int64
	for _, w := range ws {
		if w < 1 {
			t.Fatalf("weight %d below 1", w)
		}
		if w > max {
			max = w
		}
		sum += w
	}
	if max != 1000 {
		t.Fatalf("max = %d, want 1000 (scale)", max)
	}
	// Zipf mass is concentrated: the sum must be far below n*max.
	if sum > 100*1000/5 {
		t.Fatalf("sum %d too uniform for Zipf", sum)
	}
}

func TestZipfReproducible(t *testing.T) {
	a := Zipf(50, 1.2, 500, 7)
	b := Zipf(50, 1.2, 500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad parameters accepted")
		}
	}()
	Zipf(0, 1, 10, 1)
}

func TestDictionaryOBSTSolvable(t *testing.T) {
	in := DictionaryOBST(20, 3)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	want := seq.Solve(in).Table
	got := core.Solve(in, core.Options{Variant: core.Banded})
	if !got.Table.Equal(want) {
		t.Fatal("parallel disagrees on dictionary OBST")
	}
}

func TestMLPChainShape(t *testing.T) {
	in := MLPChain(3, 784, 256, 10)
	// dims: 1, 784, 256, 256, 10 -> N = 4 matrices.
	if in.N != 4 {
		t.Fatalf("N = %d, want 4", in.N)
	}
	// Left-to-right association keeps every intermediate a row vector; the
	// optimum must therefore be far below the right-to-left order.
	res := seq.Solve(in)
	leftToRight := int64(1*784*256 + 1*256*256 + 1*256*10)
	if int64(res.Cost()) > leftToRight {
		t.Fatalf("optimum %d worse than left-to-right %d", res.Cost(), leftToRight)
	}
}

func TestSensorPolygonSolvable(t *testing.T) {
	in := SensorPolygon(14, 1000, 0.05, 9)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	want := seq.Solve(in).Table
	got := core.Solve(in, core.Options{Variant: core.Banded, Termination: core.WStable})
	if !got.Table.Equal(want) {
		t.Fatal("parallel disagrees on sensor polygon")
	}
}

// Property: all workload generators produce valid instances whose
// parallel and sequential solutions agree.
func TestWorkloadsAgreeProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%10 + 4
		for _, in := range []*recurrence.Instance{
			DictionaryOBST(n, seed),
			SensorPolygon(n, 800, 0.1, seed),
		} {
			if in.Validate() != nil {
				return false
			}
			if !core.Solve(in, core.Options{Variant: core.Banded}).Table.Equal(seq.Solve(in).Table) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// The algebra families must declare their semirings, be canonicalisable
// (servable/cacheable), and produce both outcomes across seeds.
func TestWorstCaseChainGenerator(t *testing.T) {
	in := WorstCaseChain(24, 7)
	if in.Algebra != "max-plus" {
		t.Fatalf("algebra = %q", in.Algebra)
	}
	if _, ok := in.Canonical(); !ok {
		t.Fatal("worstchain instance not canonicalisable")
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic per seed.
	a, _ := WorstCaseChain(24, 7).Canonical()
	b, _ := in.Canonical()
	if string(a) != string(b) {
		t.Fatal("generator not deterministic")
	}
}

func TestFeasibilityPlanGenerator(t *testing.T) {
	feasible, infeasible := 0, 0
	for seed := int64(0); seed < 24; seed++ {
		in := FeasibilityPlan(16, seed)
		if in.Algebra != "bool-plan" {
			t.Fatalf("algebra = %q", in.Algebra)
		}
		if _, ok := in.Canonical(); !ok {
			t.Fatal("feasibility instance not canonicalisable")
		}
		res, err := seq.SolveSemiringCtx(context.Background(), in, nil)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Cost() {
		case 1:
			feasible++
		case 0:
			infeasible++
		default:
			t.Fatalf("seed %d: non-boolean root %d", seed, res.Cost())
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("seeds one-sided: %d feasible, %d infeasible — the mix must exercise both", feasible, infeasible)
	}
}

// The chain families must declare their semirings, be canonicalisable
// (servable/cacheable), validate, and agree between the sequential and
// LLP engines.
func TestChainWorkloadGenerators(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, c := range []*recurrence.Chain{
			TelemetrySeries(20, seed),
			JobSchedule(18, seed),
			CoinFeasibility(40+seed, seed),
		} {
			if c.Algebra == "" {
				t.Fatalf("%s declares no algebra", c.Name)
			}
			if _, ok := c.Canonical(); !ok {
				t.Fatalf("%s not canonicalisable", c.Name)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			want := seq.SolveChain(c)
			got := llp.Solve(c, llp.Options{Workers: 3})
			if !got.Values.Equal(want.Values) {
				t.Fatalf("%s: llp values differ from sequential", c.Name)
			}
		}
	}
}

func TestCoinFeasibilityBothOutcomes(t *testing.T) {
	// seed%4==3 builds an all-even coin system: odd targets unreachable.
	infeasible := CoinFeasibility(41, 3)
	if got := seq.SolveChain(infeasible); got.Feasible() {
		t.Fatal("all-even coins reached an odd target")
	}
	feasible := CoinFeasibility(40, 0)
	if got := seq.SolveChain(feasible); !got.Feasible() {
		t.Fatalf("%s unexpectedly infeasible", feasible.Name)
	}
}
