package problems

import "encoding/binary"

// canon builds the stable canonical encoding shared by every
// parameterised constructor: a kind tag, then each parameter group as a
// varint length followed by its varint-encoded values. Length prefixes
// make the encoding injective (no group can borrow values from its
// neighbour), and varints keep it compact for the large weight tables
// real serving traffic carries. The format is hashed, never decoded, so
// it has no versioning concerns beyond "only extend by adding new kinds".
func canon(kind string, groups ...[]int64) []byte {
	buf := make([]byte, 0, 16+10*len(kind))
	buf = binary.AppendUvarint(buf, uint64(len(kind)))
	buf = append(buf, kind...)
	for _, g := range groups {
		buf = binary.AppendUvarint(buf, uint64(len(g)))
		for _, v := range g {
			buf = binary.AppendVarint(buf, v)
		}
	}
	return buf
}

func intsTo64(vs []int) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out
}
