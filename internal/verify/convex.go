package verify

import (
	"math/rand"

	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// QuadrangleInequality audits the Knuth–Yao eligibility conditions an
// instance asserts with Instance.Convex, by randomized sampling:
//
//  1. k-independence — F(i,k,j) must not depend on k, so a weight
//     w(i,j) := F(i,·,j) exists at all ("k-dependent" violations);
//  2. the quadrangle inequality — for i ≤ i' ≤ j ≤ j',
//     w(i,j) + w(i',j') ≤ w(i,j') + w(i',j) ("quadrangle");
//  3. monotonicity on the containment order — w(i',j) ≤ w(i,j')
//     whenever [i',j] ⊆ [i,j'] ("monotone").
//
// Leaves use Init(i) as w(i,i+1), matching the pruned engine's reading
// of the recurrence. Sampling is exhaustive only in expectation: a
// passing report means no counterexample was found in `samples` draws,
// not a proof — the bitwise conformance wall against the unpruned
// engine is the ground truth. samples <= 0 picks min(8n, 512) draws,
// the same budget Instance.Validate spends on declared instances.
//
// Note the deliberate scope: matrix-chain famously has a monotone,
// QI-satisfying weight in the literature ONLY after rewriting the
// recurrence; in this codebase's form its F(i,k,j) = d[i]·d[k]·d[j]
// depends on k, so condition 1 fails and the auditor (correctly)
// rejects it. OBST and the RandomConvex family pass.
func QuadrangleInequality(in *recurrence.Instance, samples int, seed int64) *Report {
	n := in.N
	if samples <= 0 {
		samples = 8 * n
		if samples > 512 {
			samples = 512
		}
	}
	w := func(i, j int) cost.Cost {
		if j == i+1 {
			return in.Init(i)
		}
		return in.F(i, i+1, j)
	}
	rep := &Report{}
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < samples; s++ {
		// Condition 1 needs a span with at least two interior splits.
		if n >= 3 {
			rep.Checked++
			i := rng.Intn(n - 2)
			j := i + 3 + rng.Intn(n-i-2)
			k1 := i + 1 + rng.Intn(j-i-1)
			k2 := i + 1 + rng.Intn(j-i-1)
			if a, b := in.F(i, k1, j), in.F(i, k2, j); a != b {
				rep.Violations = append(rep.Violations, Violation{
					I: i, J: j, Got: a, Want: b, Kind: "k-dependent",
				})
			}
		}
		if n < 2 {
			continue
		}
		// A random quadrangle i <= ip <= j <= jp on [0,n].
		rep.Checked++
		i := rng.Intn(n)
		ip := i + rng.Intn(n-i)
		j := ip + 1 + rng.Intn(n-ip)
		jp := j + rng.Intn(n-j+1)
		if a, b := w(i, j)+w(ip, jp), w(i, jp)+w(ip, j); a > b {
			rep.Violations = append(rep.Violations, Violation{
				I: i, J: jp, Got: a, Want: b, Kind: "quadrangle",
			})
		}
		if a, b := w(ip, j), w(i, jp); a > b {
			rep.Violations = append(rep.Violations, Violation{
				I: ip, J: j, Got: a, Want: b, Kind: "monotone",
			})
		}
	}
	return rep
}
