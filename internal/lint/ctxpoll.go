package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPoll mechanizes the PR 9 cancellation audit: every exported
// Solve*Ctx engine entry point takes a context so a cancelled request
// can abort mid-solve — which only works if every loop that scales
// with the instance either polls ctx.Err()/ctx.Done(), passes the
// context onward (pool dispatch, recursive solves), or captures it in
// the worker closures it spawns. A loop nest with no context reference
// at all is an unkillable solve: the request deadline fires, the
// client disconnects, and the engine keeps burning the machine.
type CtxPoll struct {
	// Packages restricts the scan to these module-relative package
	// paths (nil = every loaded package).
	Packages []string
}

func (*CtxPoll) Name() string { return "ctxpoll" }
func (*CtxPoll) Doc() string {
	return "every loop of an exported Solve*Ctx entry point must poll, pass, or capture the context"
}

func (a *CtxPoll) Run(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range targetPackages(prog, a.Packages) {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isSolveCtxEntry(pkg, fd) {
					continue
				}
				for _, loop := range outermostLoops(fd.Body) {
					if !referencesContext(pkg, loop) {
						out = append(out, finding(prog, a.Name(), loop.Pos(),
							"loop in %s never consults the context (no ctx.Err()/ctx.Done() poll, no pass, no capture): a cancelled solve cannot stop here — poll ctx.Err(), or annotate why this loop is O(1)-bounded",
							fd.Name.Name))
					}
				}
			}
		}
	}
	return out
}

// isSolveCtxEntry reports whether fd is an exported Solve*Ctx function
// or method with a context.Context parameter.
func isSolveCtxEntry(pkg *Package, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if !ast.IsExported(name) || !strings.HasPrefix(name, "Solve") || !strings.HasSuffix(name, "Ctx") {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// outermostLoops collects the for/range statements of body that are not
// themselves nested inside another loop of body. Loops inside function
// literals count: a worker body handed to a pool runs the same
// iteration space and needs the same cancellation story.
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return false // nested loops live in this subtree
		}
		return true
	})
	return loops
}

// referencesContext reports whether any expression under n has type
// context.Context — a poll (ctx.Err()), a pass (f(ctx, ...)), or a
// capture (closure mentioning ctx) all qualify.
func referencesContext(pkg *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if expr, ok := n.(ast.Expr); ok {
			if tv, ok := pkg.Info.Types[expr]; ok && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// targetPackages resolves a module-relative package filter (nil = all).
func targetPackages(prog *Program, rels []string) []*Package {
	if rels == nil {
		return prog.Packages
	}
	var out []*Package
	for _, rel := range rels {
		if pkg := prog.Pkg(rel); pkg != nil {
			out = append(out, pkg)
		}
	}
	return out
}
