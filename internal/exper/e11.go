package exper

import (
	"fmt"
	"math"

	"sublineardp/internal/core"
	"sublineardp/internal/problems"
	"sublineardp/internal/txtplot"
)

// E11ProcessorScaling replays the banded run's charged operations on
// bounded machines via Brent's theorem: a machine with p processors
// finishes in sum over ops of (ceil(W_op/p) + T_op). The table shows the
// classic work/span saturation curve: linear speedup until p approaches
// Work/Time, flat afterwards — connecting the paper's unbounded-processor
// statement to a machine one could build.
func E11ProcessorScaling(cfg Config) []*Table {
	n := 100
	if cfg.Quick {
		n = 36
	}
	in := problems.Zigzag(n).Materialize()
	res := core.Solve(in, core.Options{Variant: core.Banded, Window: true, Workers: cfg.Workers})

	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("Brent-scheduled makespan on p processors (banded, zigzag n=%d)", n),
		PaperRef: "Brent's theorem applied to the Section 5 algorithm; the paper's " +
			"O(n^3.5/log n) is the saturation knee",
		Columns: []string{"p", "T_p (steps)", "speedup vs p=1", "efficiency"},
	}

	t1 := res.Acct.TimeOn(1)
	var xs, sp []float64
	for p := int64(1); p <= 4*res.Acct.MaxProcs; p *= 4 {
		tp := res.Acct.TimeOn(p)
		speed := float64(t1) / float64(tp)
		t.AddRow(fmtInt(p), fmtInt(tp), speed, speed/float64(p))
		xs = append(xs, math.Log2(float64(p)))
		sp = append(sp, math.Log2(speed))
	}
	t.Note("unbounded-machine critical path: %d steps; processor demand at that time: %s",
		res.Acct.Time, fmtInt(res.Acct.MaxProcs))
	t.Note("speedup is linear (slope 1 in log-log) until p nears work/time, then saturates at T_inf = %s",
		fmtInt(res.Acct.TimeOn(1<<62)))

	plot := &Table{
		ID:       "E11",
		Title:    "log2(speedup) vs log2(p)",
		PaperRef: "the work/span law",
		Columns:  []string{"plot"},
	}
	for _, line := range splitLines(txtplot.Lines(48, 10, xs, txtplot.Series{Name: "speedup", Ys: sp})) {
		plot.AddRow(line)
	}
	return []*Table{t, plot}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
