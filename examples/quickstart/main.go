// Quickstart: solve the textbook matrix-chain instance with the paper's
// parallel algorithm and compare against the sequential optimum.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sublineardp"
)

func main() {
	// Six matrices: 30x35, 35x15, 15x5, 5x10, 10x20, 20x25 (CLRS §15.2).
	in := sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})

	// The paper's algorithm: banded storage (the O(n^3.5/log n)-processor
	// variant of Section 5), synchronous PRAM-faithful updates, the fixed
	// 2*ceil(sqrt(n)) iteration budget.
	res := sublineardp.Solve(in, sublineardp.Options{Variant: sublineardp.Banded})
	fmt.Printf("parallel optimum:  %d scalar multiplications\n", res.Cost())
	fmt.Printf("iterations:        %d (worst-case budget %d)\n",
		res.Iterations, sublineardp.WorstCaseIterations(in.N))
	fmt.Printf("PRAM accounting:   %s\n", res.Acct.String())

	// The O(n^3) sequential baseline, with tree reconstruction.
	seq := sublineardp.SolveSequential(in)
	fmt.Printf("sequential optimum: %d\n", seq.Cost())
	if res.Cost() != seq.Cost() {
		log.Fatal("parallel and sequential optima disagree")
	}

	fmt.Println("optimal parenthesization ((A1(A2A3))((A4A5)A6)):")
	fmt.Print(seq.Tree().Render(nil))
}
