package recurrence

import (
	"fmt"

	"sublineardp/internal/algebra"
	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
)

// TreeCost evaluates the exact cost of a specific parenthesization tree
// under the instance: the sum of f over internal nodes plus init over
// leaves (the W(T) of the paper). The tree must span (0,N) of the
// instance.
func TreeCost(in *Instance, t *btree.Tree) cost.Cost {
	if t.N != in.N {
		panic(fmt.Sprintf("recurrence: tree over %d leaves for instance with N=%d", t.N, in.N))
	}
	var sum cost.Cost
	for v := int32(0); v < int32(t.Len()); v++ {
		i, j := t.Span(v)
		if t.IsLeaf(v) {
			sum = cost.Add(sum, in.Init(i))
		} else {
			sum = cost.Add(sum, in.F(i, t.Split(v), j))
		}
	}
	return sum
}

// ExtractTree reconstructs an optimal parenthesization from a converged
// min-plus cost table. It is ExtractTreeSemiring under the paper's
// algebra — see there for the reconstruction contract.
func ExtractTree(in *Instance, t *Table) (*btree.Tree, error) {
	return ExtractTreeSemiring(in, t, algebra.MinPlus{})
}

// ExtractTreeSemiring lazily reconstructs an optimal parenthesization
// from a converged cost table under any algebra kernel: walking root to
// leaf, each internal span (i,j) is resolved to its smallest split k
// with c(i,j) = Extend3(f(i,k,j), c(i,k), c(k,j)) — the same smallest-k
// tie-break as the sequential solver, so the two reconstructions
// coincide. Only the n−1 internal spans of the answer tree are scanned
// (O(n^2) candidate evaluations total), not all O(n^2) spans of the
// table: reconstruction costs less than one table sweep.
//
// It returns an error when the root (or any span the walk reaches) holds
// the algebra's Zero — no feasible tree exists, so there is nothing to
// reconstruct — and when some reached span has no witnessing split (the
// table is not a fixed point of the recurrence, e.g. the solver was
// stopped before convergence).
func ExtractTreeSemiring(in *Instance, t *Table, kern algebra.Kernel) (*btree.Tree, error) {
	n := in.N
	if t.N != n {
		return nil, fmt.Errorf("recurrence: table size %d for instance with N=%d", t.N, n)
	}
	splits := make(map[[2]int]int, n)
	stack := [][2]int{{0, n}}
	for len(stack) > 0 {
		span := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		i, j := span[0], span[1]
		if j <= i+1 {
			continue
		}
		target := kern.Norm(t.At(i, j))
		if kern.IsZero(target) {
			return nil, fmt.Errorf("recurrence: span (%d,%d) is unreachable (value is the algebra's zero); no tree to reconstruct", i, j)
		}
		found := -1
		for k := i + 1; k < j; k++ {
			v := kern.Extend3(in.F(i, k, j), t.At(i, k), t.At(k, j))
			if !kern.IsZero(v) && kern.Norm(v) == target {
				found = k
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("recurrence: table is not a fixed point at (%d,%d); was the solver stopped early?", i, j)
		}
		splits[span] = found
		stack = append(stack, [2]int{i, found}, [2]int{found, j})
	}
	return btree.New(n, btree.FromSplits(splits)), nil
}

// TreeFromSplits builds the parenthesization tree a recorded split
// matrix encodes, walking root to leaf: split(i,j) must return the
// chosen k of every internal span the walk reaches (leaves are never
// queried). A negative or out-of-range split is reported as an error —
// the span was never reached by any feasible candidate, so the recording
// engine found no tree.
func TreeFromSplits(n int, split func(i, j int) int) (*btree.Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("recurrence: TreeFromSplits needs n >= 1, got %d", n)
	}
	splits := make(map[[2]int]int, n)
	stack := [][2]int{{0, n}}
	for len(stack) > 0 {
		span := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		i, j := span[0], span[1]
		if j <= i+1 {
			continue
		}
		k := split(i, j)
		if k <= i || k >= j {
			return nil, fmt.Errorf("recurrence: no recorded split for span (%d,%d) (got %d); span unreachable or splits not recorded", i, j, k)
		}
		splits[span] = k
		stack = append(stack, [2]int{i, k}, [2]int{k, j})
	}
	return btree.New(n, btree.FromSplits(splits)), nil
}
