package exper

import (
	"sublineardp/internal/core"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/rytter"
	"sublineardp/internal/seq"
	"sublineardp/internal/wavefront"
)

// E6CrossValidation runs every solver on every problem family and counts
// exact table agreements with the sequential DP — the Section 4
// correctness theorem exercised end to end.
func E6CrossValidation(cfg Config) []*Table {
	sizes := []int{8, 12, 16}
	seeds := []int64{1, 2, 3}
	if cfg.Quick {
		sizes = []int{8, 12}
		seeds = []int64{1}
	}

	t := &Table{
		ID:       "E6",
		Title:    "Exact table agreement with sequential DP (runs passed/total)",
		PaperRef: "Section 4 correctness; Section 2 problem families",
		Columns:  []string{"family", "dense", "banded", "banded+window", "chaotic", "rytter", "wavefront"},
	}

	families := []struct {
		name string
		mk   func(n int, seed int64) *recurrence.Instance
	}{
		{"matrix-chain", func(n int, s int64) *recurrence.Instance { return problems.RandomMatrixChain(n, 40, s) }},
		{"obst", func(n int, s int64) *recurrence.Instance { return problems.RandomOBST(n, 30, s) }},
		{"triangulation", func(n int, s int64) *recurrence.Instance {
			return problems.Triangulation(problems.RandomConvexPolygon(n, 500, s))
		}},
		{"random-f", func(n int, s int64) *recurrence.Instance { return problems.RandomInstance(n, 50, s) }},
		{"zigzag-shaped", func(n int, s int64) *recurrence.Instance { return problems.Zigzag(n) }},
	}

	type solverCol struct {
		name string
		run  func(in *recurrence.Instance) *recurrence.Table
	}
	solvers := []solverCol{
		{"dense", func(in *recurrence.Instance) *recurrence.Table {
			return core.Solve(in, core.Options{Variant: core.Dense, Workers: cfg.Workers}).Table
		}},
		{"banded", func(in *recurrence.Instance) *recurrence.Table {
			return core.Solve(in, core.Options{Variant: core.Banded, Workers: cfg.Workers}).Table
		}},
		{"banded+window", func(in *recurrence.Instance) *recurrence.Table {
			return core.Solve(in, core.Options{Variant: core.Banded, Window: true, Workers: cfg.Workers}).Table
		}},
		{"chaotic", func(in *recurrence.Instance) *recurrence.Table {
			return core.Solve(in, core.Options{Variant: core.Dense, Mode: core.Chaotic}).Table
		}},
		{"rytter", func(in *recurrence.Instance) *recurrence.Table {
			return rytter.Solve(in, rytter.Options{Workers: cfg.Workers}).Table
		}},
		{"wavefront", func(in *recurrence.Instance) *recurrence.Table {
			return wavefront.Solve(in, wavefront.Options{Workers: cfg.Workers}).Table
		}},
	}

	allPassed := true
	for _, fam := range families {
		passed := make([]int, len(solvers))
		total := 0
		for _, n := range sizes {
			for _, seed := range seeds {
				in := fam.mk(n, seed)
				want := seq.Solve(in).Table
				total++
				for si, sv := range solvers {
					if sv.run(in).Equal(want) {
						passed[si]++
					} else {
						allPassed = false
					}
				}
			}
		}
		row := []any{fam.name}
		for _, p := range passed {
			row = append(row, fmtFrac(p, total))
		}
		t.AddRow(row...)
	}
	if allPassed {
		t.Note("all solvers agreed exactly with the sequential DP on every instance")
	} else {
		t.Note("WARNING: disagreements found — see counts above")
	}
	return []*Table{t}
}
