package exper

import (
	"bytes"
	"strings"
	"sublineardp/internal/core"
	"testing"
)

func TestAllRegistryEntries(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e2"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus id found")
	}
}

// Every experiment must run at Quick scale, produce at least one table
// with consistent row widths, and render without panicking.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.ID == "" || tb.Title == "" || len(tb.Columns) == 0 {
					t.Fatalf("%s produced a malformed table %+v", e.ID, tb)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("%s table %q has no rows", e.ID, tb.Title)
				}
				for ri, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("%s table %q row %d has %d cells for %d columns",
							e.ID, tb.Title, ri, len(row), len(tb.Columns))
					}
				}
				var buf bytes.Buffer
				tb.Render(&buf)
				if !strings.Contains(buf.String(), tb.Title) {
					t.Fatalf("render lost the title")
				}
				var csv bytes.Buffer
				tb.CSV(&csv)
				lines := strings.Count(csv.String(), "\n")
				if lines != len(tb.Rows)+1 {
					t.Fatalf("csv has %d lines, want %d", lines, len(tb.Rows)+1)
				}
			}
		})
	}
}

func TestNoWarningsAtQuickScale(t *testing.T) {
	// The correctness-bearing experiments must not report WARNING notes.
	cfg := Config{Quick: true}
	for _, id := range []string{"E3", "E6", "E7"} {
		e, _ := ByID(id)
		for _, tb := range e.Run(cfg) {
			for _, note := range tb.Notes {
				if strings.Contains(note, "WARNING") {
					t.Errorf("%s: %s", id, note)
				}
			}
		}
	}
}

func TestFmtInt(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		5:        "5",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-9876543: "-9,876,543",
	}
	for v, want := range cases {
		if got := fmtInt(v); got != want {
			t.Errorf("fmtInt(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2.0:    "2",
		0.125:  "0.125",
		3.1004: "3.1",
	}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow("x,y", `say "hi"`)
	var buf bytes.Buffer
	tb.CSV(&buf)
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestMaxStall(t *testing.T) {
	mk := func(changes ...int) []core.IterStat {
		out := make([]core.IterStat, len(changes))
		for i, c := range changes {
			out[i] = core.IterStat{Iter: i + 1, WChanged: c}
		}
		return out
	}
	if got := maxStall(mk(3, 0, 0, 2, 0)); got != 2 {
		t.Fatalf("stall = %d, want 2", got)
	}
	if got := maxStall(mk(3, 2, 1, 0, 0)); got != 0 {
		t.Fatalf("trailing quiet counted as stall: %d", got)
	}
	if got := maxStall(mk()); got != 0 {
		t.Fatalf("empty history stall = %d", got)
	}
}
