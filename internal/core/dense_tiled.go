package core

import (
	"context"

	"sublineardp/internal/cost"
)

// squareTiled is the cache-tiled a-square kernel for the synchronous
// no-audit path. It computes exactly the reference kernel's min (eq. 2c)
// but sweeps the iteration space in composition-major order, one pass per
// form of the equation, so the inner loops walk memory at unit or
// single-row stride instead of jumping O(n^3)-element strides per
// candidate:
//
//	pass 0  dst <- src for every valid cell (contiguous row copies)
//	pass 1  first form, (q, r, p) order: pw'(i,j,r,q) is a scalar per
//	        (q,r) and both pw'(r,q,p,q) and the destination walk a fixed
//	        stride-sz column over p, revisited r times while hot
//	pass 2  second form, (p, x, q) order: pw'(i,j,p,x) is a scalar per
//	        (p,x) and both pw'(p,x,p,q) and the destination row are
//	        contiguous over q
//
// Infinite scalars skip their whole inner loop — early iterations are
// Inf-dominated, so this prunes most of the O(n^5) candidate space while
// computing the identical min (Add saturates at Inf; an Inf candidate
// can never win). All candidate reads come from src, every valid cell is
// written, and the passes only tighten dst per cell, so the result is
// bitwise the reference kernel's.
func (s *denseState) squareTiled(ctx context.Context) {
	src := s.pw
	dst := s.pwNext
	track := s.trackPWChanges
	sz := s.sz
	sz2 := sz * sz
	sz3 := sz2 * sz
	changed := s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr.i), int(pr.j)
			baseIJ := (i*sz + j) * sz2
			for p := i; p <= j; p++ {
				rowP := baseIJ + p*sz
				copy(dst[rowP+p+1:rowP+j+1], src[rowP+p+1:rowP+j+1])
			}
			// First form of eq. (2c): intermediate (r,q).
			for q := i + 1; q <= j; q++ {
				colQ := baseIJ + q
				for r := i; r < q; r++ {
					s1 := src[colQ+r*sz] // pw'(i,j,r,q)
					if s1 >= cost.Inf {
						continue
					}
					rq := r*sz3 + q*sz2 + q // idx(r,q,p,q) - p*sz
					for p := r + 1; p < q; p++ {
						v := s1 + src[rq+p*sz]
						if c := colQ + p*sz; v < dst[c] {
							dst[c] = v
						}
					}
				}
			}
			// Second form: intermediate (p,x).
			for p := i; p < j; p++ {
				rowP := baseIJ + p*sz
				px := p*sz3 + p*sz // idx(p,x,p,q) - x*sz2 - q
				for x := p + 1; x <= j; x++ {
					s1 := src[rowP+x] // pw'(i,j,p,x)
					if s1 >= cost.Inf {
						continue
					}
					row4 := px + x*sz2
					for q := p + 1; q < x; q++ {
						v := s1 + src[row4+q]
						if c := rowP + q; v < dst[c] {
							dst[c] = v
						}
					}
				}
			}
			if track {
				for p := i; p <= j; p++ {
					rowP := baseIJ + p*sz
					for q := p + 1; q <= j; q++ {
						if dst[rowP+q] != src[rowP+q] {
							local++
						}
					}
				}
			}
		}
		return local
	})
	if track {
		s.pwChangedThisIter += changed
	}
	s.pw, s.pwNext = s.pwNext, s.pw
	s.pwEpoch ^= 1
}
