package sublineardp_test

import (
	"context"
	"fmt"

	"sublineardp"
)

// The headline use: solve a matrix-chain instance with the paper's
// parallel algorithm.
func ExampleSolve() {
	in := sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	res := sublineardp.Solve(in, sublineardp.Options{Variant: sublineardp.Banded})
	fmt.Println(res.Cost())
	fmt.Println(res.Iterations == sublineardp.WorstCaseIterations(in.N))
	// Output:
	// 15125
	// true
}

// The sequential baseline also reconstructs the optimal parenthesization.
func ExampleSolveSequential() {
	in := sublineardp.NewMatrixChain([]int{10, 100, 5, 50})
	res := sublineardp.SolveSequential(in)
	fmt.Println(res.Cost())
	fmt.Println(res.Split(0, 3)) // root split: (A1 A2) A3
	// Output:
	// 7500
	// 2
}

// Optimal binary search trees use Knuth's alpha/beta weight formulation.
func ExampleNewOBST() {
	alpha := []int64{1, 1} // gap weights (unsuccessful searches)
	beta := []int64{1}     // key weights
	in := sublineardp.NewOBST(alpha, beta)
	fmt.Println(sublineardp.SolveSequential(in).Cost())
	// Output:
	// 5
}

// The Section 3 pebbling game: the zigzag tree needs Theta(sqrt n) moves
// under the paper's square rule but stays within the Lemma 3.3 bound.
func ExampleNewPebbleGame() {
	tree := sublineardp.ZigzagTree(100)
	g := sublineardp.NewPebbleGame(tree, sublineardp.PebbleHLV)
	moves := g.Run(0)
	fmt.Println(g.RootPebbled())
	fmt.Println(moves <= sublineardp.PebbleBound(100))
	// Output:
	// true
	// true
}

// ExtractTree recovers the actual solution from the parallel solver's
// value table.
func ExampleExtractTree() {
	in := sublineardp.NewWeightedTriangulation([]int64{10, 100, 5, 50})
	res := sublineardp.Solve(in, sublineardp.Options{})
	tree, err := sublineardp.ExtractTree(in, res.Table)
	if err != nil {
		panic(err)
	}
	fmt.Println(sublineardp.TreeCost(in, tree) == res.Cost())
	// Output:
	// true
}

// Every engine is generic over an idempotent semiring: the same instance
// solves under min-plus (the paper's algebra), max-plus (worst-case
// parenthesization) or bool-plan via WithSemiring — or an instance can
// declare its algebra itself, as the worst-case and feasibility
// constructors do.
func ExampleWithSemiring() {
	ctx := context.Background()
	dims := []int{30, 35, 15, 5, 10, 20, 25}

	best := sublineardp.MustNewSolver(sublineardp.EngineHLVBanded)
	sol, _ := best.Solve(ctx, sublineardp.NewMatrixChain(dims))
	fmt.Println("best:", sol.Cost())

	worst := sublineardp.MustNewSolver(sublineardp.EngineHLVBanded,
		sublineardp.WithSemiring(sublineardp.MaxPlus))
	sol, _ = worst.Solve(ctx, sublineardp.NewMatrixChain(dims))
	fmt.Println("worst:", sol.Cost(), sol.Algebra)

	// The declared-algebra constructor gives the same answer with no
	// option at all.
	sol, _ = best.Solve(ctx, sublineardp.NewWorstCaseMatrixChain(dims))
	fmt.Println("declared:", sol.Cost())
	// Output:
	// best: 15125
	// worst: 58000 max-plus
	// declared: 58000
}

// Bool-plan feasibility: is there a parenthesization avoiding the
// forbidden subexpressions? The sequential engine produces a witness.
func ExampleNewForbiddenSplits() {
	ctx := context.Background()
	s := sublineardp.MustNewSolver(sublineardp.EngineSequential)

	ok, _ := s.Solve(ctx, sublineardp.NewForbiddenSplits(4, [][2]int{{1, 3}}))
	fmt.Println("avoiding (1,3):", ok.Cost())

	no, _ := s.Solve(ctx, sublineardp.NewForbiddenSplits(4, [][2]int{{0, 2}, {1, 3}, {2, 4}}))
	fmt.Println("avoiding all pairs:", no.Cost())
	// Output:
	// avoiding (1,3): 1
	// avoiding all pairs: 0
}
