package exper

import (
	"sublineardp/internal/core"
	"sublineardp/internal/problems"
	"sublineardp/internal/stats"
)

// E10AdaptivePT explores the paper's closing open question — "is there an
// optimal algorithm with sublinear time?" / "can the processor-time
// product reach O(n^3 log^k n)?" — empirically: the banded variant with
// the w-stable early-termination rule on *random* instances stops after
// O(log n)-ish iterations (Section 6), so its realised PT product sits far
// below the worst-case O(n^4). The fitted exponent quantifies how close
// adaptive termination gets to the optimal n^3.
func E10AdaptivePT(cfg Config) []*Table {
	sizes := []int{16, 25, 36, 49, 64, 100}
	seeds := []int64{1, 2, 3}
	if cfg.Quick {
		sizes = []int{16, 25, 36}
		seeds = []int64{1}
	}

	t := &Table{
		ID:       "E10",
		Title:    "Adaptive processor-time product: banded + w-stable stop on random matrix chains",
		PaperRef: "Section 7 open questions (sublinear optimal algorithm; PT = O(n^3 log^k n)?)",
		Columns:  []string{"n", "mean iters", "mean work", "mean PT", "PT/n^4", "PT/n^3.5", "PT/(n^3 log2^2 n)"},
	}

	var xs, pts []float64
	for _, n := range sizes {
		var iters, work, pt float64
		for _, seed := range seeds {
			in := problems.RandomMatrixChain(n, 50, seed).Materialize()
			res := core.Solve(in, core.Options{Variant: core.Banded,
				Termination: core.WStable, Workers: cfg.Workers})
			iters += float64(res.Iterations)
			work += float64(res.Acct.Work)
			pt += float64(res.Acct.PTProduct())
		}
		k := float64(len(seeds))
		iters, work, pt = iters/k, work/k, pt/k
		fn := float64(n)
		logn := log2(fn)
		xs = append(xs, fn)
		pts = append(pts, pt)
		t.AddRow(n, iters, fmtInt(int64(work)), fmtInt(int64(pt)),
			pt/pow(fn, 4), pt/pow(fn, 3.5), pt/(pow(fn, 3)*logn*logn))
	}

	e, _, r2 := stats.PowerFit(xs, pts)
	t.Note("fitted adaptive PT ~ n^%.2f (R^2=%.3f)", e, r2)
	t.Note("interpretation: early termination removes the sqrt(n)/log(n) iteration factor, so theory predicts PT ~ n^3.5*log^2(n) — indistinguishable from n^4 over this range; the PT/n^3.5 column grows slowly (polylog) while PT/n^4 stays flat")
	t.Note("the realised product sits well below dense HLV (n^5.5) and Rytter (n^6 log n) but still an n^0.5*polylog factor above the open question's n^3 polylog target — consistent with the question remaining open")
	return []*Table{t}
}
