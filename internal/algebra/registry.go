package algebra

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sublineardp/internal/cost"
)

var registry = struct {
	sync.RWMutex
	m map[string]Kernel
}{m: map[string]Kernel{
	NameMinPlus:  MinPlus{},
	NameMaxPlus:  MaxPlus{},
	NameBoolPlan: BoolPlan{},
}}

// Register adds a third-party algebra to the registry under sr.Name(),
// first validating the idempotent-semiring axioms with CheckLaws — a
// broken algebra is rejected here, before any solver can silently
// mis-solve under it. It rejects nil semirings, empty names and
// duplicates (the shipped algebras cannot be replaced).
func Register(sr Semiring) error {
	if sr == nil || sr.Name() == "" {
		return fmt.Errorf("algebra: Register needs a non-nil semiring with a non-empty name")
	}
	// A NUL in the name would break the injectivity of the canonical
	// "alg\x00<name>\x00<canon>" tagging (recurrence.Instance.Canonical):
	// ("x", "y\x00"+C) and ("x\x00y", C) would share bytes, letting two
	// (algebra, instance) pairs alias one cache entry.
	if strings.ContainsRune(sr.Name(), 0) {
		return fmt.Errorf("algebra: name %q must not contain NUL", sr.Name())
	}
	if err := CheckLaws(sr); err != nil {
		return fmt.Errorf("algebra: %q fails the semiring laws: %w", sr.Name(), err)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[sr.Name()]; dup {
		return fmt.Errorf("algebra: %q already registered", sr.Name())
	}
	registry.m[sr.Name()] = Promote(sr)
	return nil
}

// Lookup returns the algebra registered under name. The empty name
// resolves to min-plus, the paper's algebra and the default everywhere.
func Lookup(name string) (Kernel, bool) {
	if name == "" {
		return MinPlus{}, true
	}
	registry.RLock()
	defer registry.RUnlock()
	k, ok := registry.m[name]
	return k, ok
}

// Names returns the sorted names of every registered algebra.
func Names() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// Resolve picks the algebra one solve runs under: an explicit override
// first, then the instance's declared algebra name, else min-plus. An
// unregistered instance algebra is an error — it means the caller built
// an instance this process cannot interpret.
func Resolve(override Semiring, instanceAlgebra string) (Kernel, error) {
	if override != nil {
		return Promote(override), nil
	}
	k, ok := Lookup(instanceAlgebra)
	if !ok {
		return nil, fmt.Errorf("algebra: instance declares unregistered algebra %q (registered: %v)",
			instanceAlgebra, Names())
	}
	return k, nil
}

// ResolveName returns the name of the algebra Resolve would pick,
// without requiring it to be registered — the spelling cache keys and
// response metadata use.
func ResolveName(override Semiring, instanceAlgebra string) string {
	if override != nil {
		return override.Name()
	}
	if instanceAlgebra == "" {
		return NameMinPlus
	}
	return instanceAlgebra
}

// Promote upgrades a scalar Semiring to the engine-facing Kernel: an
// algebra that already implements Kernel (the shipped ones, or a
// third-party algebra with specialised primitives) passes through;
// anything else is wrapped with generic derivations of the comparison
// helpers and bulk loops. The derived kernel is correct for any lawful
// semiring, just not specialised.
func Promote(sr Semiring) Kernel {
	if k, ok := sr.(Kernel); ok {
		return k
	}
	return derived{sr}
}

// derived implements Kernel over a bare Semiring via its scalar
// operations. Better is the definitional Combine(a,b) != b; Norm assumes
// the semiring's values are already canonical.
type derived struct{ Semiring }

func (d derived) Better(a, b cost.Cost) bool { return d.Combine(a, b) != b }
func (d derived) IsZero(v cost.Cost) bool    { return v == d.Zero() }
func (d derived) Norm(v cost.Cost) cost.Cost { return v }
func (d derived) Extend3(a, b, c cost.Cost) cost.Cost {
	return d.Extend(a, d.Extend(b, c))
}

func (d derived) Relax2(best, a, b cost.Cost) cost.Cost {
	return d.Combine(best, d.Extend(a, b))
}

func (d derived) Relax3(best, f, l, r cost.Cost) cost.Cost {
	return d.Combine(best, d.Extend(f, d.Extend(l, r)))
}

func (d derived) RelaxAt(buf []cost.Cost, c int, f, w cost.Cost) bool {
	if v := d.Extend(f, w); d.Better(v, buf[c]) {
		buf[c] = v
		return true
	}
	return false
}

func (d derived) RelaxPanel(dst, src []cost.Cost, base []int, p Panel) {
	relaxPanelGeneric(d, dst, src, base, p)
}

func (d derived) RelaxRows(dst, src []cost.Cost, m, cnt0, cntInc, s1, s1Step, dStart, dStep, sStart, sStep, stride int) {
	relaxPanelGeneric(d, dst, src, nil, Panel{
		M: m, Cnt0: cnt0, CntInc: cntInc,
		S1: s1, S1Step: s1Step,
		D: dStart, DStartStep: dStep, DStep: stride,
		S: sStart, SStartStep: sStep, SStep: stride,
	})
}

func (d derived) ReduceRelax(best cost.Cost, a, b []cost.Cost, sh ReduceShape) cost.Cost {
	return reduceRelaxGeneric(d, best, a, b, sh)
}

func (d derived) RelaxSplitPanel(tab []cost.Cost, stride, i, ka, kb, j0, m int, f SplitFunc) {
	relaxSplitPanelGeneric(d, tab, stride, i, ka, kb, j0, m, f)
}

func (d derived) RelaxSplitRow(tab []cost.Cost, stride, i, k, j0, m int, fRow []cost.Cost) {
	relaxSplitRowGeneric(d, tab, stride, i, k, j0, m, fRow)
}

func (d derived) RelaxSplitPanelRec(tab []cost.Cost, spl []int32, stride, i, ka, kb, j0, m int, f SplitFunc) {
	relaxSplitPanelRecGeneric(d, tab, spl, stride, i, ka, kb, j0, m, f)
}

func (d derived) RelaxSplitRowRec(tab []cost.Cost, spl []int32, stride, i, k, j0, m int, fRow []cost.Cost) {
	relaxSplitRowRecGeneric(d, tab, spl, stride, i, k, j0, m, fRow)
}

func (d derived) RelaxSplitCellRec(tab []cost.Cost, spl []int32, stride, i, ka, kb, j int, f SplitFunc) {
	relaxSplitCellRecGeneric(d, tab, spl, stride, i, ka, kb, j, f)
}

// relaxPanelGeneric is the reference panel walk every specialised
// RelaxPanel must agree with (the algebra package tests pin the shipped
// ones against it).
func relaxPanelGeneric(k Kernel, dst, src []cost.Cost, base []int, p Panel) {
	s1i, s1Step := p.S1, p.S1Step
	dStart, dStartStep := p.D, p.DStartStep
	dStep0 := p.DStep
	sStart := p.S
	bi := p.BaseIdx
	cnt := p.Cnt0
	for u := 0; u < p.M; u++ {
		if cnt > 0 {
			if s1 := src[s1i]; !k.IsZero(s1) {
				d, dStep := dStart, dStep0
				s, sStep := sStart, p.SStep
				if base != nil {
					s += base[bi]
				}
				for t := 0; t < cnt; t++ {
					if v := k.Extend(s1, src[s]); k.Better(v, dst[d]) {
						dst[d] = v
					}
					d += dStep
					dStep += p.DInc
					s += sStep
					sStep += p.SInc
				}
			}
		}
		cnt += p.CntInc
		s1i += s1Step
		s1Step += p.S1Inc
		dStart += dStartStep
		dStartStep += p.DStartInc
		dStep0 += p.DStepRow
		sStart += p.SStartStep
		bi += p.BaseStep
	}
}

// relaxSplitPanelGeneric is the reference walk every specialised
// RelaxSplitPanel must agree with: candidates fold in the sequential
// solver's order Extend3(f, left, right), so a non-commutative Extend
// still observes exactly what seq.SolveSemiringCtx computes.
func relaxSplitPanelGeneric(k Kernel, tab []cost.Cost, stride, i, ka, kb, j0, m int, f SplitFunc) {
	row := i * stride
	for s := ka; s < kb; s++ {
		left := tab[row+s]
		if k.IsZero(left) {
			continue
		}
		for t := 0; t < m; t++ {
			j := j0 + t
			if v := k.Extend3(f(i, s, j), left, tab[s*stride+j]); k.Better(v, tab[row+j]) {
				tab[row+j] = v
			}
		}
	}
}

// relaxSplitRowGeneric is the reference walk of the pre-evaluated form.
func relaxSplitRowGeneric(k Kernel, tab []cost.Cost, stride, i, s, j0, m int, fRow []cost.Cost) {
	left := tab[i*stride+s]
	if k.IsZero(left) {
		return
	}
	row := i * stride
	for t := 0; t < m; t++ {
		j := j0 + t
		if v := k.Extend3(fRow[t], left, tab[s*stride+j]); k.Better(v, tab[row+j]) {
			tab[row+j] = v
		}
	}
}

// relaxSplitPanelRecGeneric is the reference recording walk every
// specialised RelaxSplitPanelRec must agree with (the algebra package
// tests pin the shipped ones against it). The tie clause — a candidate
// that neither improves nor is improved by the cell, and is not Zero,
// lowers the recorded split to min(current, k) — is what makes the
// result independent of candidate evaluation order; see the Kernel
// interface comment.
func relaxSplitPanelRecGeneric(k Kernel, tab []cost.Cost, spl []int32, stride, i, ka, kb, j0, m int, f SplitFunc) {
	row := i * stride
	for s := ka; s < kb; s++ {
		left := tab[row+s]
		if k.IsZero(left) {
			continue
		}
		for t := 0; t < m; t++ {
			j := j0 + t
			d := row + j
			v := k.Extend3(f(i, s, j), left, tab[s*stride+j])
			if k.Better(v, tab[d]) {
				tab[d] = v
				spl[d] = int32(s)
			} else if !k.Better(tab[d], v) && !k.IsZero(v) {
				if cur := spl[d]; cur < 0 || int32(s) < cur {
					spl[d] = int32(s)
				}
			}
		}
	}
}

// relaxSplitRowRecGeneric is the reference recording walk of the
// pre-evaluated form.
func relaxSplitRowRecGeneric(k Kernel, tab []cost.Cost, spl []int32, stride, i, s, j0, m int, fRow []cost.Cost) {
	left := tab[i*stride+s]
	if k.IsZero(left) {
		return
	}
	row := i * stride
	for t := 0; t < m; t++ {
		j := j0 + t
		d := row + j
		v := k.Extend3(fRow[t], left, tab[s*stride+j])
		if k.Better(v, tab[d]) {
			tab[d] = v
			spl[d] = int32(s)
		} else if !k.Better(tab[d], v) && !k.IsZero(v) {
			if cur := spl[d]; cur < 0 || int32(s) < cur {
				spl[d] = int32(s)
			}
		}
	}
}

// relaxSplitCellRecGeneric is the reference walk of the clipped cell
// closure: definitionally RelaxSplitPanelRec with a length-1 destination
// run, so every specialised RelaxSplitCellRec is pinned against the
// panel form rather than against a third body.
func relaxSplitCellRecGeneric(k Kernel, tab []cost.Cost, spl []int32, stride, i, ka, kb, j int, f SplitFunc) {
	relaxSplitPanelRecGeneric(k, tab, spl, stride, i, ka, kb, j, 1, f)
}

// reduceRelaxGeneric is the reference reduction walk.
func reduceRelaxGeneric(k Kernel, best cost.Cost, a, b []cost.Cost, sh ReduceShape) cost.Cost {
	aStart, aStartStep := sh.A, sh.AStartStep
	bStart := sh.B
	cnt := sh.Cnt0
	for u := 0; u < sh.M; u++ {
		ai, bi := aStart, bStart
		for t := 0; t < cnt; t++ {
			best = k.Relax2(best, a[ai], b[bi])
			ai += sh.AStep
			bi += sh.BStep
		}
		cnt += sh.CntInc
		aStart += aStartStep
		aStartStep += sh.AStartInc
		bStart += sh.BStartStep
	}
	return best
}
