package sublineardp_test

import (
	"testing"

	"sublineardp"
)

func TestQuickstartFlow(t *testing.T) {
	in := sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	res := sublineardp.Solve(in, sublineardp.Options{})
	if res.Cost() != 15125 {
		t.Fatalf("parallel cost = %d, want 15125", res.Cost())
	}
	seqRes := sublineardp.SolveSequential(in)
	if seqRes.Cost() != 15125 {
		t.Fatalf("sequential cost = %d", seqRes.Cost())
	}
	if !res.Table.Equal(seqRes.Table) {
		t.Fatal("parallel and sequential tables differ")
	}
	tr := seqRes.Tree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if seqRes.Split(0, 6) != 3 {
		t.Fatalf("root split = %d, want 3", seqRes.Split(0, 6))
	}
}

func TestAllSolversAgreeViaFacade(t *testing.T) {
	in := sublineardp.NewOBST([]int64{1, 2, 1, 3, 1}, []int64{10, 3, 8, 6})
	want := sublineardp.SolveSequential(in).Table
	if got := sublineardp.Solve(in, sublineardp.Options{Variant: sublineardp.Banded}); !got.Table.Equal(want) {
		t.Fatal("banded mismatch")
	}
	if got := sublineardp.SolveWavefront(in, 2); !got.Equal(want) {
		t.Fatal("wavefront mismatch")
	}
	if got := sublineardp.SolveRytter(in, 2); !got.Equal(want) {
		t.Fatal("rytter mismatch")
	}
}

func TestTriangulationFacade(t *testing.T) {
	square := []sublineardp.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 100}, {X: 0, Y: 100}}
	in := sublineardp.NewTriangulation(square)
	res := sublineardp.Solve(in, sublineardp.Options{Variant: sublineardp.Banded})
	if res.Cost() <= 0 || res.Cost() >= sublineardp.Inf {
		t.Fatalf("degenerate triangulation cost %d", res.Cost())
	}
	// Weight-product triangulation matches matrix chain.
	w := sublineardp.NewWeightedTriangulation([]int64{30, 35, 15, 5, 10, 20, 25})
	if got := sublineardp.SolveSequential(w).Cost(); got != 15125 {
		t.Fatalf("weighted triangulation = %d", got)
	}
}

func TestShapedAndPebbleFacade(t *testing.T) {
	n := 36
	tr := sublineardp.ZigzagTree(n)
	in := sublineardp.NewShaped(tr)
	want := sublineardp.SolveSequential(in).Table
	res := sublineardp.Solve(in, sublineardp.Options{
		Variant: sublineardp.Banded,
		Target:  want,
	})
	if res.ConvergedAt < 0 || res.ConvergedAt > sublineardp.WorstCaseIterations(n) {
		t.Fatalf("converged at %d, budget %d", res.ConvergedAt, sublineardp.WorstCaseIterations(n))
	}

	g := sublineardp.NewPebbleGame(tr, sublineardp.PebbleHLV)
	moves := g.Run(0)
	if !g.RootPebbled() || moves > sublineardp.PebbleBound(n) {
		t.Fatalf("game took %d moves, bound %d", moves, sublineardp.PebbleBound(n))
	}

	fast := sublineardp.NewPebbleGame(sublineardp.CompleteTree(n), sublineardp.PebbleRytter)
	if fm := fast.Run(0); fm >= moves {
		t.Fatalf("doubling rule on complete tree (%d moves) not faster than zigzag worst case (%d)", fm, moves)
	}
}

func TestExtractTreeFromParallelResult(t *testing.T) {
	in := sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	res := sublineardp.Solve(in, sublineardp.Options{Variant: sublineardp.Banded})
	tr, err := sublineardp.ExtractTree(in, res.Table)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(sublineardp.SolveSequential(in).Tree()) {
		t.Fatal("parallel-extracted tree differs from sequential reconstruction")
	}
	if got := sublineardp.TreeCost(in, tr); got != res.Cost() {
		t.Fatalf("tree cost %d != optimum %d", got, res.Cost())
	}
}

func TestExtractTreeRejectsUnconvergedTable(t *testing.T) {
	in := sublineardp.NewShaped(sublineardp.ZigzagTree(25))
	// One iteration is nowhere near convergence for a zigzag instance.
	res := sublineardp.Solve(in, sublineardp.Options{MaxIterations: 1})
	if _, err := sublineardp.ExtractTree(in, res.Table); err == nil {
		t.Fatal("unconverged table accepted")
	}
}

func TestTerminationOptionsFacade(t *testing.T) {
	in := sublineardp.NewShaped(sublineardp.CompleteTree(49))
	res := sublineardp.Solve(in, sublineardp.Options{
		Variant:     sublineardp.Banded,
		Termination: sublineardp.WStable,
	})
	if !res.StoppedEarly {
		t.Fatal("balanced instance should stop early under WStable")
	}
	want := sublineardp.SolveSequential(in).Table
	if !res.Table.Equal(want) {
		t.Fatal("early stop produced wrong table")
	}
}
