package cache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressHitMissEvictChurn hammers one small sharded LRU plus a
// single-flight group from many goroutines with a keyspace several times
// the capacity, so every operation class — hit, miss, insert, evict,
// join — runs concurrently under the race detector. The invariants are
// arithmetic: residency never exceeds capacity, counters balance, and
// values never migrate between keys.
func TestStressHitMissEvictChurn(t *testing.T) {
	const (
		capacity   = 64
		keyspace   = 256
		goroutines = 16
		opsPer     = 2000
	)
	c := New[int64](capacity, 8)
	var g Group[int64]

	keys := make([]Key, keyspace)
	for i := range keys {
		keys[i] = NewHasher().Int64("i", int64(i)).Sum()
	}
	// value(i) = i*1000003: recoverable from the key index, so a hit
	// returning another key's value is detected immediately.
	val := func(i int) int64 { return int64(i) * 1000003 }

	var wg sync.WaitGroup
	var computes atomic.Int64
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 1
			for op := 0; op < opsPer; op++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				i := int(rng % keyspace)
				if v, ok := c.Get(keys[i]); ok {
					if v != val(i) {
						t.Errorf("key %d returned value %d (want %d)", i, v, val(i))
						return
					}
					continue
				}
				v, _, err := g.Do(context.Background(), keys[i], func(ctx context.Context) (int64, error) {
					computes.Add(1)
					return val(i), nil
				})
				if err != nil || v != val(i) {
					t.Errorf("compute key %d: %d, %v", i, v, err)
					return
				}
				c.Add(keys[i], v)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Len(); got > capacity {
		t.Fatalf("residency %d exceeds capacity %d", got, capacity)
	}
	st := c.Stats()
	if st.Insertions+st.Updates == 0 || st.Hits == 0 || st.Evictions == 0 {
		t.Fatalf("stress run did not exercise all paths: %+v", st)
	}
	if resident := int64(c.Len()); st.Insertions-st.Evictions != resident {
		t.Fatalf("insertions %d - evictions %d != resident %d", st.Insertions, st.Evictions, resident)
	}
	fs := g.Stats()
	if fs.Executions != computes.Load() {
		t.Fatalf("group executions %d != observed computes %d", fs.Executions, computes.Load())
	}
	// Each Do call either executed or joined.
	if fs.Executions+fs.Dedups == 0 {
		t.Fatal("no single-flight traffic recorded")
	}
}

// TestStressNoDuplicateInFlightSolves drives waves of identical keys and
// asserts the single-flight guarantee exactly: while a flight is open,
// every concurrent caller of its key folds into it, so a wave of k
// callers costs exactly one execution.
func TestStressNoDuplicateInFlightSolves(t *testing.T) {
	var g Group[int]
	for wave := 0; wave < 50; wave++ {
		const callers = 8
		var calls atomic.Int64
		release := make(chan struct{})
		ready := make(chan struct{}, callers)
		key := NewHasher().Int64("wave", int64(wave)).Sum()

		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ready <- struct{}{}
				v, _, err := g.Do(context.Background(), key, func(ctx context.Context) (int, error) {
					calls.Add(1)
					<-release
					return wave, nil
				})
				if err != nil || v != wave {
					t.Errorf("wave %d: got %v %v", wave, v, err)
				}
			}()
		}
		for i := 0; i < callers; i++ {
			<-ready
		}
		// All callers launched; wait until each is accounted as leader or
		// joiner before releasing the flight.
		deadline := time.Now().Add(5 * time.Second)
		for {
			s := g.Stats()
			if s.Executions+s.Dedups >= int64((wave+1)*callers) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("wave %d: callers never folded: %+v", wave, s)
			}
			time.Sleep(100 * time.Microsecond)
		}
		close(release)
		wg.Wait()
		if got := calls.Load(); got != 1 {
			t.Fatalf("wave %d: %d executions for %d identical concurrent callers", wave, got, callers)
		}
	}
}

// TestStressAbandonedFlightsCancel churns flights whose callers all time
// out, checking every abandoned flight context is cancelled (no leaked
// forever-running computations) while completed flights still deliver.
func TestStressAbandonedFlightsCancel(t *testing.T) {
	var g Group[int]
	var cancelled atomic.Int64
	const flights = 40
	var wg sync.WaitGroup
	for i := 0; i < flights; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5+1)*time.Millisecond)
			defer cancel()
			key := NewHasher().Int64("abandon", int64(i)).Sum()
			_, _, err := g.Do(ctx, key, func(fctx context.Context) (int, error) {
				<-fctx.Done() // simulate a long solve that honours ctx
				cancelled.Add(1)
				return 0, fctx.Err()
			})
			if err == nil {
				t.Errorf("flight %d: expected timeout error", i)
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for cancelled.Load() < flights {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d abandoned flights saw cancellation", cancelled.Load(), flights)
		}
		time.Sleep(time.Millisecond)
	}
}
