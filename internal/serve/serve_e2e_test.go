package serve

// End-to-end suite: a real dpserved serving stack — Server mounted on an
// http.Server bound to a loopback listener, talked to over TCP by real
// HTTP clients — under concurrent mixed traffic. Runs in the CI race
// job. The three tests carry the acceptance criteria of the serving
// layer:
//
//   - mixed matrixchain/OBST/triangulation traffic answers bitwise
//     identically to direct Solver.Solve calls, and the coalescing /
//     caching counters balance exactly against the 200s written;
//   - >= 2 concurrent identical requests produce exactly one underlying
//     solve (single-flight), and a subsequent identical request is a
//     cache hit served without touching the pool;
//   - a client disconnect mid-solve propagates through single-flight
//     refcounting and the batcher's refcounted batch context into the
//     engine's context — the hook tile-level kernel abort hangs off.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sublineardp"
	"sublineardp/internal/problems"
	"sublineardp/internal/wire"
)

// startLoopback serves s on a real loopback TCP listener (not httptest's
// in-process transport shortcuts) and returns the base URL.
func startLoopback(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		s.Close()
	})
	return "http://" + ln.Addr().String()
}

// blockSolveEngine wraps the sequential engine but parks inside Solve
// until released or cancelled — the instrument that keeps a flight open
// long enough to make coalescing assertions deterministic.
type blockSolveEngine struct {
	name      string
	entered   chan struct{} // one value per Solve that starts
	release   chan struct{}
	cancelled chan struct{} // one value per Solve that observed ctx.Done
	calls     atomic.Int64
}

func (e *blockSolveEngine) Name() string { return e.name }

func (e *blockSolveEngine) Solve(ctx context.Context, in *sublineardp.Instance, cfg *sublineardp.Config) (*sublineardp.Solution, error) {
	e.calls.Add(1)
	e.entered <- struct{}{}
	select {
	case <-e.release:
	case <-ctx.Done():
		e.cancelled <- struct{}{}
		return nil, ctx.Err()
	}
	inner, _ := sublineardp.LookupEngine(sublineardp.EngineSequential)
	return inner.Solve(ctx, in, cfg)
}

func registerBlockEngine(t *testing.T, name string) *blockSolveEngine {
	t.Helper()
	e := &blockSolveEngine{
		name:      name,
		entered:   make(chan struct{}, 64),
		release:   make(chan struct{}),
		cancelled: make(chan struct{}, 64),
	}
	if err := sublineardp.RegisterEngine(e); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return e
}

// mixedRequests builds the traffic mix: matrixchain, OBST and
// triangulation instances across engines, sized on both sides of the
// auto cutoff, with deliberate duplicates so the cache and coalescer see
// repeat keys.
func mixedRequests() []*wire.Request {
	rng := rand.New(rand.NewSource(7))
	var reqs []*wire.Request
	for i := 0; i < 6; i++ {
		dims := make([]int, 8+rng.Intn(10))
		for j := range dims {
			dims[j] = 1 + rng.Intn(40)
		}
		reqs = append(reqs, &wire.Request{
			ID: fmt.Sprintf("mc-%d", i), Kind: wire.KindMatrixChain, Dims: dims,
		})
	}
	for i := 0; i < 5; i++ {
		m := 6 + rng.Intn(8)
		alpha := make([]int64, m+1)
		beta := make([]int64, m)
		for j := range alpha {
			alpha[j] = rng.Int63n(50)
		}
		for j := range beta {
			beta[j] = rng.Int63n(50)
		}
		reqs = append(reqs, &wire.Request{
			ID: fmt.Sprintf("ob-%d", i), Kind: wire.KindOBST, Alpha: alpha, Beta: beta,
		})
	}
	for i := 0; i < 4; i++ {
		pts := problems.RandomConvexPolygon(8+rng.Intn(8), 1000, int64(i+1))
		wpts := make([]wire.Point, len(pts))
		for j, p := range pts {
			wpts[j] = wire.Point{X: p.X, Y: p.Y}
		}
		reqs = append(reqs, &wire.Request{
			ID: fmt.Sprintf("tr-%d", i), Kind: wire.KindTriangulation, Points: wpts,
		})
	}
	// A large instance routed to the banded engine explicitly, and the
	// CLRS chain under three engines (distinct cache keys, same table).
	big := make([]int, 81)
	for j := range big {
		big[j] = (j*31)%59 + 2
	}
	reqs = append(reqs,
		&wire.Request{ID: "big", Kind: wire.KindMatrixChain, Dims: big,
			Options: wire.Options{Engine: "hlv-banded", Termination: "w-stable"}},
		&wire.Request{ID: "clrs-seq", Kind: wire.KindMatrixChain,
			Dims: []int{30, 35, 15, 5, 10, 20, 25}, Options: wire.Options{Engine: "sequential"}},
		&wire.Request{ID: "clrs-wave", Kind: wire.KindMatrixChain,
			Dims: []int{30, 35, 15, 5, 10, 20, 25}, Options: wire.Options{Engine: "wavefront"}},
		&wire.Request{ID: "clrs-ryt", Kind: wire.KindMatrixChain,
			Dims: []int{30, 35, 15, 5, 10, 20, 25}, Options: wire.Options{Engine: "rytter"}},
		// The same large instance on both tiled engines: the fenced one
		// and the barrier-free pipelined one, with a tile size that
		// forces several blocks — bitwise-identical digests by contract.
		&wire.Request{ID: "big-blocked", Kind: wire.KindMatrixChain, Dims: big,
			Options: wire.Options{Engine: "blocked", TileSize: 16}},
		&wire.Request{ID: "big-pipe", Kind: wire.KindMatrixChain, Dims: big,
			Options: wire.Options{Engine: "blocked-pipe", TileSize: 16}},
	)
	return reqs
}

// directDigest solves the request in-process through the identical
// Solver configuration and returns the expected table digest and cost.
func directDigest(t *testing.T, req *wire.Request) (string, int64) {
	t.Helper()
	engine := req.Engine()
	if engine == "" {
		engine = sublineardp.EngineAuto
	}
	opts, err := req.SolverOptions()
	if err != nil {
		t.Fatal(err)
	}
	in, err := req.Instance()
	if err != nil {
		t.Fatal(err)
	}
	solver, err := sublineardp.NewSolver(engine, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	return wire.TableDigest(sol.Table), int64(sol.Cost())
}

func TestE2EMixedTrafficBitwiseMatchesDirectSolve(t *testing.T) {
	srv, err := New(Config{BatchWindow: time.Millisecond, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	base := startLoopback(t, srv)

	reqs := mixedRequests()
	type expectation struct {
		digest string
		cost   int64
	}
	want := make(map[string]expectation, len(reqs))
	for _, r := range reqs {
		d, c := directDigest(t, r)
		want[r.ID] = expectation{digest: d, cost: c}
	}

	// Each worker fires the whole mix in its own shuffled order, so
	// every request ID is requested `workers` times concurrently —
	// plenty of duplicate keys in flight.
	const workers = 6
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 60 * time.Second}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			order := rand.New(rand.NewSource(int64(w))).Perm(len(reqs))
			for _, idx := range order {
				req := reqs[idx]
				body, _ := json.Marshal(req)
				resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("worker %d req %s: %v", w, req.ID, err)
					return
				}
				var wr wire.Response
				derr := json.NewDecoder(resp.Body).Decode(&wr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil {
					t.Errorf("worker %d req %s: status %d decode %v", w, req.ID, resp.StatusCode, derr)
					return
				}
				exp := want[req.ID]
				if wr.Cost != exp.cost {
					t.Errorf("req %s: served cost %d, direct solve %d", req.ID, wr.Cost, exp.cost)
				}
				if wr.TableDigest != exp.digest {
					t.Errorf("req %s: served table digest differs from direct Solver.Solve", req.ID)
				}
				if wr.Cached && wr.Coalesced {
					t.Errorf("req %s: response flagged both cached and coalesced", req.ID)
				}
			}
		}(w)
	}
	wg.Wait()

	m := srv.Metrics()
	total := int64(workers * len(reqs))
	if m.Requests != total || m.OK != total {
		t.Fatalf("requests %d ok %d, want %d each (errors on the side: %+v)", m.Requests, m.OK, total, m)
	}
	// Every 200 is exactly one of hit / coalesced / solved.
	if m.CacheHits+m.Coalesced+m.Solved != m.OK {
		t.Fatalf("counter identity broken: hits %d + coalesced %d + solved %d != ok %d",
			m.CacheHits, m.Coalesced, m.Solved, m.OK)
	}
	// Each distinct key solves at most once... per residency; eviction
	// cannot occur at this cache size, so solved == distinct keys.
	if distinct := int64(len(reqs)); m.Solved != distinct {
		t.Fatalf("solved %d, want exactly one solve per distinct key (%d)", m.Solved, distinct)
	}
	if m.BatchInstances != m.Solved {
		t.Fatalf("batch instances %d != solved %d", m.BatchInstances, m.Solved)
	}
	if m.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", m.QueueDepth)
	}
}

// TestE2ESingleFlightAndCacheHit is the acceptance criterion verbatim:
// >= 2 concurrent identical requests, exactly one underlying solve, then
// a cache hit served without touching the pool, all bitwise equal to a
// direct Solver.Solve.
func TestE2ESingleFlightAndCacheHit(t *testing.T) {
	eng := registerBlockEngine(t, "e2e-block")
	srv, err := New(Config{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := startLoopback(t, srv)

	req := &wire.Request{Kind: wire.KindMatrixChain,
		Dims:    []int{30, 35, 15, 5, 10, 20, 25},
		Options: wire.Options{Engine: "e2e-block"}}
	body, _ := json.Marshal(req)

	const concurrent = 4
	responses := make(chan *wire.Response, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			var wr wire.Response
			if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			responses <- &wr
		}()
	}

	<-eng.entered // the one leader's solve is in the engine
	// Hold the flight open until every other request has joined it.
	deadline := time.Now().Add(10 * time.Second)
	for srv.group.Stats().Dedups < concurrent-1 {
		if time.Now().After(deadline) {
			t.Fatalf("joiners never folded: group stats %+v", srv.group.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(eng.release)
	wg.Wait()
	close(responses)

	if got := eng.calls.Load(); got != 1 {
		t.Fatalf("%d underlying solves for %d concurrent identical requests, want exactly 1", got, concurrent)
	}
	var coalesced, solved int
	var digest string
	for wr := range responses {
		if wr.Coalesced {
			coalesced++
		} else {
			solved++
		}
		if digest == "" {
			digest = wr.TableDigest
		} else if wr.TableDigest != digest {
			t.Fatal("coalesced responses disagree on the table")
		}
	}
	if solved != 1 || coalesced != concurrent-1 {
		t.Fatalf("%d solved / %d coalesced, want 1 / %d", solved, coalesced, concurrent-1)
	}
	m := srv.Metrics()
	if m.Solved != 1 || m.Coalesced != concurrent-1 || m.BatchInstances != 1 {
		t.Fatalf("metrics %+v, want 1 solved / %d coalesced / 1 batch instance", m, concurrent-1)
	}

	// One more identical request: a resident cache hit — no new engine
	// call, no new batch instance, i.e. the pool is never touched.
	resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var wr wire.Response
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !wr.Cached {
		t.Fatal("follow-up identical request was not a cache hit")
	}
	if wr.TableDigest != digest {
		t.Fatal("cache hit serves a different table")
	}
	if eng.calls.Load() != 1 {
		t.Fatal("cache hit ran the engine")
	}
	m = srv.Metrics()
	if m.CacheHits != 1 || m.BatchInstances != 1 {
		t.Fatalf("metrics after hit %+v, want 1 hit and still 1 batch instance", m)
	}

	// The served table is the direct Solver.Solve result, bitwise.
	direct, err := sublineardp.MustNewSolver(sublineardp.EngineSequential).
		Solve(context.Background(), problems.CLRSMatrixChain())
	if err != nil {
		t.Fatal(err)
	}
	if digest != wire.TableDigest(direct.Table) {
		t.Fatal("served digest differs from direct Solver.Solve")
	}
}

// TestE2EClientDisconnectCancelsSolve proves the cancellation chain:
// client TCP disconnect → request context → single-flight refcount
// (last waiter gone) → batcher's refcounted batch context → SolveBatch
// → the engine's ctx. The engine here parks on ctx.Done exactly where a
// real kernel polls it per tile, so observing the signal is observing
// the tile-abort hook.
func TestE2EClientDisconnectCancelsSolve(t *testing.T) {
	eng := registerBlockEngine(t, "e2e-block-cancel")
	srv, err := New(Config{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := startLoopback(t, srv)

	req := &wire.Request{Kind: wire.KindMatrixChain, Dims: []int{4, 5, 6, 7},
		Options: wire.Options{Engine: "e2e-block-cancel"}}
	body, _ := json.Marshal(req)

	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(hreq)
		errc <- err
	}()

	<-eng.entered // solve is mid-flight inside the engine
	cancel()      // client disconnects

	select {
	case <-eng.cancelled:
		// Cancellation reached the engine's context through the whole stack.
	case <-time.After(10 * time.Second):
		t.Fatal("client disconnect never propagated to the engine context")
	}
	if err := <-errc; err == nil {
		t.Fatal("client call unexpectedly succeeded")
	}

	// The server heals: the same key solves fine for a patient client.
	go func() { <-eng.entered }()
	close(eng.release)
	resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect solve: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().ClientGone < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("client_gone counter never incremented: %+v", srv.Metrics())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE2EOverloadCounterIdentity drives the server into overload and
// asserts the full counter balance: every request resolves as exactly
// one of admitted (ok/clientGone/timeout/solveError), shed (503 from a
// full admission queue) or rejected (400), so
// admitted + shed + rejected == requests — the identity /metrics
// monitoring depends on, now including the overload paths the happy-path
// suite above never exercises.
func TestE2EOverloadCounterIdentity(t *testing.T) {
	eng := registerBlockEngine(t, "e2e-block-overload")
	srv, err := New(Config{QueueDepth: 1, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := startLoopback(t, srv)

	// The leader occupies the only admission slot, parked inside the
	// engine, so the server is saturated for the rest of the test.
	leadBody, _ := json.Marshal(&wire.Request{Kind: wire.KindMatrixChain,
		Dims: []int{4, 5, 6, 7}, Options: wire.Options{Engine: "e2e-block-overload"}})
	leaderDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(leadBody))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("leader status %d", resp.StatusCode)
			}
		}
		leaderDone <- err
	}()
	<-eng.entered

	// Overload traffic: distinct well-formed instances must shed with
	// 503 while the queue is full — counted, not dropped.
	const overload = 20
	for i := 0; i < overload; i++ {
		body, _ := json.Marshal(&wire.Request{Kind: wire.KindMatrixChain,
			Dims: []int{2 + i, 3 + i, 4 + i}})
		resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("overload request %d: status %d, want 503", i, resp.StatusCode)
		}
	}

	// Invalid traffic: rejected with 400 before admission — also counted.
	badBodies := []string{
		"{nope",
		`{"kind":"matrixchain","dims":[2,3],"options":{"engine":"no-such-engine"}}`,
		`{"kind":"matrixchain"}`,
	}
	for i, body := range badBodies {
		resp, err := http.Post(base+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %d: status %d, want 400", i, resp.StatusCode)
		}
	}

	close(eng.release)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if m.RejectedFull != overload {
		t.Errorf("shed %d, want %d", m.RejectedFull, overload)
	}
	if m.BadRequests != int64(len(badBodies)) {
		t.Errorf("rejected %d, want %d", m.BadRequests, len(badBodies))
	}
	admitted := m.OK + m.ClientGone + m.Timeouts + m.SolveErrors
	if admitted+m.RejectedFull+m.BadRequests != m.Requests {
		t.Errorf("overload identity broken: admitted %d + shed %d + rejected %d != requests %d (%+v)",
			admitted, m.RejectedFull, m.BadRequests, m.Requests, m)
	}
	if m.CacheHits+m.Coalesced+m.Solved != m.OK {
		t.Errorf("200 identity broken under overload: hits %d + coalesced %d + solved %d != ok %d",
			m.CacheHits, m.Coalesced, m.Solved, m.OK)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain", m.QueueDepth)
	}
}

// TestE2EAlgebraCacheSeparation is the algebra acceptance criterion
// verbatim: a max-plus and a bool-plan request round-trip through the
// serving stack and cache separately from their min-plus twins — the
// same parameters under different algebras yield distinct TableDigests,
// each cached under its own key, bitwise equal to direct Solver.Solve.
func TestE2EAlgebraCacheSeparation(t *testing.T) {
	srv, err := New(Config{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := startLoopback(t, srv)
	client := &http.Client{Timeout: 60 * time.Second}

	dims := []int{30, 35, 15, 5, 10, 20, 25}
	reqs := []*wire.Request{
		{ID: "mc-min", Kind: wire.KindMatrixChain, Dims: dims},
		{ID: "mc-max", Kind: wire.KindMatrixChain, Dims: dims,
			Options: wire.Options{Semiring: "max-plus"}},
		{ID: "mc-bool", Kind: wire.KindMatrixChain, Dims: dims,
			Options: wire.Options{Semiring: "bool-plan"}},
		{ID: "worst", Kind: wire.KindWorstChain, Dims: dims},
		{ID: "split-ok", Kind: wire.KindBoolSplit, Count: 6,
			Forbidden: []wire.Span{{1, 3}}},
		{ID: "split-no", Kind: wire.KindBoolSplit, Count: 4,
			Forbidden: []wire.Span{{0, 2}, {1, 3}, {2, 4}}},
	}

	post := func(r *wire.Request) *wire.Response {
		t.Helper()
		body, _ := json.Marshal(r)
		resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		defer resp.Body.Close()
		var wr wire.Response
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d decode %v", r.ID, resp.StatusCode, err)
		}
		return &wr
	}

	first := make(map[string]*wire.Response, len(reqs))
	for _, r := range reqs {
		wr := post(r)
		if wr.Cached || wr.Coalesced {
			t.Fatalf("%s: first request served from cache", r.ID)
		}
		// Bitwise agreement with a direct in-process solve of the same
		// wire request.
		wantDigest, wantCost := directDigest(t, r)
		if wr.TableDigest != wantDigest || wr.Cost != wantCost {
			t.Fatalf("%s: served (%d, %s) != direct solve (%d, %s)",
				r.ID, wr.Cost, wr.TableDigest, wantCost, wantDigest)
		}
		first[r.ID] = wr
	}

	// Algebra metadata on the responses.
	for id, alg := range map[string]string{
		"mc-min": "", "mc-max": "max-plus", "mc-bool": "bool-plan",
		"worst": "max-plus", "split-ok": "bool-plan", "split-no": "bool-plan",
	} {
		if first[id].Algebra != alg {
			t.Errorf("%s: algebra %q, want %q", id, first[id].Algebra, alg)
		}
	}

	// Identical parameters under different algebras are different
	// solutions: pairwise-distinct digests across the matrixchain twins.
	if first["mc-min"].TableDigest == first["mc-max"].TableDigest ||
		first["mc-min"].TableDigest == first["mc-bool"].TableDigest ||
		first["mc-max"].TableDigest == first["mc-bool"].TableDigest {
		t.Fatal("algebra twins share a table digest")
	}
	// The worstchain kind and the max-plus override compute the same
	// values (equal digests) from distinct cache entries.
	if first["worst"].TableDigest != first["mc-max"].TableDigest {
		t.Fatal("worstchain digest != matrixchain-under-max-plus digest")
	}
	// Bool-plan feasibility outcomes.
	if first["split-ok"].Cost != 1 {
		t.Fatalf("split-ok cost %d, want feasible 1", first["split-ok"].Cost)
	}
	if first["split-no"].Cost != 0 {
		t.Fatalf("split-no cost %d, want infeasible 0", first["split-no"].Cost)
	}

	// A second identical round must hit the cache — one resident entry
	// per (parameters, algebra) pair, never cross-served.
	for _, r := range reqs {
		wr := post(r)
		if !wr.Cached {
			t.Fatalf("%s: repeat not served from cache", r.ID)
		}
		if wr.TableDigest != first[r.ID].TableDigest || wr.Cost != first[r.ID].Cost {
			t.Fatalf("%s: cached digest drifted", r.ID)
		}
	}

	m := srv.Metrics()
	if m.Solved != int64(len(reqs)) {
		t.Fatalf("solved %d, want one per distinct (parameters, algebra) key (%d)", m.Solved, len(reqs))
	}
	if m.CacheHits != int64(len(reqs)) {
		t.Fatalf("cache hits %d, want %d", m.CacheHits, len(reqs))
	}
}

// directChainDigest solves a chain request in-process through the
// identical ChainSolver configuration and returns the expected vector
// digest and cost.
func directChainDigest(t *testing.T, req *wire.Request) (string, int64) {
	t.Helper()
	engine := req.Engine()
	if engine == "" {
		engine = sublineardp.ChainEngineAuto
	}
	opts, err := req.SolverOptions()
	if err != nil {
		t.Fatal(err)
	}
	c, err := req.ChainInstance()
	if err != nil {
		t.Fatal(err)
	}
	solver, err := sublineardp.NewChainSolver(engine, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.Solve(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	return wire.VectorDigest(sol.Values), int64(sol.Cost())
}

// TestE2EChainRoundTrip is the chain-kind acceptance criterion: segls /
// wis / subsetsum requests round-trip through the full serving stack
// bitwise identical to direct ChainSolver.Solve calls, chain and
// interval requests occupy separate cache entries, and the counter
// identity balances.
func TestE2EChainRoundTrip(t *testing.T) {
	srv, err := New(Config{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := startLoopback(t, srv)
	client := &http.Client{Timeout: 60 * time.Second}

	xs, ys := problems.RandomSeries(60, 11)
	pts := make([]wire.Point, len(xs))
	for i := range xs {
		pts[i] = wire.Point{X: xs[i], Y: ys[i]}
	}
	starts, ends, weights := problems.RandomJobs(40, 12)
	reqs := []*wire.Request{
		{ID: "segls-auto", Kind: wire.KindSegLS, Points: pts, Penalty: 900, WantTree: true},
		{ID: "segls-llp", Kind: wire.KindSegLS, Points: pts, Penalty: 900,
			Options: wire.Options{Engine: "llp", Workers: 3}},
		{ID: "wis", Kind: wire.KindWIS, Starts: starts, Ends: ends, Weights: weights},
		{ID: "subsetsum", Kind: wire.KindSubsetSum, Target: 97, Items: []int64{6, 11, 19},
			Options: wire.Options{Engine: "sequential"}},
	}

	post := func(r *wire.Request) *wire.Response {
		t.Helper()
		body, _ := json.Marshal(r)
		resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		defer resp.Body.Close()
		var wr wire.Response
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d decode %v", r.ID, resp.StatusCode, err)
		}
		return &wr
	}

	first := make(map[string]*wire.Response, len(reqs))
	for _, r := range reqs {
		wr := post(r)
		if wr.Cached || wr.Coalesced {
			t.Fatalf("%s: first request served from cache", r.ID)
		}
		wantDigest, wantCost := directChainDigest(t, r)
		if wr.TableDigest != wantDigest || wr.Cost != wantCost {
			t.Fatalf("%s: served (%d, %s) != direct chain solve (%d, %s)",
				r.ID, wr.Cost, wr.TableDigest, wantCost, wantDigest)
		}
		first[r.ID] = wr
	}

	// Engine routing and algebra metadata on the responses.
	if got := first["segls-llp"].Engine; got != "llp" {
		t.Errorf("segls-llp ran on %q, want llp", got)
	}
	if got := first["subsetsum"].Engine; got != "sequential" {
		t.Errorf("subsetsum ran on %q, want sequential", got)
	}
	for id, alg := range map[string]string{
		"segls-auto": "", "segls-llp": "", "wis": "max-plus", "subsetsum": "bool-plan",
	} {
		if first[id].Algebra != alg {
			t.Errorf("%s: algebra %q, want %q", id, first[id].Algebra, alg)
		}
	}
	// The two segls requests differ only in engine: identical values
	// (bitwise — the LLP acceptance criterion over the wire), distinct
	// cache entries.
	if first["segls-auto"].TableDigest != first["segls-llp"].TableDigest {
		t.Fatal("llp vector digest differs from the auto-routed solve")
	}
	// The optimal breakpoint path came back and spans the series.
	if tree := first["segls-auto"].Tree; tree == "" ||
		!strings.HasPrefix(tree, "0 ") || !strings.HasSuffix(tree, fmt.Sprintf(" %d", len(pts))) {
		t.Fatalf("segls breakpoints %q do not span 0..%d", tree, len(pts))
	}

	// Repeats are cache hits, served bitwise-identically.
	for _, r := range reqs {
		wr := post(r)
		if !wr.Cached {
			t.Fatalf("%s: repeat not served from cache", r.ID)
		}
		if wr.TableDigest != first[r.ID].TableDigest || wr.Cost != first[r.ID].Cost {
			t.Fatalf("%s: cached digest drifted", r.ID)
		}
	}

	// Interval traffic lands in the separate interval store: a
	// matrixchain request after the chain rounds is a fresh solve, and
	// chain entries stay resident.
	mc := &wire.Request{ID: "mc", Kind: wire.KindMatrixChain, Dims: []int{30, 35, 15, 5, 10, 20, 25}}
	if wr := post(mc); wr.Cached || wr.Coalesced {
		t.Fatal("interval request served from the chain rounds' cache")
	}
	if wr := post(reqs[0]); !wr.Cached {
		t.Fatal("chain entry evicted by interval traffic")
	}

	m := srv.Metrics()
	if m.CacheHits+m.Coalesced+m.Solved != m.OK {
		t.Fatalf("counter identity broken: hits %d + coalesced %d + solved %d != ok %d",
			m.CacheHits, m.Coalesced, m.Solved, m.OK)
	}
	// One solve per distinct (kind, parameters, options) key: 4 chain
	// keys + 1 interval key.
	if m.Solved != int64(len(reqs))+1 {
		t.Fatalf("solved %d, want %d", m.Solved, len(reqs)+1)
	}
	if m.BatchInstances != m.Solved {
		t.Fatalf("batch instances %d != solved %d", m.BatchInstances, m.Solved)
	}
	if m.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", m.QueueDepth)
	}
}

// TestE2EReconstructionRoundTrip pins the return_splits surface end to
// end: served trees and paths match direct solves digest-for-digest,
// cache hits keep answering with the reconstruction (the cached
// Solution carries its recorded splits, so every hit re-derives the
// tree in O(n)), and return_splits participates in the cache key — a
// plain twin of a splits-recording request is a separate entry.
func TestE2EReconstructionRoundTrip(t *testing.T) {
	srv, err := New(Config{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base := startLoopback(t, srv)
	client := &http.Client{Timeout: 60 * time.Second}

	post := func(r *wire.Request) *wire.Response {
		t.Helper()
		body, _ := json.Marshal(r)
		resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		defer resp.Body.Close()
		var wr wire.Response
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d decode %v", r.ID, resp.StatusCode, err)
		}
		return &wr
	}

	// A matrix chain big enough to route blocked-sized work through the
	// batcher, solved with recorded splits.
	rng := rand.New(rand.NewSource(21))
	dims := make([]int, 81)
	for i := range dims {
		dims[i] = 1 + rng.Intn(60)
	}
	treq := &wire.Request{ID: "mc-tree", Kind: wire.KindMatrixChain, Dims: dims,
		Options: wire.Options{Engine: "blocked"}, ReturnSplits: true}

	in, err := treq.Instance()
	if err != nil {
		t.Fatal(err)
	}
	want := sublineardp.SolveSequential(in).Tree()

	first := post(treq)
	if first.Cached || first.Coalesced {
		t.Fatal("first request served from cache")
	}
	if first.Reconstruction == nil || first.Reconstruction.Error != "" {
		t.Fatalf("no reconstruction served: %+v", first.Reconstruction)
	}
	if first.Reconstruction.Tree != want.Encode() {
		t.Fatal("served tree differs from direct sequential solve")
	}
	if first.Reconstruction.Digest != wire.TreeDigest(want) {
		t.Fatalf("served tree digest %q, want %q", first.Reconstruction.Digest, wire.TreeDigest(want))
	}

	// The cache hit still reconstructs — from the cached solution's
	// recorded splits, byte-identically.
	hit := post(treq)
	if !hit.Cached {
		t.Fatal("repeat not served from cache")
	}
	if hit.Reconstruction == nil || hit.Reconstruction.Tree != first.Reconstruction.Tree ||
		hit.Reconstruction.Digest != first.Reconstruction.Digest {
		t.Fatalf("cached reconstruction drifted: %+v", hit.Reconstruction)
	}

	// The same instance without return_splits is a different cache
	// entry (recording is keyed), and answers without the section.
	plain := &wire.Request{ID: "mc-plain", Kind: wire.KindMatrixChain, Dims: dims,
		Options: wire.Options{Engine: "blocked"}}
	pw := post(plain)
	if pw.Cached || pw.Coalesced {
		t.Fatal("plain twin shared the splits-recording cache entry")
	}
	if pw.Reconstruction != nil {
		t.Fatalf("plain request grew a reconstruction: %+v", pw.Reconstruction)
	}
	if pw.TableDigest != first.TableDigest {
		t.Fatal("recording changed the value table digest")
	}

	// Chain kind: the breakpoint path round-trips with its digest.
	xs, ys := problems.RandomSeries(50, 31)
	pts := make([]wire.Point, len(xs))
	for i := range xs {
		pts[i] = wire.Point{X: xs[i], Y: ys[i]}
	}
	creq := &wire.Request{ID: "segls-path", Kind: wire.KindSegLS, Points: pts,
		Penalty: 900, ReturnSplits: true}
	cfirst := post(creq)
	if cfirst.Reconstruction == nil || cfirst.Reconstruction.Error != "" {
		t.Fatalf("no chain reconstruction served: %+v", cfirst.Reconstruction)
	}
	cc, err := creq.ChainInstance()
	if err != nil {
		t.Fatal(err)
	}
	csol, err := sublineardp.MustNewChainSolver("").Solve(context.Background(), cc)
	if err != nil {
		t.Fatal(err)
	}
	wantPath, err := csol.Path()
	if err != nil {
		t.Fatal(err)
	}
	if cfirst.Reconstruction.Digest != wire.PathDigest(wantPath) {
		t.Fatalf("served path digest %q, want %q", cfirst.Reconstruction.Digest, wire.PathDigest(wantPath))
	}
	if chit := post(creq); !chit.Cached || chit.Reconstruction == nil ||
		chit.Reconstruction.Digest != cfirst.Reconstruction.Digest {
		t.Fatal("cached chain reconstruction drifted")
	}

	// chain_window is part of the problem statement: the windowed twin
	// never shares a cache entry with the full-prefix solve.
	starts, ends, weights := problems.RandomJobs(40, 12)
	full := &wire.Request{ID: "wis-full", Kind: wire.KindWIS,
		Starts: starts, Ends: ends, Weights: weights}
	windowed := &wire.Request{ID: "wis-win", Kind: wire.KindWIS,
		Starts: starts, Ends: ends, Weights: weights, ChainWindow: 5}
	if fw := post(full); fw.Cached || fw.Coalesced {
		t.Fatal("first full-prefix request served from cache")
	}
	ww := post(windowed)
	if ww.Cached || ww.Coalesced {
		t.Fatal("windowed request served from the full-prefix cache entry")
	}
	wc, err := windowed.ChainInstance()
	if err != nil {
		t.Fatal(err)
	}
	wsol, err := sublineardp.MustNewChainSolver("").Solve(context.Background(), wc)
	if err != nil {
		t.Fatal(err)
	}
	if ww.Cost != int64(wsol.Cost()) || ww.TableDigest != wire.VectorDigest(wsol.Values) {
		t.Fatalf("windowed solve (%d, %s) != direct (%d, %s)",
			ww.Cost, ww.TableDigest, wsol.Cost(), wire.VectorDigest(wsol.Values))
	}

	m := srv.Metrics()
	if m.CacheHits+m.Coalesced+m.Solved != m.OK {
		t.Fatalf("counter identity broken: hits %d + coalesced %d + solved %d != ok %d",
			m.CacheHits, m.Coalesced, m.Solved, m.OK)
	}
}

// TestE2EChainBadRequests pins the chain-kind 400 surface: malformed
// parameters and unknown chain engines shed before admission.
func TestE2EChainBadRequests(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := startLoopback(t, srv)
	client := &http.Client{Timeout: 10 * time.Second}

	bad := []*wire.Request{
		{Kind: wire.KindSegLS, Penalty: 10},
		{Kind: wire.KindSegLS, Points: []wire.Point{{X: 1}, {X: 1}}},
		{Kind: wire.KindWIS, Starts: []int64{4}, Ends: []int64{2}, Weights: []int64{1}},
		{Kind: wire.KindSubsetSum, Target: 5},
		{Kind: wire.KindSubsetSum, Target: 5, Items: []int64{3},
			Options: wire.Options{Engine: "hlv-banded"}}, // interval-only engine
	}
	for i, r := range bad {
		body, _ := json.Marshal(r)
		resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if m := srv.Metrics(); m.BadRequests != int64(len(bad)) {
		t.Fatalf("bad requests %d, want %d", m.BadRequests, len(bad))
	}
}
