package sublineardp

import (
	"context"
	"testing"

	"sublineardp/internal/cache"
	"sublineardp/internal/problems"
)

// The cache-key audit behind solveKey's keying discipline: two
// configurations that differ in any result-affecting field must never
// share a solve key, and identical inputs must (determinism). A shared
// key here would mean one option set silently served another's solution
// — the exact hazard the canonical cache must exclude.
func TestSolveKeySeparatesResultAffectingOptions(t *testing.T) {
	in := problems.CLRSMatrixChain()
	base := Config{}

	// One mutation per result-affecting Config field, each applied to a
	// fresh copy of the base. Every mutation must move the key, and all
	// keys (base included) must be pairwise distinct.
	mutations := map[string]func(*Config){
		"workers":      func(c *Config) { c.Workers = 3 },
		"tile":         func(c *Config) { c.TileSize = 17 },
		"mode":         func(c *Config) { c.Mode = Chaotic },
		"termination":  func(c *Config) { c.Termination = WStable },
		"termination2": func(c *Config) { c.Termination = WPWStable },
		"maxiter":      func(c *Config) { c.MaxIterations = 5 },
		"band":         func(c *Config) { c.BandRadius = 7 },
		"window":       func(c *Config) { c.Window = true },
		"autocutoff":   func(c *Config) { c.AutoCutoff = 10 },
		"autolarge":    func(c *Config) { c.AutoLargeCutoff = 512 },
		"history":      func(c *Config) { c.History = true },
		"semiring":     func(c *Config) { c.Semiring = MaxPlus },
		"semiring2":    func(c *Config) { c.Semiring = BoolPlan },
		"splits":       func(c *Config) { c.RecordSplits = true },
		"convexity":    func(c *Config) { c.Convexity = true },
	}
	keys := map[cache.Key]string{}
	add := func(label string, key cache.Key) {
		if prev, dup := keys[key]; dup {
			t.Fatalf("option sets %q and %q share a solve key", prev, label)
		}
		keys[key] = label
	}

	baseKey, ok := solveKey(in, EngineAuto, &base)
	if !ok {
		t.Fatal("canonicalisable instance not keyed")
	}
	if again, _ := solveKey(in, EngineAuto, &base); again != baseKey {
		t.Fatal("solve key is not deterministic")
	}
	add("base", baseKey)

	for label, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		key, ok := solveKey(in, EngineAuto, &cfg)
		if !ok {
			t.Fatalf("%s: not keyed", label)
		}
		add(label, key)
	}

	// Engine routing is keyed through the engine name argument.
	for _, engine := range []string{EngineSequential, EngineHLVBanded, EngineHLVDense, EngineBlocked, EngineBlockedPipe, EngineBlockedKY} {
		key, _ := solveKey(in, engine, &base)
		add("engine="+engine, key)
	}

	// The canonically distinct algebra twin of the same parameters (the
	// declared algebra lives in the canonical bytes, not only in the
	// config override).
	twin := problems.WorstCaseMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	twinKey, ok := solveKey(twin, EngineAuto, &base)
	if !ok {
		t.Fatal("worstchain twin not keyed")
	}
	add("worstchain-twin", twinKey)

	// And the override spelling of the same algebra must coincide with
	// neither min-plus nor the declared twin: the parameters hash
	// differently (matrixchain vs worstchain canon) even though the
	// effective algebra matches.
	maxCfg := base
	maxCfg.Semiring = MaxPlus
	overrideKey, _ := solveKey(in, EngineAuto, &maxCfg)
	if overrideKey == twinKey {
		t.Fatal("override max-plus on matrixchain collides with declared worstchain")
	}
}

// The other half of the keying discipline, justifying every
// `//lint:allow keycoverage` exemption in solveropts.go: execution
// plumbing must NOT move the key. Pool, Cache and Concurrency change
// where and when a solve runs, never what it returns — keying them
// would split identical solves across cache entries. Target is the one
// exempted field that does alter the Solution (ConvergedAt), so the
// second half pins solver.go's stronger guarantee: a Solver with a
// Target never touches its cache at all.
func TestSolveKeyIgnoresExecutionPlumbing(t *testing.T) {
	in := problems.CLRSMatrixChain()
	base := Config{}
	baseKey, ok := solveKey(in, EngineAuto, &base)
	if !ok {
		t.Fatal("not keyed")
	}

	pool := NewPool(2)
	defer pool.Close()
	plumbing := map[string]func(*Config){
		"pool":        func(c *Config) { c.Pool = pool },
		"cache":       func(c *Config) { c.Cache = NewCache(8) },
		"concurrency": func(c *Config) { c.Concurrency = 3 },
		"target":      func(c *Config) { c.Target = &Table{N: in.N} },
	}
	for label, mutate := range plumbing {
		cfg := base
		mutate(&cfg)
		key, ok := solveKey(in, EngineAuto, &cfg)
		if !ok {
			t.Fatalf("%s: not keyed", label)
		}
		if key != baseKey {
			t.Errorf("%s: execution plumbing moved the solve key", label)
		}
	}

	// The Target cache-bypass: a cached ConvergedAt recorded under a
	// different target would be silently wrong, so Solver.Solve must
	// skip the cache protocol entirely when Target is set.
	ref, err := MustNewSolver(EngineSequential).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(8)
	s := MustNewSolver(EngineSequential, WithCache(c), WithTarget(ref.Table))
	for i := 0; i < 2; i++ {
		sol, err := s.Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Cached {
			t.Fatalf("solve %d with Target was served from cache", i)
		}
	}
	if st := c.Stats(); st.Hits+st.Misses+st.Insertions+st.Solves != 0 {
		t.Errorf("Target did not bypass the cache: stats %+v", st)
	}
}

// An explicit override must also separate from the instance's declared
// algebra when they disagree — WithSemiring(MinPlus) on a worstchain
// instance is a different computation than its declared max-plus solve.
func TestSolveKeyOverrideBeatsDeclaredAlgebra(t *testing.T) {
	twin := problems.WorstCaseMatrixChain([]int{2, 3, 4, 5})
	declared, ok := solveKey(twin, EngineAuto, &Config{})
	if !ok {
		t.Fatal("not keyed")
	}
	overridden, _ := solveKey(twin, EngineAuto, &Config{Semiring: MinPlus})
	if declared == overridden {
		t.Fatal("min-plus override shares a key with the declared max-plus solve")
	}
}
