package core

import (
	"context"
)

// squareTiled is the cache-tiled a-square kernel for the synchronous
// no-audit path. It computes exactly the reference kernel's Combine
// (eq. 2c) but sweeps the iteration space in composition-major order,
// one pass per form of the equation, so the inner loops walk memory at
// unit or single-row stride instead of jumping O(n^3)-element strides
// per candidate:
//
//	pass 0  dst <- src for every valid cell (contiguous row copies)
//	pass 1  first form, (q, r, p) order: pw'(i,j,r,q) is a scalar per
//	        (q,r) and both pw'(r,q,p,q) and the destination walk a fixed
//	        stride-sz column over p, revisited r times while hot
//	pass 2  second form, (p, x, q) order: pw'(i,j,p,x) is a scalar per
//	        (p,x) and both pw'(p,x,p,q) and the destination row are
//	        contiguous over q
//
// Each (q,r) / (p,x) panel dispatches as one RelaxPanel call on the
// algebra, whose per-semiring body is the specialised scalar loop —
// Zero-valued scalars skip their whole panel row, pruning most of the
// O(n^5) candidate space in the Zero-dominated early iterations while
// computing the identical Combine (an absorbed candidate can never win).
// All candidate reads come from src, every valid cell is written by the
// pass-0 copy, and the passes only tighten dst per cell, so the result
// is bitwise the reference kernel's.
func (s *denseState[S]) squareTiled(ctx context.Context) {
	src := s.pw
	dst := s.pwNext
	track := s.trackPWChanges
	sz := s.sz
	sz2 := sz * sz
	sz3 := sz2 * sz
	changed := s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr.i), int(pr.j)
			baseIJ := (i*sz + j) * sz2
			for p := i; p <= j; p++ {
				rowP := baseIJ + p*sz
				copy(dst[rowP+p+1:rowP+j+1], src[rowP+p+1:rowP+j+1])
			}
			// First form of eq. (2c): intermediate (r,q). Per q, the
			// scalar pw'(i,j,r,q) walks down the column (stride sz) and
			// the destination/candidate columns share its stride.
			for q := i + 2; q <= j; q++ {
				s.sr.RelaxRows(dst, src,
					q-i, q-1-i, -1, // rows r = i..q-1, p runs shrinking
					baseIJ+q+i*sz, sz, // s1 = pw'(i,j,r,q)
					baseIJ+q+(i+1)*sz, sz, // dst = pw'(i,j,p,q)
					i*sz3+q*sz2+q+(i+1)*sz, sz3+sz, // src = pw'(r,q,p,q)
					sz)
			}
			// Second form: intermediate (p,x). Per p, the scalar
			// pw'(i,j,p,x) walks the row (stride 1) and the
			// destination/candidate rows are contiguous.
			for p := i; p < j; p++ {
				rowP := baseIJ + p*sz
				s.sr.RelaxRows(dst, src,
					j-p, 0, 1, // rows x = p+1..j, q runs growing
					rowP+p+1, 1, // s1 = pw'(i,j,p,x)
					rowP+p+1, 0, // dst = pw'(i,j,p,q), fixed row
					p*sz3+p*sz+(p+1)*sz2+p+1, sz2, // src = pw'(p,x,p,q)
					1)
			}
			if track {
				for p := i; p <= j; p++ {
					rowP := baseIJ + p*sz
					for q := p + 1; q <= j; q++ {
						if dst[rowP+q] != src[rowP+q] {
							local++
						}
					}
				}
			}
		}
		return local
	})
	if track {
		s.pwChangedThisIter += changed
	}
	s.pw, s.pwNext = s.pwNext, s.pw
	s.pwEpoch ^= 1
}
