package core
