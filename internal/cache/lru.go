package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Stats is the cache's counter snapshot. All counters are cumulative
// since construction; they are exported verbatim on /metrics and the
// serving tests assert arithmetic identities over them (for example
// hits + misses == lookups).
type Stats struct {
	Hits       int64 // Get found the key
	Misses     int64 // Get did not find the key
	Insertions int64 // Add stored a new key
	Updates    int64 // Add overwrote an existing key
	Evictions  int64 // an entry was dropped to respect capacity
}

// Sharded is a fixed-capacity LRU over Keys, split into independently
// locked shards so concurrent serving traffic does not serialise on one
// mutex. The zero value is not usable; build with New.
//
// Capacity is enforced per shard (capacity/shards entries each, minimum
// one), which bounds total residency at the configured capacity while
// keeping eviction decisions lock-local.
type Sharded[V any] struct {
	shards []lruShard[V]

	hits, misses, insertions, updates, evictions atomic.Int64
}

type lruShard[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[Key]*list.Element
}

type lruEntry[V any] struct {
	key Key
	val V
}

// New returns a sharded LRU holding at most capacity entries across
// `shards` shards (shards <= 0 picks 16; capacity <= 0 picks 1024).
func New[V any](capacity, shards int) *Sharded[V] {
	if shards <= 0 {
		shards = 16
	}
	if capacity <= 0 {
		capacity = 1024
	}
	if shards > capacity {
		shards = capacity
	}
	per := capacity / shards
	if per < 1 {
		per = 1
	}
	c := &Sharded[V]{shards: make([]lruShard[V], shards)}
	for i := range c.shards {
		c.shards[i] = lruShard[V]{cap: per, ll: list.New(), m: make(map[Key]*list.Element)}
	}
	return c
}

// Get returns the cached value for key and marks it most recently used.
func (c *Sharded[V]) Get(key Key) (V, bool) {
	s := &c.shards[key.shard(len(c.shards))]
	s.mu.Lock()
	el, ok := s.m[key]
	if ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*lruEntry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Add stores the value under key, evicting the shard's least recently
// used entry when at capacity.
func (c *Sharded[V]) Add(key Key, v V) {
	s := &c.shards[key.shard(len(c.shards))]
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		el.Value.(*lruEntry[V]).val = v
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		c.updates.Add(1)
		return
	}
	evicted := false
	if s.ll.Len() >= s.cap {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.m, last.Value.(*lruEntry[V]).key)
		evicted = true
	}
	s.m[key] = s.ll.PushFront(&lruEntry[V]{key: key, val: v})
	s.mu.Unlock()
	c.insertions.Add(1)
	if evicted {
		c.evictions.Add(1)
	}
}

// Len returns the current number of resident entries.
func (c *Sharded[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cumulative counters.
func (c *Sharded[V]) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Insertions: c.insertions.Load(),
		Updates:    c.updates.Load(),
		Evictions:  c.evictions.Load(),
	}
}
