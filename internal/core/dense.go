package core

import (
	"context"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/pram"
	"sublineardp/internal/recurrence"
)

// Audit array tags.
const (
	tagW  uint8 = 1
	tagPW uint8 = 2
)

// pair is one (i,j) node of the iteration space.
type pair struct{ i, j int32 }

// Audit addresses distinguish the two halves of each double buffer via an
// epoch bit folded into the array tag: a synchronous step reads epoch e
// and writes epoch e^1, so the auditor's read-write overlap check passes
// exactly when the buffering discipline is honoured (PRAM reads logically
// precede writes; what must never collide is a physical buffer cell).
// Chaotic mode keeps a single epoch, so the auditor flags it — by design.
func epochTag(tag, epoch uint8) uint8 { return tag | epoch<<3 }

// denseState is the Sections 2-4 algorithm state: the full O(n^4) pw'
// array plus the w' table, double-buffered for synchronous updates. It is
// generic over the algebra: sr's Combine/Extend/Zero replace min/+/Inf
// everywhere, and the hot sweeps dispatch onto sr's bulk primitives so
// the min-plus instantiation costs exactly what the specialised kernels
// did.
type denseState[S algebra.Kernel] struct {
	sr     S
	n, sz  int
	in     *recurrence.Instance
	w      []cost.Cost
	wNext  []cost.Cost
	pw     []cost.Cost
	pwNext []cost.Cost
	pairs  []pair // all (i,j), i<j, internal spans first ordering irrelevant
	rt     *runtime
	sync   bool
	legacy bool // pin the reference kernels (audit/chaotic/tests)
	aud    *pram.Auditor

	// Closed-form per-iteration accounting, computed once.
	activateWork int64
	squareCells  int64
	squareWork   int64
	squareMaxM   int64
	pebbleCells  int64
	pebbleWork   int64
	pebbleMaxM   int64

	// pw'-change tracking (WPWStable rule and history at small sizes).
	trackPWChanges    bool
	pwChangedThisIter int64

	// Buffer epochs for audit addressing (flip at each swap).
	wEpoch, pwEpoch uint8
}

func (s *denseState[S]) idx(i, j, p, q int) int {
	return ((i*s.sz+j)*s.sz+p)*s.sz + q
}

func newDenseState[S algebra.Kernel](sr S, in *recurrence.Instance, rt *runtime, syncMode bool, aud *pram.Auditor, forceLegacy bool) *denseState[S] {
	n := in.N
	sz := n + 1
	s := &denseState[S]{
		sr:     sr,
		n:      n,
		sz:     sz,
		in:     in,
		rt:     rt,
		sync:   syncMode,
		legacy: forceLegacy || !syncMode || aud != nil,
		aud:    aud,
		w:      costArena.Get(sz * sz),
		pw:     costArena.Get(sz * sz * sz * sz),
	}
	if syncMode {
		// Scratch halves come back dirty from the arena; every cell a
		// synchronous step reads after the swap is written first (square
		// rewrites all valid pw' cells, pebble copies w' wholesale).
		s.wNext = costArena.Get(sz * sz)
		s.pwNext = costArena.Get(sz * sz * sz * sz)
	}
	zero := sr.Zero()
	for i := range s.w {
		s.w[i] = zero
	}
	fillValue(s.rt, s.pw, zero)
	// Initialisation: w'(i,i+1) = init(i); pw'(i,j,i,j) = One.
	for i := 0; i < n; i++ {
		s.w[i*sz+i+1] = in.Init(i)
	}
	one := sr.One()
	s.pairs = pairArena.Get((n + 1) * n / 2)
	t := 0
	for i := 0; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			s.pw[s.idx(i, j, i, j)] = one
			s.pairs[t] = pair{int32(i), int32(j)}
			t++
		}
	}
	s.computeCharges()
	return s
}

// fillValue resets a (possibly recycled) cost buffer to the algebra's
// Zero, in parallel for the O(n^4) dense array.
func fillValue(rt *runtime, buf []cost.Cost, zero cost.Cost) {
	rt.pool.ForChunked(rt.workers, len(buf), 1<<16, func(lo, hi int) {
		seg := buf[lo:hi]
		for i := range seg {
			seg[i] = zero
		}
	})
}

// release returns the state's buffers to the shared arenas. The state
// must not be used afterwards.
func (s *denseState[S]) release() {
	costArena.Put(s.w)
	costArena.Put(s.wNext)
	costArena.Put(s.pw)
	costArena.Put(s.pwNext)
	pairArena.Put(s.pairs)
	s.w, s.wNext, s.pw, s.pwNext, s.pairs = nil, nil, nil, nil, nil
}

// computeCharges precomputes the exact per-iteration work counts and
// reduction widths used for PRAM accounting, so the hot loops carry no
// counters. The counts follow directly from the iteration spaces:
// activate touches every (i,k,j) twice; a square cell (i,j,p,q) has
// (p-i)+(j-q) candidates; a pebble cell (i,j) has span*(span+1)/2
// candidate gaps.
func (s *denseState[S]) computeCharges() {
	n := int64(s.n)
	// activate: all 0 <= i < k < j <= n, two min-updates each.
	triples := (n + 1) * n * (n - 1) / 6
	s.activateWork = 2 * triples
	// square: per (i,j) of span L, cells are (a,b) offsets with
	// a = p-i >= 0, b = j-q >= 0, a+b <= L-1 (p<q), candidates a+b.
	for L := int64(1); L <= n; L++ {
		pairsL := n + 1 - L
		var cells, work int64
		for a := int64(0); a <= L; a++ {
			for b := int64(0); a+b <= L-1; b++ {
				cells++
				work += a + b
			}
		}
		s.squareCells += pairsL * cells
		s.squareWork += pairsL * work
	}
	if n >= 1 {
		s.squareMaxM = n - 1 // widest reduction: (p-i)+(j-q) at span n
	}
	// pebble: per (i,j) of span L, candidates = number of (p,q) cells.
	for L := int64(2); L <= n; L++ {
		pairsL := n + 1 - L
		cells := L * (L + 1) / 2
		s.pebbleCells += pairsL
		s.pebbleWork += pairsL * cells
		if cells > s.pebbleMaxM {
			s.pebbleMaxM = cells
		}
	}
}

// readPW fetches a pw' cell, recording the read when auditing.
func (s *denseState[S]) readPW(buf []cost.Cost, i, j, p, q int) cost.Cost {
	c := s.idx(i, j, p, q)
	if s.aud != nil {
		s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c))
	}
	return buf[c]
}

func (s *denseState[S]) readW(i, j int) cost.Cost {
	c := i*s.sz + j
	if s.aud != nil {
		s.aud.Read(pram.Addr(epochTag(tagW, s.wEpoch), c))
	}
	return s.w[c]
}

// writeEpoch returns the epoch a synchronous step writes into: the other
// buffer when double-buffered, the same one when updating in place.
func (s *denseState[S]) writeEpoch(epoch uint8, buffered bool) uint8 {
	if s.sync && buffered {
		return epoch ^ 1
	}
	return epoch
}

// activate performs one a-activate. It reads w' and each written cell's
// own old value, so in-place update is synchronous-equivalent; writes to
// distinct cells are produced by distinct (i,k,j) triples (exclusive
// write), which the auditor verifies.
func (s *denseState[S]) activate(ctx context.Context) {
	if s.aud != nil {
		s.aud.BeginStep("a-activate")
	}
	in := s.in
	changed := s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			s.activatePair(in, t, &local)
		}
		return local
	})
	if s.trackPWChanges {
		s.pwChangedThisIter += changed
	}
	if s.aud != nil {
		s.aud.EndStep()
	}
}

// activatePair applies eq. (1a)/(1b) for every split of one (i,j) pair.
// Each cell is read-modify-written by exactly one (i,k,j) triple: a
// processor-local RMW, so only the write is recorded for the
// exclusive-write audit.
func (s *denseState[S]) activatePair(in *recurrence.Instance, t int, changed *int64) {
	pr := s.pairs[t]
	i, j := int(pr.i), int(pr.j)
	if j-i < 2 {
		return
	}
	for k := i + 1; k < j; k++ {
		fv := in.F(i, k, j) //lint:allow bulkonly dense reference/audit activate path; the tiled kernels carry the serving load
		c1 := s.idx(i, j, i, k)
		wkj := s.readW(k, j)
		if s.aud != nil {
			s.aud.Write(pram.Addr(epochTag(tagPW, s.pwEpoch), c1))
		}
		if s.sr.RelaxAt(s.pw, c1, fv, wkj) {
			*changed++
		}
		c2 := s.idx(i, j, k, j)
		wik := s.readW(i, k)
		if s.aud != nil {
			s.aud.Write(pram.Addr(epochTag(tagPW, s.pwEpoch), c2))
		}
		if s.sr.RelaxAt(s.pw, c2, fv, wik) {
			*changed++
		}
	}
}

// square performs one a-square. In synchronous mode all candidate reads
// come from the old buffer and every valid cell is rewritten into the
// scratch buffer; in chaotic mode it updates in place. The synchronous
// no-audit path runs the cache-tiled kernel (dense_tiled.go); this body
// is the reference kernel, kept for the auditor (which must see every
// logical read) and for chaotic mode (which must keep its sweep order).
func (s *denseState[S]) square(ctx context.Context) {
	if s.aud != nil {
		s.aud.BeginStep("a-square")
	}
	if !s.legacy {
		s.squareTiled(ctx)
		return
	}
	src := s.pw
	dst := s.pw
	if s.sync {
		dst = s.pwNext
	}
	var changed int64
	track := s.trackPWChanges
	sz := s.sz
	sz2 := sz * sz
	sz3 := sz2 * sz
	changed = s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var localChanged int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr.i), int(pr.j)
			baseIJ := (i*sz + j) * sz2 // idx(i,j,p,q) = baseIJ + p*sz + q
			for p := i; p <= j; p++ {
				rowP := baseIJ + p*sz
				for q := p + 1; q <= j; q++ {
					c := rowP + q
					best := src[c] // own-cell RMW: not a shared read
					// First form of eq. (2c): intermediate (r,q), r in [i,p).
					// idx(i,j,r,q) = baseIJ + r*sz + q steps by sz;
					// idx(r,q,p,q) = r*sz3 + q*sz2 + p*sz + q steps by sz3.
					c1 := baseIJ + i*sz + q
					c2 := i*sz3 + q*sz2 + p*sz + q
					for r := i; r < p; r++ {
						if s.aud != nil {
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c1))
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c2))
						}
						v := s.sr.Extend(src[c1], src[c2])
						if s.sr.Better(v, best) {
							best = v
						}
						c1 += sz
						c2 += sz3
					}
					// Second form: intermediate (p,x), x in (q,j].
					// idx(i,j,p,x) = rowP + x steps by 1;
					// idx(p,x,p,q) = p*sz3 + x*sz2 + p*sz + q steps by sz2.
					c3 := rowP + q + 1
					c4 := p*sz3 + (q+1)*sz2 + p*sz + q
					for x := q + 1; x <= j; x++ {
						if s.aud != nil {
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c3))
							s.aud.Read(pram.Addr(epochTag(tagPW, s.pwEpoch), c4))
						}
						v := s.sr.Extend(src[c3], src[c4])
						if s.sr.Better(v, best) {
							best = v
						}
						c3++
						c4 += sz2
					}
					if s.aud != nil {
						s.aud.Write(pram.Addr(epochTag(tagPW, s.writeEpoch(s.pwEpoch, true)), c))
					}
					if track && best != src[c] {
						localChanged++
					}
					dst[c] = best
				}
			}
		}
		return localChanged
	})
	if track {
		s.pwChangedThisIter += changed
	}
	if s.sync {
		s.pw, s.pwNext = s.pwNext, s.pw
		s.pwEpoch ^= 1
	}
	if s.aud != nil {
		s.aud.EndStep()
	}
}

// pebble performs one a-pebble over the given span range [loSpan, hiSpan]
// (the full range for the unwindowed schedule). Following eq. (3) the min
// excludes the trivial gap (p,q) == (i,j); monotonicity of w' and pw'
// makes that equivalent to keeping the old value in the min — and since
// pw'(i,j,i,j) stays at One forever (no activate edge or composition
// targets it), the trivial candidate Extend(One, w'(i,j)) equals the old
// value, so the fast panel path below may include it harmlessly. The
// synchronous no-audit path reduces each cell with one bulk ReduceRelax
// sweep; the scalar body is kept for the auditor and chaotic mode. It
// returns the number of w' entries that changed.
func (s *denseState[S]) pebble(ctx context.Context, loSpan, hiSpan int) int64 {
	if s.aud != nil {
		s.aud.BeginStep("a-pebble")
	}
	src := s.w
	dst := s.w
	if s.sync {
		copy(s.wNext, s.w)
		dst = s.wNext
	}
	sz := s.sz
	sz2 := sz * sz
	changed := s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr.i), int(pr.j)
			span := j - i
			if span < 2 || span < loSpan || span > hiSpan {
				continue
			}
			c := i*sz + j
			best := src[c] // own-cell RMW: not a shared read
			if !s.legacy {
				best = s.sr.ReduceRelax(best, s.pw, s.w, algebra.ReduceShape{
					M: span, Cnt0: span, CntInc: -1,
					A: (i*sz+j)*sz2 + i*sz + i + 1, AStartStep: sz + 1, AStep: 1,
					B: i*sz + i + 1, BStartStep: sz + 1, BStep: 1,
				})
			} else {
				for p := i; p <= j; p++ {
					for q := p + 1; q <= j; q++ {
						if p == i && q == j {
							continue
						}
						v := s.sr.Extend(s.readPW(s.pw, i, j, p, q), s.readW(p, q))
						if s.sr.Better(v, best) {
							best = v
						}
					}
				}
			}
			if s.aud != nil {
				s.aud.Write(pram.Addr(epochTag(tagW, s.writeEpoch(s.wEpoch, true)), c))
			}
			if best != src[c] {
				local++
			}
			dst[c] = best
		}
		return local
	})
	if s.sync {
		s.w, s.wNext = s.wNext, s.w
		s.wEpoch ^= 1
	}
	if s.aud != nil {
		s.aud.EndStep()
	}
	return changed
}

// charge adds one full iteration's PRAM costs to acct.
func (s *denseState[S]) charge(acct *pram.Accounting, loSpan, hiSpan int) {
	acct.ChargeUnit(s.activateWork)
	acct.ChargeReduce(s.squareCells, s.squareMaxM+1, s.squareWork)
	// Pebble work depends on the window; recompute for partial windows.
	if loSpan <= 2 && hiSpan >= s.n {
		acct.ChargeReduce(s.pebbleCells, s.pebbleMaxM, s.pebbleWork)
		return
	}
	var cells, work, maxM int64
	for L := int64(max(2, loSpan)); L <= int64(min(s.n, hiSpan)); L++ {
		pairsL := int64(s.n) + 1 - L
		m := L * (L + 1) / 2
		cells += pairsL
		work += pairsL * m
		if m > maxM {
			maxM = m
		}
	}
	acct.ChargeReduce(cells, maxM, work)
}

// wTable copies the current w' into a Table.
func (s *denseState[S]) wTable() *recurrence.Table {
	t := recurrence.NewTable(s.n)
	for i := 0; i <= s.n; i++ {
		for j := i + 1; j <= s.n; j++ {
			t.Set(i, j, s.w[i*s.sz+j])
		}
	}
	return t
}

// wEquals reports whether the current w' matches the target table.
func (s *denseState[S]) wEquals(t *recurrence.Table) bool {
	for i := 0; i <= s.n; i++ {
		for j := i + 1; j <= s.n; j++ {
			if s.sr.Norm(s.w[i*s.sz+j]) != s.sr.Norm(t.At(i, j)) {
				return false
			}
		}
	}
	return true
}

// finiteW counts present (non-Zero) w' entries (history statistic).
func (s *denseState[S]) finiteW() int {
	c := 0
	for i := 0; i <= s.n; i++ {
		for j := i + 1; j <= s.n; j++ {
			if !s.sr.IsZero(s.w[i*s.sz+j]) {
				c++
			}
		}
	}
	return c
}

func (s *denseState[S]) setTrackPW(on bool) { s.trackPWChanges = on }
func (s *denseState[S]) pwChanged() int64   { return s.pwChangedThisIter }
func (s *denseState[S]) resetPWChanged()    { s.pwChangedThisIter = 0 }
func (s *denseState[S]) bandRadius() int    { return 0 }
