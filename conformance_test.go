package sublineardp_test

import (
	"context"
	"fmt"
	"testing"

	"sublineardp"
	"sublineardp/internal/problems"
	"sublineardp/internal/seq"
	"sublineardp/internal/verify"
)

// The cross-engine conformance suite: every registered engine — built-in
// or third-party via RegisterEngine — must, on every problem generator in
// internal/problems, produce the sequential optimum and a table that is
// the exact fixed point of recurrence (*) under the solver-independent
// verifier. This is the contract README documents for custom engines:
// register, run `go test -run TestEngineConformance`, and the engine is
// held to the same gate as the shipped ones.
//
// Engines registered by other tests as deliberate counterexamples (they
// exist to prove the registry dispatches, not to solve) are exempted by
// name here; a real engine must never be added to this map.
var nonconformingFixtures = map[string]string{
	"test-const":             "registry-dispatch fixture of solver_test.go; returns a constant",
	"counting-singleflight":  "cache-instrumentation fixture of solvercache_test.go; blocks until released",
	"counting-batch":         "cache-instrumentation fixture of solvercache_test.go; counts executions",
	"counting-stress":        "cache-instrumentation fixture of solvercache_test.go; counts executions",
	"counting-stress-cancel": "cache-instrumentation fixture of solvercache_test.go; blocks until released",
}

// conformanceInstances spans every generator family: the named problems
// (matrixchain, obst, triangulation), the shaped adversarial instances,
// and unstructured random ones. Sizes stay small enough for the O(n^4)
// dense engine while still crossing the banded engine's D = 2*ceil(sqrt
// n) boundary.
func conformanceInstances() []*sublineardp.Instance {
	return []*sublineardp.Instance{
		problems.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}),
		problems.RandomMatrixChain(24, 60, 3),
		problems.RandomOBST(18, 40, 5),
		problems.Triangulation(problems.RandomConvexPolygon(16, 1000, 7)),
		problems.Zigzag(21),
		problems.Balanced(16),
		problems.RandomShaped(15, 11),
		problems.RandomInstance(19, 80, 9),
	}
}

func TestEngineConformance(t *testing.T) {
	instances := conformanceInstances()
	type want struct {
		cost  sublineardp.Cost
		table *sublineardp.Table
	}
	wants := make([]want, len(instances))
	for i, in := range instances {
		res := seq.Solve(in)
		if rep := verify.Table(in, res.Table); !rep.OK() {
			t.Fatalf("reference table for %s fails verification: %v", in.Name, rep.Err())
		}
		wants[i] = want{cost: res.Cost(), table: res.Table}
	}

	ctx := context.Background()
	for _, name := range sublineardp.Engines() {
		if why, skip := nonconformingFixtures[name]; skip {
			t.Logf("engine %q exempt: %s", name, why)
			continue
		}
		t.Run(fmt.Sprintf("engine=%s", name), func(t *testing.T) {
			solver, err := sublineardp.NewSolver(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, in := range instances {
				sol, err := solver.Solve(ctx, in)
				if err != nil {
					t.Fatalf("%s: %v", in.Name, err)
				}
				if sol.Cost() != wants[i].cost {
					t.Errorf("%s: cost %d, sequential optimum %d", in.Name, sol.Cost(), wants[i].cost)
				}
				if rep := verify.Table(in, sol.Table); !rep.OK() {
					t.Errorf("%s: table is not a fixed point of the recurrence: %v", in.Name, rep.Err())
				}
			}
		})
	}
}

// A custom engine that wraps a conforming solver must pass the suite
// end-to-end — the positive half of the third-party contract (test-const
// above is the negative half: a nonconforming engine is caught, so it
// must be exempted explicitly).
type delegatingEngine struct{ inner *sublineardp.Solver }

func (delegatingEngine) Name() string { return "test-conforming" }

func (e delegatingEngine) Solve(ctx context.Context, in *sublineardp.Instance, cfg *sublineardp.Config) (*sublineardp.Solution, error) {
	return e.inner.Solve(ctx, in)
}

func TestThirdPartyEngineMeetsConformance(t *testing.T) {
	eng := delegatingEngine{inner: sublineardp.MustNewSolver(sublineardp.EngineHLVBanded)}
	if err := sublineardp.RegisterEngine(eng); err != nil {
		t.Fatal(err)
	}
	solver := sublineardp.MustNewSolver("test-conforming")
	for _, in := range conformanceInstances() {
		sol, err := solver.Solve(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if rep := verify.Table(in, sol.Table); !rep.OK() {
			t.Errorf("%s: %v", in.Name, rep.Err())
		}
	}
}
