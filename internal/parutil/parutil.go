// Package parutil is the worker-pool substrate every parallel solver runs
// on. It realises Brent scheduling: the algorithms are written against an
// unbounded-processor PRAM index space, and parutil maps that space onto a
// fixed number of goroutines with dynamic chunking, so a step with work W
// and depth T runs in O(W/p + T) as Brent's theorem promises.
//
// Execution is pooled: the package-level For/ForChunked/SumInt64 dispatch
// onto the process-wide Default Pool, and callers that want an isolated or
// differently-sized runtime build their own with NewPool. Large reusable
// buffers ride the companion Arena.
package parutil

import "runtime"

// DefaultWorkers returns the worker count used when a caller passes 0:
// the process's GOMAXPROCS setting.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For executes body(idx) for every idx in [0,n) across the given number of
// workers (0 means DefaultWorkers) on the shared Default pool. Chunks are
// claimed dynamically from an atomic counter, so uneven per-index costs
// (common in triangular DP iteration spaces) still balance. It returns
// once every index completed.
func For(workers, n int, body func(idx int)) {
	ForChunked(workers, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked executes body(lo,hi) over a partition of [0,n) with dynamic
// load balancing on the shared Default pool. grain is the chunk size (0
// picks a heuristic that gives each worker ~8 chunks to smooth imbalance
// without excessive contention).
func ForChunked(workers, n, grain int, body func(lo, hi int)) {
	Default().ForChunked(workers, n, grain, body)
}

// SumInt64 runs body over [0,n) like ForChunked and returns the sum of the
// per-chunk results, accumulated without atomics in the hot path: each
// worker folds locally and publishes once.
func SumInt64(workers, n, grain int, body func(lo, hi int) int64) int64 {
	return Default().SumInt64(workers, n, grain, body)
}
