package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sublineardp"
)

func TestBuildInstanceFamilies(t *testing.T) {
	cases := []struct {
		problem string
		n       int
		wantN   int
	}{
		{"matrixchain", 8, 8},
		{"obst", 8, 9}, // m keys -> m+1 objects
		{"triangulation", 8, 8},
		{"zigzag", 8, 8},
		{"balanced", 8, 8},
		{"skewed", 8, 8},
		{"random", 8, 8},
	}
	for _, tc := range cases {
		in, err := buildInstance(tc.problem, tc.n, 1, "")
		if err != nil {
			t.Errorf("%s: %v", tc.problem, err)
			continue
		}
		if in.N != tc.wantN {
			t.Errorf("%s: N = %d, want %d", tc.problem, in.N, tc.wantN)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", tc.problem, err)
		}
	}
}

func TestBuildInstanceDims(t *testing.T) {
	in, err := buildInstance("matrixchain", 0, 0, "30, 35,15")
	if err != nil {
		t.Fatal(err)
	}
	if in.N != 2 {
		t.Fatalf("N = %d, want 2", in.N)
	}
	if got := in.F(0, 1, 2); got != 30*35*15 {
		t.Fatalf("f = %d", got)
	}
}

func TestBuildInstanceErrors(t *testing.T) {
	if _, err := buildInstance("nosuch", 5, 1, ""); err == nil || !strings.Contains(err.Error(), "unknown problem") {
		t.Fatalf("unknown problem: %v", err)
	}
	if _, err := buildInstance("matrixchain", 5, 1, "3,x,4"); err == nil {
		t.Fatal("bad dims accepted")
	}
}

// The deprecated "knuth" spelling must keep resolving — through -algo
// and as an -engine name — to the registered pruned engine, with its
// historical min-plus-only error texts intact. Scripts parse these.
func TestKnuthAliasRoutesToPrunedEngine(t *testing.T) {
	name, err := resolveEngine("", "knuth")
	if err != nil || name != "knuth" {
		t.Fatalf("resolveEngine(-algo knuth) = %q, %v", name, err)
	}
	if _, err := resolveEngine("blocked-ky", "knuth"); err == nil {
		t.Fatal("-engine plus -algo must error")
	}

	obst, err := buildInstance("obst", 8, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := knuthAlias("", obst)
	if err != nil {
		t.Fatalf("knuth alias on obst: %v", err)
	}
	if engine != sublineardp.EngineBlockedKY {
		t.Fatalf("knuth alias resolved to %q, want %q", engine, sublineardp.EngineBlockedKY)
	}
	if _, err := knuthAlias("min-plus", obst); err != nil {
		t.Fatalf("explicit -semiring min-plus must stay allowed: %v", err)
	}

	if _, err := knuthAlias("max-plus", obst); err == nil ||
		err.Error() != `knuth is min-plus only (quadrangle inequality); drop -semiring "max-plus"` {
		t.Fatalf("semiring override error text changed: %v", err)
	}
	worst, err := buildInstance("worstchain", 6, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := knuthAlias("", worst); err == nil ||
		!strings.Contains(err.Error(), "knuth is min-plus only (quadrangle inequality); instance") {
		t.Fatalf("declared-algebra error text changed: %v", err)
	}

	// The alias hands eligibility to the engine: a min-plus instance that
	// does not declare convexity passes the alias but fails the solve
	// with the package sentinel.
	chain, err := buildInstance("matrixchain", 6, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	engine, err = knuthAlias("", chain)
	if err != nil {
		t.Fatalf("alias must not pre-judge convexity: %v", err)
	}
	_, err = sublineardp.MustNewSolver(engine).Solve(context.Background(), chain)
	if !errors.Is(err, sublineardp.ErrConvexityRequired) {
		t.Fatalf("pruned engine on matrixchain: err = %v, want ErrConvexityRequired", err)
	}
}
