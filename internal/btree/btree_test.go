package btree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func shapes(n int) map[string]*Tree {
	return map[string]*Tree{
		"complete":    Complete(n),
		"leftskewed":  LeftSkewed(n),
		"rightskewed": RightSkewed(n),
		"zigzag":      Zigzag(n),
		"random":      RandomSplit(n, rand.New(rand.NewSource(42))),
	}
}

func TestSingleLeaf(t *testing.T) {
	tr := New(1, nil)
	if tr.Len() != 1 {
		t.Fatalf("single-leaf tree has %d nodes", tr.Len())
	}
	if !tr.IsLeaf(tr.Root) {
		t.Fatal("root of n=1 tree is not a leaf")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAllShapes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 17, 64, 257} {
		for name, tr := range shapes(max(n, 2)) {
			if err := tr.Validate(); err != nil {
				t.Errorf("%s(n=%d): %v", name, n, err)
			}
		}
	}
}

func TestNodeCount(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100} {
		tr := Complete(n)
		if tr.Len() != 2*n-1 {
			t.Errorf("Complete(%d) has %d nodes, want %d", n, tr.Len(), 2*n-1)
		}
	}
}

func TestCompleteHeight(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 16: 4, 1024: 10}
	for n, want := range cases {
		if got := Complete(n).Height(); got != want {
			t.Errorf("Complete(%d).Height() = %d, want %d", n, got, want)
		}
	}
}

func TestSkewedHeight(t *testing.T) {
	for _, n := range []int{2, 5, 33, 200} {
		if got := LeftSkewed(n).Height(); got != n-1 {
			t.Errorf("LeftSkewed(%d).Height() = %d, want %d", n, got, n-1)
		}
		if got := RightSkewed(n).Height(); got != n-1 {
			t.Errorf("RightSkewed(%d).Height() = %d, want %d", n, got, n-1)
		}
		if got := Zigzag(n).Height(); got != n-1 {
			t.Errorf("Zigzag(%d).Height() = %d, want %d", n, got, n-1)
		}
	}
}

func TestZigzagTurnsEveryLevel(t *testing.T) {
	for _, n := range []int{4, 9, 50, 333} {
		tr := Zigzag(n)
		// The heavy chain has n-1 internal steps; after the first step every
		// subsequent step alternates, giving n-3 turns for n >= 3.
		want := n - 3
		if want < 0 {
			want = 0
		}
		if got := tr.Turns(); got != want {
			t.Errorf("Zigzag(%d).Turns() = %d, want %d", n, got, want)
		}
	}
}

func TestSkewedHasNoTurns(t *testing.T) {
	for _, n := range []int{3, 10, 64} {
		if got := LeftSkewed(n).Turns(); got != 0 {
			t.Errorf("LeftSkewed(%d).Turns() = %d, want 0", n, got)
		}
		if got := RightSkewed(n).Turns(); got != 0 {
			t.Errorf("RightSkewed(%d).Turns() = %d, want 0", n, got)
		}
	}
}

func TestSizeConsistency(t *testing.T) {
	for name, tr := range shapes(37) {
		for v := int32(0); v < int32(tr.Len()); v++ {
			if tr.IsLeaf(v) {
				if tr.Size(v) != 1 {
					t.Fatalf("%s: leaf %d has size %d", name, v, tr.Size(v))
				}
				continue
			}
			want := tr.Size(tr.Left[v]) + tr.Size(tr.Right[v])
			if tr.Size(v) != want {
				t.Fatalf("%s: node %d size %d != children sum %d", name, v, tr.Size(v), want)
			}
		}
	}
}

func TestIsAncestor(t *testing.T) {
	tr := Complete(8)
	if !tr.IsAncestor(tr.Root, tr.Root) {
		t.Fatal("root not ancestor of itself")
	}
	for v := int32(0); v < int32(tr.Len()); v++ {
		if !tr.IsAncestor(tr.Root, v) {
			t.Fatalf("root not ancestor of %d", v)
		}
		if v != tr.Root && tr.IsAncestor(v, tr.Root) {
			t.Fatalf("non-root %d claimed ancestor of root", v)
		}
		if !tr.IsLeaf(v) {
			l, r := tr.Left[v], tr.Right[v]
			if !tr.IsAncestor(v, l) || !tr.IsAncestor(v, r) {
				t.Fatalf("node %d not ancestor of its children", v)
			}
			if tr.IsAncestor(l, r) || tr.IsAncestor(r, l) {
				t.Fatalf("siblings of %d claimed related", v)
			}
		}
	}
}

func TestChildToward(t *testing.T) {
	tr := Zigzag(12)
	// For every internal u and every proper descendant v, ChildToward must
	// return the child of u on the u->v path.
	for u := int32(0); u < int32(tr.Len()); u++ {
		if tr.IsLeaf(u) {
			continue
		}
		for v := int32(0); v < int32(tr.Len()); v++ {
			if v == u || !tr.IsAncestor(u, v) {
				continue
			}
			c := tr.ChildToward(u, v)
			if tr.Parent[c] != u {
				t.Fatalf("ChildToward(%d,%d) = %d is not a child of %d", u, v, c, u)
			}
			if !tr.IsAncestor(c, v) {
				t.Fatalf("ChildToward(%d,%d) = %d is not an ancestor of %d", u, v, c, v)
			}
		}
	}
}

func TestSplitsRoundTrip(t *testing.T) {
	for name, tr := range shapes(23) {
		rebuilt := New(tr.N, FromSplits(tr.Splits()))
		if !tr.Equal(rebuilt) {
			t.Errorf("%s: splits round-trip changed the tree", name)
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	if Complete(9).Equal(Zigzag(9)) {
		t.Fatal("distinct shapes compared equal")
	}
	if Complete(9).Equal(Complete(10)) {
		t.Fatal("different sizes compared equal")
	}
}

func TestRandomSplitIsReproducible(t *testing.T) {
	a := RandomSplit(40, rand.New(rand.NewSource(7)))
	b := RandomSplit(40, rand.New(rand.NewSource(7)))
	if !a.Equal(b) {
		t.Fatal("same seed produced different trees")
	}
	c := RandomSplit(40, rand.New(rand.NewSource(8)))
	if a.Equal(c) {
		t.Fatal("different seeds produced identical trees (astronomically unlikely)")
	}
}

// Property: every randomly generated tree validates, has 2n-1 nodes and a
// heavy chain whose node sizes strictly decrease.
func TestRandomTreeProperties(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%60 + 2
		tr := RandomSplit(n, rand.New(rand.NewSource(seed)))
		if err := tr.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		chain := tr.HeavyChain()
		for i := 1; i < len(chain); i++ {
			if tr.Size(chain[i]) >= tr.Size(chain[i-1]) {
				return false
			}
		}
		return tr.Len() == 2*n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the chain decomposition of Lemma 3.3 holds for the threshold
// i^2 whenever i^2 < size(root) <= (i+1)^2: the chain has at most 2i+1
// nodes and the off-chain sizes sum to at most 2i.
func TestChainDecompositionLemma(t *testing.T) {
	check := func(tr *Tree, name string) {
		n := tr.Size(tr.Root)
		i := 0
		for (i+1)*(i+1) < n {
			i++
		}
		// Now i^2 < n <= (i+1)^2.
		if i == 0 {
			return
		}
		chain, offs := tr.ChainDecomposition(tr.Root, i*i)
		if len(chain) > 2*i+1 {
			t.Errorf("%s n=%d: chain length %d exceeds 2i+1=%d", name, n, len(chain), 2*i+1)
		}
		sum := 0
		for _, s := range offs {
			sum += s
		}
		// n_1+...+n_{k-1} <= 2i per the proof of Lemma 3.3 (the last chain
		// node's children are not off-chain weights).
		last := chain[len(chain)-1]
		if sum > n-tr.Size(last) {
			t.Errorf("%s n=%d: off-chain sum %d exceeds size deficit %d", name, n, sum, n-tr.Size(last))
		}
		if sum > 2*i {
			t.Errorf("%s n=%d: off-chain sum %d exceeds 2i=%d", name, n, sum, 2*i)
		}
	}
	for _, n := range []int{5, 10, 17, 26, 50, 101, 300} {
		for name, tr := range shapes(n) {
			check(tr, name)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(200)
		check(RandomSplit(n, rng), "random-extra")
	}
}

func TestRenderContainsAllSpans(t *testing.T) {
	tr := Complete(5)
	out := tr.Render(nil)
	for v := int32(0); v < int32(tr.Len()); v++ {
		i, j := tr.Span(v)
		want := "(" + itoa(i) + "," + itoa(j) + ")"
		if !contains(out, want) {
			t.Errorf("render missing node %s:\n%s", want, out)
		}
	}
}

func TestRenderCompactMentionsChain(t *testing.T) {
	tr := Zigzag(20)
	out := tr.RenderCompact(9)
	if !contains(out, "chain (threshold 9)") || !contains(out, "off-chain") {
		t.Errorf("compact render malformed:\n%s", out)
	}
}

func TestWeightedPathLength(t *testing.T) {
	// Complete tree over 4 leaves: all leaves at depth 2.
	tr := Complete(4)
	w := []int64{1, 2, 3, 4}
	if got := tr.WeightedPathLength(w); got != 2*(1+2+3+4) {
		t.Fatalf("WPL = %d, want %d", got, 2*10)
	}
	// Left spine over 3 leaves: depths are 2,2,1 for leaves 0,1,2.
	sp := LeftSkewed(3)
	if got := sp.WeightedPathLength([]int64{1, 1, 1}); got != 5 {
		t.Fatalf("spine WPL = %d, want 5", got)
	}
}

func TestInternalCount(t *testing.T) {
	for _, n := range []int{1, 2, 9, 31} {
		if got := Complete(n).InternalCount(); got != n-1 {
			t.Errorf("InternalCount(n=%d) = %d, want %d", n, got, n-1)
		}
	}
}

func TestNodeBySpan(t *testing.T) {
	tr := Complete(6)
	v := tr.NodeBySpan(0, 6)
	if v != tr.Root {
		t.Fatalf("NodeBySpan(0,6) = %d, want root", v)
	}
	if tr.NodeBySpan(2, 2) != None {
		t.Fatal("bogus span found")
	}
}

func TestBadSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range split did not panic")
		}
	}()
	New(4, func(i, j int) int { return j })
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
