package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sublineardp"
	"sublineardp/internal/calibrate"
	"sublineardp/internal/problems"
	"sublineardp/internal/wire"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postSolve(t *testing.T, url string, req *wire.Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"dpserved_requests_total",
		"dpserved_cache_hits_total",
		"dpserved_solve_latency_seconds_bucket{le=\"+Inf\"}",
		"# TYPE dpserved_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestSolveMatchesDirectSolve(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	req := &wire.Request{
		ID:       "t-1",
		Kind:     wire.KindMatrixChain,
		Dims:     []int{30, 35, 15, 5, 10, 20, 25},
		WantTree: true,
	}
	resp, body := postSolve(t, hs.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wr wire.Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.ID != "t-1" || wr.Kind != wire.KindMatrixChain {
		t.Fatalf("echo fields wrong: %+v", wr)
	}
	if wr.Cost != int64(problems.CLRSOptimalCost) {
		t.Fatalf("cost %d, want %d", wr.Cost, problems.CLRSOptimalCost)
	}
	direct, err := sublineardp.MustNewSolver(sublineardp.EngineAuto).
		Solve(context.Background(), problems.CLRSMatrixChain())
	if err != nil {
		t.Fatal(err)
	}
	if wr.TableDigest != wire.TableDigest(direct.Table) {
		t.Fatal("served table digest differs from direct solve")
	}
	if wr.Tree == "" {
		t.Fatal("want_tree set but no tree returned")
	}
	if m := srv.Metrics(); m.OK != 1 || m.Solved != 1 || m.CacheHits != 0 {
		t.Fatalf("metrics %+v, want 1 ok / 1 solved", m)
	}
}

func TestBadRequestsAre400(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxN: 8})
	cases := []*wire.Request{
		{Kind: "nope"},
		{Kind: wire.KindMatrixChain, Dims: []int{4}},
		{Kind: wire.KindOBST, Alpha: []int64{1}, Beta: []int64{1, 2}},
		{Kind: wire.KindMatrixChain, Dims: []int{1, 2, 3}, Options: wire.Options{Engine: "warp-drive"}},
		{Kind: wire.KindMatrixChain, Dims: []int{1, 2, 3}, Options: wire.Options{Mode: "frantic"}},
		// n=9 exceeds MaxN=8
		{Kind: wire.KindMatrixChain, Dims: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	for i, req := range cases {
		resp, body := postSolve(t, hs.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s), want 400", i, resp.StatusCode, body)
		}
		var eb wire.ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" || eb.Code != 400 {
			t.Errorf("case %d: malformed error body %s", i, body)
		}
	}
	// Malformed JSON entirely.
	resp, err := http.Post(hs.URL+"/solve", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if m := srv.Metrics(); m.BadRequests != int64(len(cases))+1 || m.OK != 0 {
		t.Errorf("metrics %+v, want %d bad requests", srv.Metrics(), len(cases)+1)
	}
}

// TestResourcePolicyRejections pins the engine-aware admission policy:
// O(n^4)-memory engines get the stricter MaxNHeavy size bound, and the
// per-request workers option is capped — both are single-request
// denial-of-service vectors otherwise.
func TestResourcePolicyRejections(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxNHeavy: 16, MaxWorkers: 8})
	bigDims := make([]int, 20) // n=19 > MaxNHeavy, fine for default engines
	for i := range bigDims {
		bigDims[i] = i + 2
	}
	rejected := []*wire.Request{
		{Kind: wire.KindMatrixChain, Dims: bigDims, Options: wire.Options{Engine: "hlv-dense"}},
		{Kind: wire.KindMatrixChain, Dims: bigDims, Options: wire.Options{Engine: "rytter"}},
		{Kind: wire.KindMatrixChain, Dims: bigDims, Options: wire.Options{Engine: "semiring"}},
		{Kind: wire.KindMatrixChain, Dims: []int{2, 3, 4}, Options: wire.Options{Workers: 9}},
	}
	for i, req := range rejected {
		resp, body := postSolve(t, hs.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s), want 400", i, resp.StatusCode, body)
		}
	}
	accepted := []*wire.Request{
		// Same size is fine on the banded engine...
		{Kind: wire.KindMatrixChain, Dims: bigDims, Options: wire.Options{Engine: "hlv-banded"}},
		// ...and on the O(n^2)-memory blocked engine, which is exempt
		// from the heavy cap by design — it exists for big instances.
		{Kind: wire.KindMatrixChain, Dims: bigDims, Options: wire.Options{Engine: "blocked"}},
		// ...and a small instance is fine on a heavy engine.
		{Kind: wire.KindMatrixChain, Dims: []int{2, 3, 4}, Options: wire.Options{Engine: "hlv-dense", Workers: 8}},
	}
	for i, req := range accepted {
		resp, body := postSolve(t, hs.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("accepted case %d: status %d (%s), want 200", i, resp.StatusCode, body)
		}
	}
	if m := srv.Metrics(); m.BadRequests != int64(len(rejected)) || m.OK != int64(len(accepted)) {
		t.Errorf("metrics %+v, want %d rejections / %d ok", m, len(rejected), len(accepted))
	}
}

func TestCacheHitServedWithoutSolving(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	req := &wire.Request{Kind: wire.KindOBST,
		Alpha: []int64{1, 2, 1, 0, 1}, Beta: []int64{4, 2, 6, 3}}

	_, body1 := postSolve(t, hs.URL, req)
	resp2, body2 := postSolve(t, hs.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second solve: %d %s", resp2.StatusCode, body2)
	}
	var r1, r2 wire.Response
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cached || !r2.Cached {
		t.Fatalf("cached flags: first %v second %v, want false/true", r1.Cached, r2.Cached)
	}
	if r1.Cost != r2.Cost || r1.TableDigest != r2.TableDigest {
		t.Fatal("cached response differs from solved response")
	}
	m := srv.Metrics()
	if m.Solved != 1 || m.CacheHits != 1 || m.BatchInstances != 1 {
		t.Fatalf("metrics %+v, want 1 solved / 1 hit / 1 batched instance", m)
	}
}

func TestDifferentOptionsDoNotShareCacheEntries(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	base := &wire.Request{Kind: wire.KindMatrixChain, Dims: []int{8, 3, 9, 4, 7, 2, 8}}
	banded := *base
	banded.Options = wire.Options{Engine: "hlv-banded", BandRadius: 3}
	_, b1 := postSolve(t, hs.URL, base)
	_, b2 := postSolve(t, hs.URL, &banded)
	var r1, r2 wire.Response
	json.Unmarshal(b1, &r1)
	json.Unmarshal(b2, &r2)
	if r2.Cached {
		t.Fatal("different options hit the same cache entry")
	}
	if r1.TableDigest != r2.TableDigest {
		t.Fatal("engines disagree on the table") // conformance would have caught this too
	}
	if m := srv.Metrics(); m.Solved != 2 || m.CacheHits != 0 {
		t.Fatalf("metrics %+v, want 2 solved / 0 hits", m)
	}
}

func TestAdmissionQueueShedsWith503(t *testing.T) {
	// QueueDepth 1 and a long batch window: the first request occupies
	// the only slot inside the window, the second is shed immediately.
	srv, hs := newTestServer(t, Config{QueueDepth: 1, BatchWindow: 300 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSolve(t, hs.URL, &wire.Request{Kind: wire.KindMatrixChain, Dims: []int{2, 3, 4}})
	}()
	// Wait for the first request to be admitted.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postSolve(t, hs.URL, &wire.Request{Kind: wire.KindMatrixChain, Dims: []int{5, 6, 7}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	wg.Wait()
	if m := srv.Metrics(); m.RejectedFull != 1 {
		t.Fatalf("metrics %+v, want 1 rejection", m)
	}
}

func TestRequestTimeoutIs504(t *testing.T) {
	srv, hs := newTestServer(t, Config{RequestTimeout: time.Millisecond})
	// A banded solve of a big instance cannot finish in 1ms.
	dims := make([]int, 301)
	for i := range dims {
		dims[i] = (i*37)%97 + 3
	}
	req := &wire.Request{Kind: wire.KindMatrixChain, Dims: dims,
		Options: wire.Options{Engine: "hlv-banded"}}
	resp, body := postSolve(t, hs.URL, req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if m := srv.Metrics(); m.Timeouts != 1 {
		t.Fatalf("metrics %+v, want 1 timeout", m)
	}
}

func TestBatcherCoalescesAWindow(t *testing.T) {
	// Distinct instances arriving within one long window must be folded
	// into few SolveBatch dispatches, not one per request.
	srv, hs := newTestServer(t, Config{BatchWindow: 150 * time.Millisecond, MaxBatch: 64})
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &wire.Request{Kind: wire.KindMatrixChain,
				Dims: []int{i + 2, i + 3, i + 4, i + 5}}
			resp, body := postSolve(t, hs.URL, req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("req %d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	m := srv.Metrics()
	if m.Solved != n || m.BatchInstances != n {
		t.Fatalf("metrics %+v, want %d solved instances", m, n)
	}
	if m.Batches >= n/2 {
		t.Fatalf("%d batches for %d concurrent requests: batcher not coalescing", m.Batches, n)
	}
}

// A calibration profile attached to the server (dpserved -calibration)
// re-routes auto solves by its measured thresholds — here a profile
// whose tiny cutoffs push a modest request onto the pipelined tile
// engine the defaults would never choose at that size — while a request
// that sets the same knobs explicitly keeps its own values.
func TestCalibrationProfileRoutesAutoSolves(t *testing.T) {
	_, hs := newTestServer(t, Config{Calibration: &sublineardp.Calibration{
		Schema:          calibrate.Schema,
		AutoCutoff:      4,
		AutoLargeCutoff: 4,
		TileSize:        8,
	}})
	dims := make([]int, 21) // n = 20: sequential under default routing
	for i := range dims {
		dims[i] = (i*7)%13 + 1
	}

	resp, body := postSolve(t, hs.URL, &wire.Request{
		ID: "cal-1", Kind: wire.KindMatrixChain, Dims: dims,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wr wire.Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Engine != sublineardp.EngineBlockedPipe {
		t.Fatalf("calibrated auto solve ran %q, want %q", wr.Engine, sublineardp.EngineBlockedPipe)
	}

	resp, body = postSolve(t, hs.URL, &wire.Request{
		ID: "cal-2", Kind: wire.KindMatrixChain, Dims: dims,
		Options: wire.Options{AutoCutoff: 64},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Engine != sublineardp.EngineSequential {
		t.Fatalf("explicit auto_cutoff lost to the server profile: engine %q", wr.Engine)
	}
}
