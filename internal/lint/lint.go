package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one analyzer diagnostic, anchored to a source position.
type Finding struct {
	// Check is the analyzer's stable ID ("keycoverage", "ctxpoll", ...).
	Check string `json:"check"`
	// File is the path relative to the program root; Line is 1-based.
	File string `json:"file"`
	Line int    `json:"line"`
	// Message states the violated invariant and how to discharge it.
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// An Analyzer checks one repo invariant over a loaded Program.
type Analyzer interface {
	// Name is the check ID findings carry and //lint:allow references.
	Name() string
	// Doc is a one-line description for -checks listings.
	Doc() string
	Run(prog *Program) []Finding
}

// Checks reserved by the framework itself (never valid analyzer names):
// allowdead flags a //lint:allow directive that suppresses nothing,
// allowform flags a malformed directive, and typecheck surfaces
// type-checker diagnostics so a broken tree cannot pass as clean.
const (
	CheckAllowDead = "allowdead"
	CheckAllowForm = "allowform"
	CheckTypes     = "typecheck"
)

// Run executes the analyzers over prog and returns the surviving
// findings sorted by position: analyzer findings minus the ones
// discharged by well-formed //lint:allow directives, plus framework
// findings for malformed or dead directives and type errors.
//
// The suppression contract: `//lint:allow <check> <reason>` discharges
// findings of <check> on its own line when it trails code, or on the
// next line when it stands alone (directives stack — a run of
// standalone directives all target the first non-directive line).
// A directive that discharges nothing is an allowdead finding, so
// stale annotations fail the suite exactly like missing ones.
func Run(prog *Program, analyzers []Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		raw = append(raw, a.Run(prog)...)
	}
	directives, malformed := collectDirectives(prog)

	var out []Finding
	for _, f := range raw {
		if d := directives.match(f); d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	out = append(out, malformed...)
	for _, d := range directives.all {
		if !d.used {
			out = append(out, Finding{
				Check: CheckAllowDead, File: d.file, Line: d.line,
				Message: fmt.Sprintf("//lint:allow %s suppresses no finding — stale annotation, delete it or restore the code it covered", d.check),
			})
		}
	}
	for _, err := range prog.TypeErrors {
		out = append(out, Finding{Check: CheckTypes, File: "", Line: 0, Message: err.Error()})
	}
	relativize(prog.Root, out)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Check < b.Check || (a.Check == b.Check && a.Message < b.Message)
	})
	return out
}

func relativize(root string, fs []Finding) {
	for i := range fs {
		if rel, err := filepath.Rel(root, fs[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].File = filepath.ToSlash(rel)
		}
	}
}

// posn converts a token.Pos into a Finding anchor.
func posn(prog *Program, pos token.Pos) (string, int) {
	p := prog.Fset.Position(pos)
	return p.Filename, p.Line
}

func finding(prog *Program, check string, pos token.Pos, format string, args ...any) Finding {
	file, line := posn(prog, pos)
	return Finding{Check: check, File: file, Line: line, Message: fmt.Sprintf(format, args...)}
}

type directive struct {
	file   string
	line   int // line the comment sits on
	target int // line whose findings it discharges
	check  string
	reason string
	used   bool
}

type directiveSet struct {
	all   []*directive
	index map[string][]*directive // file -> directives
}

func (s *directiveSet) match(f Finding) *directive {
	for _, d := range s.index[f.File] {
		if d.check == f.Check && d.target == f.Line {
			return d
		}
	}
	return nil
}

// collectDirectives scans every comment of every loaded file for
// allow directives, resolving each to its target line. Malformed
// directives (missing check or reason) come back as allowform findings.
func collectDirectives(prog *Program) (*directiveSet, []Finding) {
	set := &directiveSet{index: map[string][]*directive{}}
	var malformed []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			codeLines := map[int]bool{} // lines holding code before a comment starts
			src := sourceLines(prog, file.Package)
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					base := prog.Fset.Position(c.Slash)
					for off, text := range strings.Split(c.Text, "\n") {
						rest, ok := cutDirective(text)
						if !ok {
							continue
						}
						line := base.Line + off
						check, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
						reason = strings.TrimSpace(reason)
						if check == "" || reason == "" {
							malformed = append(malformed, Finding{
								Check: CheckAllowForm, File: base.Filename, Line: line,
								Message: "malformed directive: want //lint:allow <check> <reason>",
							})
							continue
						}
						d := &directive{file: base.Filename, line: line, check: check, reason: reason}
						if lineHasCode(src, line, prog.Fset.Position(c.Slash).Column) {
							codeLines[line] = true
						}
						set.all = append(set.all, d)
						set.index[d.file] = append(set.index[d.file], d)
					}
				}
			}
			// Resolve targets: trailing directives cover their own line;
			// standalone ones cover the next non-directive line (stacking).
			byLine := map[int]bool{}
			for _, d := range set.index[posFile(prog, file.Package)] {
				if !codeLines[d.line] {
					byLine[d.line] = true
				}
			}
			for _, d := range set.index[posFile(prog, file.Package)] {
				if codeLines[d.line] {
					d.target = d.line
					continue
				}
				t := d.line + 1
				for byLine[t] {
					t++
				}
				d.target = t
			}
		}
	}
	return set, malformed
}

func cutDirective(text string) (string, bool) {
	for _, prefix := range []string{"//lint:allow ", "// lint:allow "} {
		if rest, ok := strings.CutPrefix(text, prefix); ok {
			return rest, true
		}
	}
	return "", false
}

func posFile(prog *Program, pos token.Pos) string {
	return prog.Fset.Position(pos).Filename
}

var srcCache = map[string][]string{}

// sourceLines reads (and caches) the raw lines of the file containing
// pos, used to classify directives as trailing vs standalone.
func sourceLines(prog *Program, pos token.Pos) []string {
	name := posFile(prog, pos)
	if lines, ok := srcCache[name]; ok {
		return lines
	}
	data, err := os.ReadFile(name)
	if err != nil {
		srcCache[name] = nil
		return nil
	}
	lines := strings.Split(string(data), "\n")
	srcCache[name] = lines
	return lines
}

// lineHasCode reports whether line carries non-comment source before
// column col (1-based) — i.e. the comment at col trails code.
func lineHasCode(src []string, line, col int) bool {
	if line-1 >= len(src) || line < 1 {
		return false
	}
	prefix := src[line-1]
	if col-1 <= len(prefix) {
		prefix = prefix[:col-1]
	}
	return strings.TrimSpace(prefix) != ""
}
