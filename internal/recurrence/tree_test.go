package recurrence

import (
	"strings"
	"testing"

	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
)

// fixedInstance builds a tiny instance with known costs: f(i,k,j) = 1 for
// every split, init = 0, so every tree over n leaves costs n-1 and every
// table entry c(i,j) = span-1.
func fixedInstance(n int) *Instance {
	return &Instance{
		N:    n,
		Name: "unit-f",
		Init: func(i int) cost.Cost { return 0 },
		F:    func(i, k, j int) cost.Cost { return 1 },
	}
}

func solvedTable(in *Instance) *Table {
	// Tiny local DP to avoid importing seq (which would create a cycle:
	// seq already imports recurrence).
	t := NewTable(in.N)
	for i := 0; i < in.N; i++ {
		t.Set(i, i+1, in.Init(i))
	}
	for span := 2; span <= in.N; span++ {
		for i := 0; i+span <= in.N; i++ {
			j := i + span
			best := cost.Inf
			for k := i + 1; k < j; k++ {
				v := cost.Add3(in.F(i, k, j), t.At(i, k), t.At(k, j))
				if v < best {
					best = v
				}
			}
			t.Set(i, j, best)
		}
	}
	return t
}

func TestTreeCostUnitInstance(t *testing.T) {
	in := fixedInstance(9)
	for _, tr := range []*btree.Tree{btree.Complete(9), btree.Zigzag(9), btree.LeftSkewed(9)} {
		if got := TreeCost(in, tr); got != 8 {
			t.Errorf("TreeCost = %d, want 8", got)
		}
	}
}

func TestTreeCostMismatchedSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	TreeCost(fixedInstance(5), btree.Complete(6))
}

func TestExtractTreeRoundTrip(t *testing.T) {
	in := fixedInstance(11)
	tbl := solvedTable(in)
	tr, err := ExtractTree(in, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := TreeCost(in, tr); got != tbl.Root() {
		t.Fatalf("extracted tree costs %d, table root %d", got, tbl.Root())
	}
}

func TestExtractTreeRejectsNonFixpoint(t *testing.T) {
	in := fixedInstance(6)
	tbl := solvedTable(in)
	// Perturb the root: the lazy walk always visits it, and no split can
	// realise the shifted value.
	tbl.Set(0, 6, tbl.At(0, 6)+1)
	_, err := ExtractTree(in, tbl)
	if err == nil || !strings.Contains(err.Error(), "fixed point") {
		t.Fatalf("perturbed table accepted: %v", err)
	}
}

// Extraction is lazy — only spans of the answer tree are scanned — so a
// corruption off the optimal path goes unvisited and reconstruction
// still succeeds, returning the (intact) optimal tree.
func TestExtractTreeIgnoresOffPathCells(t *testing.T) {
	in := fixedInstance(11)
	tbl := solvedTable(in)
	want, err := ExtractTree(in, tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Find a span that is not a node of the optimal tree and corrupt it.
	onPath := make(map[[2]int]bool)
	for v := int32(0); v < int32(want.Len()); v++ {
		i, j := want.Span(v)
		onPath[[2]int{i, j}] = true
	}
	corrupted := false
	for i := 0; i <= 11 && !corrupted; i++ {
		for j := i + 2; j <= 11; j++ {
			if !onPath[[2]int{i, j}] {
				tbl.Set(i, j, tbl.At(i, j)+1)
				corrupted = true
				break
			}
		}
	}
	if !corrupted {
		t.Fatal("every span on the optimal path?")
	}
	got, err := ExtractTree(in, tbl)
	if err != nil {
		t.Fatalf("off-path corruption broke lazy extraction: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("off-path corruption changed the extracted tree")
	}
}

func TestExtractTreeRejectsInfiniteRoot(t *testing.T) {
	in := fixedInstance(6)
	if _, err := ExtractTree(in, NewTable(6)); err == nil {
		t.Fatal("all-Inf table accepted")
	}
}

func TestExtractTreeRejectsSizeMismatch(t *testing.T) {
	in := fixedInstance(6)
	if _, err := ExtractTree(in, NewTable(7)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
