package seq

import (
	"context"
	"fmt"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// ChainResult carries a sequential chain solve: the full value vector,
// the predecessor table for witness reconstruction, and the exact number
// of candidate evaluations (the work the LLP engine's work-efficiency is
// audited against).
type ChainResult struct {
	Values *recurrence.Vector
	preds  []int32 // best predecessor per index; -1 for c(0) and unreached cells
	N      int
	Work   int64
	zero   cost.Cost
}

// SolveChain runs the O(sum of window sizes) prefix dynamic program
// under the chain's declared algebra. Ties between predecessors resolve
// to the smallest k, making the reconstruction deterministic.
func SolveChain(c *recurrence.Chain) *ChainResult {
	res, err := SolveChainCtx(context.Background(), c)
	if err != nil {
		// Only reachable for an unregistered chain algebra; the
		// background context never cancels.
		panic(err)
	}
	return res
}

// SolveChainCtx is SolveChain with cooperative cancellation, checked
// once per index. A cancelled or expired context aborts with a nil
// ChainResult and ctx.Err().
func SolveChainCtx(ctx context.Context, c *recurrence.Chain) (*ChainResult, error) {
	return SolveChainSemiringCtx(ctx, c, nil)
}

// SolveChainSemiringCtx is SolveChainCtx under an explicit algebra
// override (nil = the chain's declared algebra, min-plus by default).
// Each index folds its candidates in ascending k order through the
// kernel's Combine/Extend — the same fold the LLP engine's bulk
// ReduceRelax runs — so the two engines agree bitwise under any lawful
// algebra with finite transition weights.
func SolveChainSemiringCtx(ctx context.Context, c *recurrence.Chain, sr algebra.Semiring) (*ChainResult, error) {
	k, err := algebra.Resolve(sr, c.Algebra)
	if err != nil {
		return nil, err
	}
	n := c.N
	res := &ChainResult{
		Values: recurrence.NewVector(n),
		preds:  make([]int32, n+1),
		N:      n,
		zero:   k.Zero(),
	}
	for i := range res.preds { //lint:allow ctxpoll O(n) pred-sentinel fill before the polled fold
		res.preds[i] = -1
	}
	values := res.Values.Data()
	values[0] = k.One()
	for j := 1; j <= n; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lo := c.Lo(j)
		best := k.Zero()
		bestK := int32(-1)
		for kk := lo; kk < j; kk++ {
			v := k.Extend(values[kk], c.F(kk, j)) //lint:allow bulkonly per-candidate fallback when the chain supplies no FRow; FRow chains take the ReduceRelax bulk path
			// Strict improvement keeps the smallest k on ties; best
			// advances by Combine, not replacement, so the fold matches
			// the bulk kernels bitwise even for non-selective algebras.
			if k.Better(v, best) {
				bestK = int32(kk)
			}
			best = k.Combine(best, v)
		}
		res.Work += int64(j - lo)
		values[j] = best
		res.preds[j] = bestK
	}
	return res, nil
}

// Cost returns the optimal value c(N).
func (r *ChainResult) Cost() cost.Cost { return r.Values.Root() }

// Feasible reports that c(N) holds a solution — its value is not the
// algebra's Zero.
func (r *ChainResult) Feasible() bool {
	root := r.Cost()
	if r.zero == cost.Inf {
		return !cost.IsInf(root)
	}
	return root != r.zero
}

// Pred returns the optimal predecessor recorded for index j, or -1 for
// index 0 and indices no candidate realised.
func (r *ChainResult) Pred(j int) int { return int(r.preds[j]) }

// Path reconstructs the witness breakpoint sequence 0 = k_0 < k_1 < ...
// < k_m = N by walking the predecessor table back from N. It panics when
// the chain holds no solution (call Feasible first) or the predecessor
// table is broken mid-walk.
func (r *ChainResult) Path() []int {
	if !r.Feasible() {
		panic("seq: no chain optimum to reconstruct")
	}
	path := []int{r.N}
	for j := r.N; j > 0; {
		p := r.Pred(j)
		if p < 0 || p >= j {
			panic(fmt.Sprintf("seq: missing chain predecessor at index %d", j))
		}
		path = append(path, p)
		j = p
	}
	// Reverse into ascending order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// BruteForceChain computes c(N) by exhaustive recursion over all
// breakpoint sequences under the chain's declared algebra — exponential,
// independent of the DP sweep order, the tiny-n ground truth for the
// chain engines.
func BruteForceChain(c *recurrence.Chain) cost.Cost {
	k, err := algebra.Resolve(nil, c.Algebra)
	if err != nil {
		panic(err)
	}
	var rec func(j int) cost.Cost
	rec = func(j int) cost.Cost {
		if j == 0 {
			return k.One()
		}
		best := k.Zero()
		for kk := c.Lo(j); kk < j; kk++ {
			best = k.Combine(best, k.Extend(rec(kk), c.F(kk, j))) //lint:allow bulkonly brute-force recursive ground truth for tiny n; test-only by construction
		}
		return best
	}
	return rec(c.N)
}
