// Package core implements the paper's contribution: the sublinear CREW
// PRAM algorithm for dynamic-programming recurrences of form (*), built
// from the three parallel operations
//
//	a-activate (eq. 1a/1b)  pw'(i,j,i,k) <- min(pw'(i,j,i,k), f(i,k,j)+w'(k,j))
//	                        pw'(i,j,k,j) <- min(pw'(i,j,k,j), f(i,k,j)+w'(i,k))
//	a-square   (eq. 2c)     pw'(i,j,p,q) <- min(pw'(i,j,p,q),
//	                              min_{i<=r<p} pw'(i,j,r,q)+pw'(r,q,p,q),
//	                              min_{q<s<=j} pw'(i,j,p,s)+pw'(p,s,p,q))
//	a-pebble   (eq. 3)      w'(i,j) <- min_{i<=p<q<=j} pw'(i,j,p,q)+w'(p,q)
//
// iterated 2*ceil(sqrt(n)) times. Correctness follows from synchronising
// the iterations with the pebbling game of internal/pebble on an optimal
// tree (Section 4 of the paper): whenever the game pebbles a node, the
// corresponding w' entry has reached its true value by the end of the same
// iteration, and Lemma 3.3 bounds the game by 2*ceil(sqrt(n)) moves.
//
// Two storage variants are provided:
//
//   - Dense (Sections 2-4): the full pw' array over all (i,j,p,q) with
//     i <= p < q <= j. O(n^4) memory, O(n^5) work per a-square; with
//     log-time reductions this is the O(sqrt(n) log n) time,
//     O(n^5 / log n) processor algorithm.
//
//   - Banded (Section 5): only partial weights whose deficit
//     (j-i)-(q-p) is at most D = 2*ceil(sqrt(n)) are stored — O(n^3)
//     entries with O(sqrt n) square candidates each, for O(n^3.5) work
//     per iteration and the headline O(n^3.5 / log n) processor count.
//     The paper's Section 5 is a sketch; making it concrete requires one
//     completion: activate edges whose off-chain sibling exceeds the band
//     cannot be stored, so the banded a-pebble additionally evaluates the
//     direct combine min_k f(i,k,j)+w'(i,k)+w'(k,j). In the pebbling game
//     this is exactly the activate-then-pebble step at a node both of
//     whose children are already pebbled (the junction node v_k in the
//     Lemma 3.3 chain decomposition), so the lemma's schedule — and hence
//     the 2*ceil(sqrt(n)) bound — is preserved; DESIGN.md discusses this.
//     The optional Window schedule restricts the pebble step at iterations
//     2l-1 and 2l to spans in ((l-1)^2, l^2], the processor-count
//     optimisation of Section 5.
//
// Updates run in one of two modes. Synchronous (the PRAM-faithful
// default) double-buffers so every operation reads only pre-operation
// state; an optional pram.Auditor checks that discipline together with
// exclusive writes. Chaotic applies updates in place with a single
// worker, modelling asynchronous ("chaotic") relaxation; every
// intermediate value is still the weight of some feasible (partial) tree,
// so the fixpoint is unchanged and convergence can only accelerate — the
// ablation benchmarks quantify by how much.
package core
