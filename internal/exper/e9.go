package exper

import (
	"fmt"
	"strings"

	"sublineardp/internal/btree"
	"sublineardp/internal/pebble"
)

// E9Figures reproduces the paper's two figures as ASCII: Figure 1 (a
// binary tree and its chain decomposition) and Figure 2 (zigzag, complete
// and skewed trees), plus a per-move trace of the pebbling game on the
// zigzag tree showing the quadratically accelerating pebble frontier.
func E9Figures(cfg Config) []*Table {
	n := 12
	traceN := 64
	if cfg.Quick {
		traceN = 25
	}

	fig2 := &Table{
		ID:       "E9",
		Title:    "Figure 2: zigzag, complete and skewed binary trees (n=8 leaves)",
		PaperRef: "Figure 2a/2b",
		Columns:  []string{"zigzag", "complete", "skewed"},
	}
	z := strings.Split(strings.TrimRight(btree.Zigzag(8).Render(nil), "\n"), "\n")
	c := strings.Split(strings.TrimRight(btree.Complete(8).Render(nil), "\n"), "\n")
	s := strings.Split(strings.TrimRight(btree.LeftSkewed(8).Render(nil), "\n"), "\n")
	rows := len(z)
	if len(c) > rows {
		rows = len(c)
	}
	if len(s) > rows {
		rows = len(s)
	}
	at := func(xs []string, i int) string {
		if i < len(xs) {
			return xs[i]
		}
		return ""
	}
	for i := 0; i < rows; i++ {
		fig2.AddRow(at(z, i), at(c, i), at(s, i))
	}

	fig1 := &Table{
		ID:       "E9",
		Title:    fmt.Sprintf("Figure 1: chain decomposition of Zigzag(%d) at threshold i^2", n),
		PaperRef: "Figure 1 and the proof of Lemma 3.3",
		Columns:  []string{"chain"},
	}
	i := 0
	for (i+1)*(i+1) < n {
		i++
	}
	for _, line := range strings.Split(strings.TrimRight(btree.Zigzag(n).RenderCompact(i*i), "\n"), "\n") {
		fig1.AddRow(line)
	}
	fig1.Note("threshold i^2 = %d for n = %d (i^2 < n <= (i+1)^2)", i*i, n)

	trace := &Table{
		ID:       "E9",
		Title:    fmt.Sprintf("Pebble-frontier trace on Zigzag(%d), HLV square rule", traceN),
		PaperRef: "Lemma 3.3 proof: after 2k moves every node of size <= k^2 is pebbled",
		Columns:  []string{"move", "pebbled nodes", "largest pebbled size", "invariant floor k^2"},
	}
	g := pebble.NewGame(btree.Zigzag(traceN), pebble.HLVRule)
	for !g.RootPebbled() {
		g.Move()
		k := g.Moves() / 2
		largest := 0
		for v := int32(0); v < int32(g.T.Len()); v++ {
			if g.Pebbled(v) && g.T.Size(v) > largest {
				largest = g.T.Size(v)
			}
		}
		trace.AddRow(g.Moves(), g.PebbledCount(), largest, k*k)
	}
	trace.Note("the frontier (largest pebbled size) grows quadratically in the move number, exactly the Lemma 3.3 mechanism")
	return []*Table{fig2, fig1, trace}
}
