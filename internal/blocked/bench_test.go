package blocked

import (
	"testing"

	"sublineardp/internal/problems"
	"sublineardp/internal/seq"
)

// Package-level rails on the constructor closure/FPanel path — the
// form a serving process actually receives instances in (dpbench's
// BENCH_core.json additionally measures the materialised form at
// n <= 1024; an O(n^3) F table would itself be the ceiling past that).
func benchmarkBlocked(b *testing.B, n, tile int) {
	in := problems.RandomMatrixChain(n, 50, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Solve(in, Options{TileSize: tile})
		_ = res.Table.Root()
	}
}

func BenchmarkBlockedN256(b *testing.B)  { benchmarkBlocked(b, 256, 0) }
func BenchmarkBlockedN1024(b *testing.B) { benchmarkBlocked(b, 1024, 0) }

func BenchmarkSequentialN1024(b *testing.B) {
	in := problems.RandomMatrixChain(1024, 50, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := seq.Solve(in)
		_ = res.Table.Root()
	}
}
