package sublineardp_test

import (
	"testing"

	"sublineardp"
	"sublineardp/internal/core"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/rytter"
	"sublineardp/internal/seq"
	"sublineardp/internal/wavefront"
)

// Cross-module edge cases that no single package test covers: infeasible
// splits (f = Inf), near-overflow weights, and degenerate sizes, checked
// across every solver at once.

func allTables(in *recurrence.Instance) map[string]*recurrence.Table {
	return map[string]*recurrence.Table{
		"seq":           seq.Solve(in).Table,
		"dense":         core.Solve(in, core.Options{Variant: core.Dense}).Table,
		"banded":        core.Solve(in, core.Options{Variant: core.Banded}).Table,
		"banded-window": core.Solve(in, core.Options{Variant: core.Banded, Window: true}).Table,
		"chaotic":       core.Solve(in, core.Options{Variant: core.Dense, Mode: core.Chaotic}).Table,
		"rytter":        rytter.Solve(in, rytter.Options{}).Table,
		"wavefront":     wavefront.Solve(in, wavefront.Options{}).Table,
	}
}

func requireAllEqual(t *testing.T, in *recurrence.Instance) map[string]*recurrence.Table {
	t.Helper()
	tables := allTables(in)
	want := tables["seq"]
	for name, got := range tables {
		if !got.Equal(want) {
			t.Fatalf("%s disagrees with sequential on %s: %v", name, in.Name, got.Diff(want, 3))
		}
	}
	return tables
}

// Forbidden splits: f(i,k,j) = Inf unless k == i+1 forces the right-spine
// tree; every solver must still find the unique feasible optimum.
func TestForbiddenSplitsForceSpine(t *testing.T) {
	n := 10
	in := &recurrence.Instance{
		N:    n,
		Name: "forced-spine",
		Init: func(i int) cost.Cost { return 1 },
		F: func(i, k, j int) cost.Cost {
			if k == i+1 {
				return 5
			}
			return cost.Inf
		},
	}
	tables := requireAllEqual(t, in)
	// Unique tree: right spine; cost = n leaves + (n-1) internal * 5.
	want := cost.Cost(n*1 + (n-1)*5)
	if got := tables["seq"].Root(); got != want {
		t.Fatalf("forced spine cost = %d, want %d", got, want)
	}
	tr, err := recurrence.ExtractTree(in, tables["banded"])
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != n-1 {
		t.Fatalf("forced tree height %d, want %d (spine)", tr.Height(), n-1)
	}
}

// Fully infeasible root: every split of (0,n) forbidden. The optimum is
// Inf and no solver may fabricate a finite value or overflow.
func TestFullyInfeasibleInstance(t *testing.T) {
	n := 8
	in := &recurrence.Instance{
		N:    n,
		Name: "infeasible-root",
		Init: func(i int) cost.Cost { return 1 },
		F: func(i, k, j int) cost.Cost {
			if i == 0 && j == n {
				return cost.Inf
			}
			return 1
		},
	}
	tables := requireAllEqual(t, in)
	if got := tables["seq"].Root(); !cost.IsInf(got) {
		t.Fatalf("infeasible root solved to %d", got)
	}
	// Sub-spans are still feasible.
	if got := tables["banded"].At(0, n-1); cost.IsInf(got) {
		t.Fatal("feasible sub-span not solved")
	}
}

// Near-overflow weights: values around Inf/8 must saturate, not wrap, and
// all solvers must agree (the saturation path is exercised millions of
// times in the squares).
func TestNearOverflowWeights(t *testing.T) {
	big := cost.Inf / 8
	in := &recurrence.Instance{
		N:    7,
		Name: "near-overflow",
		Init: func(i int) cost.Cost { return big },
		F:    func(i, k, j int) cost.Cost { return big },
	}
	tables := requireAllEqual(t, in)
	root := tables["seq"].Root()
	// 7 leaves + 6 internal nodes at Inf/8 each = 13*Inf/8 > Inf: the true
	// sum exceeds Inf, so the exact integer answer would overflow the
	// sentinel; saturation must report Inf rather than a wrapped value.
	if !cost.IsInf(root) {
		t.Fatalf("root = %d; expected saturated Inf", root)
	}
	if root < 0 {
		t.Fatal("overflow produced a negative cost")
	}
}

// Moderately large weights that do NOT overflow: exact agreement must
// hold at the boundary of the safe range.
func TestLargeButSafeWeights(t *testing.T) {
	big := cost.Inf / 64
	in := &recurrence.Instance{
		N:    6,
		Name: "large-safe",
		Init: func(i int) cost.Cost { return big },
		F:    func(i, k, j int) cost.Cost { return cost.Cost(i + k + j) },
	}
	tables := requireAllEqual(t, in)
	want := 6*big + cost.Cost(0) // leaves dominate; internal f small
	if got := tables["seq"].Root(); got < want {
		t.Fatalf("root %d below leaf mass %d", got, want)
	}
	if cost.IsInf(tables["seq"].Root()) {
		t.Fatal("safe weights saturated")
	}
}

func TestDegenerateSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		in := &recurrence.Instance{
			N:    n,
			Name: "degenerate",
			Init: func(i int) cost.Cost { return cost.Cost(i) },
			F:    func(i, k, j int) cost.Cost { return 1 },
		}
		requireAllEqual(t, in)
	}
}

// Zero-cost everything: the optimum is 0 and must not be confused with
// "unsolved" anywhere.
func TestAllZeroInstance(t *testing.T) {
	in := &recurrence.Instance{
		N:    9,
		Name: "all-zero",
		Init: func(i int) cost.Cost { return 0 },
		F:    func(i, k, j int) cost.Cost { return 0 },
	}
	tables := requireAllEqual(t, in)
	for i := 0; i <= 9; i++ {
		for j := i + 1; j <= 9; j++ {
			if got := tables["banded"].At(i, j); got != 0 {
				t.Fatalf("c(%d,%d) = %d, want 0", i, j, got)
			}
		}
	}
}

// The facade's ExtractTree must work for every solver's output table.
func TestExtractTreeFromEverySolver(t *testing.T) {
	in := sublineardp.NewMatrixChain([]int{7, 3, 9, 4, 8, 2, 6})
	for name, tbl := range allTables(in) {
		tr, err := recurrence.ExtractTree(in, tbl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := recurrence.TreeCost(in, tr); got != tbl.Root() {
			t.Fatalf("%s: tree cost %d != root %d", name, got, tbl.Root())
		}
	}
}
