// Package fixture pins the ctxpoll analyzer: the first loop is a true
// positive (no context reference at all), the second polls, the third
// passes the context onward, and the fourth is a suppressed
// O(1)-bounded negative.
package fixture

import "context"

// SolveFixtureCtx is the shape of an engine entry point: exported,
// Solve*Ctx, context parameter.
func SolveFixtureCtx(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // positive: never consults ctx
		total += i
	}
	for i := 0; i < n; i++ { // clean: polls
		if ctx.Err() != nil {
			return -1
		}
		total += i
	}
	for i := 0; i < n; i++ { // clean: delegates cancellation
		total += step(ctx, i)
	}
	//lint:allow ctxpoll O(1) warm-up, three iterations by construction
	for i := 0; i < 3; i++ {
		total++
	}
	return total
}

func step(ctx context.Context, i int) int {
	if ctx.Err() != nil {
		return 0
	}
	return i
}
