package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
	"sublineardp/internal/pebble"
	"sublineardp/internal/pram"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
)

type costC = cost.Cost

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func costInf() cost.Cost { return cost.Inf }

// allConfigs enumerates the solver configurations the equality tests sweep.
func allConfigs() map[string]Options {
	return map[string]Options{
		"dense-sync":     {Variant: Dense, Mode: Synchronous},
		"dense-chaotic":  {Variant: Dense, Mode: Chaotic},
		"banded-sync":    {Variant: Banded, Mode: Synchronous},
		"banded-chaotic": {Variant: Banded, Mode: Chaotic},
		"banded-window":  {Variant: Banded, Mode: Synchronous, Window: true},
		"dense-1worker":  {Variant: Dense, Mode: Synchronous, Workers: 1},
		"banded-3worker": {Variant: Banded, Mode: Synchronous, Workers: 3},
	}
}

func TestCLRSAllConfigs(t *testing.T) {
	in := problems.CLRSMatrixChain()
	want := seq.Solve(in).Table
	for name, opts := range allConfigs() {
		res := Solve(in, opts)
		if res.Cost() != problems.CLRSOptimalCost {
			t.Errorf("%s: cost = %d, want %d", name, res.Cost(), problems.CLRSOptimalCost)
		}
		if !res.Table.Equal(want) {
			t.Errorf("%s: table mismatch: %v", name, res.Table.Diff(want, 3))
		}
	}
}

func TestAllFamiliesAllConfigs(t *testing.T) {
	instances := []*recurrence.Instance{
		problems.RandomMatrixChain(13, 30, 1),
		problems.RandomOBST(11, 25, 2),
		problems.Triangulation(problems.RandomConvexPolygon(12, 300, 3)),
		problems.RandomInstance(14, 50, 4),
		problems.Zigzag(12),
		problems.Balanced(13),
		problems.Skewed(12),
	}
	for _, in := range instances {
		want := seq.Solve(in).Table
		for name, opts := range allConfigs() {
			res := Solve(in, opts)
			if !res.Table.Equal(want) {
				t.Errorf("%s on %s: mismatch: %v", name, in.Name, res.Table.Diff(want, 3))
			}
		}
	}
}

func TestIterationsWithinLemmaBound(t *testing.T) {
	// The fixed budget is 2*ceil(sqrt(n)); with Target set we learn the
	// true convergence iteration, which must be within the bound for every
	// shape, variant and mode.
	shapes := map[string]func(int) *recurrence.Instance{
		"zigzag":   problems.Zigzag,
		"balanced": problems.Balanced,
		"skewed":   problems.Skewed,
	}
	for shapeName, mk := range shapes {
		for _, n := range []int{4, 9, 16, 25} {
			in := mk(n)
			want := seq.Solve(in).Table
			for cfgName, opts := range allConfigs() {
				opts.Target = want
				res := Solve(in, opts)
				if res.ConvergedAt < 0 {
					t.Errorf("%s/%s n=%d: never converged in %d iterations",
						shapeName, cfgName, n, res.Iterations)
					continue
				}
				if res.ConvergedAt > pebble.LemmaBound(n) {
					t.Errorf("%s/%s n=%d: converged at iteration %d > bound %d",
						shapeName, cfgName, n, res.ConvergedAt, pebble.LemmaBound(n))
				}
			}
		}
	}
}

func TestAlgebraNoSlowerThanGame(t *testing.T) {
	// Section 4 couples the algorithm to the pebbling game: when the game
	// pebbles the root at move k, w'(0,n) is correct after iteration k.
	// Hence ConvergedAt (for the whole table) <= game moves on the optimal
	// tree... for the root; the full table can lag the root by at most the
	// deepest subtree's own game, still within the same move count because
	// the game pebbles every node, not just the root. Verify directly.
	for _, n := range []int{6, 10, 15, 21} {
		for seed := int64(0); seed < 4; seed++ {
			tr := btree.RandomSplit(n, newRand(seed))
			in := problems.Shaped(tr)
			want := seq.Solve(in).Table
			g := pebble.NewGame(tr, pebble.HLVRule)
			moves := g.Run(0)
			res := Solve(in, Options{Variant: Dense, Target: want})
			if res.ConvergedAt < 0 || res.ConvergedAt > moves {
				t.Errorf("n=%d seed=%d: algebra converged at %d, game needed %d moves",
					n, seed, res.ConvergedAt, moves)
			}
		}
	}
}

func TestChaoticNeverSlowerThanSync(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := problems.RandomInstance(12, 40, seed)
		want := seq.Solve(in).Table
		syncRes := Solve(in, Options{Variant: Dense, Mode: Synchronous, Target: want})
		chaRes := Solve(in, Options{Variant: Dense, Mode: Chaotic, Target: want})
		if chaRes.ConvergedAt > syncRes.ConvergedAt {
			t.Errorf("seed %d: chaotic converged at %d, sync at %d",
				seed, chaRes.ConvergedAt, syncRes.ConvergedAt)
		}
	}
}

func TestAuditCleanSynchronous(t *testing.T) {
	for _, variant := range []Variant{Dense, Banded} {
		in := problems.RandomMatrixChain(8, 20, 7)
		aud := &pram.Auditor{}
		res := Solve(in, Options{Variant: variant, Mode: Synchronous, Audit: aud, Workers: 2})
		if err := aud.Err(); err != nil {
			t.Errorf("%v: CREW audit failed: %v", variant, err)
		}
		if !res.Table.Equal(seq.Solve(in).Table) {
			t.Errorf("%v: audited run produced wrong table", variant)
		}
	}
}

func TestAuditFlagsChaotic(t *testing.T) {
	// Chaotic updates are deliberately not PRAM-faithful: in-place squares
	// read cells they also write. The auditor must notice.
	in := problems.RandomMatrixChain(8, 20, 7)
	aud := &pram.Auditor{}
	Solve(in, Options{Variant: Dense, Mode: Chaotic, Audit: aud})
	if err := aud.Err(); err == nil {
		t.Error("auditor did not flag chaotic in-place updates")
	}
}

func TestWStableStopsEarlyOnEasyInstances(t *testing.T) {
	// A balanced instance converges in ~log2(n) iterations; the stability
	// rule should stop far below the sqrt budget.
	n := 64
	in := problems.Balanced(n)
	res := Solve(in, Options{Variant: Banded, Termination: WStable})
	if !res.StoppedEarly {
		t.Fatalf("did not stop early (ran %d iterations)", res.Iterations)
	}
	if res.Iterations >= DefaultIterations(n) {
		t.Fatalf("iterations %d not below budget %d", res.Iterations, DefaultIterations(n))
	}
	if !res.Table.Equal(seq.Solve(in).Table) {
		t.Fatal("early-stopped result is wrong")
	}
}

func TestWPWStableIsCorrect(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := problems.RandomInstance(10, 35, seed)
		res := Solve(in, Options{Variant: Dense, Termination: WPWStable})
		if !res.Table.Equal(seq.Solve(in).Table) {
			t.Errorf("seed %d: WPWStable stopped on a wrong table", seed)
		}
	}
}

func TestWStableCorrectAcrossSeeds(t *testing.T) {
	// E7 studies the heuristic's safety at scale; here we at least pin it
	// on a batch of random and shaped instances.
	for seed := int64(0); seed < 8; seed++ {
		for _, in := range []*recurrence.Instance{
			problems.RandomInstance(12, 40, seed),
			problems.RandomShaped(12, seed),
		} {
			res := Solve(in, Options{Variant: Banded, Termination: WStable})
			if !res.Table.Equal(seq.Solve(in).Table) {
				t.Errorf("seed %d %s: WStable stopped on a wrong table", seed, in.Name)
			}
		}
	}
}

func TestHistoryRecords(t *testing.T) {
	in := problems.Zigzag(16)
	res := Solve(in, Options{Variant: Dense, History: true})
	if len(res.History) != res.Iterations {
		t.Fatalf("history has %d entries for %d iterations", len(res.History), res.Iterations)
	}
	prevFinite := 0
	for idx, st := range res.History {
		if st.Iter != idx+1 {
			t.Fatalf("history iteration numbering broken at %d", idx)
		}
		if st.FiniteW < prevFinite {
			t.Fatalf("finite w count decreased at iteration %d", st.Iter)
		}
		prevFinite = st.FiniteW
	}
	last := res.History[len(res.History)-1]
	total := in.NumNodes()
	if last.FiniteW != total {
		t.Fatalf("after convergence %d finite entries, want %d", last.FiniteW, total)
	}
}

func TestAccountingGrowsWithN(t *testing.T) {
	small := Solve(problems.Balanced(8), Options{Variant: Banded})
	large := Solve(problems.Balanced(32), Options{Variant: Banded})
	if large.Acct.Work <= small.Acct.Work {
		t.Fatal("work did not grow with n")
	}
	if large.Acct.Time <= small.Acct.Time {
		t.Fatal("time did not grow with n")
	}
	if large.Acct.MaxProcs <= small.Acct.MaxProcs {
		t.Fatal("processor demand did not grow with n")
	}
}

func TestBandedUsesFarLessWorkThanDense(t *testing.T) {
	in := problems.Balanced(48)
	dense := Solve(in, Options{Variant: Dense, MaxIterations: 2})
	banded := Solve(in, Options{Variant: Banded, MaxIterations: 2})
	if banded.Acct.Work*4 > dense.Acct.Work {
		t.Fatalf("banded work %d not clearly below dense %d", banded.Acct.Work, dense.Acct.Work)
	}
}

func TestTinyInstances(t *testing.T) {
	// n=1: a single leaf; the answer is init(0) with no iterations needed.
	in := &recurrence.Instance{
		N:    1,
		Name: "single",
		Init: func(i int) costC { return 5 },
		F:    func(i, k, j int) costC { return 0 },
	}
	for name, opts := range allConfigs() {
		res := Solve(in, opts)
		if res.Cost() != 5 {
			t.Errorf("%s: n=1 cost = %d, want 5", name, res.Cost())
		}
	}
	// n=2: one forced split.
	in2 := problems.MatrixChain([]int{3, 4, 5})
	for name, opts := range allConfigs() {
		res := Solve(in2, opts)
		if res.Cost() != 60 {
			t.Errorf("%s: n=2 cost = %d, want 60", name, res.Cost())
		}
	}
}

func TestSmallBandStillCorrectWithBigBudget(t *testing.T) {
	// Any band radius yields a correct fixpoint given enough iterations,
	// because the banded pebble includes the direct combine (pure
	// bottom-up DP as a fallback). Only the 2*sqrt(n) *budget* needs the
	// full band.
	in := problems.Zigzag(18)
	want := seq.Solve(in).Table
	res := Solve(in, Options{Variant: Banded, BandRadius: 1, MaxIterations: 20})
	if !res.Table.Equal(want) {
		t.Fatal("band radius 1 with linear budget produced wrong table")
	}
}

func TestBandRadiusRecorded(t *testing.T) {
	in := problems.Balanced(16)
	res := Solve(in, Options{Variant: Banded})
	if res.BandRadius != 2*pebble.IsqrtCeil(16) {
		t.Fatalf("band radius = %d, want %d", res.BandRadius, 2*pebble.IsqrtCeil(16))
	}
	res = Solve(in, Options{Variant: Banded, BandRadius: 5})
	if res.BandRadius != 5 {
		t.Fatalf("band radius override = %d, want 5", res.BandRadius)
	}
	if Solve(in, Options{Variant: Dense}).BandRadius != 0 {
		t.Fatal("dense variant reported a band radius")
	}
}

func TestDefaultIterations(t *testing.T) {
	cases := map[int]int{1: 2, 2: 4, 4: 4, 9: 6, 16: 8, 100: 20}
	for n, want := range cases {
		if got := DefaultIterations(n); got != want {
			t.Errorf("DefaultIterations(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestOptionStrings(t *testing.T) {
	checks := map[string]string{
		Dense.String():           "dense",
		Banded.String():          "banded",
		Synchronous.String():     "sync",
		Chaotic.String():         "chaotic",
		FixedIterations.String(): "fixed",
		WStable.String():         "w-stable",
		WPWStable.String():       "wpw-stable",
	}
	for got, want := range checks {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// Property: on random instances every configuration agrees with the
// sequential DP.
func TestSolversAgreeProperty(t *testing.T) {
	cfgs := allConfigs()
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%10 + 2
		in := problems.RandomInstance(n, 30, seed)
		want := seq.Solve(in).Table
		for _, opts := range cfgs {
			if !Solve(in, opts).Table.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: w' values are monotone upper bounds — at every recorded
// iteration the root estimate never undershoots the true optimum.
func TestMonotoneUpperBoundProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%10 + 3
		in := problems.RandomInstance(n, 30, seed)
		want := seq.Solve(in).Cost()
		// Run iteration by iteration by capping MaxIterations.
		budget := DefaultIterations(n)
		prevRoot := costInf()
		for it := 1; it <= budget; it++ {
			res := Solve(in, Options{Variant: Dense, MaxIterations: it})
			root := res.Cost()
			if root < want {
				return false // undershoot: impossible for feasible-tree weights
			}
			if root > prevRoot {
				return false // not monotone
			}
			prevRoot = root
		}
		return prevRoot == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
