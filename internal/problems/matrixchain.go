// Package problems constructs concrete instances of the paper's recurrence
// (*): matrix-chain multiplication, optimal binary search trees in the
// alpha/beta gap-weight formulation, optimal convex-polygon triangulation,
// synthetic instances whose optimal tree is a prescribed shape (used to
// drive the algorithm into its worst and best cases), and seeded random
// instances for property tests and average-case experiments.
package problems

import (
	"fmt"
	"math/rand"

	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// MatrixChain returns the matrix-chain multiplication instance for
// matrices A_1..A_n where A_t is dims[t-1] x dims[t]. Node (i,j) is the
// product A_{i+1}..A_j; splitting at k multiplies the two partial products
// at a cost of dims[i]*dims[k]*dims[j] scalar multiplications; leaves cost
// nothing. c(0,n) is the classic minimum multiplication count.
func MatrixChain(dims []int) *recurrence.Instance {
	if len(dims) < 2 {
		panic(fmt.Sprintf("problems: matrix chain needs >= 2 dimensions, got %d", len(dims)))
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("problems: nonpositive matrix dimension %d", d))
		}
	}
	d := make([]int64, len(dims))
	for i, v := range dims {
		d[i] = int64(v)
	}
	return &recurrence.Instance{
		N:     len(dims) - 1,
		Name:  fmt.Sprintf("matrixchain-n%d", len(dims)-1),
		Canon: func() []byte { return canon("matrixchain", d) },
		Init:  func(i int) cost.Cost { return 0 },
		F: func(i, k, j int) cost.Cost {
			return cost.Cost(d[i] * d[k] * d[j])
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			dik := d[i] * d[k]
			row := d[j0 : j0+len(dst)]
			for t := range dst {
				dst[t] = cost.Cost(dik * row[t])
			}
		},
	}
}

// CLRSMatrixChain returns the six-matrix textbook example (CLRS §15.2)
// with dimensions 30x35, 35x15, 15x5, 5x10, 10x20, 20x25. Its known
// optimal cost is 15125 with parenthesization (A1(A2 A3))((A4 A5)A6);
// tests use it as a golden value.
func CLRSMatrixChain() *recurrence.Instance {
	in := MatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	in.Name = "matrixchain-clrs"
	return in
}

// CLRSOptimalCost is the published optimum of CLRSMatrixChain.
const CLRSOptimalCost cost.Cost = 15125

// RandomMatrixChain returns a matrix-chain instance with n matrices whose
// dimensions are drawn uniformly from [1, maxDim] using the given seed.
func RandomMatrixChain(n, maxDim int, seed int64) *recurrence.Instance {
	if n < 1 || maxDim < 1 {
		panic("problems: RandomMatrixChain needs n >= 1 and maxDim >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = 1 + rng.Intn(maxDim)
	}
	in := MatrixChain(dims)
	in.Name = fmt.Sprintf("matrixchain-rand-n%d-s%d", n, seed)
	return in
}
