module sublineardp

go 1.24
