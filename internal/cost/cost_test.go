package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInfIsLarge(t *testing.T) {
	if Inf <= 0 {
		t.Fatalf("Inf must be positive, got %d", Inf)
	}
	if int64(Inf) > math.MaxInt64/2 {
		t.Fatalf("Inf too close to overflow boundary: %d", Inf)
	}
}

func TestIsInf(t *testing.T) {
	cases := []struct {
		c    Cost
		want bool
	}{
		{0, false},
		{1, false},
		{Inf - 1, false},
		{Inf, true},
		{Inf + 5, true},
		{Inf + Inf, true},
	}
	for _, tc := range cases {
		if got := IsInf(tc.c); got != tc.want {
			t.Errorf("IsInf(%d) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestAddFinite(t *testing.T) {
	if got := Add(2, 3); got != 5 {
		t.Errorf("Add(2,3) = %d, want 5", got)
	}
	if got := Add(0, 0); got != 0 {
		t.Errorf("Add(0,0) = %d, want 0", got)
	}
}

func TestAddSaturates(t *testing.T) {
	cases := [][2]Cost{
		{Inf, 0},
		{0, Inf},
		{Inf, Inf},
		{Inf - 1 + 1, 7},
		{Inf + 100, Inf + 100},
	}
	for _, tc := range cases {
		if got := Add(tc[0], tc[1]); got != Inf {
			t.Errorf("Add(%d,%d) = %d, want Inf", tc[0], tc[1], got)
		}
	}
}

func TestAddNeverOverflows(t *testing.T) {
	// Even the largest representable "infinite" operands must not wrap.
	a, b := Cost(math.MaxInt64/4), Cost(math.MaxInt64/4)
	if got := Add(a, b); got != Inf {
		t.Errorf("Add near boundary = %d, want Inf", got)
	}
}

func TestAdd3(t *testing.T) {
	if got := Add3(1, 2, 3); got != 6 {
		t.Errorf("Add3(1,2,3) = %d, want 6", got)
	}
	if got := Add3(1, Inf, 3); got != Inf {
		t.Errorf("Add3 with Inf = %d, want Inf", got)
	}
}

func TestMin(t *testing.T) {
	if got := Min(3, 5); got != 3 {
		t.Errorf("Min(3,5) = %d", got)
	}
	if got := Min(5, 3); got != 3 {
		t.Errorf("Min(5,3) = %d", got)
	}
	if got := Min(Inf, 3); got != 3 {
		t.Errorf("Min(Inf,3) = %d", got)
	}
}

func TestMinOf(t *testing.T) {
	if got := MinOf(); got != Inf {
		t.Errorf("MinOf() = %d, want Inf", got)
	}
	if got := MinOf(9, 4, 7); got != 4 {
		t.Errorf("MinOf(9,4,7) = %d, want 4", got)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm(Inf + 123); got != Inf {
		t.Errorf("Norm(Inf+123) = %d, want Inf", got)
	}
	if got := Norm(42); got != 42 {
		t.Errorf("Norm(42) = %d, want 42", got)
	}
}

// Property: Add is commutative and monotone, and never produces a value
// in the forbidden zone (above Inf but "finite-looking" after Norm).
func TestAddProperties(t *testing.T) {
	// Operands are drawn from the range algorithms actually maintain:
	// either a finite value well below Inf, or the canonical Inf itself.
	clamp := func(x int64) Cost {
		if x < 0 {
			x = -x
		}
		if x%5 == 0 {
			return Inf
		}
		return Cost(x % int64(Inf/2))
	}
	comm := func(x, y int64) bool {
		a, b := clamp(x), clamp(y)
		return Add(a, b) == Add(b, a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	mono := func(x, y int64) bool {
		a, b := clamp(x), clamp(y)
		s := Add(a, b)
		return s >= Norm(a) || IsInf(Norm(a)) // b >= 0, so sum can't shrink
	}
	if err := quick.Check(mono, nil); err != nil {
		t.Errorf("monotonicity: %v", err)
	}
	canon := func(x, y int64) bool {
		s := Add(clamp(x), clamp(y))
		return !IsInf(s) || s == Inf // saturation yields the canonical Inf
	}
	if err := quick.Check(canon, nil); err != nil {
		t.Errorf("canonical Inf: %v", err)
	}
}

// Property: Add agrees with native addition whenever both operands are
// comfortably finite.
func TestAddMatchesNative(t *testing.T) {
	f := func(x, y uint32) bool {
		a, b := Cost(x), Cost(y)
		return Add(a, b) == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
