package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// enginePackages are the packages that implement solve engines — the
// targets of the ctxpoll and bulkonly disciplines.
var enginePackages = []string{
	"internal/seq",
	"internal/blocked",
	"internal/llp",
	"internal/core",
	"internal/wavefront",
	"internal/rytter",
	"internal/semiring",
}

// hotPackages are the kernel/tile-body packages whose loops the
// hotalloc discipline keeps allocation-free.
var hotPackages = []string{
	"internal/algebra",
	"internal/blocked",
	"internal/llp",
	"internal/core",
}

// DefaultSuite returns the full analyzer suite configured for this
// repository — what cmd/dplint and the tier-1 self-test run.
func DefaultSuite() []Analyzer {
	return []Analyzer{
		&KeyCoverage{Struct: "Config", KeyFuncs: []string{"solveKey", "chainSolveKey"}},
		&CtxPoll{Packages: enginePackages},
		&BulkOnly{Packages: enginePackages},
		&HotAlloc{Packages: hotPackages},
		&AtomicMix{},
	}
}

// Select filters the default suite down to the named checks
// (comma-separated; "" or "all" = the full suite).
func Select(checks string) ([]Analyzer, error) {
	suite := DefaultSuite()
	if checks == "" || checks == "all" {
		return suite, nil
	}
	byName := map[string]Analyzer{}
	for _, a := range suite {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// relTo rewrites path (or a path:line anchor) relative to root when it
// lives under it.
func relTo(root, anchor string) string {
	path, line, hasLine := strings.Cut(anchor, ":")
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		path = filepath.ToSlash(rel)
	}
	if hasLine {
		return path + ":" + line
	}
	return path
}
