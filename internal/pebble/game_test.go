package pebble

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sublineardp/internal/btree"
)

func TestSingleLeafNeedsNoMoves(t *testing.T) {
	g := NewGame(btree.New(1, nil), HLVRule)
	if !g.RootPebbled() {
		t.Fatal("single leaf not pebbled initially")
	}
	if moves := g.Run(0); moves != 0 {
		t.Fatalf("played %d moves on a single leaf", moves)
	}
}

func TestTwoLeavesOneMove(t *testing.T) {
	for _, rule := range []Rule{HLVRule, RytterRule} {
		g := NewGame(btree.Complete(2), rule)
		if moves := g.Run(0); moves != 1 {
			t.Fatalf("rule %v: %d moves for 2 leaves, want 1", rule, moves)
		}
		if !g.RootPebbled() {
			t.Fatalf("rule %v: root unpebbled", rule)
		}
	}
}

func TestCompleteTreeLogMoves(t *testing.T) {
	// A complete tree pebbles one level per move: exactly ceil(log2 n)
	// moves for n a power of two.
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024} {
		g := NewGame(btree.Complete(n), HLVRule)
		moves := g.Run(0)
		want := int(math.Round(math.Log2(float64(n))))
		if moves != want {
			t.Errorf("complete n=%d: %d moves, want %d", n, moves, want)
		}
	}
}

func TestLemmaBoundAllShapes(t *testing.T) {
	shapes := map[string]func(int) *btree.Tree{
		"complete":    btree.Complete,
		"leftskewed":  btree.LeftSkewed,
		"rightskewed": btree.RightSkewed,
		"zigzag":      btree.Zigzag,
	}
	for name, mk := range shapes {
		for _, n := range []int{2, 3, 5, 9, 16, 33, 64, 100, 250, 777} {
			g := NewGame(mk(n), HLVRule)
			moves := g.Run(LemmaBound(n))
			if !g.RootPebbled() {
				t.Errorf("%s n=%d: root unpebbled after %d moves (bound %d)",
					name, n, moves, LemmaBound(n))
			}
		}
	}
}

func TestLemmaBoundRandomTreesChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(300)
		tree := btree.RandomSplit(n, rng)
		g := NewGame(tree, HLVRule)
		moves, err := g.RunChecked(LemmaBound(n))
		if err != nil {
			t.Fatalf("n=%d trial=%d after %d moves: %v", n, trial, moves, err)
		}
	}
}

func TestZigzagCheckedWithInvariants(t *testing.T) {
	for _, n := range []int{4, 16, 49, 100, 225} {
		g := NewGame(btree.Zigzag(n), HLVRule)
		moves, err := g.RunChecked(0)
		if err != nil {
			t.Fatalf("zigzag n=%d: %v", n, err)
		}
		if moves > LemmaBound(n) {
			t.Fatalf("zigzag n=%d took %d moves > bound %d", n, moves, LemmaBound(n))
		}
	}
}

func TestZigzagIsSqrtHard(t *testing.T) {
	// The zigzag tree must actually need Theta(sqrt n) moves under the HLV
	// rule — at least sqrt(n)/2, say — otherwise it wouldn't be the
	// pathological case the paper claims.
	for _, n := range []int{64, 256, 1024} {
		moves, ok := MovesOn(btree.Zigzag(n), HLVRule)
		if !ok {
			t.Fatalf("zigzag n=%d did not finish", n)
		}
		if lower := IsqrtCeil(n) / 2; moves < lower {
			t.Errorf("zigzag n=%d finished in %d moves; expected >= %d", n, moves, lower)
		}
	}
}

func TestRytterRuleIsLogarithmic(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096} {
		for name, mk := range map[string]func(int) *btree.Tree{
			"zigzag": btree.Zigzag, "skewed": btree.LeftSkewed, "complete": btree.Complete,
		} {
			g := NewGame(mk(n), RytterRule)
			moves := g.Run(LemmaBound(n))
			if !g.RootPebbled() {
				t.Fatalf("rytter %s n=%d unfinished", name, n)
			}
			budget := 4*int(math.Ceil(math.Log2(float64(n)))) + 4
			if moves > budget {
				t.Errorf("rytter %s n=%d took %d moves, expected <= %d", name, n, moves, budget)
			}
		}
	}
}

func TestRytterNeverSlowerThanHLV(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(200)
		tree := btree.RandomSplit(n, rng)
		h, okH := MovesOn(tree, HLVRule)
		r, okR := MovesOn(tree, RytterRule)
		if !okH || !okR {
			t.Fatalf("n=%d: unfinished game (hlv ok=%v, rytter ok=%v)", n, okH, okR)
		}
		if r > h {
			t.Errorf("n=%d: rytter %d moves > hlv %d", n, r, h)
		}
	}
}

func TestMonotonePebbling(t *testing.T) {
	g := NewGame(btree.Zigzag(80), HLVRule)
	prev := g.PebbledCount()
	for !g.RootPebbled() {
		g.Move()
		cur := g.PebbledCount()
		if cur < prev {
			t.Fatal("pebble count decreased")
		}
		prev = cur
	}
}

func TestTraceCallback(t *testing.T) {
	g := NewGame(btree.Complete(8), HLVRule)
	var seen []int
	g.Trace = func(move int, gg *Game) { seen = append(seen, move) }
	g.Run(0)
	if len(seen) != g.Moves() {
		t.Fatalf("trace fired %d times for %d moves", len(seen), g.Moves())
	}
	for i, m := range seen {
		if m != i+1 {
			t.Fatalf("trace move numbers %v", seen)
		}
	}
}

func TestRunRespectsBudget(t *testing.T) {
	g := NewGame(btree.Zigzag(400), HLVRule)
	moves := g.Run(3)
	if moves != 3 || g.RootPebbled() {
		t.Fatalf("budget ignored: moves=%d pebbled=%v", moves, g.RootPebbled())
	}
}

func TestIsqrtCeil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 2, 5: 3, 9: 3, 10: 4, 16: 4, 17: 5, 100: 10, 101: 11}
	for n, want := range cases {
		if got := IsqrtCeil(n); got != want {
			t.Errorf("IsqrtCeil(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: for random trees the HLV game finishes within the Lemma 3.3
// bound and invariant (a) holds at every even move count.
func TestLemmaProperty(t *testing.T) {
	f := func(seed int64, nn uint16) bool {
		n := int(nn)%500 + 2
		tree := btree.RandomSplit(n, rand.New(rand.NewSource(seed)))
		g := NewGame(tree, HLVRule)
		_, err := g.RunChecked(LemmaBound(n))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRecurrenceTValues(t *testing.T) {
	tt := RecurrenceT(8)
	if tt[1] != 0 {
		t.Fatalf("T(1) = %v", tt[1])
	}
	if tt[2] != 1 {
		t.Fatalf("T(2) = %v, want 1", tt[2])
	}
	// T(3) = 1 + (max(T1,T2)+max(T2,T1))/2 = 1 + 1 = 2.
	if tt[3] != 2 {
		t.Fatalf("T(3) = %v, want 2", tt[3])
	}
	// Monotone nondecreasing.
	for m := 2; m <= 8; m++ {
		if tt[m] < tt[m-1] {
			t.Fatalf("T not monotone at %d: %v < %v", m, tt[m], tt[m-1])
		}
	}
}

func TestRecurrenceTIsLogarithmic(t *testing.T) {
	tt := RecurrenceT(4096)
	// The paper proves T(n) = O(log n); check the constant is small:
	// T(n)/log2(n) should be bounded (empirically ~2).
	for _, n := range []int{64, 512, 4096} {
		ratio := tt[n] / math.Log2(float64(n))
		if ratio > 4 {
			t.Errorf("T(%d)/log2 = %0.2f, not logarithmic-looking", n, ratio)
		}
	}
	// And clearly below sqrt growth: T(4096) must be far below sqrt(4096)=64.
	if tt[4096] > 40 {
		t.Errorf("T(4096) = %0.1f, too large", tt[4096])
	}
}

func TestSimulateRandomStats(t *testing.T) {
	st := SimulateRandom(100, 50, HLVRule, 42)
	if st.Exceeded != 0 {
		t.Fatalf("%d trials exceeded the lemma bound", st.Exceeded)
	}
	if st.Mean <= 0 || st.Mean > float64(st.Bound) {
		t.Fatalf("mean %0.2f outside (0, %d]", st.Mean, st.Bound)
	}
	if st.Min > st.Max {
		t.Fatalf("min %d > max %d", st.Min, st.Max)
	}
	// Reproducibility.
	st2 := SimulateRandom(100, 50, HLVRule, 42)
	if st != st2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", st, st2)
	}
}

func TestAverageCaseBeatsWorstCase(t *testing.T) {
	// Section 6's claim, empirically: mean moves on random trees grows like
	// log n, so at n=900 it must be well below the sqrt bound of 60.
	st := SimulateRandom(900, 30, HLVRule, 7)
	if st.Exceeded != 0 {
		t.Fatalf("bound exceeded %d times", st.Exceeded)
	}
	if st.Mean > float64(st.Bound)/2 {
		t.Errorf("mean %0.1f not clearly below bound %d; average case looks wrong", st.Mean, st.Bound)
	}
}

func TestGameSnapshotAccessors(t *testing.T) {
	tree := btree.Complete(4)
	g := NewGame(tree, HLVRule)
	if g.PebbledCount() != 4 {
		t.Fatalf("initial pebbles = %d, want 4 (leaves)", g.PebbledCount())
	}
	for v := int32(0); v < int32(tree.Len()); v++ {
		if g.Cond(v) != v {
			t.Fatalf("initial cond(%d) = %d", v, g.Cond(v))
		}
		if g.Pebbled(v) != tree.IsLeaf(v) {
			t.Fatalf("initial pebbling wrong at %d", v)
		}
	}
}
