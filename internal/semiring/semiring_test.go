package semiring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sublineardp/internal/cost"
	"sublineardp/internal/problems"
	"sublineardp/internal/seq"
)

func randomInstance(n int, maxW int64, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	sz := n + 1
	ini := make([]int64, n)
	for i := range ini {
		ini[i] = rng.Int63n(maxW + 1)
	}
	f := make([]int64, sz*sz*sz)
	for i := range f {
		f[i] = rng.Int63n(maxW + 1)
	}
	return &Instance{
		N:    n,
		Name: "rand",
		Init: func(i int) int64 { return ini[i] },
		F:    func(i, k, j int) int64 { return f[(i*sz+k)*sz+j] },
	}
}

// Axiom checks for each shipped semiring.
func TestSemiringAxioms(t *testing.T) {
	rings := []Semiring{MinPlus{}, MaxPlus{}, BoolPlan{}}
	vals := map[string][]int64{
		"min-plus":  {0, 1, 5, 100, posInf},
		"max-plus":  {negInf, 0, 1, 5, 100},
		"bool-plan": {0, 1},
	}
	for _, sr := range rings {
		vs := vals[sr.Name()]
		for _, a := range vs {
			// Idempotency of Combine.
			if sr.Combine(a, a) != a {
				t.Errorf("%s: Combine(%d,%d) != %d", sr.Name(), a, a, a)
			}
			// Identities.
			if sr.Combine(a, sr.Zero()) != a {
				t.Errorf("%s: Zero not Combine-identity for %d", sr.Name(), a)
			}
			if sr.Extend(a, sr.One()) != a {
				t.Errorf("%s: One not Extend-identity for %d", sr.Name(), a)
			}
			for _, b := range vs {
				// Commutativity.
				if sr.Combine(a, b) != sr.Combine(b, a) {
					t.Errorf("%s: Combine not commutative on (%d,%d)", sr.Name(), a, b)
				}
				if sr.Extend(a, b) != sr.Extend(b, a) {
					t.Errorf("%s: Extend not commutative on (%d,%d)", sr.Name(), a, b)
				}
				for _, c := range vs {
					// Associativity and distributivity.
					if sr.Combine(sr.Combine(a, b), c) != sr.Combine(a, sr.Combine(b, c)) {
						t.Errorf("%s: Combine not associative", sr.Name())
					}
					if sr.Extend(sr.Extend(a, b), c) != sr.Extend(a, sr.Extend(b, c)) {
						t.Errorf("%s: Extend not associative", sr.Name())
					}
					lhs := sr.Extend(a, sr.Combine(b, c))
					rhs := sr.Combine(sr.Extend(a, b), sr.Extend(a, c))
					if lhs != rhs {
						t.Errorf("%s: distributivity fails on (%d,%d,%d)", sr.Name(), a, b, c)
					}
				}
			}
		}
	}
}

// Min-plus over the semiring machinery must agree with the primary
// min-plus pipeline (internal/seq) on the same instances.
func TestMinPlusMatchesPrimaryPipeline(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 4 + int(seed)
		primary := problems.RandomInstance(n, 40, seed)
		mirrored := &Instance{
			N:    n,
			Init: func(i int) int64 { return int64(primary.Init(i)) },
			F:    func(i, k, j int) int64 { return int64(primary.F(i, k, j)) },
		}
		want := seq.Solve(primary).Cost()
		gotSeq := SolveSeq(MinPlus{}, mirrored)
		if cost.Cost(gotSeq[0*(n+1)+n]) != want {
			t.Fatalf("seed %d: semiring seq %d != primary %d", seed, gotSeq[0*(n+1)+n], want)
		}
		gotPar := SolveHLV(MinPlus{}, mirrored, 0)
		if cost.Cost(gotPar.Root()) != want {
			t.Fatalf("seed %d: semiring hlv %d != primary %d", seed, gotPar.Root(), want)
		}
	}
}

// Max-plus: the parallel iteration must converge to the brute-force
// maximum within the Lemma 3.3 budget — the pebbling argument is
// order-symmetric.
func TestMaxPlusAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 3 + int(seed%6)
		in := randomInstance(n, 50, seed)
		want := BruteForce(MaxPlus{}, in)
		if got := SolveSeq(MaxPlus{}, in)[0*(n+1)+n]; got != want {
			t.Fatalf("seed %d: maxplus seq %d != brute %d", seed, got, want)
		}
		if got := SolveHLV(MaxPlus{}, in, 0).Root(); got != want {
			t.Fatalf("seed %d: maxplus hlv %d != brute %d", seed, got, want)
		}
	}
}

// Bool feasibility: allowed splits form a random subset; the semiring
// answer must match "does the min-plus optimum avoid Inf" on the
// equivalent forbidden-split instance.
func TestBoolPlanMatchesInfeasibilityOfMinPlus(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 4 + int(seed%5)
		rng := rand.New(rand.NewSource(seed))
		sz := n + 1
		allowed := make([]bool, sz*sz*sz)
		for i := range allowed {
			allowed[i] = rng.Intn(3) > 0 // ~2/3 of splits allowed
		}
		boolIn := &Instance{
			N:    n,
			Init: func(i int) int64 { return 1 },
			F: func(i, k, j int) int64 {
				if allowed[(i*sz+k)*sz+j] {
					return 1
				}
				return 0
			},
		}
		minIn := &Instance{
			N:    n,
			Init: func(i int) int64 { return 0 },
			F: func(i, k, j int) int64 {
				if allowed[(i*sz+k)*sz+j] {
					return 0
				}
				return posInf
			},
		}
		feasible := SolveHLV(BoolPlan{}, boolIn, 0).Root() == 1
		minCost := SolveHLV(MinPlus{}, minIn, 0).Root()
		if feasible != (minCost < posInf) {
			t.Fatalf("seed %d: bool=%v but min-plus=%d", seed, feasible, minCost)
		}
	}
}

// The parallel solver must converge within the lemma budget for every
// semiring, not just reach the answer eventually.
func TestConvergenceWithinBudgetAllRings(t *testing.T) {
	rings := []Semiring{MinPlus{}, MaxPlus{}, BoolPlan{}}
	for _, sr := range rings {
		for seed := int64(0); seed < 4; seed++ {
			n := 9
			in := randomInstance(n, 30, seed)
			if sr.Name() == "bool-plan" {
				base := in.F
				in = &Instance{N: n,
					Init: func(i int) int64 { return 1 },
					F:    func(i, k, j int) int64 { return base(i, k, j) % 2 },
				}
			}
			want := BruteForce(sr, in)
			got := SolveHLV(sr, in, 0)
			if got.Root() != want {
				t.Fatalf("%s seed %d: %d != %d after %d iterations",
					sr.Name(), seed, got.Root(), want, got.Iterations)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (&Instance{N: 0}).Validate(); err == nil {
		t.Fatal("N=0 accepted")
	}
	if err := (&Instance{N: 3}).Validate(); err == nil {
		t.Fatal("nil callbacks accepted")
	}
	if err := randomInstance(4, 10, 1).Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: for min-plus, the semiring solver agrees with brute force on
// arbitrary random instances.
func TestMinPlusProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%7 + 2
		in := randomInstance(n, 40, seed)
		return SolveHLV(MinPlus{}, in, 0).Root() == BruteForce(MinPlus{}, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: max-plus root is always >= min-plus root on the same
// nonnegative instance (max over trees dominates min over trees).
func TestMaxDominatesMinProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%7 + 2
		in := randomInstance(n, 40, seed)
		return SolveHLV(MaxPlus{}, in, 0).Root() >= SolveHLV(MinPlus{}, in, 0).Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
