package problems

import (
	"fmt"
	"math/rand"
	"sort"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// This file constructs the chain-recurrence families: prefix dynamic
// programs c(j) = Combine_{k<j} Extend(c(k), F(k,j)) over the registered
// algebras. All three keep F finite — "impossible" transitions are
// encoded as a dominated finite penalty in the algebra's order, never as
// the algebra's Zero — so the sequential and LLP chain engines agree
// bitwise (see recurrence.Chain).

// SegmentedLeastSquares returns the segmented least squares chain over
// the points (xs[t], ys[t]): F(k,j) is the squared fitting error of one
// least-squares line through points k+1..j plus the per-segment penalty,
// and c(n) under min-plus is the cheapest segmentation. Errors are
// computed in float64 and fixed-pointed to thousandths ("milli-SSE"), so
// penalty is also in milli-units (penalty 2500 charges 2.5 squared-error
// units per segment). xs must be strictly increasing.
func SegmentedLeastSquares(xs, ys []int64, penalty int64) *recurrence.Chain {
	n := len(xs)
	if n < 1 || len(ys) != n {
		panic(fmt.Sprintf("problems: segmented least squares needs matching nonempty xs/ys, got %d/%d", len(xs), len(ys)))
	}
	if penalty < 0 {
		panic(fmt.Sprintf("problems: negative segment penalty %d", penalty))
	}
	for t := 1; t < n; t++ {
		if xs[t] <= xs[t-1] {
			panic(fmt.Sprintf("problems: xs must be strictly increasing, xs[%d]=%d after %d", t, xs[t], xs[t-1]))
		}
	}
	// Prefix moments over points 1..n make each segment error O(1):
	// sx[t] = sum of xs[0..t-1], etc.
	sx := make([]float64, n+1)
	sy := make([]float64, n+1)
	sxx := make([]float64, n+1)
	sxy := make([]float64, n+1)
	syy := make([]float64, n+1)
	for t := 1; t <= n; t++ {
		x, y := float64(xs[t-1]), float64(ys[t-1])
		sx[t] = sx[t-1] + x
		sy[t] = sy[t-1] + y
		sxx[t] = sxx[t-1] + x*x
		sxy[t] = sxy[t-1] + x*y
		syy[t] = syy[t-1] + y*y
	}
	size := n + 1
	tab := make([]cost.Cost, size*size)
	for k := 0; k < n; k++ {
		for j := k + 1; j <= n; j++ {
			m := float64(j - k)
			dx := sx[j] - sx[k]
			dy := sy[j] - sy[k]
			dxx := sxx[j] - sxx[k]
			dxy := sxy[j] - sxy[k]
			dyy := syy[j] - syy[k]
			var sse float64
			if den := m*dxx - dx*dx; den > 0 {
				slope := (m*dxy - dx*dy) / den
				intercept := (dy - slope*dx) / m
				sse = dyy - intercept*dy - slope*dxy
				if sse < 0 { // float rounding on perfect fits
					sse = 0
				}
			}
			tab[k*size+j] = cost.Cost(sse*1000+0.5) + cost.Cost(penalty)
		}
	}
	xc := append([]int64(nil), xs...)
	yc := append([]int64(nil), ys...)
	return &recurrence.Chain{
		N:    n,
		Name: fmt.Sprintf("segls-n%d", n),
		F:    func(k, j int) cost.Cost { return tab[k*size+j] },
		FRow: func(j, k0 int, dst []cost.Cost) {
			for t := range dst {
				dst[t] = tab[(k0+t)*size+j]
			}
		},
		Algebra: algebra.NameMinPlus,
		Canon:   func() []byte { return canon("segls", xc, yc, []int64{penalty}) },
	}
}

// RandomSeries returns n strictly increasing x coordinates and noisy
// piecewise-linear y values — ready-made SegmentedLeastSquares input for
// benchmarks and load generation.
func RandomSeries(n int, seed int64) (xs, ys []int64) {
	if n < 1 {
		panic("problems: RandomSeries needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	xs = make([]int64, n)
	ys = make([]int64, n)
	x, y := int64(0), int64(rng.Intn(41)-20)
	slope := int64(rng.Intn(9) - 4)
	for t := 0; t < n; t++ {
		x += 1 + int64(rng.Intn(3))
		if rng.Intn(16) == 0 { // new segment
			slope = int64(rng.Intn(9) - 4)
			y += int64(rng.Intn(41) - 20)
		}
		y += slope
		xs[t] = x
		ys[t] = y + int64(rng.Intn(5)-2)
	}
	return xs, ys
}

// IntervalScheduling returns the weighted interval scheduling chain:
// jobs are sorted by finish time, F(j-1,j) = 0 skips job j, F(p(j),j) =
// weights[j] takes it (p(j) = the last job finishing before job j
// starts), and every other transition carries the dominated finite
// penalty -(sum of weights)-1 instead of max-plus Zero, keeping F finite
// (see recurrence.Chain). c(n) under max-plus is the maximum total
// weight of any non-overlapping subset. Weights must be nonnegative and
// every start strictly before its end.
func IntervalScheduling(starts, ends, weights []int64) *recurrence.Chain {
	n := len(starts)
	if n < 1 || len(ends) != n || len(weights) != n {
		panic(fmt.Sprintf("problems: interval scheduling needs matching nonempty starts/ends/weights, got %d/%d/%d",
			len(starts), len(ends), len(weights)))
	}
	order := make([]int, n)
	for t := range order {
		order[t] = t
	}
	var total int64
	for t := 0; t < n; t++ {
		if starts[t] >= ends[t] {
			panic(fmt.Sprintf("problems: job %d has start %d >= end %d", t, starts[t], ends[t]))
		}
		if weights[t] < 0 {
			panic(fmt.Sprintf("problems: job %d has negative weight %d", t, weights[t]))
		}
		total += weights[t]
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := order[a], order[b]
		if ends[oa] != ends[ob] {
			return ends[oa] < ends[ob]
		}
		if starts[oa] != starts[ob] {
			return starts[oa] < starts[ob]
		}
		return weights[oa] < weights[ob]
	})
	s := make([]int64, n)
	e := make([]int64, n)
	w := make([]int64, n)
	for t, o := range order {
		s[t], e[t], w[t] = starts[o], ends[o], weights[o]
	}
	// p[j] (1-indexed) = largest prefix length q such that sorted job q
	// (the q-th job) finishes no later than job j starts; 0 when none do.
	p := make([]int, n+1)
	for j := 1; j <= n; j++ {
		p[j] = sort.Search(n, func(q int) bool { return e[q] > s[j-1] })
	}
	noTake := -cost.Cost(total) - 1
	return &recurrence.Chain{
		N:    n,
		Name: fmt.Sprintf("wis-n%d", n),
		F: func(k, j int) cost.Cost {
			if k == p[j] {
				return cost.Cost(w[j-1])
			}
			if k == j-1 {
				return 0
			}
			return noTake
		},
		FRow: func(j, k0 int, dst []cost.Cost) {
			for t := range dst {
				dst[t] = noTake
			}
			if skip := j - 1 - k0; 0 <= skip && skip < len(dst) {
				dst[skip] = 0
			}
			if take := p[j] - k0; 0 <= take && take < len(dst) {
				dst[take] = cost.Cost(w[j-1])
			}
		},
		Algebra: algebra.NameMaxPlus,
		Canon:   func() []byte { return canon("wis", s, e, w) },
	}
}

// RandomJobs returns n jobs with random spans and weights — ready-made
// IntervalScheduling input for benchmarks and load generation.
func RandomJobs(n int, seed int64) (starts, ends, weights []int64) {
	if n < 1 {
		panic("problems: RandomJobs needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	starts = make([]int64, n)
	ends = make([]int64, n)
	weights = make([]int64, n)
	for t := 0; t < n; t++ {
		starts[t] = int64(rng.Intn(4 * n))
		ends[t] = starts[t] + 1 + int64(rng.Intn(n/4+4))
		weights[t] = int64(1 + rng.Intn(100))
	}
	return starts, ends, weights
}

// SubsetSum returns the sum-feasibility chain over bool-plan: index j is
// the amount j, F(k,j) = 1 exactly when j-k is one of the items, and
// c(target) = 1 iff the target is a sum of items (each usable any number
// of times — coin-style feasibility, the natural chain reading where
// every prefix may extend by any item). The window is the largest item:
// longer transitions are structurally impossible, so windowing skips
// them without changing the answer — and exercises the engines' windowed
// path on a shipped family. Items must be positive; target >= 1.
func SubsetSum(target int64, items []int64) *recurrence.Chain {
	if target < 1 {
		panic(fmt.Sprintf("problems: subset sum needs target >= 1, got %d", target))
	}
	if len(items) == 0 {
		panic("problems: subset sum needs at least one item")
	}
	sorted := append([]int64(nil), items...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	dedup := sorted[:1]
	for _, v := range sorted[1:] {
		if v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	if dedup[0] < 1 {
		panic(fmt.Sprintf("problems: subset sum items must be positive, got %d", dedup[0]))
	}
	maxItem := dedup[len(dedup)-1]
	window := maxItem
	if window > target {
		window = target
	}
	isItem := make([]bool, maxItem+1)
	for _, v := range dedup {
		isItem[v] = true
	}
	return &recurrence.Chain{
		N:    int(target),
		Name: fmt.Sprintf("subsetsum-t%d", target),
		F: func(k, j int) cost.Cost {
			if d := int64(j - k); d <= maxItem && isItem[d] {
				return 1
			}
			return 0
		},
		FRow: func(j, k0 int, dst []cost.Cost) {
			for t := range dst {
				if d := int64(j - k0 - t); d <= maxItem && isItem[d] {
					dst[t] = 1
				} else {
					dst[t] = 0
				}
			}
		},
		Window:  int(window),
		Algebra: algebra.NameBoolPlan,
		Canon:   func() []byte { return canon("subsetsum", []int64{target}, dedup) },
	}
}

// RandomChain returns a fully random chain: every F(k,j) drawn uniformly
// from [0, maxW], optionally windowed. Like RandomInstance it has no
// Canon and no declared algebra, so property tests can run it under
// every registered semiring to cross-validate the chain engines on
// unstructured inputs.
func RandomChain(n, maxW, window int, seed int64) *recurrence.Chain {
	if n < 1 || maxW < 0 || window < 0 {
		panic("problems: RandomChain needs n >= 1, maxW >= 0 and window >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	size := n + 1
	f := make([]cost.Cost, size*size)
	for k := 0; k < n; k++ {
		for j := k + 1; j <= n; j++ {
			f[k*size+j] = cost.Cost(rng.Intn(maxW + 1))
		}
	}
	return &recurrence.Chain{
		N:    n,
		Name: fmt.Sprintf("chainrand-n%d-s%d", n, seed),
		F:    func(k, j int) cost.Cost { return f[k*size+j] },
		FRow: func(j, k0 int, dst []cost.Cost) {
			for t := range dst {
				dst[t] = f[(k0+t)*size+j]
			}
		},
		Window: window,
	}
}
