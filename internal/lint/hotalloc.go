package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the kernel and tile-body packages against allocation
// creep inside loops: a fmt call, a time.Now, a string concatenation,
// or a value boxed into interface{} per iteration turns an O(1)-alloc
// tile body into a GC treadmill that no benchmark assertion catches
// until the allocs/op gate trips. Validation and panic paths that
// legitimately format (cold by construction) carry //lint:allow
// hotalloc annotations saying so.
type HotAlloc struct {
	// Packages restricts the scan to these module-relative package
	// paths (nil = every loaded package).
	Packages []string
}

func (*HotAlloc) Name() string { return "hotalloc" }
func (*HotAlloc) Doc() string {
	return "no fmt calls, time.Now, string concatenation, or interface boxing inside loops of kernel packages"
}

func (a *HotAlloc) Run(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range targetPackages(prog, a.Packages) {
		for _, file := range pkg.Files {
			var walk func(n ast.Node, inLoop bool)
			walk = func(n ast.Node, inLoop bool) {
				if n == nil {
					return
				}
				switch n := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					inLoop = true
				case *ast.CallExpr:
					if inLoop {
						if f, ok := a.checkCall(prog, pkg, n); ok {
							out = append(out, f)
						}
					}
				case *ast.BinaryExpr:
					if inLoop && n.Op == token.ADD && isStringType(pkg, n) {
						out = append(out, finding(prog, a.Name(), n.OpPos,
							"string concatenation allocates on every iteration: build once outside the loop, or annotate why this path is cold"))
					}
				case *ast.AssignStmt:
					if inLoop && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pkg, n.Lhs[0]) {
						out = append(out, finding(prog, a.Name(), n.TokPos,
							"string concatenation allocates on every iteration: build once outside the loop, or annotate why this path is cold"))
					}
				}
				for _, child := range childNodes(n) {
					walk(child, inLoop)
				}
			}
			walk(file, false)
		}
	}
	return out
}

func (a *HotAlloc) checkCall(prog *Program, pkg *Package, call *ast.CallExpr) (Finding, bool) {
	if pkgName, fn, ok := packageCall(pkg, call); ok {
		switch {
		case pkgName == "fmt":
			return finding(prog, a.Name(), call.Pos(),
				"fmt.%s in a loop allocates (boxes every argument): move formatting out of the hot path, or annotate why this path is cold", fn), true
		case pkgName == "time" && fn == "Now":
			return finding(prog, a.Name(), call.Pos(),
				"time.Now in a loop is a vDSO call per iteration: hoist the timestamp, or annotate why this loop is not hot"), true
		}
	}
	// Interface boxing: a concrete value passed where the callee takes
	// interface{}/any heap-allocates per call.
	sig, ok := calleeSignature(pkg, call)
	if !ok {
		return Finding{}, false
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil || !isEmptyInterface(pt) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if ok && at.Type != nil && !types.IsInterface(at.Type) && at.Type != types.Typ[types.UntypedNil] {
			return finding(prog, a.Name(), arg.Pos(),
				"argument boxes a concrete value into interface{} on every iteration: hoist it or take a typed parameter, or annotate why this path is cold"), true
		}
	}
	return Finding{}, false
}

// packageCall decomposes `pkg.Fn(...)` calls, reporting the package
// name's imported path base and the function name.
func packageCall(pkg *Package, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

func calleeSignature(pkg *Package, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversions are not calls
		return nil, false
	}
	sig, ok := tv.Type.(*types.Signature)
	return sig, ok
}

func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if slice, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return slice.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isEmptyInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.Empty()
}

func isStringType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
