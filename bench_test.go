// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment E1..E12, matching DESIGN.md's experiment index) plus the
// ablations DESIGN.md calls out. Custom metrics carry the quantities the
// paper reports: iterations, PRAM time, work, processors, processor-time
// products, pebbling moves. cmd/dpbench renders the same data as tables.
package sublineardp_test

import (
	"context"
	"fmt"
	"testing"

	"sublineardp"
	"sublineardp/internal/algebra"
	"sublineardp/internal/blocked"
	"sublineardp/internal/btree"
	"sublineardp/internal/core"
	"sublineardp/internal/exper"
	"sublineardp/internal/pebble"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/rytter"
	"sublineardp/internal/semiring"
	"sublineardp/internal/seq"
	"sublineardp/internal/wavefront"
)

// E1 — iterations to convergence by optimal-tree shape (Table E1).
func BenchmarkE1IterationsVsShape(b *testing.B) {
	shapes := map[string]func(int) *btree.Tree{
		"zigzag":   btree.Zigzag,
		"complete": btree.Complete,
		"skewed":   btree.LeftSkewed,
	}
	for name, mk := range shapes {
		for _, n := range []int{16, 36, 64} {
			b.Run(fmt.Sprintf("shape=%s/n=%d", name, n), func(b *testing.B) {
				in := problems.Shaped(mk(n)).Materialize()
				target := seq.Solve(in).Table
				var iters int
				for i := 0; i < b.N; i++ {
					res := core.Solve(in, core.Options{Variant: core.Banded, Target: target})
					iters = res.ConvergedAt
				}
				b.ReportMetric(float64(iters), "iterations")
				b.ReportMetric(float64(pebble.LemmaBound(n)), "bound")
			})
		}
	}
}

// E2 — work scaling per solver (Table E2).
func BenchmarkE2WorkScalingSeq(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.Zigzag(n).Materialize()
			var work int64
			for i := 0; i < b.N; i++ {
				work = seq.Solve(in).Work
			}
			b.ReportMetric(float64(work), "work")
		})
	}
}

func BenchmarkE2WorkScalingWavefront(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.Zigzag(n).Materialize()
			var work int64
			for i := 0; i < b.N; i++ {
				work = wavefront.Solve(in, wavefront.Options{}).Acct.Work
			}
			b.ReportMetric(float64(work), "work")
		})
	}
}

func BenchmarkE2WorkScalingHLVBanded(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.Zigzag(n).Materialize()
			var acct float64
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, core.Options{Variant: core.Banded})
				acct = float64(res.Acct.Work)
			}
			b.ReportMetric(acct, "work")
		})
	}
}

func BenchmarkE2WorkScalingHLVDense(b *testing.B) {
	for _, n := range []int{16, 24, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.Zigzag(n).Materialize()
			var acct float64
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, core.Options{Variant: core.Dense})
				acct = float64(res.Acct.Work)
			}
			b.ReportMetric(acct, "work")
		})
	}
}

func BenchmarkE2WorkScalingRytter(b *testing.B) {
	for _, n := range []int{12, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.Zigzag(n).Materialize()
			var acct float64
			for i := 0; i < b.N; i++ {
				res := rytter.Solve(in, rytter.Options{MaxIterations: rytter.DefaultIterations(n)})
				acct = float64(res.Acct.Work)
			}
			b.ReportMetric(acct, "work")
		})
	}
}

// E3 — pebbling game moves vs Lemma 3.3 (Table E3).
func BenchmarkE3PebbleGame(b *testing.B) {
	for _, rule := range []pebble.Rule{pebble.HLVRule, pebble.RytterRule} {
		for _, n := range []int{256, 1024, 4096} {
			b.Run(fmt.Sprintf("rule=%s/zigzag/n=%d", rule, n), func(b *testing.B) {
				tree := btree.Zigzag(n)
				var moves int
				for i := 0; i < b.N; i++ {
					moves, _ = pebble.MovesOn(tree, rule)
				}
				b.ReportMetric(float64(moves), "moves")
				b.ReportMetric(float64(pebble.LemmaBound(n)), "bound")
			})
		}
	}
}

// E4 — average-case moves on random trees (Table E4).
func BenchmarkE4AverageCase(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				st := pebble.SimulateRandom(n, 50, pebble.HLVRule, 42)
				mean = st.Mean
			}
			b.ReportMetric(mean, "mean-moves")
		})
	}
}

// E5 — PRAM time / processor accounting (Table E5).
func BenchmarkE5PRAMAccounting(b *testing.B) {
	for _, n := range []int{36, 64, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.Zigzag(n).Materialize()
			var t, p float64
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, core.Options{Variant: core.Banded, Window: true})
				t, p = float64(res.Acct.Time), float64(res.Acct.MaxProcs)
			}
			b.ReportMetric(t, "pram-time")
			b.ReportMetric(p, "pram-procs")
		})
	}
}

// E6 — cross-validation sweep (Table E6); the metric is solver agreements.
func BenchmarkE6CrossValidation(b *testing.B) {
	agreements := 0
	for i := 0; i < b.N; i++ {
		agreements = 0
		for seed := int64(1); seed <= 3; seed++ {
			in := problems.RandomMatrixChain(12, 40, seed)
			want := seq.Solve(in).Table
			for _, opts := range []core.Options{
				{Variant: core.Dense}, {Variant: core.Banded}, {Variant: core.Banded, Window: true},
			} {
				if core.Solve(in, opts).Table.Equal(want) {
					agreements++
				}
			}
		}
	}
	b.ReportMetric(float64(agreements), "agreements")
}

// E7 — termination heuristics (Table E7).
func BenchmarkE7Termination(b *testing.B) {
	for _, class := range []string{"zigzag", "random"} {
		b.Run(class, func(b *testing.B) {
			n := 49
			var in *sublineardp.Instance
			if class == "zigzag" {
				in = problems.Zigzag(n)
			} else {
				in = problems.RandomMatrixChain(n, 50, 1)
			}
			in = in.Materialize()
			var stop int
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, core.Options{Variant: core.Banded, Termination: core.WStable})
				stop = res.Iterations
			}
			b.ReportMetric(float64(stop), "stop-iteration")
			b.ReportMetric(float64(core.DefaultIterations(n)), "budget")
		})
	}
}

// E8 — wall-clock self-speedup (Table E8): identical solve at 1/2/4 workers.
func BenchmarkE8Speedup(b *testing.B) {
	in := problems.Zigzag(96).Materialize()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Solve(in, core.Options{Variant: core.Banded, Workers: workers})
			}
		})
	}
}

// E9 — figure generation (tree renders + pebble trace).
func BenchmarkE9Figures(b *testing.B) {
	var tables int
	for i := 0; i < b.N; i++ {
		tables = len(exper.E9Figures(exper.Config{Quick: true}))
	}
	b.ReportMetric(float64(tables), "figures")
}

// E10 — adaptive processor-time product (Table E10).
func BenchmarkE10AdaptivePT(b *testing.B) {
	for _, n := range []int{36, 64, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.RandomMatrixChain(n, 50, 1).Materialize()
			var pt float64
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, core.Options{Variant: core.Banded, Termination: core.WStable})
				pt = float64(res.Acct.PTProduct())
			}
			b.ReportMetric(pt, "pt-product")
		})
	}
}

// E11 — Brent-scheduled makespan on bounded machines (Table E11).
func BenchmarkE11ProcessorScaling(b *testing.B) {
	in := problems.Zigzag(64).Materialize()
	res := core.Solve(in, core.Options{Variant: core.Banded, Window: true})
	for _, p := range []int64{1, 1 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var tp int64
			for i := 0; i < b.N; i++ {
				tp = res.Acct.TimeOn(p)
			}
			b.ReportMetric(float64(tp), "makespan")
		})
	}
}

// E12 — semiring generalisation (Table E12).
func BenchmarkE12Semirings(b *testing.B) {
	for _, sr := range []semiring.Semiring{semiring.MinPlus{}, semiring.MaxPlus{}, semiring.BoolPlan{}} {
		b.Run(sr.Name(), func(b *testing.B) {
			in := &semiring.Instance{
				N:    12,
				Init: func(i int) int64 { return 1 },
				F: func(i, k, j int) int64 {
					if sr.Name() == "bool-plan" {
						return int64((i + k + j) % 2)
					}
					return int64(i + k + j)
				},
			}
			var root int64
			for i := 0; i < b.N; i++ {
				root = semiring.SolveHLV(sr, in, 0).Root()
			}
			b.ReportMetric(float64(root), "root")
		})
	}
}

// E13 — steady-state serving cost of the HLV engines at large n: wall
// clock and allocations per solve once the process is warm, the numbers a
// long-lived server actually pays per request. MaxIterations caps the runs
// at a fixed iteration count so the metric is the runtime's per-iteration
// cost, not the instance's convergence behaviour. hlv-dense is benchmarked
// at its memory ceiling (n=256 dense would need ~70 GB for the O(n^4)
// pw' double buffer); hlv-banded covers the n>=256 regime.
func BenchmarkE13RuntimeServing(b *testing.B) {
	cases := []struct {
		variant core.Variant
		n       int
		iters   int
	}{
		{core.Banded, 128, 8},
		{core.Banded, 256, 4},
		{core.Dense, 48, 8},
		{core.Dense, 64, 4},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("engine=hlv-%s/n=%d", c.variant, c.n), func(b *testing.B) {
			in := problems.RandomMatrixChain(c.n, 50, 1).Materialize()
			opts := core.Options{Variant: c.variant, MaxIterations: c.iters}
			core.Solve(in, opts) // warm the shared runtime (pool + buffer arena)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Solve(in, opts)
			}
		})
	}
}

// E14 — the blocked engine past the HLV ceiling: one full solve per
// iteration at sizes no partial-weight engine can load (hlv-dense would
// need ~70 GB at n=256, ~18 TB at n=1024). Instances stay on their
// constructor closure/FPanel form — an O(n^3) materialised F table
// would itself be the memory ceiling here — so this measures exactly
// what a serving process pays for a cold large instance. The CI bench
// job smokes it at -benchtime 1x; BENCH_core.json carries the committed
// trajectory including the sequential-baseline speedup.
func BenchmarkE14BlockedLargeN(b *testing.B) {
	for _, c := range []struct{ n, tile int }{
		{256, 0},
		{1024, 0},
	} {
		b.Run(fmt.Sprintf("engine=blocked/n=%d", c.n), func(b *testing.B) {
			in := problems.RandomMatrixChain(c.n, 50, 1)
			opts := blocked.Options{TileSize: c.tile}
			blocked.Solve(in, opts) // warm the shared pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blocked.Solve(in, opts)
			}
		})
	}
}

// E15 — the chain recurrence class: the LLP async engine vs the
// sequential reference over segmented-least-squares instances, the
// committed comparison BENCH_core.json carries as chain-sequential /
// chain-llp. Candidates grow as O(n^2) with an O(1) transition, so this
// measures the engines' fold machinery (bulk FRow + ReduceRelax runs vs
// the per-candidate reference loop), not instance construction. The CI
// bench job smokes it at -benchtime 1x.
func BenchmarkE15ChainLLP(b *testing.B) {
	for _, n := range []int{256, 1024} {
		xs, ys := problems.RandomSeries(n, 1)
		c := problems.SegmentedLeastSquares(xs, ys, 1000)
		for _, engine := range []string{sublineardp.ChainEngineSequential, sublineardp.ChainEngineLLP} {
			b.Run(fmt.Sprintf("engine=chain-%s/n=%d", engine, n), func(b *testing.B) {
				solver := sublineardp.MustNewChainSolver(engine, sublineardp.WithWorkers(4))
				ctx := context.Background()
				warm, err := solver.Solve(ctx, c) // warm the shared pool
				if err != nil {
					b.Fatal(err)
				}
				if warm.Work != c.NumCandidates() {
					b.Fatalf("work %d != candidate count %d: engine not work-efficient", warm.Work, c.NumCandidates())
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := solver.Solve(ctx, c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E16 — solution-path extraction at scale: three reconstruction
// strategies over one converged blocked solve. "recorded" walks the
// split matrix recorded during the solve (WithSplits) in O(n); "lazy"
// re-derives only the n-1 answer-tree spans from the value table (one
// O(span) scan each); "eager" re-derives the split of every span — the
// pre-recording ExtractTree cost, cubic in candidate scans, which is
// why it runs only at the small size. The CI bench job smokes it at
// -benchtime 1x.
func BenchmarkE16PathExtraction(b *testing.B) {
	kern := algebra.MinPlus{}
	for _, n := range []int{1024, 4096} {
		in := problems.RandomMatrixChain(n, 50, 1)
		res := blocked.Solve(in, blocked.Options{RecordSplits: true})
		b.Run(fmt.Sprintf("mode=recorded/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := recurrence.TreeFromSplits(in.N, res.Split); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mode=lazy/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := recurrence.ExtractTreeSemiring(in, res.Table, kern); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n > 1024 {
			continue
		}
		b.Run(fmt.Sprintf("mode=eager/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for it := 0; it < b.N; it++ {
				size := n + 1
				splits := make([]int32, size*size)
				for i := 0; i <= n; i++ {
					for j := i + 2; j <= n; j++ {
						target := kern.Norm(res.Table.At(i, j))
						for k := i + 1; k < j; k++ {
							v := kern.Extend3(in.F(i, k, j), res.Table.At(i, k), res.Table.At(k, j))
							if !kern.IsZero(v) && kern.Norm(v) == target {
								splits[i*size+j] = int32(k)
								break
							}
						}
					}
				}
				if _, err := recurrence.TreeFromSplits(n, func(i, j int) int {
					return int(splits[i*size+j])
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E17 — the Knuth-Yao pruned engine: the O(n^2)-work claim measured
// and asserted. Each pruned solve's charged work must stay inside the
// 4*n^2 envelope (the telescoping windows cost ~2 candidates per cell;
// the factor-4 slack absorbs clamping at the borders), and at the sizes
// where the unpruned engine also runs, the pruned candidate count must
// be strictly below the unpruned one. n=4096 — a ~25 s unpruned solve —
// is the headline interactive win, so only the pruned engine runs
// there. The CI bench job smokes this at -benchtime 1x; BENCH_core.json
// carries the committed blocked-ky trajectory.
func BenchmarkE17KnuthYao(b *testing.B) {
	for _, c := range []struct {
		n        int
		unpruned bool
	}{
		{256, true},
		{1024, true},
		{4096, false},
	} {
		in := problems.RandomOBST(c.n-1, 50, 1) // n-1 keys -> in.N = c.n
		opts := blocked.Options{}
		var prunedWork int64
		b.Run(fmt.Sprintf("engine=blocked-ky/n=%d", c.n), func(b *testing.B) {
			res := blocked.SolveKY(in, opts) // warm the pool; audit the envelope
			prunedWork = res.Acct.Work - int64(in.N)
			if limit := 4 * int64(in.N) * int64(in.N); prunedWork > limit {
				b.Fatalf("n=%d: pruned work %d exceeds the 4n^2 envelope %d", in.N, prunedWork, limit)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blocked.SolveKY(in, opts)
			}
		})
		if !c.unpruned {
			continue
		}
		b.Run(fmt.Sprintf("engine=blocked-unpruned/n=%d", c.n), func(b *testing.B) {
			res := blocked.Solve(in, opts)
			if unprunedWork := res.Acct.Work - int64(in.N); prunedWork >= unprunedWork {
				b.Fatalf("n=%d: pruned work %d not below unpruned %d", in.N, prunedWork, unprunedWork)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blocked.Solve(in, opts)
			}
		})
	}
}

// E18 — the pipelined blocked engine: the barrier-free dependency-
// counter schedule against the fenced wavefront it replaces, at the E14
// sizes, plus the overlap only a shared scheduler can express — the
// same two instances run fenced back-to-back and as one jointly-seeded
// tile graph. Each pipelined run re-asserts its contract before timing:
// zero barriers on the scheduler counters. The CI bench job smokes this
// at -benchtime 1x; BENCH_core.json carries the committed blocked-pipe
// and batch2 trajectories.
func BenchmarkE18Pipelined(b *testing.B) {
	opts := blocked.Options{Workers: 4} // the BENCH_core.json convention
	for _, n := range []int{256, 1024} {
		in := problems.RandomMatrixChain(n, 50, 1)
		b.Run(fmt.Sprintf("engine=blocked/n=%d", n), func(b *testing.B) {
			blocked.Solve(in, opts) // warm the shared pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blocked.Solve(in, opts)
			}
		})
		b.Run(fmt.Sprintf("engine=blocked-pipe/n=%d", n), func(b *testing.B) {
			res := blocked.SolvePipe(in, opts) // warm the pool; pin the contract
			if res.Stats.Barriers != 0 {
				b.Fatalf("n=%d: pipelined solve crossed %d barriers, want 0", n, res.Stats.Barriers)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blocked.SolvePipe(in, opts)
			}
		})
	}

	insA := problems.RandomMatrixChain(512, 50, 1)
	insB := problems.RandomMatrixChain(512, 50, 2)
	items := []blocked.BatchItem{{In: insA}, {In: insB}}
	ctx := context.Background()
	b.Run("mode=batch2-fenced/n=512", func(b *testing.B) {
		blocked.Solve(insA, opts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blocked.Solve(insA, opts)
			blocked.Solve(insB, opts)
		}
	})
	b.Run("mode=batch2-overlapped/n=512", func(b *testing.B) {
		if _, errs := blocked.SolvePipeBatchCtx(ctx, items, opts); errs[0] != nil || errs[1] != nil {
			b.Fatal(errs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, errs := blocked.SolvePipeBatchCtx(ctx, items, opts); errs[0] != nil || errs[1] != nil {
				b.Fatal(errs)
			}
		}
	})
}

// Ablation: windowed vs unwindowed pebble schedule (Section 5).
func BenchmarkAblationWindow(b *testing.B) {
	in := problems.Zigzag(64).Materialize()
	for _, window := range []bool{false, true} {
		b.Run(fmt.Sprintf("window=%v", window), func(b *testing.B) {
			var procs float64
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, core.Options{Variant: core.Banded, Window: window})
				procs = float64(res.Acct.MaxProcs)
			}
			b.ReportMetric(procs, "pram-procs")
		})
	}
}

// Ablation: synchronous vs chaotic update order.
func BenchmarkAblationChaotic(b *testing.B) {
	in := problems.Zigzag(36).Materialize()
	target := seq.Solve(in).Table
	for _, mode := range []core.Mode{core.Synchronous, core.Chaotic} {
		b.Run(mode.String(), func(b *testing.B) {
			var conv int
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, core.Options{Variant: core.Dense, Mode: mode, Target: target})
				conv = res.ConvergedAt
			}
			b.ReportMetric(float64(conv), "converged-at")
		})
	}
}

// Ablation: band radius (Section 5's D = 2*ceil(sqrt n) vs alternatives).
func BenchmarkAblationBand(b *testing.B) {
	n := 64
	in := problems.Zigzag(n).Materialize()
	target := seq.Solve(in).Table
	for _, d := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			var conv, work float64
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, core.Options{Variant: core.Banded, BandRadius: d,
					Target: target, MaxIterations: 3 * n})
				conv = float64(res.ConvergedAt)
				work = float64(res.Acct.Work)
			}
			b.ReportMetric(conv, "converged-at")
			b.ReportMetric(work, "work")
		})
	}
}

// Baseline micro-benchmarks.
func BenchmarkSeqSolve(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.RandomMatrixChain(n, 50, 1).Materialize()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seq.Solve(in)
			}
		})
	}
}

func BenchmarkKnuthSolve(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := problems.RandomOBST(n, 50, 1).Materialize()
			for i := 0; i < b.N; i++ {
				seq.SolveKnuth(in)
			}
		})
	}
}

func BenchmarkWavefrontSolve(b *testing.B) {
	in := problems.RandomMatrixChain(96, 50, 1).Materialize()
	for i := 0; i < b.N; i++ {
		wavefront.Solve(in, wavefront.Options{})
	}
}

func BenchmarkPebbleGameMove(b *testing.B) {
	tree := btree.Zigzag(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := pebble.NewGame(tree, pebble.HLVRule)
		g.Run(0)
	}
}
