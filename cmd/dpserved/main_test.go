package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sublineardp/internal/serve"
	"sublineardp/internal/wire"
)

// TestConfigFromArgs pins the flag wiring: every serving knob reaches
// the Config field it claims to.
func TestConfigFromArgs(t *testing.T) {
	cfg, addr, err := configFromArgs([]string{
		"-addr", "127.0.0.1:9999",
		"-engine", "hlv-banded",
		"-maxn", "512",
		"-queue", "7",
		"-batch-window", "5ms",
		"-max-batch", "9",
		"-cache", "11",
		"-timeout", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:9999" {
		t.Errorf("addr = %q", addr)
	}
	want := serve.Config{
		Engine: "hlv-banded", MaxN: 512, MaxNHeavy: 64, MaxWorkers: 256,
		QueueDepth: 7, BatchWindow: 5 * time.Millisecond, MaxBatch: 9,
		CacheCapacity: 11, RequestTimeout: 3 * time.Second,
	}
	if cfg != want {
		t.Errorf("cfg = %+v, want %+v", cfg, want)
	}
	if _, _, err := configFromArgs([]string{"-queue", "elephants"}); err == nil {
		t.Error("bad flag value accepted")
	}
}

// TestServerSmoke boots the exact stack main mounts and solves one
// request through it.
func TestServerSmoke(t *testing.T) {
	cfg, _, err := configFromArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body, _ := json.Marshal(&wire.Request{
		Kind: wire.KindMatrixChain, Dims: []int{30, 35, 15, 5, 10, 20, 25}})
	resp, err := http.Post(hs.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wr wire.Response
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || wr.Cost != 15125 {
		t.Fatalf("status %d cost %d, want 200 / 15125", resp.StatusCode, wr.Cost)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(buf.String(), "dpserved_responses_ok_total 1") {
		t.Error("metrics did not record the solve")
	}
}
