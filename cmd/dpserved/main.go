// Command dpserved serves the Solver API over HTTP/JSON: a coalescing,
// caching front end over the pooled tile-parallel runtime.
//
//	dpserved -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/solve -d '{
//	        "kind": "matrixchain",
//	        "dims": [30, 35, 15, 5, 10, 20, 25],
//	        "want_tree": true}'
//	curl -s localhost:8080/metrics | grep dpserved_
//
// Endpoints: POST /solve (wire.Request -> wire.Response), GET /healthz,
// GET /metrics (Prometheus text format). Request and response formats
// are defined (and golden-tested) in internal/wire.
//
// The serving knobs mirror the paper's cost model the way DESIGN.md
// describes: -queue bounds admitted work (shed beyond it), -batch-window
// and -max-batch shape how arrival concurrency folds into SolveBatch
// calls, -pool sizes the one worker pool every batch dispatches onto.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sublineardp"
	"sublineardp/internal/serve"
)

func main() {
	cfg, addr, err := configFromArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpserved: %v\n", err)
		os.Exit(2)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpserved: %v\n", err)
		os.Exit(2)
	}
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("dpserved: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()
	log.Printf("dpserved: listening on %s (engine=%s queue=%d window=%s batch<=%d cache=%d maxn=%d semirings=%v)",
		addr, cfg.Engine, cfg.QueueDepth, cfg.BatchWindow, cfg.MaxBatch, cfg.CacheCapacity, cfg.MaxN,
		sublineardp.Semirings())
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dpserved: %v", err)
	}
}

// configFromArgs parses flags into the serving Config, split out of main
// so the smoke test covers the actual flag wiring.
func configFromArgs(args []string) (serve.Config, string, error) {
	fs := flag.NewFlagSet("dpserved", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		engine   = fs.String("engine", sublineardp.EngineAuto, "default engine for requests that name none")
		maxN     = fs.Int("maxn", 4096, "largest accepted instance size (negative = unbounded)")
		maxNH    = fs.Int("maxn-heavy", 64, "size limit for the O(n^4)-memory engines hlv-dense/rytter/semiring")
		maxW     = fs.Int("max-workers", 256, "largest accepted per-request workers option")
		queue    = fs.Int("queue", 256, "admission queue depth (further requests are shed with 503)")
		window   = fs.Duration("batch-window", 2*time.Millisecond, "how long a batch waits for stragglers")
		maxBatch = fs.Int("max-batch", 32, "max instances per SolveBatch dispatch")
		conc     = fs.Int("concurrency", 0, "instances solved at once per batch (0 = GOMAXPROCS)")
		cacheCap = fs.Int("cache", 4096, "solution cache entries (negative disables caching)")
		timeout  = fs.Duration("timeout", 30*time.Second, "server-side deadline per request")
		poolW    = fs.Int("pool", 0, "worker pool width (0 = the process-wide default pool)")
		calPath  = fs.String("calibration", "", "machine calibration profile from `dpbench -calibrate` (\"\" = none)")
	)
	if err := fs.Parse(args); err != nil {
		return serve.Config{}, "", err
	}
	cfg := serve.Config{
		Engine:         *engine,
		MaxN:           *maxN,
		MaxNHeavy:      *maxNH,
		MaxWorkers:     *maxW,
		QueueDepth:     *queue,
		BatchWindow:    *window,
		MaxBatch:       *maxBatch,
		Concurrency:    *conc,
		CacheCapacity:  *cacheCap,
		RequestTimeout: *timeout,
	}
	if *poolW > 0 {
		cfg.Pool = sublineardp.NewPool(*poolW)
	}
	if *calPath != "" {
		prof, err := sublineardp.LoadCalibration(*calPath)
		if err != nil {
			return serve.Config{}, "", fmt.Errorf("-calibration: %w", err)
		}
		cfg.Calibration = prof
	}
	return cfg, *addr, nil
}
