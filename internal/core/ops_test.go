package core

import (
	"context"
	"testing"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
)

// testRT builds a runtime on the shared pool for state-level tests.
func testRT(workers int) *runtime {
	return &runtime{pool: parutil.Default(), workers: workers}
}

// These tests pin the micro-semantics of the three operations on
// hand-computable states, independent of full solver runs.

// tiny3 is the 3-object instance with f(i,k,j) = 10*i + k and init(i) = i+1:
// small enough to trace by hand.
func tiny3() *recurrence.Instance {
	return &recurrence.Instance{
		N:    3,
		Name: "tiny3",
		Init: func(i int) cost.Cost { return cost.Cost(i + 1) },
		F:    func(i, k, j int) cost.Cost { return cost.Cost(10*i + k) },
	}
}

func TestDenseInitialState(t *testing.T) {
	s := newDenseState(algebra.MinPlus{}, tiny3(), testRT(1), true, nil, false)
	// w'(i,i+1) = init(i); everything else Inf.
	for i := 0; i < 3; i++ {
		if got := s.w[i*s.sz+i+1]; got != cost.Cost(i+1) {
			t.Errorf("w(%d,%d) = %d, want %d", i, i+1, got, i+1)
		}
	}
	if !cost.IsInf(s.w[0*s.sz+2]) || !cost.IsInf(s.w[0*s.sz+3]) {
		t.Error("non-leaf w entries not Inf")
	}
	// pw'(i,j,i,j) = 0 for all pairs.
	for i := 0; i <= 3; i++ {
		for j := i + 1; j <= 3; j++ {
			if got := s.pw[s.idx(i, j, i, j)]; got != 0 {
				t.Errorf("pw(%d,%d,%d,%d) = %d, want 0", i, j, i, j, got)
			}
		}
	}
}

func TestDenseActivateSemantics(t *testing.T) {
	s := newDenseState(algebra.MinPlus{}, tiny3(), testRT(1), true, nil, false)
	s.activate(context.Background())
	// pw'(0,2,0,1) = f(0,1,2) + w'(1,2) = 1 + 2 = 3 (gap = left child).
	if got := s.pw[s.idx(0, 2, 0, 1)]; got != 3 {
		t.Errorf("pw(0,2,0,1) = %d, want 3", got)
	}
	// pw'(0,2,1,2) = f(0,1,2) + w'(0,1) = 1 + 1 = 2 (gap = right child).
	if got := s.pw[s.idx(0, 2, 1, 2)]; got != 2 {
		t.Errorf("pw(0,2,1,2) = %d, want 2", got)
	}
	// pw'(0,3,0,1) = f(0,1,3) + w'(1,3): w'(1,3) is Inf -> stays Inf.
	if !cost.IsInf(s.pw[s.idx(0, 3, 0, 1)]) {
		t.Error("pw(0,3,0,1) should still be Inf (w'(1,3) unknown)")
	}
	// pw'(0,3,0,2) = f(0,2,3) + w'(2,3) = 2 + 3 = 5.
	if got := s.pw[s.idx(0, 3, 0, 2)]; got != 5 {
		t.Errorf("pw(0,3,0,2) = %d, want 5", got)
	}
}

func TestDensePebbleSemantics(t *testing.T) {
	s := newDenseState(algebra.MinPlus{}, tiny3(), testRT(1), true, nil, false)
	s.activate(context.Background())
	// After activation, pebbling (0,2) closes pw'(0,2,0,1)+w'(0,1) = 3+1
	// or pw'(0,2,1,2)+w'(1,2) = 2+2; both give 4 = f(0,1,2)+init0+init1.
	s.pebble(context.Background(), 2, 3)
	if got := s.w[0*s.sz+2]; got != 4 {
		t.Errorf("w(0,2) = %d, want 4", got)
	}
	// (1,3): f(1,2,3)+w(1,2)+w(2,3) = 12+2+3 = 17.
	if got := s.w[1*s.sz+3]; got != 17 {
		t.Errorf("w(1,3) = %d, want 17", got)
	}
}

func TestDenseSquareComposition(t *testing.T) {
	// Drive two iterations on a span-3 instance and verify the square
	// composes one-edge partial trees into a two-edge one: pw'(0,3,0,1)
	// should become f(0,2,3) + f(0,1,2) + w'(2,3) + w'(1,2) via
	// composition pw'(0,3,0,2) + pw'(0,2,0,1)... sharing endpoint q=...
	// Here gap (0,1) with root (0,3): decomposition at (0,2):
	// pw'(0,3,0,1) = pw'(0,3,0,2) + pw'(0,2,0,1) = 5 + 3 = 8.
	s := newDenseState(algebra.MinPlus{}, tiny3(), testRT(1), true, nil, false)
	s.activate(context.Background())
	s.square(context.Background())
	if got := s.pw[s.idx(0, 3, 0, 1)]; got != 8 {
		t.Errorf("pw(0,3,0,1) after square = %d, want 8", got)
	}
}

func TestBandedMatchesDenseStateEvolution(t *testing.T) {
	// With D >= n-1 the band holds everything; the two variants must then
	// evolve identical w tables at every iteration.
	in := problems.RandomInstance(9, 30, 5)
	for it := 1; it <= DefaultIterations(9); it++ {
		d := Solve(in, Options{Variant: Dense, MaxIterations: it})
		b := Solve(in, Options{Variant: Banded, BandRadius: 9, MaxIterations: it})
		if !d.Table.Equal(b.Table) {
			t.Fatalf("iteration %d: full-band banded diverged from dense: %v",
				it, d.Table.Diff(b.Table, 3))
		}
	}
}

func TestBandedNarrowBandIsUpperBound(t *testing.T) {
	// A narrower band can only slow convergence, never produce better
	// (smaller) values than dense at the same iteration, and never
	// undershoot the optimum.
	in := problems.Zigzag(16)
	opt := Solve(in, Options{Variant: Dense}).Table
	for it := 1; it <= 6; it++ {
		d := Solve(in, Options{Variant: Dense, MaxIterations: it})
		b := Solve(in, Options{Variant: Banded, BandRadius: 2, MaxIterations: it})
		for i := 0; i <= 16; i++ {
			for j := i + 1; j <= 16; j++ {
				bv, dv, ov := b.Table.At(i, j), d.Table.At(i, j), opt.At(i, j)
				if bv < dv {
					t.Fatalf("iter %d: banded (%d,%d)=%d below dense %d", it, i, j, bv, dv)
				}
				if cost.Norm(bv) != cost.Inf && bv < ov {
					t.Fatalf("undershoot at (%d,%d): %d < optimum %d", i, j, bv, ov)
				}
			}
		}
	}
}

func TestBandedCellIndexing(t *testing.T) {
	in := problems.RandomInstance(12, 10, 1)
	s := newBandedState(algebra.MinPlus{}, in, testRT(1), true, nil, 0, false)
	// Every in-band (i,j,p,q) must map to a unique index within bounds.
	seen := make(map[int][4]int)
	for i := 0; i <= 12; i++ {
		for j := i + 1; j <= 12; j++ {
			dm := s.dmax(j - i)
			for p := i; p <= j; p++ {
				for q := p + 1; q <= j; q++ {
					d := (p - i) + (j - q)
					if d > dm {
						continue
					}
					c := s.cellIdx(i, j, p, q)
					if c < 0 || c >= len(s.buf) {
						t.Fatalf("index %d out of range for (%d,%d,%d,%d)", c, i, j, p, q)
					}
					if prev, dup := seen[c]; dup {
						t.Fatalf("cells (%d,%d,%d,%d) and %v collide at %d", i, j, p, q, prev, c)
					}
					seen[c] = [4]int{i, j, p, q}
				}
			}
		}
	}
	if len(seen) != len(s.buf) {
		t.Fatalf("%d cells mapped, buffer has %d (holes in layout)", len(seen), len(s.buf))
	}
}

func TestBandedGetOutsideBandIsInf(t *testing.T) {
	in := problems.RandomInstance(20, 10, 1)
	s := newBandedState(algebra.MinPlus{}, in, testRT(1), true, nil, 3, false)
	// (0,20,p,q) with deficit 10 is outside D=3.
	if got := s.get(s.buf, 0, 20, 5, 15); !cost.IsInf(got) {
		t.Fatalf("out-of-band read = %d, want Inf", got)
	}
	// In-band read of the trivial gap is 0.
	if got := s.get(s.buf, 0, 20, 0, 20); got != 0 {
		t.Fatalf("trivial gap = %d, want 0", got)
	}
}

func TestChargesMatchCountedWork(t *testing.T) {
	// The analytic per-iteration charges must equal the actual candidate
	// counts. Count by instrumenting a run with History+track (pw change
	// counting walks the same loops) — instead we recount directly here.
	in := problems.RandomInstance(10, 10, 2)
	s := newDenseState(algebra.MinPlus{}, in, testRT(1), true, nil, false)
	// Recount square work by brute force.
	var want int64
	for i := 0; i <= 10; i++ {
		for j := i + 1; j <= 10; j++ {
			for p := i; p <= j; p++ {
				for q := p + 1; q <= j; q++ {
					want += int64(p-i) + int64(j-q)
				}
			}
		}
	}
	if s.squareWork != want {
		t.Fatalf("analytic square work %d != counted %d", s.squareWork, want)
	}
	// Activate: two updates per (i,k,j) triple.
	var triples int64
	for i := 0; i <= 10; i++ {
		for k := i + 1; k <= 10; k++ {
			for j := k + 1; j <= 10; j++ {
				triples++
			}
		}
	}
	if s.activateWork != 2*triples {
		t.Fatalf("analytic activate work %d != counted %d", s.activateWork, 2*triples)
	}

	b := newBandedState(algebra.MinPlus{}, in, testRT(1), true, nil, 0, false)
	var bandWant int64
	for i := 0; i <= 10; i++ {
		for j := i + 1; j <= 10; j++ {
			dm := b.dmax(j - i)
			for d := 0; d <= dm; d++ {
				for a := 0; a <= d; a++ {
					bandWant += int64(d)
				}
			}
		}
	}
	if b.squareWork != bandWant {
		t.Fatalf("analytic banded square work %d != counted %d", b.squareWork, bandWant)
	}
}

func TestWindowScheduleCoversAllSpans(t *testing.T) {
	// Over the full budget, the window schedule must pebble every span at
	// least once: verify by solving a shaped instance where every node
	// matters and checking full convergence (already covered) plus the
	// specific window arithmetic.
	n := 30
	sqrtN := 6 // ceil(sqrt(30))
	covered := make([]bool, n+1)
	budget := DefaultIterations(n)
	for iter := 1; iter <= budget; iter++ {
		l := (iter + 1) / 2
		if l > sqrtN {
			l = sqrtN
		}
		lo := (l-1)*(l-1) + 1
		hi := l * l
		if l == sqrtN {
			hi = n
		}
		for s := lo; s <= hi && s <= n; s++ {
			covered[s] = true
		}
	}
	for s := 2; s <= n; s++ {
		if !covered[s] {
			t.Errorf("span %d never inside the pebble window", s)
		}
	}
}
