package btree

import (
	"fmt"
	"strings"
)

// Render draws the tree sideways in ASCII, one node per line, the root at
// the left. Labels are the node spans; an optional labeler can override
// them (e.g. to show BST keys). Used to reproduce Figures 1 and 2.
func (t *Tree) Render(label func(v int32) string) string {
	if label == nil {
		label = func(v int32) string {
			return fmt.Sprintf("(%d,%d)", t.Lo[v], t.Hi[v])
		}
	}
	var b strings.Builder
	t.render(&b, t.Root, "", "", label)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, v int32, prefix, childPrefix string, label func(v int32) string) {
	b.WriteString(prefix)
	b.WriteString(label(v))
	b.WriteByte('\n')
	if t.IsLeaf(v) {
		return
	}
	t.render(b, t.Left[v], childPrefix+"├─ ", childPrefix+"│  ", label)
	t.render(b, t.Right[v], childPrefix+"└─ ", childPrefix+"   ", label)
}

// RenderCompact draws only the heavy chain with off-chain subtree sizes,
// the view Figure 1 of the paper uses to explain the chain decomposition.
func (t *Tree) RenderCompact(threshold int) string {
	chain, offs := t.ChainDecomposition(t.Root, threshold)
	var b strings.Builder
	fmt.Fprintf(&b, "chain (threshold %d):\n", threshold)
	for idx, v := range chain {
		i, j := t.Span(v)
		fmt.Fprintf(&b, "  v%-3d (%d,%d) size=%d", idx+1, i, j, t.Size(v))
		if idx < len(offs) {
			fmt.Fprintf(&b, "  off-chain child size n_%d=%d", idx+1, offs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
