// Command dpbench regenerates the paper's tables and figures as text (and
// optionally CSV). Each experiment is indexed in DESIGN.md and recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	dpbench                  # run everything at full scale
//	dpbench -exp E2,E4       # run selected experiments
//	dpbench -quick           # reduced sizes (seconds, used by CI)
//	dpbench -csv out/        # also write one CSV per table
//	dpbench -list            # list the experiment registry
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sublineardp/internal/exper"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "run at reduced test-suite scale")
		csvDir  = flag.String("csv", "", "directory to also write per-table CSV files")
		workers = flag.Int("workers", 0, "goroutine count for parallel solvers (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exper.Experiment
	if strings.EqualFold(*expFlag, "all") {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := exper.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := exper.Config{Quick: *quick, Workers: *workers}
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(cfg)
		for ti, tb := range tables {
			tb.Render(os.Stdout)
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(tb.ID), ti)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
					os.Exit(1)
				}
				tb.CSV(f)
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s finished in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
