package sublineardp_test

import (
	"context"
	"errors"
	mrand "math/rand"
	"testing"

	"sublineardp"
	"sublineardp/internal/blocked"
	"sublineardp/internal/btree"
	"sublineardp/internal/core"
	"sublineardp/internal/llp"
	"sublineardp/internal/pebble"
	"sublineardp/internal/problems"
	"sublineardp/internal/seq"
	"sublineardp/internal/verify"
)

// Native fuzz targets. `go test` runs the seeded corpus as regular tests;
// `go test -fuzz FuzzX` explores further.

// FuzzSolversAgree cross-checks the parallel solvers against the
// sequential DP on arbitrary seeded instances.
func FuzzSolversAgree(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(20))
	f.Add(int64(42), uint8(9), uint8(1))
	f.Add(int64(-7), uint8(12), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, nn, maxW uint8) {
		n := int(nn)%12 + 1
		in := problems.RandomInstance(n, int(maxW)+1, seed)
		want := seq.Solve(in).Table
		if rep := verify.Table(in, want); !rep.OK() {
			t.Fatalf("sequential table failed verification: %v", rep.Err())
		}
		for _, opts := range []core.Options{
			{Variant: core.Dense},
			{Variant: core.Banded},
			{Variant: core.Banded, Window: true},
			{Variant: core.Banded, Termination: core.WStable},
		} {
			got := core.Solve(in, opts)
			if !got.Table.Equal(want) {
				t.Fatalf("options %+v disagree on n=%d seed=%d: %v",
					opts, n, seed, got.Table.Diff(want, 3))
			}
		}
	})
}

// FuzzBandedMatchesDense drives the banded storage against the dense
// reference across band radii clustered at the interesting edges: the
// paper's default D = 2*ceil(sqrt n), D just above and below it (the
// band-edge deficits (j-i)-(q-p) ~ D where cells fall out of storage),
// and tiny D where almost everything routes through the direct-combine
// completion described in internal/core/doc.go. Shaped instances
// (selector odd) make the optimal tree a deep spine, the case whose
// activate edges exceed any o(n) band and so exercise that completion
// hardest; the seeds pin both regimes. The final tables must agree at
// every radius — a narrower band may converge slower, never wrong — and
// partial-iteration tables must keep banded a pointwise upper bound of
// dense.
func FuzzBandedMatchesDense(f *testing.F) {
	f.Add(int64(1), uint8(9), uint8(0), false)  // default D (n=11)
	f.Add(int64(2), uint8(14), uint8(8), false) // n=16, D = 2*ceil(sqrt 16): the exact edge
	f.Add(int64(3), uint8(14), uint8(7), false) // n=16, one below the edge
	f.Add(int64(4), uint8(14), uint8(9), false) // n=16, one above the edge
	f.Add(int64(5), uint8(12), uint8(1), true)  // n=14 spine through direct combine
	f.Add(int64(6), uint8(10), uint8(2), true)  // narrow band on a shaped instance (n=12)
	f.Add(int64(7), uint8(8), uint8(13), false) // band wider than the instance (n=10, D=13)
	f.Fuzz(func(t *testing.T, seed int64, nn, radius uint8, shaped bool) {
		n := int(nn)%16 + 2
		var in *sublineardp.Instance
		if shaped {
			in = problems.Shaped(btree.RandomSplit(n, newSeededRand(seed)))
		} else {
			in = problems.RandomInstance(n, 60, seed)
		}
		in = in.Materialize()
		d := int(radius) % (n + 4) // sweep past D = 2*ceil(sqrt n) <= n+2
		want := core.Solve(in, core.Options{Variant: core.Dense})
		if rep := verify.Table(in, want.Table); !rep.OK() {
			t.Fatalf("dense table failed verification: %v", rep.Err())
		}
		budget := 3 * core.DefaultIterations(n) // narrow bands converge slower
		got := core.Solve(in, core.Options{Variant: core.Banded, BandRadius: d, MaxIterations: budget})
		if !got.Table.Equal(want.Table) {
			t.Fatalf("banded D=%d disagrees with dense on n=%d seed=%d shaped=%v: %v",
				d, n, seed, shaped, got.Table.Diff(want.Table, 3))
		}
		// Mid-flight the banded table must never undershoot the dense one.
		half := core.DefaultIterations(n) / 2
		if half >= 1 {
			dHalf := core.Solve(in, core.Options{Variant: core.Dense, MaxIterations: half})
			bHalf := core.Solve(in, core.Options{Variant: core.Banded, BandRadius: d, MaxIterations: half})
			if err := verify.UpperBoundedBy(bHalf.Table, dHalf.Table); err != nil {
				t.Fatalf("banded D=%d undershoots dense at iteration %d (n=%d seed=%d): %v",
					d, half, n, seed, err)
			}
		}
	})
}

// FuzzBlockedMatchesSequential drives the blocked engine against the
// sequential DP across tile-boundary shapes: block edges with
// n mod B in {0, 1, B-1} (the partial-tile and off-by-one regimes where
// the block-wavefront index arithmetic can go wrong), B = 1 (every
// index its own block), B > n (a single in-tile closure), and shaped
// spine instances whose optimal tree crosses every tile boundary. The
// tables must match the sequential solver *bitwise* — not just on the
// optimum — under the declared algebra, and pass the solver-independent
// fixed-point verifier.
func FuzzBlockedMatchesSequential(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(4), false) // n%B == 0
	f.Add(int64(2), uint8(17), uint8(4), false) // n%B == 1
	f.Add(int64(3), uint8(15), uint8(4), false) // n%B == B-1
	f.Add(int64(4), uint8(12), uint8(1), false) // one index per block
	f.Add(int64(5), uint8(9), uint8(14), false) // single tile (B > n)
	f.Add(int64(6), uint8(24), uint8(5), true)  // spine across tile boundaries
	f.Add(int64(7), uint8(26), uint8(0), false) // default tile heuristic
	f.Fuzz(func(t *testing.T, seed int64, nn, tile uint8, shaped bool) {
		n := int(nn)%28 + 2
		b := int(tile) % (n + 3) // sweep past B = n+1, 0 = default
		var in *sublineardp.Instance
		if shaped {
			in = problems.Shaped(btree.RandomSplit(n, newSeededRand(seed)))
		} else {
			in = problems.RandomInstance(n, 60, seed)
		}
		want := seq.Solve(in)
		got := blocked.Solve(in, blocked.Options{TileSize: b})
		wd, gd := want.Table.Data(), got.Table.Data()
		for c := range wd {
			if wd[c] != gd[c] {
				t.Fatalf("blocked B=%d diverges from sequential bitwise on n=%d seed=%d shaped=%v: %v",
					b, n, seed, shaped, got.Table.Diff(want.Table, 3))
			}
		}
		if rep := verify.Table(in, got.Table); !rep.OK() {
			t.Fatalf("blocked B=%d table not a fixed point (n=%d seed=%d): %v", b, n, seed, rep.Err())
		}
	})
}

// FuzzRecordedSplitsTree pins the blocked engine's recorded splits
// against the sequential engine's: the trees reconstructed from the two
// recordings must be identical — same smallest-k tie-break — across
// tile-boundary shapes, with the shaped spine instances forcing optimal
// trees that cross every tile boundary. Random min-plus instances are
// always feasible, so a tree always exists.
func FuzzRecordedSplitsTree(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(4), false) // n%B == 0
	f.Add(int64(2), uint8(17), uint8(4), false) // n%B == 1
	f.Add(int64(3), uint8(12), uint8(1), false) // one index per block
	f.Add(int64(4), uint8(9), uint8(14), false) // single tile (B > n)
	f.Add(int64(5), uint8(24), uint8(5), true)  // spine across tile boundaries
	f.Fuzz(func(t *testing.T, seed int64, nn, tile uint8, shaped bool) {
		n := int(nn)%28 + 2
		b := int(tile) % (n + 3)
		var in *sublineardp.Instance
		if shaped {
			in = problems.Shaped(btree.RandomSplit(n, newSeededRand(seed)))
		} else {
			in = problems.RandomInstance(n, 60, seed)
		}
		want := sublineardp.SolveSequential(in).Tree()
		sol, err := sublineardp.MustNewSolver(sublineardp.EngineBlocked,
			sublineardp.WithSplits(true), sublineardp.WithTileSize(b)).
			Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sol.Tree()
		if err != nil {
			t.Fatalf("recorded-splits tree (n=%d B=%d seed=%d shaped=%v): %v", n, b, seed, shaped, err)
		}
		if !got.Equal(want) {
			t.Fatalf("recorded-splits tree diverges from sequential on n=%d B=%d seed=%d shaped=%v",
				n, b, seed, shaped)
		}
	})
}

// FuzzKnuthYaoMatchesBlocked is the fuzz wall behind the O(n^2) claim:
// on random declared-convex instances (OBST weights and density-built
// RandomConvex vectors) across the same tile-boundary shapes as
// FuzzBlockedMatchesSequential, the pruned engine must be *bitwise*
// identical to the unpruned recording engine — value table AND split
// matrix — while charging exactly seq.SolveKnuth's pruned candidate
// count. Shaped spine instances do not declare convexity and must take
// the rejection path, at both the internal and the registry boundary.
func FuzzKnuthYaoMatchesBlocked(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(4), uint8(0), false) // n%B == 0, obst
	f.Add(int64(2), uint8(17), uint8(4), uint8(1), false) // n%B == 1, convex-rand
	f.Add(int64(3), uint8(15), uint8(4), uint8(0), false) // n%B == B-1
	f.Add(int64(4), uint8(12), uint8(1), uint8(1), false) // one index per block
	f.Add(int64(5), uint8(9), uint8(14), uint8(0), false) // single tile (B > n)
	f.Add(int64(6), uint8(24), uint8(7), uint8(1), false) // odd tile edge
	f.Add(int64(7), uint8(26), uint8(0), uint8(0), false) // default tile heuristic
	f.Add(int64(8), uint8(20), uint8(5), uint8(0), true)  // shaped spine: rejection path
	f.Fuzz(func(t *testing.T, seed int64, nn, tile, family uint8, shaped bool) {
		n := int(nn)%28 + 2
		b := int(tile) % (n + 3) // sweep past B = n+1, 0 = default
		ctx := context.Background()
		if shaped {
			// Shaped spines satisfy no quadrangle inequality and declare
			// none: pruning must refuse, never silently fall back.
			in := problems.Shaped(btree.RandomSplit(n, newSeededRand(seed)))
			if _, err := blocked.SolveKYCtx(ctx, in, blocked.Options{TileSize: b}); !errors.Is(err, blocked.ErrNotConvex) {
				t.Fatalf("shaped spine n=%d seed=%d: err = %v, want ErrNotConvex", n, seed, err)
			}
			_, err := sublineardp.MustNewSolver(sublineardp.EngineBlockedKY,
				sublineardp.WithTileSize(b)).Solve(ctx, in)
			if !errors.Is(err, sublineardp.ErrConvexityRequired) {
				t.Fatalf("shaped spine via registry n=%d seed=%d: err = %v, want ErrConvexityRequired", n, seed, err)
			}
			return
		}
		var in *sublineardp.Instance
		if family%2 == 0 {
			in = problems.RandomOBST(n, 60, seed) // n keys -> in.N = n+1 objects
		} else {
			in = problems.RandomConvex(n, 20, seed)
		}
		n = in.N
		want := blocked.Solve(in, blocked.Options{TileSize: b, RecordSplits: true})
		knuth := seq.SolveKnuth(in)
		got := blocked.SolveKY(in, blocked.Options{TileSize: b})
		wd, gd := want.Table.Data(), got.Table.Data()
		for c := range wd {
			if wd[c] != gd[c] {
				t.Fatalf("pruned B=%d diverges from blocked bitwise on %s B=%d seed=%d: %v",
					b, in.Name, b, seed, got.Table.Diff(want.Table, 3))
			}
		}
		for i := 0; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if g, e := got.Split(i, j), want.Split(i, j); g != e {
					t.Fatalf("pruned split(%d,%d) = %d, unpruned recorded %d (%s B=%d seed=%d)",
						i, j, g, e, in.Name, b, seed)
				}
				if g, e := got.Table.At(i, j), knuth.Table.At(i, j); g != e {
					t.Fatalf("pruned value(%d,%d) = %d, seq.SolveKnuth %d (%s B=%d seed=%d)",
						i, j, g, e, in.Name, b, seed)
				}
			}
		}
		if work := got.Acct.Work - int64(n); work != knuth.Work {
			t.Fatalf("pruned work %d != seq.SolveKnuth %d (%s B=%d seed=%d)", work, knuth.Work, in.Name, b, seed)
		}
		if rep := verify.Table(in, got.Table); !rep.OK() {
			t.Fatalf("pruned table not a fixed point (%s B=%d seed=%d): %v", in.Name, b, seed, rep.Err())
		}
	})
}

// FuzzLLPMatchesSequentialChain drives the asynchronous LLP chain
// engine against the sequential prefix scan across chain lengths,
// candidate windows, worker counts, all three shipped chain families
// and the neutral random family — and, for every one of them, across
// every registered semiring via WithSemiring. The vectors must match
// the sequential solver *bitwise* (the finite-F discipline of
// recurrence.Chain makes that exact under any algebra), the LLP work
// count must equal the sequential candidate count (work efficiency),
// and the vector must pass the solver-independent verify.Chain fixed
// point check.
func FuzzLLPMatchesSequentialChain(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(0), uint8(0), uint8(2))  // small segls
	f.Add(int64(2), uint8(20), uint8(0), uint8(1), uint8(4)) // wis, more workers than cores
	f.Add(int64(3), uint8(30), uint8(0), uint8(2), uint8(1)) // subset sum, single worker
	f.Add(int64(4), uint8(47), uint8(3), uint8(3), uint8(3)) // windowed random chain
	f.Add(int64(5), uint8(1), uint8(1), uint8(3), uint8(9))  // n=1 edge, workers > n
	f.Add(int64(6), uint8(33), uint8(0), uint8(3), uint8(5)) // full-prefix random chain
	f.Fuzz(func(t *testing.T, seed int64, nn, window, family, ww uint8) {
		n := int(nn)%48 + 1
		workers := int(ww)%9 + 1
		var c *sublineardp.Chain
		switch family % 4 {
		case 0:
			xs, ys := problems.RandomSeries(n, seed)
			c = problems.SegmentedLeastSquares(xs, ys, int64(window)*100)
		case 1:
			s, e, w := problems.RandomJobs(n, seed)
			c = problems.IntervalScheduling(s, e, w)
		case 2:
			c = problems.SubsetSum(int64(n), []int64{2, 5, int64(n)%7 + 1})
		default:
			c = problems.RandomChain(n, 50, int(window)%(n+1), seed)
		}
		for _, algName := range sublineardp.Semirings() {
			sr, ok := sublineardp.LookupSemiring(algName)
			if !ok {
				t.Fatalf("registered semiring %q not resolvable", algName)
			}
			want, err := seq.SolveChainSemiringCtx(context.Background(), c, sr)
			if err != nil {
				t.Fatal(err)
			}
			got, err := llp.SolveCtx(context.Background(), c, llp.Options{Workers: workers, Semiring: sr})
			if err != nil {
				t.Fatal(err)
			}
			wd, gd := want.Values.Data(), got.Values.Data()
			for j := range wd {
				if wd[j] != gd[j] {
					t.Fatalf("llp diverges bitwise from sequential on %s alg=%s workers=%d: c(%d) = %d vs %d",
						c.Name, algName, workers, j, gd[j], wd[j])
				}
			}
			if got.Work != want.Work {
				t.Fatalf("llp work %d != sequential %d on %s alg=%s workers=%d — not work-efficient",
					got.Work, want.Work, c.Name, algName, workers)
			}
			if rep := verify.Chain(sr, c, got.Values); !rep.OK() {
				t.Fatalf("llp vector not a fixed point on %s alg=%s: %v", c.Name, algName, rep.Err())
			}
		}
	})
}

// FuzzPebbleBound checks Lemma 3.3 on arbitrary random trees.
func FuzzPebbleBound(f *testing.F) {
	f.Add(int64(1), uint16(64))
	f.Add(int64(2), uint16(500))
	f.Fuzz(func(t *testing.T, seed int64, nn uint16) {
		n := int(nn)%800 + 2
		tree := btree.RandomSplit(n, newSeededRand(seed))
		g := pebble.NewGame(tree, pebble.HLVRule)
		moves := g.Run(pebble.LemmaBound(n))
		if !g.RootPebbled() {
			t.Fatalf("n=%d seed=%d: root unpebbled after %d moves (bound %d)",
				n, seed, moves, pebble.LemmaBound(n))
		}
	})
}

// FuzzTreeEncoding round-trips arbitrary random trees through the
// serialisation format.
func FuzzTreeEncoding(f *testing.F) {
	f.Add(int64(3), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, nn uint8) {
		n := int(nn)%60 + 2
		tree := btree.RandomSplit(n, newSeededRand(seed))
		got, err := btree.Parse(tree.Encode())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !got.Equal(tree) {
			t.Fatalf("round trip changed the tree %s", tree.Encode())
		}
	})
}

// FuzzParseNeverPanics feeds arbitrary strings to the tree parser; it may
// reject them but must not panic.
func FuzzParseNeverPanics(f *testing.F) {
	f.Add("(1 . .)")
	f.Add("((((")
	f.Add("(999999999999999999999 . .)")
	f.Add(".(")
	f.Fuzz(func(t *testing.T, s string) {
		tree, err := btree.Parse(s)
		if err == nil {
			if vErr := tree.Validate(); vErr != nil {
				t.Fatalf("Parse(%q) returned an invalid tree: %v", s, vErr)
			}
		}
	})
}

func newSeededRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }

// FuzzPipelinedMatchesBlocked pins the dependency-counter schedule to
// the barrier-fenced one it replaces: on arbitrary seeded instances and
// tile sizes — boundary-aligned, off-by-one, single-tile, one index per
// block — the pipelined engine's value table AND recorded splits must be
// bitwise identical to blocked's. The counter graph admits every
// topological order of the tile DAG; this wall is what forces all of
// them to compute the same candidate sequences.
func FuzzPipelinedMatchesBlocked(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(4), false) // n%B == 0
	f.Add(int64(2), uint8(17), uint8(4), false) // n%B == 1
	f.Add(int64(3), uint8(15), uint8(4), false) // n%B == B-1
	f.Add(int64(4), uint8(12), uint8(1), false) // one index per block
	f.Add(int64(5), uint8(9), uint8(14), false) // single tile (B > n)
	f.Add(int64(6), uint8(24), uint8(5), true)  // spine across tile boundaries
	f.Add(int64(7), uint8(26), uint8(0), false) // default tile heuristic
	f.Fuzz(func(t *testing.T, seed int64, nn, tile uint8, shaped bool) {
		n := int(nn)%28 + 2
		b := int(tile) % (n + 3) // sweep past B = n+1, 0 = default
		var in *sublineardp.Instance
		if shaped {
			in = problems.Shaped(btree.RandomSplit(n, newSeededRand(seed)))
		} else {
			in = problems.RandomInstance(n, 60, seed)
		}
		opt := blocked.Options{TileSize: b, RecordSplits: true}
		want := blocked.Solve(in, opt)
		got := blocked.SolvePipe(in, opt)
		wd, gd := want.Table.Data(), got.Table.Data()
		for c := range wd {
			if wd[c] != gd[c] {
				t.Fatalf("pipelined B=%d diverges from blocked bitwise on n=%d seed=%d shaped=%v: %v",
					b, n, seed, shaped, got.Table.Diff(want.Table, 3))
			}
		}
		for idx := range want.Splits {
			if got.Splits[idx] != want.Splits[idx] {
				t.Fatalf("pipelined B=%d split %d = %d, blocked %d (n=%d seed=%d shaped=%v)",
					b, idx, got.Splits[idx], want.Splits[idx], n, seed, shaped)
			}
		}
		if rep := verify.Table(in, got.Table); !rep.OK() {
			t.Fatalf("pipelined B=%d table not a fixed point (n=%d seed=%d): %v", b, n, seed, rep.Err())
		}
	})
}
