package sublineardp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sublineardp/internal/core"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/rytter"
	"sublineardp/internal/semiring"
	"sublineardp/internal/seq"
	"sublineardp/internal/wavefront"
)

// Engine is one algorithm for recurrence (*) behind the unified Solver
// API. Implementations must be safe for concurrent use: SolveBatch calls
// one Engine from many goroutines. Solve must honour ctx cancellation
// (return ctx.Err() promptly) and must return a non-nil Solution exactly
// when the error is nil.
type Engine interface {
	// Name is the registry key ("sequential", "hlv-banded", ...).
	Name() string
	// Solve runs the engine on one instance under the given read-only
	// configuration.
	Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error)
}

// Registry names of the built-in engines.
const (
	// EngineAuto picks an engine per instance by size: n <= AutoCutoff
	// goes to the sequential scan, larger instances to the banded HLV
	// iteration.
	EngineAuto = "auto"
	// EngineSequential is the classic O(n^3) dynamic program (records
	// split points, so Solution.Tree is O(n)).
	EngineSequential = "sequential"
	// EngineWavefront is the span-parallel linear-time baseline.
	EngineWavefront = "wavefront"
	// EngineRytter is Rytter's O(log^2 n)-time baseline the paper
	// improves upon.
	EngineRytter = "rytter"
	// EngineHLVDense is the paper's Sections 2-4 algorithm with the full
	// O(n^4) partial-weight array.
	EngineHLVDense = "hlv-dense"
	// EngineHLVBanded is the headline Section 5 algorithm storing only
	// deficits within the 2*ceil(sqrt n) band.
	EngineHLVBanded = "hlv-banded"
	// EngineSemiring is the HLV iteration generalised to any idempotent
	// semiring (WithSemiring; min-plus by default).
	EngineSemiring = "semiring"
)

var engineRegistry = struct {
	mu sync.RWMutex
	m  map[string]Engine
}{m: make(map[string]Engine)}

// RegisterEngine adds an engine to the registry under e.Name(). It
// rejects nil engines, empty names, and duplicates, so built-ins cannot
// be replaced by accident.
func RegisterEngine(e Engine) error {
	if e == nil || e.Name() == "" {
		return errors.New("sublineardp: RegisterEngine needs a non-nil engine with a non-empty name")
	}
	engineRegistry.mu.Lock()
	defer engineRegistry.mu.Unlock()
	if _, dup := engineRegistry.m[e.Name()]; dup {
		return fmt.Errorf("sublineardp: engine %q already registered", e.Name())
	}
	engineRegistry.m[e.Name()] = e
	return nil
}

// LookupEngine returns the engine registered under name.
func LookupEngine(name string) (Engine, bool) {
	engineRegistry.mu.RLock()
	defer engineRegistry.mu.RUnlock()
	e, ok := engineRegistry.m[name]
	return e, ok
}

// Engines returns the sorted names of all registered engines.
func Engines() []string {
	engineRegistry.mu.RLock()
	defer engineRegistry.mu.RUnlock()
	names := make([]string, 0, len(engineRegistry.m))
	for name := range engineRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EngineInfo describes one registered engine for CLI listings: what it
// implements and which functional options it honours.
type EngineInfo struct {
	Name        string
	Description string
	Options     string
}

// builtinInfo documents the shipped engines; third-party engines get a
// generic entry (their RegisterEngine call site is the authority on the
// options they interpret).
var builtinInfo = map[string]EngineInfo{
	EngineAuto: {Description: "size-based selector: sequential at n <= cutoff, else hlv-banded",
		Options: "WithAutoCutoff + the chosen engine's options"},
	EngineSequential: {Description: "classic O(n^3) dynamic program with O(n) tree reconstruction",
		Options: "(none)"},
	EngineWavefront: {Description: "span-parallel linear-time baseline",
		Options: "WithWorkers, WithPool"},
	EngineRytter: {Description: "Rytter's 1988 O(log^2 n) pointer-doubling baseline",
		Options: "WithWorkers, WithPool, WithMaxIterations, WithTarget"},
	EngineHLVDense: {Description: "paper Sections 2-4: full O(n^4) partial-weight array",
		Options: "WithWorkers, WithPool, WithTileSize, WithMode, WithTermination, WithMaxIterations, WithTarget, WithHistory"},
	EngineHLVBanded: {Description: "paper Section 5: deficits within 2*ceil(sqrt n), tiled pooled kernels",
		Options: "WithWorkers, WithPool, WithTileSize, WithMode, WithTermination, WithMaxIterations, WithBandRadius, WithWindow, WithTarget, WithHistory"},
	EngineSemiring: {Description: "HLV iteration over any idempotent semiring",
		Options: "WithSemiring, WithMaxIterations"},
}

// EngineInfos returns one EngineInfo per registered engine, sorted by
// name — the data behind `dpsolve -engines`.
func EngineInfos() []EngineInfo {
	names := Engines()
	infos := make([]EngineInfo, 0, len(names))
	for _, name := range names {
		info, ok := builtinInfo[name]
		if !ok {
			info = EngineInfo{Description: "custom engine (RegisterEngine)", Options: "engine-defined"}
		}
		info.Name = name
		infos = append(infos, info)
	}
	return infos
}

func init() {
	for _, e := range []Engine{
		autoEngine{},
		sequentialEngine{},
		wavefrontEngine{},
		rytterEngine{},
		hlvEngine{name: EngineHLVDense, variant: core.Dense},
		hlvEngine{name: EngineHLVBanded, variant: core.Banded},
		semiringEngine{},
	} {
		if err := RegisterEngine(e); err != nil {
			panic(err)
		}
	}
}

// sequentialEngine wraps the O(n^3) baseline of internal/seq.
type sequentialEngine struct{}

func (sequentialEngine) Name() string { return EngineSequential }

func (sequentialEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := seq.SolveCtx(ctx, in)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Engine:      EngineSequential,
		Table:       res.Table,
		Work:        res.Work,
		ConvergedAt: -1,
		instance:    in,
		splits:      res.Split,
		treeFn: func() (*Tree, error) {
			if cost.IsInf(res.Cost()) {
				return nil, errors.New("sublineardp: no finite optimum to reconstruct")
			}
			return res.Tree(), nil
		},
	}, nil
}

// wavefrontEngine wraps the span-parallel baseline of internal/wavefront.
type wavefrontEngine struct{}

func (wavefrontEngine) Name() string { return EngineWavefront }

func (wavefrontEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := wavefront.SolveCtx(ctx, in, wavefront.Options{Workers: cfg.Workers, Pool: cfg.Pool})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Engine:      EngineWavefront,
		Table:       res.Table,
		Acct:        res.Acct,
		ConvergedAt: -1,
		instance:    in,
	}, nil
}

// rytterEngine wraps the 1988 pointer-doubling baseline of internal/rytter.
type rytterEngine struct{}

func (rytterEngine) Name() string { return EngineRytter }

func (rytterEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := rytter.SolveCtx(ctx, in, rytter.Options{
		Workers:       cfg.Workers,
		Pool:          cfg.Pool,
		MaxIterations: cfg.MaxIterations,
		Target:        cfg.Target,
	})
	if err != nil {
		return nil, err
	}
	budget := cfg.MaxIterations
	if budget <= 0 {
		budget = rytter.DefaultIterations(in.N)
	}
	return &Solution{
		Engine:       EngineRytter,
		Table:        res.Table,
		Iterations:   res.Iterations,
		StoppedEarly: res.Iterations < budget,
		ConvergedAt:  res.ConvergedAt,
		Acct:         res.Acct,
		instance:     in,
	}, nil
}

// hlvEngine wraps the paper's algorithm (internal/core) in either storage
// variant.
type hlvEngine struct {
	name    string
	variant Variant
}

func (e hlvEngine) Name() string { return e.name }

func (e hlvEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	res, err := core.SolveCtx(ctx, in, core.Options{
		Variant:       e.variant,
		Mode:          cfg.Mode,
		Termination:   cfg.Termination,
		Workers:       cfg.Workers,
		Pool:          cfg.Pool,
		TileSize:      cfg.TileSize,
		MaxIterations: cfg.MaxIterations,
		BandRadius:    cfg.BandRadius,
		Window:        cfg.Window,
		Target:        cfg.Target,
		History:       cfg.History,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Engine:       e.name,
		Table:        res.Table,
		Iterations:   res.Iterations,
		StoppedEarly: res.StoppedEarly,
		ConvergedAt:  res.ConvergedAt,
		BandRadius:   res.BandRadius,
		Acct:         res.Acct,
		History:      res.History,
		instance:     in,
	}, nil
}

// semiringEngine runs the HLV iteration over an arbitrary idempotent
// semiring (internal/semiring). Under the default MinPlus algebra the
// cost sentinel and the semiring's Zero coincide, so the instance's
// values pass through unchanged and the result table is bit-identical to
// the other engines'.
type semiringEngine struct{}

func (semiringEngine) Name() string { return EngineSemiring }

func (semiringEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	sr := cfg.Semiring
	if sr == nil {
		sr = MinPlus
	}
	srIn := &semiring.Instance{
		N:    in.N,
		Name: in.Name,
		Init: func(i int) int64 { return int64(in.Init(i)) },
		F:    func(i, k, j int) int64 { return int64(in.F(i, k, j)) },
	}
	res, err := semiring.SolveHLVCtx(ctx, sr, srIn, cfg.MaxIterations)
	if err != nil {
		return nil, err
	}
	tbl := recurrence.NewTable(in.N)
	for i := 0; i <= in.N; i++ {
		for j := i + 1; j <= in.N; j++ {
			tbl.Set(i, j, cost.Cost(res.At(i, j)))
		}
	}
	return &Solution{
		Engine:      EngineSemiring,
		Table:       tbl,
		Iterations:  res.Iterations,
		ConvergedAt: -1,
		instance:    in,
	}, nil
}

// autoEngine is the size-based meta-engine: small instances go to the
// sequential scan, large ones to the banded HLV iteration. The returned
// Solution names the engine actually chosen.
type autoEngine struct{}

func (autoEngine) Name() string { return EngineAuto }

func (autoEngine) Solve(ctx context.Context, in *Instance, cfg *Config) (*Solution, error) {
	return pickAuto(in.N, cfg).Solve(ctx, in, cfg)
}

// pickAuto resolves the auto engine's choice for an instance of size n.
func pickAuto(n int, cfg *Config) Engine {
	cutoff := cfg.AutoCutoff
	if cutoff <= 0 {
		cutoff = DefaultAutoCutoff
	}
	name := EngineHLVBanded
	if n <= cutoff {
		name = EngineSequential
	}
	e, ok := LookupEngine(name)
	if !ok {
		// The built-ins are registered in init; this cannot fail.
		panic(fmt.Sprintf("sublineardp: built-in engine %q missing", name))
	}
	return e
}
