package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func keyOf(s string) Key { return NewHasher().String("k", s).Sum() }

func TestHasherLabeledFieldsDoNotConcatenate(t *testing.T) {
	a := NewHasher().String("x", "ab").String("y", "c").Sum()
	b := NewHasher().String("x", "a").String("y", "bc").Sum()
	if a == b {
		t.Fatal("distinct field splits hashed equal")
	}
	c1 := NewHasher().Int64("n", 12).Sum()
	c2 := NewHasher().Int64("n", 12).Sum()
	if c1 != c2 {
		t.Fatal("identical fields hashed unequal")
	}
}

func TestLRUBasicAndEviction(t *testing.T) {
	c := New[int](4, 2) // 2 entries per shard
	keys := []Key{keyOf("a"), keyOf("b"), keyOf("c"), keyOf("d"), keyOf("e"), keyOf("f")}
	for i, k := range keys {
		c.Add(k, i)
	}
	if got := c.Len(); got > 4 {
		t.Fatalf("capacity not enforced: %d resident", got)
	}
	st := c.Stats()
	if st.Insertions != int64(len(keys)) {
		t.Fatalf("insertions = %d, want %d", st.Insertions, len(keys))
	}
	if st.Evictions != st.Insertions-int64(c.Len()) {
		t.Fatalf("evictions %d inconsistent with insertions %d - resident %d",
			st.Evictions, st.Insertions, c.Len())
	}
	// Recency: touch the oldest resident key, add another to its shard,
	// and the touched key must survive.
	var resident []Key
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			resident = append(resident, k)
		}
	}
	if len(resident) == 0 {
		t.Fatal("nothing resident")
	}
	victim := resident[0]
	c.Get(victim) // most recently used now
	shard := victim.shard(2)
	for i := 0; ; i++ {
		k := keyOf(string(rune('A' + i)))
		if k.shard(2) == shard {
			c.Add(k, 99)
			break
		}
	}
	if _, ok := c.Get(victim); !ok {
		t.Fatal("most recently used entry was evicted")
	}
}

func TestLRUUpdateOverwrites(t *testing.T) {
	c := New[int](8, 1)
	k := keyOf("x")
	c.Add(k, 1)
	c.Add(k, 2)
	if v, ok := c.Get(k); !ok || v != 2 {
		t.Fatalf("got %v %v, want 2 true", v, ok)
	}
	if st := c.Stats(); st.Updates != 1 || st.Insertions != 1 {
		t.Fatalf("stats %+v, want 1 update / 1 insertion", st)
	}
}

func TestSingleFlightDedups(t *testing.T) {
	var g Group[int]
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 8

	var wg sync.WaitGroup
	joinedCount := atomic.Int64{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, joined, err := g.Do(context.Background(), keyOf("k"), func(ctx context.Context) (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got %v %v", v, err)
			}
			if joined {
				joinedCount.Add(1)
			}
		}()
	}
	// Wait until every caller is either the leader or has joined.
	for g.Stats().Dedups+g.Stats().Executions < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := joinedCount.Load(); got != waiters-1 {
		t.Fatalf("%d joiners, want %d", got, waiters-1)
	}
}

func TestSingleFlightRefcountedCancellation(t *testing.T) {
	var g Group[int]
	started := make(chan struct{})
	observed := make(chan error, 1)

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()

	fn := func(ctx context.Context) (int, error) {
		close(started)
		<-ctx.Done()
		observed <- ctx.Err()
		return 0, ctx.Err()
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, err := g.Do(ctx1, keyOf("k"), fn)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("caller 1: %v", err)
		}
	}()
	<-started
	go func() {
		defer wg.Done()
		_, _, err := g.Do(ctx2, keyOf("k"), fn)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("caller 2: %v", err)
		}
	}()
	for g.Stats().Dedups < 1 {
		time.Sleep(time.Millisecond)
	}

	// One of two waiters leaves: the flight must keep running.
	cancel1()
	select {
	case err := <-observed:
		t.Fatalf("flight cancelled with a waiter remaining: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	// The last waiter leaves: the flight context must be cancelled.
	cancel2()
	select {
	case err := <-observed:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("flight context error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flight context never cancelled after all waiters left")
	}
	wg.Wait()
}

func TestSingleFlightErrorPropagates(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), keyOf("k"), func(ctx context.Context) (int, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed flight must not be cached in the group: the next call
	// runs again.
	v, _, err := g.Do(context.Background(), keyOf("k"), func(ctx context.Context) (int, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("second call got %v %v", v, err)
	}
}
