package problems

import (
	"fmt"
	"math/rand"

	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// RandomConvex returns a random instance that provably satisfies the
// Knuth–Yao conditions (declared via Instance.Convex): the weight is
//
//	w(i,j) = sum of dens(a,b) over all pairs i <= a < b <= j
//
// for a nonnegative random density dens, with init(i) = w(i,i+1) =
// dens(i,i+1). Every density entry is counted once per interval that
// contains its pair, so for i <= i' <= j <= j' the quadrangle slack
//
//	w(i,j') + w(i',j) - w(i,j) - w(i',j')
//
// is the density mass of pairs inside [i,j'] but inside neither [i,j]
// nor [i',j'] — nonnegative by construction (strictly positive whenever
// such a pair carries mass, which exercises the strict branch of the
// pruning window), and w is monotone on interval inclusion for the same
// counting reason. Roughly half the density entries are zeroed so equal
// weights — and therefore split ties — occur, exercising the smallest-k
// tie discipline too.
//
// F is O(1) via a 2D suffix-prefix table P(x,y) = w(x,y), built in
// O(n^2) memory — use OBST families for benchmark-scale convex
// instances; this generator exists to fuzz and law-check the convex
// machinery with weights that are not OBST-shaped.
func RandomConvex(n, maxD int, seed int64) *recurrence.Instance {
	if n < 1 || maxD < 0 {
		panic("problems: RandomConvex needs n >= 1 and maxD >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	size := n + 1
	dens := make([]int64, size*size)
	flat := make([]int64, 0, size*(size-1)/2)
	for a := 0; a < size; a++ {
		for b := a + 1; b < size; b++ {
			var d int64
			if rng.Intn(2) == 0 {
				d = int64(rng.Intn(maxD + 1))
			}
			dens[a*size+b] = d
			flat = append(flat, d)
		}
	}
	// w[x*size+y] = sum of dens(a,b) over x <= a < b <= y, by 2D
	// inclusion-exclusion from the corner (x,y) inward.
	w := make([]int64, size*size)
	for x := size - 2; x >= 0; x-- {
		for y := x + 1; y < size; y++ {
			v := dens[x*size+y] + w[(x+1)*size+y]
			if y > x+1 {
				v += w[x*size+y-1] - w[(x+1)*size+y-1]
			}
			w[x*size+y] = v
		}
	}
	return &recurrence.Instance{
		N:      n,
		Name:   fmt.Sprintf("convex-rand-n%d-s%d", n, seed),
		Convex: true,
		Canon:  func() []byte { return canon("convexrand", flat) },
		Init:   func(i int) cost.Cost { return cost.Cost(w[i*size+i+1]) },
		F: func(i, k, j int) cost.Cost {
			return cost.Cost(w[i*size+j])
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			row := w[i*size:]
			for t := range dst {
				dst[t] = cost.Cost(row[j0+t])
			}
		},
	}
}
