package sublineardp_test

import (
	"context"
	"errors"
	mrand "math/rand"
	"sync/atomic"
	"testing"
	"time"

	"sublineardp"
)

// Acceptance: SolveBatch results are order-stable and complete — slot i
// answers instance i regardless of scheduling, and every slot is filled.
func TestSolveBatchOrderStableAndComplete(t *testing.T) {
	var ins []*sublineardp.Instance
	var want []sublineardp.Cost
	// Mixed sizes on both sides of the auto cutoff, in a scrambled order
	// so scheduling cannot accidentally match slot order.
	for _, n := range []int{70, 3, 24, 81, 9, 48, 66, 5, 33, 72, 12, 57} {
		in := sublineardp.NewShaped(sublineardp.ZigzagTree(n))
		ins = append(ins, in)
		want = append(want, sublineardp.SolveSequential(in).Cost())
	}
	sols, err := sublineardp.SolveBatch(context.Background(), ins,
		sublineardp.WithConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(ins) {
		t.Fatalf("%d solutions for %d instances", len(sols), len(ins))
	}
	for i, sol := range sols {
		if sol == nil {
			t.Fatalf("slot %d is nil", i)
		}
		if sol.Cost() != want[i] {
			t.Errorf("slot %d: cost %d, want %d (order instability?)", i, sol.Cost(), want[i])
		}
		if sol.N() != ins[i].N {
			t.Errorf("slot %d: solution for n=%d, instance has n=%d", i, sol.N(), ins[i].N)
		}
		wantEngine := sublineardp.EngineSequential
		if ins[i].N > sublineardp.DefaultAutoCutoff {
			wantEngine = sublineardp.EngineHLVBanded
		}
		if sol.Engine != wantEngine {
			t.Errorf("slot %d (n=%d): engine %q, want %q", i, ins[i].N, sol.Engine, wantEngine)
		}
	}
}

func TestSolveBatchFixedEngine(t *testing.T) {
	ins := []*sublineardp.Instance{
		sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25}),
		sublineardp.NewOBST([]int64{1, 2, 1, 3, 1}, []int64{10, 3, 8, 6}),
	}
	sols, err := sublineardp.SolveBatch(context.Background(), ins,
		sublineardp.WithEngine(sublineardp.EngineWavefront))
	if err != nil {
		t.Fatal(err)
	}
	for i, sol := range sols {
		if sol.Engine != sublineardp.EngineWavefront {
			t.Errorf("slot %d: engine %q", i, sol.Engine)
		}
		if want := sublineardp.SolveSequential(ins[i]).Cost(); sol.Cost() != want {
			t.Errorf("slot %d: cost %d, want %d", i, sol.Cost(), want)
		}
	}

	if _, err := sublineardp.SolveBatch(context.Background(), ins,
		sublineardp.WithEngine("no-such-engine")); err == nil {
		t.Fatal("unknown batch engine accepted")
	}
}

func TestSolveBatchEmptyAndInvalid(t *testing.T) {
	sols, err := sublineardp.SolveBatch(context.Background(), nil)
	if err != nil || len(sols) != 0 {
		t.Fatalf("empty batch: %v, %d solutions", err, len(sols))
	}

	ins := []*sublineardp.Instance{
		sublineardp.NewMatrixChain([]int{1, 2, 3}),
		nil, // invalid slot must not poison the others
		sublineardp.NewMatrixChain([]int{4, 5, 6}),
	}
	sols, err = sublineardp.SolveBatch(context.Background(), ins)
	if err == nil {
		t.Fatal("batch with nil instance returned no error")
	}
	if sols[0] == nil || sols[2] == nil {
		t.Fatal("valid slots not solved despite one invalid instance")
	}
	if sols[1] != nil {
		t.Fatal("invalid slot produced a solution")
	}
}

func TestSolveBatchCancellation(t *testing.T) {
	// Enough slow instances that cancellation lands mid-batch.
	var ins []*sublineardp.Instance
	for i := 0; i < 16; i++ {
		ins = append(ins, slowInstance(24, 50*time.Microsecond))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sols, err := sublineardp.SolveBatch(ctx, ins, sublineardp.WithConcurrency(2))
	elapsed := time.Since(start)
	cancel()
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sols) != len(ins) {
		t.Fatalf("result slice length %d, want %d", len(sols), len(ins))
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancelled batch took %v, want prompt return", elapsed)
	}
}

// The cross-solve overlap acceptance wall: two large instances pushed
// through SolveBatch on a 2-worker pool must run as one shared tile
// scheduler — proven by the counters, not by timing. Both slots report
// the same joint Stats view with zero barriers, and the joint task count
// equals the sum of the two solo pipelined runs (tile-task counts are
// deterministic functions of n and the tile size, so the equality can
// only hold if both graphs drained through one scheduler). Tables stay
// bitwise identical to the fenced blocked engine, and a mid-flight
// cancellation must leave the pool reusable: the same batch re-run on
// the same pool afterwards still passes every assertion.
func TestPipelinedOverlapBatch(t *testing.T) {
	const tile = 16
	insA := sublineardp.NewShaped(sublineardp.ZigzagTree(300))
	insB := sublineardp.NewMatrixChain(chainDims(281, 60, 7))
	pool := sublineardp.NewPool(2)
	defer pool.Close()

	mustSolve := func(in *sublineardp.Instance, opts ...sublineardp.Option) *sublineardp.Solution {
		t.Helper()
		sol, err := sublineardp.MustNewSolver("", opts...).Solve(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		return sol
	}
	wantA := mustSolve(insA, sublineardp.WithEngine(sublineardp.EngineBlocked),
		sublineardp.WithTileSize(tile))
	wantB := mustSolve(insB, sublineardp.WithEngine(sublineardp.EngineBlocked),
		sublineardp.WithTileSize(tile))

	// Solo pipelined runs, for the deterministic task-count baseline.
	soloOpts := []sublineardp.Option{
		sublineardp.WithEngine(sublineardp.EngineBlockedPipe),
		sublineardp.WithTileSize(tile),
		sublineardp.WithWorkers(2),
		sublineardp.WithPool(pool),
	}
	soloA := mustSolve(insA, soloOpts...)
	soloB := mustSolve(insB, soloOpts...)

	check := func(t *testing.T, sols []*sublineardp.Solution) {
		t.Helper()
		for i, want := range []*sublineardp.Solution{wantA, wantB} {
			sol := sols[i]
			if sol == nil {
				t.Fatalf("slot %d is nil", i)
			}
			if sol.Engine != sublineardp.EngineBlockedPipe {
				t.Fatalf("slot %d ran engine %q, want %q", i, sol.Engine, sublineardp.EngineBlockedPipe)
			}
			sd, wd := sol.Table.Data(), want.Table.Data()
			for c := range sd {
				if sd[c] != wd[c] {
					t.Fatalf("slot %d diverges from the fenced blocked table bitwise: %v",
						i, sol.Table.Diff(want.Table, 3))
				}
			}
			if sol.Stats.Barriers != 0 {
				t.Errorf("slot %d crossed %d barriers, want 0", i, sol.Stats.Barriers)
			}
		}
		if sols[0].Stats != sols[1].Stats {
			t.Errorf("overlapped slots report different Stats views (%+v vs %+v): not one shared scheduler",
				sols[0].Stats, sols[1].Stats)
		}
		if joint, solo := sols[0].Stats.Tasks, soloA.Stats.Tasks+soloB.Stats.Tasks; joint != solo {
			t.Errorf("joint scheduler ran %d tasks, solo runs total %d: graphs did not share one scheduler",
				joint, solo)
		}
	}

	batchOpts := []sublineardp.Option{
		sublineardp.WithEngine(sublineardp.EngineBlockedPipe),
		sublineardp.WithTileSize(tile),
		sublineardp.WithWorkers(2),
		sublineardp.WithPool(pool),
	}
	sols, err := sublineardp.SolveBatch(context.Background(), []*sublineardp.Instance{insA, insB}, batchOpts...)
	if err != nil {
		t.Fatal(err)
	}
	check(t, sols)

	// Mid-flight cancellation: a poisoned twin of A cancels the batch
	// context from inside its own cost callback, partway through the
	// shared graph. The batch must fail with context.Canceled, any slot
	// that does come back must still be bitwise correct, and the pool
	// must come out unpoisoned — the clean batch re-runs on it verbatim.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	poisoned := *insA
	poisoned.Name = "poisoned"
	poisoned.FPanel = nil
	baseF := insA.F
	poisoned.F = func(i, k, j int) sublineardp.Cost {
		if calls.Add(1) == 5000 {
			cancel()
		}
		return baseF(i, k, j)
	}
	cancelled, err := sublineardp.SolveBatch(ctx, []*sublineardp.Instance{&poisoned, insB}, batchOpts...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("poisoned batch err = %v, want context.Canceled", err)
	}
	if cancelled[1] != nil {
		sd, wd := cancelled[1].Table.Data(), wantB.Table.Data()
		for c := range sd {
			if sd[c] != wd[c] {
				t.Fatal("slot that survived the cancellation is corrupted")
			}
		}
	}

	sols, err = sublineardp.SolveBatch(context.Background(), []*sublineardp.Instance{insA, insB}, batchOpts...)
	if err != nil {
		t.Fatal(err)
	}
	check(t, sols)
}

// chainDims builds a deterministic dimension vector for an n-matrix
// chain without pulling internal/problems into the external test
// package.
func chainDims(n, maxD int, seed int64) []int {
	r := mrand.New(mrand.NewSource(seed))
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = r.Intn(maxD) + 1
	}
	return dims
}
