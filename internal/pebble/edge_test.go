package pebble

import (
	"strings"
	"testing"

	"sublineardp/internal/btree"
)

func TestRuleString(t *testing.T) {
	if HLVRule.String() != "hlv" || RytterRule.String() != "rytter" {
		t.Fatal("rule names wrong")
	}
	if got := Rule(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown rule String() = %q", got)
	}
}

func TestLemmaBoundValues(t *testing.T) {
	cases := map[int]int{1: 2, 2: 4, 4: 4, 16: 8, 100: 20, 101: 22}
	for n, want := range cases {
		if got := LemmaBound(n); got != want {
			t.Errorf("LemmaBound(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSimulateRandomZeroTrials(t *testing.T) {
	st := SimulateRandom(10, 0, HLVRule, 1)
	if st.Mean != 0 || st.Min != 0 || st.Max != 0 || st.Exceeded != 0 {
		t.Fatalf("zero-trial stats: %+v", st)
	}
}

func TestRunCheckedBudgetExhaustion(t *testing.T) {
	g := NewGame(btree.Zigzag(100), HLVRule)
	if _, err := g.RunChecked(2); err == nil {
		t.Fatal("tiny budget did not error")
	}
}

func TestCondSanityDetectsRegression(t *testing.T) {
	g := NewGame(btree.Complete(4), HLVRule)
	g.Move()
	// A decreasing pebble count must be flagged.
	if err := g.CheckCondSanity(1 << 30); err == nil {
		t.Fatal("pebble-count regression not flagged")
	}
}

func TestRecurrenceTDegenerate(t *testing.T) {
	if tt := RecurrenceT(0); len(tt) != 1 {
		t.Fatalf("RecurrenceT(0) len = %d", len(tt))
	}
	tt := RecurrenceT(1)
	if tt[1] != 0 {
		t.Fatalf("T(1) = %v", tt[1])
	}
}
