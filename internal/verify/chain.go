package verify

import (
	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// Chain checks that v is the exact fixed point of the chain recurrence
// for c under an arbitrary algebra: c(0) must equal One, and every index
// j must equal the Combine over its admitted candidates k of
// Extend(c(k), F(k,j)) — the chain analogue of TableSemiring, and the
// gate both chain engines are held to. It shares no code with either
// engine (the fold runs through Relax2, not ReduceRelax), so it catches
// systematic bugs a solver-vs-solver comparison could miss. A nil sr
// resolves the chain's declared algebra. Violations reuse the interval
// vocabulary with I unused: "leaf" for c(0), "not-reached" when the
// vector misses a value some candidate realises, "unrealisable" when it
// claims a value no candidate realises.
func Chain(sr algebra.Semiring, c *recurrence.Chain, v *recurrence.Vector) *Report {
	k, err := algebra.Resolve(sr, c.Algebra)
	if err != nil {
		return &Report{Violations: []Violation{{Kind: "unresolvable-algebra"}}}
	}
	rep := &Report{}
	if v.N != c.N {
		rep.Violations = append(rep.Violations, Violation{Kind: "leaf", Got: cost.Cost(v.N), Want: cost.Cost(c.N)})
		return rep
	}
	rep.Checked++
	if got, want := k.Norm(v.At(0)), k.Norm(k.One()); got != want {
		rep.Violations = append(rep.Violations, Violation{J: 0, Got: got, Want: want, Kind: "leaf"})
	}
	for j := 1; j <= c.N; j++ {
		rep.Checked++
		best := k.Zero()
		for kk := c.Lo(j); kk < j; kk++ {
			best = k.Relax2(best, v.At(kk), c.F(kk, j))
		}
		got := k.Norm(v.At(j))
		best = k.Norm(best)
		if got != best {
			kind := "not-reached"
			if k.Better(got, best) {
				kind = "unrealisable"
			}
			rep.Violations = append(rep.Violations, Violation{J: j, Got: got, Want: best, Kind: kind})
		}
	}
	return rep
}
