package sublineardp_test

import (
	mrand "math/rand"
	"testing"

	"sublineardp/internal/btree"
	"sublineardp/internal/core"
	"sublineardp/internal/pebble"
	"sublineardp/internal/problems"
	"sublineardp/internal/seq"
	"sublineardp/internal/verify"
)

// Native fuzz targets. `go test` runs the seeded corpus as regular tests;
// `go test -fuzz FuzzX` explores further.

// FuzzSolversAgree cross-checks the parallel solvers against the
// sequential DP on arbitrary seeded instances.
func FuzzSolversAgree(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(20))
	f.Add(int64(42), uint8(9), uint8(1))
	f.Add(int64(-7), uint8(12), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, nn, maxW uint8) {
		n := int(nn)%12 + 1
		in := problems.RandomInstance(n, int(maxW)+1, seed)
		want := seq.Solve(in).Table
		if rep := verify.Table(in, want); !rep.OK() {
			t.Fatalf("sequential table failed verification: %v", rep.Err())
		}
		for _, opts := range []core.Options{
			{Variant: core.Dense},
			{Variant: core.Banded},
			{Variant: core.Banded, Window: true},
			{Variant: core.Banded, Termination: core.WStable},
		} {
			got := core.Solve(in, opts)
			if !got.Table.Equal(want) {
				t.Fatalf("options %+v disagree on n=%d seed=%d: %v",
					opts, n, seed, got.Table.Diff(want, 3))
			}
		}
	})
}

// FuzzPebbleBound checks Lemma 3.3 on arbitrary random trees.
func FuzzPebbleBound(f *testing.F) {
	f.Add(int64(1), uint16(64))
	f.Add(int64(2), uint16(500))
	f.Fuzz(func(t *testing.T, seed int64, nn uint16) {
		n := int(nn)%800 + 2
		tree := btree.RandomSplit(n, newSeededRand(seed))
		g := pebble.NewGame(tree, pebble.HLVRule)
		moves := g.Run(pebble.LemmaBound(n))
		if !g.RootPebbled() {
			t.Fatalf("n=%d seed=%d: root unpebbled after %d moves (bound %d)",
				n, seed, moves, pebble.LemmaBound(n))
		}
	})
}

// FuzzTreeEncoding round-trips arbitrary random trees through the
// serialisation format.
func FuzzTreeEncoding(f *testing.F) {
	f.Add(int64(3), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, nn uint8) {
		n := int(nn)%60 + 2
		tree := btree.RandomSplit(n, newSeededRand(seed))
		got, err := btree.Parse(tree.Encode())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !got.Equal(tree) {
			t.Fatalf("round trip changed the tree %s", tree.Encode())
		}
	})
}

// FuzzParseNeverPanics feeds arbitrary strings to the tree parser; it may
// reject them but must not panic.
func FuzzParseNeverPanics(f *testing.F) {
	f.Add("(1 . .)")
	f.Add("((((")
	f.Add("(999999999999999999999 . .)")
	f.Add(".(")
	f.Fuzz(func(t *testing.T, s string) {
		tree, err := btree.Parse(s)
		if err == nil {
			if vErr := tree.Validate(); vErr != nil {
				t.Fatalf("Parse(%q) returned an invalid tree: %v", s, vErr)
			}
		}
	})
}

func newSeededRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
