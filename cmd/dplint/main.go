// Command dplint runs the repository's static-analysis suite
// (internal/lint): repo-specific analyzers that mechanize the
// invariants earlier PRs audited by hand — cache-key coverage, context
// polling in engine loops, bulk-kernel discipline, hot-loop
// allocations, and atomic/plain access mixing.
//
//	go run ./cmd/dplint            # human-readable findings, exit 1 if any
//	go run ./cmd/dplint -json      # machine-readable findings array
//	go run ./cmd/dplint -checks ctxpoll,atomicmix
//	go run ./cmd/dplint -list      # check catalog
//
// Findings are suppressed only by explicit
// `//lint:allow <check> <reason>` comments at the finding site; a
// directive that suppresses nothing is itself a finding, so stale
// annotations fail exactly like missing ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sublineardp/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		checks  = flag.String("checks", "all", "comma-separated check IDs to run (see -list)")
		list    = flag.Bool("list", false, "print the check catalog and exit")
		dir     = flag.String("dir", "", "module root to analyze (default: locate go.mod upward from cwd)")
	)
	flag.Parse()

	suite, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dplint:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range lint.DefaultSuite() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	root := *dir
	if root == "" {
		root, err = lint.FindModuleRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dplint:", err)
			os.Exit(2)
		}
	}
	prog, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dplint:", err)
		os.Exit(2)
	}
	findings := lint.Run(prog, suite)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "dplint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) == 0 {
			fmt.Printf("dplint: %d checks clean\n", len(suite))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
