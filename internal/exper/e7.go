package exper

import (
	"fmt"

	"sublineardp/internal/core"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/seq"
)

// E7Termination probes the Section 7 open problem: when can the iteration
// stop? It compares, per instance class, the true convergence iteration,
// the iteration at which the heuristic "w' unchanged for two consecutive
// iterations" fires, the provably sufficient "w' and pw' unchanged" rule,
// and the worst-case budget — and it measures w'-change stalls (quiet
// iterations followed by further change), the phenomenon that would make
// the heuristic unsafe.
func E7Termination(cfg Config) []*Table {
	sizes := []int{16, 25, 36, 49}
	seeds := []int64{1, 2, 3, 4, 5}
	if cfg.Quick {
		sizes = []int{16, 25}
		seeds = []int64{1, 2}
	}

	t := &Table{
		ID:       "E7",
		Title:    "Termination rules: stop iteration vs true convergence (banded variant)",
		PaperRef: "Section 7: 'stop when all w(i,j) do not change during two consecutive iterations'",
		Columns:  []string{"instance", "n", "budget", "true conv", "w-stable stop", "wpw-stable stop", "safe?", "max stall"},
	}

	classes := []struct {
		name string
		mk   func(n int, seed int64) *recurrence.Instance
	}{
		{"zigzag", func(n int, _ int64) *recurrence.Instance { return problems.Zigzag(n) }},
		{"balanced", func(n int, _ int64) *recurrence.Instance { return problems.Balanced(n) }},
		{"random-f", func(n int, s int64) *recurrence.Instance { return problems.RandomInstance(n, 60, s) }},
		{"matrix-chain", func(n int, s int64) *recurrence.Instance { return problems.RandomMatrixChain(n, 50, s) }},
	}

	unsafe := 0
	maxStallSeen := 0
	for _, cl := range classes {
		for _, n := range sizes {
			// Aggregate over seeds for the random classes; shaped classes
			// ignore the seed, run once.
			runSeeds := seeds
			if cl.name == "zigzag" || cl.name == "balanced" {
				runSeeds = seeds[:1]
			}
			for _, seed := range runSeeds {
				in := cl.mk(n, seed)
				want := seq.Solve(in).Table

				ref := core.Solve(in, core.Options{Variant: core.Banded, Target: want,
					History: true, Workers: cfg.Workers})
				ws := core.Solve(in, core.Options{Variant: core.Banded,
					Termination: core.WStable, Workers: cfg.Workers})
				wpw := core.Solve(in, core.Options{Variant: core.Banded,
					Termination: core.WPWStable, Workers: cfg.Workers})

				safe := ws.Table.Equal(want)
				if !safe {
					unsafe++
				}
				stall := maxStall(ref.History)
				if stall > maxStallSeen {
					maxStallSeen = stall
				}
				label := cl.name
				if len(runSeeds) > 1 {
					label = fmt.Sprintf("%s(s=%d)", cl.name, seed)
				}
				t.AddRow(label, n, core.DefaultIterations(n), ref.ConvergedAt,
					ws.Iterations, wpw.Iterations, yesNo(safe), stall)
			}
		}
	}

	t.Note("max observed w'-change stall before further change: %d iterations (rule waits for 2)", maxStallSeen)
	if unsafe == 0 {
		t.Note("the w-stable heuristic stopped on the exact optimum in every run, supporting the authors' simulation-based conjecture")
	} else {
		t.Note("WARNING: the w-stable heuristic stopped early-wrong %d times — a counterexample to the conjecture", unsafe)
	}
	return []*Table{t}
}

// maxStall returns the longest run of zero-w-change iterations that was
// followed by a later iteration with changes.
func maxStall(hist []core.IterStat) int {
	last := 0
	for idx, st := range hist {
		if st.WChanged > 0 {
			last = idx
		}
	}
	maxRun, run := 0, 0
	for idx := 0; idx < last; idx++ {
		if hist[idx].WChanged == 0 {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	return maxRun
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
