package core

import (
	"context"

	"sublineardp/internal/algebra"
)

// squareTiled is the cache-tiled a-square kernel for the synchronous
// no-audit path. A banded cell is addressed by its deficit split
// (a, e) = (p-i, j-q) with a+e = d <= dmax, and the kernel runs one pass
// per form of eq. (2c), each organised so one scalar factor is revisited
// by a whole run of cells while hot:
//
//	pass 0  dst <- src over the pair's contiguous banded block
//	pass 1  first form, (e, rr, a) order: per intermediate (i+rr, j-e)
//	        the factor pw'(i,j,r,q) is a scalar and the candidate block
//	        of pair (r,q) is walked in step with the destination cells
//	pass 2  second form, (a, y, e) order: per intermediate (i+a, j-y)
//	        the factor pw'(i,j,p,x) is a scalar against the candidate
//	        block of pair (p,x)
//
// Within the triangular (d, a) layout every index sequence is a
// second-order arithmetic progression, so each (e,rr) / (a,y) run is one
// RelaxPanel call on the algebra; the banded block offsets of the
// partner pairs are gathered from base inside the primitive. The
// reference kernel instead walks both forms per cell, touching a fresh
// O(sqrt n)-element block per candidate with no reuse — at n=256 the
// band buffer is ~150 MB, so those misses dominate its runtime.
// Zero-valued scalars skip their run (an absorbed candidate never wins),
// every banded cell is written by the pass-0 copy, and the passes only
// tighten dst, so the result is bitwise the reference kernel's.
func (s *bandedState[S]) squareTiled(ctx context.Context) {
	src := s.buf
	dst := s.bufNext
	track := s.trackPWChanges
	sz := s.sz
	triTab := s.triTab
	base := s.base
	changed := s.rt.forChanged(ctx, len(s.pairs), func(lo, hi int) int64 {
		var local int64
		for t := lo; t < hi; t++ {
			pr := s.pairs[t]
			i, j := int(pr.i), int(pr.j)
			dm := s.dmax(j - i)
			basec := base[i*sz+j]
			bl := triTab[dm+1]
			copy(dst[basec:basec+bl], src[basec:basec+bl])
			// Pass 1: dst = Combine(dst, first form) — intermediate
			// (r, q) = (i+rr, j-e); destination cells a = rr+1..dm-e.
			for e := 0; e < dm; e++ {
				s.sr.RelaxPanel(dst, src, base, algebra.Panel{
					M: dm - e, Cnt0: dm - e, CntInc: -1,
					S1: basec + triTab[e], S1Step: e + 2, S1Inc: 1,
					D: basec + triTab[e+1] + 1, DStartStep: e + 3, DStartInc: 1,
					DStep: e + 3, DStepRow: 1, DInc: 1,
					S: 2, SStep: 3, SInc: 1,
					BaseIdx: i*sz + (j - e), BaseStep: sz,
				})
			}
			// Pass 2: dst = Combine(dst, second form) — intermediate
			// (p, x) = (i+a, j-y); destination cells e = y+1..dm-a.
			for a := 0; a < dm; a++ {
				s.sr.RelaxPanel(dst, src, base, algebra.Panel{
					M: dm - a, Cnt0: dm - a, CntInc: -1,
					S1: basec + triTab[a] + a, S1Step: a + 1, S1Inc: 1,
					D: basec + triTab[a+1] + a, DStartStep: a + 2, DStartInc: 1,
					DStep: a + 2, DStepRow: 1, DInc: 1,
					S: 1, SStep: 2, SInc: 1,
					BaseIdx: (i+a)*sz + j, BaseStep: -1,
				})
			}
			if track {
				for c := basec; c < basec+bl; c++ {
					if dst[c] != src[c] {
						local++
					}
				}
			}
		}
		return local
	})
	if track {
		s.pwChangedThisIter += changed
	}
	s.buf, s.bufNext = s.bufNext, s.buf
	s.pwEpoch ^= 1
}
