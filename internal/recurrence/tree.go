package recurrence

import (
	"fmt"

	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
)

// TreeCost evaluates the exact cost of a specific parenthesization tree
// under the instance: the sum of f over internal nodes plus init over
// leaves (the W(T) of the paper). The tree must span (0,N) of the
// instance.
func TreeCost(in *Instance, t *btree.Tree) cost.Cost {
	if t.N != in.N {
		panic(fmt.Sprintf("recurrence: tree over %d leaves for instance with N=%d", t.N, in.N))
	}
	var sum cost.Cost
	for v := int32(0); v < int32(t.Len()); v++ {
		i, j := t.Span(v)
		if t.IsLeaf(v) {
			sum = cost.Add(sum, in.Init(i))
		} else {
			sum = cost.Add(sum, in.F(i, t.Split(v), j))
		}
	}
	return sum
}

// ExtractTree reconstructs an optimal parenthesization from a converged
// cost table: for every internal span it picks the smallest split k with
// c(i,j) = f(i,k,j) + c(i,k) + c(k,j). This is how a caller recovers the
// actual solution from the parallel solver, which (like the paper)
// computes values only; with the same smallest-k tie-breaking as the
// sequential solver, the two reconstructions coincide.
//
// It returns an error if the table is not a fixed point of the recurrence
// (e.g. the solver was stopped before convergence).
func ExtractTree(in *Instance, t *Table) (*btree.Tree, error) {
	n := in.N
	if t.N != n {
		return nil, fmt.Errorf("recurrence: table size %d for instance with N=%d", t.N, n)
	}
	if cost.IsInf(t.Root()) {
		return nil, fmt.Errorf("recurrence: root value is not finite")
	}
	// Precompute all splits first so failures surface as errors, not
	// panics inside btree.New.
	splits := make(map[[2]int]int)
	for i := 0; i <= n; i++ {
		for j := i + 2; j <= n; j++ {
			target := t.At(i, j)
			found := -1
			for k := i + 1; k < j; k++ {
				if cost.Add3(in.F(i, k, j), t.At(i, k), t.At(k, j)) == target {
					found = k
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("recurrence: table is not a fixed point at (%d,%d); was the solver stopped early?", i, j)
			}
			splits[[2]int{i, j}] = found
		}
	}
	tree := btree.New(n, btree.FromSplits(splits))
	return tree, nil
}
