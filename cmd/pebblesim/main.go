// Command pebblesim plays the Section 3 pebbling game on a chosen tree
// shape and square rule, optionally tracing every move — the interactive
// companion to Lemma 3.3.
//
// Usage examples:
//
//	pebblesim -shape zigzag -n 100
//	pebblesim -shape random -n 64 -seed 9 -rule rytter
//	pebblesim -shape complete -n 16 -trace
//	pebblesim -shape zigzag -n 1000 -avg 50   # average over 50 random trees instead
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sublineardp/internal/btree"
	"sublineardp/internal/pebble"
)

func main() {
	var (
		shape  = flag.String("shape", "zigzag", "zigzag | complete | skewed | random")
		n      = flag.Int("n", 64, "number of leaves")
		seed   = flag.Int64("seed", 1, "seed for -shape random")
		rule   = flag.String("rule", "hlv", "hlv (paper's square) | rytter (pointer doubling)")
		trace  = flag.Bool("trace", false, "print per-move statistics")
		render = flag.Bool("render", false, "render the tree before playing (n <= 32)")
		avg    = flag.Int("avg", 0, "instead: average moves over this many random trees")
	)
	flag.Parse()

	var r pebble.Rule
	switch *rule {
	case "hlv":
		r = pebble.HLVRule
	case "rytter":
		r = pebble.RytterRule
	default:
		fmt.Fprintf(os.Stderr, "pebblesim: unknown rule %q\n", *rule)
		os.Exit(2)
	}

	if *avg > 0 {
		st := pebble.SimulateRandom(*n, *avg, r, *seed)
		fmt.Printf("random trees: n=%d trials=%d rule=%s\n", st.N, st.Trials, r)
		fmt.Printf("moves: mean=%.2f min=%d max=%d bound=%d exceeded=%d\n",
			st.Mean, st.Min, st.Max, st.Bound, st.Exceeded)
		return
	}

	var tree *btree.Tree
	switch *shape {
	case "zigzag":
		tree = btree.Zigzag(*n)
	case "complete":
		tree = btree.Complete(*n)
	case "skewed":
		tree = btree.LeftSkewed(*n)
	case "random":
		tree = btree.RandomSplit(*n, rand.New(rand.NewSource(*seed)))
	default:
		fmt.Fprintf(os.Stderr, "pebblesim: unknown shape %q\n", *shape)
		os.Exit(2)
	}

	if *render && *n <= 32 {
		fmt.Print(tree.Render(nil))
	}

	g := pebble.NewGame(tree, r)
	if *trace {
		g.Trace = func(move int, gg *pebble.Game) {
			largest := 0
			for v := int32(0); v < int32(gg.T.Len()); v++ {
				if gg.Pebbled(v) && gg.T.Size(v) > largest {
					largest = gg.T.Size(v)
				}
			}
			fmt.Printf("move %3d: pebbled %4d/%4d nodes, frontier size %4d\n",
				move, gg.PebbledCount(), gg.T.Len(), largest)
		}
	}
	moves := g.Run(0)
	bound := pebble.LemmaBound(*n)
	fmt.Printf("shape=%s n=%d rule=%s: root pebbled after %d moves (Lemma 3.3 bound %d)\n",
		*shape, *n, r, moves, bound)
	if !g.RootPebbled() {
		fmt.Println("WARNING: root not pebbled within the budget — this should be impossible")
		os.Exit(1)
	}
}
