package blocked

import (
	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// tileSolver is the tile decomposition shared by the barrier-stepped
// wavefront driver (run) and the pipelined driver (pipeline.go): table
// seeding, block-index geometry, and the three relaxation units — the
// phase-A interior fold of one tile row, the multi-split panel fold, and
// the in-tile closure. Both drivers call exactly these methods with
// exactly the same per-destination fold order (K ascending, then the
// block-I rows, then the forward block-J sweep), which is why their
// tables — and recorded splits — are bitwise identical by construction:
// the engines differ only in *when* a unit runs, never in what it folds
// or in what order a given cell sees its candidates.
type tileSolver[S algebra.Kernel] struct {
	sr     S
	n      int
	b      int // block edge
	size   int // n+1
	nb     int // block count
	stride int
	data   []cost.Cost
	splits []int32
	f      algebra.SplitFunc
	fPanel func(i, k, j0 int, dst []cost.Cost)
	res    *Result
}

// newTileSolver allocates and seeds the cost table (and split matrix when
// recording), exactly as both engines require: Zero-fill of the computed
// triangle for non-min-plus algebras, leaf diagonal from Init, splits
// initialised to -1.
func newTileSolver[S algebra.Kernel](sr S, in *recurrence.Instance, b int, record bool) *tileSolver[S] {
	n := in.N
	size := n + 1
	tbl := recurrence.NewTable(n)
	data, stride := tbl.Data(), tbl.Stride()
	// NewTable pre-fills with Inf — min-plus's Zero. Any other algebra
	// re-seeds exactly the cells the recurrence computes (i < j), keeping
	// the untouched lower triangle bitwise identical to the sequential
	// table.
	if zero := sr.Zero(); zero != cost.Inf {
		for i := 0; i < n; i++ {
			row := i * stride
			for j := i + 1; j <= n; j++ {
				data[row+j] = zero
			}
		}
	}
	for i := 0; i < n; i++ {
		data[i*stride+i+1] = in.Init(i)
	}

	// The split matrix shares the table's flat layout; -1 marks "no
	// candidate recorded". Recording is race-free for the same reason the
	// value writes are: every kernel call writes only its own destination
	// run, and parallel units own disjoint runs.
	var splits []int32
	if record {
		splits = make([]int32, len(data))
		for i := range splits {
			splits[i] = -1
		}
	}

	res := &Result{Table: tbl, TileSize: b, Splits: splits}
	res.Acct.ChargeUnit(int64(n)) // the leaf init step

	return &tileSolver[S]{
		sr: sr, n: n, b: b, size: size, nb: (size + b - 1) / b,
		stride: stride, data: data, splits: splits,
		f: algebra.SplitFunc(in.F), fPanel: in.FPanel, res: res,
	}
}

func (t *tileSolver[S]) lo(B int) int { return B * t.b }

func (t *tileSolver[S]) hi(B int) int {
	v := (B + 1) * t.b
	if v > t.size {
		v = t.size
	}
	return v
}

// relaxRun folds split k into the m cells (i, j0..j0+m-1). With a bulk F
// (Instance.FPanel) the f run fills in one tight loop and the
// three-stream RelaxSplitRow consumes it; otherwise RelaxSplitPanel
// evaluates F per candidate inside the kernel body.
func (t *tileSolver[S]) relaxRun(fbuf []cost.Cost, i, k, j0, m int) {
	if m <= 0 {
		return
	}
	if t.fPanel != nil {
		t.fPanel(i, k, j0, fbuf[:m])
		if t.splits != nil {
			t.sr.RelaxSplitRowRec(t.data, t.splits, t.stride, i, k, j0, m, fbuf)
		} else {
			t.sr.RelaxSplitRow(t.data, t.stride, i, k, j0, m, fbuf)
		}
	} else if t.splits != nil {
		t.sr.RelaxSplitPanelRec(t.data, t.splits, t.stride, i, k, k+1, j0, m, t.f)
	} else {
		t.sr.RelaxSplitPanel(t.data, t.stride, i, k, k+1, j0, m, t.f)
	}
}

// relaxPanel folds the split run [ka,kb) into row i's cells j0..j0+m-1,
// recording when the run asked for it — the multi-split form the phase A
// sweep and the off-diagonal block-I fold share.
func (t *tileSolver[S]) relaxPanel(i, ka, kb, j0, m int) {
	if t.splits != nil {
		t.sr.RelaxSplitPanelRec(t.data, t.splits, t.stride, i, ka, kb, j0, m, t.f)
	} else {
		t.sr.RelaxSplitPanel(t.data, t.stride, i, ka, kb, j0, m, t.f)
	}
}

// foldRowInterior is the phase-A unit for one row i of tile (I, I+d),
// d >= 2: fold every strictly interior split block K (I < K < J), K
// ascending, into the row's block-J cells. Returns the candidate count
// folded — identical under both drivers because the unit is the whole
// row, never a partial K range.
func (t *tileSolver[S]) foldRowInterior(fbuf []cost.Cost, i, I, J int) int64 {
	j0, m := t.lo(J), t.hi(J)-t.lo(J)
	for K := I + 1; K < J; K++ {
		if t.fPanel != nil {
			for k := t.lo(K); k < t.hi(K); k++ {
				t.relaxRun(fbuf, i, k, j0, m)
			}
		} else {
			t.relaxPanel(i, t.lo(K), t.hi(K), j0, m)
		}
	}
	return int64(m) * int64(j0-t.hi(I))
}

// closeTile runs the in-tile closure of tile (I,J) in dependency order
// (rows bottom-up; within a row, splits left to right, each final cell
// immediately forward-relaxed into the rest of its row — always
// j-contiguous runs) and returns its candidate count. For I == J this is
// the triangular DP of the block; off-diagonal tiles first fold their
// block-I splits (the rows below, already final), then sweep the block-J
// splits forward — the strictly interior blocks were folded in by
// phase A.
func (t *tileSolver[S]) closeTile(fbuf []cost.Cost, I, J int) int64 {
	i0, i1 := t.lo(I), t.hi(I)
	j0, j1 := t.lo(J), t.hi(J)
	var work int64
	if I == J {
		for i := i1 - 2; i >= i0; i-- {
			for k := i + 1; k < j1-1; k++ {
				m := j1 - k - 1
				t.relaxRun(fbuf, i, k, k+1, m)
				work += int64(m)
			}
		}
		return work
	}
	m := j1 - j0
	for i := i1 - 1; i >= i0; i-- {
		if t.fPanel != nil {
			for k := i + 1; k < i1; k++ {
				t.relaxRun(fbuf, i, k, j0, m)
			}
		} else if i+1 < i1 {
			t.relaxPanel(i, i+1, i1, j0, m)
		}
		work += int64(i1-i-1) * int64(m)
		for k := j0; k < j1-1; k++ {
			mk := j1 - k - 1
			t.relaxRun(fbuf, i, k, k+1, mk)
			work += int64(mk)
		}
	}
	return work
}
