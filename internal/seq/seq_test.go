package seq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
)

func TestCLRSGolden(t *testing.T) {
	res := Solve(problems.CLRSMatrixChain())
	if res.Cost() != problems.CLRSOptimalCost {
		t.Fatalf("CLRS optimum = %d, want %d", res.Cost(), problems.CLRSOptimalCost)
	}
	// The published optimal parenthesization is (A1(A2A3))((A4A5)A6):
	// root split at 3, left subtree splits (0,3) at 1, right (3,6) at 5.
	if res.Split(0, 6) != 3 || res.Split(0, 3) != 1 || res.Split(3, 6) != 5 {
		t.Errorf("splits = %d,%d,%d; want 3,1,5",
			res.Split(0, 6), res.Split(0, 3), res.Split(3, 6))
	}
}

func TestTinyInstancesByHand(t *testing.T) {
	// Two matrices: single product, cost dims product.
	res := Solve(problems.MatrixChain([]int{2, 3, 4}))
	if res.Cost() != 2*3*4 {
		t.Fatalf("n=2 cost = %d, want 24", res.Cost())
	}
	// Three matrices 10x100, 100x5, 5x50 (CLRS warm-up): optimum 7500 via (A1A2)A3.
	res = Solve(problems.MatrixChain([]int{10, 100, 5, 50}))
	if res.Cost() != 7500 {
		t.Fatalf("warm-up cost = %d, want 7500", res.Cost())
	}
	if res.Split(0, 3) != 2 {
		t.Fatalf("warm-up split = %d, want 2", res.Split(0, 3))
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
			in := problems.RandomInstance(n, 40, seed)
			got := Solve(in).Cost()
			want := BruteForce(in)
			if got != want {
				t.Fatalf("n=%d seed=%d: Solve=%d BruteForce=%d", n, seed, got, want)
			}
		}
	}
}

func TestSolveOnAllProblemFamilies(t *testing.T) {
	// Cross-family check: weighted triangulation with matrix dims equals
	// matrix-chain optimum (the classic isomorphism).
	w := []int64{30, 35, 15, 5, 10, 20, 25}
	tri := Solve(problems.WeightedTriangulation(w))
	mc := Solve(problems.CLRSMatrixChain())
	if tri.Cost() != mc.Cost() {
		t.Fatalf("triangulation %d != matrix chain %d", tri.Cost(), mc.Cost())
	}
	// And every family solves to a finite optimum matching brute force at
	// small sizes.
	for seed := int64(1); seed <= 4; seed++ {
		for _, in := range []*recurrence.Instance{
			problems.RandomMatrixChain(7, 30, seed),
			problems.RandomOBST(6, 20, seed),
			problems.Triangulation(problems.RandomConvexPolygon(7, 400, seed)),
		} {
			got := Solve(in).Cost()
			want := BruteForce(in)
			if got != want {
				t.Fatalf("%s: Solve=%d BruteForce=%d", in.Name, got, want)
			}
		}
	}
}

func TestTreeReconstruction(t *testing.T) {
	in := problems.CLRSMatrixChain()
	res := Solve(in)
	tr := res.Tree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Recompute the tree's cost by summing f over its internal nodes and
	// init over leaves; it must equal the DP optimum.
	var sum cost.Cost
	for v := int32(0); v < int32(tr.Len()); v++ {
		i, j := tr.Span(v)
		if tr.IsLeaf(v) {
			sum = cost.Add(sum, in.Init(i))
		} else {
			sum = cost.Add(sum, in.F(i, tr.Split(v), j))
		}
	}
	if sum != res.Cost() {
		t.Fatalf("reconstructed tree cost %d != optimum %d", sum, res.Cost())
	}
}

func TestShapedInstanceRecoversShape(t *testing.T) {
	shapesFns := map[string]func(int) *btree.Tree{
		"zigzag":   btree.Zigzag,
		"complete": btree.Complete,
		"skewed":   btree.LeftSkewed,
	}
	for name, mk := range shapesFns {
		for _, n := range []int{2, 3, 7, 16, 33} {
			want := mk(n)
			res := Solve(problems.Shaped(want))
			if res.Cost() != 0 {
				t.Fatalf("%s n=%d: shaped optimum = %d, want 0", name, n, res.Cost())
			}
			if !res.Tree().Equal(want) {
				t.Fatalf("%s n=%d: reconstructed tree differs from prescribed shape", name, n)
			}
		}
	}
}

func TestRandomShapedRecoversShape(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 2 + int(seed)*3
		want := btree.RandomSplit(n, rand.New(rand.NewSource(seed)))
		res := Solve(problems.Shaped(want))
		if !res.Tree().Equal(want) {
			t.Fatalf("seed %d: prescribed random shape not recovered", seed)
		}
	}
}

func TestKnuthMatchesSolveOnOBST(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		m := 2 + int(seed%9)
		in := problems.RandomOBST(m, 25, seed)
		a := Solve(in)
		b := SolveKnuth(in)
		if a.Cost() != b.Cost() {
			t.Fatalf("m=%d seed=%d: Knuth=%d DP=%d", m, seed, b.Cost(), a.Cost())
		}
		if b.Work > a.Work {
			t.Errorf("m=%d seed=%d: Knuth did more work (%d) than plain DP (%d)", m, seed, b.Work, a.Work)
		}
	}
}

func TestKnuthWorkIsQuadratic(t *testing.T) {
	// Work(2n)/Work(n) should approach 4 (quadratic), far below 8 (cubic).
	w100 := SolveKnuth(problems.RandomOBST(100, 50, 1)).Work
	w200 := SolveKnuth(problems.RandomOBST(200, 50, 1)).Work
	ratio := float64(w200) / float64(w100)
	if ratio > 6 {
		t.Fatalf("Knuth work ratio %0.2f suggests cubic growth", ratio)
	}
}

func TestSolveWorkCount(t *testing.T) {
	// Exact candidate count: sum over spans s=2..n of (n-s+1)*(s-1).
	n := 17
	res := Solve(problems.RandomInstance(n, 10, 2))
	var want int64
	for s := 2; s <= n; s++ {
		want += int64(n-s+1) * int64(s-1)
	}
	if res.Work != want {
		t.Fatalf("work = %d, want %d", res.Work, want)
	}
}

func TestOBSTGoldenSmall(t *testing.T) {
	// alpha = (1,1), beta = (1): single key, cost = alpha depths + beta.
	// Tree: root key 1, two gap leaves at depth 1.
	// Cost = f(0,1,2) + init(0) + init(1) = (1+1+1) + 1 + 1 = 5.
	in := problems.OBST([]int64{1, 1}, []int64{1})
	res := Solve(in)
	if res.Cost() != 5 {
		t.Fatalf("single-key OBST = %d, want 5", res.Cost())
	}
	knuth := Solve(problems.KnuthExampleOBST())
	if knuth.Cost() != BruteForce(problems.KnuthExampleOBST()) {
		t.Fatal("Knuth example DP disagrees with brute force")
	}
}

// Property: for random instances the DP optimum is never larger than the
// cost of any specific tree (here: the complete tree), and never smaller
// than zero.
func TestOptimumLowerBoundsAnyTree(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%10 + 2
		in := problems.RandomInstance(n, 50, seed)
		opt := Solve(in).Cost()
		tr := btree.Complete(n)
		var sum cost.Cost
		for v := int32(0); v < int32(tr.Len()); v++ {
			i, j := tr.Span(v)
			if tr.IsLeaf(v) {
				sum = cost.Add(sum, in.Init(i))
			} else {
				sum = cost.Add(sum, in.F(i, tr.Split(v), j))
			}
		}
		return opt >= 0 && opt <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity under uniform f increase — raising every f by a
// constant raises the optimum by exactly (#internal nodes) * delta, since
// all full binary trees over n leaves have n-1 internal nodes.
func TestUniformShiftProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn)%9 + 2
		base := problems.RandomInstance(n, 30, seed)
		const delta = 7
		shifted := *base
		shifted.F = func(i, k, j int) cost.Cost { return base.F(i, k, j) + delta }
		a := Solve(base).Cost()
		b := Solve(&shifted).Cost()
		return b == a+cost.Cost(delta*(n-1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
