// Optimal binary search tree: build the search tree over a small English
// keyword set with made-up access frequencies, solve it in parallel, and
// render the resulting BST with its keys — the classic Knuth application
// the paper cites.
//
// Run with:
//
//	go run ./examples/obst
package main

import (
	"context"
	"fmt"
	"log"

	"sublineardp"
)

func main() {
	// Keys in sorted order with access weights (beta), and weights for the
	// gaps between them (alpha) modelling unsuccessful searches.
	keys := []string{"begin", "do", "else", "end", "if", "then", "while"}
	beta := []int64{42, 11, 23, 40, 51, 30, 20}
	alpha := []int64{6, 4, 2, 1, 3, 5, 7, 8} // len(keys)+1 gaps

	in := sublineardp.NewOBST(alpha, beta)
	ctx := context.Background()

	sol, err := sublineardp.MustNewSolver(sublineardp.EngineHLVBanded).Solve(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	seqSol, err := sublineardp.MustNewSolver(sublineardp.EngineSequential).Solve(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	if sol.Cost() != seqSol.Cost() {
		log.Fatalf("parallel %d != sequential %d", sol.Cost(), seqSol.Cost())
	}
	fmt.Printf("optimal weighted path length: %d\n", sol.Cost())
	fmt.Printf("solved in %d parallel iterations (budget %d)\n",
		sol.Iterations, sublineardp.WorstCaseIterations(in.N))

	// The parenthesization tree maps back to the BST: the split k of an
	// internal span node (i,j) is the root key k of the subtree holding
	// keys i+1..j-1 (1-based); leaves are the gaps.
	tr, err := seqSol.Tree()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal binary search tree:")
	fmt.Print(tr.Render(func(v int32) string {
		i, j := tr.Span(v)
		if j-i == 1 {
			return fmt.Sprintf("(gap %d)", i)
		}
		return keys[tr.Split(v)-1]
	}))

	// Sanity: the root of the BST should be a high-frequency middle key.
	fmt.Printf("root key: %q\n", keys[tr.Split(tr.Root)-1])
}
