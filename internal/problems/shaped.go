package problems

import (
	"fmt"
	"math/rand"

	"sublineardp/internal/btree"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// ShapePenalty is the decomposition cost charged to any split that
// deviates from the prescribed tree in a Shaped instance. Any tree other
// than the target uses at least one off-tree split, so its cost is at
// least ShapePenalty while the target costs 0; the target is therefore the
// unique optimum.
const ShapePenalty cost.Cost = 1 << 30

// Shaped returns an instance whose unique optimal parenthesization is
// exactly the given tree: f(i,k,j) is 0 when the tree contains node (i,j)
// split at k, and ShapePenalty otherwise; all leaves are free.
//
// These instances drive the solvers into prescribed best/worst cases:
// Shaped(btree.Zigzag(n)) realises the paper's Theta(sqrt n)-iteration
// pathology, Shaped(btree.Complete(n)) its O(log n) easy case.
func Shaped(t *btree.Tree) *recurrence.Instance {
	return shaped(t, 0, 0)
}

// shaped builds the prescribed-tree instance shared by Shaped and
// ShapedWithWeights. FPanel scans the panel's row of the split map once:
// for fixed (i,k), at most one j in the panel can prescribe split k, so
// the fill is "penalty everywhere, then patch the prescribed cells".
func shaped(t *btree.Tree, nodeCost, leafCost cost.Cost) *recurrence.Instance {
	splits := t.Splits()
	return &recurrence.Instance{
		N:    t.N,
		Name: fmt.Sprintf("shaped-n%d-h%d", t.N, t.Height()),
		Init: func(i int) cost.Cost { return leafCost },
		F: func(i, k, j int) cost.Cost {
			if want, ok := splits[[2]int{i, j}]; ok && want == k {
				return nodeCost
			}
			return ShapePenalty
		},
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			for idx := range dst {
				dst[idx] = ShapePenalty
				if want, ok := splits[[2]int{i, j0 + idx}]; ok && want == k {
					dst[idx] = nodeCost
				}
			}
		},
	}
}

// ShapedWithWeights is like Shaped but additionally charges small
// per-node weights so the optimal cost is nonzero and every node's weight
// contributes: f adds nodeCost on the prescribed splits, and leaves cost
// leafCost. The optimum is still the prescribed tree as long as
// (2n-1)*max(nodeCost,leafCost) < ShapePenalty, which holds for all sizes
// this repository runs.
func ShapedWithWeights(t *btree.Tree, nodeCost, leafCost cost.Cost) *recurrence.Instance {
	if nodeCost < 0 || leafCost < 0 {
		panic("problems: shaped weights must be nonnegative")
	}
	in := shaped(t, nodeCost, leafCost)
	in.Name = fmt.Sprintf("shapedw-n%d-h%d", t.N, t.Height())
	return in
}

// Zigzag returns the worst-case instance of size n (optimal tree =
// Figure 2a's zigzag spine).
func Zigzag(n int) *recurrence.Instance {
	in := Shaped(btree.Zigzag(n))
	in.Name = fmt.Sprintf("zigzag-n%d", n)
	return in
}

// Balanced returns the easy-case instance of size n (optimal tree =
// the complete tree of Figure 2b).
func Balanced(n int) *recurrence.Instance {
	in := Shaped(btree.Complete(n))
	in.Name = fmt.Sprintf("balanced-n%d", n)
	return in
}

// Skewed returns the straight-spine instance of size n (Figure 2b's
// skewed tree; left spine).
func Skewed(n int) *recurrence.Instance {
	in := Shaped(btree.LeftSkewed(n))
	in.Name = fmt.Sprintf("skewed-n%d", n)
	return in
}

// RandomShaped returns an instance whose optimal tree is a uniformly
// random split tree (the Section 6 average-case model made concrete).
func RandomShaped(n int, seed int64) *recurrence.Instance {
	in := Shaped(btree.RandomSplit(n, rand.New(rand.NewSource(seed))))
	in.Name = fmt.Sprintf("randshaped-n%d-s%d", n, seed)
	return in
}

// RandomInstance returns a fully random member of the recurrence family:
// every f(i,k,j) and init(i) drawn uniformly from [0, maxW]. Unlike
// RandomShaped, the shape of the optimal tree is not controlled; property
// tests use these to cross-validate solvers on unstructured inputs.
func RandomInstance(n, maxW int, seed int64) *recurrence.Instance {
	if n < 1 || maxW < 0 {
		panic("problems: RandomInstance needs n >= 1 and maxW >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	size := n + 1
	ini := make([]cost.Cost, n)
	for i := range ini {
		ini[i] = cost.Cost(rng.Intn(maxW + 1))
	}
	f := make([]cost.Cost, size*size*size)
	for i := 0; i <= n; i++ {
		for k := i + 1; k <= n; k++ {
			for j := k + 1; j <= n; j++ {
				f[(i*size+k)*size+j] = cost.Cost(rng.Intn(maxW + 1))
			}
		}
	}
	return &recurrence.Instance{
		N:    n,
		Name: fmt.Sprintf("random-n%d-s%d", n, seed),
		Init: func(i int) cost.Cost { return ini[i] },
		F:    func(i, k, j int) cost.Cost { return f[(i*size+k)*size+j] },
		FPanel: func(i, k, j0 int, dst []cost.Cost) {
			copy(dst, f[(i*size+k)*size+j0:])
		},
	}
}
