package parutil

import "sync/atomic"

// Stats is a per-solve scheduler observability collector. An engine
// threads one Stats through every dispatch of a solve (or a whole
// overlapped batch) and snapshots it with View when the solve returns;
// the counters separate the two costs a schedule can pay — synchronisation
// points (Barriers) and the submitter time lost waiting at them (IdleNs) —
// from the useful work actually executed (Tasks).
//
// All counters are atomic: one Stats may be shared by every worker of a
// dispatch, and by several concurrent solves when a batch shares one
// scheduler on purpose.
type Stats struct {
	barriers atomic.Int64
	idleNs   atomic.Int64
	tasks    atomic.Int64
	steals   atomic.Int64
}

// StatsView is a plain-value snapshot of a Stats collector, safe to copy
// and embed in results.
type StatsView struct {
	// Barriers counts full phase joins: dispatches whose caller blocked
	// until every unit of the phase finished before submitting the next.
	// The block-wavefront engine pays exactly 2(nb−1) of these per solve;
	// the pipelined engine pays 0 — its single task-graph drain never
	// fences one phase against the next.
	Barriers int64
	// IdleNs is barrier-tail idle: nanoseconds the submitting goroutine
	// spent parked at phase joins (or graph drains) with no work left to
	// claim or steal.
	IdleNs int64
	// Tasks counts executed work units — claimed dispatch chunks plus
	// graph tasks.
	Tasks int64
	// Steals counts foreign jobs the submitter helped drain while parked
	// at a barrier (the pool's deadlock-avoidance path doing useful work).
	Steals int64
}

// View snapshots the collector. The snapshot is consistent per counter,
// not across counters; take it after the dispatches it covers returned.
func (s *Stats) View() StatsView {
	if s == nil {
		return StatsView{}
	}
	return StatsView{
		Barriers: s.barriers.Load(),
		IdleNs:   s.idleNs.Load(),
		Tasks:    s.tasks.Load(),
		Steals:   s.steals.Load(),
	}
}

// AddBarrier records one full phase join.
func (s *Stats) AddBarrier() {
	if s != nil {
		s.barriers.Add(1)
	}
}

// AddIdleNs records nanoseconds spent parked with nothing to run.
func (s *Stats) AddIdleNs(ns int64) {
	if s != nil && ns > 0 {
		s.idleNs.Add(ns)
	}
}

// AddTasks records executed work units.
func (s *Stats) AddTasks(n int64) {
	if s != nil && n > 0 {
		s.tasks.Add(n)
	}
}

// AddSteal records one foreign job the submitter drained while waiting.
func (s *Stats) AddSteal() {
	if s != nil {
		s.steals.Add(1)
	}
}
