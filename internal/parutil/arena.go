package parutil

import "sync"

// Arena recycles equal-length slices across solves. The HLV engines'
// working state — the O(n^4) dense or O(n^3) banded pw' buffer and its
// double-buffer twin — dwarfs everything else a solve allocates, and a
// serving process solves the same sizes over and over; handing those
// buffers back to a size-keyed sync.Pool turns the steady state into a
// zero-large-allocation loop. Get returns slices with unspecified
// contents: callers own (re)initialisation, exactly as they owned it for
// a fresh make. The zero Arena is ready to use and safe for concurrent
// use; pooled memory is released under GC pressure like any sync.Pool.
type Arena[T any] struct {
	bySize sync.Map // len -> *sync.Pool of *[]T
}

// Get returns a slice of length n, recycled when one of that exact
// length has been Put before. Contents are unspecified.
func (a *Arena[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	if p, ok := a.bySize.Load(n); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			return *(v.(*[]T))
		}
	}
	return make([]T, n)
}

// Put hands s back for reuse by a later Get of the same length. The
// caller must not retain s afterwards.
func (a *Arena[T]) Put(s []T) {
	n := len(s)
	if n == 0 {
		return
	}
	p, _ := a.bySize.LoadOrStore(n, &sync.Pool{})
	p.(*sync.Pool).Put(&s)
}
