// Package llp is the asynchronous parallel engine for the chain
// recurrence (recurrence.Chain), in the Lattice-Linear Predicate style:
// the state is the vector of prefix values c(0..N) ordered by "how many
// candidates have been folded in", the predicate "index j is stable"
// holds once every candidate k < j is itself stable and folded, and any
// worker may advance any index whose predicate inputs are ready — there
// is no global barrier, no phase counter, and no locking of shared
// state beyond one atomic frontier and one stable bit per index.
//
// Concretely, workers own interleaved index sets (index j belongs to
// worker (j-1) mod W) and sweep them repeatedly. On each visit to an
// unfinished index j a worker folds the contiguous candidate run that
// has become ready since the last visit — k from Lo(j)+done(j) up to
// the published frontier — through the algebra kernel's bulk
// ReduceRelax, with the transition weights bulk-evaluated through
// Chain.FRow. Stragglers are tolerable because partial folds are
// permanent: each candidate pair (k,j) is folded exactly once, whenever
// its inputs happen to be ready, so a delayed worker delays only its
// own indices and the total work is exactly the sequential engine's
// candidate count — the work-efficiency bar the benchmarks audit.
//
// Publication is the classic stable-flag/frontier cascade: an owner
// finishes index j, stores its stable bit, then lifts the shared
// frontier over every contiguous stable index. Go's sequentially
// consistent atomics make the cascade sound (the last writer of a
// contiguous prefix always observes the bits before it), and the
// write-values -> store-stable -> CAS-frontier -> load-frontier ->
// read-values chain gives readers happens-before on every value at or
// below the frontier.
//
// Dispatch runs on parutil.Pool. A pool under queue pressure may run
// chunks at reduced width — even strictly sequentially — so a worker
// never blocks on another worker's index: when a full sweep makes no
// progress and no other worker has progressed either, the worker
// retires its chunk. Under real concurrency the one dispatch finishes
// everything; if the dispatch returns with the frontier short of N (a
// degraded pool ran the chunks serially), no worker is running any
// more, so a single-owner catch-up pass folds the remaining candidate
// runs in ascending order. Chunked left folds compose: the catch-up
// continues each index from done(j) with the identical fold order, so
// the result stays bitwise equal to the sequential engine's and every
// candidate pair is still folded exactly once.
package llp

import (
	"context"
	"runtime"
	"sync/atomic"

	"sublineardp/internal/algebra"
	"sublineardp/internal/cost"
	"sublineardp/internal/parutil"
	"sublineardp/internal/recurrence"
)

// Options configures an LLP chain solve.
type Options struct {
	// Workers is the number of index-owning workers (0 = pool width).
	Workers int
	// Pool is the worker pool the solve dispatches onto (nil = the
	// process-wide shared pool).
	Pool *parutil.Pool
	// Semiring overrides the algebra (nil = the chain's declared
	// algebra, min-plus by default).
	Semiring algebra.Semiring
}

// Result carries an LLP chain solve.
type Result struct {
	// Values is the converged vector c(0..N), bitwise identical to the
	// sequential chain engine's.
	Values *recurrence.Vector
	// Work counts candidate folds — exactly Chain.NumCandidates() on a
	// completed solve, the work-efficiency invariant.
	Work int64
	// Sweeps is the largest number of relaxation sweeps any single
	// worker ran — the straggler/contention metric (1 means every index
	// was ready on first visit).
	Sweeps int
}

// Solve runs the LLP engine to the fixed point under the chain's
// declared algebra.
func Solve(c *recurrence.Chain, o Options) *Result {
	res, err := SolveCtx(context.Background(), c, o)
	if err != nil {
		// Only reachable for an unregistered chain algebra; the
		// background context never cancels.
		panic(err)
	}
	return res
}

// SolveCtx is Solve with cooperative cancellation, checked once per
// sweep by every worker. A cancelled or expired context aborts with a
// nil Result and ctx.Err().
func SolveCtx(ctx context.Context, c *recurrence.Chain, o Options) (*Result, error) {
	k, err := algebra.Resolve(o.Semiring, c.Algebra)
	if err != nil {
		return nil, err
	}
	n := c.N
	pool := o.Pool
	if pool == nil {
		pool = parutil.Default()
	}
	workers := o.Workers
	if workers <= 0 {
		workers = pool.Workers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	vec := recurrence.NewVector(n)
	values := vec.Data()
	values[0] = k.One()
	for j := 1; j <= n; j++ { //lint:allow ctxpoll O(n) Zero fill before any worker starts; no candidate work
		values[j] = k.Zero()
	}

	var frontier atomic.Int64 // highest index whose value is final
	var progress atomic.Int64 // global progress epoch, for stall detection
	stable := make([]atomic.Bool, n+1)
	done := make([]int32, n+1)       // candidates folded per index; owner-written
	sweeps := make([]int64, workers) // per-worker sweep totals; owner-written

	// advance lifts the frontier over every contiguous stable index.
	// Sequentially consistent atomics make the cascade complete: the
	// last goroutine to store a bit of a contiguous stable prefix
	// observes the whole prefix and publishes it.
	advance := func() {
		for { //lint:allow ctxpoll lock-free frontier cascade: every retry observes another worker's progress and the stable prefix bounds it
			f := frontier.Load()
			if f >= int64(n) || !stable[f+1].Load() {
				return
			}
			frontier.CompareAndSwap(f, f+1)
		}
	}

	body := func(lo, hi int) int64 {
		var work int64
		var buf []cost.Cost
		for w := lo; w < hi; w++ {
			// Owned indices, ascending: j = w+1, w+1+workers, ...
			own := make([]int32, 0, (n-w-1)/workers+1)
			for j := w + 1; j <= n; j += workers {
				if !stable[j].Load() {
					own = append(own, int32(j))
				}
			}
			for len(own) > 0 {
				if ctx.Err() != nil {
					return work
				}
				sweeps[w]++
				seen := progress.Load()
				progressed := false
				out := own[:0]
				for _, j32 := range own {
					j := int(j32)
					d := int(done[j])
					k0 := c.Lo(j) + d
					hi2 := int(frontier.Load())
					if hi2 > j-1 {
						hi2 = j - 1
					}
					if k0 <= hi2 {
						cnt := hi2 - k0 + 1
						if cap(buf) < cnt {
							buf = make([]cost.Cost, cnt)
						}
						row := buf[:cnt]
						if c.FRow != nil {
							c.FRow(j, k0, row)
						} else {
							for t := 0; t < cnt; t++ {
								row[t] = c.F(k0+t, j) //lint:allow bulkonly per-candidate fallback when the chain supplies no FRow; FRow chains take the ReduceRelax bulk path
							}
						}
						values[j] = k.ReduceRelax(values[j], values, row, algebra.ReduceShape{
							M: 1, Cnt0: cnt, A: k0, AStep: 1, B: 0, BStep: 1,
						})
						done[j] = int32(d + cnt)
						work += int64(cnt)
						k0 += cnt
						progressed = true
					}
					if k0 > j-1 {
						stable[j].Store(true)
						advance()
						progressed = true
						continue
					}
					out = append(out, j32)
				}
				own = out
				if progressed {
					progress.Add(1)
					continue
				}
				if progress.Load() != seen {
					// Someone else moved; our inputs may be ready now.
					runtime.Gosched()
					continue
				}
				// Globally stalled from this worker's view: retire the
				// chunk instead of spinning — the pool may be running
				// chunks sequentially, in which case spinning here would
				// starve the very worker that owns our missing inputs.
				// The post-dispatch catch-up pass folds the remainder.
				break
			}
		}
		return work
	}

	totalWork, err := pool.SumInt64Ctx(ctx, workers, workers, 1, body)
	if err != nil {
		return nil, err
	}
	if int(frontier.Load()) < n {
		// The pool ran the chunks at reduced width and stalled workers
		// retired. The dispatch has returned, so no worker is live:
		// finish the remaining candidate runs single-owner, ascending —
		// the same fold order the workers would have used.
		sweeps[0]++
		buf := make([]cost.Cost, n)
		for j := int(frontier.Load()) + 1; j <= n; j++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if stable[j].Load() {
				continue
			}
			k0 := c.Lo(j) + int(done[j])
			if cnt := j - k0; cnt > 0 {
				row := buf[:cnt]
				if c.FRow != nil {
					c.FRow(j, k0, row)
				} else {
					for t := 0; t < cnt; t++ {
						row[t] = c.F(k0+t, j) //lint:allow bulkonly per-candidate fallback when the chain supplies no FRow; FRow chains take the ReduceRelax bulk path
					}
				}
				values[j] = k.ReduceRelax(values[j], values, row, algebra.ReduceShape{
					M: 1, Cnt0: cnt, A: k0, AStep: 1, B: 0, BStep: 1,
				})
				done[j] += int32(cnt)
				totalWork += int64(cnt)
			}
			stable[j].Store(true)
			frontier.Store(int64(j))
		}
	}

	maxSweeps := int64(0)
	for _, s := range sweeps { //lint:allow ctxpoll O(workers) counter fold after dispatch has returned
		if s > maxSweeps {
			maxSweeps = s
		}
	}
	return &Result{Values: vec, Work: totalWork, Sweeps: int(maxSweeps)}, nil
}
