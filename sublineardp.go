// Package sublineardp is a reproduction of
//
//	S.-H. S. Huang, H. Liu, V. Viswanathan:
//	"A sublinear parallel algorithm for some dynamic programming
//	problems" (ICPP 1990; Theoretical Computer Science 106, 1992).
//
// It solves dynamic-programming recurrences of the form
//
//	c(i,j) = min_{i<k<j} { c(i,k) + c(k,j) + f(i,k,j) },  c(i,i+1) = init(i)
//
// — matrix-chain multiplication, optimal binary search trees, optimal
// polygon triangulation — on a simulated CREW PRAM in O(sqrt(n) log n)
// parallel time with O(n^3.5/log n) processors, alongside the sequential
// O(n^3) baseline, the linear-time wavefront schedule, and Rytter's
// O(log^2 n)-time / O(n^6/log n)-processor algorithm that the paper
// improves upon.
//
// # Quick start
//
//	in := sublineardp.NewMatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
//	s, err := sublineardp.NewSolver(sublineardp.EngineHLVBanded)
//	if err != nil { ... }
//	sol, err := s.Solve(ctx, in)
//	if err != nil { ... }
//	fmt.Println("minimal multiplications:", sol.Cost())
//
// Every algorithm is an Engine behind the same context-aware Solver API
// and returns the same Solution type: "sequential" (the O(n^3) baseline,
// with O(n) tree reconstruction), "wavefront" (the span-parallel
// linear-time baseline), "rytter" (the 1988 O(log^2 n) baseline the
// paper improves on), "hlv-dense" (Sections 2-4), "hlv-banded" (the
// headline Section 5 variant), and "auto" (size-based selection).
// Engines are configured with functional options (WithWorkers,
// WithTermination, WithBandRadius, WithHistory, ...), honour context
// cancellation and deadlines mid-iteration, and custom engines can be
// added with RegisterEngine.
//
// # Algebras
//
// Every engine — including the banded tiled kernels — is generic over an
// idempotent semiring (internal/algebra): the recurrence's min and + are
// just Combine and Extend. Three algebras ship: min-plus (the paper's,
// the default), max-plus (worst-case parenthesization — see
// NewWorstCaseMatrixChain), and bool-plan (0/1 feasibility under
// forbidden splits — see NewForbiddenSplits). Select one per solve with
// WithSemiring, or build instances that declare their own algebra; the
// algebra is part of an instance's canonical identity, so caches never
// conflate a min-plus solution with a max-plus one. Third-party algebras
// register with RegisterSemiring, which validates the semiring axioms
// mechanically, and are then held to the same engine conformance matrix
// as the shipped ones. (The "semiring" engine name survives as a
// deprecated alias of hlv-dense.)
//
// SolveBatch fans many instances across a worker pool with size-based
// engine auto-selection — the serving building block:
//
//	sols, err := sublineardp.SolveBatch(ctx, instances,
//	        sublineardp.WithConcurrency(8))
//
// WithCache(NewCache(n)) adds a content-addressed solution cache with
// single-flight dedup over any Solver or batch: canonicalisable
// instances (Instance.Canonical) that repeat are served from memory and
// identical in-flight solves run once. cmd/dpserved serves all of this
// over HTTP/JSON (see the README's Serving section); internal/wire
// defines the request/response format.
//
// The internal packages expose the full machinery: the pebbling game of
// Section 3 (Pebble* identifiers below), PRAM accounting, termination
// heuristics, and the experiment harness behind cmd/dpbench.
//
// The package-level Solve, SolveSequential, SolveWavefront and
// SolveRytter functions are the pre-registry API, kept as thin
// deprecated wrappers.
package sublineardp

import (
	"sublineardp/internal/btree"
	"sublineardp/internal/core"
	"sublineardp/internal/cost"
	"sublineardp/internal/pebble"
	"sublineardp/internal/problems"
	"sublineardp/internal/recurrence"
	"sublineardp/internal/rytter"
	"sublineardp/internal/seq"
	"sublineardp/internal/wavefront"
)

// Core data types, re-exported from the internal packages.
type (
	// Instance is one problem of the recurrence family (*).
	Instance = recurrence.Instance
	// Table is the upper-triangular cost table c(i,j).
	Table = recurrence.Table
	// Cost is an exact integer dynamic-programming value.
	Cost = cost.Cost
	// Tree is a parenthesization tree over spans (i,j).
	Tree = btree.Tree
	// Options configures the parallel solver (variant, mode, termination,
	// workers, band radius, windowed schedule, audit, history).
	Options = core.Options
	// Result is the parallel solver's outcome with PRAM instrumentation.
	Result = core.Result
	// Point is a polygon vertex for triangulation instances.
	Point = problems.Point
)

// Inf is the "not yet computed / unreachable" cost sentinel.
const Inf = cost.Inf

// Solver configuration constants, re-exported for Options literals.
const (
	Dense           = core.Dense
	Banded          = core.Banded
	Synchronous     = core.Synchronous
	Chaotic         = core.Chaotic
	FixedIterations = core.FixedIterations
	WStable         = core.WStable
	WPWStable       = core.WPWStable
)

// NewMatrixChain returns the matrix-chain multiplication instance for
// matrices A_t of shape dims[t-1] x dims[t].
func NewMatrixChain(dims []int) *Instance { return problems.MatrixChain(dims) }

// NewOBST returns the optimal binary search tree instance with key
// weights beta (len m) and gap weights alpha (len m+1), in Knuth's
// formulation.
func NewOBST(alpha, beta []int64) *Instance { return problems.OBST(alpha, beta) }

// NewTriangulation returns the minimum-perimeter triangulation instance
// of the convex polygon with the given vertices.
func NewTriangulation(vs []Point) *Instance { return problems.Triangulation(vs) }

// NewWeightedTriangulation returns the vertex-weight-product
// triangulation instance (isomorphic to matrix-chain ordering).
func NewWeightedTriangulation(weights []int64) *Instance {
	return problems.WeightedTriangulation(weights)
}

// NewWorstCaseMatrixChain returns the max-plus twin of NewMatrixChain:
// the same decomposition costs, with the *costliest* parenthesization as
// the optimum — the adversarial bound on an uninformed evaluation order.
// The instance declares the max-plus algebra itself; no WithSemiring is
// needed, and its cache identity never collides with the min-plus twin.
func NewWorstCaseMatrixChain(dims []int) *Instance {
	return problems.WorstCaseMatrixChain(dims)
}

// NewForbiddenSplits returns the bool-plan feasibility family: does a
// parenthesization of n objects exist that never creates any of the
// forbidden subexpressions (i,j)? Solution.Cost is 1 when feasible, 0
// otherwise, and the sequential engine's Solution.Tree returns a witness
// parenthesization when one exists.
func NewForbiddenSplits(n int, forbidden [][2]int) *Instance {
	return problems.ForbiddenSplits(n, forbidden)
}

// NewShaped returns an instance whose unique optimal parenthesization is
// the given tree — the tool for driving the solver into best and worst
// cases (see ZigzagTree and CompleteTree).
func NewShaped(t *Tree) *Instance { return problems.Shaped(t) }

// Tree shape constructors (Figure 2 of the paper).
var (
	// ZigzagTree builds the Theta(sqrt n)-iteration worst case (Fig. 2a).
	ZigzagTree = btree.Zigzag
	// CompleteTree builds the balanced O(log n) easy case (Fig. 2b).
	CompleteTree = btree.Complete
	// SkewedTree builds the straight left spine (Fig. 2b).
	SkewedTree = btree.LeftSkewed
)

// Solve runs the paper's parallel algorithm. The zero Options give the
// dense Sections 2-4 algorithm; set Variant: Banded for the
// O(n^3.5/log n)-processor variant of Section 5. Like every solve in the
// repository it executes on the pooled runtime: kernels dispatch onto
// the process-wide worker pool and the w'/pw' buffers recycle through
// the shared arena, so legacy callers get the same steady-state speed as
// the Solver API.
//
// Deprecated: use NewSolver(EngineHLVDense) or NewSolver(EngineHLVBanded)
// with functional options, which adds context cancellation and the
// unified Solution type.
func Solve(in *Instance, opts Options) *Result { return core.Solve(in, opts) }

// SequentialResult is the outcome of the O(n^3) baseline.
type SequentialResult struct {
	// Table is the full DP table; Table.Root() is the optimum.
	Table *Table
	// Work counts candidate evaluations (the sequential O(n^3)).
	Work int64

	inner *seq.Result
}

// Cost returns the optimum c(0,n).
func (r *SequentialResult) Cost() Cost { return r.Table.Root() }

// Tree reconstructs the optimal parenthesization.
func (r *SequentialResult) Tree() *Tree { return r.inner.Tree() }

// Split returns the optimal split point of node (i,j).
func (r *SequentialResult) Split(i, j int) int { return r.inner.Split(i, j) }

// SolveSequential runs the classic O(n^3) dynamic program.
//
// Deprecated: use NewSolver(EngineSequential); the Solution it returns
// carries the same table, work count, tree reconstruction and splits.
func SolveSequential(in *Instance) *SequentialResult {
	res := seq.Solve(in)
	return &SequentialResult{Table: res.Table, Work: res.Work, inner: res}
}

// SolveWavefront runs the span-parallel linear-time baseline on the
// shared pooled runtime.
//
// Deprecated: use NewSolver(EngineWavefront, WithWorkers(workers)).
func SolveWavefront(in *Instance, workers int) *Table {
	return wavefront.Solve(in, wavefront.Options{Workers: workers}).Table
}

// SolveRytter runs the 1988 baseline the paper improves on, on the
// shared pooled runtime.
//
// Deprecated: use NewSolver(EngineRytter, WithWorkers(workers)).
func SolveRytter(in *Instance, workers int) *Table {
	return rytter.Solve(in, rytter.Options{Workers: workers}).Table
}

// PebbleRule selects the square move of the Section 3 pebbling game.
type PebbleRule = pebble.Rule

// Pebbling game rules.
const (
	// PebbleHLV descends one level per move (Lemma 3.3: 2*sqrt(n) moves).
	PebbleHLV = pebble.HLVRule
	// PebbleRytter is pointer doubling (O(log n) moves).
	PebbleRytter = pebble.RytterRule
)

// PebbleGame is a playable position of the Section 3 game.
type PebbleGame = pebble.Game

// NewPebbleGame starts the game on t: leaves pebbled, cond(x) = x.
func NewPebbleGame(t *Tree, rule PebbleRule) *PebbleGame {
	return pebble.NewGame(t, rule)
}

// PebbleBound returns the Lemma 3.3 move bound 2*ceil(sqrt(n)).
func PebbleBound(nLeaves int) int { return pebble.LemmaBound(nLeaves) }

// WorstCaseIterations returns the solver's fixed iteration budget for
// size n, the paper's 2*ceil(sqrt(n)).
func WorstCaseIterations(n int) int { return core.DefaultIterations(n) }

// ExtractTree reconstructs an optimal parenthesization from any converged
// cost table (for example Result.Table of a parallel solve — the paper's
// algorithm computes values only; this recovers the solution). It fails
// if the table is not a fixed point of the recurrence, e.g. when a run
// was stopped before convergence.
func ExtractTree(in *Instance, t *Table) (*Tree, error) {
	return recurrence.ExtractTree(in, t)
}

// TreeCost evaluates the exact cost of one specific parenthesization
// under the instance (the paper's W(T)).
func TreeCost(in *Instance, t *Tree) Cost { return recurrence.TreeCost(in, t) }
