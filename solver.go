package sublineardp

import (
	"context"
	"fmt"
	"time"

	"sublineardp/internal/algebra"
)

// Solver is the unified entry point to every algorithm in the
// repository: a registry engine plus a fixed configuration. A Solver is
// immutable after construction and safe for concurrent use — one Solver
// can serve many goroutines (and is what SolveBatch builds on).
//
//	s, err := sublineardp.NewSolver(sublineardp.EngineHLVBanded,
//	        sublineardp.WithTermination(sublineardp.WStable))
//	sol, err := s.Solve(ctx, in)
type Solver struct {
	engine Engine
	cfg    Config
}

// NewSolver builds a Solver for the named registry engine ("" picks
// "auto", the size-based selector). It fails on unknown engine names;
// see Engines for the registered set.
func NewSolver(engine string, opts ...Option) (*Solver, error) {
	cfg := buildConfig(opts)
	name := engine
	if name == "" {
		name = cfg.Engine
	}
	if name == "" {
		name = EngineAuto
	}
	e, ok := LookupEngine(name)
	if !ok {
		return nil, fmt.Errorf("sublineardp: unknown engine %q (registered: %v)", name, Engines())
	}
	cfg.Engine = name
	return &Solver{engine: e, cfg: cfg}, nil
}

// MustNewSolver is NewSolver but panics on error, for initialisation of
// package-level solvers with known-good engine names.
func MustNewSolver(engine string, opts ...Option) *Solver {
	s, err := NewSolver(engine, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// EngineName returns the registry name the Solver was built with
// ("auto" reports itself, not its per-instance choice — that is in
// Solution.Engine).
func (s *Solver) EngineName() string { return s.engine.Name() }

// Solve runs the engine on one instance. The context's cancellation and
// deadline are honoured cooperatively by every engine: a solve aborted
// mid-iteration returns a nil Solution and ctx.Err() promptly rather
// than running to completion.
func (s *Solver) Solve(ctx context.Context, in *Instance) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if in == nil || in.N < 1 {
		return nil, fmt.Errorf("sublineardp: invalid instance (nil or N < 1)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// WithConvexity is a contract, not a hint: fail fast here — before
	// the cache protocol — so an ineligible instance can never be served
	// a cached result that pretended the pruned path ran.
	if s.cfg.Convexity {
		if !in.Convex {
			return nil, fmt.Errorf("%w (instance %q does not declare Convex)", ErrConvexityRequired, in.Name)
		}
		if name := algebra.ResolveName(s.cfg.Semiring, in.Algebra); name != algebra.NameMinPlus {
			return nil, fmt.Errorf("%w (instance %q resolves to algebra %q)", ErrConvexityRequired, in.Name, name)
		}
	}
	// WithTarget instrumentation is excluded from caching: Target is a
	// table pointer whose content would have to be hashed to key it
	// correctly, and a cached ConvergedAt recorded under a different
	// target would be silently wrong.
	if s.cfg.Cache != nil && s.cfg.Target == nil {
		if key, ok := solveKey(in, s.engine.Name(), &s.cfg); ok {
			start := time.Now()
			sol, err := s.cfg.Cache.solve(ctx, key, func(fctx context.Context) (*Solution, error) {
				return s.solveDirect(fctx, in)
			})
			if err != nil {
				return nil, err
			}
			if sol.Cached {
				sol.Elapsed = time.Since(start)
			}
			return sol, nil
		}
	}
	return s.solveDirect(ctx, in)
}

// solveDirect runs the engine unconditionally — the compute path under
// the cache protocol and the whole path when no cache is attached.
func (s *Solver) solveDirect(ctx context.Context, in *Instance) (*Solution, error) {
	start := time.Now()
	sol, err := s.engine.Solve(ctx, in, &s.cfg)
	if err != nil {
		return nil, err
	}
	sol.Elapsed = time.Since(start)
	return sol, nil
}
