package algebra

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing/quick"

	"sublineardp/internal/cost"
)

// domain is a quick.Generator-compatible sample from a semiring's value
// domain: random values normalised through the algebra's own
// representation (so e.g. bool-plan only ever sees 0/1), mixed with the
// boundary values the solvers actually produce.
type domain struct {
	sr Semiring
	v  cost.Cost
}

func (d domain) Generate(rng *rand.Rand, _ int) reflect.Value {
	k := Promote(d.sr)
	var v cost.Cost
	switch rng.Intn(8) {
	case 0:
		v = d.sr.Zero()
	case 1:
		v = d.sr.One()
	case 2:
		v = k.Norm(cost.Cost(rng.Int63n(5)))
	default:
		v = k.Norm(cost.Cost(rng.Int63n(1 << 40)))
	}
	return reflect.ValueOf(domain{d.sr, v})
}

// CheckLaws verifies the idempotent-semiring axioms the solvers rely on,
// by randomised property testing over the algebra's own value domain:
//
//	Combine: idempotent, commutative, associative; Zero is its identity.
//	Extend:  associative, commutes with itself is not required, but One
//	         is its identity and Zero is absorbing.
//	Extend distributes over Combine — the law that makes "Combine of
//	Extend-accumulated partial trees" equal "the accumulated Combine",
//	i.e. that lets a-square compose partial weights, and that implies
//	Extend's monotonicity in the Combine order.
//
// Register runs it before admitting a third-party algebra; the
// conformance suite re-runs it against every registered algebra.
func CheckLaws(sr Semiring) error {
	cfg := &quick.Config{
		MaxCount: 400,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			for i := range vs {
				vs[i] = domain{sr, 0}.Generate(rng, 0)
			}
		},
	}
	laws := []struct {
		name string
		fn   any
	}{
		{"Combine idempotent", func(a domain) bool {
			return sr.Combine(a.v, a.v) == a.v
		}},
		{"Combine commutative", func(a, b domain) bool {
			return sr.Combine(a.v, b.v) == sr.Combine(b.v, a.v)
		}},
		{"Combine associative", func(a, b, c domain) bool {
			return sr.Combine(sr.Combine(a.v, b.v), c.v) == sr.Combine(a.v, sr.Combine(b.v, c.v))
		}},
		{"Zero is Combine identity", func(a domain) bool {
			return sr.Combine(a.v, sr.Zero()) == a.v && sr.Combine(sr.Zero(), a.v) == a.v
		}},
		{"Extend associative", func(a, b, c domain) bool {
			return sr.Extend(sr.Extend(a.v, b.v), c.v) == sr.Extend(a.v, sr.Extend(b.v, c.v))
		}},
		{"One is Extend identity", func(a domain) bool {
			return sr.Extend(a.v, sr.One()) == a.v && sr.Extend(sr.One(), a.v) == a.v
		}},
		{"Zero absorbs Extend", func(a domain) bool {
			return sr.Extend(a.v, sr.Zero()) == sr.Zero() && sr.Extend(sr.Zero(), a.v) == sr.Zero()
		}},
		{"Extend distributes over Combine", func(a, b, c domain) bool {
			lhs := sr.Extend(a.v, sr.Combine(b.v, c.v))
			rhs := sr.Combine(sr.Extend(a.v, b.v), sr.Extend(a.v, c.v))
			return lhs == rhs
		}},
		{"Extend monotone in the Combine order", func(a, b, c domain) bool {
			// Combine(a,b) == b means a does not improve on b; then
			// Extend(a,c) must not improve on Extend(b,c).
			if sr.Combine(a.v, b.v) != b.v {
				return true
			}
			return sr.Combine(sr.Extend(a.v, c.v), sr.Extend(b.v, c.v)) == sr.Extend(b.v, c.v)
		}},
	}
	for _, law := range laws {
		if err := quick.Check(law.fn, cfg); err != nil {
			return fmt.Errorf("%s: %v", law.name, err) //lint:allow hotalloc law-checker validation loop, runs once per RegisterSemiring, never per solve
		}
	}
	// The derived helpers must agree with their definitions when the
	// algebra specialises them.
	k := Promote(sr)
	err := quick.Check(func(a, b domain) bool {
		if k.Better(a.v, b.v) != (sr.Combine(a.v, b.v) != b.v) {
			return false
		}
		return k.Relax2(a.v, b.v, sr.One()) == sr.Combine(a.v, b.v)
	}, cfg)
	if err != nil {
		return fmt.Errorf("Better/Relax2 disagree with Combine: %v", err)
	}
	return nil
}
