// Package fixture pins the atomicmix analyzer: hits is accessed via
// sync/atomic in inc, so the plain read in bad is the true positive
// and the annotated construction store is the suppressed negative;
// cold is never touched atomically and stays clean.
package fixture

import "sync/atomic"

type counter struct {
	hits int64
	cold int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) bad() int64 {
	return c.hits // positive: plain read races the atomic adds
}

func (c *counter) reset() {
	c.hits = 0 //lint:allow atomicmix pre-publication construction, no goroutine sees c yet
}

func (c *counter) fine() int64 {
	c.cold++ // clean: cold has no atomic access anywhere
	return atomic.LoadInt64(&c.hits)
}

var (
	_ = (*counter).inc
	_ = (*counter).bad
	_ = (*counter).reset
	_ = (*counter).fine
)
