package sublineardp

import (
	"errors"
	"fmt"
	"time"

	"sublineardp/internal/algebra"
	"sublineardp/internal/pram"
	"sublineardp/internal/recurrence"
)

// Accounting is the PRAM cost-model ledger (time, work, processors)
// shared by every parallel engine, re-exported from internal/pram.
type Accounting = pram.Accounting

// Solution is the unified outcome of a Solver.Solve or SolveBatch run:
// one type for every engine, from the sequential O(n^3) baseline to the
// paper's banded HLV iteration. Fields that an engine does not produce
// are left at their zero value (for example Work is sequential-only and
// Iterations is zero for the single-pass baselines).
type Solution struct {
	// Engine is the registry name of the engine that produced this
	// solution ("sequential", "hlv-banded", ...). For the "auto"
	// meta-engine it names the engine actually chosen.
	Engine string

	// Algebra names the semiring the solve ran under ("min-plus" unless
	// the instance declared or WithSemiring selected another): the key to
	// interpreting Table's values (minimal cost, maximal cost, 0/1
	// feasibility, ...).
	Algebra string

	// Table holds the converged cost table c(i,j); Table.Root() is the
	// optimum, also available as Cost().
	Table *Table

	// Iterations is the number of parallel iterations executed (HLV,
	// Rytter and semiring engines; zero for single-pass engines).
	Iterations int

	// StoppedEarly reports that a stability termination rule fired
	// before the worst-case iteration budget was exhausted.
	StoppedEarly bool

	// ConvergedAt is the first iteration after which the table matched
	// WithTarget's reference, or -1 when no target was set or it never
	// matched.
	ConvergedAt int

	// BandRadius echoes the effective deficit bound D of a banded HLV
	// run (zero for every other engine).
	BandRadius int

	// Work counts candidate evaluations of the sequential baseline (the
	// quantity processor-time products are compared against); zero for
	// the parallel engines, whose cost lives in Acct.
	Work int64

	// Acct is the PRAM cost-model accounting (parallel engines only).
	Acct Accounting

	// Stats is the scheduler observability snapshot of the pooled tile
	// engines: barrier count (2(nb−1) for "blocked", 0 for the
	// barrier-free "blocked-pipe"), barrier-tail idle nanoseconds, and
	// executed work units. Solves of an overlapped SolveBatch group share
	// one scheduler and report its joint view. Zero for engines that do
	// not run on the tile scheduler.
	Stats PoolStats

	// History holds per-iteration statistics when WithHistory was set
	// and the engine records them (HLV engines only).
	History []IterStat

	// Elapsed is the wall-clock duration of the solve. For a cached
	// solution it is the time this caller waited, not the original
	// solve's duration.
	Elapsed time.Duration

	// Cached reports that the solution was served by a WithCache cache —
	// either a resident LRU hit or a fold into an identical in-flight
	// solve — rather than by running an engine.
	Cached bool

	// instance backs the lazy table reconstruction of Tree/Split; treeFn
	// and splits are the O(n) recorded-split fast paths the sequential
	// engine (always) and the blocked engine (WithSplits) provide.
	instance *Instance
	treeFn   func() (*Tree, error)
	splits   func(i, j int) int
}

// Cost returns the computed optimum c(0,n). On a solution without a
// table — the zero value, or an error-path partial — it returns the
// algebra's Zero ("no solution": Inf for min-plus, -Inf for max-plus, 0
// for bool-plan) instead of panicking.
func (s *Solution) Cost() Cost {
	if s == nil || s.Table == nil {
		if s != nil {
			if sr, ok := LookupSemiring(s.Algebra); ok {
				return sr.Zero()
			}
		}
		return Inf
	}
	return s.Table.Root()
}

// N returns the instance size the solution answers for, or 0 for a
// solution without a table (the zero value, or an error-path partial).
func (s *Solution) N() int {
	if s == nil || s.Table == nil {
		return 0
	}
	return s.Table.N
}

// Tree reconstructs an optimal parenthesization. The sequential engine
// (always) and the blocked engine (under WithSplits) recorded split
// points during the solve, so their reconstruction is an O(n)
// root-to-leaf walk under any algebra; every other solve recovers the
// tree lazily from the converged value table (the paper's algorithm
// computes values only) — n−1 span scans under the solve's registered
// algebra, not the eager all-spans sweep. It fails on an unreachable
// root (the algebra's Zero — no feasible tree exists) and if the table
// is not a fixed point of the recurrence — e.g. a run capped by
// WithMaxIterations before convergence.
func (s *Solution) Tree() (*Tree, error) {
	if s == nil {
		return nil, errors.New("sublineardp: Tree on a nil solution")
	}
	if s.treeFn != nil {
		return s.treeFn()
	}
	if s.Table == nil || s.instance == nil {
		return nil, errors.New("sublineardp: solution carries no instance to reconstruct from")
	}
	kern, ok := algebra.Lookup(s.Algebra)
	if !ok {
		return nil, fmt.Errorf("sublineardp: cannot reconstruct under unregistered algebra %q", s.Algebra)
	}
	return recurrence.ExtractTreeSemiring(s.instance, s.Table, kern)
}

// Split returns the optimal split point of node (i,j): the smallest k
// realising c(i,j), matching the sequential engine's tie-breaking. The
// sequential engine (always) and the blocked engine (under WithSplits)
// recorded their splits during the solve; every other solve recovers
// the split from the converged value table under the solve's registered
// algebra, exactly as Tree does. It returns -1 when the split is
// genuinely unavailable: leaves and out-of-range spans, an unreachable
// node (the algebra's Zero — saturated sums never fabricate a match),
// an unregistered algebra, or a table that is not a fixed point at
// (i,j) (e.g. a run capped by WithMaxIterations before convergence).
func (s *Solution) Split(i, j int) int {
	if s == nil || s.Table == nil || i < 0 || j > s.Table.N || j-i < 2 {
		return -1
	}
	if s.splits != nil {
		return s.splits(i, j)
	}
	if s.instance == nil {
		return -1
	}
	kern, ok := algebra.Lookup(s.Algebra)
	if !ok {
		return -1
	}
	target := kern.Norm(s.Table.At(i, j))
	if kern.IsZero(target) {
		return -1
	}
	for k := i + 1; k < j; k++ {
		v := kern.Extend3(s.instance.F(i, k, j), s.Table.At(i, k), s.Table.At(k, j))
		if !kern.IsZero(v) && kern.Norm(v) == target {
			return k
		}
	}
	return -1
}
