package exper

import (
	"fmt"
	"math/rand"

	"sublineardp/internal/btree"
	"sublineardp/internal/pebble"
)

// E3PebbleGame reproduces Lemma 3.3 directly: for every tree shape and a
// size sweep, play the game under the paper's square rule and under
// Rytter's pointer-doubling rule, and compare move counts against the
// 2*ceil(sqrt n) bound (HLV) and O(log n) (Rytter).
func E3PebbleGame(cfg Config) []*Table {
	sizes := []int{16, 64, 256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{16, 64, 256}
	}
	shapes := []struct {
		name string
		mk   func(n int) *btree.Tree
	}{
		{"zigzag", btree.Zigzag},
		{"complete", btree.Complete},
		{"skewed", btree.LeftSkewed},
		{"random(s=7)", func(n int) *btree.Tree { return btree.RandomSplit(n, rand.New(rand.NewSource(7))) }},
	}

	t := &Table{
		ID:       "E3",
		Title:    "Pebbling-game moves to pebble the root",
		PaperRef: "Lemma 3.3 (HLV square, bound 2*ceil(sqrt n)); Rytter's doubling square for contrast",
		Columns:  []string{"shape", "n", "bound", "hlv moves", "rytter moves", "hlv/bound"},
	}

	violations := 0
	for _, sh := range shapes {
		for _, n := range sizes {
			tree := sh.mk(n)
			h, okH := pebble.MovesOn(tree, pebble.HLVRule)
			r, okR := pebble.MovesOn(tree, pebble.RytterRule)
			if !okH || !okR {
				violations++
			}
			bound := pebble.LemmaBound(n)
			t.AddRow(sh.name, n, bound, h, r, fmt.Sprintf("%.2f", float64(h)/float64(bound)))
		}
	}
	if violations == 0 {
		t.Note("no run exceeded its budget; Lemma 3.3 held in every case")
	} else {
		t.Note("WARNING: %d runs exceeded the lemma budget", violations)
	}
	t.Note("zigzag sits near the bound (the paper's worst case); rytter stays logarithmic everywhere")
	return []*Table{t}
}
