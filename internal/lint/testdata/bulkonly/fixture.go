// Package fixture pins the bulkonly analyzer: a per-candidate F call
// inside a loop is the true positive, the annotated fallback is the
// suppressed negative, and handing the F value to a bulk primitive is
// the sanctioned pattern.
package fixture

// Instance mimics the recurrence transition carrier.
type Instance struct {
	F func(k, j int) int
}

func fold(in *Instance, n int) int {
	best := 0
	for j := 0; j < n; j++ {
		best += in.F(j, n) // positive: dictionary call per candidate
	}
	for j := 0; j < n; j++ {
		best += in.F(j, n) //lint:allow bulkonly fallback when the instance carries no bulk row form
	}
	bulk(in.F, n) // clean: passing the F value to a bulk primitive
	return best
}

func bulk(f func(k, j int) int, n int) int {
	out := 0
	for j := 0; j < n; j++ {
		out += f(j, n)
	}
	return out
}

var _ = fold
