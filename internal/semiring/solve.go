package semiring

import (
	"context"

	"sublineardp/internal/algebra"
	"sublineardp/internal/core"
	"sublineardp/internal/cost"
	"sublineardp/internal/recurrence"
)

// This file is the deprecated compatibility surface of the pre-unification
// semiring solver: SolveSeq, SolveHLV and BruteForce keep their int64
// signatures, but the parallel solve is now a thin wrapper over the same
// generic internal/core engines every other caller uses — this package no
// longer owns an iteration of its own.

// bridge adapts this package's legacy int64 Semiring to the unified
// algebra contract. The shipped algebras map onto their specialised
// counterparts so wrapped solves still run the fast kernels; anything
// else is promoted generically.
func bridge(sr Semiring) algebra.Kernel {
	switch sr.(type) {
	case MinPlus:
		return algebra.MinPlus{}
	case MaxPlus:
		return algebra.MaxPlus{}
	case BoolPlan:
		return algebra.BoolPlan{}
	}
	return algebra.Promote(bridged{sr})
}

// bridged lifts an arbitrary legacy semiring onto cost.Cost values.
type bridged struct{ sr Semiring }

func (b bridged) Combine(x, y cost.Cost) cost.Cost {
	return cost.Cost(b.sr.Combine(int64(x), int64(y)))
}
func (b bridged) Extend(x, y cost.Cost) cost.Cost { return cost.Cost(b.sr.Extend(int64(x), int64(y))) }
func (b bridged) Zero() cost.Cost                 { return cost.Cost(b.sr.Zero()) }
func (b bridged) One() cost.Cost                  { return cost.Cost(b.sr.One()) }
func (b bridged) Name() string                    { return b.sr.Name() }

// unified rebuilds the legacy instance as a recurrence.Instance, the one
// type every engine consumes.
func unified(in *Instance) *recurrence.Instance {
	return &recurrence.Instance{
		N:    in.N,
		Name: in.Name,
		Init: func(i int) cost.Cost { return cost.Cost(in.Init(i)) },
		F:    func(i, k, j int) cost.Cost { return cost.Cost(in.F(i, k, j)) },
	}
}

// SolveSeq evaluates the recurrence span by span over the semiring — the
// O(n^3) baseline generalised. Kept as an independent implementation: the
// package tests use it as a solver-free cross-check of the unified path.
//
// Deprecated: use internal/seq.SolveSemiringCtx with a recurrence.Instance.
func SolveSeq(sr Semiring, in *Instance) []int64 {
	n := in.N
	sz := n + 1
	w := make([]int64, sz*sz)
	for i := range w {
		w[i] = sr.Zero()
	}
	for i := 0; i < n; i++ {
		w[i*sz+i+1] = in.Init(i)
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span
			acc := sr.Zero()
			for k := i + 1; k < j; k++ {
				acc = sr.Combine(acc, sr.Extend(in.F(i, k, j), sr.Extend(w[i*sz+k], w[k*sz+j]))) //lint:allow bulkonly deprecated int64 shim's reference sweep; serving routes through the generic core engines
			}
			w[i*sz+j] = acc
		}
	}
	return w
}

// Result carries a generalised parallel solve.
type Result struct {
	W          []int64 // flat (n+1)^2 table
	N          int
	Iterations int
}

// At returns the table entry for (i,j).
func (r *Result) At(i, j int) int64 { return r.W[i*(r.N+1)+j] }

// Root returns the answer c(0,N).
func (r *Result) Root() int64 { return r.At(0, r.N) }

// SolveHLV runs the paper's three-operation iteration over the semiring
// for 2*ceil(sqrt(n)) iterations (maxIters <= 0) or the given budget.
//
// Deprecated: use the unified engines — core.Solve with Options.Semiring,
// or the root Solver API with WithSemiring. This wrapper routes through
// exactly that path (the dense generic engine on the pooled runtime).
func SolveHLV(sr Semiring, in *Instance, maxIters int) *Result {
	res, err := SolveHLVCtx(context.Background(), sr, in, maxIters)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(err)
	}
	return res
}

// SolveHLVCtx is SolveHLV with cooperative cancellation. A cancelled or
// expired context aborts with a nil Result and ctx.Err().
//
// Deprecated: see SolveHLV.
func SolveHLVCtx(ctx context.Context, sr Semiring, in *Instance, maxIters int) (*Result, error) {
	k := bridge(sr)
	res, err := core.SolveCtx(ctx, unified(in), core.Options{
		Variant:       core.Dense,
		Semiring:      k,
		MaxIterations: maxIters,
		Termination:   core.FixedIterations,
	})
	if err != nil {
		return nil, err
	}
	n := in.N
	sz := n + 1
	out := &Result{N: n, Iterations: res.Iterations, W: make([]int64, sz*sz)}
	zero := int64(k.Zero())
	for i := range out.W { //lint:allow ctxpoll O(n^2) Zero fill in the deprecated shim's result copy, after the polled solve returned
		out.W[i] = zero
	}
	for i := 0; i <= n; i++ { //lint:allow ctxpoll O(n^2) result copy in the deprecated shim, after the polled solve returned
		for j := i + 1; j <= n; j++ {
			out.W[i*sz+j] = int64(res.Table.At(i, j))
		}
	}
	return out, nil
}

// BruteForce enumerates all parenthesizations recursively with
// memoisation over spans — valid for any semiring, used as ground truth
// in tests.
func BruteForce(sr Semiring, in *Instance) int64 {
	n := in.N
	sz := n + 1
	memo := make([]int64, sz*sz)
	done := make([]bool, sz*sz)
	var rec func(i, j int) int64
	rec = func(i, j int) int64 {
		c := i*sz + j
		if done[c] {
			return memo[c]
		}
		var v int64
		if j == i+1 {
			v = in.Init(i)
		} else {
			v = sr.Zero()
			for k := i + 1; k < j; k++ {
				v = sr.Combine(v, sr.Extend(in.F(i, k, j), sr.Extend(rec(i, k), rec(k, j)))) //lint:allow bulkonly deprecated int64 shim's memoized reference; never on the bulk serving path
			}
		}
		memo[c] = v
		done[c] = true
		return v
	}
	return rec(0, n)
}
