package sublineardp_test

import (
	"context"
	"reflect"
	"testing"

	"sublineardp"
	"sublineardp/internal/problems"
)

func TestChainSolverUnknownEngine(t *testing.T) {
	if _, err := sublineardp.NewChainSolver("no-such-chain-engine"); err == nil {
		t.Fatal("unknown chain engine accepted")
	}
}

func TestChainSolverRejectsInvalidChain(t *testing.T) {
	s := sublineardp.MustNewChainSolver("")
	if _, err := s.Solve(context.Background(), nil); err == nil {
		t.Fatal("nil chain accepted")
	}
	if _, err := s.Solve(context.Background(), &sublineardp.Chain{N: 0}); err == nil {
		t.Fatal("N=0 chain accepted")
	}
}

func TestChainAutoRouting(t *testing.T) {
	small := problems.RandomChain(10, 20, 0, 1)
	s := sublineardp.MustNewChainSolver(sublineardp.ChainEngineAuto)
	sol, err := s.Solve(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Engine != sublineardp.ChainEngineSequential {
		t.Fatalf("auto routed n=10 to %q, want sequential", sol.Engine)
	}
	// Lowering the cutoff reroutes the same chain to the LLP engine.
	s = sublineardp.MustNewChainSolver(sublineardp.ChainEngineAuto, sublineardp.WithAutoCutoff(4))
	if sol, err = s.Solve(context.Background(), small); err != nil {
		t.Fatal(err)
	}
	if sol.Engine != sublineardp.ChainEngineLLP {
		t.Fatalf("auto with cutoff 4 routed n=10 to %q, want llp", sol.Engine)
	}
}

func TestChainEnginesRegistered(t *testing.T) {
	got := sublineardp.ChainEngines()
	for _, want := range []string{"auto", "llp", "sequential"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("chain engine %q missing from registry %v", want, got)
		}
	}
}

func TestChainPathAgreesAcrossEngines(t *testing.T) {
	xs, ys := problems.RandomSeries(30, 9)
	c := problems.SegmentedLeastSquares(xs, ys, 800)
	ctx := context.Background()
	seqSol, err := sublineardp.MustNewChainSolver(sublineardp.ChainEngineSequential).Solve(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	llpSol, err := sublineardp.MustNewChainSolver(sublineardp.ChainEngineLLP, sublineardp.WithWorkers(3)).Solve(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	wantPath, err := seqSol.Path()
	if err != nil {
		t.Fatal(err)
	}
	gotPath, err := llpSol.Path()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPath, wantPath) {
		t.Fatalf("llp path %v, sequential path %v", gotPath, wantPath)
	}
	if gotPath[0] != 0 || gotPath[len(gotPath)-1] != c.N {
		t.Fatalf("path %v does not span 0..%d", gotPath, c.N)
	}
}

func TestChainSolutionNilSafety(t *testing.T) {
	var s *sublineardp.ChainSolution
	if s.Cost() != sublineardp.Inf {
		t.Fatalf("nil solution Cost = %d, want Inf", s.Cost())
	}
	if s.N() != 0 {
		t.Fatalf("nil solution N = %d, want 0", s.N())
	}
	if s.Feasible() {
		t.Fatal("nil solution reports feasible")
	}
	zero := &sublineardp.ChainSolution{Algebra: "max-plus"}
	if sr, _ := sublineardp.LookupSemiring("max-plus"); zero.Cost() != sr.Zero() {
		t.Fatalf("vectorless max-plus solution Cost = %d, want the algebra's Zero", zero.Cost())
	}
}

func TestChainCacheHitsAndSeparation(t *testing.T) {
	cacheStore := sublineardp.NewCache(64)
	ctx := context.Background()
	c := problems.SubsetSum(30, []int64{4, 9, 13})
	s := sublineardp.MustNewChainSolver(sublineardp.ChainEngineSequential, sublineardp.WithCache(cacheStore))

	first, err := s.Solve(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first solve reported cached")
	}
	second, err := s.Solve(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical solve missed the cache")
	}
	if second.Cost() != first.Cost() || !second.Values.Equal(first.Values) {
		t.Fatal("cached solution differs from the led solve")
	}
	stats := cacheStore.Stats()
	if stats.Solves != 1 || stats.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 solve and 1 hit", stats)
	}

	// A different engine name keys separately.
	llpSolver := sublineardp.MustNewChainSolver(sublineardp.ChainEngineLLP, sublineardp.WithCache(cacheStore))
	sol, err := llpSolver.Solve(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cached {
		t.Fatal("llp solve of a sequentially-cached chain reported cached")
	}

	// An interval instance with equal parameter bytes lives in the
	// separate interval store: neither class can serve the other.
	lenBefore := cacheStore.Len()
	in := problems.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	iSolver := sublineardp.MustNewSolver(sublineardp.EngineSequential, sublineardp.WithCache(cacheStore))
	if _, err := iSolver.Solve(ctx, in); err != nil {
		t.Fatal(err)
	}
	if cacheStore.Len() != lenBefore+1 {
		t.Fatalf("interval solve changed cache length %d -> %d, want +1", lenBefore, cacheStore.Len())
	}
}

func TestChainCacheKeyedBySemiringAndWindow(t *testing.T) {
	cacheStore := sublineardp.NewCache(64)
	ctx := context.Background()
	xs, ys := problems.RandomSeries(12, 2)
	c := problems.SegmentedLeastSquares(xs, ys, 100)

	base := sublineardp.MustNewChainSolver(sublineardp.ChainEngineSequential, sublineardp.WithCache(cacheStore))
	if _, err := base.Solve(ctx, c); err != nil {
		t.Fatal(err)
	}
	over := sublineardp.MustNewChainSolver(sublineardp.ChainEngineSequential,
		sublineardp.WithCache(cacheStore), sublineardp.WithSemiring(sublineardp.MaxPlus))
	sol, err := over.Solve(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cached {
		t.Fatal("max-plus override served the min-plus entry")
	}

	// Same parameters, different window ⇒ different canonical bytes.
	windowed := *c
	windowed.Window = 3
	sol, err = base.Solve(ctx, &windowed)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cached {
		t.Fatal("windowed chain served the full-prefix entry")
	}
}

func TestSolveChainBatch(t *testing.T) {
	xs, ys := problems.RandomSeries(25, 4)
	s, e, w := problems.RandomJobs(18, 6)
	chains := []*sublineardp.Chain{
		problems.SegmentedLeastSquares(xs, ys, 300),
		nil,
		problems.IntervalScheduling(s, e, w),
		problems.SubsetSum(40, []int64{3, 11}),
	}
	sols, err := sublineardp.SolveChainBatch(context.Background(), chains, sublineardp.WithConcurrency(3))
	if err == nil {
		t.Fatal("batch with a nil chain returned no error")
	}
	if sols[1] != nil {
		t.Fatal("nil chain produced a solution")
	}
	for i, c := range chains {
		if c == nil {
			continue
		}
		if sols[i] == nil {
			t.Fatalf("chain %d has no solution", i)
		}
		direct, derr := sublineardp.MustNewChainSolver("").Solve(context.Background(), c)
		if derr != nil {
			t.Fatal(derr)
		}
		if sols[i].Cost() != direct.Cost() {
			t.Fatalf("chain %d: batch cost %d, direct %d", i, sols[i].Cost(), direct.Cost())
		}
	}
}
